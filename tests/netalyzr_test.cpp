#include "netalyzr/client.hpp"
#include "netalyzr/server.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace cgn::netalyzr {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

struct NetalyzrWorld {
  MiniNet mini;
  std::unique_ptr<NetalyzrServer> server;

  NetalyzrWorld() {
    sim::NodeId host = mini.net.add_node(mini.net.root(), "netalyzr");
    server = std::make_unique<NetalyzrServer>(host,
                                              Ipv4Address{16, 255, 2, 1});
    server->install(mini.net);
  }

  ClientContext context_for(const MiniNet::Line& line, bool upnp) {
    ClientContext ctx;
    ctx.host = line.device;
    ctx.device_address = line.device_address;
    ctx.asn = 1;
    ctx.upnp_cpe = upnp ? line.cpe : nullptr;
    return ctx;
  }
};

TEST(NetalyzrClient, BasicSessionNoNat) {
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = false;
  auto line = w.mini.add_line(lc);
  NetalyzrClient client(w.context_for(line, false), *line.demux, sim::Rng(1));
  auto session = client.run_basic(w.mini.net, *w.server);
  EXPECT_EQ(session.ip_dev, line.device_address);
  ASSERT_TRUE(session.ip_pub.has_value());
  EXPECT_EQ(*session.ip_pub, line.device_address) << "no translation";
  EXPECT_FALSE(session.ip_cpe.has_value());
  ASSERT_EQ(session.tcp_flows.size(), 10u);
  for (const auto& f : session.tcp_flows)
    EXPECT_EQ(f.observed.port, f.local_port);
}

TEST(NetalyzrClient, BasicSessionBehindCpe) {
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "HomeBox 3000";
  lc.cpe.mapping = nat::MappingType::address_restricted;
  auto line = w.mini.add_line(lc);
  NetalyzrClient client(w.context_for(line, true), *line.demux, sim::Rng(2));
  auto session = client.run_basic(w.mini.net, *w.server);
  EXPECT_EQ(session.ip_dev, Ipv4Address(192, 168, 1, 2));
  ASSERT_TRUE(session.ip_cpe.has_value());
  EXPECT_EQ(*session.ip_cpe, Ipv4Address(16, 0, 1, 2));
  ASSERT_TRUE(session.ip_pub.has_value());
  EXPECT_EQ(*session.ip_pub, *session.ip_cpe) << "single NAT: cpe == pub";
  EXPECT_EQ(session.cpe_model.value_or(""), "HomeBox 3000");
}

TEST(NetalyzrClient, Nat444SessionShowsLayeredAddresses) {
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cgn_hop = 4;
  lc.cpe.name = "cpe";
  lc.cgn.name = "cgn";
  lc.line_internal = Ipv4Address{100, 64, 9, 2};
  auto line = w.mini.add_line(lc);
  NetalyzrClient client(w.context_for(line, true), *line.demux, sim::Rng(3));
  auto session = client.run_basic(w.mini.net, *w.server);
  ASSERT_TRUE(session.ip_cpe.has_value());
  EXPECT_EQ(netcore::classify_reserved(*session.ip_cpe),
            netcore::ReservedRange::r100)
      << "the CPE's WAN address is CGN-internal";
  ASSERT_TRUE(session.ip_pub.has_value());
  EXPECT_TRUE(line.cgn->owns_external(*session.ip_pub));
  EXPECT_NE(*session.ip_cpe, *session.ip_pub);
}

TEST(NetalyzrClient, PortTranslationVisibleThroughRandomCgn) {
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn.name = "cgn";
  lc.cgn.port_allocation = nat::PortAllocation::random;
  lc.cgn.port_min = 1024;
  auto line = w.mini.add_line(lc);
  NetalyzrClient client(w.context_for(line, false), *line.demux, sim::Rng(4));
  auto session = client.run_basic(w.mini.net, *w.server);
  ASSERT_EQ(session.tcp_flows.size(), 10u);
  int translated = 0;
  for (const auto& f : session.tcp_flows)
    if (f.observed.port != f.local_port) ++translated;
  EXPECT_GE(translated, 9) << "random allocation rarely matches by chance";
}

// --- TTL-driven NAT enumeration ------------------------------------------------

struct EnumCase {
  bool with_cpe;
  bool with_cgn;
  int cgn_hop;
  double cgn_timeout;
  double cpe_timeout;
};

class TtlEnumeration : public ::testing::TestWithParam<EnumCase> {};

TEST_P(TtlEnumeration, FindsStatefulHopsAndTimeouts) {
  const EnumCase& c = GetParam();
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = c.with_cpe;
  lc.with_cgn = c.with_cgn;
  lc.cgn_hop = c.cgn_hop;
  lc.cpe.name = "cpe";
  lc.cpe.udp_timeout_s = c.cpe_timeout;
  lc.cgn.name = "cgn";
  lc.cgn.udp_timeout_s = c.cgn_timeout;
  auto line = w.mini.add_line(lc);

  NetalyzrClient client(w.context_for(line, false), *line.demux, sim::Rng(5));
  SessionResult session;
  session.ip_dev = line.device_address;
  TtlEnumConfig cfg;
  client.run_enumeration(w.mini.net, w.mini.clock, *w.server, cfg, session);

  ASSERT_TRUE(session.enumeration.has_value());
  const auto& e = *session.enumeration;
  ASSERT_GT(e.path_hops, 0);

  std::vector<int> stateful;
  for (const auto& h : e.hops)
    if (h.stateful) stateful.push_back(h.hop);

  std::vector<int> expected;
  if (c.with_cpe) expected.push_back(1);
  if (c.with_cgn) expected.push_back(c.cgn_hop);
  EXPECT_EQ(stateful, expected);

  for (const auto& h : e.hops) {
    if (!h.stateful) continue;
    ASSERT_TRUE(h.timeout_s.has_value()) << "hop " << h.hop;
    double truth = h.hop == 1 && c.with_cpe ? c.cpe_timeout : c.cgn_timeout;
    EXPECT_GE(*h.timeout_s, truth);
    EXPECT_LE(*h.timeout_s, truth + 10.0)
        << "timeout measured at 10 s granularity";
  }
  EXPECT_EQ(e.most_distant_nat(), expected.empty() ? 0 : expected.back());
}

INSTANTIATE_TEST_SUITE_P(
    Archetypes, TtlEnumeration,
    ::testing::Values(
        // Archetype A: home NAT only.
        EnumCase{true, false, 0, 0.0, 65.0},
        // Archetype B: carrier NAT only, close and far.
        EnumCase{false, true, 2, 35.0, 0.0},
        EnumCase{false, true, 7, 120.0, 0.0},
        // Archetype C: NAT444 with distinct timeouts.
        EnumCase{true, true, 4, 35.0, 65.0},
        EnumCase{true, true, 3, 10.0, 180.0},
        EnumCase{true, true, 6, 65.0, 65.0}),
    [](const auto& info) {
      const EnumCase& c = info.param;
      std::string name = c.with_cpe ? "cpe" : "nocpe";
      if (c.with_cgn)
        name += "_cgn" + std::to_string(c.cgn_hop) + "_t" +
                std::to_string(static_cast<int>(c.cgn_timeout));
      return name;
    });

TEST(TtlEnumerationLimits, LongTimeoutGoesUnnoticed) {
  // A NAT with a timeout beyond the 200 s probe budget must look stateless —
  // the paper's Table 7 "mismatch / no CGN detected" cell.
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  lc.cpe.udp_timeout_s = 600.0;
  auto line = w.mini.add_line(lc);
  NetalyzrClient client(w.context_for(line, false), *line.demux, sim::Rng(6));
  SessionResult session;
  TtlEnumConfig cfg;
  client.run_enumeration(w.mini.net, w.mini.clock, *w.server, cfg, session);
  ASSERT_TRUE(session.enumeration.has_value());
  EXPECT_FALSE(session.enumeration->found_stateful());
}

TEST(NetalyzrServer, ObservedEndpointsPerFlow) {
  NetalyzrWorld w;
  LineConfig lc;
  lc.with_cpe = false;
  auto line = w.mini.add_line(lc);
  EXPECT_FALSE(w.server->observed_endpoint(42).has_value());
  sim::Packet init = sim::Packet::udp({line.device_address, 9999},
                                      w.server->udp_endpoint());
  init.payload = NetalyzrMessage{UdpInit{42}};
  w.mini.net.send(std::move(init), line.device);
  auto obs = w.server->observed_endpoint(42);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(*obs, (Endpoint{line.device_address, 9999}));
  w.server->reset();
  EXPECT_FALSE(w.server->observed_endpoint(42).has_value());
}

}  // namespace
}  // namespace cgn::netalyzr
