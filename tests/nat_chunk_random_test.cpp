// chunk_random regression coverage: port-exhaustion must only be reported
// when every chunk is genuinely taken, and the sticky (pool index, chunk
// base) record must always agree with the ports actually handed out.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "nat/nat_device.hpp"
#include "nat/nat_types.hpp"
#include "netcore/ipv4.hpp"
#include "sim/packet.hpp"
#include "sim/rng.hpp"

namespace cgn::nat {
namespace {

constexpr netcore::Endpoint kRemote{netcore::Ipv4Address(93, 184, 216, 34),
                                    80};

netcore::Ipv4Address subscriber_ip(std::uint32_t i) {
  return netcore::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff));
}

TEST(NatChunkRandom, NoFalseExhaustionUnderFullOccupancy) {
  // chunk_size 64 over [1024, 65535] gives chunks 16..1023 — 1008 of them.
  // The old allocator gave up after 64 random probes, so near full
  // occupancy (one free chunk left, p(miss) ≈ (1007/1008)^64 ≈ 0.94) it
  // reported exhaustion while a chunk was still free. Every one of the
  // 1008 subscribers must be served; only subscriber 1009 is real
  // exhaustion.
  NatConfig cfg;
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 64;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));

  constexpr std::uint32_t kChunks = 1008;
  for (std::uint32_t i = 0; i < kChunks; ++i) {
    sim::Packet pkt = sim::Packet::udp({subscriber_ip(i), 5000}, kRemote);
    ASSERT_EQ(nat.process_outbound(pkt, 0.0),
              sim::Middlebox::Verdict::forward)
        << "subscriber " << i << " falsely exhausted";
  }
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 0u);

  sim::Packet extra = sim::Packet::udp({subscriber_ip(kChunks), 5000},
                                       kRemote);
  EXPECT_NE(nat.process_outbound(extra, 0.0),
            sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 1u);
}

TEST(NatChunkRandom, AssignedChunksCoverTheWholeRangeExactlyOnce) {
  NatConfig cfg;
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 256;
  cfg.port_min = 1024;
  cfg.port_max = 4095;  // chunks 4..15 — 12 subscribers
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(3));

  std::set<std::uint16_t> bases;
  for (std::uint32_t i = 0; i < 12; ++i) {
    sim::Packet pkt = sim::Packet::udp({subscriber_ip(i), 4444}, kRemote);
    ASSERT_EQ(nat.process_outbound(pkt, 0.0),
              sim::Middlebox::Verdict::forward);
    auto chunk = nat.subscriber_chunk(subscriber_ip(i));
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(chunk->second, cfg.chunk_size);
    EXPECT_EQ(chunk->first % cfg.chunk_size, 0u);
    EXPECT_GE(chunk->first, cfg.port_min);
    EXPECT_TRUE(bases.insert(chunk->first).second)
        << "chunk " << chunk->first << " double-assigned";
  }
  EXPECT_EQ(bases.size(), 12u);
  EXPECT_EQ(*bases.begin(), 1024u);
  EXPECT_EQ(*bases.rbegin(), 3840u);
}

TEST(NatChunkRandom, StoredChunkMatchesAllocatedPortsAcrossPoolFailover) {
  // Two pool addresses with 4 chunks each. Once a member's chunks fill,
  // later subscribers fail over to the other member; the stored (pool
  // index, chunk base) pair must keep matching the external endpoints that
  // come out — the desync bug released the chunk on one member but left
  // the subscriber record pointing at it.
  NatConfig cfg;
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 256;
  cfg.port_min = 1024;
  cfg.port_max = 2047;  // chunks 4..7 per pool member
  const std::vector<netcore::Ipv4Address> pool{
      netcore::Ipv4Address(198, 51, 100, 1),
      netcore::Ipv4Address(198, 51, 100, 2)};
  NatDevice nat(cfg, pool, sim::Rng(11));

  // Observe every mapping as it is created.
  std::map<std::uint32_t, std::vector<netcore::Endpoint>> externals;
  nat.set_observer(
      [&](netcore::Protocol, const netcore::Endpoint& internal,
          const netcore::Endpoint& external, sim::SimTime) {
        externals[internal.address.value()].push_back(external);
      },
      {});

  // 8 subscribers x 3 flows (distinct source ports -> distinct mappings).
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint16_t f = 0; f < 3; ++f) {
      sim::Packet pkt = sim::Packet::udp(
          {subscriber_ip(i), static_cast<std::uint16_t>(6000 + f)}, kRemote);
      ASSERT_EQ(nat.process_outbound(pkt, 0.0),
                sim::Middlebox::Verdict::forward)
          << "subscriber " << i << " flow " << f;
    }
  }
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 0u);

  std::set<std::pair<std::uint32_t, std::uint16_t>> assigned;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto ip = subscriber_ip(i);
    auto chunk = nat.subscriber_chunk(ip);
    ASSERT_TRUE(chunk.has_value());
    const auto [base, size] = *chunk;
    const auto& eps = externals.at(ip.value());
    ASSERT_EQ(eps.size(), 3u);
    for (const netcore::Endpoint& ep : eps) {
      // Sticky pooling: one external address per subscriber...
      EXPECT_EQ(ep.address, eps.front().address);
      // ...and every port inside the recorded chunk.
      EXPECT_GE(ep.port, base);
      EXPECT_LT(std::uint32_t{ep.port}, std::uint32_t{base} + size);
    }
    EXPECT_TRUE(
        assigned.emplace(eps.front().address.value(), base).second)
        << "chunk reused across subscribers";
  }
  // Both pool members had to be used: 8 subscribers, 4 chunks per member.
  std::set<std::uint32_t> addresses;
  for (const auto& [addr, base] : assigned) addresses.insert(addr);
  EXPECT_EQ(addresses.size(), 2u);

  // The 9th subscriber is genuine exhaustion.
  sim::Packet pkt = sim::Packet::udp({subscriber_ip(8), 6000}, kRemote);
  EXPECT_NE(nat.process_outbound(pkt, 0.0),
            sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 1u);
}

}  // namespace
}  // namespace cgn::nat
