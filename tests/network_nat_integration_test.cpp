// Integration tests of NAT devices *inside* the delivery engine: full
// ascent/descent traversal, hairpin routing, NAT444 chains, TTL interaction
// with middleboxes — the behaviours the measurement methods depend on.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_topology.hpp"

namespace cgn::test {
namespace {

using sim::DropReason;
using sim::Packet;

struct Catcher {
  std::vector<Packet> packets;
  void attach(sim::Network& net, sim::NodeId host) {
    net.set_receiver(host, [this](sim::Network&, const Packet& p) {
      packets.push_back(p);
    });
  }
};

TEST(NetworkNat, OutboundTranslationAppliedOnAscent) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  auto line = mini.add_line(lc);
  Catcher catcher;
  catcher.attach(mini.net, mini.server_host);

  auto r = mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  ASSERT_TRUE(r.delivered);
  ASSERT_EQ(catcher.packets.size(), 1u);
  EXPECT_EQ(catcher.packets[0].src.address, Ipv4Address(16, 0, 1, 2))
      << "the server must see the CPE's external address";
}

TEST(NetworkNat, Nat444TranslatesTwice) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cgn_hop = 4;
  lc.cpe.name = "cpe";
  lc.cgn.name = "cgn";
  auto line = mini.add_line(lc);
  Catcher catcher;
  catcher.attach(mini.net, mini.server_host);

  auto r = mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  ASSERT_TRUE(r.delivered);
  ASSERT_EQ(catcher.packets.size(), 1u);
  EXPECT_TRUE(line.cgn->owns_external(catcher.packets[0].src.address))
      << "the server-visible source is the CGN pool, not the CPE WAN";
  // And the reply threads back through both translations.
  Catcher device_catcher;
  line.demux->bind(5000, [&](sim::Network&, const Packet& p) {
    device_catcher.packets.push_back(p);
  });
  auto back = mini.net.send(
      Packet::udp({mini.server_address, 80}, catcher.packets[0].src),
      mini.server_host);
  ASSERT_TRUE(back.delivered);
  ASSERT_EQ(device_catcher.packets.size(), 1u);
  EXPECT_EQ(device_catcher.packets[0].dst,
            (Endpoint{line.device_address, 5000}));
}

TEST(NetworkNat, RepliesBlockedAfterVirtualTimeExpiry) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  lc.cpe.udp_timeout_s = 30.0;
  auto line = mini.add_line(lc);
  Catcher catcher;
  catcher.attach(mini.net, mini.server_host);
  (void)mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  ASSERT_EQ(catcher.packets.size(), 1u);
  Endpoint ext = catcher.packets[0].src;

  mini.clock.advance(31.0);
  auto r = mini.net.send(Packet::udp({mini.server_address, 80}, ext),
                         mini.server_host);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.reason, DropReason::no_mapping);
}

TEST(NetworkNat, CgnHopDistanceMatchesConfiguration) {
  for (int hop : {2, 3, 5, 7}) {
    MiniNet mini;
    LineConfig lc;
    lc.with_cpe = true;
    lc.with_cgn = true;
    lc.cgn_hop = hop;
    lc.cpe.name = "cpe";
    lc.cgn.name = "cgn";
    auto line = mini.add_line(lc);
    // Count hops from the device to the CGN node through the tree.
    EXPECT_EQ(mini.net.path_hops(line.device, line.cgn_node) + 1, hop)
        << "the CGN must sit exactly " << hop << " hops from the device";
  }
}

TEST(NetworkNat, TtlLimitedPacketDiesWithoutRefreshingNat) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  lc.cpe.udp_timeout_s = 30.0;
  auto line = mini.add_line(lc);
  Catcher catcher;
  catcher.attach(mini.net, mini.server_host);
  (void)mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  Endpoint ext = catcher.packets.at(0).src;

  // A ttl=1 keepalive dies at hop 1 (the CPE) *without* refreshing it.
  mini.clock.advance(20.0);
  auto ka = mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}, 1),
      line.device);
  EXPECT_EQ(ka.reason, DropReason::ttl_expired);
  mini.clock.advance(15.0);  // 35 s since the only refreshing packet
  auto probe = mini.net.send(Packet::udp({mini.server_address, 80}, ext),
                             mini.server_host);
  EXPECT_FALSE(probe.delivered)
      << "the dying keepalive must not have refreshed the mapping";

  // Control: a ttl=2 keepalive crosses (and refreshes) the CPE.
  Catcher c2;
  c2.attach(mini.net, mini.server_host);
  (void)mini.net.send(
      Packet::udp({line.device_address, 6000}, {mini.server_address, 80}),
      line.device);
  Endpoint ext2 = c2.packets.at(0).src;
  mini.clock.advance(20.0);
  (void)mini.net.send(
      Packet::udp({line.device_address, 6000}, {mini.server_address, 80}, 2),
      line.device);
  mini.clock.advance(15.0);
  auto probe2 = mini.net.send(Packet::udp({mini.server_address, 80}, ext2),
                              mini.server_host);
  EXPECT_TRUE(probe2.delivered);
}

TEST(NetworkNat, HairpinRoutesBetweenTwoLinesOfOneCgn) {
  MiniNet mini;
  nat::NatConfig cgn_cfg;
  cgn_cfg.name = "cgn";
  cgn_cfg.mapping = nat::MappingType::full_cone;
  cgn_cfg.hairpinning = true;
  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn = cgn_cfg;
  auto line_a = mini.add_line(lc);

  // Attach a second device under the same CGN.
  sim::NodeId acc = mini.net.add_router_chain(line_a.cgn_node, 2, "acc-b");
  sim::NodeId dev_b = mini.net.add_node(acc, "dev-b");
  Ipv4Address addr_b{10, 0, 9, 9};
  mini.net.add_local_address(dev_b, addr_b);
  mini.net.register_address(addr_b, dev_b, line_a.cgn_node);
  Catcher catch_b;
  catch_b.attach(mini.net, dev_b);

  // B opens a mapping toward the server.
  Catcher server_catch;
  server_catch.attach(mini.net, mini.server_host);
  (void)mini.net.send(Packet::udp({addr_b, 7000}, {mini.server_address, 80}),
                      dev_b);
  Endpoint b_ext = server_catch.packets.at(0).src;

  // A sends to B's external endpoint: the CGN must hairpin it back down.
  auto r = mini.net.send(
      Packet::udp({line_a.device_address, 7100}, b_ext), line_a.device);
  ASSERT_TRUE(r.delivered);
  ASSERT_EQ(catch_b.packets.size(), 1u);
  EXPECT_EQ(catch_b.packets[0].dst, (Endpoint{addr_b, 7000}));
  EXPECT_TRUE(line_a.cgn->owns_external(catch_b.packets[0].src.address))
      << "conformant hairpin: B sees A's external endpoint";
}

TEST(NetworkNat, HairpinDisabledDropsInsideToExternalTraffic) {
  MiniNet mini;
  nat::NatConfig cgn_cfg;
  cgn_cfg.name = "cgn";
  cgn_cfg.mapping = nat::MappingType::full_cone;
  cgn_cfg.hairpinning = false;
  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn = cgn_cfg;
  auto line = mini.add_line(lc);
  Catcher server_catch;
  server_catch.attach(mini.net, mini.server_host);
  (void)mini.net.send(
      Packet::udp({line.device_address, 7000}, {mini.server_address, 80}),
      line.device);
  Endpoint own_ext = server_catch.packets.at(0).src;
  auto r = mini.net.send(
      Packet::udp({line.device_address, 7100}, own_ext), line.device);
  EXPECT_FALSE(r.delivered);
}

TEST(NetworkNat, CgnPortExhaustionSurfacesAsDrop) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn.name = "cgn";
  lc.cgn.port_allocation = nat::PortAllocation::chunk_random;
  lc.cgn.chunk_size = 4;
  lc.cgn_pool_size = 1;
  auto line = mini.add_line(lc);
  int delivered = 0, dropped = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = mini.net.send(
        Packet::udp({line.device_address,
                     static_cast<std::uint16_t>(8000 + i)},
                    {mini.server_address, static_cast<std::uint16_t>(80 + i)}),
        line.device);
    (r.delivered ? delivered : dropped)++;
  }
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(line.cgn->stats().port_exhaustion_drops, 6u);
}

TEST(NetworkNat, HopTraceRecordsNat444Path) {
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cpe.name = "cpe";
  lc.cgn.name = "cgn";
  auto line = mini.add_line(lc);

  obs::TraceRing ring(64);
  mini.net.set_hop_trace(&ring);
  auto r = mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  ASSERT_TRUE(r.delivered);

  // One hop event per traversed node, two middlebox verdicts (CPE + CGN),
  // one terminal delivered event.
  auto events = ring.events();
  int hop_events = 0, mb_events = 0, delivered_events = 0;
  for (const auto& e : events) {
    switch (static_cast<sim::Network::TraceKind>(e.kind)) {
      case sim::Network::TraceKind::hop: ++hop_events; break;
      case sim::Network::TraceKind::middlebox: ++mb_events; break;
      case sim::Network::TraceKind::delivered: ++delivered_events; break;
      default: break;
    }
  }
  EXPECT_EQ(hop_events, r.hops);
  EXPECT_EQ(mb_events, 2);
  EXPECT_EQ(delivered_events, 1);

  std::ostringstream os;
  mini.net.dump_trace(os, ring);
  EXPECT_NE(os.str().find("middlebox cpe"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("middlebox cgn"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("delivered"), std::string::npos) << os.str();

  // Detaching must stop recording (and the null check must not crash).
  mini.net.set_hop_trace(nullptr);
  ring.clear();
  (void)mini.net.send(
      Packet::udp({line.device_address, 5001}, {mini.server_address, 80}),
      line.device);
  EXPECT_EQ(ring.total_pushed(), 0u);
}

TEST(NetworkNat, ObsCountersTrackNetworkStats) {
  if (!obs::kMetricsEnabled)
    GTEST_SKIP() << "metrics compiled out (-DCGN_OBS=OFF)";
  // The global obs counters are shared across every Network in the process,
  // so compare *deltas* over a traffic mix whose per-Network outcome is
  // known from stats().
  struct Snapshot {
    std::uint64_t sent, delivered, no_mapping, ttl;
    static Snapshot take() {
      return {obs::counter("sim.net.sent").value(),
              obs::counter("sim.net.delivered").value(),
              obs::counter("sim.net.dropped.no_mapping").value(),
              obs::counter("sim.net.dropped.ttl_expired").value()};
    }
  };
  MiniNet mini;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  lc.cpe.udp_timeout_s = 30.0;
  auto line = mini.add_line(lc);
  const Snapshot before = Snapshot::take();
  const sim::NetworkStats stats_before = mini.net.stats();

  // delivered, ttl_expired, and (after expiry) no_mapping outcomes.
  (void)mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}),
      line.device);
  (void)mini.net.send(
      Packet::udp({line.device_address, 5000}, {mini.server_address, 80}, 1),
      line.device);
  mini.clock.advance(31.0);
  (void)mini.net.send(
      Packet::udp({mini.server_address, 80}, {Ipv4Address(16, 0, 1, 2), 5000}),
      mini.server_host);

  const Snapshot after = Snapshot::take();
  const sim::NetworkStats& stats = mini.net.stats();
  EXPECT_EQ(after.sent - before.sent, stats.sent - stats_before.sent);
  EXPECT_EQ(after.delivered - before.delivered,
            stats.delivered - stats_before.delivered);
  EXPECT_EQ(after.no_mapping - before.no_mapping,
            stats.dropped_no_mapping - stats_before.dropped_no_mapping);
  EXPECT_EQ(after.ttl - before.ttl,
            stats.dropped_ttl - stats_before.dropped_ttl);
  // Sanity on the mix itself: one of each outcome.
  EXPECT_EQ(stats.sent - stats_before.sent, 3u);
  EXPECT_EQ(stats.delivered - stats_before.delivered, 1u);
  EXPECT_EQ(stats.dropped_ttl - stats_before.dropped_ttl, 1u);
  EXPECT_EQ(stats.dropped_no_mapping - stats_before.dropped_no_mapping, 1u);
}

}  // namespace
}  // namespace cgn::test
