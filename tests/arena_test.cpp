// flat::Arena unit tests + a randomized differential churn test against a
// std::unordered_map-of-unique_ptr reference — handle stability under
// erase/reuse cycles is the property the NAT mapping slab and the lazy
// world's ownership arenas lean on, so it gets the adversarial treatment.
#include "flat/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace {

using cgn::flat::Arena;

TEST(Arena, EmplaceGetErase) {
  Arena<int> a;
  EXPECT_TRUE(a.empty());
  auto h0 = a.emplace(10);
  auto h1 = a.emplace(11);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[h0], 10);
  EXPECT_EQ(a[h1], 11);
  EXPECT_TRUE(a.contains(h0));
  a.erase(h0);
  EXPECT_FALSE(a.contains(h0));
  EXPECT_TRUE(a.contains(h1));
  EXPECT_EQ(a.size(), 1u);
}

TEST(Arena, ReusesMostRecentlyErasedSlot) {
  Arena<int> a;
  auto h0 = a.emplace(0);
  auto h1 = a.emplace(1);
  auto h2 = a.emplace(2);
  a.erase(h1);
  a.erase(h0);
  // LIFO free list: h0 was freed last, so it is handed out first.
  EXPECT_EQ(a.emplace(100), h0);
  EXPECT_EQ(a.emplace(101), h1);
  // Free list drained: next emplace appends a fresh slot.
  auto h3 = a.emplace(3);
  EXPECT_NE(h3, h0);
  EXPECT_NE(h3, h1);
  EXPECT_NE(h3, h2);
  EXPECT_EQ(a[h2], 2);
  EXPECT_EQ(a[h3], 3);
}

TEST(Arena, PointersStableAcrossChunkGrowth) {
  Arena<std::uint64_t, 64> a;
  std::vector<std::pair<Arena<std::uint64_t, 64>::Handle, std::uint64_t*>>
      held;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto h = a.emplace(i);
    held.emplace_back(h, &a[h]);
  }
  // Growth allocates new chunks; previously handed-out addresses must not
  // move (the NAT hot path caches Mapping* across inserts).
  for (std::uint64_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(&a[held[i].first], held[i].second);
    EXPECT_EQ(*held[i].second, i);
  }
}

TEST(Arena, NonMovableTypesConstructInPlace) {
  struct Pinned {
    explicit Pinned(int v) : value(v) {}
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    Pinned(Pinned&&) = delete;
    int value;
  };
  Arena<Pinned, 8> a;
  auto h = a.emplace(42);
  EXPECT_EQ(a[h].value, 42);
}

TEST(Arena, DestructorsRunOnEraseAndClear) {
  static int live = 0;
  struct Counted {
    Counted() { ++live; }
    ~Counted() { --live; }
  };
  {
    Arena<Counted, 8> a;
    std::vector<Arena<Counted, 8>::Handle> hs;
    for (int i = 0; i < 20; ++i) hs.push_back(a.emplace());
    EXPECT_EQ(live, 20);
    a.erase(hs[3]);
    a.erase(hs[17]);
    EXPECT_EQ(live, 18);
    a.clear();
    EXPECT_EQ(live, 0);
    // clear() keeps chunk memory but resets handles to a fresh sequence.
    EXPECT_EQ(a.emplace(), 0u);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0) << "arena destructor must destroy live objects";
}

TEST(Arena, ForEachVisitsLiveSlotsInSlotOrder) {
  Arena<int, 8> a;
  auto h0 = a.emplace(0);
  a.emplace(1);
  auto h2 = a.emplace(2);
  a.emplace(3);
  a.erase(h2);
  a.erase(h0);
  std::vector<int> seen;
  a.for_each([&](std::uint32_t, int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

// Randomized churn differential: every live handle must keep resolving to
// exactly the value a reference std::unordered_map holds for it, through
// thousands of interleaved emplace/erase/clear cycles that stress free-list
// reuse across chunk boundaries.
TEST(Arena, ChurnDifferentialVsStdContainers) {
  cgn::sim::Rng rng(20260809);
  Arena<std::string, 16> a;
  std::unordered_map<std::uint32_t, std::string> ref;
  std::vector<std::uint32_t> handles;  // live handles, insertion order
  std::uint64_t next_value = 0;

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55 || handles.empty()) {
      std::string v = "v" + std::to_string(next_value++);
      auto h = a.emplace(v);
      ASSERT_FALSE(ref.count(h)) << "arena handed out a live handle";
      ref.emplace(h, std::move(v));
      handles.push_back(h);
    } else if (roll < 0.95) {
      std::size_t i = rng.index(handles.size());
      std::uint32_t h = handles[i];
      ASSERT_EQ(a[h], ref.at(h));
      a.erase(h);
      ref.erase(h);
      handles[i] = handles.back();
      handles.pop_back();
      ASSERT_FALSE(a.contains(h));
    } else {
      // Spot-check a random survivor + the aggregate invariants.
      std::uint32_t h = handles[rng.index(handles.size())];
      ASSERT_EQ(a[h], ref.at(h));
      ASSERT_EQ(a.size(), ref.size());
    }
    if (step % 4096 == 4095) {
      for (std::uint32_t h : handles) ASSERT_EQ(a[h], ref.at(h));
      a.clear();
      ref.clear();
      handles.clear();
    }
  }
  ASSERT_EQ(a.size(), ref.size());
  for (std::uint32_t h : handles) ASSERT_EQ(a[h], ref.at(h));
}

TEST(Arena, MoveTransfersOwnership) {
  Arena<std::string, 8> a;
  auto h = a.emplace("payload");
  Arena<std::string, 8> b = std::move(a);
  EXPECT_EQ(b[h], "payload");
  EXPECT_EQ(b.size(), 1u);
  Arena<std::string, 8> c;
  c.emplace("doomed");
  c = std::move(b);
  EXPECT_EQ(c[h], "payload");
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
