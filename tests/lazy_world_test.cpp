// Lazy-vs-eager world materialization differentials (README "Scale"): a
// world built with lazy_build must produce byte-identical campaign results
// to the eager build of the same config — at any worker count, under a
// stormy fault plan, and across a kill → resume cycle — while actually
// deferring construction until first use. Silent-line ballast must perturb
// nothing.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dht/dht_node.hpp"
#include "fault/fault.hpp"
#include "netalyzr/session.hpp"
#include "scenario/campaign.hpp"
#include "scenario/churn.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::scenario {
namespace {

InternetConfig tiny_config(bool lazy) {
  InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  cfg.lazy_build = lazy;
  return cfg;
}

std::size_t materialized_lines(const Internet& internet) {
  std::size_t n = 0;
  for (const IspInstance& isp : internet.isps)
    for (const Subscriber& sub : isp.subscribers)
      if (sub.device != sim::kNoNode) ++n;
  return n;
}

std::size_t total_lines(const Internet& internet) {
  std::size_t n = 0;
  for (const IspInstance& isp : internet.isps) n += isp.subscribers.size();
  return n;
}

struct NetalyzrRun {
  std::uint64_t fingerprint = 0;
  std::size_t sessions = 0;
  double final_time = 0.0;
};

// Note: global construction counters (e.g. nat.mappings_created) are NOT
// mode-invariant — a lazy world never creates the UPnP mappings of lines no
// campaign touches. The invariant is the measurement output.
NetalyzrRun run_netalyzr(const InternetConfig& world, std::size_t threads,
                         const super::SupervisorConfig& supervise = {}) {
  auto internet = build_internet(world);
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.5;
  cfg.stun_fraction = 0.5;
  cfg.threads = threads;
  cfg.supervise = supervise;
  const auto sessions = run_netalyzr_campaign(*internet, cfg);
  NetalyzrRun run;
  run.fingerprint = netalyzr::fingerprint(sessions);
  run.sessions = sessions.size();
  run.final_time = internet->clock.now();
  return run;
}

TEST(LazyWorld, BuildDefersLineConstruction) {
  auto lazy = build_internet(tiny_config(true));
  EXPECT_TRUE(lazy->lazy());
  EXPECT_EQ(materialized_lines(*lazy), 0u);

  auto eager = build_internet(tiny_config(false));
  EXPECT_FALSE(eager->lazy());
  EXPECT_EQ(materialized_lines(*eager), total_lines(*eager));
  // Same plan on both sides: identical subscriber-slot population.
  EXPECT_EQ(total_lines(*lazy), total_lines(*eager));
  EXPECT_EQ(lazy->planned_subscriber_count(), total_lines(*eager));
}

TEST(LazyWorld, EnsureLineMaterializesOneHomeIdempotently) {
  auto internet = build_internet(tiny_config(true));
  ASSERT_FALSE(internet->isps.empty());
  IspInstance& isp = internet->isps.front();
  ASSERT_FALSE(isp.subscribers.empty());

  Subscriber& sub = internet->ensure_line(isp, 0);
  EXPECT_NE(sub.device, sim::kNoNode);
  EXPECT_NE(sub.demux, nullptr);
  const std::size_t built = materialized_lines(*internet);
  EXPECT_GE(built, 1u);
  EXPECT_LT(built, total_lines(*internet));

  // Re-touching the same slot builds nothing new.
  Subscriber& again = internet->ensure_line(isp, 0);
  EXPECT_EQ(again.device, sub.device);
  EXPECT_EQ(materialized_lines(*internet), built);
}

TEST(LazyWorld, MaterializeAllEqualsEagerPopulation) {
  auto lazy = build_internet(tiny_config(true));
  lazy->materialize_all();
  auto eager = build_internet(tiny_config(false));
  ASSERT_EQ(lazy->isps.size(), eager->isps.size());
  for (std::size_t i = 0; i < lazy->isps.size(); ++i) {
    const auto& ls = lazy->isps[i].subscribers;
    const auto& es = eager->isps[i].subscribers;
    ASSERT_EQ(ls.size(), es.size()) << "isp " << i;
    for (std::size_t j = 0; j < ls.size(); ++j) {
      EXPECT_EQ(ls[j].device_address, es[j].device_address)
          << "isp " << i << " line " << j;
      EXPECT_EQ(ls[j].behind_cgn, es[j].behind_cgn);
      EXPECT_EQ(ls[j].home_id, es[j].home_id);
      EXPECT_EQ(ls[j].cpe != nullptr, es[j].cpe != nullptr);
      EXPECT_EQ(ls[j].bt_client != nullptr, es[j].bt_client != nullptr);
    }
  }
}

TEST(LazyWorld, BtPeersMatchEagerOrderAndIdentity) {
  auto eager = build_internet(tiny_config(false));
  auto lazy = build_internet(tiny_config(true));
  const auto& ep = eager->bt_peers();
  const auto& lp = lazy->bt_peers();
  ASSERT_EQ(ep.size(), lp.size());
  for (std::size_t i = 0; i < ep.size(); ++i) {
    EXPECT_EQ(ep[i]->id(), lp[i]->id()) << "peer " << i;
    EXPECT_EQ(ep[i]->local_endpoint(), lp[i]->local_endpoint());
  }
}

TEST(LazyWorld, NetalyzrMatchesEagerAtAnyWorkerCount) {
  const NetalyzrRun eager = run_netalyzr(tiny_config(false), 1);
  ASSERT_GT(eager.sessions, 50u);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NetalyzrRun lazy = run_netalyzr(tiny_config(true), threads);
    EXPECT_EQ(lazy.fingerprint, eager.fingerprint)
        << threads << "-worker lazy run diverged from eager";
    EXPECT_EQ(lazy.sessions, eager.sessions) << threads;
    EXPECT_EQ(lazy.final_time, eager.final_time) << threads;
  }
}

TEST(LazyWorld, StormyFaultPlanMatchesEager) {
  auto stormy = [](bool lazy) {
    InternetConfig cfg = tiny_config(lazy);
    cfg.fault_plan.link.loss_rate = 0.02;
    cfg.fault_plan.link.duplication_rate = 0.01;
    cfg.fault_plan.peers.unresponsive_fraction = 0.10;
    cfg.fault_plan.nat.restart_period_s = 900.0;
    return cfg;
  };
  const NetalyzrRun eager = run_netalyzr(stormy(false), 1);
  ASSERT_GT(eager.sessions, 50u);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const NetalyzrRun lazy = run_netalyzr(stormy(true), threads);
    EXPECT_EQ(lazy.fingerprint, eager.fingerprint)
        << threads << "-worker lazy run diverged under the fault plan";
    EXPECT_EQ(lazy.sessions, eager.sessions) << threads;
    EXPECT_EQ(lazy.final_time, eager.final_time) << threads;
  }
}

TEST(LazyWorld, KillResumeOnLazyWorldMatchesEagerUninterrupted) {
  const NetalyzrRun eager = run_netalyzr(tiny_config(false), 4);
  ASSERT_GT(eager.sessions, 50u);

  const std::string ckpt_path =
      ::testing::TempDir() + "cgn_lazy_world_resume.ckpt";
  std::remove(ckpt_path.c_str());
  super::SupervisorConfig ckpt;
  ckpt.checkpoint_path = ckpt_path;

  // Kill a lazy campaign partway ("process death" discards the Internet),
  // then resume on a second freshly planned lazy world.
  super::SupervisorConfig kill = ckpt;
  kill.abort_after_shards = 10;
  EXPECT_THROW((void)run_netalyzr(tiny_config(true), 4, kill),
               super::CampaignAborted);
  const NetalyzrRun resumed = run_netalyzr(tiny_config(true), 4, ckpt);
  EXPECT_EQ(resumed.sessions, eager.sessions);
  EXPECT_EQ(resumed.fingerprint, eager.fingerprint)
      << "lazy kill->resume diverged from the eager uninterrupted run";
  EXPECT_EQ(resumed.final_time, eager.final_time);
  std::remove(ckpt_path.c_str());
}

TEST(LazyWorld, ChurnMatchesEager) {
  auto run_churn = [](bool lazy) {
    auto internet = build_internet(tiny_config(lazy));
    ChurnConfig cfg;
    ChurnStats stats = apply_renumbering_event(*internet, cfg);
    return std::pair<std::size_t, std::size_t>(stats.events_applied,
                                               stats.lines_renumbered);
  };
  EXPECT_EQ(run_churn(true), run_churn(false));
}

TEST(LazyWorld, SilentLinesAddBallastWithoutPerturbingFigures) {
  InternetConfig with_ballast = tiny_config(true);
  with_ballast.silent_lines_per_cgn_as = 40;

  // Planning ballast costs no RNG draw: campaign output is unchanged.
  const NetalyzrRun plain = run_netalyzr(tiny_config(false), 1);
  const NetalyzrRun ballast = run_netalyzr(with_ballast, 1);
  EXPECT_EQ(ballast.fingerprint, plain.fingerprint);
  EXPECT_EQ(ballast.sessions, plain.sessions);

  // Materializing it grows the world beyond the subscriber plan.
  auto internet = build_internet(with_ballast);
  EXPECT_GT(internet->planned_subscriber_count(), total_lines(*internet));
  std::size_t built = 0;
  for (IspInstance& isp : internet->isps)
    built += internet->materialize_silent_lines(isp);
  EXPECT_GT(built, 0u);
  EXPECT_EQ(total_lines(*internet) + built,
            internet->planned_subscriber_count());
}

}  // namespace
}  // namespace cgn::scenario
