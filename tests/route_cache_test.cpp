// Tests for the per-thread route-cache stripes in sim::Network (one cached
// next hop per node per thread): hits are counted (batched per delivery),
// route mutations (unregister/re-register) never serve a stale next hop in
// any stripe, and NAT restarts — which do not touch routes — keep
// translating correctly through warmed caches.
#include <gtest/gtest.h>

#include "nat/nat_device.hpp"
#include "sim/network.hpp"
#include "test_topology.hpp"

namespace cgn::sim {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;

struct ThreeHosts {
  Clock clock;
  Network net{clock};
  NodeId sender, a, b;
  Ipv4Address addr_s{16, 0, 0, 1};
  Ipv4Address addr_a{16, 0, 0, 2};
  Ipv4Address addr_b{16, 0, 0, 3};
  std::vector<Packet> received_a, received_b;

  ThreeHosts() {
    NodeId rs = net.add_router_chain(net.root(), 2, "s");
    NodeId ra = net.add_router_chain(net.root(), 2, "a");
    NodeId rb = net.add_router_chain(net.root(), 2, "b");
    sender = net.add_node(rs, "sender");
    a = net.add_node(ra, "host-a");
    b = net.add_node(rb, "host-b");
    net.add_local_address(sender, addr_s);
    net.add_local_address(a, addr_a);
    net.add_local_address(b, addr_b);
    net.register_address(addr_s, sender, net.root());
    net.register_address(addr_a, a, net.root());
    net.register_address(addr_b, b, net.root());
    net.set_receiver(a, [this](Network&, const Packet& p) {
      received_a.push_back(p);
    });
    net.set_receiver(b, [this](Network&, const Packet& p) {
      received_b.push_back(p);
    });
  }
};

TEST(RouteCache, RepeatedSendsHitTheCache) {
  ThreeHosts w;
  auto first = w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender);
  EXPECT_TRUE(first.delivered);
  const std::uint64_t hits_after_first = w.net.stats().route_cache_hits;
  auto second = w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender);
  EXPECT_TRUE(second.delivered);
  // The second identical send descends the same warmed path: every
  // down-route lookup past the first is a cache hit.
  EXPECT_GT(w.net.stats().route_cache_hits, hits_after_first);
  EXPECT_EQ(w.received_a.size(), 2u);
}

TEST(RouteCache, AlternatingDestinationsStayCorrect) {
  ThreeHosts w;
  // Alternating destinations evict each other from the shared core node's
  // one-entry cache; every delivery must still land on the right host.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender)
            .delivered);
    EXPECT_TRUE(
        w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_b, 2}), w.sender)
            .delivered);
  }
  EXPECT_EQ(w.received_a.size(), 4u);
  EXPECT_EQ(w.received_b.size(), 4u);
}

TEST(RouteCache, UnregisterDoesNotServeStaleRoute) {
  ThreeHosts w;
  // Warm every cache on the path toward host a.
  ASSERT_TRUE(
      w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender)
          .delivered);
  ASSERT_TRUE(
      w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender)
          .delivered);
  // Routing for addr_a moves to host b (renumbering-style move); host a
  // still has the address configured locally, but no route points there.
  w.net.unregister_address(w.addr_a, w.a, w.net.root());
  auto dropped =
      w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender);
  EXPECT_FALSE(dropped.delivered);
  EXPECT_EQ(dropped.reason, DropReason::no_route);

  w.net.add_local_address(w.b, w.addr_a);
  w.net.register_address(w.addr_a, w.b, w.net.root());
  auto moved =
      w.net.send(Packet::udp({w.addr_s, 1}, {w.addr_a, 2}), w.sender);
  EXPECT_TRUE(moved.delivered);
  EXPECT_EQ(w.received_a.size(), 2u);  // nothing more arrived at host a
  ASSERT_EQ(w.received_b.size(), 1u);  // the moved address delivers at b
}

TEST(RouteCache, NatRestartKeepsTranslationCorrect) {
  test::MiniNet world;
  test::LineConfig cfg;
  cfg.with_cpe = true;
  cfg.with_cgn = true;
  auto line = world.add_line(cfg);
  std::vector<Packet> at_server;
  world.net.set_receiver(world.server_host,
                         [&](Network&, const Packet& p) {
                           at_server.push_back(p);
                         });

  Endpoint device_ep{line.device_address, 4000};
  Endpoint server_ep{world.server_address, 5000};
  ASSERT_TRUE(world.net.send(Packet::udp(device_ep, server_ep), line.device)
                  .delivered);
  ASSERT_TRUE(world.net.send(Packet::udp(device_ep, server_ep), line.device)
                  .delivered);
  ASSERT_EQ(at_server.size(), 2u);
  const Endpoint external_before = at_server.back().src;

  // A reply to the mapped endpoint descends through warmed caches.
  ASSERT_TRUE(
      world.net.send(Packet::udp(server_ep, external_before),
                     world.server_host)
          .delivered);

  // Reboot the CGN: all mappings flush, but routes (and caches) are
  // untouched — the next outbound packet must allocate a fresh mapping and
  // still reach the server, and the dead external endpoint must now be
  // dropped as no_mapping rather than mis-delivered.
  line.cgn->reset_state(world.clock.now());
  auto after = world.net.send(Packet::udp(device_ep, server_ep), line.device);
  EXPECT_TRUE(after.delivered);
  ASSERT_EQ(at_server.size(), 3u);

  auto stale = world.net.send(Packet::udp(server_ep, external_before),
                              world.server_host);
  Endpoint external_after = at_server.back().src;
  if (external_after == external_before) {
    // The fresh mapping may legitimately reuse the same external endpoint;
    // then the reply simply reaches the device again.
    EXPECT_TRUE(stale.delivered);
  } else {
    EXPECT_FALSE(stale.delivered);
    EXPECT_EQ(stale.reason, DropReason::no_mapping);
  }
}

}  // namespace
}  // namespace cgn::sim
