// Unit tests for the observatory stack: histogram quantiles and the
// Prometheus exposition (obs), the dynamic union-find and streaming
// detectors (analysis), the TraceRing kind tallies, the route-cache obs
// counter, and the HTTP endpoint (observatory).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bt_detector.hpp"
#include "analysis/figures.hpp"
#include "analysis/stream.hpp"
#include "analysis/union_find.hpp"
#include "crawler/crawl_dataset.hpp"
#include "netcore/as_registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "observatory/http.hpp"
#include "observatory/observatory.hpp"
#include "sim/network.hpp"

namespace cgn {
namespace {

using netcore::Ipv4Address;
using netcore::Ipv4Prefix;
using netcore::RoutingTable;

// --- analysis: DynamicUnionFind --------------------------------------------

TEST(DynamicUnionFind, GrowsAndUnites) {
  analysis::DynamicUnionFind uf;
  EXPECT_EQ(uf.size(), 0u);
  const std::size_t a = uf.add_vertex();
  const std::size_t b = uf.add_vertex();
  const std::size_t c = uf.add_vertex();
  EXPECT_EQ(uf.size(), 3u);
  EXPECT_FALSE(uf.connected(a, c));
  EXPECT_TRUE(uf.unite(a, b));
  EXPECT_TRUE(uf.unite(b, c));
  EXPECT_FALSE(uf.unite(a, c)) << "already connected";
  EXPECT_TRUE(uf.connected(a, c));
  const std::size_t d = uf.add_vertex();
  EXPECT_FALSE(uf.connected(a, d)) << "late vertices start isolated";
  uf.clear();
  EXPECT_EQ(uf.size(), 0u);
}

// --- obs: histogram quantiles ----------------------------------------------

TEST(HistogramQuantiles, InterpolatesWithinBuckets) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Histogram& h =
      obs::histogram("test.observatory.quantile_hist", {10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.observe(5.0);   // bucket [0, 10)
  for (int i = 0; i < 4; ++i) h.observe(15.0);  // bucket [10, 20)
  // Rank q*8 walks the cumulative counts; linear interpolation inside the
  // holding bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);   // rank 4 = bucket 0 exhausted
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);   // rank 2 of 4 in [0, 10)
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);  // rank 6 -> 2 of 4 in [10, 20)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramQuantiles, OverflowClampsToLastBound) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Histogram& h =
      obs::histogram("test.observatory.overflow_hist", {10.0, 20.0});
  for (int i = 0; i < 8; ++i) h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0)
      << "overflow-bucket quantiles clamp to the last finite bound";
}

TEST(MetricsExport, JsonIncludesQuantiles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::histogram("test.observatory.json_hist", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  obs::MetricsRegistry::global().export_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// --- obs: Prometheus text exposition ---------------------------------------

TEST(MetricsExport, PrometheusExposition) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::counter("test.prom.requests").inc(7);
  obs::gauge("test.prom.depth").set(3);
  obs::Histogram& h = obs::histogram("test.prom.latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  std::ostringstream os;
  obs::MetricsRegistry::global().export_prometheus(os);
  const std::string text = os.str();

  // Dots sanitize to underscores under a cgn_ prefix; TYPE precedes samples.
  EXPECT_NE(text.find("# TYPE cgn_test_prom_requests counter\n"
                      "cgn_test_prom_requests 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE cgn_test_prom_depth gauge\n"
                      "cgn_test_prom_depth 3\n"),
            std::string::npos);
  // Cumulative buckets with the +Inf catch-all, then sum/count/quantiles.
  EXPECT_NE(text.find("cgn_test_prom_latency_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_count 3"), std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_sum"), std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_p50"), std::string::npos);
  EXPECT_NE(text.find("cgn_test_prom_latency_p99"), std::string::npos);
}

// --- obs: TraceRing kind tallies -------------------------------------------

TEST(TraceRingTallies, CountKindsAcrossOverwrites) {
  obs::TraceRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.push({0, 0, static_cast<std::uint8_t>(i % 2), 0, 0.0});
  EXPECT_EQ(ring.size(), 4u) << "window slid";
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.kind_tally(0), 5u) << "tallies survive overwrites";
  EXPECT_EQ(ring.kind_tally(1), 5u);
  EXPECT_EQ(ring.kind_tally(2), 0u);
  ring.push({0, 0, 10, 0, 0.0});  // kinds fold modulo the slot count
  EXPECT_EQ(ring.kind_tally(2), 1u);
  ring.clear();
  EXPECT_EQ(ring.kind_tally(0), 0u);
  EXPECT_EQ(ring.total_pushed(), 0u);
}

// --- sim: route-cache hits surface as an obs counter ------------------------

TEST(RouteCacheObsCounter, CountsHits) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const std::uint64_t before = obs::counter("sim.net.route_cache_hits").value();
  sim::Clock clock;
  sim::Network net(clock);
  const sim::NodeId ra = net.add_router_chain(net.root(), 2, "a");
  const sim::NodeId host = net.add_node(ra, "host");
  const Ipv4Address addr_a{16, 0, 0, 1};
  net.add_local_address(host, addr_a);
  net.register_address(addr_a, host, net.root());
  const sim::NodeId rb = net.add_router_chain(net.root(), 2, "b");
  const sim::NodeId server = net.add_node(rb, "server");
  const Ipv4Address addr_b{16, 0, 0, 2};
  net.add_local_address(server, addr_b);
  net.register_address(addr_b, server, net.root());
  for (int i = 0; i < 3; ++i)
    (void)net.send(sim::Packet::udp({addr_a, 1}, {addr_b, 2}), host);
  const std::uint64_t after = obs::counter("sim.net.route_cache_hits").value();
  EXPECT_GT(after, before) << "repeat sends must hit the route cache";
}

// --- analysis: streaming detectors ------------------------------------------

dht::Contact contact(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d, std::uint16_t port = 6881) {
  dht::Contact out;
  out.endpoint = {Ipv4Address(a, b, c, d), port};
  return out;
}

RoutingTable two_as_routes() {
  RoutingTable routes;
  routes.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  routes.announce(Ipv4Prefix::parse("17.0.0.0/8"), 2);
  return routes;
}

/// One 6-public x 7-internal leakage cluster in AS1's 10X range: every
/// leaker reports the shared internal peer plus a private one.
struct LeakScenario {
  std::vector<dht::Contact> leakers;
  std::vector<std::pair<dht::Contact, dht::Contact>> leaks;

  LeakScenario() {
    const dht::Contact shared = contact(10, 0, 0, 7);
    for (std::uint8_t i = 1; i <= 6; ++i) {
      const dht::Contact leaker = contact(16, 0, 0, i);
      leakers.push_back(leaker);
      leaks.emplace_back(leaker, shared);
      leaks.emplace_back(leaker, contact(10, 0, 1, i));
    }
  }
};

TEST(StreamingBt, OrderIndependentAndMatchesBatch) {
  const RoutingTable routes = two_as_routes();
  const LeakScenario sc;

  analysis::StreamingBtAnalyzer forward(routes);
  for (const auto& c : sc.leakers) forward.note_queried(c);
  for (const auto& [leaker, internal] : sc.leaks)
    forward.note_leak(leaker, internal);

  analysis::StreamingBtAnalyzer reverse(routes);
  for (auto it = sc.leaks.rbegin(); it != sc.leaks.rend(); ++it)
    reverse.note_leak(it->first, it->second);
  for (auto it = sc.leakers.rbegin(); it != sc.leakers.rend(); ++it)
    reverse.note_queried(*it);
  // Duplicate events must not perturb set/tally state.
  reverse.note_queried(sc.leakers.front());
  reverse.note_leak(sc.leaks.front().first, sc.leaks.front().second);

  const analysis::BtDetectionResult a = forward.snapshot();
  const analysis::BtDetectionResult b = reverse.snapshot();
  EXPECT_EQ(analysis::fig04_figures(a), analysis::fig04_figures(b));
  ASSERT_TRUE(a.per_as.contains(1));
  const auto& va = a.per_as.at(1);
  const auto& vb = b.per_as.at(1);
  EXPECT_TRUE(va.cgn_positive) << "6x7 cluster crosses the 5x5 boundary";
  for (std::size_t r = 0; r < netcore::kReservedRangeCount; ++r) {
    EXPECT_EQ(va.largest[r].public_ips, vb.largest[r].public_ips);
    EXPECT_EQ(va.largest[r].internal_ips, vb.largest[r].internal_ips);
  }

  // The batch detector delegates to the same engine: same dataset, same
  // result.
  crawler::CrawlDataset data;
  for (const auto& c : sc.leakers) data.note_queried(c);
  for (const auto& [leaker, internal] : sc.leaks)
    data.note_leak(leaker, internal);
  const analysis::BtDetectionResult batch =
      analysis::BtDetector().analyze(data, routes);
  EXPECT_EQ(analysis::fig04_figures(a), analysis::fig04_figures(batch));
  EXPECT_EQ(batch.per_as.at(1).cgn_positive, va.cgn_positive);
}

TEST(StreamingBt, VpnExclusivityRetractsSharedInternals) {
  const RoutingTable routes = two_as_routes();
  const LeakScenario sc;
  const dht::Contact shared = contact(10, 0, 0, 7);
  const dht::Contact as2_leaker = contact(17, 0, 0, 1);

  // Two ingest orders: the poisoning second-AS leak arriving last (forces a
  // retraction of already-linked edges) and first (edges are skipped on
  // arrival). Both must converge on the same post-filter state.
  analysis::StreamingBtAnalyzer late(routes);
  for (const auto& c : sc.leakers) late.note_queried(c);
  for (const auto& [leaker, internal] : sc.leaks)
    late.note_leak(leaker, internal);
  EXPECT_TRUE(late.snapshot().per_as.at(1).cgn_positive);
  late.note_leak(as2_leaker, shared);  // second AS poisons the shared peer

  analysis::StreamingBtAnalyzer early(routes);
  early.note_leak(as2_leaker, shared);
  for (const auto& c : sc.leakers) early.note_queried(c);
  for (const auto& [leaker, internal] : sc.leaks)
    early.note_leak(leaker, internal);

  for (const analysis::StreamingBtAnalyzer* s : {&late, &early}) {
    const analysis::BtDetectionResult r = s->snapshot();
    const auto& v = r.per_as.at(1);
    EXPECT_FALSE(v.cgn_positive)
        << "without the shared peer the cluster splits into 1x1 fragments";
    for (const auto& c : v.largest) EXPECT_LT(c.internal_ips, 5u);
  }
  EXPECT_EQ(analysis::fig04_figures(late.snapshot()),
            analysis::fig04_figures(early.snapshot()));
}

netalyzr::SessionResult session(netcore::Asn asn, std::uint8_t dev_octet,
                                std::uint8_t pub_octet, bool translated) {
  netalyzr::SessionResult s;
  s.asn = asn;
  s.ip_dev = Ipv4Address(192, 168, 1, dev_octet);
  s.ip_pub = Ipv4Address(16, 0, pub_octet, 1);
  // IPcpe != IPpub marks a candidate session (a NAT beyond the CPE).
  s.ip_cpe = translated ? Ipv4Address(10, 64, dev_octet, 1) : *s.ip_pub;
  return s;
}

TEST(StreamingNz, OrderIndependentAndMatchesBatch) {
  const RoutingTable routes = two_as_routes();
  std::vector<netalyzr::SessionResult> sessions;
  for (std::uint8_t i = 0; i < 12; ++i)
    sessions.push_back(session(1, i, static_cast<std::uint8_t>(i % 7), true));
  for (std::uint8_t i = 0; i < 11; ++i)
    sessions.push_back(session(1, i, 1, false));

  analysis::StreamingNetalyzrClassifier forward(routes);
  for (const auto& s : sessions) forward.ingest(s);
  analysis::StreamingNetalyzrClassifier reverse(routes);
  for (auto it = sessions.rbegin(); it != sessions.rend(); ++it)
    reverse.ingest(*it);

  const analysis::NetalyzrDetectionResult a = forward.snapshot();
  const analysis::NetalyzrDetectionResult b = reverse.snapshot();
  EXPECT_EQ(analysis::fig05_figures(a), analysis::fig05_figures(b));
  ASSERT_TRUE(a.per_as.contains(1));
  EXPECT_TRUE(a.per_as.at(1).covered) << "23 sessions clear the >=10 bar";
  EXPECT_EQ(a.per_as.at(1).cgn_positive, b.per_as.at(1).cgn_positive);

  const analysis::NetalyzrDetectionResult batch =
      analysis::NetalyzrDetector().analyze(sessions, routes);
  EXPECT_EQ(analysis::fig05_figures(a), analysis::fig05_figures(batch));
}

// --- observatory: HTTP server over real sockets -----------------------------

std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesRoutesOverRealSockets) {
  observatory::HttpServer server;
  std::string error;
  const bool started = server.start(
      0,
      [](const std::string& path) {
        if (path == "/hello")
          return observatory::HttpResponse{200, "text/plain", "hi\n"};
        return observatory::HttpResponse{404, "text/plain", "nope\n"};
      },
      &error);
  if (!started) GTEST_SKIP() << "cannot bind loopback: " << error;
  ASSERT_NE(server.port(), 0);

  const std::string ok = http_get(server.port(), "GET /hello HTTP/1.0\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\nhi\n"), std::string::npos);

  // Query strings are stripped before dispatch.
  const std::string query =
      http_get(server.port(), "GET /hello?x=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(query.find("200 OK"), std::string::npos);

  const std::string missing =
      http_get(server.port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  const std::string post =
      http_get(server.port(), "POST /hello HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
}

// --- observatory: endpoint bodies ------------------------------------------

TEST(ObservatoryEndpoint, WindowsHealthAndFigures) {
  const RoutingTable routes = two_as_routes();
  const netcore::AsRegistry registry;
  observatory::ObservatoryConfig cfg;
  cfg.window_s = 10.0;
  observatory::Observatory obs(routes, registry, cfg);

  obs.add_stream_total(5);
  observatory::StreamEvent e;
  e.kind = observatory::StreamEvent::Kind::bt_queried;
  e.contact = contact(16, 0, 0, 1);
  e.time = 1.0;
  obs.ingest(e);
  e.time = 15.0;  // crosses into the second window
  obs.ingest(e);

  EXPECT_EQ(obs.events_ingested(), 2u);
  EXPECT_EQ(obs.stream_total(), 5u);
  EXPECT_FALSE(obs.stream_done());

  const observatory::HttpResponse health = obs.handle("/health");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"streaming\""), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"closed\":1"), std::string::npos)
      << "first window must have rolled";
  EXPECT_NE(health.body.find("\"lag\":3"), std::string::npos);

  super::CampaignReport report;
  report.shards.resize(2);
  report.shards[0].status = super::ShardStatus::completed;
  report.shards[1].status = super::ShardStatus::quarantined;
  obs.note_campaign_report("crawl_ping", report);
  obs.note_stream_done();
  const std::string health2 = obs.handle("/health").body;
  EXPECT_NE(health2.find("\"crawl_ping\":{\"planned\":2"), std::string::npos);
  EXPECT_NE(health2.find("\"quarantined\":1"), std::string::npos);
  EXPECT_NE(health2.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(health2.find("\"status\":\"complete\""), std::string::npos);

  const observatory::HttpResponse figures = obs.handle("/figures");
  EXPECT_EQ(figures.status, 200);
  for (const char* key :
       {"fig04_clusters", "fig05_netalyzr_candidates", "tab05_coverage"})
    EXPECT_NE(figures.body.find(key), std::string::npos) << figures.body;

  if (obs::kMetricsEnabled) {
    const observatory::HttpResponse metrics = obs.handle("/metrics");
    EXPECT_NE(metrics.body.find("cgn_observatory_ingest_lag 3"),
              std::string::npos)
        << "probe must report announced-but-not-ingested events";
    EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  }

  obs::TraceRing ring(8);
  ring.push({7, 12, static_cast<std::uint8_t>(sim::Network::TraceKind::dropped),
             static_cast<std::uint8_t>(sim::DropReason::ttl_expired), 3.5});
  obs.capture_trace(ring);
  const std::string trace = obs.handle("/trace").body;
  EXPECT_NE(trace.find("\"captured\":1"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"drop_reason\":\"ttl_expired\""), std::string::npos);

  EXPECT_EQ(obs.handle("/nope").status, 404);
  EXPECT_EQ(obs.handle("/").status, 200);
}

}  // namespace
}  // namespace cgn
