// Unit tests for cgn::super: wire encoding, checkpoint files, and the
// shard supervisor's retry/quarantine/watchdog/resume semantics (with
// synthetic shard bodies — the end-to-end campaign coverage lives in
// super_recovery_test.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "super/checkpoint.hpp"
#include "super/supervisor.hpp"
#include "super/wire.hpp"

namespace cgn::super {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgn_super_" + name;
  std::remove(path.c_str());
  return path;
}

TEST(SuperWire, RoundTripsEveryFieldType) {
  wire::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-1234.5678901234);
  w.f64(0.1);  // not exactly representable: must round-trip via bit_cast
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1234.5678901234);
  EXPECT_EQ(r.f64(), 0.1);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(SuperWire, TruncatedReadFailsSoftly) {
  wire::Writer w;
  w.u32(7);
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // overran: zero, never throws
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.str(), "");  // still failed, still soft
}

TEST(SuperWire, OversizedStringLengthDoesNotOverrun) {
  wire::Writer w;
  w.u32(1000);  // length prefix far beyond the buffer
  w.raw("xy", 2);
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

CheckpointKey test_key() {
  CheckpointKey key;
  key.kind = "test";
  key.world_seed = 42;
  key.plan_hash = 0xfeed;
  key.shard_count = 8;
  key.payload_version = 1;
  return key;
}

TEST(SuperCheckpoint, RoundTripsRecordsAcrossReopen) {
  const std::string path = temp_path("roundtrip.ckpt");
  {
    CheckpointWriter writer;
    writer.open(path, test_key());
    ASSERT_TRUE(writer.is_open());
    writer.append(3, "three");
    writer.append(5, "five");
  }
  // Reopen with the same key: existing records survive, new ones append.
  {
    CheckpointWriter writer;
    writer.open(path, test_key());
    writer.append(1, "one");
    writer.append(3, "three-rewritten");  // last record wins
  }
  auto restored = load_checkpoint(path, test_key());
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored[1], "one");
  EXPECT_EQ(restored[3], "three-rewritten");
  EXPECT_EQ(restored[5], "five");
}

TEST(SuperCheckpoint, KeyMismatchLoadsNothingAndWriterStartsOver) {
  const std::string path = temp_path("mismatch.ckpt");
  {
    CheckpointWriter writer;
    writer.open(path, test_key());
    writer.append(0, "stale");
  }
  CheckpointKey other = test_key();
  other.world_seed = 43;
  EXPECT_TRUE(load_checkpoint(path, other).empty());

  // Opening with a different key truncates: the stale records are gone
  // even for the original key afterwards.
  {
    CheckpointWriter writer;
    writer.open(path, other);
    writer.append(2, "fresh");
  }
  EXPECT_TRUE(load_checkpoint(path, test_key()).empty());
  auto fresh = load_checkpoint(path, other);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[2], "fresh");
}

TEST(SuperCheckpoint, CorruptTailKeepsTheValidPrefix) {
  const std::string path = temp_path("corrupt.ckpt");
  {
    CheckpointWriter writer;
    writer.open(path, test_key());
    writer.append(0, "alpha");
    writer.append(1, "beta");
  }
  // Simulate a kill mid-write: a partial record at the tail.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("\x07\x00\x00\x00garb", 8);
  }
  auto restored = load_checkpoint(path, test_key());
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0], "alpha");
  EXPECT_EQ(restored[1], "beta");
}

TEST(SuperCheckpoint, MissingFileLoadsNothing) {
  EXPECT_TRUE(load_checkpoint(temp_path("absent.ckpt"), test_key()).empty());
}

TEST(SuperVisor, CleanRunCompletesEveryShard) {
  std::vector<int> ran(6, 0);
  ShardSupervisor supervisor({});
  const CampaignReport report =
      supervisor.run(ran.size(), [&](std::size_t s) { ran[s]++; }, nullptr, 2);
  EXPECT_EQ(report.count(ShardStatus::completed), 6u);
  EXPECT_EQ(report.finished(), 6u);
  EXPECT_FALSE(report.degraded());
  EXPECT_EQ(report.coverage(), 1.0);
  for (int n : ran) EXPECT_EQ(n, 1);
}

TEST(SuperVisor, RetryRecoversAFlakyShard) {
  std::vector<std::atomic<int>> attempts(4);
  SupervisorConfig cfg;
  cfg.max_attempts = 3;
  ShardSupervisor supervisor(cfg);
  const CampaignReport report = supervisor.run(
      attempts.size(),
      [&](std::size_t s) {
        if (s == 2 && attempts[s].fetch_add(1) < 2)
          throw std::runtime_error("flaky");
        if (s != 2) attempts[s].fetch_add(1);
      },
      nullptr, 1);
  EXPECT_EQ(report.shards[2].status, ShardStatus::recovered);
  EXPECT_EQ(report.shards[2].attempts, 3);
  EXPECT_EQ(report.count(ShardStatus::completed), 3u);
  EXPECT_FALSE(report.degraded());
}

TEST(SuperVisor, ExhaustedBudgetQuarantinesWithoutKillingTheCampaign) {
  SupervisorConfig cfg;
  cfg.max_attempts = 2;
  ShardSupervisor supervisor(cfg);
  std::vector<int> ran(5, 0);
  const CampaignReport report = supervisor.run(
      ran.size(),
      [&](std::size_t s) {
        ran[s]++;
        if (s == 1) throw std::runtime_error("dead shard");
      },
      nullptr, 2);
  EXPECT_EQ(report.shards[1].status, ShardStatus::quarantined);
  EXPECT_EQ(report.shards[1].attempts, 2);
  EXPECT_EQ(report.shards[1].error, "dead shard");
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.finished(), 4u);
  EXPECT_DOUBLE_EQ(report.coverage(), 0.8);
  EXPECT_EQ(ran[1], 2);  // budget spent
  for (std::size_t s = 0; s < ran.size(); ++s) {
    if (s != 1) {
      EXPECT_EQ(ran[s], 1) << "shard " << s;
    }
  }
}

TEST(SuperVisor, QuarantineOffRestoresAllOrNothing) {
  SupervisorConfig cfg;
  cfg.quarantine = false;
  ShardSupervisor supervisor(cfg);
  try {
    (void)supervisor.run(
        4,
        [&](std::size_t s) {
          if (s == 1 || s == 3)
            throw std::runtime_error("boom " + std::to_string(s));
        },
        nullptr, 1);
    FAIL() << "expected an aggregate error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 4 shards failed"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 3"), std::string::npos) << what;
  }
}

TEST(SuperVisor, InjectedCrashesAreThreadCountInvariant) {
  fault::FaultPlan plan;
  plan.shards.crash_rate = 0.5;
  const fault::FaultInjector injector(plan);

  auto run = [&](std::size_t threads) {
    SupervisorConfig cfg;
    cfg.max_attempts = 2;
    cfg.faults = &injector;
    cfg.salt = 7;
    ShardSupervisor supervisor(cfg);
    return supervisor.run(16, [](std::size_t) {}, nullptr, threads);
  };
  const CampaignReport serial = run(1);
  const CampaignReport parallel = run(4);

  // The crash pattern is a pure function of (plan seed, salt, shard,
  // attempt): both worker counts must classify every shard identically.
  std::size_t crashed_once = 0, quarantined = 0;
  for (std::size_t s = 0; s < serial.shards.size(); ++s) {
    EXPECT_EQ(serial.shards[s].status, parallel.shards[s].status)
        << "shard " << s;
    EXPECT_EQ(serial.shards[s].attempts, parallel.shards[s].attempts)
        << "shard " << s;
    crashed_once += serial.shards[s].status == ShardStatus::recovered;
    quarantined += serial.shards[s].status == ShardStatus::quarantined;
  }
  // With rate 0.5 over 16 shards the sweep must exercise every outcome.
  EXPECT_GT(crashed_once + quarantined, 0u);
  EXPECT_LT(quarantined, serial.shards.size());
}

TEST(SuperVisor, ShardCrashIsAPureFunction) {
  fault::FaultPlan plan;
  plan.shards.crash_rate = 0.4;
  const fault::FaultInjector a(plan);
  const fault::FaultInjector b(plan);
  bool any_crash = false, any_survive = false;
  for (std::uint64_t shard = 0; shard < 64; ++shard)
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const bool crash = a.shard_crash(3, shard, attempt);
      EXPECT_EQ(crash, b.shard_crash(3, shard, attempt));
      EXPECT_EQ(crash, a.shard_crash(3, shard, attempt));  // repeatable
      any_crash |= crash;
      any_survive |= !crash;
    }
  EXPECT_TRUE(any_crash);
  EXPECT_TRUE(any_survive);
  // Distinct campaign salts see distinct crash patterns.
  bool differs = false;
  for (std::uint64_t shard = 0; shard < 64 && !differs; ++shard)
    differs = a.shard_crash(3, shard, 1) != a.shard_crash(4, shard, 1);
  EXPECT_TRUE(differs);
}

TEST(SuperVisor, AbortAfterShardsThrowsAndResumeCompletesTheRest) {
  const std::string path = temp_path("resume.ckpt");
  std::vector<std::uint64_t> values(6, 0);
  std::vector<int> executions(6, 0);

  ShardCodec codec;
  codec.encode = [&](std::size_t s) {
    wire::Writer w;
    w.u64(values[s]);
    return w.take();
  };
  codec.decode = [&](std::size_t s, std::string_view payload) {
    wire::Reader r(payload);
    const std::uint64_t v = r.u64();
    if (!r.done()) return false;
    values[s] = v;
    return true;
  };

  SupervisorConfig cfg;
  cfg.checkpoint_path = path;
  cfg.campaign_kind = "unit";
  cfg.world_seed = 99;
  auto shard_fn = [&](std::size_t s) {
    executions[s]++;
    values[s] = s * s + 1;
  };

  {
    SupervisorConfig kill = cfg;
    kill.abort_after_shards = 2;
    ShardSupervisor supervisor(kill);
    EXPECT_THROW((void)supervisor.run(6, shard_fn, &codec, 1),
                 CampaignAborted);
  }
  // Serial order: shards 0 and 1 finished and were checkpointed.
  EXPECT_EQ(executions[0], 1);
  EXPECT_EQ(executions[1], 1);
  EXPECT_EQ(executions[5], 0);

  std::fill(values.begin(), values.end(), 0);  // "process restart"
  ShardSupervisor supervisor(cfg);
  const CampaignReport report = supervisor.run(6, shard_fn, &codec, 1);
  EXPECT_EQ(report.count(ShardStatus::resumed), 2u);
  EXPECT_EQ(report.count(ShardStatus::completed), 4u);
  EXPECT_FALSE(report.degraded());
  for (std::size_t s = 0; s < values.size(); ++s)
    EXPECT_EQ(values[s], s * s + 1) << "shard " << s;
  // Resumed shards were restored, not re-run.
  EXPECT_EQ(executions[0], 1);
  EXPECT_EQ(executions[1], 1);
  EXPECT_EQ(executions[5], 1);
}

TEST(SuperVisor, RejectedPayloadFallsBackToARun) {
  const std::string path = temp_path("reject.ckpt");
  std::vector<int> ran(3, 0);
  ShardCodec codec;
  codec.encode = [](std::size_t) { return std::string("v1"); };
  codec.decode = [](std::size_t, std::string_view) {
    return false;  // schema changed under us: force re-runs
  };
  SupervisorConfig cfg;
  cfg.checkpoint_path = path;
  {
    ShardSupervisor supervisor(cfg);
    (void)supervisor.run(3, [&](std::size_t s) { ran[s]++; }, &codec, 1);
  }
  ShardSupervisor supervisor(cfg);
  const CampaignReport report =
      supervisor.run(3, [&](std::size_t s) { ran[s]++; }, &codec, 1);
  EXPECT_EQ(report.count(ShardStatus::resumed), 0u);
  EXPECT_EQ(report.count(ShardStatus::completed), 3u);
  for (int n : ran) EXPECT_EQ(n, 2);
}

TEST(SuperVisor, ShardDeadlineAbortsARunawayShard) {
  SupervisorConfig cfg;
  cfg.shard_deadline_s = 0.05;
  ShardSupervisor supervisor(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignReport report = supervisor.run(
      3,
      [&](std::size_t s) {
        if (s != 1) return;
        // Runaway shard: spins until the watchdog asks it to stop (with a
        // far-out safety valve so a broken watchdog cannot hang the test).
        while (!ShardSupervisor::cancel_requested() &&
               std::chrono::steady_clock::now() - t0 <
                   std::chrono::seconds(10))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      nullptr, 1);
  EXPECT_EQ(report.shards[1].status, ShardStatus::deadline_aborted);
  EXPECT_EQ(report.shards[1].error, "shard deadline exceeded");
  EXPECT_EQ(report.count(ShardStatus::completed), 2u);
  EXPECT_TRUE(report.degraded());
}

TEST(SuperVisor, CampaignDeadlineStopsDispatchingNewShards) {
  SupervisorConfig cfg;
  cfg.campaign_deadline_s = 0.04;
  ShardSupervisor supervisor(cfg);
  const CampaignReport report = supervisor.run(
      8,
      [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      },
      nullptr, 1);
  // The first shard(s) beat the deadline; later dispatches must not run.
  EXPECT_GE(report.finished(), 1u);
  EXPECT_GE(report.count(ShardStatus::not_run), 1u);
  for (const ShardOutcome& o : report.shards) {
    if (o.status == ShardStatus::not_run) {
      EXPECT_EQ(o.error, "campaign deadline exceeded");
    }
  }
}

TEST(SuperVisor, EmptyCampaignIsTriviallyComplete) {
  ShardSupervisor supervisor({});
  const CampaignReport report =
      supervisor.run(0, [](std::size_t) { FAIL(); }, nullptr, 4);
  EXPECT_EQ(report.planned(), 0u);
  EXPECT_EQ(report.coverage(), 1.0);
  EXPECT_FALSE(report.degraded());
}

}  // namespace
}  // namespace cgn::super
