// RFC 5780 behaviour discovery: mapping and filtering dimensions recovered
// independently for every NAT type.
#include <gtest/gtest.h>

#include "stun/stun.hpp"
#include "test_topology.hpp"

namespace cgn::stun {
namespace {

using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

struct DiscoveryWorld {
  MiniNet mini;
  std::unique_ptr<StunServer> server;
  MiniNet::Line line;

  explicit DiscoveryWorld(std::optional<nat::MappingType> type) {
    sim::NodeId host = mini.net.add_node(mini.net.root(), "stun");
    server = std::make_unique<StunServer>(mini.net, host,
                                          Ipv4Address{16, 255, 1, 1},
                                          Ipv4Address{16, 255, 1, 2}, 3478,
                                          3479);
    server->install(mini.net);
    LineConfig lc;
    lc.with_cpe = type.has_value();
    if (type) {
      lc.cpe.name = "nat";
      lc.cpe.mapping = *type;
      lc.cpe.port_allocation = nat::PortAllocation::sequential;
    }
    line = mini.add_line(lc);
  }

  BehaviorDiscovery run() {
    StunClient client(line.device, {line.device_address, 47000}, *line.demux);
    return client.discover(mini.net, *server);
  }
};

TEST(BehaviorDiscovery, OpenHostIsNotNatted) {
  DiscoveryWorld w(std::nullopt);
  auto d = w.run();
  ASSERT_TRUE(d.responded);
  EXPECT_FALSE(d.natted);
  EXPECT_EQ(d.mapping, MappingBehavior::endpoint_independent);
  EXPECT_EQ(d.filtering, FilteringBehavior::endpoint_independent);
}

struct BehaviorCase {
  nat::MappingType type;
  MappingBehavior mapping;
  FilteringBehavior filtering;
};

class BehaviorMatrix : public ::testing::TestWithParam<BehaviorCase> {};

TEST_P(BehaviorMatrix, SeparatesMappingFromFiltering) {
  const BehaviorCase& c = GetParam();
  DiscoveryWorld w(c.type);
  auto d = w.run();
  ASSERT_TRUE(d.responded);
  EXPECT_TRUE(d.natted);
  EXPECT_EQ(d.mapping, c.mapping) << to_string(d.mapping);
  EXPECT_EQ(d.filtering, c.filtering) << to_string(d.filtering);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, BehaviorMatrix,
    ::testing::Values(
        BehaviorCase{nat::MappingType::full_cone,
                     MappingBehavior::endpoint_independent,
                     FilteringBehavior::endpoint_independent},
        BehaviorCase{nat::MappingType::address_restricted,
                     MappingBehavior::endpoint_independent,
                     FilteringBehavior::address_dependent},
        BehaviorCase{nat::MappingType::port_address_restricted,
                     MappingBehavior::endpoint_independent,
                     FilteringBehavior::address_and_port_dependent},
        BehaviorCase{nat::MappingType::symmetric,
                     MappingBehavior::address_and_port_dependent,
                     FilteringBehavior::address_and_port_dependent}),
    [](const auto& info) {
      auto clean = [](std::string_view s) {
        std::string out;
        for (char ch : s)
          if (ch != ' ' && ch != '-') out.push_back(ch);
        return out;
      };
      return clean(nat::to_string(info.param.type));
    });

TEST(BehaviorDiscovery, Rfc6888RequirementCheck) {
  // RFC 6888 REQ-1 (via RFC 4787 REQ-1): a CGN must use endpoint-independent
  // mapping. The discovery result is exactly the compliance check an
  // operator would run; symmetric CGNs — which the paper found at 11% of
  // non-cellular and 40% of cellular CGN ASes — fail it.
  DiscoveryWorld compliant(nat::MappingType::port_address_restricted);
  EXPECT_EQ(compliant.run().mapping, MappingBehavior::endpoint_independent);
  DiscoveryWorld violating(nat::MappingType::symmetric);
  EXPECT_EQ(violating.run().mapping,
            MappingBehavior::address_and_port_dependent);
}

}  // namespace
}  // namespace cgn::stun
