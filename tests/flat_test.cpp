// cgn::flat unit tests + a randomized differential test against
// std::unordered_map under mixed insert/erase/find workloads — the
// backward-shift erase is exactly the kind of code that looks right and
// corrupts probe chains on the one overlooked wrap-around case.
#include "flat/flat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netcore/ipv4.hpp"
#include "sim/rng.hpp"

namespace {

using cgn::flat::FlatMap;
using cgn::flat::FlatSet;
using cgn::flat::PortSet;

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7u), m.end());

  auto [it, inserted] = m.try_emplace(7u, 70);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(it->first, 7u);
  EXPECT_EQ(it->second, 70);
  EXPECT_EQ(m.size(), 1u);

  auto [it2, inserted2] = m.try_emplace(7u, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 70) << "try_emplace must not overwrite";

  m[7u] = 71;
  EXPECT_EQ(m.find(7u)->second, 71);
  m[8u] = 80;
  EXPECT_EQ(m.size(), 2u);

  EXPECT_EQ(m.erase(7u), 1u);
  EXPECT_EQ(m.erase(7u), 0u);
  EXPECT_EQ(m.find(7u), m.end());
  EXPECT_EQ(m.find(8u)->second, 80);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowthKeepsAllEntries) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  constexpr std::uint32_t kN = 10'000;
  for (std::uint32_t i = 0; i < kN; ++i) m[i * 2654435761u] = i;
  EXPECT_EQ(m.size(), kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    auto it = m.find(i * 2654435761u);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->second, i);
  }
}

/// Hasher mapping everything to one home slot: every operation runs through
/// maximal-length probe chains, so wrap-around and backward-shift edge cases
/// are exercised constantly instead of probabilistically.
struct CollideAll {
  std::size_t operator()(std::uint32_t) const noexcept { return 0; }
};

TEST(FlatMap, BackwardShiftEraseUnderFullCollision) {
  FlatMap<std::uint32_t, int, CollideAll> m;
  for (std::uint32_t i = 0; i < 6; ++i) m[i] = static_cast<int>(i);
  // Erase from the middle of the chain, then the head, then verify every
  // survivor is still reachable (a tombstone-free table must backward-shift
  // the chain or lose the tail).
  EXPECT_EQ(m.erase(2u), 1u);
  EXPECT_EQ(m.erase(0u), 1u);
  for (std::uint32_t i : {1u, 3u, 4u, 5u}) {
    auto it = m.find(i);
    ASSERT_NE(it, m.end()) << "lost key " << i << " after backward shift";
    EXPECT_EQ(it->second, static_cast<int>(i));
  }
  EXPECT_EQ(m.find(0u), m.end());
  EXPECT_EQ(m.find(2u), m.end());
  // Reinsert into the shifted chain and erase everything.
  m[0u] = 100;
  EXPECT_EQ(m.find(0u)->second, 100);
  for (std::uint32_t i = 0; i < 6; ++i) m.erase(i);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, EraseByAliasedStoredKey) {
  // erase(it->first) — the erase argument aliases the stored key that the
  // backward shift destroys; the NAT's find_in path does exactly this.
  FlatMap<std::uint32_t, int, CollideAll> m;
  for (std::uint32_t i = 0; i < 8; ++i) m[i] = static_cast<int>(i);
  auto it = m.find(3u);
  ASSERT_NE(it, m.end());
  EXPECT_EQ(m.erase(it->first), 1u);
  EXPECT_EQ(m.size(), 7u);
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(m.find(i) != m.end(), i != 3u) << i;
}

TEST(FlatMap, ClearKeepsCapacityAndWorks) {
  FlatMap<int, std::string> m;
  for (int i = 0; i < 100; ++i) m[i] = "v" + std::to_string(i);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  m[5] = "five";
  EXPECT_EQ(m.find(5)->second, "five");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, MoveAndCopy) {
  FlatMap<int, int> a;
  for (int i = 0; i < 50; ++i) a[i] = i * 10;
  FlatMap<int, int> b = a;  // copy
  FlatMap<int, int> c = std::move(a);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(c.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.find(i)->second, i * 10);
    EXPECT_EQ(c.find(i)->second, i * 10);
  }
  b = std::move(c);
  EXPECT_EQ(b.size(), 50u);
  FlatMap<int, int> d;
  d[1] = 1;
  d = b;  // copy-assign over live content
  EXPECT_EQ(d.size(), 50u);
}

TEST(FlatMap, IterationVisitsEachElementOnce) {
  FlatMap<std::uint32_t, int> m;
  for (std::uint32_t i = 0; i < 257; ++i) m[i] = 1;
  std::size_t n = 0;
  int sum = 0;
  for (const auto& [k, v] : m) {
    (void)k;
    sum += v;
    ++n;
  }
  EXPECT_EQ(n, 257u);
  EXPECT_EQ(sum, 257);
}

TEST(FlatMap, NonTrivialValueDestruction) {
  // shared-state payloads: destructor/move correctness shows up as leaks or
  // double-frees under ASan.
  FlatMap<int, std::shared_ptr<int>> m;
  auto p = std::make_shared<int>(42);
  for (int i = 0; i < 100; ++i) m[i] = p;
  EXPECT_EQ(p.use_count(), 101);
  for (int i = 0; i < 50; ++i) m.erase(i);
  EXPECT_EQ(p.use_count(), 51);
  m.clear();
  EXPECT_EQ(p.use_count(), 1);
}

TEST(FlatSet, InsertContainsErase) {
  FlatSet<cgn::netcore::Ipv4Address> s;
  cgn::netcore::Ipv4Address a(10, 0, 0, 1), b(10, 0, 0, 2);
  EXPECT_TRUE(s.insert(a).second);
  EXPECT_FALSE(s.insert(a).second);
  EXPECT_TRUE(s.contains(a));
  EXPECT_FALSE(s.contains(b));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.erase(a), 1u);
  EXPECT_FALSE(s.contains(a));
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, ManyEndpoints) {
  FlatSet<cgn::netcore::Endpoint> s;
  for (std::uint16_t p = 1; p < 2000; ++p)
    s.insert(cgn::netcore::Endpoint{cgn::netcore::Ipv4Address(16, 0, 0, 1), p});
  EXPECT_EQ(s.size(), 1999u);
  for (std::uint16_t p = 1; p < 2000; ++p)
    EXPECT_TRUE(s.contains(
        cgn::netcore::Endpoint{cgn::netcore::Ipv4Address(16, 0, 0, 1), p}));
}

TEST(PortSet, BitmapSemantics) {
  PortSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(65535));
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(65535));
  EXPECT_TRUE(s.insert(1024));
  EXPECT_FALSE(s.insert(1024)) << "second insert of same port";
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(65535));
  EXPECT_EQ(s.erase(1024), 1u);
  EXPECT_EQ(s.erase(1024), 0u);
  EXPECT_EQ(s.size(), 2u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  // reusable after clear
  EXPECT_TRUE(s.insert(80));
  EXPECT_EQ(s.size(), 1u);
}

/// The differential test: FlatMap and std::unordered_map driven through the
/// same randomized mixed workload must agree on every lookup and on final
/// contents. Runs several seeds and a collision-heavy keyspace.
TEST(FlatMapDifferential, MatchesUnorderedMapUnderMixedOps) {
  for (std::uint64_t seed : {1ull, 7ull, 1337ull, 0xCA11ab1eull}) {
    cgn::sim::Rng rng(seed);
    FlatMap<std::uint32_t, std::uint64_t> flat;
    std::unordered_map<std::uint32_t, std::uint64_t> ref;
    // Small keyspace → plenty of hits, overwrites and erase-of-present.
    const std::uint32_t keyspace = 512;
    for (int op = 0; op < 60'000; ++op) {
      const auto k =
          static_cast<std::uint32_t>(rng.index(keyspace) * 2654435761u);
      switch (rng.index(4)) {
        case 0: {  // insert-or-assign
          const std::uint64_t v = rng.uniform(0, ~std::uint64_t{0});
          flat[k] = v;
          ref[k] = v;
          break;
        }
        case 1: {  // try_emplace (no overwrite)
          flat.try_emplace(k, op);
          ref.try_emplace(k, op);
          break;
        }
        case 2: {  // erase
          EXPECT_EQ(flat.erase(k), ref.erase(k));
          break;
        }
        default: {  // find
          auto fit = flat.find(k);
          auto rit = ref.find(k);
          ASSERT_EQ(fit != flat.end(), rit != ref.end()) << "op " << op;
          if (rit != ref.end()) ASSERT_EQ(fit->second, rit->second);
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size()) << "op " << op;
    }
    // Final contents must match exactly (order-insensitive).
    for (const auto& [k, v] : ref) {
      auto it = flat.find(k);
      ASSERT_NE(it, flat.end()) << k;
      EXPECT_EQ(it->second, v);
    }
    std::size_t n = 0;
    for (const auto& kv : flat) {
      EXPECT_EQ(ref.at(kv.first), kv.second);
      ++n;
    }
    EXPECT_EQ(n, ref.size());
  }
}

TEST(FlatMapDifferential, CollisionHeavyKeyspace) {
  // All keys share one home slot: the differential workload now runs on one
  // long probe chain, where any backward-shift mistake is immediately fatal.
  cgn::sim::Rng rng(99);
  FlatMap<std::uint32_t, int, CollideAll> flat;
  std::unordered_map<std::uint32_t, int> ref;
  for (int op = 0; op < 20'000; ++op) {
    const auto k = static_cast<std::uint32_t>(rng.index(64));
    if (rng.chance(0.5)) {
      flat[k] = op;
      ref[k] = op;
    } else {
      ASSERT_EQ(flat.erase(k), ref.erase(k)) << "op " << op;
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(it->second, v);
  }
}

TEST(PortSetDifferential, MatchesReference) {
  cgn::sim::Rng rng(4242);
  PortSet s;
  std::vector<bool> ref(65536, false);
  std::size_t ref_size = 0;
  for (int op = 0; op < 200'000; ++op) {
    const auto p = static_cast<std::uint16_t>(rng.index(65536));
    if (rng.chance(0.6)) {
      const bool inserted = s.insert(p);
      EXPECT_EQ(inserted, !ref[p]);
      if (!ref[p]) {
        ref[p] = true;
        ++ref_size;
      }
    } else {
      const std::size_t erased = s.erase(p);
      EXPECT_EQ(erased, ref[p] ? 1u : 0u);
      if (ref[p]) {
        ref[p] = false;
        --ref_size;
      }
    }
    ASSERT_EQ(s.size(), ref_size);
  }
}

}  // namespace
