#include "dht/dht_node.hpp"
#include "dht/node_id.hpp"
#include "dht/tracker.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace cgn::dht {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

TEST(NodeId160, RandomIdsDiffer) {
  sim::Rng rng(1);
  auto a = NodeId160::random(rng);
  auto b = NodeId160::random(rng);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_hex().size(), 40u);
}

TEST(NodeId160, XorDistanceProperties) {
  sim::Rng rng(2);
  auto a = NodeId160::random(rng);
  auto b = NodeId160::random(rng);
  // d(x,x) = 0.
  auto zero = a.distance_to(a);
  for (auto byte : zero) EXPECT_EQ(byte, 0);
  // Symmetry.
  EXPECT_EQ(a.distance_to(b), b.distance_to(a));
  // x is closer to x than anything else is.
  EXPECT_TRUE(a.closer_to(a, b));
  EXPECT_FALSE(a.closer_to(b, b));
}

TEST(NodeId160, BucketIndexFindsFirstDifferingBit) {
  NodeId160::Bytes x{}, y{};
  y[0] = 0x80;
  EXPECT_EQ(NodeId160(x).bucket_index(NodeId160(y)), 0);
  y[0] = 0x01;
  EXPECT_EQ(NodeId160(x).bucket_index(NodeId160(y)), 7);
  y[0] = 0;
  y[19] = 0x01;
  EXPECT_EQ(NodeId160(x).bucket_index(NodeId160(y)), 159);
  EXPECT_EQ(NodeId160(x).bucket_index(NodeId160(x)), 160);
}

/// Two public hosts running DHT nodes.
struct DhtPair {
  MiniNet mini;
  MiniNet::Line line_a, line_b;
  std::unique_ptr<DhtNode> a, b;

  explicit DhtPair(DhtNodeConfig cfg = {}) {
    LineConfig lc;
    lc.with_cpe = false;
    lc.line_public = Ipv4Address{16, 0, 1, 2};
    line_a = mini.add_line(lc, 11);
    lc.line_public = Ipv4Address{16, 0, 2, 2};
    line_b = mini.add_line(lc, 22);
    sim::Rng rng(5);
    a = std::make_unique<DhtNode>(NodeId160::random(rng),
                                  Endpoint{line_a.device_address, 6881},
                                  line_a.device, cfg, rng.fork());
    b = std::make_unique<DhtNode>(NodeId160::random(rng),
                                  Endpoint{line_b.device_address, 6881},
                                  line_b.device, cfg, rng.fork());
    line_a.demux->bind(6881, [this](sim::Network& n, const sim::Packet& p) {
      a->handle(n, p);
    });
    line_b.demux->bind(6881, [this](sim::Network& n, const sim::Packet& p) {
      b->handle(n, p);
    });
  }
};

TEST(DhtNode, PingValidatesCandidates) {
  DhtPair pair;
  pair.a->learn_contact({pair.b->id(), pair.b->local_endpoint()});
  EXPECT_FALSE(pair.a->knows_validated(
      {pair.b->id(), pair.b->local_endpoint()}));
  pair.a->run_maintenance(pair.mini.net);  // sends the validation ping
  EXPECT_TRUE(pair.a->knows_validated(
      {pair.b->id(), pair.b->local_endpoint()}));
  // B learned A from the inbound ping (as a candidate).
  EXPECT_EQ(pair.b->table_size(), 1u);
  EXPECT_EQ(pair.b->stats().pings_received, 1u);
}

TEST(DhtNode, FindNodesReturnsOnlyValidatedContacts) {
  DhtPair pair;
  sim::Rng rng(9);
  // Fill A with unvalidated garbage plus one validated contact (B).
  for (int i = 0; i < 20; ++i)
    pair.a->learn_contact(
        {NodeId160::random(rng), Endpoint{Ipv4Address{16, 5, 0, 1}, 1000}});
  pair.a->learn_contact({pair.b->id(), pair.b->local_endpoint()});
  // Several rounds so the ping budget covers every candidate.
  for (int i = 0; i < 4; ++i) pair.a->run_maintenance(pair.mini.net);

  // B queries A.
  std::uint64_t got = 0;
  pair.line_b.demux->bind(7000, [&](sim::Network&, const sim::Packet& p) {
    if (const auto* m = std::any_cast<Message>(&p.payload))
      if (const auto* nodes = std::get_if<NodesMsg>(m))
        got = nodes->contacts.size();
  });
  sim::Packet query = sim::Packet::udp({pair.line_b.device_address, 7000},
                                       pair.a->local_endpoint());
  query.payload = Message{FindNodesMsg{77, pair.b->id(), pair.b->id()}};
  pair.mini.net.send(std::move(query), pair.line_b.device);
  // Only B itself (validated) can be returned; the garbage is unvalidated.
  // (B may appear under two endpoints: the learned one and the query's
  // observed source.)
  EXPECT_GE(got, 1u);
  EXPECT_LE(got, 2u);
}

TEST(DhtNode, SloppyNodePropagatesUnvalidated) {
  DhtNodeConfig sloppy;
  sloppy.validate_before_propagate = false;
  DhtPair pair(sloppy);
  sim::Rng rng(9);
  for (int i = 0; i < 4; ++i)
    pair.a->learn_contact(
        {NodeId160::random(rng), Endpoint{Ipv4Address{16, 5, 0, 1}, 1000}});
  std::uint64_t got = 0;
  pair.line_b.demux->bind(7000, [&](sim::Network&, const sim::Packet& p) {
    if (const auto* m = std::any_cast<Message>(&p.payload))
      if (const auto* nodes = std::get_if<NodesMsg>(m))
        got = nodes->contacts.size();
  });
  sim::Packet query = sim::Packet::udp({pair.line_b.device_address, 7000},
                                       pair.a->local_endpoint());
  query.payload = Message{FindNodesMsg{78, pair.b->id(), pair.b->id()}};
  pair.mini.net.send(std::move(query), pair.line_b.device);
  EXPECT_GE(got, 4u);
}

TEST(DhtNode, TableEvictsWhenFull) {
  DhtNodeConfig cfg;
  cfg.table_capacity = 8;
  DhtPair pair(cfg);
  sim::Rng rng(13);
  for (int i = 0; i < 30; ++i)
    pair.a->learn_contact(
        {NodeId160::random(rng),
         Endpoint{Ipv4Address{16, 5, 0, static_cast<std::uint8_t>(i + 1)},
                  1000}});
  EXPECT_EQ(pair.a->table_size(), 8u);
}

TEST(Tracker, RecordsObservedEndpointsAndSamplesPeers) {
  MiniNet mini;
  // Tracker host at the core.
  sim::NodeId tracker_host = mini.net.add_node(mini.net.root(), "tracker");
  Ipv4Address tracker_addr{16, 255, 0, 50};
  TrackerServer tracker(tracker_host, tracker_addr, sim::Rng(3), 10);
  tracker.install(mini.net);

  // A NAT444 peer announces; the tracker must see its *external* endpoint.
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cgn_hop = 3;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = nat::MappingType::full_cone;
  lc.cgn.name = "cgn";
  lc.cgn.mapping = nat::MappingType::full_cone;
  auto line = mini.add_line(lc);

  sim::Rng rng(4);
  DhtNode peer(NodeId160::random(rng), Endpoint{line.device_address, 6881},
               line.device, {}, rng.fork());
  line.demux->bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer.handle(n, p);
  });
  peer.announce(mini.net, tracker.endpoint(), 42);
  EXPECT_EQ(tracker.swarm_size(42), 1u);

  // A second (public) peer joining the same swarm learns the first peer's
  // external contact.
  LineConfig pub;
  pub.with_cpe = false;
  pub.line_public = Ipv4Address{16, 0, 7, 7};
  auto line2 = mini.add_line(pub, 77);
  DhtNode peer2(NodeId160::random(rng), Endpoint{line2.device_address, 6881},
                line2.device, {}, rng.fork());
  line2.demux->bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer2.handle(n, p);
  });
  peer2.announce(mini.net, tracker.endpoint(), 42);
  ASSERT_EQ(peer2.table_size(), 1u);
  auto contacts = peer2.all_contacts();
  EXPECT_TRUE(line.cgn->owns_external(contacts[0].endpoint.address))
      << "the tracker must hand out the CGN-external endpoint, got "
      << contacts[0].endpoint.to_string();
}

/// The full §4.1 leak chain: two peers behind one CGN (with hairpinning that
/// preserves the internal source) end up knowing each other's *internal*
/// endpoints, validated, ready to leak to a crawler.
TEST(DhtLeakChain, HairpinPreservingCgnLeaksInternalEndpoints) {
  MiniNet mini;
  sim::NodeId tracker_host = mini.net.add_node(mini.net.root(), "tracker");
  Ipv4Address tracker_addr{16, 255, 0, 50};
  TrackerServer tracker(tracker_host, tracker_addr, sim::Rng(3), 10);
  tracker.install(mini.net);

  // One shared CGN; both subscribers are archetype B (no CPE).
  nat::NatConfig cgn_cfg;
  cgn_cfg.name = "cgn";
  cgn_cfg.mapping = nat::MappingType::full_cone;
  cgn_cfg.hairpinning = true;
  cgn_cfg.hairpin_preserve_source = true;
  cgn_cfg.udp_timeout_s = 120.0;

  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn = cgn_cfg;
  lc.cgn_hop = 3;
  lc.line_internal = Ipv4Address{100, 64, 1, 2};
  auto line_a = mini.add_line(lc, 1);

  // Second subscriber shares the first line's CGN.
  sim::NodeId acc = mini.net.add_router_chain(line_a.cgn_node, 2, "acc2");
  sim::NodeId dev_b = mini.net.add_node(acc, "dev-b");
  Ipv4Address addr_b{100, 64, 2, 2};
  mini.net.add_local_address(dev_b, addr_b);
  mini.net.register_address(addr_b, dev_b, line_a.cgn_node);
  sim::PortDemux demux_b;
  demux_b.attach(mini.net, dev_b);

  sim::Rng rng(6);
  DhtNode peer_a(NodeId160::random(rng),
                 Endpoint{line_a.device_address, 6881}, line_a.device, {},
                 rng.fork());
  DhtNode peer_b(NodeId160::random(rng), Endpoint{addr_b, 6881}, dev_b, {},
                 rng.fork());
  line_a.demux->bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer_a.handle(n, p);
  });
  demux_b.bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer_b.handle(n, p);
  });

  // Both join the same swarm; B announces second, so B learns A's external
  // endpoint from the tracker.
  peer_a.announce(mini.net, tracker.endpoint(), 1);
  peer_b.announce(mini.net, tracker.endpoint(), 1);
  ASSERT_GE(peer_b.table_size(), 1u);

  // B validates A's external endpoint: the ping hairpins at the CGN and
  // reaches A with B's internal source preserved. (With immediate swarm
  // pings this already happened during the announce; maintenance only
  // finishes any remaining validation.)
  peer_b.run_maintenance(mini.net);
  EXPECT_GT(peer_a.table_size(), 0u);
  bool a_knows_b_internal = false;
  for (const auto& c : peer_a.all_contacts())
    if (c.endpoint.address == addr_b) a_knows_b_internal = true;
  EXPECT_TRUE(a_knows_b_internal)
      << "A must have observed B's internal endpoint via the hairpin";

  // A validates that internal endpoint with a direct internal ping.
  peer_a.run_maintenance(mini.net);
  EXPECT_TRUE(peer_a.knows_validated({peer_b.id(), {addr_b, 6881}}))
      << "the internal endpoint is reachable inside the ISP, so it validates";
}

/// Control experiment: with RFC-conformant hairpinning (source translated),
/// no internal endpoints leak.
TEST(DhtLeakChain, ConformantHairpinDoesNotLeak) {
  MiniNet mini;
  sim::NodeId tracker_host = mini.net.add_node(mini.net.root(), "tracker");
  TrackerServer tracker(tracker_host, Ipv4Address{16, 255, 0, 50},
                        sim::Rng(3), 10);
  tracker.install(mini.net);

  nat::NatConfig cgn_cfg;
  cgn_cfg.name = "cgn";
  cgn_cfg.mapping = nat::MappingType::full_cone;
  cgn_cfg.hairpinning = true;
  cgn_cfg.hairpin_preserve_source = false;  // correct behaviour

  LineConfig lc;
  lc.with_cpe = false;
  lc.with_cgn = true;
  lc.cgn = cgn_cfg;
  auto line_a = mini.add_line(lc, 1);
  sim::NodeId dev_b = mini.net.add_node(
      mini.net.add_router_chain(line_a.cgn_node, 2, "acc2"), "dev-b");
  Ipv4Address addr_b{10, 0, 2, 2};
  mini.net.add_local_address(dev_b, addr_b);
  mini.net.register_address(addr_b, dev_b, line_a.cgn_node);
  sim::PortDemux demux_b;
  demux_b.attach(mini.net, dev_b);

  sim::Rng rng(6);
  DhtNode peer_a(NodeId160::random(rng),
                 Endpoint{line_a.device_address, 6881}, line_a.device, {},
                 rng.fork());
  DhtNode peer_b(NodeId160::random(rng), Endpoint{addr_b, 6881}, dev_b, {},
                 rng.fork());
  line_a.demux->bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer_a.handle(n, p);
  });
  demux_b.bind(6881, [&](sim::Network& n, const sim::Packet& p) {
    peer_b.handle(n, p);
  });

  peer_a.announce(mini.net, tracker.endpoint(), 1);
  peer_b.announce(mini.net, tracker.endpoint(), 1);
  for (int i = 0; i < 3; ++i) {
    peer_a.run_maintenance(mini.net);
    peer_b.run_maintenance(mini.net);
  }
  for (const auto& c : peer_a.all_contacts())
    EXPECT_FALSE(netcore::is_reserved(c.endpoint.address))
        << "leaked " << c.endpoint.to_string();
  for (const auto& c : peer_b.all_contacts())
    EXPECT_FALSE(netcore::is_reserved(c.endpoint.address))
        << "leaked " << c.endpoint.to_string();
}

}  // namespace
}  // namespace cgn::dht
