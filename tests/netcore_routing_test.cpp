#include "netcore/address_pool.hpp"
#include "netcore/as_registry.hpp"
#include "netcore/routing_table.hpp"

#include <gtest/gtest.h>

namespace cgn::netcore {
namespace {

TEST(RoutingTable, LongestPrefixMatchWins) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 100);
  rt.announce(Ipv4Prefix::parse("16.1.0.0/16"), 200);
  rt.announce(Ipv4Prefix::parse("16.1.2.0/24"), 300);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.9.9.9")), 100u);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.1.9.9")), 200u);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.1.2.9")), 300u);
  EXPECT_FALSE(rt.origin_of(Ipv4Address::parse("17.0.0.1")).has_value());
}

TEST(RoutingTable, IsRoutedAndLookupPrefixLength) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.32.0.0/12"), 7);
  EXPECT_TRUE(rt.is_routed(Ipv4Address::parse("16.47.255.255")));
  EXPECT_FALSE(rt.is_routed(Ipv4Address::parse("16.48.0.0")));
  auto route = rt.lookup(Ipv4Address::parse("16.40.1.1"));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->prefix.length(), 12);
  EXPECT_EQ(route->origin, 7u);
}

TEST(RoutingTable, WithdrawRemovesExactPrefix) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  rt.announce(Ipv4Prefix::parse("16.5.0.0/16"), 2);
  EXPECT_TRUE(rt.withdraw(Ipv4Prefix::parse("16.5.0.0/16")));
  EXPECT_FALSE(rt.withdraw(Ipv4Prefix::parse("16.5.0.0/16")));
  EXPECT_FALSE(rt.withdraw(Ipv4Prefix::parse("16.6.0.0/16")));
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.5.1.1")), 1u);
  EXPECT_EQ(rt.prefix_count(), 1u);
}

TEST(RoutingTable, ReannouncementOverwritesOrigin) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 9);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.1.1.1")), 9u);
  EXPECT_EQ(rt.prefix_count(), 1u);
}

TEST(RoutingTable, DefaultRouteAndHostRoute) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("0.0.0.0/0"), 1);
  rt.announce(Ipv4Prefix::parse("16.1.1.1/32"), 2);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("200.1.1.1")), 1u);
  EXPECT_EQ(rt.origin_of(Ipv4Address::parse("16.1.1.1")), 2u);
}

TEST(RoutingTable, RoutesEnumeration) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  rt.announce(Ipv4Prefix::parse("17.0.0.0/8"), 2);
  rt.announce(Ipv4Prefix::parse("16.128.0.0/9"), 3);
  auto routes = rt.routes();
  EXPECT_EQ(routes.size(), 3u);
}

TEST(AsRegistry, AddAndLookup) {
  AsRegistry reg;
  reg.add({.asn = 1, .name = "A", .region = Rir::ripe, .cellular = false,
           .pbl_eyeball = true, .apnic_eyeball = false});
  reg.add({.asn = 2, .name = "B", .region = Rir::apnic, .cellular = true,
           .pbl_eyeball = true, .apnic_eyeball = true});
  EXPECT_TRUE(reg.contains(1));
  EXPECT_FALSE(reg.contains(3));
  EXPECT_EQ(reg.get(2).name, "B");
  EXPECT_THROW(reg.get(3), std::out_of_range);
  EXPECT_EQ(reg.find(3), nullptr);
  EXPECT_THROW(reg.add({.asn = 1}), std::invalid_argument);
  EXPECT_EQ(reg.count_pbl_eyeball(), 2u);
  EXPECT_EQ(reg.count_apnic_eyeball(), 1u);
  EXPECT_EQ(reg.count_cellular(), 1u);
  EXPECT_EQ(reg.eyeballs_in_region(Rir::ripe, false).size(), 1u);
  EXPECT_EQ(reg.eyeballs_in_region(Rir::ripe, true).size(), 0u);
}

TEST(PrefixCarver, CarvesDisjointAlignedBlocks) {
  PrefixCarver carver(Ipv4Prefix::parse("16.0.0.0/8"));
  auto a = carver.next(24);
  auto b = carver.next(24);
  auto c = carver.next(20);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b));
  EXPECT_FALSE(c.contains(a.address()) && c.contains(b.address()))
      << "the /20 must not overlap earlier carves";
  EXPECT_EQ(a.to_string(), "16.0.0.0/24");
  EXPECT_EQ(b.to_string(), "16.0.1.0/24");
  EXPECT_EQ(c.to_string(), "16.0.16.0/20");
}

TEST(PrefixCarver, ExhaustsAndRejects) {
  PrefixCarver carver(Ipv4Prefix::parse("16.0.0.0/30"));
  EXPECT_THROW(carver.next(8), std::invalid_argument);
  (void)carver.next(31);
  (void)carver.next(31);
  EXPECT_THROW(carver.next(31), std::length_error);
}

TEST(AddressPool, RoundRobinAndContains) {
  AddressPool pool(Ipv4Prefix::parse("16.0.0.0/30"));
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_TRUE(pool.contains(Ipv4Address::parse("16.0.0.3")));
  EXPECT_FALSE(pool.contains(Ipv4Address::parse("16.0.0.4")));
  auto first = pool.next();
  for (int i = 0; i < 3; ++i) (void)pool.next();
  EXPECT_EQ(pool.next(), first) << "round robin wraps";
  AddressPool empty;
  EXPECT_THROW(empty.next(), std::length_error);
}

}  // namespace
}  // namespace cgn::netcore
