// NatDevice fault behaviour: reset_state() (device reboot) must flush every
// piece of dynamic state while keeping configuration, scheduled restarts
// must fire lazily at most once per period boundary, and port-pool pressure
// windows must block exactly the reserved share of the range.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "nat/nat_device.hpp"
#include "nat/nat_types.hpp"
#include "netcore/ipv4.hpp"
#include "sim/packet.hpp"
#include "sim/rng.hpp"

namespace cgn::nat {
namespace {

constexpr netcore::Endpoint kRemote{netcore::Ipv4Address(93, 184, 216, 34),
                                    80};

netcore::Ipv4Address subscriber_ip(std::uint32_t i) {
  return netcore::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff));
}

sim::Middlebox::Verdict outbound(NatDevice& nat, std::uint32_t sub,
                                 std::uint16_t port, sim::SimTime now) {
  sim::Packet pkt = sim::Packet::udp({subscriber_ip(sub), port}, kRemote);
  return nat.process_outbound(pkt, now);
}

TEST(NatReset, FlushesMappingsAndFiresExpiryHooks) {
  NatConfig cfg;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));
  int expired_hooks = 0;
  nat.set_observer({}, [&](netcore::Protocol, const netcore::Endpoint&,
                           sim::SimTime, sim::SimTime) { ++expired_hooks; });

  for (std::uint32_t i = 0; i < 5; ++i)
    ASSERT_EQ(outbound(nat, i, 5000, 1.0), sim::Middlebox::Verdict::forward);
  ASSERT_EQ(nat.active_mappings(1.0), 5u);

  nat.reset_state(2.0);
  EXPECT_EQ(nat.active_mappings(2.0), 0u);
  EXPECT_EQ(expired_hooks, 5);
  EXPECT_EQ(nat.stats().restarts, 1u);
  EXPECT_EQ(nat.stats().restart_flushed_mappings, 5u);
  // Configuration survives the reboot and the pool accounting is clean:
  // the same subscribers translate again from an empty table.
  for (std::uint32_t i = 0; i < 5; ++i)
    ASSERT_EQ(outbound(nat, i, 5000, 3.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.active_mappings(3.0), 5u);
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 0u);
}

TEST(NatReset, FreedChunksAreImmediatelyReusable) {
  // 4 chunks of 64 ports: [1024, 1279]. Four subscribers exhaust the chunk
  // supply; after a reboot the chunk bookkeeping (subscriber_chunks_ +
  // chunks_taken_) must be empty, so four fresh subscribers fit again.
  NatConfig cfg;
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 64;
  cfg.port_min = 1024;
  cfg.port_max = 1279;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));

  for (std::uint32_t i = 0; i < 4; ++i)
    ASSERT_EQ(outbound(nat, i, 5000, 1.0), sim::Middlebox::Verdict::forward);
  ASSERT_TRUE(nat.subscriber_chunk(subscriber_ip(0)).has_value());
  ASSERT_NE(outbound(nat, 4, 5000, 1.0), sim::Middlebox::Verdict::forward);
  ASSERT_EQ(nat.stats().port_exhaustion_drops, 1u);

  nat.reset_state(2.0);
  EXPECT_FALSE(nat.subscriber_chunk(subscriber_ip(0)).has_value());
  for (std::uint32_t i = 10; i < 14; ++i)
    ASSERT_EQ(outbound(nat, i, 5000, 3.0), sim::Middlebox::Verdict::forward)
        << "chunk not reusable after reset for subscriber " << i;
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 1u);  // no new exhaustion

  // Pool accounting stays consistent: each new subscriber's sticky chunk
  // record exists and the mapping count matches.
  for (std::uint32_t i = 10; i < 14; ++i)
    EXPECT_TRUE(nat.subscriber_chunk(subscriber_ip(i)).has_value());
  EXPECT_EQ(nat.active_mappings(3.0), 4u);
}

TEST(NatRestart, FiresLazilyOncePerBoundary) {
  NatConfig cfg;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));
  fault::NatFaults faults;
  faults.restart_period_s = 100.0;
  nat.set_fault_profile(faults, 0.0, 0.0);

  ASSERT_EQ(outbound(nat, 0, 5000, 10.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 0u);  // first period not yet over

  // Four boundaries elapsed unobserved -> exactly one flush, not four.
  ASSERT_EQ(outbound(nat, 1, 5000, 450.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 1u);
  EXPECT_EQ(nat.stats().restart_flushed_mappings, 1u);
  // The triggering packet still translates (mapping created post-flush).
  EXPECT_EQ(nat.active_mappings(450.0), 1u);

  // Same epoch: no further restart.
  ASSERT_EQ(outbound(nat, 2, 5000, 460.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 1u);

  // Next boundary: one more.
  ASSERT_EQ(outbound(nat, 3, 5000, 560.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 2u);
}

TEST(NatRestart, PhaseStaggersTheFirstBoundary) {
  NatConfig cfg;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));
  fault::NatFaults faults;
  faults.restart_period_s = 100.0;
  nat.set_fault_profile(faults, 40.0, 0.0);

  ASSERT_EQ(outbound(nat, 0, 5000, 139.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 0u);  // first boundary is at phase+period
  ASSERT_EQ(outbound(nat, 1, 5000, 141.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().restarts, 1u);
}

TEST(NatPressure, WindowBlocksTheReservedShare) {
  NatConfig cfg;
  cfg.port_allocation = PortAllocation::sequential;
  cfg.port_min = 1024;
  cfg.port_max = 1123;  // 100 ports
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));
  fault::NatFaults faults;
  faults.pressure_period_s = 100.0;
  faults.pressure_duration_s = 10.0;
  faults.pressure_reserve_fraction = 0.5;
  nat.set_fault_profile(faults, 0.0, 0.0);

  EXPECT_TRUE(nat.pressure_active(5.0));
  EXPECT_FALSE(nat.pressure_active(50.0));
  EXPECT_TRUE(nat.pressure_active(105.0));

  // Inside the window only 50 of the 100 ports are usable.
  for (std::uint32_t i = 0; i < 50; ++i)
    ASSERT_EQ(outbound(nat, i, 5000, 5.0), sim::Middlebox::Verdict::forward);
  ASSERT_NE(outbound(nat, 50, 5000, 5.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().pressure_drops, 1u);

  // Outside the window the blocked half opens up again.
  ASSERT_EQ(outbound(nat, 50, 5000, 50.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().pressure_drops, 1u);
}

TEST(NatPressure, InactiveProfileNeverReportsPressure) {
  NatConfig cfg;
  NatDevice nat(cfg, {netcore::Ipv4Address(198, 51, 100, 1)}, sim::Rng(7));
  EXPECT_FALSE(nat.pressure_active(0.0));
  EXPECT_FALSE(nat.pressure_active(1e6));
}

}  // namespace
}  // namespace cgn::nat
