// End-to-end fault injection through the campaign drivers: impaired runs
// must stay thread-count invariant (faults fire identically for any worker
// count), deaf peers must depress bt_ping recall, and the retry/backoff
// policy must measurably recover detections under loss.
#include <gtest/gtest.h>

#include <memory>

#include "fault/fault.hpp"
#include "netalyzr/session.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"

namespace cgn::scenario {
namespace {

InternetConfig tiny_config() {
  InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  return cfg;
}

fault::FaultPlan stormy_plan() {
  fault::FaultPlan plan;
  plan.link.loss_rate = 0.02;
  plan.link.duplication_rate = 0.01;
  plan.peers.unresponsive_fraction = 0.10;
  plan.nat.restart_period_s = 900.0;
  return plan;
}

TEST(FaultCampaign, InjectorAttachedOnlyWhenPlanActive) {
  auto clean = build_internet(tiny_config());
  EXPECT_EQ(clean->net.fault_injector(), nullptr);

  InternetConfig cfg = tiny_config();
  cfg.fault_plan.link.loss_rate = 0.01;
  auto faulty = build_internet(cfg);
  ASSERT_NE(faulty->net.fault_injector(), nullptr);
  EXPECT_TRUE(faulty->net.fault_injector()->active());
}

TEST(FaultCampaign, DeafPeersAreMarkedAndDepressRecall) {
  InternetConfig cfg = tiny_config();
  cfg.fault_plan.peers.unresponsive_fraction = 0.5;
  auto internet = build_internet(cfg);
  ASSERT_GT(internet->net.fault_injector()->unresponsive_count(), 0u);

  run_bittorrent_phase(*internet);
  auto crawler = run_crawl_phase(*internet);
  const std::size_t faulted_responding =
      crawler->dataset().responding_peers();

  auto clean = build_internet(tiny_config());
  run_bittorrent_phase(*clean);
  auto clean_crawler = run_crawl_phase(*clean);
  ASSERT_GT(clean_crawler->dataset().responding_peers(), 0u);
  EXPECT_LT(faulted_responding, clean_crawler->dataset().responding_peers());
}

TEST(FaultCampaign, FaultedNetalyzrIsThreadCountInvariant) {
  auto run = [&](std::size_t threads) {
    InternetConfig cfg = tiny_config();
    cfg.fault_plan = stormy_plan();
    auto internet = build_internet(cfg);
    NetalyzrCampaignConfig nz;
    nz.enum_fraction = 0.5;
    nz.stun_fraction = 0.5;
    nz.threads = threads;
    nz.retry.attempts = 3;
    nz.retry.base_backoff_s = 2.0;
    const auto sessions = run_netalyzr_campaign(*internet, nz);
    return std::pair{netalyzr::fingerprint(sessions), sessions.size()};
  };
  const auto serial = run(1);
  ASSERT_GT(serial.second, 50u);
  const auto parallel = run(4);
  EXPECT_EQ(parallel.second, serial.second);
  EXPECT_EQ(parallel.first, serial.first)
      << "4 workers produced different sessions under an active fault plan";
}

TEST(FaultCampaign, FaultedCrawlSweepIsThreadCountInvariant) {
  auto run = [&](std::size_t threads) {
    InternetConfig cfg = tiny_config();
    cfg.fault_plan = stormy_plan();
    auto internet = build_internet(cfg);
    run_bittorrent_phase(*internet);
    CrawlPhaseConfig crawl;
    crawl.threads = threads;
    crawl.crawl.retry.attempts = 2;
    auto crawler = run_crawl_phase(*internet, crawl);
    struct Out {
      std::size_t learned, responding, responding_ips;
      std::uint64_t pings;
    } out{crawler->dataset().learned_peers(),
          crawler->dataset().responding_peers(),
          crawler->dataset().responding_unique_ips(),
          crawler->stats().pings_sent};
    return out;
  };
  const auto serial = run(1);
  ASSERT_GT(serial.responding, 0u);
  const auto parallel = run(4);
  EXPECT_EQ(parallel.learned, serial.learned);
  EXPECT_EQ(parallel.responding, serial.responding);
  EXPECT_EQ(parallel.responding_ips, serial.responding_ips);
  EXPECT_EQ(parallel.pings, serial.pings);
}

TEST(FaultCampaign, RetriesRecoverPingRecallUnderLoss) {
  auto run = [&](int attempts) {
    InternetConfig cfg = tiny_config();
    cfg.fault_plan.link.loss_rate = 0.05;
    auto internet = build_internet(cfg);
    run_bittorrent_phase(*internet);
    CrawlPhaseConfig crawl;
    crawl.crawl.retry.attempts = attempts;
    auto crawler = run_crawl_phase(*internet, crawl);
    return crawler->dataset().responding_peers();
  };
  const std::size_t without = run(1);
  const std::size_t with = run(3);
  EXPECT_GT(with, without)
      << "3-attempt retry policy failed to recover responders at 5% loss";
}

}  // namespace
}  // namespace cgn::scenario
