#include "crawler/dht_crawler.hpp"

#include <gtest/gtest.h>

#include "analysis/bt_detector.hpp"
#include "dht/tracker.hpp"
#include "test_topology.hpp"

namespace cgn::crawler {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::MiniNet;

/// A miniature CGN AS: `n` archetype-B subscribers behind one full-cone,
/// hairpin-preserving CGN, plus a bootstrap node, a tracker and the crawler.
struct CrawlWorld {
  MiniNet mini;
  std::unique_ptr<dht::TrackerServer> tracker;
  std::unique_ptr<dht::DhtNode> bootstrap;
  std::unique_ptr<DhtCrawler> crawler;
  std::vector<std::unique_ptr<dht::DhtNode>> peers;
  std::vector<std::unique_ptr<sim::PortDemux>> demuxes;
  nat::NatDevice* cgn = nullptr;
  netcore::RoutingTable routes;

  explicit CrawlWorld(int n, nat::MappingType cgn_type,
                      bool hairpin_preserve = true) {
    routes.announce(netcore::Ipv4Prefix::parse("16.0.0.0/8"), 1);

    sim::Rng rng(42);
    // Infrastructure at the core.
    sim::NodeId tracker_host = mini.net.add_node(mini.net.root(), "tracker");
    tracker = std::make_unique<dht::TrackerServer>(
        tracker_host, Ipv4Address{16, 255, 0, 50}, rng.fork(), 32);
    tracker->install(mini.net);

    sim::NodeId boot_host = mini.net.add_node(mini.net.root(), "bootstrap");
    Ipv4Address boot_addr{16, 255, 0, 60};
    mini.net.add_local_address(boot_host, boot_addr);
    mini.net.register_address(boot_addr, boot_host, mini.net.root());
    dht::DhtNodeConfig boot_cfg;
    boot_cfg.table_capacity = 1024;
    boot_cfg.validate_before_propagate = false;
    bootstrap = std::make_unique<dht::DhtNode>(
        dht::NodeId160::random(rng), Endpoint{boot_addr, 6881}, boot_host,
        boot_cfg, rng.fork());
    mini.net.set_receiver(boot_host,
                          [this](sim::Network& net, const sim::Packet& p) {
                            bootstrap->handle(net, p);
                          });

    sim::NodeId crawl_host = mini.net.add_node(mini.net.root(), "crawler");
    Ipv4Address crawl_addr{16, 255, 0, 70};
    mini.net.add_local_address(crawl_host, crawl_addr);
    mini.net.register_address(crawl_addr, crawl_host, mini.net.root());
    CrawlConfig cfg;
    crawler = std::make_unique<DhtCrawler>(crawl_host,
                                           Endpoint{crawl_addr, 6881}, cfg,
                                           rng.fork());
    crawler->install(mini.net);

    // The CGN and its subscribers.
    test::LineConfig lc;
    lc.with_cpe = false;
    lc.with_cgn = true;
    lc.cgn_hop = 3;
    lc.cgn.name = "cgn";
    lc.cgn.mapping = cgn_type;
    lc.cgn.hairpinning = true;
    lc.cgn.hairpin_preserve_source = hairpin_preserve;
    lc.cgn.udp_timeout_s = 300.0;
    lc.cgn_pool_size = 16;
    lc.line_internal = Ipv4Address{10, 0, 1, 2};
    auto first = mini.add_line(lc, 1);
    cgn = first.cgn;
    add_peer(first.device, first.device_address, first.demux, rng);

    for (int i = 1; i < n; ++i) {
      sim::NodeId acc = mini.net.add_router_chain(first.cgn_node, 2, "acc");
      sim::NodeId dev = mini.net.add_node(acc, "dev");
      Ipv4Address addr(10, 0, static_cast<std::uint8_t>(1 + i), 2);
      mini.net.add_local_address(dev, addr);
      mini.net.register_address(addr, dev, first.cgn_node);
      auto demux = std::make_unique<sim::PortDemux>();
      demux->attach(mini.net, dev);
      add_peer(dev, addr, demux.get(), rng);
      demuxes.push_back(std::move(demux));
    }
  }

  void add_peer(sim::NodeId dev, Ipv4Address addr, sim::PortDemux* demux,
                sim::Rng& rng) {
    auto node = std::make_unique<dht::DhtNode>(dht::NodeId160::random(rng),
                                               Endpoint{addr, 6881}, dev,
                                               dht::DhtNodeConfig{},
                                               rng.fork());
    demux->bind(6881, [ptr = node.get()](sim::Network& n,
                                         const sim::Packet& p) {
      ptr->handle(n, p);
    });
    peers.push_back(std::move(node));
  }

  void run_swarm(int rounds) {
    for (auto& p : peers) p->bootstrap(mini.net, bootstrap->local_endpoint());
    for (int r = 0; r < rounds; ++r) {
      for (auto& p : peers)
        p->announce(mini.net, tracker->endpoint(), 1);  // one shared swarm
      for (auto& p : peers) p->run_maintenance(mini.net);
      mini.clock.advance(5.0);
    }
  }

  void crawl() {
    crawler->start(mini.net, bootstrap->local_endpoint());
    while (crawler->crawl_step(mini.net, 100) > 0) {
    }
    while (crawler->ping_step(mini.net, 1000) > 0) {
    }
  }
};

TEST(DhtCrawler, HarvestsInternalLeaksFromPermissiveCgn) {
  CrawlWorld w(12, nat::MappingType::full_cone);
  w.run_swarm(6);
  w.crawl();

  const CrawlDataset& data = w.crawler->dataset();
  EXPECT_GT(data.queried_peers(), 5u);
  EXPECT_GT(data.learned_peers(), data.queried_peers());
  EXPECT_FALSE(data.leaks().empty())
      << "hairpin-preserving full-cone CGN must leak internal endpoints";

  for (const LeakEdge& e : data.leaks()) {
    EXPECT_TRUE(netcore::is_reserved(e.internal.endpoint.address));
    EXPECT_FALSE(netcore::is_reserved(e.leaker.endpoint.address));
    EXPECT_TRUE(w.cgn->owns_external(e.leaker.endpoint.address));
  }
}

TEST(DhtCrawler, DetectorFlagsTheCgnAs) {
  CrawlWorld w(16, nat::MappingType::full_cone);
  w.run_swarm(8);
  w.crawl();

  analysis::BtDetector detector;
  auto result = detector.analyze(w.crawler->dataset(), w.routes);
  ASSERT_TRUE(result.per_as.contains(1));
  const auto& verdict = result.per_as.at(1);
  EXPECT_TRUE(verdict.covered);
  EXPECT_TRUE(verdict.cgn_positive)
      << "largest 10X cluster: "
      << verdict.largest[2].public_ips << " public / "
      << verdict.largest[2].internal_ips << " internal IPs";
  // Table 3 bookkeeping: all leaks fall in the 10X range here.
  EXPECT_GT(result.per_range[2].internal_total, 0u);
  EXPECT_EQ(result.per_range[0].internal_total, 0u);
}

TEST(DhtCrawler, SymmetricCgnYieldsNoLeaks) {
  CrawlWorld w(12, nat::MappingType::symmetric);
  w.run_swarm(6);
  w.crawl();
  // Peers behind a symmetric CGN are not externally queryable, so the
  // crawler sees no leaks — the BitTorrent method's blind spot (§5).
  EXPECT_TRUE(w.crawler->dataset().leaks().empty());
  analysis::BtDetector detector;
  auto result = detector.analyze(w.crawler->dataset(), w.routes);
  auto it = result.per_as.find(1);
  if (it != result.per_as.end()) EXPECT_FALSE(it->second.cgn_positive);
}

TEST(DhtCrawler, ConformantHairpinYieldsNoLeaks) {
  CrawlWorld w(12, nat::MappingType::full_cone, /*hairpin_preserve=*/false);
  w.run_swarm(6);
  w.crawl();
  EXPECT_TRUE(w.crawler->dataset().leaks().empty());
}

TEST(CrawlDataset, CountsUniquePeersAndIps) {
  CrawlDataset data;
  dht::Contact a{dht::NodeId160{}, {Ipv4Address{16, 0, 0, 1}, 100}};
  dht::Contact a2{dht::NodeId160{}, {Ipv4Address{16, 0, 0, 1}, 200}};
  data.note_learned(a);
  data.note_learned(a);   // duplicate tuple
  data.note_learned(a2);  // same IP, different port
  EXPECT_EQ(data.learned_peers(), 2u);
  EXPECT_EQ(data.learned_unique_ips(), 1u);
  EXPECT_TRUE(data.was_learned(a));
}

}  // namespace
}  // namespace cgn::crawler
