// Edge cases of fault::RetryPolicy / retry_loop: attempt-budget
// boundaries, the scoped-timeline rewind under zero and extreme backoff,
// and the thread-count invariance of jittered backoff schedules (jitter
// draws come from shard-keyed substreams, so a 4-worker partition replays
// the exact waits the serial sweep saw).
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "sim/clock.hpp"
#include "sim/rng.hpp"

namespace cgn::fault {
namespace {

TEST(RetryEdge, ZeroAttemptsStillRunsTheProbeOnce) {
  // attempts = 0 is a config error; the loop clamps it to one try so a
  // probe can never be silently skipped.
  RetryPolicy policy;
  policy.attempts = 0;
  int calls = 0;
  sim::Clock clock;
  EXPECT_FALSE(retry_loop(policy, &clock, nullptr, [&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.now(), 0.0);  // no backoff was scheduled

  calls = 0;
  EXPECT_TRUE(retry_loop(policy, &clock, nullptr, [&] {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 1);
}

TEST(RetryEdge, SingleAttemptNeverBacksOffOrDrawsJitter) {
  RetryPolicy policy;  // attempts = 1: the historical fire-once client
  policy.jitter_fraction = 0.5;
  sim::Clock clock;
  clock.set(100.0);
  sim::Rng rng(7);
  const auto before = rng.engine()();  // capture, then rebuild to compare
  sim::Rng fresh(7);
  int calls = 0;
  EXPECT_FALSE(retry_loop(policy, &clock, &fresh, [&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.now(), 100.0);
  // The jitter stream was never touched: its next output is unchanged.
  EXPECT_EQ(fresh.engine()(), before);
}

TEST(RetryEdge, ZeroBackoffRetriesLeaveTheClockUntouched) {
  RetryPolicy policy;
  policy.attempts = 4;
  policy.base_backoff_s = 0.0;
  sim::Clock clock;
  clock.set(55.5);
  int calls = 0;
  EXPECT_FALSE(retry_loop(policy, &clock, nullptr, [&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 4);
  // Zero waits: now() never moved, and the closing rewind must cope with
  // rewinding to exactly the current time (not throw).
  EXPECT_EQ(clock.now(), 55.5);
}

TEST(RetryEdge, MaximalBackoffRewindsExactlyToTheEntryTime) {
  RetryPolicy policy;
  policy.attempts = 6;
  policy.base_backoff_s = 1e9;
  policy.backoff_factor = 10.0;
  sim::Clock clock;
  clock.set(123.25);
  sim::SimTime peak = 0.0;
  EXPECT_FALSE(retry_loop(policy, &clock, nullptr, [&] {
    peak = clock.now();
    return false;
  }));
  // The last attempt ran deep into the backed-off future...
  EXPECT_GT(peak, 1e12);
  // ...and the scoped timeline still closed back to the entry instant,
  // exactly (doubles: the rewind stores the captured t0, no arithmetic).
  EXPECT_EQ(clock.now(), 123.25);
}

TEST(RetryEdge, RecoveryOnFinalAttemptStillCountsAsSuccess) {
  RetryPolicy policy;
  policy.attempts = 3;
  int calls = 0;
  EXPECT_TRUE(retry_loop(policy, nullptr, nullptr, [&] {
    return ++calls == 3;
  }));
  EXPECT_EQ(calls, 3);
}

TEST(RetryEdge, JitteredBackoffIsAFunctionOfTheShardNotTheWorker) {
  // The campaign drivers hand retry_loop a jitter stream forked as
  // substream(kSaltRetryJitter, shard). Replaying shards in a 4-worker
  // round-robin partition order must reproduce the serial sweep's waits
  // wait-for-wait, because nothing about the schedule depends on which
  // worker (or in which global order) a shard runs.
  FaultPlan plan;
  plan.link.loss_rate = 0.01;  // any active plan; only substreams matter
  const FaultInjector injector(plan);
  RetryPolicy policy;
  policy.attempts = 5;
  policy.jitter_fraction = 0.25;

  constexpr std::size_t kShards = 12;
  auto schedule_for = [&](std::uint64_t shard) {
    sim::Rng jitter = injector.substream(kSaltRetryJitter, shard);
    std::vector<double> waits;
    for (int attempt = 2; attempt <= policy.attempts; ++attempt)
      waits.push_back(policy.backoff_before(attempt, &jitter));
    return waits;
  };

  // Serial order: shard 0, 1, 2, ...
  std::vector<std::vector<double>> serial(kShards);
  for (std::size_t s = 0; s < kShards; ++s) serial[s] = schedule_for(s);

  // 4-worker static round-robin order: worker w visits w, w+4, w+8, ...
  std::vector<std::vector<double>> parallel(kShards);
  for (std::size_t w = 0; w < 4; ++w)
    for (std::size_t s = w; s < kShards; s += 4) parallel[s] = schedule_for(s);

  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_EQ(parallel[s].size(), serial[s].size()) << "shard " << s;
    for (std::size_t i = 0; i < serial[s].size(); ++i)
      EXPECT_EQ(parallel[s][i], serial[s][i])
          << "shard " << s << " wait " << i;
  }

  // Sanity: jitter actually perturbs the schedule (it is not the
  // deterministic no-jitter ladder), and distinct shards differ.
  RetryPolicy dry = policy;
  dry.jitter_fraction = 0.0;
  EXPECT_NE(serial[0][0], dry.backoff_before(2, nullptr));
  EXPECT_NE(serial[0], serial[1]);
}

}  // namespace
}  // namespace cgn::fault
