// Property-style sweeps over the whole NAT configuration space: invariants
// that must hold for every (mapping type x port allocation x pooling)
// combination.
#include "nat/nat_device.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace cgn::nat {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using netcore::Protocol;
using sim::Packet;

using NatCombo = std::tuple<MappingType, PortAllocation, Pooling>;

class NatInvariants : public ::testing::TestWithParam<NatCombo> {
 protected:
  NatConfig make_config() const {
    auto [mapping, alloc, pooling] = GetParam();
    NatConfig cfg;
    cfg.name = "sweep";
    cfg.mapping = mapping;
    cfg.port_allocation = alloc;
    cfg.pooling = pooling;
    cfg.chunk_size = 1024;
    cfg.udp_timeout_s = 100.0;
    return cfg;
  }
  std::vector<Ipv4Address> pool(int n = 4) const {
    std::vector<Ipv4Address> out;
    for (int i = 0; i < n; ++i) out.push_back(Ipv4Address(16, 1, 0, 10 + i));
    return out;
  }
};

TEST_P(NatInvariants, OutboundMapsIntoPool) {
  NatDevice nat(make_config(), pool(), sim::Rng(1));
  for (int i = 0; i < 40; ++i) {
    Packet p = Packet::udp({Ipv4Address(10, 0, 0, 1 + i % 8),
                            static_cast<std::uint16_t>(20000 + i)},
                           {Ipv4Address(16, 9, 9, 9),
                            static_cast<std::uint16_t>(80 + i)});
    ASSERT_EQ(nat.process_outbound(p, 0.0), sim::Middlebox::Verdict::forward);
    EXPECT_TRUE(nat.owns_external(p.src.address))
        << "translated source must come from the external pool";
    EXPECT_GE(p.src.port, nat.config().port_min);
  }
}

TEST_P(NatInvariants, ReplyRoundTripsToInternalSender) {
  NatDevice nat(make_config(), pool(), sim::Rng(2));
  Endpoint internal{Ipv4Address(10, 0, 0, 7), 31337};
  Endpoint remote{Ipv4Address(16, 9, 9, 9), 443};
  Packet out = Packet::udp(internal, remote);
  ASSERT_EQ(nat.process_outbound(out, 0.0), sim::Middlebox::Verdict::forward);
  Packet reply = Packet::udp(remote, out.src);
  ASSERT_EQ(nat.process_inbound(reply, 1.0), sim::Middlebox::Verdict::forward)
      << "the contacted remote must always be able to reply";
  EXPECT_EQ(reply.dst, internal);
}

TEST_P(NatInvariants, DistinctFlowsNeverShareExternalEndpoint) {
  NatDevice nat(make_config(), pool(), sim::Rng(3));
  std::set<std::pair<std::uint32_t, std::uint16_t>> seen;
  int created = 0;
  for (int i = 0; i < 60; ++i) {
    // Distinct internal endpoints (different hosts and ports).
    Packet p = Packet::udp({Ipv4Address(10, 0, 1, 1 + i % 50),
                            static_cast<std::uint16_t>(25000 + i)},
                           {Ipv4Address(16, 9, 9, 9), 80});
    if (nat.process_outbound(p, 0.0) != sim::Middlebox::Verdict::forward)
      continue;  // chunk exhaustion is allowed; sharing is not
    ++created;
    auto key = std::make_pair(p.src.address.value(), p.src.port);
    EXPECT_TRUE(seen.insert(key).second)
        << "two flows translated to the same external endpoint: "
        << p.src.to_string();
  }
  EXPECT_GT(created, 0);
}

TEST_P(NatInvariants, MappingSurvivesWithinTimeoutAndDiesAfter) {
  NatDevice nat(make_config(), pool(), sim::Rng(4));
  Endpoint internal{Ipv4Address(10, 0, 0, 9), 40000};
  Endpoint remote{Ipv4Address(16, 9, 9, 9), 80};
  Packet out = Packet::udp(internal, remote);
  ASSERT_EQ(nat.process_outbound(out, 0.0), sim::Middlebox::Verdict::forward);
  Endpoint ext = out.src;

  Packet in_live = Packet::udp(remote, ext);
  EXPECT_EQ(nat.process_inbound(in_live, 99.0),
            sim::Middlebox::Verdict::forward);
  nat.collect_garbage(99.0 + 100.0 + 1.0);
  Packet in_dead = Packet::udp(remote, ext);
  EXPECT_EQ(nat.process_inbound(in_dead, 99.0 + 100.0 + 1.0),
            sim::Middlebox::Verdict::drop_no_mapping);
}

TEST_P(NatInvariants, StrangersNeverReachNonFullConeMappings) {
  NatDevice nat(make_config(), pool(), sim::Rng(5));
  Packet out = Packet::udp({Ipv4Address(10, 0, 0, 3), 41000},
                           {Ipv4Address(16, 9, 9, 9), 80});
  ASSERT_EQ(nat.process_outbound(out, 0.0), sim::Middlebox::Verdict::forward);
  Packet stranger = Packet::udp({Ipv4Address(16, 8, 8, 8), 1234}, out.src);
  auto verdict = nat.process_inbound(stranger, 1.0);
  auto [mapping, alloc, pooling] = GetParam();
  if (mapping == MappingType::full_cone)
    EXPECT_EQ(verdict, sim::Middlebox::Verdict::forward);
  else
    EXPECT_EQ(verdict, sim::Middlebox::Verdict::drop_filtered);
}

TEST_P(NatInvariants, ConformantHairpinNeverExposesInternalSource) {
  NatConfig cfg = make_config();
  cfg.hairpinning = true;
  cfg.hairpin_preserve_source = false;
  NatDevice nat(cfg, pool(), sim::Rng(6));
  Packet a_out = Packet::udp({Ipv4Address(10, 0, 0, 1), 42000},
                             {Ipv4Address(16, 9, 9, 9), 80});
  ASSERT_EQ(nat.process_outbound(a_out, 0.0),
            sim::Middlebox::Verdict::forward);
  Packet hp = Packet::udp({Ipv4Address(10, 0, 0, 2), 43000}, a_out.src);
  auto verdict = nat.process_hairpin(hp, 1.0);
  if (verdict == sim::Middlebox::Verdict::forward)
    EXPECT_FALSE(netcore::is_reserved(hp.src.address))
        << "conformant hairpinning must present a translated source";
}

TEST_P(NatInvariants, GarbageCollectionIsIdempotent) {
  NatDevice nat(make_config(), pool(), sim::Rng(7));
  for (int i = 0; i < 10; ++i) {
    Packet p = Packet::udp({Ipv4Address(10, 0, 0, 1),
                            static_cast<std::uint16_t>(20000 + i)},
                           {Ipv4Address(16, 9, 9, 9), 80});
    (void)nat.process_outbound(p, 0.0);
  }
  nat.collect_garbage(1000.0);
  auto expired_once = nat.stats().mappings_expired;
  nat.collect_garbage(1000.0);
  EXPECT_EQ(nat.stats().mappings_expired, expired_once);
  EXPECT_EQ(nat.active_mappings(1000.0), 0u);
}

std::string combo_name(
    const ::testing::TestParamInfo<NatCombo>& info) {
  auto [mapping, alloc, pooling] = info.param;
  auto clean = [](std::string_view s) {
    std::string out;
    for (char c : s)
      if (c != ' ' && c != '-') out.push_back(c);
    return out;
  };
  return clean(to_string(mapping)) + "_" + clean(to_string(alloc)) + "_" +
         clean(to_string(pooling));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, NatInvariants,
    ::testing::Combine(
        ::testing::Values(MappingType::full_cone,
                          MappingType::address_restricted,
                          MappingType::port_address_restricted,
                          MappingType::symmetric),
        ::testing::Values(PortAllocation::preservation,
                          PortAllocation::sequential, PortAllocation::random,
                          PortAllocation::chunk_random),
        ::testing::Values(Pooling::paired, Pooling::arbitrary)),
    combo_name);

}  // namespace
}  // namespace cgn::nat
