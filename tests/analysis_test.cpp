#include <gtest/gtest.h>

#include "analysis/address_classify.hpp"
#include "analysis/coverage.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "analysis/path_analysis.hpp"
#include "analysis/port_analysis.hpp"
#include "analysis/stats.hpp"
#include "analysis/union_find.hpp"

namespace cgn::analysis {
namespace {

using netcore::Ipv4Address;
using netcore::Ipv4Prefix;
using netcore::RoutingTable;

TEST(UnionFind, BasicConnectivity) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2)) << "already connected";
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  uf.unite(3, 4);
  EXPECT_FALSE(uf.connected(2, 4));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
}

TEST(Stats, QuantilesAndBoxplot) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 30);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 20);
  auto box = boxplot(v);
  EXPECT_EQ(box.n, 5u);
  EXPECT_DOUBLE_EQ(box.median, 30);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.5), std::invalid_argument);
}

TEST(Stats, ModeAndTies) {
  EXPECT_EQ(mode<int>({1, 2, 2, 3}), 2);
  EXPECT_EQ(mode<int>({3, 1, 3, 1}), 1) << "smallest wins ties";
  EXPECT_THROW(mode<int>({}), std::invalid_argument);
}

TEST(Stats, HistogramClampsOutliers) {
  auto h = histogram({-5, 0, 5, 9.9, 100}, 0, 10, 2);
  EXPECT_EQ(h[0], 2u);  // -5 clamped in, 0
  EXPECT_EQ(h[1], 3u);  // 5, 9.9, 100 clamped in
}

TEST(Stats, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(4000), 4096u);
  EXPECT_EQ(round_up_pow2(4097), 8192u);
}

TEST(AddressClassify, Table4Taxonomy) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  Ipv4Address pub = Ipv4Address::parse("16.1.1.1");
  EXPECT_EQ(classify_address(Ipv4Address::parse("192.168.1.1"), pub, rt),
            AddressClass::private_range);
  EXPECT_EQ(classify_address(Ipv4Address::parse("25.0.0.1"), pub, rt),
            AddressClass::unrouted);
  EXPECT_EQ(classify_address(pub, pub, rt), AddressClass::routed_match);
  EXPECT_EQ(classify_address(Ipv4Address::parse("16.2.2.2"), pub, rt),
            AddressClass::routed_mismatch);
  EXPECT_TRUE(implies_translation(AddressClass::private_range));
  EXPECT_FALSE(implies_translation(AddressClass::routed_match));
}

TEST(AddressClassify, Table4RowsCoverReservedRanges) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  auto pub = Ipv4Address::parse("16.1.1.1");
  EXPECT_EQ(table4_row(Ipv4Address::parse("192.168.0.1"), pub, rt),
            Table4Row::r192);
  EXPECT_EQ(table4_row(Ipv4Address::parse("172.20.0.1"), pub, rt),
            Table4Row::r172);
  EXPECT_EQ(table4_row(Ipv4Address::parse("10.0.0.1"), pub, rt),
            Table4Row::r10);
  EXPECT_EQ(table4_row(Ipv4Address::parse("100.80.0.1"), pub, rt),
            Table4Row::r100);
  EXPECT_EQ(table4_row(Ipv4Address::parse("25.1.1.1"), pub, rt),
            Table4Row::unrouted);
  EXPECT_EQ(table4_row(pub, pub, rt), Table4Row::routed_match);
}

// --- Port strategy classification ------------------------------------------

std::vector<netalyzr::FlowObservation> flows(
    std::initializer_list<std::pair<int, int>> pairs) {
  std::vector<netalyzr::FlowObservation> out;
  for (auto [local, observed] : pairs)
    out.push_back({static_cast<std::uint16_t>(local),
                   {Ipv4Address{16, 1, 1, 1},
                    static_cast<std::uint16_t>(observed)}});
  return out;
}

TEST(PortClassification, Preservation) {
  auto f = flows({{40000, 40000}, {40001, 40001}, {40002, 40002},
                  {40003, 40003}, {40004, 40004}});
  EXPECT_EQ(classify_session_ports(f), PortStrategy::preservation);
}

TEST(PortClassification, PartialPreservationStillCounts) {
  // Paper leeway: >= 20% preserved is preservation (collision fallbacks).
  auto f = flows({{40000, 40000}, {40001, 12001}, {40002, 22002},
                  {40003, 33003}, {40004, 44004}});
  EXPECT_EQ(classify_session_ports(f), PortStrategy::preservation);
}

TEST(PortClassification, Sequential) {
  auto f = flows({{40000, 5000}, {40001, 5001}, {40002, 5003},
                  {40003, 5010}, {40004, 5030}});
  EXPECT_EQ(classify_session_ports(f), PortStrategy::sequential);
}

TEST(PortClassification, Random) {
  auto f = flows({{40000, 5000}, {40001, 61000}, {40002, 12345},
                  {40003, 45678}, {40004, 2222}});
  EXPECT_EQ(classify_session_ports(f), PortStrategy::random);
}

TEST(PortClassification, TooFewFlowsUnclassified) {
  auto f = flows({{40000, 5000}, {40001, 61000}});
  EXPECT_FALSE(classify_session_ports(f).has_value());
}

// --- Netalyzr detector -------------------------------------------------------

netalyzr::SessionResult session(netcore::Asn asn, bool cellular,
                                Ipv4Address dev,
                                std::optional<Ipv4Address> cpe,
                                Ipv4Address pub) {
  netalyzr::SessionResult s;
  s.asn = asn;
  s.cellular = cellular;
  s.ip_dev = dev;
  s.ip_cpe = cpe;
  s.ip_pub = pub;
  return s;
}

TEST(NetalyzrDetector, CellularInternalOnlyIsCgnPositive) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 7);
  std::vector<netalyzr::SessionResult> sessions;
  for (int i = 0; i < 6; ++i)
    sessions.push_back(session(7, true,
                               Ipv4Address(100, 64, 0, static_cast<std::uint8_t>(i + 1)),
                               std::nullopt, Ipv4Address::parse("16.1.0.1")));
  auto result = NetalyzrDetector().analyze(sessions, rt);
  ASSERT_TRUE(result.per_as.contains(7));
  const auto& v = result.per_as.at(7);
  EXPECT_TRUE(v.covered);
  EXPECT_TRUE(v.cgn_positive);
  EXPECT_EQ(v.assignment, CellularAssignment::internal_only);
  EXPECT_TRUE(v.internal_ranges.contains(netcore::ReservedRange::r100));
}

TEST(NetalyzrDetector, CellularPublicOnlyIsNegative) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 7);
  std::vector<netalyzr::SessionResult> sessions;
  for (int i = 0; i < 6; ++i) {
    Ipv4Address a(16, 1, 0, static_cast<std::uint8_t>(i + 1));
    sessions.push_back(session(7, true, a, std::nullopt, a));
  }
  auto result = NetalyzrDetector().analyze(sessions, rt);
  const auto& v = result.per_as.at(7);
  EXPECT_FALSE(v.cgn_positive);
  EXPECT_EQ(v.assignment, CellularAssignment::public_only);
}

TEST(NetalyzrDetector, CellularUndercoveredNotCounted) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 7);
  std::vector<netalyzr::SessionResult> sessions;
  for (int i = 0; i < 3; ++i)  // below the 5-session threshold
    sessions.push_back(session(7, true, Ipv4Address(10, 0, 0, 1),
                               std::nullopt, Ipv4Address::parse("16.1.0.1")));
  auto result = NetalyzrDetector().analyze(sessions, rt);
  EXPECT_FALSE(result.per_as.at(7).covered);
  EXPECT_EQ(result.covered(true), 0u);
}

TEST(NetalyzrDetector, NonCellularDiversityRule) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 9);
  std::vector<netalyzr::SessionResult> sessions;
  // 12 NAT444 sessions, each CPE on its own /24 (CGN-style diversity).
  for (int i = 0; i < 12; ++i)
    sessions.push_back(session(
        9, false, Ipv4Address(192, 168, 0, 2),
        Ipv4Address(10, 0, static_cast<std::uint8_t>(i + 1), 2),
        Ipv4Address(16, 1, 0, static_cast<std::uint8_t>(i + 1))));
  auto result = NetalyzrDetector().analyze(sessions, rt);
  const auto& v = result.per_as.at(9);
  EXPECT_TRUE(v.covered);
  EXPECT_EQ(v.candidate_sessions, 12u);
  EXPECT_EQ(v.unique_cpe_slash24, 12u);
  EXPECT_TRUE(v.cgn_positive);
}

TEST(NetalyzrDetector, HomeCascadedNatsDoNotTripDetector) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 9);
  std::vector<netalyzr::SessionResult> sessions;
  // Double home NAT: IPcpe always from the same 192.168.1.0/24 (a top CPE
  // block); devices see 192.168.0.x. Needs enough volume to build the
  // top-blocks list.
  for (int i = 0; i < 30; ++i)
    sessions.push_back(session(
        9, false, Ipv4Address(192, 168, 1, 2), Ipv4Address(192, 168, 1, 1),
        Ipv4Address(16, 1, 0, static_cast<std::uint8_t>(i + 1))));
  auto result = NetalyzrDetector().analyze(sessions, rt);
  const auto& v = result.per_as.at(9);
  EXPECT_TRUE(v.covered);
  EXPECT_FALSE(v.cgn_positive)
      << "IPcpe inside a top CPE block must be filtered out";
}

TEST(NetalyzrDetector, Table4TalliesByColumn) {
  RoutingTable rt;
  rt.announce(Ipv4Prefix::parse("16.0.0.0/8"), 5);
  std::vector<netalyzr::SessionResult> sessions;
  sessions.push_back(session(5, true, Ipv4Address(10, 0, 0, 1), std::nullopt,
                             Ipv4Address::parse("16.0.0.1")));
  sessions.push_back(session(5, false, Ipv4Address(192, 168, 0, 2),
                             Ipv4Address::parse("16.0.0.2"),
                             Ipv4Address::parse("16.0.0.2")));
  auto result = NetalyzrDetector().analyze(sessions, rt);
  EXPECT_EQ(result.table4.cellular_dev.n, 1u);
  EXPECT_EQ(result.table4.cellular_dev.rows[static_cast<int>(Table4Row::r10)],
            1u);
  EXPECT_EQ(result.table4.noncellular_dev.n, 1u);
  EXPECT_EQ(result.table4.noncellular_cpe.rows[static_cast<int>(
                Table4Row::routed_match)],
            1u);
}

// --- Coverage ----------------------------------------------------------------

TEST(Coverage, Table5CombinesMethodsOverPopulations) {
  netcore::AsRegistry reg;
  reg.add({.asn = 1, .name = "eyeball-both", .region = netcore::Rir::ripe,
           .cellular = false, .pbl_eyeball = true, .apnic_eyeball = true});
  reg.add({.asn = 2, .name = "eyeball-pbl", .region = netcore::Rir::apnic,
           .cellular = false, .pbl_eyeball = true, .apnic_eyeball = false});
  reg.add({.asn = 3, .name = "transit", .region = netcore::Rir::arin,
           .cellular = false, .pbl_eyeball = false, .apnic_eyeball = false});
  reg.add({.asn = 4, .name = "cell", .region = netcore::Rir::ripe,
           .cellular = true, .pbl_eyeball = true, .apnic_eyeball = true});

  BtDetectionResult bt;
  bt.per_as[1] = {.asn = 1, .queried_peers = 50, .covered = true,
                  .cgn_positive = true};
  bt.per_as[3] = {.asn = 3, .queried_peers = 10, .covered = true,
                  .cgn_positive = false};

  NetalyzrDetectionResult nz;
  {
    AsNetalyzrVerdict v;
    v.asn = 2;
    v.cellular = false;
    v.covered = true;
    v.cgn_positive = true;
    nz.per_as.emplace(2, std::move(v));
  }
  {
    AsNetalyzrVerdict v;
    v.asn = 4;
    v.cellular = true;
    v.covered = true;
    v.cgn_positive = true;
    nz.per_as.emplace(4, std::move(v));
  }

  auto cov = combine_coverage(bt, nz, reg);
  auto routed = static_cast<std::size_t>(Population::routed);
  auto pbl = static_cast<std::size_t>(Population::pbl_eyeball);
  EXPECT_EQ(cov.table5.population[routed], 4u);
  EXPECT_EQ(cov.table5.population[pbl], 3u);
  EXPECT_EQ(cov.table5.bittorrent[routed].covered, 2u);
  EXPECT_EQ(cov.table5.bittorrent[routed].positive, 1u);
  EXPECT_EQ(cov.table5.combined[routed].covered, 3u);
  EXPECT_EQ(cov.table5.combined[routed].positive, 2u);
  EXPECT_EQ(cov.table5.netalyzr_cellular[pbl].covered, 1u);
  EXPECT_EQ(cov.table5.netalyzr_cellular[pbl].positive, 1u);
  EXPECT_EQ(cov.cgn_positive_ases().size(), 3u);

  // Figure 6 rollups: AS1 eyeball RIPE covered+positive, AS4 cellular.
  auto ripe = static_cast<std::size_t>(netcore::Rir::ripe);
  EXPECT_EQ(cov.regions.eyeball_covered[ripe], 1u);
  EXPECT_EQ(cov.regions.eyeball_positive[ripe], 1u);
  EXPECT_EQ(cov.regions.cellular_covered[ripe], 1u);
}

// --- Path / STUN analysis -----------------------------------------------------

netalyzr::SessionResult enum_session(netcore::Asn asn, bool cellular,
                                     std::vector<std::pair<int, double>> nats,
                                     bool mismatch, int path = 8) {
  netalyzr::SessionResult s;
  s.asn = asn;
  s.cellular = cellular;
  s.ip_dev = mismatch ? Ipv4Address(10, 0, 0, 2) : Ipv4Address(16, 2, 0, 2);
  s.ip_pub = Ipv4Address(16, 2, 0, 2);
  netalyzr::TtlEnumResult e;
  e.path_hops = path;
  for (int h = 1; h <= path; ++h) {
    netalyzr::NatHopObservation obs;
    obs.hop = h;
    for (auto& [hop, timeout] : nats)
      if (hop == h) {
        obs.stateful = true;
        obs.timeout_s = timeout;
      }
    e.hops.push_back(obs);
  }
  s.enumeration = e;
  return s;
}

TEST(PathAnalyzer, Table7AndFig11AndFig12) {
  RoutingTable rt;
  std::unordered_set<netcore::Asn> cgn_ases{20, 30};
  std::vector<netalyzr::SessionResult> sessions;
  // AS 10: no CGN, CPE at hop 1 with 65 s timeout (3 sessions).
  for (int i = 0; i < 3; ++i)
    sessions.push_back(enum_session(10, false, {{1, 65.0}}, true));
  // AS 20: non-cellular NAT444, CGN at hop 4, 40 s (3 sessions).
  for (int i = 0; i < 3; ++i)
    sessions.push_back(
        enum_session(20, false, {{1, 65.0}, {4, 40.0}}, true));
  // AS 30: cellular CGN at hop 6, 70 s.
  for (int i = 0; i < 3; ++i)
    sessions.push_back(enum_session(30, true, {{6, 70.0}}, true));
  // One mismatching session with no stateful hop found (long-timeout NAT).
  sessions.push_back(enum_session(10, false, {}, true));

  auto result = PathAnalyzer().analyze(sessions, rt, cgn_ases);
  EXPECT_EQ(result.table7.mismatch_detected, 9u);
  EXPECT_EQ(result.table7.mismatch_undetected, 1u);

  const auto& no_cgn = result.fig11.at(VantageClass::noncellular_no_cgn);
  EXPECT_EQ(no_cgn.ases_by_hop[0], 1u);  // hop 1
  const auto& nc_cgn = result.fig11.at(VantageClass::noncellular_cgn);
  EXPECT_EQ(nc_cgn.ases_by_hop[3], 1u);  // hop 4
  const auto& cell = result.fig11.at(VantageClass::cellular_cgn);
  EXPECT_EQ(cell.ases_by_hop[5], 1u);  // hop 6

  ASSERT_EQ(result.fig12.cpe_per_session.size(), 3u);
  EXPECT_DOUBLE_EQ(result.fig12.cpe_per_session[0], 65.0);
  ASSERT_EQ(result.fig12.noncellular_cgn_per_as.size(), 1u);
  EXPECT_DOUBLE_EQ(result.fig12.noncellular_cgn_per_as[0], 40.0);
  ASSERT_EQ(result.fig12.cellular_cgn_per_as.size(), 1u);
  EXPECT_DOUBLE_EQ(result.fig12.cellular_cgn_per_as[0], 70.0);
}

TEST(StunAnalyzer, MostPermissivePerCgnAs) {
  RoutingTable rt;
  std::unordered_set<netcore::Asn> cgn_ases{20};
  std::vector<netalyzr::SessionResult> sessions;
  auto add = [&](netcore::Asn asn, bool cellular, stun::StunType type) {
    netalyzr::SessionResult s;
    s.asn = asn;
    s.cellular = cellular;
    s.ip_dev = Ipv4Address(10, 0, 0, 2);
    s.stun = stun::StunOutcome{type, std::nullopt};
    sessions.push_back(s);
  };
  // CGN AS 20: sessions show symmetric twice and address-restricted once.
  add(20, false, stun::StunType::symmetric);
  add(20, false, stun::StunType::symmetric);
  add(20, false, stun::StunType::address_restricted);
  // Non-CGN AS 10: CPE sessions.
  add(10, false, stun::StunType::full_cone);
  add(10, false, stun::StunType::port_address_restricted);
  add(10, false, stun::StunType::full_cone);

  auto result = StunAnalyzer().analyze(sessions, rt, cgn_ases);
  EXPECT_EQ(result.noncellular_cgn_ases.at(stun::StunType::address_restricted),
            1u)
      << "the AS is represented by its most permissive session";
  EXPECT_EQ(result.cpe_sessions.at(stun::StunType::full_cone), 2u);
  EXPECT_EQ(result.cgn_ases, 1u);
}

}  // namespace
}  // namespace cgn::analysis
