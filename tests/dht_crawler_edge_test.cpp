// Edge cases of the DHT/crawler stack, plus the paper's §4.1 calibration
// experiment: do peers really validate reachability before propagating?
#include <gtest/gtest.h>

#include "crawler/dht_crawler.hpp"
#include "dht/tracker.hpp"
#include "test_topology.hpp"

namespace cgn::dht {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

struct PublicPeer {
  MiniNet::Line line;
  std::unique_ptr<DhtNode> node;
};

struct Swarm {
  MiniNet mini;
  std::vector<std::unique_ptr<PublicPeer>> peers;
  sim::Rng rng{31337};

  DhtNode& add(DhtNodeConfig cfg = {}) {
    auto peer = std::make_unique<PublicPeer>();
    LineConfig lc;
    lc.with_cpe = false;
    lc.line_public = Ipv4Address(
        16, 0, static_cast<std::uint8_t>(3 + peers.size() / 200),
        static_cast<std::uint8_t>(2 + peers.size() % 200));
    peer->line = mini.add_line(lc, 100 + peers.size());
    peer->node = std::make_unique<DhtNode>(
        NodeId160::random(rng), Endpoint{peer->line.device_address, 6881},
        peer->line.device, cfg, rng.fork());
    DhtNode* raw = peer->node.get();
    peer->line.demux->bind(6881, [raw](sim::Network& n, const sim::Packet& p) {
      raw->handle(n, p);
    });
    peers.push_back(std::move(peer));
    return *peers.back()->node;
  }
};

TEST(DhtCalibration, ConformantPeersValidateBeforePropagating) {
  // Reproduces the paper's experiment: plant a target id at peers via an
  // *unreachable* endpoint; conformant peers must not hand it out.
  Swarm swarm;
  DhtNode& conformant = swarm.add();
  NodeId160 target = NodeId160::random(swarm.rng);
  Contact ghost{target, Endpoint{Ipv4Address{16, 200, 0, 1}, 6881}};  // dead
  conformant.learn_contact(ghost);
  conformant.run_maintenance(swarm.mini.net);  // the validation ping dies

  // Crawl the peer for the target.
  DhtNode& crawler_node = swarm.add();
  crawler_node.learn_contact(
      {conformant.id(), conformant.local_endpoint()});
  crawler_node.run_maintenance(swarm.mini.net);  // validate the peer
  // Issue a find_nodes for the ghost id.
  bool ghost_propagated = false;
  swarm.peers[1]->line.demux->bind(
      7000, [&](sim::Network&, const sim::Packet& p) {
        if (const auto* m = std::any_cast<Message>(&p.payload))
          if (const auto* nodes = std::get_if<NodesMsg>(m))
            for (const auto& c : nodes->contacts)
              if (c.id == target) ghost_propagated = true;
      });
  sim::Packet q = sim::Packet::udp(
      {swarm.peers[1]->line.device_address, 7000},
      conformant.local_endpoint());
  q.payload = Message{FindNodesMsg{9, crawler_node.id(), target}};
  swarm.mini.net.send(std::move(q), swarm.peers[1]->line.device);
  EXPECT_FALSE(ghost_propagated)
      << "unvalidated contacts must not be propagated (BEP-5)";
}

TEST(DhtCalibration, SloppyPeersPropagateUnvalidated) {
  Swarm swarm;
  DhtNodeConfig sloppy;
  sloppy.validate_before_propagate = false;
  DhtNode& peer = swarm.add(sloppy);
  NodeId160 target = NodeId160::random(swarm.rng);
  peer.learn_contact({target, Endpoint{Ipv4Address{16, 200, 0, 1}, 6881}});

  DhtNode& other = swarm.add();
  bool ghost_propagated = false;
  swarm.peers[1]->line.demux->bind(
      7000, [&](sim::Network&, const sim::Packet& p) {
        if (const auto* m = std::any_cast<Message>(&p.payload))
          if (const auto* nodes = std::get_if<NodesMsg>(m))
            for (const auto& c : nodes->contacts)
              if (c.id == target) ghost_propagated = true;
      });
  sim::Packet q = sim::Packet::udp(
      {swarm.peers[1]->line.device_address, 7000}, peer.local_endpoint());
  q.payload = Message{FindNodesMsg{9, other.id(), target}};
  swarm.mini.net.send(std::move(q), swarm.peers[1]->line.device);
  EXPECT_TRUE(ghost_propagated)
      << "the ~1.3% sloppy population hands out unvalidated contacts";
}

TEST(Tracker, UpdatesEndpointOnReannounce) {
  Swarm swarm;
  sim::NodeId tracker_host =
      swarm.mini.net.add_node(swarm.mini.net.root(), "tracker");
  TrackerServer tracker(tracker_host, Ipv4Address{16, 255, 0, 50},
                        sim::Rng(3), 10);
  tracker.install(swarm.mini.net);
  DhtNode& a = swarm.add();
  a.announce(swarm.mini.net, tracker.endpoint(), 5);
  a.announce(swarm.mini.net, tracker.endpoint(), 5);
  EXPECT_EQ(tracker.swarm_size(5), 1u) << "re-announce must not duplicate";
  EXPECT_EQ(tracker.swarm_count(), 1u);
}

TEST(Tracker, SwarmsAreIsolated) {
  Swarm swarm;
  sim::NodeId tracker_host =
      swarm.mini.net.add_node(swarm.mini.net.root(), "tracker");
  TrackerServer tracker(tracker_host, Ipv4Address{16, 255, 0, 50},
                        sim::Rng(3), 10);
  tracker.install(swarm.mini.net);
  DhtNode& a = swarm.add();
  DhtNode& b = swarm.add();
  a.announce(swarm.mini.net, tracker.endpoint(), 1);
  b.announce(swarm.mini.net, tracker.endpoint(), 2);
  EXPECT_EQ(a.table_size(), 0u) << "different swarms share no peers";
  EXPECT_EQ(b.table_size(), 0u);
}

TEST(Crawler, LeakTriggersExtraQueryBatches) {
  // Two peers: one clean, one with a validated internal contact planted.
  // The crawler must spend extra find_nodes budget on the leaky one.
  Swarm swarm;
  DhtNode& clean = swarm.add();
  DhtNode& leaky = swarm.add();
  // Fabricate a validated internal contact on the leaky peer via a LAN-style
  // injection plus a direct validation bypass: pin + mark via ping from a
  // fake internal neighbour is overkill here, so instead make the peer
  // sloppy (propagates unvalidated) and plant internal contacts.
  (void)clean;
  DhtNodeConfig sloppy;
  sloppy.validate_before_propagate = false;
  DhtNode& sloppy_leaky = swarm.add(sloppy);
  for (int i = 0; i < 6; ++i)
    sloppy_leaky.learn_contact(
        {NodeId160::random(swarm.rng),
         Endpoint{Ipv4Address(10, 7, static_cast<std::uint8_t>(i), 2), 6881}});
  (void)leaky;

  sim::NodeId crawl_host =
      swarm.mini.net.add_node(swarm.mini.net.root(), "crawler");
  Ipv4Address crawl_addr{16, 255, 0, 70};
  swarm.mini.net.add_local_address(crawl_host, crawl_addr);
  swarm.mini.net.register_address(crawl_addr, crawl_host,
                                  swarm.mini.net.root());
  crawler::CrawlConfig cfg;
  cfg.initial_queries = 3;
  cfg.leak_batch_queries = 5;
  cfg.ping_learned = false;
  crawler::DhtCrawler crawler(crawl_host, Endpoint{crawl_addr, 6881}, cfg,
                              sim::Rng(9));
  crawler.install(swarm.mini.net);

  // Query the clean peer, then the leaky one, comparing query counts.
  crawler.start(swarm.mini.net, clean.local_endpoint());
  while (crawler.crawl_step(swarm.mini.net, 10) > 0) {
  }
  auto queries_clean = crawler.stats().find_nodes_sent;

  crawler::DhtCrawler crawler2(crawl_host, Endpoint{crawl_addr, 6882}, cfg,
                               sim::Rng(9));
  // Rebind receiver to the second crawler.
  crawler2.install(swarm.mini.net);
  crawler2.start(swarm.mini.net, sloppy_leaky.local_endpoint());
  while (crawler2.crawl_step(swarm.mini.net, 10) > 0) {
  }
  EXPECT_GT(crawler2.stats().find_nodes_sent, queries_clean)
      << "internal contacts must trigger batches of follow-up queries";
  EXPECT_GT(crawler2.stats().peers_with_leaks, 0u);
  EXPECT_FALSE(crawler2.dataset().leaks().empty());
}

TEST(Crawler, InternalPeersNeverJoinTheFrontier) {
  Swarm swarm;
  DhtNodeConfig sloppy;
  sloppy.validate_before_propagate = false;
  DhtNode& peer = swarm.add(sloppy);
  peer.learn_contact({NodeId160::random(swarm.rng),
                      Endpoint{Ipv4Address(192, 168, 1, 5), 6881}});

  sim::NodeId crawl_host =
      swarm.mini.net.add_node(swarm.mini.net.root(), "crawler");
  Ipv4Address crawl_addr{16, 255, 0, 70};
  swarm.mini.net.add_local_address(crawl_host, crawl_addr);
  swarm.mini.net.register_address(crawl_addr, crawl_host,
                                  swarm.mini.net.root());
  crawler::CrawlConfig cfg;
  cfg.ping_learned = true;
  crawler::DhtCrawler crawler(crawl_host, Endpoint{crawl_addr, 6881}, cfg,
                              sim::Rng(9));
  crawler.install(swarm.mini.net);
  crawler.start(swarm.mini.net, peer.local_endpoint());
  while (crawler.crawl_step(swarm.mini.net, 10) > 0) {
  }
  while (crawler.ping_step(swarm.mini.net, 100) > 0) {
  }
  // The internal peer was learned (and bt_pinged, unreachable) but never
  // queried with find_nodes.
  EXPECT_GT(crawler.dataset().learned_peers(), 0u);
  for (const auto& c : crawler.dataset().queried_contacts())
    EXPECT_FALSE(netcore::is_reserved(c.endpoint.address));
}

}  // namespace
}  // namespace cgn::dht
