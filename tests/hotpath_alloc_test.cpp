// Proof of the zero-allocation packet path: after warm-up, a NAT444 echo
// round trip (device -> CPE -> CGN -> server, reply descending back) must
// perform no heap allocation at all. The test replaces the global operator
// new to count allocations; counting is gated so the rest of the binary is
// unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "netcore/ipv6.hpp"
#include "sim/network.hpp"
#include "test_topology.hpp"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cgn::sim {
namespace {

using netcore::Endpoint;

TEST(HotPathAlloc, CounterSeesAllocations) {
  g_allocs.store(0);
  g_counting.store(true);
  {
    std::vector<int> v(100);
    v[0] = 1;
  }
  g_counting.store(false);
  EXPECT_GE(g_allocs.load(), 1u);
}

TEST(HotPathAlloc, WarmedNat444EchoRoundTripIsAllocationFree) {
  test::MiniNet world;
  test::LineConfig cfg;
  cfg.with_cpe = true;
  cfg.with_cgn = true;
  auto line = world.add_line(cfg);

  Endpoint device_ep{line.device_address, 4000};
  Endpoint server_ep{world.server_address, 5000};
  std::uint64_t echoed = 0;
  world.net.set_receiver(world.server_host,
                         [&](Network& net, const Packet& p) {
                           net.send(Packet::udp(server_ep, p.src),
                                    world.server_host);
                         });
  line.demux->bind(device_ep.port,
                   [&](Network&, const Packet&) { ++echoed; });

  // Warm-up: establish the NAT mappings, grow every table past its final
  // size and fault in the lazy port bitmaps.
  for (int i = 0; i < 64; ++i)
    world.net.send(Packet::udp(device_ep, server_ep), line.device);
  ASSERT_EQ(echoed, 64u);

  constexpr int kRounds = 256;
  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < kRounds; ++i)
    world.net.send(Packet::udp(device_ep, server_ep), line.device);
  g_counting.store(false);

  EXPECT_EQ(echoed, 64u + kRounds);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "warmed-up echo round trips must not touch the heap";
}

TEST(HotPathAlloc, WarmedNat64EchoRoundTripIsAllocationFree) {
  // Same contract for the v6 translation path: CLAT -> NAT64 -> server and
  // back rides the v4 engine plus a POD overlay, so a warmed 464XLAT echo
  // leg must be as heap-silent as NAT444.
  test::MiniNet world;
  world.ensure_nat64(netcore::well_known_pref64());
  auto line = world.add_nat64_line(/*with_clat=*/true);

  Endpoint device_ep{line.device_address, 4000};
  Endpoint server_ep{world.server_address, 5000};
  std::uint64_t echoed = 0;
  world.net.set_receiver(world.server_host,
                         [&](Network& net, const Packet& p) {
                           net.send(Packet::udp(server_ep, p.src),
                                    world.server_host);
                         });
  line.demux->bind(device_ep.port,
                   [&](Network&, const Packet&) { ++echoed; });

  for (int i = 0; i < 64; ++i)
    world.net.send(Packet::udp(device_ep, server_ep), line.device);
  ASSERT_EQ(echoed, 64u);

  constexpr int kRounds = 256;
  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < kRounds; ++i)
    world.net.send(Packet::udp(device_ep, server_ep), line.device);
  g_counting.store(false);

  EXPECT_EQ(echoed, 64u + kRounds);
  EXPECT_EQ(g_allocs.load(), 0u)
      << "warmed-up NAT64 echo round trips must not touch the heap";
}

}  // namespace
}  // namespace cgn::sim
