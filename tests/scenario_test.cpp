#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"

#include <gtest/gtest.h>

#include "analysis/bt_detector.hpp"
#include "analysis/coverage.hpp"
#include "analysis/netalyzr_detector.hpp"

namespace cgn::scenario {
namespace {

InternetConfig small_config() {
  InternetConfig cfg;
  cfg.seed = 7;
  cfg.routed_ases = 300;
  cfg.pbl_eyeballs = 50;
  cfg.apnic_eyeballs = 54;
  cfg.cellular_ases = 8;
  cfg.bt_peers_cgn_lo = 50;
  cfg.bt_peers_cgn_hi = 90;
  cfg.nz_sessions_lo = 10;
  cfg.nz_sessions_hi = 20;
  return cfg;
}

TEST(InternetBuilder, BuildsConsistentUniverse) {
  auto internet = build_internet(small_config());
  EXPECT_EQ(internet->registry.size(), 301u);  // + measurement infra AS
  EXPECT_EQ(internet->registry.count_pbl_eyeball(), 50u);
  EXPECT_EQ(internet->registry.count_apnic_eyeball(), 54u);
  EXPECT_EQ(internet->registry.count_cellular(), 8u);
  EXPECT_GT(internet->isps.size(), 10u);
  EXPECT_GT(internet->bt_peers().size(), 100u);

  // Every instrumented ISP is registered and routed.
  for (const IspInstance& isp : internet->isps) {
    EXPECT_TRUE(internet->registry.contains(isp.asn));
    EXPECT_FALSE(isp.subscribers.empty());
    if (isp.cgn_profile.has_value()) {
      EXPECT_NE(isp.cgn, nullptr);
      EXPECT_TRUE(internet->truth_has_cgn(isp.asn));
    }
    for (const Subscriber& s : isp.subscribers) {
      EXPECT_NE(s.device, sim::kNoNode);
      EXPECT_NE(s.demux, nullptr);
      if (s.behind_cgn) EXPECT_TRUE(isp.cgn_profile.has_value());
    }
  }
}

TEST(InternetBuilder, DeterministicForSameSeed) {
  auto a = build_internet(small_config());
  auto b = build_internet(small_config());
  ASSERT_EQ(a->isps.size(), b->isps.size());
  for (std::size_t i = 0; i < a->isps.size(); ++i) {
    EXPECT_EQ(a->isps[i].asn, b->isps[i].asn);
    EXPECT_EQ(a->isps[i].subscribers.size(), b->isps[i].subscribers.size());
    EXPECT_EQ(a->isps[i].cgn_profile.has_value(),
              b->isps[i].cgn_profile.has_value());
  }
  EXPECT_EQ(a->bt_peers().size(), b->bt_peers().size());
}

TEST(InternetBuilder, SubscriberAddressingMatchesArchetypes) {
  auto internet = build_internet(small_config());
  for (const IspInstance& isp : internet->isps) {
    for (const Subscriber& s : isp.subscribers) {
      if (isp.cellular) {
        EXPECT_EQ(s.cpe, nullptr) << "cellular devices attach directly";
        if (!s.behind_cgn)
          EXPECT_EQ(internet->routes.origin_of(s.device_address), isp.asn);
      } else if (s.cpe) {
        EXPECT_TRUE(netcore::is_reserved(s.device_address))
            << "LAN devices live in RFC1918 space";
      }
      if (!s.behind_cgn && !s.cpe && !isp.cellular)
        EXPECT_EQ(internet->routes.origin_of(s.device_address), isp.asn);
    }
  }
}

TEST(FullPipeline, CrawlDetectsLeakyCgnsWithoutFalsePositives) {
  auto internet = build_internet(small_config());
  run_bittorrent_phase(*internet);
  auto crawler = run_crawl_phase(*internet);

  const auto& data = crawler->dataset();
  EXPECT_GT(data.queried_peers(), internet->bt_peers().size() / 3)
      << "a healthy crawl reaches a good share of the swarm";
  EXPECT_GT(data.leaks().size(), 0u);

  analysis::BtDetector detector;
  auto result = detector.analyze(data, internet->routes);

  std::size_t positives = 0;
  for (const auto& [asn, verdict] : result.per_as) {
    if (!verdict.cgn_positive) continue;
    ++positives;
    EXPECT_TRUE(internet->truth_has_cgn(asn))
        << "BitTorrent detection must not false-positive (AS" << asn << ")";
  }
  EXPECT_GT(positives, 0u) << "at least some CGNs must be detectable";
}

TEST(FullPipeline, NetalyzrDetectsCgnsWithoutFalsePositives) {
  auto internet = build_internet(small_config());
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.0;  // keep this test fast
  cfg.stun_fraction = 0.0;
  auto sessions = run_netalyzr_campaign(*internet, cfg);
  EXPECT_GT(sessions.size(), 100u);

  analysis::NetalyzrDetector detector;
  auto result = detector.analyze(sessions, internet->routes);

  std::size_t cell_pos = 0, noncell_pos = 0;
  for (const auto& [asn, verdict] : result.per_as) {
    if (!verdict.covered || !verdict.cgn_positive) continue;
    EXPECT_TRUE(internet->truth_has_cgn(asn))
        << "Netalyzr detection must not false-positive (AS" << asn << ")";
    (verdict.cellular ? cell_pos : noncell_pos)++;
  }
  EXPECT_GT(cell_pos + noncell_pos, 0u);

  // Table 4 shape: non-cellular devices overwhelmingly sit in 192X space.
  const auto& col = result.table4.noncellular_dev;
  ASSERT_GT(col.n, 0u);
  EXPECT_GT(col.fraction(analysis::Table4Row::r192), 0.70);
}

TEST(FullPipeline, CellularAssignmentsFollowGroundTruth) {
  auto internet = build_internet(small_config());
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.0;
  cfg.stun_fraction = 0.0;
  auto sessions = run_netalyzr_campaign(*internet, cfg);
  analysis::NetalyzrDetector detector;
  auto result = detector.analyze(sessions, internet->routes);

  for (const auto& [asn, verdict] : result.per_as) {
    if (!verdict.cellular || !verdict.covered) continue;
    EXPECT_EQ(verdict.cgn_positive, internet->truth_has_cgn(asn))
        << "cellular detection is direct and should be exact (AS" << asn
        << ")";
  }
}

}  // namespace
}  // namespace cgn::scenario
