#include "netcore/ipv4.hpp"

#include <gtest/gtest.h>

namespace cgn::netcore {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  auto a = Ipv4Address::parse("192.168.1.7");
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 168);
  EXPECT_EQ(a.octet(2), 1);
  EXPECT_EQ(a.octet(3), 7);
  EXPECT_EQ(a.to_string(), "192.168.1.7");
}

TEST(Ipv4Address, ParseRoundTripsBoundaries) {
  for (const char* text : {"0.0.0.0", "255.255.255.255", "100.64.0.1"})
    EXPECT_EQ(Ipv4Address::parse(text).to_string(), text);
}

TEST(Ipv4Address, RejectsMalformedInput) {
  for (const char* text :
       {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4 ",
        " 1.2.3.4", "-1.2.3.4"})
    EXPECT_FALSE(Ipv4Address::try_parse(text).has_value()) << text;
  EXPECT_THROW(Ipv4Address::parse("999.0.0.1"), std::invalid_argument);
}

TEST(Ipv4Address, OrdersNumerically) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(Ipv4Address, OctetOutOfRangeThrows) {
  Ipv4Address a(1, 2, 3, 4);
  EXPECT_THROW(a.octet(4), std::out_of_range);
  EXPECT_THROW(a.octet(-1), std::out_of_range);
}

TEST(Endpoint, FormatsAndCompares) {
  Endpoint e{Ipv4Address(10, 0, 0, 1), 6881};
  EXPECT_EQ(e.to_string(), "10.0.0.1:6881");
  EXPECT_EQ(e, (Endpoint{Ipv4Address(10, 0, 0, 1), 6881}));
  EXPECT_NE(e, (Endpoint{Ipv4Address(10, 0, 0, 1), 6882}));
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 8);
  EXPECT_EQ(p.address(), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
}

TEST(Ipv4Prefix, ContainsAddresses) {
  auto p = Ipv4Prefix::parse("100.64.0.0/10");
  EXPECT_TRUE(p.contains(Ipv4Address(100, 64, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Address(100, 127, 255, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(100, 128, 0, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(100, 63, 255, 255)));
}

TEST(Ipv4Prefix, ContainsPrefixes) {
  auto p10 = Ipv4Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p10.contains(Ipv4Prefix::parse("10.5.0.0/16")));
  EXPECT_FALSE(p10.contains(Ipv4Prefix::parse("0.0.0.0/0")));
  EXPECT_TRUE(p10.contains(p10));
}

TEST(Ipv4Prefix, SizeAndAt) {
  auto p = Ipv4Prefix::parse("192.168.1.0/24");
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.at(0), Ipv4Address(192, 168, 1, 0));
  EXPECT_EQ(p.at(255), Ipv4Address(192, 168, 1, 255));
  EXPECT_THROW(p.at(256), std::out_of_range);
}

TEST(Ipv4Prefix, RejectsBadLengths) {
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(), 33), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(), -1), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(Ipv4Prefix::parse("10.0.0.0/x"), std::invalid_argument);
}

TEST(ReservedRanges, ClassifiesTable1) {
  EXPECT_EQ(classify_reserved(Ipv4Address(192, 168, 5, 5)),
            ReservedRange::r192);
  EXPECT_EQ(classify_reserved(Ipv4Address(172, 16, 0, 1)), ReservedRange::r172);
  EXPECT_EQ(classify_reserved(Ipv4Address(172, 31, 255, 255)),
            ReservedRange::r172);
  EXPECT_EQ(classify_reserved(Ipv4Address(172, 32, 0, 0)),
            ReservedRange::none);
  EXPECT_EQ(classify_reserved(Ipv4Address(10, 200, 3, 4)), ReservedRange::r10);
  EXPECT_EQ(classify_reserved(Ipv4Address(100, 64, 0, 1)),
            ReservedRange::r100);
  EXPECT_EQ(classify_reserved(Ipv4Address(100, 128, 0, 1)),
            ReservedRange::none);
  EXPECT_EQ(classify_reserved(Ipv4Address(8, 8, 8, 8)), ReservedRange::none);
}

TEST(ReservedRanges, ShorthandMatchesPaper) {
  EXPECT_EQ(shorthand(ReservedRange::r192), "192X");
  EXPECT_EQ(shorthand(ReservedRange::r172), "172X");
  EXPECT_EQ(shorthand(ReservedRange::r10), "10X");
  EXPECT_EQ(shorthand(ReservedRange::r100), "100X");
}

TEST(ReservedRanges, PrefixOfRoundTrips) {
  for (auto r : {ReservedRange::r192, ReservedRange::r172, ReservedRange::r10,
                 ReservedRange::r100}) {
    auto p = prefix_of(r);
    EXPECT_EQ(classify_reserved(p.address()), r);
    EXPECT_EQ(classify_reserved(p.at(p.size() - 1)), r);
  }
  EXPECT_THROW(prefix_of(ReservedRange::none), std::invalid_argument);
}

TEST(ReservedRanges, IsReservedAgrees) {
  EXPECT_TRUE(is_reserved(Ipv4Address(10, 0, 0, 1)));
  EXPECT_FALSE(is_reserved(Ipv4Address(11, 0, 0, 1)));
}

TEST(Slash24, ExtractsBlock) {
  EXPECT_EQ(slash24_of(Ipv4Address(10, 1, 2, 200)),
            Ipv4Prefix::parse("10.1.2.0/24"));
  EXPECT_EQ(slash24_of(Ipv4Address(10, 1, 2, 200)),
            slash24_of(Ipv4Address(10, 1, 2, 3)));
  EXPECT_NE(slash24_of(Ipv4Address(10, 1, 2, 200)),
            slash24_of(Ipv4Address(10, 1, 3, 200)));
}

}  // namespace
}  // namespace cgn::netcore
