// Push-ingestion tests: wire codec round-trips, the malformed-frame
// corpus (every rejected frame lands in exactly one counter and the daemon
// stays healthy), bounded-queue backpressure and shedding, reconnect-and-
// resume figure equality, and the hardened HttpServer parsing limits.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "netcore/as_registry.hpp"
#include "obs/metrics.hpp"
#include "observatory/http.hpp"
#include "observatory/ingest.hpp"
#include "observatory/observatory.hpp"
#include "super/wire.hpp"

namespace cgn {
namespace {

using netcore::Ipv4Address;
using netcore::Ipv4Prefix;
using netcore::RoutingTable;
using observatory::IngestFrameType;
using observatory::StreamEvent;

RoutingTable two_as_routes() {
  RoutingTable routes;
  routes.announce(Ipv4Prefix::parse("16.0.0.0/8"), 1);
  routes.announce(Ipv4Prefix::parse("17.0.0.0/8"), 2);
  return routes;
}

dht::Contact contact(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d, std::uint16_t port = 6881) {
  dht::Contact out;
  out.endpoint = {Ipv4Address(a, b, c, d), port};
  return out;
}

netalyzr::SessionResult session(netcore::Asn asn, std::uint8_t dev_octet,
                                std::uint8_t pub_octet, bool translated) {
  netalyzr::SessionResult s;
  s.asn = asn;
  s.ip_dev = Ipv4Address(192, 168, 1, dev_octet);
  s.ip_pub = Ipv4Address(16, 0, pub_octet, 1);
  s.ip_cpe = translated ? Ipv4Address(10, 64, dev_octet, 1) : *s.ip_pub;
  return s;
}

/// A deterministic mixed event stream that exercises every event kind and
/// produces nontrivial fig04/fig05 figure sets.
std::vector<StreamEvent> synthetic_stream() {
  std::vector<StreamEvent> events;
  const dht::Contact shared = contact(10, 0, 0, 7);
  for (std::uint8_t i = 1; i <= 6; ++i) {
    const dht::Contact leaker = contact(16, 0, 0, i);
    StreamEvent q;
    q.kind = StreamEvent::Kind::bt_queried;
    q.contact = leaker;
    events.push_back(q);
    StreamEvent l;
    l.kind = StreamEvent::Kind::bt_leak;
    l.contact = leaker;
    l.internal = shared;
    events.push_back(l);
    l.internal = contact(10, 0, 1, i);
    events.push_back(l);
    StreamEvent p;
    p.kind = StreamEvent::Kind::bt_ping_response;
    p.contact = leaker;
    events.push_back(p);
  }
  for (std::uint8_t i = 0; i < 12; ++i) {
    StreamEvent e;
    e.kind = StreamEvent::Kind::nz_session;
    e.session = session(1, i, static_cast<std::uint8_t>(i % 7), true);
    events.push_back(e);
  }
  for (std::size_t i = 0; i < events.size(); ++i)
    events[i].time = static_cast<double>(i + 1);
  return events;
}

/// Raw client socket for hand-crafted (including malformed) frames.
class RawIngestClient {
 public:
  explicit RawIngestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
  }
  ~RawIngestClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_bytes(std::string_view bytes) {
    ASSERT_GT(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL), 0);
  }

  /// Reads until the peer closes (or times out); returns everything.
  std::string drain() {
    std::string out;
    char buf[1024];
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

std::string hello_frame(const std::string& campaign,
                        observatory::IngestOverloadPolicy policy =
                            observatory::IngestOverloadPolicy::park,
                        std::uint64_t world_seed = 1,
                        std::uint64_t plan_hash = 2,
                        std::uint32_t proto = observatory::
                            kIngestProtocolVersion) {
  super::wire::Writer w;
  w.u32(proto);
  w.str(campaign);
  w.u8(static_cast<std::uint8_t>(policy));
  w.u64(world_seed);
  w.u64(plan_hash);
  return observatory::ingest_frame(IngestFrameType::hello, w.bytes());
}

std::string event_frame(std::uint64_t seq, const StreamEvent& e) {
  super::wire::Writer w;
  w.u64(seq);
  observatory::put_stream_event(w, e);
  return observatory::ingest_frame(IngestFrameType::event, w.bytes());
}

/// Polls `cond` for up to 5 seconds.
template <typename F>
bool eventually(F cond) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

// --- wire codec -------------------------------------------------------------

TEST(ObservatoryIngestCodec, StreamEventRoundTripsEveryKind) {
  std::vector<StreamEvent> events = synthetic_stream();
  for (const StreamEvent& in : events) {
    super::wire::Writer w;
    observatory::put_stream_event(w, in);
    super::wire::Reader r(w.bytes());
    StreamEvent out;
    ASSERT_TRUE(observatory::get_stream_event(r, out));
    EXPECT_TRUE(r.done());
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.time, in.time);
    // Re-encoding must reproduce the exact bytes (the byte-identity
    // contract rides on this).
    super::wire::Writer w2;
    observatory::put_stream_event(w2, out);
    EXPECT_EQ(w.bytes(), w2.bytes());
  }
}

TEST(ObservatoryIngestCodec, RejectsUnknownEventKind) {
  super::wire::Writer w;
  w.u8(observatory::kStreamEventKindMax + 1);
  w.f64(1.0);
  super::wire::Reader r(w.bytes());
  StreamEvent out;
  EXPECT_FALSE(observatory::get_stream_event(r, out));
}

TEST(ObservatoryIngestCodec, CampaignReportRoundTrips) {
  super::CampaignReport in;
  in.shards.resize(3);
  in.shards[0].status = super::ShardStatus::completed;
  in.shards[0].attempts = 1;
  in.shards[0].elapsed_s = 0.25;
  in.shards[1].status = super::ShardStatus::recovered;
  in.shards[1].attempts = 2;
  in.shards[1].error = "transient";
  in.shards[2].status = super::ShardStatus::quarantined;
  in.shards[2].attempts = 3;
  in.shards[2].error = "boom";

  super::wire::Writer w;
  observatory::put_campaign_report(w, in);
  super::wire::Reader r(w.bytes());
  super::CampaignReport out;
  ASSERT_TRUE(observatory::get_campaign_report(r, out));
  EXPECT_TRUE(r.done());
  ASSERT_EQ(out.shards.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.shards[i].status, in.shards[i].status);
    EXPECT_EQ(out.shards[i].attempts, in.shards[i].attempts);
    EXPECT_EQ(out.shards[i].elapsed_s, in.shards[i].elapsed_s);
    EXPECT_EQ(out.shards[i].error, in.shards[i].error);
  }
}

TEST(ObservatoryIngestCodec, FrameHeaderChecksumsPayload) {
  const std::string frame =
      observatory::ingest_frame(IngestFrameType::done, "xyz");
  ASSERT_EQ(frame.size(), observatory::kIngestHeaderBytes + 4);
  super::wire::Reader r(frame);
  EXPECT_EQ(r.u32(), observatory::kIngestMagic);
  EXPECT_EQ(r.u32(), 4u);
  const std::uint64_t sum = r.u64();
  EXPECT_EQ(sum, super::wire::fnv1a(frame.substr(
                     observatory::kIngestHeaderBytes)));
}

// --- malformed-frame corpus over a real socket ------------------------------

class ObservatoryIngestServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    routes_ = two_as_routes();
    obs_ = std::make_unique<observatory::Observatory>(routes_, registry_);
    observatory::IngestConfig cfg;
    cfg.queue_capacity = 4;
    std::string error;
    ASSERT_TRUE(obs_->serve_ingest(0, cfg, &error)) << error;
    server_ = obs_->ingest_server();
  }

  RoutingTable routes_;
  netcore::AsRegistry registry_;
  std::unique_ptr<observatory::Observatory> obs_;
  observatory::IngestServer* server_ = nullptr;
};

TEST_F(ObservatoryIngestServerTest, MalformedFrameCorpusIsFullyAccounted) {
  const observatory::IngestStats before = server_->stats();

  {  // truncated header: half a length prefix, then EOF
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(std::string("\x43\x47\x4e\x49\x10", 5));
    c.close();
  }
  {  // bad magic
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(std::string(observatory::kIngestHeaderBytes, 'Z'));
    c.drain();
  }
  {  // giant declared length must be rejected without allocating
    super::wire::Writer h;
    h.u32(observatory::kIngestMagic);
    h.u32(0x7fffffff);
    h.u64(0);
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(h.bytes());
    c.drain();
  }
  {  // mid-payload EOF
    const std::string frame = hello_frame("corpus");
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(std::string_view(frame).substr(0, frame.size() - 3));
    c.close();
  }
  {  // bad checksum: flip one payload byte, connection must survive and a
     // correct hello on the same connection must then be accepted
    std::string frame = hello_frame("corpus");
    frame.back() = static_cast<char>(frame.back() ^ 0x01);
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(frame);
    c.send_bytes(hello_frame("corpus"));
    ASSERT_TRUE(eventually([&] {
      return server_->stats().frames_accepted >= before.frames_accepted + 1;
    }));
  }
  {  // unknown frame type
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(hello_frame("corpus"));
    c.send_bytes(observatory::ingest_frame(
        static_cast<IngestFrameType>(99), "?"));
    ASSERT_TRUE(eventually(
        [&] { return server_->stats().unknown_type == before.unknown_type + 1; }));
  }
  {  // duplicate + out-of-order sequence numbers
    std::vector<StreamEvent> events = synthetic_stream();
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(hello_frame("corpus"));
    c.send_bytes(event_frame(0, events[0]));
    c.send_bytes(event_frame(0, events[0]));   // duplicate: replayed
    c.send_bytes(event_frame(17, events[1]));  // gap: rejected
    ASSERT_TRUE(eventually([&] {
      const observatory::IngestStats s = server_->stats();
      return s.events_replayed == before.events_replayed + 1 &&
             s.seq_gap == before.seq_gap + 1;
    }));
  }

  const observatory::IngestStats after = server_->stats();
  EXPECT_EQ(after.truncated, before.truncated + 2)
      << "half header + mid-payload EOF";
  EXPECT_EQ(after.bad_magic, before.bad_magic + 1);
  EXPECT_EQ(after.bad_length, before.bad_length + 1);
  EXPECT_EQ(after.bad_checksum, before.bad_checksum + 1);
  EXPECT_EQ(after.unknown_type, before.unknown_type + 1);
  EXPECT_EQ(after.seq_gap, before.seq_gap + 1);
  EXPECT_EQ(after.events_replayed, before.events_replayed + 1);
  EXPECT_EQ(after.rejected_total(), before.rejected_total() + 7)
      << "every rejected frame lands in exactly one counter";

  // The daemon itself stays healthy through all of it.
  const observatory::HttpResponse health = obs_->handle("/health");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"push\":{"), std::string::npos) << health.body;
  EXPECT_NE(health.body.find("\"rejected_total\":7"), std::string::npos)
      << health.body;
}

TEST_F(ObservatoryIngestServerTest, HelloIdentityMismatchIsRejected) {
  {
    RawIngestClient c(obs_->ingest_port());
    c.send_bytes(hello_frame("bound", observatory::IngestOverloadPolicy::park,
                             /*world_seed=*/1, /*plan_hash=*/2));
    ASSERT_TRUE(
        eventually([&] { return server_->stats().frames_accepted >= 1; }));
  }
  RawIngestClient c(obs_->ingest_port());
  c.send_bytes(hello_frame("bound", observatory::IngestOverloadPolicy::park,
                           /*world_seed=*/9, /*plan_hash=*/9));
  ASSERT_TRUE(
      eventually([&] { return server_->stats().identity_rejected == 1; }));
  EXPECT_NE(c.drain().find("different world"), std::string::npos);
}

TEST_F(ObservatoryIngestServerTest, ParkBackpressureBoundsTheQueue) {
  server_->set_drain_paused(true);
  const std::vector<StreamEvent> events = synthetic_stream();

  observatory::PushClientConfig cfg;
  cfg.port = obs_->ingest_port();
  cfg.campaign = "park";
  cfg.world_seed = 1;
  cfg.plan_hash = 2;
  observatory::PushClient client(cfg);
  client.connect();
  std::thread pusher([&] {
    client.add_stream_total(events.size());
    for (const StreamEvent& e : events) client.ingest(e);
  });

  // The queue must cap at its capacity (4) while the connection parks.
  ASSERT_TRUE(eventually([&] { return server_->stats().parks > 0; }));
  EXPECT_LE(server_->stats().queue_depth, 4u);
  EXPECT_LE(server_->stats().max_queue_depth, 4u);

  server_->set_drain_paused(false);
  pusher.join();
  client.note_stream_done();  // blocks until the drain applied everything
  EXPECT_EQ(obs_->events_ingested("park"), events.size());
  EXPECT_TRUE(obs_->stream_done("park"));
  EXPECT_EQ(server_->stats().events_ingested, events.size());
  EXPECT_GT(client.parks_seen(), 0u);
}

TEST_F(ObservatoryIngestServerTest, ShedPolicyDropsDeterministicallyAndCounts) {
  server_->set_drain_paused(true);
  const std::vector<StreamEvent> events = synthetic_stream();

  observatory::PushClientConfig cfg;
  cfg.port = obs_->ingest_port();
  cfg.campaign = "shed";
  cfg.policy = observatory::IngestOverloadPolicy::shed;
  cfg.world_seed = 1;
  cfg.plan_hash = 2;
  observatory::PushClient client(cfg);
  client.connect();
  client.add_stream_total(events.size());
  for (const StreamEvent& e : events) client.ingest(e);

  // Wait for the connection thread to consume everything it was sent.
  ASSERT_TRUE(eventually(
      [&] { return server_->cursor("shed") == events.size(); }));
  observatory::IngestStats st = server_->stats();
  EXPECT_EQ(st.events_enqueued + st.shed_total, events.size())
      << "every accepted event is either queued or counted shed";
  EXPECT_EQ(st.events_enqueued, 4u) << "bounded by queue capacity";
  std::uint64_t by_kind = 0;
  for (const std::uint64_t n : st.shed_by_kind) by_kind += n;
  EXPECT_EQ(by_kind, st.shed_total) << "per-kind shed counters must add up";

  server_->set_drain_paused(false);
  ASSERT_TRUE(eventually([&] {
    const observatory::IngestStats s = server_->stats();
    return s.events_ingested == s.events_enqueued;
  }));
  // Shed events advanced the cursor: the client is never asked to resend.
  EXPECT_EQ(server_->cursor("shed"), events.size());
}

TEST_F(ObservatoryIngestServerTest, ReconnectResumeReproducesFigures) {
  const std::vector<StreamEvent> events = synthetic_stream();

  // Ground truth: the same events through the in-process default channel
  // of a second observatory over the same routes.
  std::map<std::string, analysis::Figures> truth;
  {
    observatory::Observatory truth_obs(routes_, registry_);
    truth_obs.add_stream_total(events.size());
    for (const StreamEvent& e : events) truth_obs.ingest(e);
    truth_obs.note_stream_done();
    truth = truth_obs.figure_sets();
  }

  observatory::PushClientConfig cfg;
  cfg.port = obs_->ingest_port();
  cfg.campaign = "resume";
  cfg.world_seed = 1;
  cfg.plan_hash = 2;
  cfg.faults.disconnect_after_bytes = 700;  // dies mid-stream, mid-frame
  bool died = false;
  try {
    observatory::PushClient client(cfg);
    client.connect();
    client.add_stream_total(events.size());
    for (const StreamEvent& e : events) client.ingest(e);
    client.note_stream_done();
  } catch (const observatory::IngestError&) {
    died = true;
  }
  ASSERT_TRUE(died) << "the injected disconnect must fire mid-stream";

  // Second attempt: clean connection, deterministic replay from scratch;
  // the client skips below the server's cursor.
  cfg.faults = {};
  observatory::PushClient client(cfg);
  client.connect();
  EXPECT_GT(client.resume_cursor(), 0u) << "server must hand back progress";
  client.add_stream_total(events.size());
  for (const StreamEvent& e : events) client.ingest(e);
  client.note_stream_done();
  EXPECT_EQ(client.events_skipped(), client.resume_cursor());

  EXPECT_TRUE(obs_->stream_done("resume"));
  EXPECT_EQ(obs_->events_ingested("resume"), events.size());
  EXPECT_EQ(obs_->figure_sets("resume"), truth)
      << "kill + resume must converge on byte-identical figures";

  // The per-campaign figures are served at /figures/<name>.
  const observatory::HttpResponse resp = obs_->handle("/figures/resume");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"stream_done\":true"), std::string::npos);
  EXPECT_EQ(obs_->handle("/figures/nope").status, 404);
}

TEST_F(ObservatoryIngestServerTest, MultiCampaignStreamsStayIndependent) {
  const std::vector<StreamEvent> events = synthetic_stream();
  auto push = [&](const std::string& campaign, std::size_t take) {
    observatory::PushClientConfig cfg;
    cfg.port = obs_->ingest_port();
    cfg.campaign = campaign;
    cfg.world_seed = 1;
    cfg.plan_hash = 2;
    observatory::PushClient client(cfg);
    client.connect();
    client.add_stream_total(take);
    for (std::size_t i = 0; i < take; ++i) client.ingest(events[i]);
    client.note_stream_done();
  };
  std::thread a([&] { push("alpha", events.size()); });
  std::thread b([&] { push("beta", events.size() / 2); });
  a.join();
  b.join();
  EXPECT_EQ(obs_->events_ingested("alpha"), events.size());
  EXPECT_EQ(obs_->events_ingested("beta"), events.size() / 2);
  EXPECT_NE(obs_->figure_sets("alpha"), obs_->figure_sets("beta"));
  obs_->drop_campaign("beta");
  EXPECT_EQ(obs_->handle("/figures/beta").status, 404);
  EXPECT_EQ(obs_->handle("/figures/alpha").status, 200);
}

// --- hardened HTTP parsing --------------------------------------------------

class ObservatoryHttpHardeningTest : public ::testing::Test {
 protected:
  void start(observatory::HttpServerConfig cfg = {}) {
    std::string error;
    ASSERT_TRUE(server_.start(
        0,
        [this](const std::string& path) {
          observatory::HttpResponse r;
          r.body = path == "/big" ? big_body_ : "ok:" + path;
          return r;
        },
        &error, cfg))
        << error;
  }

  observatory::HttpServer server_;
  std::string big_body_ = std::string(4 << 20, 'x');
};

TEST_F(ObservatoryHttpHardeningTest, OversizedRequestHeadGets431) {
  observatory::HttpServerConfig cfg;
  cfg.max_request_bytes = 512;
  start(cfg);
  RawIngestClient c(server_.port());
  c.send_bytes("GET /" + std::string(2048, 'a'));
  EXPECT_NE(c.drain().find("431"), std::string::npos);
}

TEST_F(ObservatoryHttpHardeningTest, EmbeddedNulGets400) {
  start();
  RawIngestClient c(server_.port());
  c.send_bytes(std::string("GET /he\0alth HTTP/1.0\r\n\r\n", 25));
  EXPECT_NE(c.drain().find("400"), std::string::npos);
}

TEST_F(ObservatoryHttpHardeningTest, RequestBodyGets413) {
  start();
  RawIngestClient c(server_.port());
  c.send_bytes("GET /health HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd");
  EXPECT_NE(c.drain().find("413"), std::string::npos);
}

TEST_F(ObservatoryHttpHardeningTest, SlowLorisGets408OnRecvTimeout) {
  observatory::HttpServerConfig cfg;
  cfg.recv_timeout_ms = 200;  // pins SO_RCVTIMEO: the stall must 408 fast
  start(cfg);
  RawIngestClient c(server_.port());
  c.send_bytes("GET /hea");  // never finishes the request line
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NE(c.drain().find("408"), std::string::npos);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(3));
}

TEST_F(ObservatoryHttpHardeningTest, BareRequestLineIsStillServed) {
  start();
  RawIngestClient c(server_.port());
  c.send_bytes("GET /metrics\n");
  EXPECT_NE(c.drain().find("ok:/metrics"), std::string::npos);
}

TEST_F(ObservatoryHttpHardeningTest, LargeBodySurvivesPartialSends) {
  start();
  RawIngestClient c(server_.port());
  c.send_bytes("GET /big HTTP/1.0\r\n\r\n");
  const std::string got = c.drain();
  const std::size_t body_at = got.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(got.size() - body_at - 4, big_body_.size())
      << "send() short writes must not truncate the body";
}

TEST(ObservatoryHttpMetrics, GaugeTrackMaxKeepsHighWaterMark) {
  if (!obs::kMetricsEnabled)
    GTEST_SKIP() << "metrics compiled out (-DCGN_OBS=OFF)";
  obs::Gauge g;
  g.track_max(7);
  g.track_max(3);  // lower: must not regress
  EXPECT_EQ(g.value(), 7);
  g.track_max(11);
  EXPECT_EQ(g.value(), 11);
}

}  // namespace
}  // namespace cgn
