// RFC 5382-style TCP state tracking in the NAT engine: transitory
// connections (handshaking, closing) time out fast; established ones live
// for hours.
#include "nat/nat_device.hpp"

#include <gtest/gtest.h>

namespace cgn::nat {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using sim::Packet;
using sim::TcpFlag;

NatConfig config() {
  NatConfig cfg;
  cfg.name = "tcp-nat";
  cfg.tcp_timeout_s = 7200.0;
  cfg.tcp_transitory_timeout_s = 240.0;
  return cfg;
}

std::vector<Ipv4Address> pool() { return {Ipv4Address{16, 1, 0, 10}}; }

Endpoint remote() { return {Ipv4Address{16, 9, 9, 9}, 443}; }
Endpoint internal() { return {Ipv4Address{192, 168, 1, 2}, 40000}; }

TEST(NatTcpState, HalfOpenConnectionTimesOutFast) {
  NatDevice nat(config(), pool(), sim::Rng(1));
  Packet syn = Packet::tcp(internal(), remote(), TcpFlag::syn);
  ASSERT_EQ(nat.process_outbound(syn, 0.0), sim::Middlebox::Verdict::forward);
  // No reply ever comes; past the transitory timeout the mapping is gone.
  Packet late = Packet::tcp(remote(), syn.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(late, 241.0),
            sim::Middlebox::Verdict::drop_no_mapping);
}

TEST(NatTcpState, EstablishedConnectionGetsLongTimeout) {
  NatDevice nat(config(), pool(), sim::Rng(1));
  Packet syn = Packet::tcp(internal(), remote(), TcpFlag::syn);
  (void)nat.process_outbound(syn, 0.0);
  // The peer's data packet establishes the connection...
  Packet synack = Packet::tcp(remote(), syn.src, TcpFlag::none);
  ASSERT_EQ(nat.process_inbound(synack, 1.0),
            sim::Middlebox::Verdict::forward);
  // ...and the mapping now survives a long idle period.
  Packet late = Packet::tcp(remote(), syn.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(late, 1.0 + 7000.0),
            sim::Middlebox::Verdict::forward);
  Packet too_late = Packet::tcp(remote(), syn.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(too_late, 1.0 + 7000.0 + 7201.0),
            sim::Middlebox::Verdict::drop_no_mapping);
}

TEST(NatTcpState, FinDropsBackToTransitoryTimeout) {
  NatDevice nat(config(), pool(), sim::Rng(1));
  Packet syn = Packet::tcp(internal(), remote(), TcpFlag::syn);
  (void)nat.process_outbound(syn, 0.0);
  Packet data = Packet::tcp(remote(), syn.src, TcpFlag::none);
  (void)nat.process_inbound(data, 1.0);  // established
  Packet fin = Packet::tcp(internal(), remote(), TcpFlag::fin);
  (void)nat.process_outbound(fin, 2.0);  // closing
  Packet late = Packet::tcp(remote(), syn.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(late, 2.0 + 241.0),
            sim::Middlebox::Verdict::drop_no_mapping)
      << "a closing connection must not hold state for two hours";
}

TEST(NatTcpState, RstAlsoShortensTimeout) {
  NatDevice nat(config(), pool(), sim::Rng(1));
  Packet syn = Packet::tcp(internal(), remote(), TcpFlag::syn);
  (void)nat.process_outbound(syn, 0.0);
  Packet data = Packet::tcp(remote(), syn.src, TcpFlag::none);
  (void)nat.process_inbound(data, 1.0);
  Packet rst = Packet::tcp(remote(), syn.src, TcpFlag::rst);
  (void)nat.process_inbound(rst, 2.0);
  Packet late = Packet::tcp(remote(), syn.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(late, 2.0 + 241.0),
            sim::Middlebox::Verdict::drop_no_mapping);
}

TEST(NatTcpState, UdpUnaffectedByTcpTimers) {
  auto cfg = config();
  cfg.udp_timeout_s = 60.0;
  NatDevice nat(cfg, pool(), sim::Rng(1));
  Packet udp = Packet::udp(internal(), remote());
  (void)nat.process_outbound(udp, 0.0);
  Packet reply = Packet::udp(remote(), udp.src);
  EXPECT_EQ(nat.process_inbound(reply, 61.0),
            sim::Middlebox::Verdict::drop_no_mapping)
      << "UDP must use the UDP timer regardless of TCP settings";
}

TEST(NatTcpState, ReestablishmentAfterCloseWorks) {
  NatDevice nat(config(), pool(), sim::Rng(1));
  Packet syn = Packet::tcp(internal(), remote(), TcpFlag::syn);
  (void)nat.process_outbound(syn, 0.0);
  Packet data = Packet::tcp(remote(), syn.src, TcpFlag::none);
  (void)nat.process_inbound(data, 1.0);
  Packet fin = Packet::tcp(internal(), remote(), TcpFlag::fin);
  (void)nat.process_outbound(fin, 2.0);
  // A new handshake on the same 5-tuple within the transitory window
  // refreshes and re-establishes.
  Packet syn2 = Packet::tcp(internal(), remote(), TcpFlag::syn);
  (void)nat.process_outbound(syn2, 100.0);
  Packet data2 = Packet::tcp(remote(), syn2.src, TcpFlag::none);
  ASSERT_EQ(nat.process_inbound(data2, 101.0),
            sim::Middlebox::Verdict::forward);
  Packet late = Packet::tcp(remote(), syn2.src, TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(late, 101.0 + 3600.0),
            sim::Middlebox::Verdict::forward);
}

}  // namespace
}  // namespace cgn::nat
