// cgn::par — deterministic shard execution, RNG substreams, thread-scoped
// clocks and metric-slot isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "sim/clock.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn {
namespace {

TEST(RunShards, ExecutesEveryShardExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(23);
    par::run_shards(
        hits.size(), [&](std::size_t s) { hits[s].fetch_add(1); }, threads);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RunShards, ZeroShardsIsANoop) {
  par::run_shards(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(RunShards, SingleWorkerRunsInlineOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  par::run_shards(
      5, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      1);
}

TEST(RunShards, DynamicAssignmentUsesValidDistinctSlots) {
  // Shards are claimed from a self-scheduling queue, so which worker runs
  // a shard is a scheduling accident — but every shard must observe a
  // valid metric slot in [0, workers] (caller lane 0 keeps slot 0, pool
  // worker w holds slot w+1), and a shard runs exactly once.
  constexpr std::size_t kWorkers = 4;
  std::vector<std::atomic<int>> hits(17);
  std::vector<std::size_t> slot_of(hits.size(), ~std::size_t{0});
  par::run_shards(
      hits.size(),
      [&](std::size_t s) {
        hits[s].fetch_add(1);
        slot_of[s] = obs::thread_slot();
      },
      kWorkers);
  for (std::size_t s = 0; s < hits.size(); ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
    EXPECT_LE(slot_of[s], kWorkers) << "shard " << s;
  }
}

TEST(RunShards, OversubscribedFewShardsManyWorkers) {
  // shard_count < workers: the pool caps its lanes at the shard count and
  // the surplus workers claim nothing.
  std::vector<std::atomic<int>> hits(3);
  par::run_shards(
      hits.size(), [&](std::size_t s) { hits[s].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunShards, OversubscribedManyShardsFewWorkers) {
  // shard_count >> workers: the queue drains completely and exactly once
  // even when every worker loops through dozens of claims.
  std::vector<std::atomic<int>> hits(257);
  par::run_shards(
      hits.size(), [&](std::size_t s) { hits[s].fetch_add(1); }, 2);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunShards, PersistentPoolIsReusedAcrossCampaigns) {
  // Back-to-back fan-outs at the same worker count must not spawn new
  // threads: the pool parks between jobs and wakes for the next one.
  par::run_shards(8, [](std::size_t) {}, 4);
  const std::size_t after_first = par::pool_thread_count();
  EXPECT_GE(after_first, 3u);  // workers - 1 pool lanes (caller is lane 0)
  for (int i = 0; i < 5; ++i) par::run_shards(8, [](std::size_t) {}, 4);
  EXPECT_EQ(par::pool_thread_count(), after_first);
  // A wider campaign may grow the pool; a narrower one never shrinks it.
  par::run_shards(8, [](std::size_t) {}, 2);
  EXPECT_EQ(par::pool_thread_count(), after_first);
}

TEST(RunShards, NestedFanOutRunsInline) {
  // run_shards from inside a pool worker must not deadlock waiting for
  // the (busy) pool: the nested call runs inline on the worker.
  std::vector<std::atomic<int>> inner_hits(6);
  par::run_shards(
      4,
      [&](std::size_t) {
        par::run_shards(
            inner_hits.size(),
            [&](std::size_t i) { inner_hits[i].fetch_add(1); }, 4);
      },
      4);
  for (auto& h : inner_hits) EXPECT_EQ(h.load(), 4);
}

TEST(RunShards, SingleFailureRethrowsTheOriginalException) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      par::run_shards(
          8,
          [&](std::size_t s) {
            if (s == 3) throw std::invalid_argument("boom 3");
          },
          threads);
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument& e) {
      // Original type and message survive, so callers can still catch
      // the specific exception a lone shard threw.
      EXPECT_STREQ(e.what(), "boom 3");
    }
  }
}

TEST(RunShards, MultipleFailuresAggregateEveryShard) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      par::run_shards(
          8,
          [&](std::size_t s) {
            if (s == 3 || s == 6)
              throw std::runtime_error("boom " + std::to_string(s));
          },
          threads);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(),
                   "2 of 8 shards failed: shard 3: boom 3; shard 6: boom 6");
    }
  }
}

TEST(RunShards, ManyFailuresCapTheDetailButKeepTheCount) {
  try {
    par::run_shards(
        8, [&](std::size_t s) { throw std::runtime_error("x" + std::to_string(s)); },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "8 of 8 shards failed: shard 0: x0; shard 1: x1; "
                 "shard 2: x2; shard 3: x3; (+4 more)");
  }
}

TEST(RunShards, RemainingShardsStillRunAfterAThrow) {
  std::vector<std::atomic<int>> hits(8);
  EXPECT_THROW(par::run_shards(
                   hits.size(),
                   [&](std::size_t s) {
                     hits[s].fetch_add(1);
                     if (s == 0) throw std::runtime_error("boom");
                   },
                   2),
               std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ConfiguredThreads, ReadsAndClampsEnvironment) {
  ASSERT_EQ(unsetenv("CGN_THREADS"), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(setenv("CGN_THREADS", "4", 1), 0);
  EXPECT_EQ(par::configured_threads(), 4u);
  ASSERT_EQ(setenv("CGN_THREADS", "0", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(setenv("CGN_THREADS", "9999", 1), 0);
  EXPECT_EQ(par::configured_threads(), obs::kMaxThreadSlots - 1);
  ASSERT_EQ(setenv("CGN_THREADS", "garbage", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  // Trailing garbage must reject the whole value, not strtoul's prefix:
  // "4x" used to silently run 4 workers.
  ASSERT_EQ(setenv("CGN_THREADS", "4x", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(setenv("CGN_THREADS", "-2", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(setenv("CGN_THREADS", "+4", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(setenv("CGN_THREADS", " 4", 1), 0);
  EXPECT_EQ(par::configured_threads(), 1u);
  ASSERT_EQ(unsetenv("CGN_THREADS"), 0);
}

TEST(RngFork, SubstreamDependsOnlyOnSeedAndShard) {
  // Deriving shard 5's stream must give the same values no matter how many
  // other shards were derived first (static fork consumes no state).
  auto first_draws = [](sim::Rng rng) {
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 8; ++i) out.push_back(rng.uniform(0, ~0ull - 1));
    return out;
  };
  const auto direct = first_draws(sim::Rng::fork(99, 5));
  for (std::uint64_t other = 0; other < 10; ++other)
    (void)sim::Rng::fork(99, other);
  EXPECT_EQ(first_draws(sim::Rng::fork(99, 5)), direct);
  EXPECT_NE(first_draws(sim::Rng::fork(99, 6)), direct);
  EXPECT_NE(first_draws(sim::Rng::fork(100, 5)), direct);
}

TEST(ThreadClockScope, OverridesAndNests) {
  sim::Clock global;
  sim::Network net(global);
  global.advance(100);
  EXPECT_EQ(net.clock().now(), 100.0);
  {
    sim::Clock shard;
    shard.set(500);
    sim::ThreadClockScope outer(shard);
    EXPECT_EQ(net.clock().now(), 500.0);
    {
      sim::Clock inner_clock;
      inner_clock.set(900);
      sim::ThreadClockScope inner(inner_clock);
      EXPECT_EQ(net.clock().now(), 900.0);
    }
    EXPECT_EQ(net.clock().now(), 500.0);
  }
  EXPECT_EQ(net.clock().now(), 100.0);
  EXPECT_EQ(sim::ThreadClockScope::current(), nullptr);
}

TEST(ThreadClockScope, IsThreadLocal) {
  sim::Clock shard;
  shard.set(42);
  sim::ThreadClockScope scope(shard);
  std::thread([] {
    EXPECT_EQ(sim::ThreadClockScope::current(), nullptr);
  }).join();
}

// Value-recording assertions only hold when the hot path is compiled in.
#define CGN_SKIP_IF_METRICS_DISABLED()                                    \
  if (!obs::kMetricsEnabled)                                              \
  GTEST_SKIP() << "metrics compiled out (-DCGN_OBS=OFF)"

TEST(MetricSlots, WorkerIncrementsMergeExactly) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Counter& c = obs::counter("par_test.merge_counter");
  const std::uint64_t before = c.value();
  par::run_shards(
      12, [&](std::size_t s) { c.inc(s + 1); }, 4);
  // 1 + 2 + ... + 12, regardless of which slot each increment landed in.
  EXPECT_EQ(c.value() - before, 78u);
}

TEST(MetricSlots, NetworkStatsMergeAcrossWorkers) {
  sim::Clock clock;
  sim::Network net(clock);
  const sim::NodeId host = net.add_node(net.root(), "h");
  const netcore::Ipv4Address addr(16, 0, 0, 1);
  net.add_local_address(host, addr);
  net.register_address(addr, host, net.root());
  net.set_receiver(host, [](sim::Network&, const sim::Packet&) {});
  net.reset_stats();
  par::run_shards(
      8,
      [&](std::size_t) {
        (void)net.send(sim::Packet::udp({addr, 1}, {addr, 2}), host);
      },
      4);
  // Each send self-delivers at the host's own address.
  EXPECT_EQ(net.stats().sent, 8u);
}

TEST(MetricsRegistry, MergeFromFoldsValuesAndCreatesMissing) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("shared").inc(2);
  b.counter("shared").inc(5);
  b.counter("only_b").inc(7);
  b.gauge("level").add(-3);
  b.histogram("h", {1, 2, 4}).observe_small(3);
  a.merge_from(b);
  EXPECT_EQ(a.counter("shared").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);
  EXPECT_EQ(a.gauge("level").value(), -3);
  obs::Histogram& h = a.histogram("h", {1, 2, 4});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 3.0);
  // b is untouched.
  EXPECT_EQ(b.counter("shared").value(), 5u);
}

}  // namespace
}  // namespace cgn
