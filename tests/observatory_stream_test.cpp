// Differential tests for the observatory streaming path: after ingesting a
// full campaign stream, the observatory's figure JSON must be byte-identical
// to the batch pipeline's — serially, at 4 workers, and across a
// kill -> checkpoint-resume drill (the acceptance bar of the streaming
// engine).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "analysis/bt_detector.hpp"
#include "analysis/figures.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "observatory/observatory.hpp"
#include "observatory/stream_driver.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn {
namespace {

/// Small world with enough leakage and Netalyzr coverage to make the
/// figures non-trivial while keeping each campaign in test time.
scenario::InternetConfig tiny_config() {
  scenario::InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  return cfg;
}

std::string render(const analysis::Figures& figures) {
  std::ostringstream os;
  analysis::render_figures_json(os, figures);
  return os.str();
}

struct BatchFigures {
  std::string fig04;
  std::string fig05;
};

/// The batch pipeline exactly as bench_fig04 / bench_fig05 run it: one
/// world per bench, campaign, batch detector, shared figure extraction.
const BatchFigures& batch_figures() {
  static const BatchFigures batch = [] {
    BatchFigures out;
    {
      auto world = scenario::build_internet(tiny_config());
      scenario::run_bittorrent_phase(*world);
      auto crawler = scenario::run_crawl_phase(*world);
      out.fig04 = render(analysis::fig04_figures(
          analysis::BtDetector().analyze(crawler->dataset(), world->routes)));
    }
    {
      auto world = scenario::build_internet(tiny_config());
      scenario::NetalyzrCampaignConfig cc;
      cc.enum_fraction = 0.0;
      cc.stun_fraction = 0.0;
      const auto sessions = scenario::run_netalyzr_campaign(*world, cc);
      out.fig05 = render(analysis::fig05_figures(
          analysis::NetalyzrDetector().analyze(sessions, world->routes)));
    }
    return out;
  }();
  return batch;
}

void expect_stream_matches_batch(const observatory::Observatory& obs) {
  const auto sets = obs.figure_sets();
  EXPECT_EQ(render(sets.at("fig04_clusters")), batch_figures().fig04);
  EXPECT_EQ(render(sets.at("fig05_netalyzr_candidates")),
            batch_figures().fig05);
}

TEST(ObservatoryStream, SerialStreamMatchesBatchFigures) {
  observatory::StreamDriverConfig cfg;
  cfg.world = tiny_config();
  observatory::StreamDriver driver(cfg);
  observatory::Observatory obs(driver.routes(), driver.registry());
  driver.run(obs);

  EXPECT_GT(driver.events_emitted(), 0u);
  EXPECT_EQ(obs.events_ingested(), driver.events_emitted());
  EXPECT_EQ(obs.stream_total(), obs.events_ingested()) << "lag drains to 0";
  EXPECT_TRUE(obs.stream_done());
  expect_stream_matches_batch(obs);

  // Both campaign reports arrived and the stream carried supervision state.
  const std::string health = obs.handle("/health").body;
  EXPECT_NE(health.find("\"crawl_ping\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"netalyzr\""), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"complete\""), std::string::npos);
}

TEST(ObservatoryStream, FourWorkerStreamMatchesBatchFigures) {
  observatory::StreamDriverConfig cfg;
  cfg.world = tiny_config();
  cfg.crawl.threads = 4;
  cfg.netalyzr.threads = 4;
  observatory::StreamDriver driver(cfg);
  observatory::Observatory obs(driver.routes(), driver.registry());
  driver.run(obs);
  expect_stream_matches_batch(obs);
}

TEST(ObservatoryStream, KillAndCheckpointResumeMatchesBatchFigures) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "observatory_ckpt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string ckpt = (dir / "netalyzr.ckpt").string();

  // Leg 1: the campaign dies mid-stream at a checkpoint boundary.
  {
    observatory::StreamDriverConfig cfg;
    cfg.world = tiny_config();
    cfg.netalyzr.supervise.checkpoint_path = ckpt;
    cfg.netalyzr.supervise.abort_after_shards = 2;
    observatory::StreamDriver driver(cfg);
    observatory::Observatory obs(driver.routes(), driver.registry());
    EXPECT_THROW(driver.run(obs), super::CampaignAborted);
    // The crawl half of the stream was already ingested when the kill hit.
    EXPECT_GT(obs.events_ingested(), 0u);
    EXPECT_FALSE(obs.stream_done());
  }
  EXPECT_TRUE(std::filesystem::exists(ckpt));

  // Leg 2: rerun against the same checkpoint, resharded to 4 workers. The
  // resumed stream must still converge on the batch bytes.
  {
    observatory::StreamDriverConfig cfg;
    cfg.world = tiny_config();
    cfg.crawl.threads = 4;
    cfg.netalyzr.threads = 4;
    cfg.netalyzr.supervise.checkpoint_path = ckpt;
    observatory::StreamDriver driver(cfg);
    observatory::Observatory obs(driver.routes(), driver.registry());
    driver.run(obs);
    EXPECT_TRUE(obs.stream_done());
    EXPECT_GE(driver.nz_report().count(super::ShardStatus::resumed), 1u)
        << "at least the two pre-kill shards restore from the checkpoint";
    expect_stream_matches_batch(obs);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cgn
