// Thread-count invariance of the sharded campaign drivers: an N-worker run
// must produce bit-identical results and metric totals to the serial run of
// the same world (see cgn::par).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "netalyzr/session.hpp"
#include "obs/metrics.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"

namespace cgn::scenario {
namespace {

InternetConfig tiny_config() {
  InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  return cfg;
}

struct NetalyzrRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t sessions = 0;
  std::uint64_t mappings_created = 0;
  double final_time = 0.0;
};

NetalyzrRun run_netalyzr(std::size_t threads, bool stormy = false) {
  InternetConfig icfg = tiny_config();
  if (stormy) {
    // Faults stress the scheduler: retries and restarts skew per-shard
    // runtimes, so the self-scheduling queue actually redistributes
    // ("steals") shards instead of degenerating to round-robin.
    icfg.fault_plan.link.loss_rate = 0.02;
    icfg.fault_plan.link.duplication_rate = 0.01;
    icfg.fault_plan.peers.unresponsive_fraction = 0.10;
    icfg.fault_plan.nat.restart_period_s = 900.0;
  }
  auto internet = build_internet(icfg);
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.5;
  cfg.stun_fraction = 0.5;
  cfg.threads = threads;
  obs::Counter& created = obs::counter("nat.mappings_created");
  const std::uint64_t before = created.value();
  const auto sessions = run_netalyzr_campaign(*internet, cfg);
  NetalyzrRun run;
  run.fingerprint = netalyzr::fingerprint(sessions);
  run.sessions = sessions.size();
  run.mappings_created = created.value() - before;
  run.final_time = internet->clock.now();
  return run;
}

TEST(CampaignParallel, NetalyzrResultsAreThreadCountInvariant) {
  const NetalyzrRun serial = run_netalyzr(1);
  ASSERT_GT(serial.sessions, 50u);

  for (std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const NetalyzrRun parallel = run_netalyzr(threads);
    EXPECT_EQ(parallel.sessions, serial.sessions) << threads << " workers";
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " workers produced different session results";
    EXPECT_EQ(parallel.mappings_created, serial.mappings_created)
        << threads << " workers";
    EXPECT_EQ(parallel.final_time, serial.final_time) << threads << " workers";
  }
}

TEST(CampaignParallel, StolenShardsStayDeterministicUnderFaults) {
  // A stormy fault plan makes shard runtimes uneven, so dynamic claiming
  // actually moves shards between workers — results must still be
  // bit-identical at 1/2/4/8 workers because every shard's randomness,
  // clock and fault substreams key off the shard id, never the worker.
  const NetalyzrRun serial = run_netalyzr(1, /*stormy=*/true);
  ASSERT_GT(serial.sessions, 50u);

  for (std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const NetalyzrRun parallel = run_netalyzr(threads, /*stormy=*/true);
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " workers diverged under the stormy fault plan";
    EXPECT_EQ(parallel.sessions, serial.sessions) << threads << " workers";
    EXPECT_EQ(parallel.mappings_created, serial.mappings_created)
        << threads << " workers";
    EXPECT_EQ(parallel.final_time, serial.final_time) << threads << " workers";
  }
}

struct CrawlRun {
  std::size_t learned = 0;
  std::size_t queried = 0;
  std::size_t responding = 0;
  std::size_t responding_ips = 0;
  std::size_t leaks = 0;
  std::uint64_t pings_sent = 0;
};

CrawlRun run_crawl(std::size_t threads) {
  auto internet = build_internet(tiny_config());
  run_bittorrent_phase(*internet);
  CrawlPhaseConfig cfg;
  cfg.threads = threads;
  auto crawler = run_crawl_phase(*internet, cfg);
  CrawlRun run;
  run.learned = crawler->dataset().learned_peers();
  run.queried = crawler->dataset().queried_peers();
  run.responding = crawler->dataset().responding_peers();
  run.responding_ips = crawler->dataset().responding_unique_ips();
  run.leaks = crawler->dataset().leaks().size();
  run.pings_sent = crawler->stats().pings_sent;
  return run;
}

TEST(CampaignParallel, CrawlPingSweepIsThreadCountInvariant) {
  const CrawlRun serial = run_crawl(1);
  ASSERT_GT(serial.learned, 0u);
  ASSERT_GT(serial.responding, 0u);

  const CrawlRun parallel = run_crawl(4);
  EXPECT_EQ(parallel.learned, serial.learned);
  EXPECT_EQ(parallel.queried, serial.queried);
  EXPECT_EQ(parallel.responding, serial.responding);
  EXPECT_EQ(parallel.responding_ips, serial.responding_ips);
  EXPECT_EQ(parallel.leaks, serial.leaks);
  EXPECT_EQ(parallel.pings_sent, serial.pings_sent);
}

}  // namespace
}  // namespace cgn::scenario
