// cgn::fault unit coverage: plan hashing, retry_loop semantics, substream
// determinism, and the sim::Network injection hooks (loss, duplication,
// unresponsive endpoints) including their hop-trace and stats accounting.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/retry.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"

namespace cgn::fault {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;

TEST(FaultPlan, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlan, AnyImpairmentActivates) {
  FaultPlan plan;
  plan.link.loss_rate = 0.01;
  EXPECT_TRUE(plan.active());
  plan = {};
  plan.nat.restart_period_s = 600.0;
  EXPECT_TRUE(plan.active());
  plan = {};
  plan.peers.by_as[64500] = 0.5;
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, HashIsStableAndSensitive) {
  FaultPlan a;
  FaultPlan b;
  EXPECT_EQ(a.hash(), b.hash());
  b.link.loss_rate = 0.05;
  EXPECT_NE(a.hash(), b.hash());
  // Insertion order of the per-AS overrides must not matter.
  FaultPlan c, d;
  c.peers.by_as[1] = 0.1;
  c.peers.by_as[2] = 0.2;
  d.peers.by_as[2] = 0.2;
  d.peers.by_as[1] = 0.1;
  EXPECT_EQ(c.hash(), d.hash());
  EXPECT_EQ(c.describe(), d.describe());
}

TEST(FaultInjector, SubstreamDependsOnlyOnSaltAndShard) {
  FaultPlan plan;
  plan.link.loss_rate = 0.5;
  FaultInjector x(plan);
  FaultInjector y(plan);
  sim::Rng a = x.substream(kSaltPingSweep, 7);
  sim::Rng b = y.substream(kSaltPingSweep, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.engine()(), b.engine()());
  sim::Rng c = x.substream(kSaltPingSweep, 8);
  sim::Rng d = x.substream(kSaltNetalyzr, 7);
  bool differs_shard = false, differs_salt = false;
  sim::Rng e = x.substream(kSaltPingSweep, 7);
  for (int i = 0; i < 64; ++i) {
    const auto ref = e.engine()();
    differs_shard |= c.engine()() != ref;
    differs_salt |= d.engine()() != ref;
  }
  EXPECT_TRUE(differs_shard);
  EXPECT_TRUE(differs_salt);
}

TEST(FaultInjector, StreamScopeMakesDecisionsShardKeyed) {
  // Two injectors from the same plan must make identical drop decisions
  // under the same (salt, shard) scope — the thread-count-invariance
  // property the campaign shards rely on.
  FaultPlan plan;
  plan.link.loss_rate = 0.3;
  FaultInjector x(plan);
  FaultInjector y(plan);
  std::vector<bool> seq_x, seq_y;
  {
    StreamScope scope(&x, kSaltPingSweep, 3);
    for (int i = 0; i < 200; ++i) seq_x.push_back(x.drop_at_hop());
  }
  {
    StreamScope scope(&y, kSaltPingSweep, 3);
    for (int i = 0; i < 200; ++i) seq_y.push_back(y.drop_at_hop());
  }
  EXPECT_EQ(seq_x, seq_y);
}

TEST(FaultInjector, InactivePlanNeverFires) {
  FaultInjector inj(FaultPlan{});
  EXPECT_FALSE(inj.active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.drop_at_hop());
    EXPECT_FALSE(inj.duplicate_delivery());
  }
}

TEST(FaultInjector, UnresponsiveIsPerEndpoint) {
  FaultInjector inj(FaultPlan{});
  inj.mark_unresponsive(42, 6881);
  EXPECT_TRUE(inj.unresponsive(42, 6881));
  EXPECT_FALSE(inj.unresponsive(42, 6882));
  EXPECT_FALSE(inj.unresponsive(43, 6881));
  EXPECT_EQ(inj.unresponsive_count(), 1u);
}

// --- RetryPolicy / retry_loop ---------------------------------------------

TEST(RetryPolicy, DefaultIsSingleAttempt) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.enabled());
  int attempts = 0;
  sim::Clock clock;
  EXPECT_FALSE(retry_loop(policy, &clock, nullptr, [&] {
    ++attempts;
    return false;
  }));
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(clock.now(), 0.0);  // no backoff on the last (only) attempt
}

TEST(RetryPolicy, BackoffScheduleIsExponential) {
  RetryPolicy policy;
  policy.attempts = 4;
  policy.base_backoff_s = 2.0;
  policy.backoff_factor = 3.0;
  EXPECT_DOUBLE_EQ(policy.backoff_before(2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_before(3, nullptr), 6.0);
  EXPECT_DOUBLE_EQ(policy.backoff_before(4, nullptr), 18.0);
}

TEST(RetryPolicy, RetryLoopRunsBackoffOnScopedTimeline) {
  RetryPolicy policy;
  policy.attempts = 3;
  policy.base_backoff_s = 1.0;
  policy.backoff_factor = 2.0;
  sim::Clock clock;
  clock.set(10.0);
  int attempts = 0;
  std::vector<double> seen;
  EXPECT_TRUE(retry_loop(policy, &clock, nullptr, [&] {
    seen.push_back(clock.now());
    return ++attempts == 3;
  }));
  EXPECT_EQ(attempts, 3);
  // During the loop each attempt sees the backoff schedule (1 s before
  // attempt 2, 2 s before attempt 3)...
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 10.0);
  EXPECT_DOUBLE_EQ(seen[1], 11.0);
  EXPECT_DOUBLE_EQ(seen[2], 13.0);
  // ...and afterwards the clock is back at the probe's start: concurrent
  // probes overlap their waits instead of serializing them.
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
}

TEST(RetryPolicy, RetryLoopExhaustsAfterBudget) {
  RetryPolicy policy;
  policy.attempts = 3;
  int attempts = 0;
  EXPECT_FALSE(retry_loop(policy, nullptr, nullptr, [&] {
    ++attempts;
    return false;
  }));
  EXPECT_EQ(attempts, 3);
}

TEST(RetryPolicy, JitterStretchesBackoffDeterministically) {
  RetryPolicy policy;
  policy.attempts = 2;
  policy.base_backoff_s = 10.0;
  policy.jitter_fraction = 0.5;
  sim::Rng a(99), b(99);
  const double wait_a = policy.backoff_before(2, &a);
  const double wait_b = policy.backoff_before(2, &b);
  EXPECT_DOUBLE_EQ(wait_a, wait_b);  // same rng state, same jitter
  EXPECT_GE(wait_a, 10.0);
  EXPECT_LT(wait_a, 15.0);
}

// --- sim::Network injection hooks (satellite: trace ring + drop counters) --

struct FaultyPair {
  sim::Clock clock;
  sim::Network net{clock};
  sim::NodeId a, b;
  Ipv4Address addr_a{16, 0, 0, 1};
  Ipv4Address addr_b{16, 0, 0, 2};
  int received_b = 0;

  FaultyPair() {
    sim::NodeId ra = net.add_router_chain(net.root(), 2, "a");
    sim::NodeId rb = net.add_router_chain(net.root(), 2, "b");
    a = net.add_node(ra, "host-a");
    b = net.add_node(rb, "host-b");
    net.add_local_address(a, addr_a);
    net.add_local_address(b, addr_b);
    net.register_address(addr_a, a, net.root());
    net.register_address(addr_b, b, net.root());
    net.set_receiver(a, [](sim::Network&, const sim::Packet&) {});
    net.set_receiver(b, [this](sim::Network&, const sim::Packet&) {
      ++received_b;
    });
  }

  sim::DeliveryResult ping() {
    return net.send(sim::Packet::udp({addr_a, 1000}, {addr_b, 2000}), a);
  }
};

TEST(NetworkFaults, CertainLossDropsWithFaultReason) {
  FaultyPair w;
  FaultPlan plan;
  plan.link.loss_rate = 1.0;
  FaultInjector inj(plan);
  w.net.set_fault_injector(&inj);

  obs::TraceRing ring(64);
  w.net.set_hop_trace(&ring);
  auto r = w.ping();
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.reason, sim::DropReason::fault_loss);
  EXPECT_EQ(r.hops, 1);  // lost entering the very first hop
  EXPECT_EQ(w.received_b, 0);
  EXPECT_EQ(w.net.stats().dropped_fault_loss, 1u);
  EXPECT_EQ(w.net.stats().dropped_other, 0u);

  // The trace must record the injected fault as the drop reason, not a
  // generic drop: last event is `dropped` carrying DropReason::fault_loss.
  const auto events = ring.events();
  ASSERT_FALSE(events.empty());
  const auto& last = events.back();
  EXPECT_EQ(last.kind,
            static_cast<std::uint8_t>(sim::Network::TraceKind::dropped));
  EXPECT_EQ(last.code, static_cast<std::uint8_t>(sim::DropReason::fault_loss));
}

TEST(NetworkFaults, LossRateZeroDeliversEverything) {
  FaultyPair w;
  FaultPlan plan;
  plan.link.duplication_rate = 0.0;  // attached but fully benign
  FaultInjector inj(plan);
  w.net.set_fault_injector(&inj);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(w.ping().delivered);
  EXPECT_EQ(w.received_b, 50);
  EXPECT_EQ(w.net.stats().dropped_fault_loss, 0u);
  EXPECT_EQ(w.net.stats().duplicated, 0u);
}

TEST(NetworkFaults, CertainDuplicationInvokesReceiverTwice) {
  FaultyPair w;
  FaultPlan plan;
  plan.link.duplication_rate = 1.0;
  FaultInjector inj(plan);
  w.net.set_fault_injector(&inj);
  auto r = w.ping();
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(w.received_b, 2);
  EXPECT_EQ(w.net.stats().delivered, 1u);
  EXPECT_EQ(w.net.stats().duplicated, 1u);
}

TEST(NetworkFaults, UnresponsiveEndpointDropsAtDelivery) {
  FaultyPair w;
  FaultPlan plan;
  FaultInjector inj(plan);
  inj.mark_unresponsive(w.b, 2000);
  w.net.set_fault_injector(&inj);

  obs::TraceRing ring(64);
  w.net.set_hop_trace(&ring);
  auto r = w.ping();
  EXPECT_FALSE(r.delivered);
  // Must surface as the injected fault, not as dropped_other.
  EXPECT_EQ(r.reason, sim::DropReason::fault_unresponsive);
  EXPECT_EQ(r.final_node, w.b);
  EXPECT_EQ(w.received_b, 0);
  EXPECT_EQ(w.net.stats().dropped_fault_unresponsive, 1u);
  EXPECT_EQ(w.net.stats().dropped_other, 0u);
  const auto events = ring.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().code,
            static_cast<std::uint8_t>(sim::DropReason::fault_unresponsive));

  // Another port on the same node is unaffected.
  auto ok = w.net.send(
      sim::Packet::udp({w.addr_a, 1000}, {w.addr_b, 2001}), w.a);
  EXPECT_TRUE(ok.delivered);
}

TEST(NetworkFaults, PartialLossMatchesStatsAccounting) {
  FaultyPair w;
  FaultPlan plan;
  plan.link.loss_rate = 0.2;
  FaultInjector inj(plan);
  w.net.set_fault_injector(&inj);
  const int n = 500;
  int delivered = 0;
  for (int i = 0; i < n; ++i) delivered += w.ping().delivered ? 1 : 0;
  const auto& st = w.net.stats();
  EXPECT_EQ(st.sent, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.delivered, static_cast<std::uint64_t>(delivered));
  EXPECT_EQ(st.dropped_fault_loss, static_cast<std::uint64_t>(n - delivered));
  // 6 hops per delivery, 20% per-hop loss: deliveries are well below n but
  // nonzero (p(survive) = 0.8^6 ~ 0.26).
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, n / 2);
}

TEST(NetworkFaults, DropReasonNamesCoverFaults) {
  EXPECT_EQ(sim::to_string(sim::DropReason::fault_loss), "fault_loss");
  EXPECT_EQ(sim::to_string(sim::DropReason::fault_unresponsive),
            "fault_unresponsive");
}

}  // namespace
}  // namespace cgn::fault
