// Integration tests of the full Netalyzr campaign and the §6 deep-dive
// analyses against the generator's ground truth.
#include <gtest/gtest.h>

#include "analysis/path_analysis.hpp"
#include "analysis/port_analysis.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"

namespace cgn::scenario {
namespace {

InternetConfig tiny_config(std::uint64_t seed = 11) {
  InternetConfig cfg;
  cfg.seed = seed;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;  // dense Netalyzr coverage for these tests
  cfg.nz_sessions_lo = 14;
  cfg.nz_sessions_hi = 30;
  return cfg;
}

/// Ground-truth CGN ASes (the §6 analyses take the *detected* set; for
/// behaviour validation we hand them the truth so every configured CGN is
/// inspected).
std::unordered_set<netcore::Asn> truth_cgns(const Internet& internet) {
  std::unordered_set<netcore::Asn> out;
  for (const IspInstance& isp : internet.isps)
    if (isp.cgn_profile) out.insert(isp.asn);
  return out;
}

class CampaignFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    internet_ = build_internet(tiny_config());
    NetalyzrCampaignConfig cfg;
    cfg.enum_fraction = 0.5;
    cfg.stun_fraction = 0.5;
    sessions_ = run_netalyzr_campaign(*internet_, cfg);
    ASSERT_GT(sessions_.size(), 200u);
  }

  std::unique_ptr<Internet> internet_;
  std::vector<netalyzr::SessionResult> sessions_;
};

TEST_F(CampaignFixture, SessionsCarryCoherentAddressLayers) {
  for (const auto& s : sessions_) {
    if (!s.ip_pub) continue;
    // The public address must belong to the session's AS.
    auto origin = internet_->routes.origin_of(*s.ip_pub);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(*origin, s.asn);
    // NAT444 signature: a reserved IPcpe implies IPcpe != IPpub.
    if (s.ip_cpe && netcore::is_reserved(*s.ip_cpe))
      EXPECT_NE(*s.ip_cpe, *s.ip_pub);
  }
}

TEST_F(CampaignFixture, PortAnalyzerRecoversConfiguredStrategies) {
  auto ports = analysis::PortAnalyzer().analyze(sessions_, internet_->routes,
                                                truth_cgns(*internet_));
  std::size_t checked = 0;
  for (const auto& [asn, profile] : ports.per_as) {
    auto idx = internet_->isp_index.find(asn);
    ASSERT_NE(idx, internet_->isp_index.end());
    const auto& truth = *internet_->isps[idx->second].cgn_profile;
    if (profile.sessions < 8) continue;
    // Partial deployments mix CGN-translated and plain-CPE sessions, so
    // only (near-)full deployments have a clean dominant strategy.
    if (truth.cgn_subscriber_fraction < 0.9) continue;
    ++checked;
    switch (truth.allocation) {
      case nat::PortAllocation::preservation:
        EXPECT_EQ(profile.dominant, analysis::PortStrategy::preservation)
            << "AS" << asn;
        break;
      case nat::PortAllocation::sequential:
        // Sequential CGNs interleave subscribers, so sessions can classify
        // sequential or (busy NAT) random; never preservation-dominant.
        EXPECT_NE(profile.dominant, analysis::PortStrategy::preservation)
            << "AS" << asn;
        break;
      case nat::PortAllocation::random:
      case nat::PortAllocation::chunk_random:
        EXPECT_EQ(profile.dominant, analysis::PortStrategy::random)
            << "AS" << asn;
        break;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(CampaignFixture, ChunkDetectionMatchesGroundTruth) {
  auto ports = analysis::PortAnalyzer().analyze(sessions_, internet_->routes,
                                                truth_cgns(*internet_));
  for (const auto& [asn, profile] : ports.per_as) {
    if (!profile.chunk_based) continue;
    const auto& truth = *internet_->isps[internet_->isp_index.at(asn)]
                             .cgn_profile;
    EXPECT_EQ(truth.allocation, nat::PortAllocation::chunk_random)
        << "AS" << asn << " flagged chunked but is not";
    EXPECT_LE(profile.chunk_size_estimate, truth.chunk_size)
        << "a 10-flow sample cannot span more than the chunk";
  }
}

TEST_F(CampaignFixture, ArbitraryPoolingDetectedOnlyWhereConfigured) {
  auto ports = analysis::PortAnalyzer().analyze(sessions_, internet_->routes,
                                                truth_cgns(*internet_));
  for (const auto& [asn, profile] : ports.per_as) {
    if (!profile.arbitrary_pooling) continue;
    const auto& truth = *internet_->isps[internet_->isp_index.at(asn)]
                             .cgn_profile;
    EXPECT_EQ(truth.pooling, nat::Pooling::arbitrary) << "AS" << asn;
  }
}

TEST_F(CampaignFixture, EnumerationLocatesCgnsAtConfiguredDistance) {
  std::size_t checked = 0;
  for (const auto& s : sessions_) {
    if (!s.enumeration || !s.enumeration->found_stateful()) continue;
    auto idx = internet_->isp_index.find(s.asn);
    if (idx == internet_->isp_index.end()) continue;
    const IspInstance& isp = internet_->isps[idx->second];
    if (!isp.cgn_profile) {
      EXPECT_LE(s.enumeration->most_distant_nat(), 1)
          << "non-CGN subscribers only have the CPE at hop 1";
      continue;
    }
    int truth_hop = isp.cgn_profile->hop_distance;
    int measured = s.enumeration->most_distant_nat();
    // The most distant NAT is either the CGN (behind-CGN subscriber) or the
    // CPE (public subscriber of a partially deployed ISP).
    EXPECT_TRUE(measured == truth_hop || measured <= 1)
        << "AS" << s.asn << ": measured " << measured << ", CGN at "
        << truth_hop;
    if (measured == truth_hop) ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(CampaignFixture, EnumerationTimeoutsTrackConfiguredTimeouts) {
  std::size_t checked = 0;
  for (const auto& s : sessions_) {
    if (!s.enumeration) continue;
    auto idx = internet_->isp_index.find(s.asn);
    if (idx == internet_->isp_index.end()) continue;
    const IspInstance& isp = internet_->isps[idx->second];
    if (!isp.cgn_profile) continue;
    for (const auto& hop : s.enumeration->hops) {
      if (!hop.stateful || !hop.timeout_s) continue;
      if (hop.hop != isp.cgn_profile->hop_distance) continue;
      double truth = isp.cgn_profile->udp_timeout_s;
      if (truth > 200.0) continue;  // beyond the probing budget
      EXPECT_GE(*hop.timeout_s, truth);
      EXPECT_LE(*hop.timeout_s, truth + 10.0) << "AS" << s.asn;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(CampaignFixture, StunNeverReportsMorePermissiveThanTheCgn) {
  for (const auto& s : sessions_) {
    if (!s.stun || !stun::is_nat_type(s.stun->type)) continue;
    auto idx = internet_->isp_index.find(s.asn);
    if (idx == internet_->isp_index.end()) continue;
    const IspInstance& isp = internet_->isps[idx->second];
    if (!isp.cgn_profile) continue;
    auto rank = stun::permissiveness(s.stun->type);
    ASSERT_TRUE(rank.has_value());
    // The composite path cannot be *more* permissive than the CGN itself
    // (only behind-CGN sessions are bounded; public lines see just the CPE,
    // so restrict the check to sessions with translated device addresses).
    bool behind = s.ip_cpe && netcore::is_reserved(*s.ip_cpe);
    if (!behind) continue;
    int cgn_rank = static_cast<int>(isp.cgn_profile->mapping);
    EXPECT_LE(*rank, cgn_rank) << "AS" << s.asn;
  }
}

TEST(CampaignDeterminism, SameSeedSameSessions) {
  auto a = build_internet(tiny_config(77));
  auto b = build_internet(tiny_config(77));
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.0;
  cfg.stun_fraction = 0.0;
  auto sa = run_netalyzr_campaign(*a, cfg);
  auto sb = run_netalyzr_campaign(*b, cfg);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].asn, sb[i].asn);
    EXPECT_EQ(sa[i].ip_dev, sb[i].ip_dev);
    EXPECT_EQ(sa[i].ip_pub.has_value(), sb[i].ip_pub.has_value());
    ASSERT_EQ(sa[i].tcp_flows.size(), sb[i].tcp_flows.size());
    for (std::size_t f = 0; f < sa[i].tcp_flows.size(); ++f)
      EXPECT_EQ(sa[i].tcp_flows[f].observed, sb[i].tcp_flows[f].observed);
  }
}

}  // namespace
}  // namespace cgn::scenario
