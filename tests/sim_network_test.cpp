#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "nat/nat_device.hpp"
#include "sim/demux.hpp"
#include "test_topology.hpp"

namespace cgn::sim {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;

struct TwoHosts {
  Clock clock;
  Network net{clock};
  NodeId a, b;
  Ipv4Address addr_a{16, 0, 0, 1};
  Ipv4Address addr_b{16, 0, 0, 2};
  std::vector<Packet> received_a, received_b;

  TwoHosts(int chain_a = 2, int chain_b = 2) {
    NodeId ra = net.add_router_chain(net.root(), chain_a, "a");
    NodeId rb = net.add_router_chain(net.root(), chain_b, "b");
    a = net.add_node(ra, "host-a");
    b = net.add_node(rb, "host-b");
    net.add_local_address(a, addr_a);
    net.add_local_address(b, addr_b);
    net.register_address(addr_a, a, net.root());
    net.register_address(addr_b, b, net.root());
    net.set_receiver(a, [this](Network&, const Packet& p) {
      received_a.push_back(p);
    });
    net.set_receiver(b, [this](Network&, const Packet& p) {
      received_b.push_back(p);
    });
  }
};

TEST(Network, DeliversBetweenPublicHosts) {
  TwoHosts w;
  auto result = w.net.send(
      Packet::udp({w.addr_a, 1000}, {w.addr_b, 2000}), w.a);
  EXPECT_TRUE(result.delivered);
  ASSERT_EQ(w.received_b.size(), 1u);
  EXPECT_EQ(w.received_b[0].src, (Endpoint{w.addr_a, 1000}));
  EXPECT_EQ(w.received_b[0].dst, (Endpoint{w.addr_b, 2000}));
}

TEST(Network, CountsHopsSymmetrically) {
  TwoHosts w(2, 3);
  auto there = w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}), w.a);
  auto back = w.net.send(Packet::udp({w.addr_b, 2}, {w.addr_a, 1}), w.b);
  // a -> r,r -> core -> r,r,r -> b : 6 intermediate nodes + delivery node.
  EXPECT_EQ(there.hops, back.hops);
  EXPECT_EQ(there.hops, w.net.path_hops(w.a, w.b) + 1);
}

TEST(Network, PathHopsMatchesTopology) {
  TwoHosts w(2, 3);
  EXPECT_EQ(w.net.path_hops(w.a, w.b), 6);  // 2 + core + 3
  EXPECT_EQ(w.net.path_hops(w.a, w.a), -1); // degenerate: same node
}

TEST(Network, UnroutedDestinationDrops) {
  TwoHosts w;
  auto result = w.net.send(
      Packet::udp({w.addr_a, 1}, {Ipv4Address{99, 0, 0, 1}, 2}), w.a);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.reason, DropReason::no_route);
  EXPECT_EQ(w.net.stats().dropped_no_route, 1u);
}

TEST(Network, TtlExpiresMidPath) {
  TwoHosts w(2, 2);
  // Path: a -> r,r -> core -> r,r -> b = 5 intermediate nodes, so the
  // packet needs ttl >= 6 to survive to the delivering host node.
  for (int ttl = 1; ttl <= 5; ++ttl) {
    auto r = w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}, ttl), w.a);
    EXPECT_FALSE(r.delivered) << "ttl=" << ttl;
    EXPECT_EQ(r.reason, DropReason::ttl_expired);
    EXPECT_EQ(r.hops, ttl) << "packet dies exactly at hop ttl";
  }
  auto r = w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}, 6), w.a);
  EXPECT_TRUE(r.delivered);
}

TEST(Network, MinimalDeliveringTtlIsPathHopsPlusOne) {
  TwoHosts w(1, 4);
  int n = w.net.path_hops(w.a, w.b);
  auto r1 = w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}, n), w.a);
  EXPECT_FALSE(r1.delivered);
  auto r2 = w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}, n + 1), w.a);
  EXPECT_TRUE(r2.delivered);
}

TEST(Network, ReceiverCanReplySynchronously) {
  TwoHosts w;
  w.net.set_receiver(w.b, [&](Network& net, const Packet& p) {
    net.send(Packet::udp(p.dst, p.src), w.b);
  });
  auto r = w.net.send(Packet::udp({w.addr_a, 5}, {w.addr_b, 6}), w.a);
  EXPECT_TRUE(r.delivered);
  ASSERT_EQ(w.received_a.size(), 1u) << "reply must arrive before send returns";
}

TEST(Network, ScopedAddressesInvisibleOutsideScope) {
  // Two subtrees both using 10.0.0.5 internally must not clash.
  Clock clock;
  Network net(clock);
  NodeId scope1 = net.add_node(net.root(), "isp1");
  NodeId scope2 = net.add_node(net.root(), "isp2");
  NodeId h1 = net.add_node(scope1, "h1");
  NodeId h2 = net.add_node(scope2, "h2");
  Ipv4Address internal{10, 0, 0, 5};
  int got1 = 0, got2 = 0;
  net.add_local_address(h1, internal);
  net.add_local_address(h2, internal);
  net.register_address(internal, h1, scope1);
  net.register_address(internal, h2, scope2);
  net.set_receiver(h1, [&](Network&, const Packet&) { ++got1; });
  net.set_receiver(h2, [&](Network&, const Packet&) { ++got2; });

  NodeId h1b = net.add_node(scope1, "h1b");
  net.add_local_address(h1b, Ipv4Address{10, 0, 0, 6});
  auto r = net.send(
      Packet::udp({Ipv4Address{10, 0, 0, 6}, 1}, {internal, 2}), h1b);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 0) << "scoped route must stay within its subtree";
}

TEST(Network, OutOfScopeInternalAddressIsUnrouted) {
  Clock clock;
  Network net(clock);
  NodeId scope = net.add_node(net.root(), "isp");
  NodeId inside = net.add_node(scope, "inside");
  NodeId outside = net.add_node(net.root(), "outside");
  Ipv4Address internal{10, 1, 1, 1};
  Ipv4Address pub{16, 0, 0, 9};
  net.add_local_address(inside, internal);
  net.register_address(internal, inside, scope);
  net.add_local_address(outside, pub);
  net.register_address(pub, outside, net.root());
  auto r = net.send(Packet::udp({pub, 1}, {internal, 2}), outside);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.reason, DropReason::no_route);
}

TEST(Network, RegisterAddressRejectsNonAncestorScope) {
  Clock clock;
  Network net(clock);
  NodeId a = net.add_node(net.root(), "a");
  NodeId b = net.add_node(net.root(), "b");
  NodeId host = net.add_node(a, "host");
  EXPECT_THROW(net.register_address(Ipv4Address{1, 2, 3, 4}, host, b),
               std::invalid_argument);
}

TEST(Network, AddNodeValidatesParent) {
  Clock clock;
  Network net(clock);
  EXPECT_THROW(net.add_node(42, "x"), std::out_of_range);
}

TEST(Network, StatsAccumulateAndReset) {
  TwoHosts w;
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}), w.a);
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 2}, 1), w.a);
  EXPECT_EQ(w.net.stats().sent, 2u);
  EXPECT_EQ(w.net.stats().delivered, 1u);
  EXPECT_EQ(w.net.stats().dropped_ttl, 1u);
  w.net.reset_stats();
  EXPECT_EQ(w.net.stats().sent, 0u);
}

TEST(PortDemux, RoutesByDestinationPort) {
  TwoHosts w;
  PortDemux demux;
  int p100 = 0, p200 = 0;
  demux.bind(100, [&](Network&, const Packet&) { ++p100; });
  demux.bind(200, [&](Network&, const Packet&) { ++p200; });
  demux.attach(w.net, w.b);
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 100}), w.a);
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 200}), w.a);
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 300}), w.a);
  EXPECT_EQ(p100, 1);
  EXPECT_EQ(p200, 1);
  demux.unbind(200);
  (void)w.net.send(Packet::udp({w.addr_a, 1}, {w.addr_b, 200}), w.a);
  EXPECT_EQ(p200, 1);
}

TEST(Clock, AdvancesMonotonically) {
  Clock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(5.0);
  c.set(10.0);
  EXPECT_EQ(c.now(), 10.0);
  EXPECT_THROW(c.advance(-1.0), std::invalid_argument);
  EXPECT_THROW(c.set(9.0), std::invalid_argument);
}

TEST(Rng, DeterministicAndBounded) {
  Rng r1(99), r2(99);
  for (int i = 0; i < 100; ++i) {
    auto v1 = r1.uniform(5, 10);
    auto v2 = r2.uniform(5, 10);
    EXPECT_EQ(v1, v2);
    EXPECT_GE(v1, 5u);
    EXPECT_LE(v1, 10u);
  }
  EXPECT_THROW(r1.uniform(10, 5), std::invalid_argument);
  EXPECT_THROW(r1.index(0), std::invalid_argument);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(r1.weighted(w), std::invalid_argument);
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng r(3);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.weighted(w), 1u);
}

}  // namespace
}  // namespace cgn::sim
