#include "stun/stun.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace cgn::stun {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

struct StunWorld {
  MiniNet mini;
  std::unique_ptr<StunServer> server;

  StunWorld() {
    sim::NodeId host = mini.net.add_node(mini.net.root(), "stun");
    server = std::make_unique<StunServer>(mini.net, host,
                                          Ipv4Address{16, 255, 1, 1},
                                          Ipv4Address{16, 255, 1, 2}, 3478,
                                          3479);
    server->install(mini.net);
  }
};

TEST(StunClient, OpenInternetHostClassifiesAsOpen) {
  StunWorld w;
  LineConfig lc;
  lc.with_cpe = false;
  auto line = w.mini.add_line(lc);
  StunClient client(line.device, {line.device_address, 50000}, *line.demux);
  auto outcome = client.classify(w.mini.net, *w.server);
  EXPECT_EQ(outcome.type, StunType::open_internet);
  ASSERT_TRUE(outcome.mapped.has_value());
  EXPECT_EQ(outcome.mapped->address, line.device_address);
}

struct StunCase {
  nat::MappingType nat_type;
  StunType expected;
};

class StunClassification : public ::testing::TestWithParam<StunCase> {};

TEST_P(StunClassification, DetectsNatType) {
  const StunCase& c = GetParam();
  StunWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = c.nat_type;
  // Symmetric NATs must not preserve ports, or STUN cannot tell them apart
  // from restricted cones (a known STUN limitation).
  lc.cpe.port_allocation = c.nat_type == nat::MappingType::symmetric
                               ? nat::PortAllocation::sequential
                               : nat::PortAllocation::preservation;
  auto line = w.mini.add_line(lc);

  StunClient client(line.device, {line.device_address, 50000}, *line.demux);
  auto outcome = client.classify(w.mini.net, *w.server);
  EXPECT_EQ(outcome.type, c.expected)
      << "got " << to_string(outcome.type);
  ASSERT_TRUE(outcome.mapped.has_value());
  EXPECT_TRUE(line.cpe->owns_external(outcome.mapped->address));
}

INSTANTIATE_TEST_SUITE_P(
    AllNatTypes, StunClassification,
    ::testing::Values(
        StunCase{nat::MappingType::full_cone, StunType::full_cone},
        StunCase{nat::MappingType::address_restricted,
                 StunType::address_restricted},
        StunCase{nat::MappingType::port_address_restricted,
                 StunType::port_address_restricted},
        StunCase{nat::MappingType::symmetric, StunType::symmetric}),
    [](const auto& info) {
      return std::string(
          info.param.expected == StunType::full_cone ? "full_cone"
          : info.param.expected == StunType::address_restricted
              ? "address_restricted"
          : info.param.expected == StunType::port_address_restricted
              ? "port_address_restricted"
              : "symmetric");
    });

TEST(StunClassification, Nat444ReportsMostRestrictiveOnPath) {
  // Full-cone CPE behind a symmetric CGN: the composite must classify as
  // symmetric (the paper's argument for using the most permissive STUN type
  // per AS as a CGN lower bound).
  StunWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = nat::MappingType::full_cone;
  lc.cgn.name = "cgn";
  lc.cgn.mapping = nat::MappingType::symmetric;
  lc.cgn.port_allocation = nat::PortAllocation::random;
  auto line = w.mini.add_line(lc);
  StunClient client(line.device, {line.device_address, 50000}, *line.demux);
  auto outcome = client.classify(w.mini.net, *w.server);
  EXPECT_EQ(outcome.type, StunType::symmetric);
}

TEST(StunClassification, Nat444PermissiveComposite) {
  StunWorld w;
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = nat::MappingType::full_cone;
  lc.cgn.name = "cgn";
  lc.cgn.mapping = nat::MappingType::full_cone;
  auto line = w.mini.add_line(lc);
  StunClient client(line.device, {line.device_address, 50000}, *line.demux);
  auto outcome = client.classify(w.mini.net, *w.server);
  EXPECT_EQ(outcome.type, StunType::full_cone);
}

TEST(StunTypes, PermissivenessOrdering) {
  EXPECT_LT(*permissiveness(StunType::symmetric),
            *permissiveness(StunType::port_address_restricted));
  EXPECT_LT(*permissiveness(StunType::port_address_restricted),
            *permissiveness(StunType::address_restricted));
  EXPECT_LT(*permissiveness(StunType::address_restricted),
            *permissiveness(StunType::full_cone));
  EXPECT_FALSE(permissiveness(StunType::open_internet).has_value());
  EXPECT_FALSE(permissiveness(StunType::blocked).has_value());
  EXPECT_TRUE(is_nat_type(StunType::symmetric));
  EXPECT_FALSE(is_nat_type(StunType::open_internet));
}

}  // namespace
}  // namespace cgn::stun
