// Shared hand-built topology for tests: one server on the public side and a
// configurable subscriber line (optional CPE, optional CGN) on the access
// side — the three subscriber archetypes of Figure 2 in miniature.
#pragma once

#include <memory>
#include <vector>

#include "nat/nat_device.hpp"
#include "netcore/ipv4.hpp"
#include "sim/clock.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::test {

using netcore::Endpoint;
using netcore::Ipv4Address;
using netcore::Protocol;

struct LineConfig {
  bool with_cpe = true;
  bool with_cgn = false;
  int cgn_hop = 3;  ///< hops from device to the CGN (with CPE: >= 2)
  nat::NatConfig cpe;
  nat::NatConfig cgn;
  int cgn_pool_size = 4;
  Ipv4Address device_address{192, 168, 1, 2};
  Ipv4Address line_internal{10, 0, 1, 2};  ///< CPE WAN addr when behind CGN
  Ipv4Address line_public{16, 0, 1, 2};    ///< public addr when no CGN
};

/// A miniature Internet: core -> server chain -> server host, and one
/// subscriber line per add_line() call.
class MiniNet {
 public:
  MiniNet() : net(clock) {
    sim::NodeId rack = net.add_router_chain(net.root(), 2, "infra");
    server_host = net.add_node(rack, "server");
    server_address = Ipv4Address{16, 255, 0, 10};
    net.add_local_address(server_host, server_address);
    net.register_address(server_address, server_host, net.root());
  }

  struct Line {
    sim::NodeId device = sim::kNoNode;
    Ipv4Address device_address;
    nat::NatDevice* cpe = nullptr;
    nat::NatDevice* cgn = nullptr;
    sim::NodeId cpe_node = sim::kNoNode;
    sim::NodeId cgn_node = sim::kNoNode;
    sim::PortDemux* demux = nullptr;
  };

  Line add_line(const LineConfig& cfg, std::uint64_t seed = 7) {
    Line line;
    ++line_count_;
    sim::Rng rng(seed);
    sim::NodeId agg = net.add_router_chain(net.root(), 1, "agg");
    sim::NodeId attach = agg;
    if (cfg.with_cgn) {
      line.cgn_node = net.add_node(agg, "cgn");
      std::vector<Ipv4Address> pool;
      // Each line's CGN gets its own public pool block.
      auto base = static_cast<std::uint8_t>(10 + line_count_);
      for (int i = 0; i < cfg.cgn_pool_size; ++i)
        pool.push_back(Ipv4Address(Ipv4Address{16, base, 0, 10}.value() +
                                   static_cast<std::uint32_t>(i)));
      auto cgn = std::make_unique<nat::NatDevice>(cfg.cgn, pool, rng.fork());
      line.cgn = cgn.get();
      nats.push_back(std::move(cgn));
      net.set_middlebox(line.cgn_node, line.cgn);
      for (const auto& a : pool)
        net.register_address(a, line.cgn_node, net.root());
      int chain = cfg.with_cpe ? cfg.cgn_hop - 2 : cfg.cgn_hop - 1;
      attach = net.add_router_chain(line.cgn_node, std::max(chain, 0), "acc");
    }

    Ipv4Address line_addr = cfg.with_cgn ? cfg.line_internal : cfg.line_public;
    sim::NodeId line_scope = cfg.with_cgn ? line.cgn_node : net.root();

    if (cfg.with_cpe) {
      line.cpe_node = net.add_node(attach, "cpe");
      auto cpe = std::make_unique<nat::NatDevice>(
          cfg.cpe, std::vector<Ipv4Address>{line_addr}, rng.fork());
      line.cpe = cpe.get();
      nats.push_back(std::move(cpe));
      net.set_middlebox(line.cpe_node, line.cpe);
      net.register_address(line_addr, line.cpe_node, line_scope);
      line.device = net.add_node(line.cpe_node, "device");
      line.device_address = cfg.device_address;
      net.add_local_address(line.device, line.device_address);
      net.register_address(line.device_address, line.device, line.cpe_node);
    } else {
      line.device = net.add_node(attach, "device");
      line.device_address = line_addr;
      net.add_local_address(line.device, line.device_address);
      net.register_address(line.device_address, line.device, line_scope);
    }

    auto demux = std::make_unique<sim::PortDemux>();
    line.demux = demux.get();
    demux->attach(net, line.device);
    demuxes.push_back(std::move(demux));
    return line;
  }

  sim::Clock clock;
  sim::Network net;
  sim::NodeId server_host = sim::kNoNode;
  Ipv4Address server_address;
  std::vector<std::unique_ptr<nat::NatDevice>> nats;
  std::vector<std::unique_ptr<sim::PortDemux>> demuxes;

 private:
  int line_count_ = 0;
};

}  // namespace cgn::test
