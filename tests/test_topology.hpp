// Shared hand-built topology for tests: one server on the public side and a
// configurable subscriber line (optional CPE, optional CGN) on the access
// side — the three subscriber archetypes of Figure 2 in miniature.
#pragma once

#include <memory>
#include <vector>

#include "nat/nat_device.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"
#include "sim/clock.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "v6/translator.hpp"

namespace cgn::test {

using netcore::Endpoint;
using netcore::Ipv4Address;
using netcore::Protocol;

struct LineConfig {
  bool with_cpe = true;
  bool with_cgn = false;
  int cgn_hop = 3;  ///< hops from device to the CGN (with CPE: >= 2)
  nat::NatConfig cpe;
  nat::NatConfig cgn;
  int cgn_pool_size = 4;
  Ipv4Address device_address{192, 168, 1, 2};
  Ipv4Address line_internal{10, 0, 1, 2};  ///< CPE WAN addr when behind CGN
  Ipv4Address line_public{16, 0, 1, 2};    ///< public addr when no CGN
};

/// A miniature Internet: core -> server chain -> server host, and one
/// subscriber line per add_line() call.
class MiniNet {
 public:
  MiniNet() : net(clock) {
    sim::NodeId rack = net.add_router_chain(net.root(), 2, "infra");
    server_host = net.add_node(rack, "server");
    server_address = Ipv4Address{16, 255, 0, 10};
    net.add_local_address(server_host, server_address);
    net.register_address(server_address, server_host, net.root());
  }

  struct Line {
    sim::NodeId device = sim::kNoNode;
    Ipv4Address device_address;
    nat::NatDevice* cpe = nullptr;
    nat::NatDevice* cgn = nullptr;
    sim::NodeId cpe_node = sim::kNoNode;
    sim::NodeId cgn_node = sim::kNoNode;
    sim::PortDemux* demux = nullptr;
  };

  Line add_line(const LineConfig& cfg, std::uint64_t seed = 7) {
    Line line;
    ++line_count_;
    sim::Rng rng(seed);
    sim::NodeId agg = net.add_router_chain(net.root(), 1, "agg");
    sim::NodeId attach = agg;
    if (cfg.with_cgn) {
      line.cgn_node = net.add_node(agg, "cgn");
      std::vector<Ipv4Address> pool;
      // Each line's CGN gets its own public pool block.
      auto base = static_cast<std::uint8_t>(10 + line_count_);
      for (int i = 0; i < cfg.cgn_pool_size; ++i)
        pool.push_back(Ipv4Address(Ipv4Address{16, base, 0, 10}.value() +
                                   static_cast<std::uint32_t>(i)));
      auto cgn = std::make_unique<nat::NatDevice>(cfg.cgn, pool, rng.fork());
      line.cgn = cgn.get();
      nats.push_back(std::move(cgn));
      net.set_middlebox(line.cgn_node, line.cgn);
      for (const auto& a : pool)
        net.register_address(a, line.cgn_node, net.root());
      int chain = cfg.with_cpe ? cfg.cgn_hop - 2 : cfg.cgn_hop - 1;
      attach = net.add_router_chain(line.cgn_node, std::max(chain, 0), "acc");
    }

    Ipv4Address line_addr = cfg.with_cgn ? cfg.line_internal : cfg.line_public;
    sim::NodeId line_scope = cfg.with_cgn ? line.cgn_node : net.root();

    if (cfg.with_cpe) {
      line.cpe_node = net.add_node(attach, "cpe");
      auto cpe = std::make_unique<nat::NatDevice>(
          cfg.cpe, std::vector<Ipv4Address>{line_addr}, rng.fork());
      line.cpe = cpe.get();
      nats.push_back(std::move(cpe));
      net.set_middlebox(line.cpe_node, line.cpe);
      net.register_address(line_addr, line.cpe_node, line_scope);
      line.device = net.add_node(line.cpe_node, "device");
      line.device_address = cfg.device_address;
      net.add_local_address(line.device, line.device_address);
      net.register_address(line.device_address, line.device, line.cpe_node);
    } else {
      line.device = net.add_node(attach, "device");
      line.device_address = line_addr;
      net.add_local_address(line.device, line.device_address);
      net.register_address(line.device_address, line.device, line_scope);
    }

    auto demux = std::make_unique<sim::PortDemux>();
    line.demux = demux.get();
    demux->attach(net, line.device);
    demuxes.push_back(std::move(demux));
    return line;
  }

  // --- IPv6-transition lines (DESIGN.md §14) -------------------------------

  struct V6Line {
    sim::NodeId device = sim::kNoNode;
    Ipv4Address device_address;        ///< what v4 apps on the device see
    netcore::Ipv6Address device_v6;    ///< the line's true v6 address
    Ipv4Address underlay;              ///< CGN-internal routing handle
    sim::PortDemux* demux = nullptr;
    v6::HostV6Stack* stack = nullptr;  ///< bare v6-only NAT64 lines only
  };

  /// Creates (once) the shared NAT64 edge for subsequent add_nat64_line().
  v6::Nat64Device& ensure_nat64(netcore::Ipv6Prefix pref64,
                                nat::NatConfig cfg = {}) {
    if (!nat64) {
      nat64_node = net.add_node(net.add_router_chain(net.root(), 1, "agg6"),
                                "nat64");
      std::vector<Ipv4Address> pool;
      for (int i = 0; i < 4; ++i)
        pool.push_back(Ipv4Address(Ipv4Address{16, 64, 0, 10}.value() +
                                   static_cast<std::uint32_t>(i)));
      auto t = std::make_unique<v6::Nat64Device>(cfg, pool, sim::Rng(9),
                                                 pref64);
      nat64 = t.get();
      v6_elements.push_back(std::move(t));
      net.set_middlebox(nat64_node, nat64);
      for (const auto& a : pool) net.register_address(a, nat64_node, net.root());
    }
    return *nat64;
  }

  /// Creates (once) the shared DS-Lite AFTR for subsequent add_dslite_line().
  v6::DsLiteAftr& ensure_aftr(nat::NatConfig cfg = {}) {
    if (!aftr) {
      aftr_node = net.add_node(net.add_router_chain(net.root(), 1, "aggds"),
                               "aftr");
      std::vector<Ipv4Address> pool;
      for (int i = 0; i < 4; ++i)
        pool.push_back(Ipv4Address(Ipv4Address{16, 65, 0, 10}.value() +
                                   static_cast<std::uint32_t>(i)));
      auto t = std::make_unique<v6::DsLiteAftr>(
          cfg, pool, sim::Rng(10),
          netcore::Ipv6Address::parse("2001:db8::af1"));
      aftr = t.get();
      v6_elements.push_back(std::move(t));
      net.set_middlebox(aftr_node, aftr);
      for (const auto& a : pool) net.register_address(a, aftr_node, net.root());
    }
    return *aftr;
  }

  /// One NAT64 subscriber line: with a CLAT (464XLAT, v4 apps work) or a
  /// bare v6-only host stack (v4 literals die). Call ensure_nat64() first.
  V6Line add_nat64_line(bool with_clat) {
    ++line_count_;
    V6Line line;
    line.underlay = Ipv4Address(Ipv4Address{10, 64, 0, 2}.value() +
                                static_cast<std::uint32_t>(line_count_) * 256);
    line.device_v6 = netcore::Ipv6Address(
        0x20010db800020000ULL, static_cast<std::uint64_t>(line_count_));
    sim::NodeId elem;
    if (with_clat) {
      line.device_address = Ipv4Address{192, 0, 0, 1};  // RFC 7335
      elem = net.add_node(nat64_node, "clat");
      auto clat = std::make_unique<v6::ClatElement>(
          line.device_v6, nat64->pref64(), line.underlay,
          line.device_address);
      net.set_middlebox(elem, clat.get());
      v6_elements.push_back(std::move(clat));
    } else {
      line.device_address =
          Ipv4Address(Ipv4Address{169, 254, 0, 1}.value() +
                      static_cast<std::uint32_t>(line_count_));
      elem = net.add_node(nat64_node, "v6stk");
      auto stack = std::make_unique<v6::HostV6Stack>(
          line.device_v6, line.underlay, line.device_address);
      line.stack = stack.get();
      net.set_middlebox(elem, stack.get());
      v6_elements.push_back(std::move(stack));
    }
    nat64->add_host(line.device_v6, line.underlay);
    net.register_address(line.underlay, elem, nat64_node);
    line.device = net.add_node(elem, "dev6");
    net.add_local_address(line.device, line.device_address);
    net.register_address(line.device_address, line.device, elem);
    auto demux = std::make_unique<sim::PortDemux>();
    line.demux = demux.get();
    demux->attach(net, line.device);
    demuxes.push_back(std::move(demux));
    return line;
  }

  /// One DS-Lite line: B4 softwire endpoint in front of the device. The
  /// inner v4 may overlap across lines (that's the point). Call
  /// ensure_aftr() first.
  V6Line add_dslite_line(Ipv4Address inner_v4) {
    ++line_count_;
    V6Line line;
    line.underlay = Ipv4Address(Ipv4Address{10, 65, 0, 2}.value() +
                                static_cast<std::uint32_t>(line_count_) * 256);
    line.device_v6 = netcore::Ipv6Address(
        0x20010db800010000ULL, static_cast<std::uint64_t>(line_count_));
    line.device_address = inner_v4;
    sim::NodeId elem = net.add_node(aftr_node, "b4");
    auto b4 = std::make_unique<v6::B4Element>(
        line.device_v6, aftr->aftr_address(), line.underlay);
    net.set_middlebox(elem, b4.get());
    v6_elements.push_back(std::move(b4));
    aftr->add_softwire(line.device_v6, line.underlay);
    net.register_address(line.underlay, elem, aftr_node);
    line.device = net.add_node(elem, "dev4in6");
    net.add_local_address(line.device, line.device_address);
    net.register_address(line.device_address, line.device, elem);
    auto demux = std::make_unique<sim::PortDemux>();
    line.demux = demux.get();
    demux->attach(net, line.device);
    demuxes.push_back(std::move(demux));
    return line;
  }

  sim::Clock clock;
  sim::Network net;
  sim::NodeId server_host = sim::kNoNode;
  Ipv4Address server_address;
  std::vector<std::unique_ptr<nat::NatDevice>> nats;
  std::vector<std::unique_ptr<sim::PortDemux>> demuxes;
  v6::Nat64Device* nat64 = nullptr;
  v6::DsLiteAftr* aftr = nullptr;
  sim::NodeId nat64_node = sim::kNoNode;
  sim::NodeId aftr_node = sim::kNoNode;
  std::vector<std::unique_ptr<sim::Middlebox>> v6_elements;

 private:
  int line_count_ = 0;
};

}  // namespace cgn::test
