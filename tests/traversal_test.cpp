// UDP hole punching across every NAT-type pairing: the classic RFC 5128
// compatibility matrix must *emerge* from the NAT engine, not be coded in.
#include "traversal/hole_punch.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace cgn::traversal {
namespace {

using nat::MappingType;
using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

struct PunchWorld {
  MiniNet mini;
  std::unique_ptr<RendezvousServer> server;
  MiniNet::Line line_a, line_b;

  PunchWorld(MappingType type_a, MappingType type_b,
             nat::PortAllocation alloc_a = nat::PortAllocation::sequential,
             nat::PortAllocation alloc_b = nat::PortAllocation::sequential) {
    sim::NodeId host = mini.net.add_node(mini.net.root(), "rendezvous");
    server = std::make_unique<RendezvousServer>(host,
                                                Ipv4Address{16, 255, 0, 99});
    server->install(mini.net);

    LineConfig lc;
    lc.with_cpe = true;
    lc.cpe.name = "nat-a";
    lc.cpe.mapping = type_a;
    lc.cpe.port_allocation = alloc_a;
    lc.line_public = Ipv4Address{16, 0, 1, 2};
    line_a = mini.add_line(lc, 1);

    lc.cpe.name = "nat-b";
    lc.cpe.mapping = type_b;
    lc.cpe.port_allocation = alloc_b;
    lc.line_public = Ipv4Address{16, 0, 2, 2};
    lc.device_address = Ipv4Address{192, 168, 1, 9};
    line_b = mini.add_line(lc, 2);
  }

  PunchResult attempt() {
    PunchPeer a{line_a.device, {line_a.device_address, 50001}, line_a.demux};
    PunchPeer b{line_b.device, {line_b.device_address, 50002}, line_b.demux};
    return punch(mini.net, *server, a, b, /*session=*/1);
  }
};

struct MatrixCase {
  MappingType a, b;
  PunchResult expected;
};

class PunchMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(PunchMatrix, MatchesRfc5128Expectations) {
  const MatrixCase& c = GetParam();
  PunchWorld world(c.a, c.b);
  EXPECT_EQ(world.attempt(), c.expected)
      << to_string(c.a) << " vs " << to_string(c.b);
}

// RFC 5128/STUN folklore: cone-to-cone combinations punch, symmetric works
// against full cone and (via address-restricted filtering with paired
// pooling) against address-restricted; symmetric vs port-address-restricted
// or symmetric fails.
INSTANTIATE_TEST_SUITE_P(
    Pairings, PunchMatrix,
    ::testing::Values(
        MatrixCase{MappingType::full_cone, MappingType::full_cone,
                   PunchResult::direct_both},
        MatrixCase{MappingType::full_cone, MappingType::address_restricted,
                   PunchResult::direct_both},
        MatrixCase{MappingType::address_restricted,
                   MappingType::address_restricted,
                   PunchResult::direct_both},
        MatrixCase{MappingType::port_address_restricted,
                   MappingType::port_address_restricted,
                   PunchResult::direct_both},
        MatrixCase{MappingType::address_restricted,
                   MappingType::port_address_restricted,
                   PunchResult::direct_both},
        MatrixCase{MappingType::symmetric, MappingType::full_cone,
                   PunchResult::direct_both},
        MatrixCase{MappingType::symmetric, MappingType::address_restricted,
                   PunchResult::direct_both},
        MatrixCase{MappingType::symmetric,
                   MappingType::port_address_restricted,
                   PunchResult::relay_needed},
        MatrixCase{MappingType::symmetric, MappingType::symmetric,
                   PunchResult::relay_needed}),
    [](const auto& info) {
      auto clean = [](std::string_view s) {
        std::string out;
        for (char c : s)
          if (c != ' ' && c != '-') out.push_back(c);
        return out;
      };
      return clean(nat::to_string(info.param.a)) + "_vs_" +
             clean(nat::to_string(info.param.b));
    });

TEST(HolePunch, OpenHostsAlwaysConnect) {
  MiniNet mini;
  sim::NodeId host = mini.net.add_node(mini.net.root(), "rendezvous");
  RendezvousServer server(host, Ipv4Address{16, 255, 0, 99});
  server.install(mini.net);
  LineConfig lc;
  lc.with_cpe = false;
  lc.line_public = Ipv4Address{16, 0, 1, 2};
  auto a = mini.add_line(lc, 1);
  lc.line_public = Ipv4Address{16, 0, 2, 2};
  auto b = mini.add_line(lc, 2);
  PunchPeer pa{a.device, {a.device_address, 50001}, a.demux};
  PunchPeer pb{b.device, {b.device_address, 50002}, b.demux};
  EXPECT_EQ(punch(mini.net, server, pa, pb, 1), PunchResult::direct_both);
}

TEST(HolePunch, SymmetricCgnOverPermissiveCpeStillBlocks) {
  // NAT444: full-cone CPEs under symmetric CGNs on both sides — the CGN
  // dominates, exactly the paper's point about CGNs being the restrictive
  // layer.
  MiniNet mini;
  sim::NodeId host = mini.net.add_node(mini.net.root(), "rendezvous");
  RendezvousServer server(host, Ipv4Address{16, 255, 0, 99});
  server.install(mini.net);
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = nat::MappingType::full_cone;
  lc.cgn.name = "cgn";
  lc.cgn.mapping = nat::MappingType::symmetric;
  lc.cgn.port_allocation = nat::PortAllocation::random;
  auto a = mini.add_line(lc, 1);
  lc.line_internal = Ipv4Address{10, 0, 5, 2};
  auto b = mini.add_line(lc, 2);
  PunchPeer pa{a.device, {a.device_address, 50001}, a.demux};
  PunchPeer pb{b.device, {b.device_address, 50002}, b.demux};
  EXPECT_EQ(punch(mini.net, server, pa, pb, 1), PunchResult::relay_needed);
}

TEST(HolePunch, FullConeCgnsAllowP2p) {
  MiniNet mini;
  sim::NodeId host = mini.net.add_node(mini.net.root(), "rendezvous");
  RendezvousServer server(host, Ipv4Address{16, 255, 0, 99});
  server.install(mini.net);
  LineConfig lc;
  lc.with_cpe = true;
  lc.with_cgn = true;
  lc.cpe.name = "cpe";
  lc.cpe.mapping = nat::MappingType::address_restricted;
  lc.cgn.name = "cgn";
  lc.cgn.mapping = nat::MappingType::full_cone;
  auto a = mini.add_line(lc, 1);
  lc.line_internal = Ipv4Address{10, 0, 5, 2};
  auto b = mini.add_line(lc, 2);
  PunchPeer pa{a.device, {a.device_address, 50001}, a.demux};
  PunchPeer pb{b.device, {b.device_address, 50002}, b.demux};
  EXPECT_EQ(punch(mini.net, server, pa, pb, 1), PunchResult::direct_both);
}

}  // namespace
}  // namespace cgn::traversal
