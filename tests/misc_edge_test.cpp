// Remaining edge cases across modules: Netalyzr without UPnP, unreachable
// servers, analysis accessors, hash/equality contracts.
#include <gtest/gtest.h>

#include "analysis/bt_detector.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "analysis/path_analysis.hpp"
#include "crawler/crawl_dataset.hpp"
#include "netalyzr/client.hpp"
#include "netalyzr/server.hpp"
#include "test_topology.hpp"

namespace cgn {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using test::LineConfig;
using test::MiniNet;

TEST(NetalyzrEdge, SessionWithoutUpnpHasNoCpeAddress) {
  MiniNet mini;
  sim::NodeId host = mini.net.add_node(mini.net.root(), "nz");
  netalyzr::NetalyzrServer server(host, Ipv4Address{16, 255, 2, 1});
  server.install(mini.net);
  LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "no-upnp-box";
  auto line = mini.add_line(lc);
  netalyzr::ClientContext ctx;
  ctx.host = line.device;
  ctx.device_address = line.device_address;
  ctx.upnp_cpe = nullptr;  // UPnP disabled or unanswered (60% of sessions)
  netalyzr::NetalyzrClient client(ctx, *line.demux, sim::Rng(1));
  auto session = client.run_basic(mini.net, server);
  EXPECT_FALSE(session.ip_cpe.has_value());
  EXPECT_FALSE(session.cpe_model.has_value());
  EXPECT_TRUE(session.ip_pub.has_value());
}

TEST(NetalyzrEdge, UnreachableServerYieldsEmptySession) {
  MiniNet mini;
  // A server object whose address is never registered: all flows die.
  sim::NodeId host = mini.net.add_node(mini.net.root(), "ghost");
  netalyzr::NetalyzrServer server(host, Ipv4Address{16, 254, 9, 9});
  // (no install)
  LineConfig lc;
  lc.with_cpe = false;
  auto line = mini.add_line(lc);
  netalyzr::ClientContext ctx;
  ctx.host = line.device;
  ctx.device_address = line.device_address;
  netalyzr::NetalyzrClient client(ctx, *line.demux, sim::Rng(1));
  auto session = client.run_basic(mini.net, server);
  EXPECT_TRUE(session.tcp_flows.empty());
  EXPECT_FALSE(session.ip_pub.has_value());

  netalyzr::SessionResult result = session;
  netalyzr::TtlEnumConfig cfg;
  cfg.max_hops = 6;  // keep the futile path search short
  client.run_enumeration(mini.net, mini.clock, server, cfg, result);
  ASSERT_TRUE(result.enumeration.has_value());
  EXPECT_EQ(result.enumeration->path_hops, 0);
  EXPECT_FALSE(result.enumeration->found_stateful());
}

TEST(NetalyzrEdge, MostDistantNatOfEmptyEnumerationIsZero) {
  netalyzr::TtlEnumResult e;
  EXPECT_EQ(e.most_distant_nat(), 0);
  EXPECT_FALSE(e.found_stateful());
}

TEST(AnalysisEdge, Table4ColumnFractionHandlesEmpty) {
  analysis::Table4Column col;
  EXPECT_EQ(col.fraction(analysis::Table4Row::r192), 0.0);
}

TEST(AnalysisEdge, VantageClassNames) {
  EXPECT_EQ(analysis::to_string(analysis::VantageClass::noncellular_no_cgn),
            "non-cellular no CGN");
  EXPECT_EQ(analysis::to_string(analysis::VantageClass::cellular_cgn),
            "cellular CGN");
}

TEST(AnalysisEdge, DetectorsHandleEmptyInputs) {
  netcore::RoutingTable routes;
  auto nz = analysis::NetalyzrDetector().analyze({}, routes);
  EXPECT_TRUE(nz.per_as.empty());
  EXPECT_EQ(nz.covered(false), 0u);
  crawler::CrawlDataset empty;
  auto bt = analysis::BtDetector().analyze(empty, routes);
  EXPECT_EQ(bt.covered_ases(), 0u);
  EXPECT_EQ(bt.cgn_positive_ases(), 0u);
  auto path = analysis::PathAnalyzer().analyze({}, routes, {});
  EXPECT_EQ(path.table7.total(), 0u);
  auto stun_res = analysis::StunAnalyzer().analyze({}, routes, {});
  EXPECT_EQ(stun_res.sessions_used, 0u);
}

TEST(CrawlerEdge, PeerKeyHashAndEqualityAgree) {
  dht::Contact a{dht::NodeId160{}, {Ipv4Address{16, 0, 0, 1}, 100}};
  dht::Contact b{dht::NodeId160{}, {Ipv4Address{16, 0, 0, 1}, 100}};
  crawler::PeerKeyHash hash;
  EXPECT_EQ((crawler::PeerKey{a}), (crawler::PeerKey{b}));
  EXPECT_EQ(hash(crawler::PeerKey{a}), hash(crawler::PeerKey{b}));
  dht::Contact c{dht::NodeId160{}, {Ipv4Address{16, 0, 0, 1}, 101}};
  EXPECT_NE((crawler::PeerKey{a}), (crawler::PeerKey{c}));
}

TEST(SimEdge, DropReasonNames) {
  EXPECT_EQ(sim::to_string(sim::DropReason::ttl_expired), "ttl_expired");
  EXPECT_EQ(sim::to_string(sim::DropReason::no_mapping), "no_mapping");
  EXPECT_EQ(sim::to_string(sim::DropReason::none), "none");
}

TEST(NatEdge, ToStringCoversAllEnumerators) {
  EXPECT_EQ(nat::to_string(nat::MappingType::full_cone), "full cone");
  EXPECT_EQ(nat::to_string(nat::PortAllocation::chunk_random),
            "chunk-random");
  EXPECT_EQ(nat::to_string(nat::Pooling::arbitrary), "arbitrary");
}

TEST(NatEdge, AtLeastAsPermissiveOrdering) {
  using nat::MappingType;
  EXPECT_TRUE(nat::at_least_as_permissive(MappingType::full_cone,
                                          MappingType::symmetric));
  EXPECT_FALSE(nat::at_least_as_permissive(
      MappingType::symmetric, MappingType::address_restricted));
  EXPECT_TRUE(nat::at_least_as_permissive(MappingType::symmetric,
                                          MappingType::symmetric));
}

}  // namespace
}  // namespace cgn
