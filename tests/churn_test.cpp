// Dynamic-addressing churn: renumbering behaviour and its effect on the
// BitTorrent detector (the paper's motivation for the 5x5 cluster rule).
#include <gtest/gtest.h>

#include "analysis/bt_detector.hpp"
#include "scenario/churn.hpp"
#include "test_topology.hpp"

namespace cgn {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using sim::Packet;

TEST(Renumbering, NatDeviceSwapsExternalAddress) {
  nat::NatConfig cfg;
  cfg.name = "cpe";
  nat::NatDevice nat(cfg, {Ipv4Address{16, 0, 1, 2}}, sim::Rng(1));
  Packet out = Packet::udp({Ipv4Address{192, 168, 1, 2}, 5000},
                           {Ipv4Address{16, 9, 9, 9}, 80});
  (void)nat.process_outbound(out, 0.0);
  Endpoint old_ext = out.src;

  ASSERT_TRUE(nat.renumber_external(Ipv4Address{16, 0, 1, 2},
                                    Ipv4Address{16, 0, 1, 99}));
  EXPECT_FALSE(nat.owns_external(Ipv4Address{16, 0, 1, 2}));
  EXPECT_TRUE(nat.owns_external(Ipv4Address{16, 0, 1, 99}));

  // Old mappings died with the address.
  Packet in = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, old_ext);
  EXPECT_EQ(nat.process_inbound(in, 1.0),
            sim::Middlebox::Verdict::drop_no_mapping);

  // New traffic uses the new address.
  Packet out2 = Packet::udp({Ipv4Address{192, 168, 1, 2}, 5001},
                            {Ipv4Address{16, 9, 9, 9}, 80});
  (void)nat.process_outbound(out2, 2.0);
  EXPECT_EQ(out2.src.address, (Ipv4Address{16, 0, 1, 99}));
}

TEST(Renumbering, RejectsUnknownOrDuplicateAddresses) {
  nat::NatConfig cfg;
  nat::NatDevice nat(cfg,
                     {Ipv4Address{16, 0, 1, 2}, Ipv4Address{16, 0, 1, 3}},
                     sim::Rng(1));
  EXPECT_FALSE(nat.renumber_external(Ipv4Address{16, 0, 9, 9},
                                     Ipv4Address{16, 0, 1, 50}));
  EXPECT_FALSE(nat.renumber_external(Ipv4Address{16, 0, 1, 2},
                                     Ipv4Address{16, 0, 1, 3}));
}

TEST(Renumbering, NetworkRoutesFollowTheNewAddress) {
  test::MiniNet mini;
  test::LineConfig lc;
  lc.with_cpe = true;
  lc.cpe.name = "cpe";
  auto line = mini.add_line(lc);
  int received = 0;
  line.demux->bind(5000, [&](sim::Network&, const Packet&) { ++received; });

  // Establish reachability via a static mapping on the old address.
  auto ext = line.cpe->add_static_mapping(netcore::Protocol::udp,
                                          {line.device_address, 5000}, 0.0);
  ASSERT_TRUE(ext.has_value());
  (void)mini.net.send(Packet::udp({mini.server_address, 80}, *ext),
                      mini.server_host);
  EXPECT_EQ(received, 1);

  // Renumber: old address unrouted, new one takes over.
  Ipv4Address new_addr{16, 0, 1, 77};
  ASSERT_TRUE(line.cpe->renumber_external(Ipv4Address{16, 0, 1, 2}, new_addr));
  mini.net.unregister_address(Ipv4Address{16, 0, 1, 2}, line.cpe_node,
                              mini.net.root());
  mini.net.register_address(new_addr, line.cpe_node, mini.net.root());

  auto stale = mini.net.send(Packet::udp({mini.server_address, 80}, *ext),
                             mini.server_host);
  EXPECT_FALSE(stale.delivered);
  EXPECT_EQ(stale.reason, sim::DropReason::no_route);

  auto ext2 = line.cpe->add_static_mapping(netcore::Protocol::udp,
                                           {line.device_address, 5000}, 1.0);
  ASSERT_TRUE(ext2.has_value());
  EXPECT_EQ(ext2->address, new_addr);
  (void)mini.net.send(Packet::udp({mini.server_address, 80}, *ext2),
                      mini.server_host);
  EXPECT_EQ(received, 2);
}

TEST(Renumbering, ScenarioChurnRenumbersOnlyPublicCpeLines) {
  scenario::InternetConfig cfg;
  cfg.seed = 5;
  cfg.routed_ases = 200;
  cfg.pbl_eyeballs = 30;
  cfg.apnic_eyeballs = 32;
  cfg.cellular_ases = 4;
  auto internet = scenario::build_internet(cfg);

  // Snapshot addresses of CGN-internal lines (must not change).
  std::vector<std::pair<const nat::NatDevice*, Ipv4Address>> cgn_lines;
  for (const auto& isp : internet->isps)
    for (const auto& sub : isp.subscribers)
      if (sub.behind_cgn && sub.cpe)
        cgn_lines.emplace_back(sub.cpe, sub.cpe->external_pool().front());

  scenario::ChurnConfig churn;
  churn.renumber_fraction = 0.5;
  churn.events = 1;
  auto stats = scenario::apply_renumbering_event(*internet, churn);
  EXPECT_GT(stats.lines_renumbered, 0u);
  for (const auto& [cpe, addr] : cgn_lines)
    EXPECT_EQ(cpe->external_pool().front(), addr)
        << "CGN-internal lines must not be renumbered by DHCP churn";

  // Every renumbered line still resolves to its own AS.
  for (const auto& isp : internet->isps)
    for (const auto& sub : isp.subscribers)
      if (!sub.behind_cgn && sub.cpe)
        EXPECT_EQ(internet->routes.origin_of(sub.cpe->external_pool().front()),
                  isp.asn);
}

}  // namespace
}  // namespace cgn
