#include <gtest/gtest.h>

#include <sstream>

#include "report/report.hpp"
#include "survey/survey.hpp"

namespace cgn {
namespace {

TEST(Report, TableAlignsColumns) {
  report::Table t({"a", "column-b"});
  t.add_row({"1", "2"});
  t.add_row({"longer-cell", "x"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  // Every line has the same structure (header, rule, rows).
  int lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
}

TEST(Report, TablePadsShortRows) {
  report::Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Report, NumberFormatting) {
  EXPECT_EQ(report::pct(0.1234), "12.3%");
  EXPECT_EQ(report::pct(1.0), "100.0%");
  EXPECT_EQ(report::num(3.14159, 2), "3.14");
  EXPECT_EQ(report::count(0), "0");
  EXPECT_EQ(report::count(999), "999");
  EXPECT_EQ(report::count(1000), "1,000");
  EXPECT_EQ(report::count(21500000), "21,500,000");
}

TEST(Report, BarChartScalesToMax) {
  std::ostringstream os;
  report::bar_chart(os, {"x", "y"}, {50.0, 100.0}, 10, "%");
  std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // the max bar
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Report, BarChartHandlesAllZero) {
  std::ostringstream os;
  EXPECT_NO_THROW(report::bar_chart(os, {"x"}, {0.0}, 10));
}

TEST(Report, StackedBarsSumToWidth) {
  std::ostringstream os;
  report::stacked_bars(os, {"row"}, {"s1", "s2"}, {{0.5, 0.5}}, 20);
  std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("=========="), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(Report, ScatterHandlesEmptyAndPoints) {
  std::ostringstream os;
  report::scatter_loglog(os, {}, 5, 5);
  EXPECT_NE(os.str().find("no data"), std::string::npos);
  std::ostringstream os2;
  report::scatter_loglog(os2, {{1, 1}, {100, 100}, {100, 100}}, 5, 5, 30, 10);
  std::string out = os2.str();
  EXPECT_NE(out.find('.'), std::string::npos);   // single point
  EXPECT_NE(out.find('o'), std::string::npos);   // doubled point
  EXPECT_NE(out.find('|'), std::string::npos);   // boundary
}

TEST(Report, CsvWritesHeaderAndRows) {
  std::ostringstream os;
  report::write_csv(os, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(Report, BoxplotLineContainsAllNumbers) {
  std::ostringstream os;
  report::boxplot_line(os, "label", 1, 2, 3, 4, 5, 42);
  std::string out = os.str();
  for (const char* needle : {"min=1.0", "q1=2.0", "med=3.0", "q3=4.0",
                             "max=5.0", "n=42"})
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
}

TEST(Survey, MarginalsTrackPaperPercentages) {
  sim::Rng rng(123);
  auto responses = survey::generate_responses(20000, rng);
  auto t = survey::tabulate(responses);
  EXPECT_NEAR(t.cgn_deployed, 0.38, 0.02);
  EXPECT_NEAR(t.cgn_considering, 0.12, 0.02);
  EXPECT_NEAR(t.cgn_no_plans, 0.50, 0.02);
  EXPECT_NEAR(t.ipv6_most, 0.32, 0.02);
  EXPECT_NEAR(t.ipv6_some, 0.35, 0.02);
  EXPECT_NEAR(t.scarcity_facing, 0.42, 0.02);
  EXPECT_NEAR(t.concern_price, 0.60, 0.02);
  // Shares within each question sum to one.
  EXPECT_NEAR(t.cgn_deployed + t.cgn_considering + t.cgn_no_plans, 1.0, 1e-9);
  EXPECT_NEAR(t.ipv6_most + t.ipv6_some + t.ipv6_soon + t.ipv6_no_plans, 1.0,
              1e-9);
}

TEST(Survey, InternalScarcityImpliesCgn) {
  sim::Rng rng(5);
  auto responses = survey::generate_responses(5000, rng);
  for (const auto& r : responses)
    if (r.faces_internal_scarcity)
      EXPECT_EQ(r.cgn, survey::CgnStatus::deployed)
          << "internal-space scarcity only arises in CGN deployments";
}

TEST(Survey, TabulateEmptyIsAllZero) {
  auto t = survey::tabulate({});
  EXPECT_EQ(t.n, 0u);
  EXPECT_EQ(t.cgn_deployed, 0.0);
}

TEST(Survey, DeterministicForSeed) {
  sim::Rng a(9), b(9);
  auto ra = survey::generate_responses(75, a);
  auto rb = survey::generate_responses(75, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].cgn, rb[i].cgn);
    EXPECT_EQ(ra[i].ipv6, rb[i].ipv6);
  }
}

TEST(Survey, EnumStringsAreStable) {
  EXPECT_EQ(survey::to_string(survey::CgnStatus::deployed),
            "yes, already deployed");
  EXPECT_EQ(survey::to_string(survey::Ipv6Status::no_plans),
            "no plans to deploy");
  EXPECT_EQ(survey::to_string(survey::ScarcityStatus::looming),
            "scarcity looming");
}

}  // namespace
}  // namespace cgn
