// Unit tests for the cgn::obs layer: metric semantics, JSON export,
// phase-profiler nesting and the trace ring. Everything instantiates its
// own MetricsRegistry / PhaseProfiler so the process-global instances the
// instrumented subsystems use stay untouched.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace cgn::test {
namespace {

// Minimal structural JSON check: balanced {}/[] outside string literals and
// no trailing garbage — enough to catch broken escaping or a missing comma
// brace without pulling in a JSON parser.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

// Value-recording assertions only hold when the hot path is compiled in.
#define CGN_SKIP_IF_METRICS_DISABLED()                                    \
  if (!obs::kMetricsEnabled)                                              \
  GTEST_SKIP() << "metrics compiled out (-DCGN_OBS=OFF)"

TEST(ObsCounter, AccumulatesAndResets) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, AddSubSetStaySigned) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Gauge g;
  g.add(5);
  g.sub(8);
  EXPECT_EQ(g.value(), -3) << "gauges must dip below zero without wrapping";
  g.set(100);
  EXPECT_EQ(g.value(), 100);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketPlacementIsLowerBoundInclusive) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Histogram h({1, 2, 4, 8});
  // Bucket i counts v <= bounds[i]; the implicit last bucket overflows.
  h.observe(0.5);  // -> bucket 0 (<=1)
  h.observe(1.0);  // -> bucket 0 (inclusive upper bound)
  h.observe(1.5);  // -> bucket 1 (<=2)
  h.observe(8.0);  // -> bucket 3 (<=8)
  h.observe(9.0);  // -> bucket 4 (overflow)
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 0, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 8.0 + 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(ObsHistogram, ObserveSmallMatchesObserve) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Histogram a({1, 2, 4, 8, 16, 32});
  obs::Histogram b({1, 2, 4, 8, 16, 32});
  // The integer fast path must land every value — below, at, and beyond the
  // precomputed table — in the same bucket as the double path.
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 33u, 64u, 65u, 1000u}) {
    a.observe(static_cast<double>(v));
    b.observe_small(v);
  }
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
}

TEST(ObsHistogram, ResetClearsBothSumPaths) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::Histogram h({10});
  h.observe(2.5);
  h.observe_small(3);
  EXPECT_DOUBLE_EQ(h.sum(), 5.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsRegistry, SameNameReturnsSameHandle) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // First histogram registration wins; later bounds are ignored.
  obs::Histogram& h1 = reg.histogram("h", {1, 2});
  obs::Histogram& h2 = reg.histogram("h", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1, 2}));
}

TEST(ObsRegistry, ResetValuesKeepsHandlesValid) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  c.inc(7);
  g.set(7);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  c.inc();  // the handle must still point at live registry storage
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(ObsRegistry, JsonExportRoundTrip) {
  CGN_SKIP_IF_METRICS_DISABLED();
  obs::MetricsRegistry reg;
  reg.counter("sim.sent\"quoted\"").inc(3);
  reg.gauge("depth").set(-2);
  reg.histogram("hops", {1, 4}).observe(2);
  reg.register_probe("util", [] { return 0.25; });
  std::ostringstream os;
  reg.export_json(os);
  const std::string j = os.str();
  EXPECT_TRUE(json_well_formed(j)) << j;
  EXPECT_NE(j.find("\"sim.sent\\\"quoted\\\"\":3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"depth\":-2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"bounds\":[1,4]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"buckets\":[0,1,0]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"util\":0.25"), std::string::npos) << j;
  EXPECT_EQ(reg.metric_count(), 4u);

  // The dashboard renders the same registry without touching values.
  std::ostringstream dash;
  reg.print_dashboard(dash);
  EXPECT_NE(dash.str().find("depth"), std::string::npos);
  EXPECT_EQ(reg.counter("sim.sent\"quoted\"").value(), 3u);
}

TEST(ObsProfiler, NestedPhasesRecordSlashJoinedPaths) {
  obs::PhaseProfiler prof;
  {
    obs::ScopedPhase outer("build", prof);
    { obs::ScopedPhase inner("routes", prof); }
    { obs::ScopedPhase inner("routes", prof); }
  }
  { obs::ScopedPhase again("build", prof); }
  auto phases = prof.phases();
  ASSERT_EQ(phases.size(), 2u);
  // Phases record when they first *end*, so the inner one comes first.
  auto find = [&](std::string_view path) -> const obs::PhaseProfiler::Phase& {
    for (const auto& p : phases)
      if (p.path == path) return p;
    ADD_FAILURE() << "no phase " << path;
    return phases.front();
  };
  const auto& outer = find("build");
  const auto& inner = find("build/routes");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.count, 2u);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.count, 2u);
  EXPECT_GE(outer.wall_s, inner.wall_s)
      << "the outer phase encloses the inner one";

  std::ostringstream os;
  prof.export_json(os);
  EXPECT_TRUE(json_well_formed(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"build/routes\""), std::string::npos);

  prof.reset();
  EXPECT_TRUE(prof.phases().empty());
  EXPECT_EQ(prof.open_depth(), 0);
}

TEST(ObsProfiler, EndWithoutBeginThrows) {
  obs::PhaseProfiler prof;
  EXPECT_THROW(prof.end(), std::logic_error);
}

TEST(ObsTraceRing, OverwritesOldestAtCapacity) {
  obs::TraceRing ring(3);
  for (std::uint32_t i = 0; i < 5; ++i)
    ring.push({.node = i, .ttl = 0, .kind = 0, .code = 0, .time = 0.0});
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].node, 2u);  // oldest retained
  EXPECT_EQ(events[2].node, 4u);  // newest
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_pushed(), 0u);
}

}  // namespace
}  // namespace cgn::test
