// Translation logging and the subscriber-attribution query (paper §2:
// operators must be able to map flows back to subscribers).
#include "nat/translation_log.hpp"

#include <gtest/gtest.h>

#include "nat/nat_device.hpp"

namespace cgn::nat {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using netcore::Protocol;
using sim::Packet;

struct LoggedNat {
  TranslationLog log;
  NatDevice nat;

  explicit LoggedNat(NatConfig cfg = make_config())
      : nat(std::move(cfg), {Ipv4Address{16, 1, 0, 10}}, sim::Rng(1)) {
    nat.set_observer(
        [this](Protocol proto, const Endpoint& internal,
               const Endpoint& external, sim::SimTime created_at) {
          log.on_created({proto, internal, external, created_at, {}});
        },
        [this](Protocol proto, const Endpoint& external,
               sim::SimTime created_at, sim::SimTime now) {
          log.on_expired(proto, external, created_at, now);
        });
  }

  static NatConfig make_config() {
    NatConfig cfg;
    cfg.name = "logged";
    cfg.udp_timeout_s = 60.0;
    return cfg;
  }
};

TEST(TranslationLog, RecordsMappingLifecycle) {
  LoggedNat world;
  Packet out = Packet::udp({Ipv4Address{10, 0, 0, 5}, 5000},
                           {Ipv4Address{16, 9, 9, 9}, 80});
  (void)world.nat.process_outbound(out, 100.0);
  ASSERT_EQ(world.log.size(), 1u);
  const auto& rec = world.log.records()[0];
  EXPECT_EQ(rec.internal, (Endpoint{Ipv4Address{10, 0, 0, 5}, 5000}));
  EXPECT_EQ(rec.external, out.src);
  EXPECT_EQ(rec.created_at, 100.0);
  EXPECT_FALSE(rec.expired_at.has_value());

  world.nat.collect_garbage(300.0);
  EXPECT_TRUE(world.log.records()[0].expired_at.has_value());
}

TEST(TranslationLog, AttributionAnswersWhoUsedThePort) {
  LoggedNat world;
  Packet a = Packet::udp({Ipv4Address{10, 0, 0, 5}, 5000},
                         {Ipv4Address{16, 9, 9, 9}, 80});
  (void)world.nat.process_outbound(a, 100.0);
  Endpoint shared_ext = a.src;
  world.nat.collect_garbage(500.0);  // a's mapping expires

  // A second subscriber later gets the *same* external port.
  Packet b = Packet::udp({Ipv4Address{10, 0, 0, 6}, 5000},
                         {Ipv4Address{16, 9, 9, 9}, 80});
  (void)world.nat.process_outbound(b, 1000.0);
  ASSERT_EQ(b.src, shared_ext) << "port preservation reuses the freed port";

  auto at_120 = world.log.attribute(Protocol::udp, shared_ext, 120.0);
  ASSERT_TRUE(at_120.has_value());
  EXPECT_EQ(at_120->address, (Ipv4Address{10, 0, 0, 5}));
  auto at_1010 = world.log.attribute(Protocol::udp, shared_ext, 1010.0);
  ASSERT_TRUE(at_1010.has_value());
  EXPECT_EQ(at_1010->address, (Ipv4Address{10, 0, 0, 6}))
      << "attribution must respect record time windows";
  EXPECT_FALSE(world.log.attribute(Protocol::udp, shared_ext, 700.0))
      << "nobody held the port between the two flows";
}

TEST(TranslationLog, RecordsPerSubscriberDimensioning) {
  LoggedNat world;
  for (int s = 0; s < 4; ++s)
    for (int f = 0; f < 10; ++f) {
      Packet p = Packet::udp(
          {Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(5 + s)),
           static_cast<std::uint16_t>(5000 + f)},
          {Ipv4Address{16, 9, 9, 9}, static_cast<std::uint16_t>(80 + f)});
      (void)world.nat.process_outbound(p, 0.0);
    }
  EXPECT_EQ(world.log.size(), 40u);
  EXPECT_DOUBLE_EQ(world.log.records_per_subscriber(), 10.0);
}

TEST(TranslationLog, RenumberingClosesRecords) {
  LoggedNat world;
  Packet p = Packet::udp({Ipv4Address{10, 0, 0, 5}, 5000},
                         {Ipv4Address{16, 9, 9, 9}, 80});
  (void)world.nat.process_outbound(p, 10.0);
  ASSERT_TRUE(world.nat.renumber_external(Ipv4Address{16, 1, 0, 10},
                                          Ipv4Address{16, 1, 0, 99}));
  EXPECT_TRUE(world.log.records()[0].expired_at.has_value())
      << "mappings dropped by renumbering must close their log records";
}

}  // namespace
}  // namespace cgn::nat
