#include "nat/nat_device.hpp"

#include <gtest/gtest.h>

#include "test_topology.hpp"

namespace cgn::nat {
namespace {

using netcore::Endpoint;
using netcore::Ipv4Address;
using netcore::Protocol;
using sim::Packet;

NatConfig base_config() {
  NatConfig cfg;
  cfg.name = "test-nat";
  cfg.mapping = MappingType::port_address_restricted;
  cfg.port_allocation = PortAllocation::preservation;
  cfg.udp_timeout_s = 60.0;
  cfg.tcp_timeout_s = 600.0;
  return cfg;
}

std::vector<Ipv4Address> pool(int n) {
  std::vector<Ipv4Address> out;
  for (int i = 0; i < n; ++i) out.push_back(Ipv4Address(16, 1, 0, 10 + i));
  return out;
}

Packet out_packet(std::uint16_t sport = 40000, std::uint16_t dport = 80) {
  return Packet::udp({Ipv4Address{192, 168, 1, 2}, sport},
                     {Ipv4Address{16, 9, 9, 9}, dport});
}

TEST(NatDevice, ConstructionValidation) {
  EXPECT_THROW(NatDevice(base_config(), {}, sim::Rng(1)),
               std::invalid_argument);
  auto cfg = base_config();
  cfg.port_min = 5000;
  cfg.port_max = 4000;
  EXPECT_THROW(NatDevice(cfg, pool(1), sim::Rng(1)), std::invalid_argument);
  cfg = base_config();
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 0;
  EXPECT_THROW(NatDevice(cfg, pool(1), sim::Rng(1)), std::invalid_argument);
  auto dup = pool(2);
  dup[1] = dup[0];
  EXPECT_THROW(NatDevice(base_config(), dup, sim::Rng(1)),
               std::invalid_argument);
}

TEST(NatDevice, OutboundTranslatesSourceAndPreservesPort) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Packet p = out_packet(40000);
  ASSERT_EQ(nat.process_outbound(p, 0.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(p.src.address, pool(1)[0]);
  EXPECT_EQ(p.src.port, 40000) << "preservation keeps the source port";
  EXPECT_TRUE(nat.owns_external(p.src.address));
  EXPECT_EQ(nat.stats().mappings_created, 1u);
}

TEST(NatDevice, MappingReusedForSameInternalEndpoint) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Packet p1 = out_packet(40000, 80);
  Packet p2 = out_packet(40000, 443);  // different destination
  (void)nat.process_outbound(p1, 0.0);
  (void)nat.process_outbound(p2, 1.0);
  EXPECT_EQ(p1.src, p2.src) << "cone NAT reuses the mapping across dsts";
  EXPECT_EQ(nat.stats().mappings_created, 1u);
}

TEST(NatDevice, SymmetricCreatesPerDestinationMappings) {
  auto cfg = base_config();
  cfg.mapping = MappingType::symmetric;
  cfg.port_allocation = PortAllocation::sequential;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet p1 = out_packet(40000, 80);
  Packet p2 = out_packet(40000, 443);
  (void)nat.process_outbound(p1, 0.0);
  (void)nat.process_outbound(p2, 0.0);
  EXPECT_NE(p1.src, p2.src);
  EXPECT_EQ(nat.stats().mappings_created, 2u);
}

TEST(NatDevice, InboundRequiresMapping) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Packet in = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80},
                          {pool(1)[0], 40000});
  EXPECT_EQ(nat.process_inbound(in, 0.0),
            sim::Middlebox::Verdict::drop_no_mapping);
  EXPECT_EQ(nat.stats().inbound_no_mapping, 1u);
}

TEST(NatDevice, InboundTranslatesBackToInternal) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Packet out = out_packet(40000, 80);
  (void)nat.process_outbound(out, 0.0);
  Packet in = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, out.src);
  ASSERT_EQ(nat.process_inbound(in, 1.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(in.dst, (Endpoint{Ipv4Address{192, 168, 1, 2}, 40000}));
}

// --- Filtering policy sweep -------------------------------------------------

struct FilterCase {
  MappingType type;
  bool same_endpoint_passes;   // reply from the contacted IP:port
  bool same_ip_other_port;     // same IP, different port
  bool other_ip;               // never-contacted IP
};

class FilteringTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilteringTest, AppliesPolicy) {
  const FilterCase& c = GetParam();
  auto cfg = base_config();
  cfg.mapping = c.type;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet out = out_packet(40000, 80);
  (void)nat.process_outbound(out, 0.0);
  Endpoint ext = out.src;

  auto try_from = [&](Endpoint from) {
    Packet in = Packet::udp(from, ext);
    return nat.process_inbound(in, 1.0) == sim::Middlebox::Verdict::forward;
  };
  EXPECT_EQ(try_from({Ipv4Address{16, 9, 9, 9}, 80}), c.same_endpoint_passes);
  EXPECT_EQ(try_from({Ipv4Address{16, 9, 9, 9}, 81}), c.same_ip_other_port);
  EXPECT_EQ(try_from({Ipv4Address{16, 8, 8, 8}, 80}), c.other_ip);
}

INSTANTIATE_TEST_SUITE_P(
    AllMappingTypes, FilteringTest,
    ::testing::Values(
        FilterCase{MappingType::full_cone, true, true, true},
        FilterCase{MappingType::address_restricted, true, true, false},
        FilterCase{MappingType::port_address_restricted, true, false, false},
        FilterCase{MappingType::symmetric, true, false, false}),
    [](const auto& info) {
      switch (info.param.type) {
        case MappingType::full_cone: return "full_cone";
        case MappingType::address_restricted: return "address_restricted";
        case MappingType::port_address_restricted: return "port_address";
        case MappingType::symmetric: return "symmetric";
      }
      return "unknown";
    });

// --- Port allocation strategies ----------------------------------------------

TEST(NatDevice, PreservationFallsBackOnCollision) {
  auto cfg = base_config();
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet p1 = out_packet(40000);
  (void)nat.process_outbound(p1, 0.0);
  // A different internal host using the same source port.
  Packet p2 = Packet::udp({Ipv4Address{192, 168, 1, 3}, 40000},
                          {Ipv4Address{16, 9, 9, 9}, 80});
  (void)nat.process_outbound(p2, 0.0);
  EXPECT_NE(p2.src.port, 0);
  EXPECT_NE(p1.src.port == p2.src.port && p1.src.address == p2.src.address,
            true);
}

TEST(NatDevice, SequentialAllocatesIncreasingPorts) {
  auto cfg = base_config();
  cfg.port_allocation = PortAllocation::sequential;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  std::uint16_t last = 0;
  for (int i = 0; i < 10; ++i) {
    Packet p = Packet::udp({Ipv4Address{192, 168, 1, 2},
                            static_cast<std::uint16_t>(30000 + i)},
                           {Ipv4Address{16, 9, 9, 9}, 80});
    (void)nat.process_outbound(p, 0.0);
    if (i > 0) EXPECT_EQ(p.src.port, last + 1);
    last = p.src.port;
  }
}

TEST(NatDevice, RandomSpreadsAcrossPortSpace) {
  auto cfg = base_config();
  cfg.port_allocation = PortAllocation::random;
  cfg.port_min = 1024;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  std::uint16_t lo = 65535, hi = 0;
  for (int i = 0; i < 200; ++i) {
    Packet p = Packet::udp({Ipv4Address{192, 168, 1, 2},
                            static_cast<std::uint16_t>(20000 + i)},
                           {Ipv4Address{16, 9, 9, 9}, 80});
    (void)nat.process_outbound(p, 0.0);
    lo = std::min(lo, p.src.port);
    hi = std::max(hi, p.src.port);
  }
  EXPECT_LT(lo, 16384) << "random allocation should reach low ports";
  EXPECT_GT(hi, 49152) << "random allocation should reach high ports";
}

TEST(NatDevice, ChunkRandomConfinesSubscriberToItsBlock) {
  auto cfg = base_config();
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 2048;
  NatDevice nat(cfg, pool(2), sim::Rng(1));
  Ipv4Address sub{10, 0, 0, 7};
  std::uint16_t lo = 65535, hi = 0;
  Ipv4Address ext;
  for (int i = 0; i < 50; ++i) {
    Packet p = Packet::udp({sub, static_cast<std::uint16_t>(20000 + i)},
                           {Ipv4Address{16, 9, 9, 9}, 80});
    ASSERT_EQ(nat.process_outbound(p, 0.0), sim::Middlebox::Verdict::forward);
    if (i == 0) ext = p.src.address;
    EXPECT_EQ(p.src.address, ext) << "chunked subscribers keep one IP";
    lo = std::min(lo, p.src.port);
    hi = std::max(hi, p.src.port);
  }
  auto chunk = nat.subscriber_chunk(sub);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->second, 2048u);
  EXPECT_GE(lo, chunk->first);
  EXPECT_LT(hi, chunk->first + 2048);
}

TEST(NatDevice, ChunkExhaustionDropsNewFlows) {
  auto cfg = base_config();
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 16;  // tiny chunk: the paper's 512-port concern, squared
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Ipv4Address sub{10, 0, 0, 7};
  int forwarded = 0, dropped = 0;
  for (int i = 0; i < 32; ++i) {
    Packet p = Packet::udp({sub, static_cast<std::uint16_t>(20000 + i)},
                           {Ipv4Address{16, 9, 9, 9},
                            static_cast<std::uint16_t>(80 + i)});
    auto v = nat.process_outbound(p, 0.0);
    (v == sim::Middlebox::Verdict::forward ? forwarded : dropped)++;
  }
  EXPECT_EQ(forwarded, 16);
  EXPECT_EQ(dropped, 16);
  EXPECT_EQ(nat.stats().port_exhaustion_drops, 16u);
}

TEST(NatDevice, DistinctSubscribersGetDistinctChunks) {
  auto cfg = base_config();
  cfg.port_allocation = PortAllocation::chunk_random;
  cfg.chunk_size = 4096;
  NatDevice nat(cfg, pool(2), sim::Rng(1));
  std::set<std::pair<std::uint32_t, std::uint16_t>> chunks;
  for (int s = 0; s < 12; ++s) {
    Ipv4Address sub(10, 0, 0, static_cast<std::uint8_t>(10 + s));
    Packet p = Packet::udp({sub, 30000}, {Ipv4Address{16, 9, 9, 9}, 80});
    ASSERT_EQ(nat.process_outbound(p, 0.0), sim::Middlebox::Verdict::forward);
    auto chunk = nat.subscriber_chunk(sub);
    ASSERT_TRUE(chunk.has_value());
    chunks.insert({p.src.address.value(), chunk->first});
  }
  EXPECT_EQ(chunks.size(), 12u) << "no two subscribers share an (IP, chunk)";
}

// --- Pooling -----------------------------------------------------------------

TEST(NatDevice, PairedPoolingSticksToOneExternalIp) {
  auto cfg = base_config();
  cfg.pooling = Pooling::paired;
  cfg.port_allocation = PortAllocation::sequential;
  NatDevice nat(cfg, pool(8), sim::Rng(1));
  Ipv4Address sub{10, 0, 0, 9};
  Ipv4Address first;
  for (int i = 0; i < 20; ++i) {
    Packet p = Packet::udp({sub, static_cast<std::uint16_t>(30000 + i)},
                           {Ipv4Address{16, 9, 9, 9},
                            static_cast<std::uint16_t>(80 + i)});
    (void)nat.process_outbound(p, 0.0);
    if (i == 0) first = p.src.address;
    EXPECT_EQ(p.src.address, first);
  }
}

TEST(NatDevice, ArbitraryPoolingUsesMultipleIps) {
  auto cfg = base_config();
  cfg.pooling = Pooling::arbitrary;
  cfg.port_allocation = PortAllocation::random;
  cfg.mapping = MappingType::symmetric;  // new mapping per destination
  NatDevice nat(cfg, pool(8), sim::Rng(1));
  std::set<std::uint32_t> ips;
  for (int i = 0; i < 40; ++i) {
    Packet p = Packet::udp({Ipv4Address{10, 0, 0, 9}, 30000},
                           {Ipv4Address{16, 9, 9, 9},
                            static_cast<std::uint16_t>(80 + i)});
    (void)nat.process_outbound(p, 0.0);
    ips.insert(p.src.address.value());
  }
  EXPECT_GT(ips.size(), 2u);
}

// --- Timeouts ----------------------------------------------------------------

TEST(NatDevice, UdpMappingExpiresAfterIdleTimeout) {
  auto cfg = base_config();
  cfg.udp_timeout_s = 30.0;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet out = out_packet(40000, 80);
  (void)nat.process_outbound(out, 0.0);
  Endpoint ext = out.src;

  Packet in1 = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, ext);
  EXPECT_EQ(nat.process_inbound(in1, 29.0), sim::Middlebox::Verdict::forward);
  // The inbound packet refreshed the timer (refresh_on_inbound default).
  Packet in2 = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, ext);
  EXPECT_EQ(nat.process_inbound(in2, 58.0), sim::Middlebox::Verdict::forward);
  Packet in3 = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, ext);
  EXPECT_EQ(nat.process_inbound(in3, 89.1),
            sim::Middlebox::Verdict::drop_no_mapping);
}

TEST(NatDevice, InboundRefreshCanBeDisabled) {
  auto cfg = base_config();
  cfg.udp_timeout_s = 30.0;
  cfg.refresh_on_inbound = false;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet out = out_packet(40000, 80);
  (void)nat.process_outbound(out, 0.0);
  Endpoint ext = out.src;
  Packet in1 = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, ext);
  EXPECT_EQ(nat.process_inbound(in1, 20.0), sim::Middlebox::Verdict::forward);
  Packet in2 = Packet::udp({Ipv4Address{16, 9, 9, 9}, 80}, ext);
  EXPECT_EQ(nat.process_inbound(in2, 45.0),
            sim::Middlebox::Verdict::drop_no_mapping)
      << "inbound traffic must not have refreshed the timer";
}

TEST(NatDevice, TcpOutlivesUdpTimeouts) {
  auto cfg = base_config();
  cfg.udp_timeout_s = 30.0;
  cfg.tcp_timeout_s = 7200.0;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet tcp = Packet::tcp({Ipv4Address{192, 168, 1, 2}, 40000},
                           {Ipv4Address{16, 9, 9, 9}, 80});
  (void)nat.process_outbound(tcp, 0.0);
  // Establish the connection (data back from the peer), then go idle far
  // beyond any UDP timeout: the established-TCP timer must hold.
  Packet est = Packet::tcp({Ipv4Address{16, 9, 9, 9}, 80}, tcp.src,
                           sim::TcpFlag::none);
  ASSERT_EQ(nat.process_inbound(est, 1.0), sim::Middlebox::Verdict::forward);
  Packet in = Packet::tcp({Ipv4Address{16, 9, 9, 9}, 80}, tcp.src,
                          sim::TcpFlag::none);
  EXPECT_EQ(nat.process_inbound(in, 3600.0), sim::Middlebox::Verdict::forward);
}

TEST(NatDevice, ExpiredPortIsReusable) {
  auto cfg = base_config();
  cfg.udp_timeout_s = 10.0;
  cfg.port_allocation = PortAllocation::preservation;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet p1 = out_packet(40000, 80);
  (void)nat.process_outbound(p1, 0.0);
  nat.collect_garbage(100.0);
  EXPECT_EQ(nat.active_mappings(100.0), 0u);
  // Another host can now claim the same preserved port.
  Packet p2 = Packet::udp({Ipv4Address{192, 168, 1, 3}, 40000},
                          {Ipv4Address{16, 9, 9, 9}, 80});
  (void)nat.process_outbound(p2, 100.0);
  EXPECT_EQ(p2.src.port, 40000);
}

TEST(NatDevice, LookupExternalReflectsLiveState) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Endpoint internal{Ipv4Address{192, 168, 1, 2}, 40000};
  EXPECT_FALSE(nat.lookup_external(Protocol::udp, internal, {}, 0.0));
  Packet out = out_packet(40000, 80);
  (void)nat.process_outbound(out, 0.0);
  auto ext = nat.lookup_external(Protocol::udp, internal, {}, 1.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(*ext, out.src);
  EXPECT_FALSE(nat.lookup_external(Protocol::udp, internal, {}, 1000.0))
      << "expired mappings are not reported";
}

// --- Hairpinning ---------------------------------------------------------------

TEST(NatDevice, HairpinDisabledDrops) {
  auto cfg = base_config();
  cfg.hairpinning = false;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet p = out_packet(40000, 80);
  (void)nat.process_outbound(p, 0.0);
  Packet hp = Packet::udp({Ipv4Address{192, 168, 1, 3}, 5000}, p.src);
  EXPECT_NE(nat.process_hairpin(hp, 1.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(nat.stats().hairpins_dropped, 1u);
}

TEST(NatDevice, HairpinTranslatesSourceByDefault) {
  auto cfg = base_config();
  cfg.hairpinning = true;
  cfg.mapping = MappingType::full_cone;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet a_out = out_packet(40000, 80);  // host A creates a mapping
  (void)nat.process_outbound(a_out, 0.0);
  Endpoint a_ext = a_out.src;

  Packet hp = Packet::udp({Ipv4Address{192, 168, 1, 3}, 5000}, a_ext);
  ASSERT_EQ(nat.process_hairpin(hp, 1.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(hp.dst, (Endpoint{Ipv4Address{192, 168, 1, 2}, 40000}));
  EXPECT_TRUE(nat.owns_external(hp.src.address))
      << "RFC 4787 hairpinning presents the external source";
}

TEST(NatDevice, HairpinPreservingSourceLeaksInternalAddress) {
  auto cfg = base_config();
  cfg.hairpinning = true;
  cfg.hairpin_preserve_source = true;
  cfg.mapping = MappingType::full_cone;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet a_out = out_packet(40000, 80);
  (void)nat.process_outbound(a_out, 0.0);

  Endpoint b_int{Ipv4Address{192, 168, 1, 3}, 5000};
  Packet hp = Packet::udp(b_int, a_out.src);
  ASSERT_EQ(nat.process_hairpin(hp, 1.0), sim::Middlebox::Verdict::forward);
  EXPECT_EQ(hp.src, b_int) << "the internal source survives — the §4.1 leak";
  EXPECT_EQ(nat.stats().hairpins_forwarded, 1u);
}

TEST(NatDevice, HairpinRespectsFiltering) {
  auto cfg = base_config();
  cfg.hairpinning = true;
  cfg.hairpin_preserve_source = true;
  cfg.mapping = MappingType::port_address_restricted;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet a_out = out_packet(40000, 80);
  (void)nat.process_outbound(a_out, 0.0);
  Packet hp = Packet::udp({Ipv4Address{192, 168, 1, 3}, 5000}, a_out.src);
  EXPECT_EQ(nat.process_hairpin(hp, 1.0),
            sim::Middlebox::Verdict::drop_filtered)
      << "restricted mappings filter hairpinned strangers too";
}

// --- UPnP static mappings ------------------------------------------------------

TEST(NatDevice, StaticMappingBypassesFilterAndExpiry) {
  auto cfg = base_config();
  cfg.mapping = MappingType::port_address_restricted;
  cfg.udp_timeout_s = 30.0;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Endpoint internal{Ipv4Address{192, 168, 1, 2}, 6881};
  auto ext = nat.add_static_mapping(Protocol::udp, internal, 0.0);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(ext->port, 6881) << "UPnP tries to preserve the requested port";

  // A stranger can reach it long past the UDP timeout.
  Packet in = Packet::udp({Ipv4Address{16, 7, 7, 7}, 1234}, *ext);
  EXPECT_EQ(nat.process_inbound(in, 10'000.0),
            sim::Middlebox::Verdict::forward);
  EXPECT_EQ(in.dst, internal);
}

TEST(NatDevice, StaticMappingIsIdempotent) {
  NatDevice nat(base_config(), pool(1), sim::Rng(1));
  Endpoint internal{Ipv4Address{192, 168, 1, 2}, 6881};
  auto e1 = nat.add_static_mapping(Protocol::udp, internal, 0.0);
  auto e2 = nat.add_static_mapping(Protocol::udp, internal, 5.0);
  ASSERT_TRUE(e1 && e2);
  EXPECT_EQ(*e1, *e2);
  EXPECT_EQ(nat.stats().mappings_created, 1u);
}

TEST(NatDevice, GarbageCollectionReleasesOnlyExpired) {
  auto cfg = base_config();
  cfg.udp_timeout_s = 50.0;
  NatDevice nat(cfg, pool(1), sim::Rng(1));
  Packet p1 = out_packet(40000, 80);
  (void)nat.process_outbound(p1, 0.0);
  Packet p2 = out_packet(40001, 80);
  (void)nat.process_outbound(p2, 40.0);
  nat.collect_garbage(60.0);  // p1 idle 60 s (expired), p2 idle 20 s (live)
  EXPECT_EQ(nat.active_mappings(60.0), 1u);
  EXPECT_EQ(nat.stats().mappings_expired, 1u);
}

}  // namespace
}  // namespace cgn::nat
