// cgn::v6 — the IPv6-transition subsystem (DESIGN.md §14): RFC 6052
// pref64 embed/extract, DNS64 synthesis and client-side pref64 discovery,
// NAT64 and DS-Lite data planes over the MiniNet topology, restart-flush
// fault behaviour, the fig14 transition classifier, and determinism of the
// v6 measurement campaign across worker counts and kill→resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/transition.hpp"
#include "fault/fault.hpp"
#include "netcore/ipv6.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"
#include "test_topology.hpp"
#include "v6/dns64.hpp"
#include "v6/translator.hpp"

namespace cgn {
namespace {

using netcore::Ipv4Address;
using netcore::Ipv6Address;
using netcore::Ipv6Prefix;

// --- RFC 6052 pref64 embed/extract -----------------------------------------

TEST(Pref64, RoundTripsEveryRfc6052Length) {
  const Ipv4Address samples[] = {Ipv4Address{0, 0, 0, 0},
                                 Ipv4Address{192, 0, 2, 33},
                                 Ipv4Address{255, 255, 255, 255}};
  for (int len : netcore::kPref64Lengths) {
    const Ipv6Prefix pref(Ipv6Address::parse("2001:db8::"), len);
    for (const Ipv4Address v4 : samples) {
      const Ipv6Address embedded = netcore::pref64_embed(pref, v4);
      EXPECT_TRUE(pref.contains(embedded)) << "/" << len;
      const auto back = netcore::pref64_extract(pref, embedded);
      ASSERT_TRUE(back.has_value()) << "/" << len;
      EXPECT_EQ(*back, v4) << "/" << len;
      // RFC 6052 §2.2: the u octet (byte 8) stays zero in the suffix.
      if (len < 96) EXPECT_EQ(embedded.byte(8), 0) << "/" << len;
    }
  }
}

TEST(Pref64, WellKnownPrefixMatchesRfc6052Example) {
  // 192.0.2.33 inside 64:ff9b::/96 is the RFC's worked example.
  const Ipv6Address a = netcore::pref64_embed(netcore::well_known_pref64(),
                                              Ipv4Address{192, 0, 2, 33});
  EXPECT_EQ(a, Ipv6Address::parse("64:ff9b::c000:221"));
}

TEST(Pref64, ExtractRejectsNonZeroUOctetAndForeignAddresses) {
  for (int len : netcore::kPref64Lengths) {
    const Ipv6Prefix pref(Ipv6Address::parse("2001:db8::"), len);
    const Ipv6Address good =
        netcore::pref64_embed(pref, Ipv4Address{192, 0, 2, 33});
    // Corrupt the u octet: for /96 this moves the address out of the
    // prefix, for shorter lengths it violates the reserved-bits rule —
    // either way extraction must refuse.
    EXPECT_FALSE(
        netcore::pref64_extract(pref, good.with_byte(8, 0x5a)).has_value())
        << "/" << len;
    // An address outside the prefix never extracts.
    EXPECT_FALSE(
        netcore::pref64_extract(pref, Ipv6Address::parse("2001:db9::1"))
            .has_value())
        << "/" << len;
  }
  // Non-RFC 6052 prefix lengths are invalid outright.
  EXPECT_FALSE(netcore::pref64_extract(
                   Ipv6Prefix(Ipv6Address::parse("2001:db8::"), 72),
                   Ipv6Address::parse("2001:db8::1"))
                   .has_value());
}

// --- DNS64 ------------------------------------------------------------------

TEST(Dns64, SynthesizesOnlyForV4OnlyHosts) {
  const Ipv6Prefix pref = netcore::well_known_pref64();
  v6::Dns64Resolver dns(pref);
  const Ipv4Address dual{16, 0, 0, 1};
  const Ipv6Address native = Ipv6Address::parse("2001:db8:cafe::1");
  dns.add_native_aaaa(dual, native);

  // Dual-stack host: the native AAAA comes back verbatim, unsynthesized.
  const auto a = dns.resolve_aaaa(dual);
  EXPECT_EQ(a.aaaa, native);
  EXPECT_FALSE(a.synthesized);
  EXPECT_FALSE(pref.contains(a.aaaa));

  // v4-only host: synthesized into the pref64, extractable back.
  const Ipv4Address v4only{16, 0, 0, 2};
  const auto b = dns.resolve_aaaa(v4only);
  EXPECT_TRUE(b.synthesized);
  EXPECT_TRUE(pref.contains(b.aaaa));
  EXPECT_EQ(netcore::pref64_extract(pref, b.aaaa), v4only);

  EXPECT_EQ(dns.queries(), 2u);
  EXPECT_EQ(dns.synthesized(), 1u);
}

TEST(Dns64, DiscoverPref64FindsEveryRfc6052Length) {
  for (int len : netcore::kPref64Lengths) {
    const Ipv6Prefix pref(Ipv6Address::parse("2001:db8::"), len);
    const auto found = v6::discover_pref64(v6::Dns64Resolver(pref));
    ASSERT_TRUE(found.has_value()) << "/" << len;
    EXPECT_EQ(*found, pref) << "/" << len;
  }
}

TEST(Dns64, DiscoverReturnsNulloptWithoutDns64OnPath) {
  // A resolver that answers the IPv4-only anchors natively is not a DNS64
  // (this models a plain resolver on a v4 or DS-Lite line).
  v6::Dns64Resolver dns(netcore::well_known_pref64());
  dns.add_native_aaaa(v6::kIpv4OnlyAnchorA,
                      Ipv6Address::parse("2001:db8::aa"));
  dns.add_native_aaaa(v6::kIpv4OnlyAnchorB,
                      Ipv6Address::parse("2001:db8::ab"));
  EXPECT_FALSE(v6::discover_pref64(dns).has_value());
}

// --- NAT64 / 464XLAT data plane --------------------------------------------

TEST(Nat64, ClatLineCompletesEchoRoundTrip) {
  test::MiniNet world;
  world.ensure_nat64(netcore::well_known_pref64());
  auto line = world.add_nat64_line(/*with_clat=*/true);

  const netcore::Endpoint dev{line.device_address, 4000};
  const netcore::Endpoint srv{world.server_address, 5000};
  int echoed = 0;
  world.net.set_receiver(world.server_host,
                         [&](sim::Network& net, const sim::Packet& p) {
                           EXPECT_FALSE(p.v6.present)
                               << "overlay must not leak past the NAT64";
                           net.send(sim::Packet::udp(srv, p.src),
                                    world.server_host);
                         });
  line.demux->bind(dev.port, [&](sim::Network&, const sim::Packet& p) {
    EXPECT_EQ(p.dst.address, line.device_address);
    ++echoed;
  });

  world.net.send(sim::Packet::udp(dev, srv), line.device);
  EXPECT_EQ(echoed, 1);
  EXPECT_EQ(world.nat64->v6_stats().out_translated, 1u);
  EXPECT_EQ(world.nat64->v6_stats().in_translated, 1u);
  EXPECT_EQ(world.nat64->core().active_mappings(0.0), 1u);
}

TEST(Nat64, BareV6LineDropsUnresolvedLiteralsUntilDnsTeachesIt) {
  test::MiniNet world;
  world.ensure_nat64(netcore::well_known_pref64());
  auto line = world.add_nat64_line(/*with_clat=*/false);

  const netcore::Endpoint dev{line.device_address, 4000};
  const netcore::Endpoint srv{world.server_address, 5000};
  int echoed = 0;
  world.net.set_receiver(world.server_host,
                         [&](sim::Network& net, const sim::Packet& p) {
                           net.send(sim::Packet::udp(srv, p.src),
                                    world.server_host);
                         });
  line.demux->bind(dev.port,
                   [&](sim::Network&, const sim::Packet&) { ++echoed; });

  // A raw v4 literal has no AAAA: it must die in the host stack — the
  // Big-NAT battery's NAT64-vs-464XLAT discriminator.
  world.net.send(sim::Packet::udp(dev, srv), line.device);
  EXPECT_EQ(echoed, 0);
  ASSERT_NE(line.stack, nullptr);
  EXPECT_EQ(line.stack->stats().drop_unresolved_literal, 1u);

  // After a DNS64 answer the same destination works end to end.
  line.stack->note_resolved(
      world.server_address,
      netcore::pref64_embed(world.nat64->pref64(), world.server_address));
  world.net.send(sim::Packet::udp(dev, srv), line.device);
  EXPECT_EQ(echoed, 1);
}

// --- DS-Lite ---------------------------------------------------------------

TEST(DsLite, TwoB4sShareTheSameInnerAddress) {
  // The paper-era pathology DS-Lite was built for: every home reuses the
  // same RFC 1918 inner space. Two softwires with inner 10.0.0.1 must get
  // independent NAT state and correctly routed replies.
  test::MiniNet world;
  world.ensure_aftr();
  const Ipv4Address inner{10, 0, 0, 1};
  auto a = world.add_dslite_line(inner);
  auto b = world.add_dslite_line(inner);
  ASSERT_NE(a.device_v6, b.device_v6);
  ASSERT_NE(a.underlay, b.underlay);

  const netcore::Endpoint srv{world.server_address, 5000};
  std::vector<netcore::Endpoint> seen;
  world.net.set_receiver(world.server_host,
                         [&](sim::Network& net, const sim::Packet& p) {
                           seen.push_back(p.src);
                           net.send(sim::Packet::udp(srv, p.src),
                                    world.server_host);
                         });
  int echoed_a = 0, echoed_b = 0;
  a.demux->bind(4000, [&](sim::Network&, const sim::Packet& p) {
    EXPECT_EQ(p.dst.address, inner);
    ++echoed_a;
  });
  b.demux->bind(4000, [&](sim::Network&, const sim::Packet& p) {
    EXPECT_EQ(p.dst.address, inner);
    ++echoed_b;
  });

  world.net.send(sim::Packet::udp({inner, 4000}, srv), a.device);
  world.net.send(sim::Packet::udp({inner, 4000}, srv), b.device);

  // Both homes completed a round trip; the AFTR kept one handle per
  // (softwire, inner) pair and the server saw two distinct public sources.
  EXPECT_EQ(echoed_a, 1);
  EXPECT_EQ(echoed_b, 1);
  EXPECT_EQ(world.aftr->handle_count(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_EQ(world.aftr->core().active_mappings(0.0), 2u);
}

// --- Fault hooks ------------------------------------------------------------

TEST(Nat64, ScheduledRestartFlushesTranslatorState) {
  // The fault plan's NAT restarts must bite the NAT64 exactly like a
  // NAT444 CGN: the embedded core flushes its binding table at the period
  // boundary, and traffic re-establishes from empty afterwards.
  test::MiniNet world;
  world.ensure_nat64(netcore::well_known_pref64());
  auto line = world.add_nat64_line(/*with_clat=*/true);

  fault::NatFaults faults;
  faults.restart_period_s = 100.0;
  world.nat64->set_fault_profile(faults, /*restart_phase_s=*/0.0,
                                 /*pressure_phase_s=*/0.0);

  const netcore::Endpoint dev{line.device_address, 4000};
  const netcore::Endpoint srv{world.server_address, 5000};
  int echoed = 0;
  world.net.set_receiver(world.server_host,
                         [&](sim::Network& net, const sim::Packet& p) {
                           net.send(sim::Packet::udp(srv, p.src),
                                    world.server_host);
                         });
  line.demux->bind(dev.port,
                   [&](sim::Network&, const sim::Packet&) { ++echoed; });

  world.net.send(sim::Packet::udp(dev, srv), line.device);
  ASSERT_EQ(echoed, 1);
  ASSERT_EQ(world.nat64->core().active_mappings(world.clock.now()), 1u);

  // Crossing the restart boundary reboots the translator lazily.
  world.clock.advance(150.0);
  world.net.send(sim::Packet::udp(dev, srv), line.device);
  EXPECT_EQ(echoed, 2);
  EXPECT_EQ(world.nat64->core().stats().restarts, 1u);
  EXPECT_GE(world.nat64->core().stats().restart_flushed_mappings, 1u);
  EXPECT_EQ(world.nat64->core().active_mappings(world.clock.now()), 1u);
}

// --- Transition classifier --------------------------------------------------

netalyzr::SessionResult battery_session(netcore::Asn asn, Ipv4Address dev,
                                        bool pref64, bool literal_ok) {
  netalyzr::SessionResult s;
  s.asn = asn;
  s.ip_dev = dev;
  s.ip_pub = Ipv4Address{16, 9, 9, 9};
  s.transition.emplace();
  s.transition->pref64_detected = pref64;
  s.transition->literal_v4_ok = literal_ok;
  return s;
}

TEST(TransitionClassifier, SeparatesAllFourMechanisms) {
  using analysis::TransitionVerdict;
  std::vector<netalyzr::SessionResult> sessions;
  // AS 1: NAT64 + 464XLAT (pref64 on path; the literal probe splits them).
  for (int i = 0; i < 3; ++i) {
    auto s = battery_session(1, Ipv4Address{169, 254, 0, 1}, true, false);
    s.line_mode = nat::TranslatorMode::nat64;
    sessions.push_back(s);
    auto c = battery_session(1, Ipv4Address{192, 0, 0, 1}, true, true);
    c.line_mode = nat::TranslatorMode::nat64;
    c.line_clat = true;
    sessions.push_back(c);
  }
  // AS 2: DS-Lite — one identical RFC 1918 ip_dev, UPnP silent, ip_pub
  // translated.
  for (int i = 0; i < 4; ++i) {
    auto s = battery_session(2, Ipv4Address{192, 168, 1, 2}, false, true);
    s.line_mode = nat::TranslatorMode::dslite_aftr;
    sessions.push_back(s);
  }
  // AS 3: NAT444 behind varied home CPEs, some answering UPnP.
  for (int i = 0; i < 4; ++i) {
    auto s = battery_session(
        3, Ipv4Address(Ipv4Address{192, 168, 0, 2}.value() +
                       static_cast<std::uint32_t>(i) * 256),
        false, true);
    if (i % 2 == 0) s.ip_cpe = Ipv4Address{10, 0, 0, 7};
    sessions.push_back(s);
  }

  const auto r = analysis::TransitionDetector().analyze(sessions);
  EXPECT_EQ(r.observed_sessions, 14u);
  EXPECT_EQ(r.scored_ases, 3u);
  for (int i = 0; i < analysis::kTransitionVerdicts; ++i) {
    const auto v = static_cast<TransitionVerdict>(i);
    EXPECT_DOUBLE_EQ(r.of(v).accuracy(), 1.0) << analysis::to_string(v);
  }
  EXPECT_EQ(r.of(TransitionVerdict::nat64).truth_sessions, 3u);
  EXPECT_EQ(r.of(TransitionVerdict::xlat464).truth_sessions, 3u);
  EXPECT_EQ(r.of(TransitionVerdict::dslite).truth_sessions, 4u);
  EXPECT_EQ(r.of(TransitionVerdict::nat444).truth_sessions, 4u);
}

TEST(TransitionClassifier, UpnpAnswerVetoesTheDslitVerdict) {
  // Same dominant ip_dev, but the homes answer UPnP: that's a fleet of
  // identical home CPEs (NAT444), not B4s.
  std::vector<netalyzr::SessionResult> sessions;
  for (int i = 0; i < 4; ++i) {
    auto s = battery_session(7, Ipv4Address{192, 168, 1, 2}, false, true);
    s.ip_cpe = Ipv4Address{10, 0, 0, 7};
    sessions.push_back(s);
  }
  const auto r = analysis::TransitionDetector().analyze(sessions);
  EXPECT_EQ(r.of(analysis::TransitionVerdict::dslite).classified_sessions,
            0u);
  EXPECT_EQ(r.of(analysis::TransitionVerdict::nat444).classified_sessions,
            4u);
}

// --- Campaign determinism ----------------------------------------------------

scenario::InternetConfig tiny_v6_config() {
  scenario::InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  cfg.v6.enabled = true;
  return cfg;
}

struct V6Run {
  std::uint64_t fingerprint = 0;
  std::size_t sessions = 0;
  std::size_t battery = 0;
  double final_time = 0.0;
  super::CampaignReport report;
};

V6Run run_v6_campaign(const scenario::InternetConfig& world,
                      std::size_t threads,
                      const super::SupervisorConfig& supervise = {}) {
  auto internet = scenario::build_internet(world);
  scenario::NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.4;
  cfg.transition_battery = true;
  cfg.threads = threads;
  cfg.supervise = supervise;
  V6Run run;
  const auto sessions =
      scenario::run_netalyzr_campaign(*internet, cfg, &run.report);
  run.fingerprint = netalyzr::fingerprint(sessions);
  run.sessions = sessions.size();
  for (const auto& s : sessions) run.battery += s.transition ? 1 : 0;
  run.final_time = internet->clock.now();
  return run;
}

TEST(V6Campaign, TransitionWorldExercisesEveryMechanism) {
  auto internet = scenario::build_internet(tiny_v6_config());
  std::size_t nat64_ases = 0, dslite_ases = 0;
  for (const auto& isp : internet->isps) {
    nat64_ases += isp.transition == nat::TranslatorMode::nat64 ? 1 : 0;
    dslite_ases +=
        isp.transition == nat::TranslatorMode::dslite_aftr ? 1 : 0;
    // Ground truth registered for every instrumented AS.
    EXPECT_EQ(internet->truth_transition(isp.asn), isp.transition);
    if (isp.transition == nat::TranslatorMode::nat64) {
      ASSERT_NE(isp.nat64, nullptr);
      EXPECT_EQ(isp.cgn, &isp.nat64->core());
      EXPECT_TRUE(
          netcore::is_valid_pref64_length(isp.nat64->pref64().length()));
    }
    if (isp.transition == nat::TranslatorMode::dslite_aftr) {
      ASSERT_NE(isp.aftr, nullptr);
      EXPECT_EQ(isp.cgn, &isp.aftr->core());
    }
  }
  EXPECT_GE(nat64_ases, 1u);
  EXPECT_GE(dslite_ases, 1u);
}

TEST(V6Campaign, BatteryResultsAreThreadCountInvariant) {
  const V6Run serial = run_v6_campaign(tiny_v6_config(), 1);
  ASSERT_GT(serial.sessions, 50u);
  ASSERT_GT(serial.battery, 50u);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const V6Run parallel = run_v6_campaign(tiny_v6_config(), threads);
    EXPECT_EQ(parallel.sessions, serial.sessions) << threads << " workers";
    EXPECT_EQ(parallel.battery, serial.battery) << threads << " workers";
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint)
        << threads << " workers diverged in a v6-transition world";
    EXPECT_EQ(parallel.final_time, serial.final_time) << threads;
  }
}

TEST(V6Campaign, KillResumeIsByteIdentical) {
  const scenario::InternetConfig world = tiny_v6_config();
  const V6Run uninterrupted = run_v6_campaign(world, 2);
  ASSERT_GT(uninterrupted.battery, 50u);

  super::SupervisorConfig ckpt;
  ckpt.checkpoint_path = ::testing::TempDir() + "cgn_v6_resume.ckpt";
  std::remove(ckpt.checkpoint_path.c_str());

  super::SupervisorConfig kill = ckpt;
  kill.abort_after_shards = uninterrupted.report.planned() / 2;
  ASSERT_GT(kill.abort_after_shards, 0u);
  EXPECT_THROW((void)run_v6_campaign(world, 2, kill),
               super::CampaignAborted);

  // The resumed campaign restores checkpointed shards — including their
  // serialized battery observations and ground-truth line stamps (codec
  // v2) — and must reproduce the uninterrupted run byte for byte.
  const V6Run resumed = run_v6_campaign(world, 2, ckpt);
  EXPECT_GE(resumed.report.count(super::ShardStatus::resumed), 1u);
  EXPECT_EQ(resumed.sessions, uninterrupted.sessions);
  EXPECT_EQ(resumed.battery, uninterrupted.battery);
  EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint)
      << "kill→resume diverged in a v6-transition world";
}

TEST(V6Campaign, StormyFaultPlanFlushesNat64StateDeterministically) {
  // NAT restarts in the fault plan must reach the translator cores (the
  // wiring goes through the same set_fault_profile as NAT444) and the
  // stormy run must stay worker-count invariant.
  scenario::InternetConfig cfg = tiny_v6_config();
  cfg.fault_plan.link.loss_rate = 0.02;
  cfg.fault_plan.nat.restart_period_s = 600.0;

  auto internet = scenario::build_internet(cfg);
  scenario::NetalyzrCampaignConfig ccfg;
  ccfg.enum_fraction = 0.4;
  ccfg.transition_battery = true;
  ccfg.threads = 1;
  const auto sessions = scenario::run_netalyzr_campaign(*internet, ccfg);
  ASSERT_GT(sessions.size(), 50u);
  std::uint64_t restarts = 0, translator_restarts = 0;
  for (const auto& isp : internet->isps) {
    if (!isp.cgn) continue;
    restarts += isp.cgn->stats().restarts;
    if (isp.transition != nat::TranslatorMode::nat44)
      translator_restarts += isp.cgn->stats().restarts;
  }
  EXPECT_GT(restarts, 0u) << "restart faults never fired on any NAT core";
  EXPECT_GT(translator_restarts, 0u)
      << "restart faults never reached a NAT64/AFTR core";

  const V6Run s1 = [&] {
    V6Run r;
    r.fingerprint = netalyzr::fingerprint(sessions);
    r.sessions = sessions.size();
    return r;
  }();
  const V6Run s4 = run_v6_campaign(cfg, 4);
  EXPECT_EQ(s4.sessions, s1.sessions);
  EXPECT_EQ(s4.fingerprint, s1.fingerprint)
      << "stormy v6 campaign diverged between 1 and 4 workers";
}

}  // namespace
}  // namespace cgn
