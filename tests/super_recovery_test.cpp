// Kill → resume differential tests over the real campaign drivers: a
// campaign aborted mid-flight and resumed from its checkpoint must produce
// byte-identical results to an uninterrupted run, for any worker count,
// with or without an active fault plan. This is the CI `recovery` stage
// (scripts/check.sh runs ctest -R 'SuperRecovery').
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "netalyzr/session.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::scenario {
namespace {

InternetConfig tiny_config() {
  InternetConfig cfg;
  cfg.seed = 11;
  cfg.routed_ases = 240;
  cfg.pbl_eyeballs = 46;
  cfg.apnic_eyeballs = 50;
  cfg.cellular_ases = 8;
  cfg.nz_eyeball_coverage = 0.6;
  cfg.nz_sessions_lo = 6;
  cfg.nz_sessions_hi = 14;
  return cfg;
}

/// The storm every resilient pipeline must shrug off: packet faults plus
/// crashing campaign workers.
fault::FaultPlan stormy_crashy_plan() {
  fault::FaultPlan plan;
  plan.link.loss_rate = 0.02;
  plan.link.duplication_rate = 0.01;
  plan.peers.unresponsive_fraction = 0.10;
  plan.shards.crash_rate = 0.25;
  return plan;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgn_recovery_" + name;
  std::remove(path.c_str());
  return path;
}

struct NetalyzrRun {
  std::uint64_t fingerprint = 0;
  std::size_t sessions = 0;
  double final_time = 0.0;
  super::CampaignReport report;
};

NetalyzrRun run_netalyzr(const InternetConfig& world,
                         const super::SupervisorConfig& supervise,
                         std::size_t threads) {
  auto internet = build_internet(world);
  NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.5;
  cfg.stun_fraction = 0.5;
  cfg.threads = threads;
  cfg.supervise = supervise;
  NetalyzrRun run;
  const auto sessions = run_netalyzr_campaign(*internet, cfg, &run.report);
  run.fingerprint = netalyzr::fingerprint(sessions);
  run.sessions = sessions.size();
  run.final_time = internet->clock.now();
  return run;
}

void expect_kill_resume_identical(const InternetConfig& world,
                                  const super::SupervisorConfig& supervise,
                                  std::size_t threads,
                                  const std::string& tag) {
  const NetalyzrRun uninterrupted = run_netalyzr(world, supervise, threads);
  ASSERT_GT(uninterrupted.sessions, 50u);

  super::SupervisorConfig ckpt = supervise;
  ckpt.checkpoint_path = temp_path(tag + ".ckpt");

  // Kill the campaign once roughly half its shards have checkpointed;
  // "process death" is modelled by discarding the whole Internet.
  super::SupervisorConfig kill = ckpt;
  kill.abort_after_shards = uninterrupted.report.planned() / 2;
  ASSERT_GT(kill.abort_after_shards, 0u);
  EXPECT_THROW((void)run_netalyzr(world, kill, threads),
               super::CampaignAborted);

  // Resume on a freshly built world: checkpointed shards restore, the
  // rest run — and every figure matches the uninterrupted run exactly.
  const NetalyzrRun resumed = run_netalyzr(world, ckpt, threads);
  EXPECT_GE(resumed.report.count(super::ShardStatus::resumed), 1u);
  EXPECT_EQ(resumed.sessions, uninterrupted.sessions);
  EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint)
      << tag << ": resumed campaign diverged from the uninterrupted run";
  EXPECT_EQ(resumed.final_time, uninterrupted.final_time);
}

TEST(SuperRecovery, NetalyzrKillResumeIsByteIdenticalSerial) {
  expect_kill_resume_identical(tiny_config(), {}, 1, "nz_serial");
}

TEST(SuperRecovery, NetalyzrKillResumeIsByteIdenticalFourWorkers) {
  expect_kill_resume_identical(tiny_config(), {}, 4, "nz_par");
}

TEST(SuperRecovery, KillResumeSurvivesAnActiveFaultPlan) {
  InternetConfig cfg = tiny_config();
  cfg.fault_plan = stormy_crashy_plan();
  super::SupervisorConfig supervise;
  supervise.max_attempts = 4;  // ride out injected worker crashes
  expect_kill_resume_identical(cfg, supervise, 1, "nz_storm_serial");
  expect_kill_resume_identical(cfg, supervise, 4, "nz_storm_par");
}

struct CrawlRun {
  std::size_t learned = 0;
  std::size_t responding = 0;
  std::size_t responding_ips = 0;
  std::uint64_t pings_sent = 0;
  double final_time = 0.0;
  super::CampaignReport report;
};

CrawlRun run_crawl(const InternetConfig& world,
                   const super::SupervisorConfig& supervise,
                   std::size_t threads) {
  auto internet = build_internet(world);
  run_bittorrent_phase(*internet);
  CrawlPhaseConfig cfg;
  cfg.threads = threads;
  cfg.supervise = supervise;
  CrawlRun run;
  auto crawler = run_crawl_phase(*internet, cfg, &run.report);
  run.learned = crawler->dataset().learned_peers();
  run.responding = crawler->dataset().responding_peers();
  run.responding_ips = crawler->dataset().responding_unique_ips();
  run.pings_sent = crawler->stats().pings_sent;
  run.final_time = internet->clock.now();
  return run;
}

TEST(SuperRecovery, CrawlPingSweepKillResumeIsByteIdentical) {
  const CrawlRun uninterrupted = run_crawl(tiny_config(), {}, 1);
  ASSERT_GT(uninterrupted.responding, 0u);

  super::SupervisorConfig ckpt;
  ckpt.checkpoint_path = temp_path("crawl.ckpt");
  super::SupervisorConfig kill = ckpt;
  kill.abort_after_shards = uninterrupted.report.planned() / 2;
  ASSERT_GT(kill.abort_after_shards, 0u);
  EXPECT_THROW((void)run_crawl(tiny_config(), kill, 1),
               super::CampaignAborted);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    // Both worker counts resume from the same checkpoint file; records
    // keyed by shard make the restore order-independent.
    const CrawlRun resumed = run_crawl(tiny_config(), ckpt, threads);
    EXPECT_GE(resumed.report.count(super::ShardStatus::resumed), 1u);
    EXPECT_EQ(resumed.learned, uninterrupted.learned) << threads;
    EXPECT_EQ(resumed.responding, uninterrupted.responding) << threads;
    EXPECT_EQ(resumed.responding_ips, uninterrupted.responding_ips)
        << threads;
    EXPECT_EQ(resumed.pings_sent, uninterrupted.pings_sent) << threads;
    EXPECT_EQ(resumed.final_time, uninterrupted.final_time) << threads;
  }
}

TEST(SuperRecovery, QuarantineDegradesCoverageInsteadOfAborting) {
  InternetConfig cfg = tiny_config();
  cfg.fault_plan.shards.crash_rate = 0.6;

  auto run = [&](std::size_t threads) {
    return run_netalyzr(cfg, {}, threads);  // single attempt: no recovery
  };
  const NetalyzrRun serial = run(1);
  // Heavy crash rate with no retry budget: the campaign still completes,
  // with the lost shards reported rather than fatal.
  EXPECT_TRUE(serial.report.degraded());
  EXPECT_GT(serial.report.count(super::ShardStatus::quarantined), 0u);
  EXPECT_LT(serial.report.coverage(), 1.0);
  EXPECT_GT(serial.report.coverage(), 0.0);
  EXPECT_GT(serial.sessions, 0u);

  const NetalyzrRun parallel = run(4);
  EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
  EXPECT_EQ(parallel.sessions, serial.sessions);
  for (std::size_t s = 0; s < serial.report.planned(); ++s)
    EXPECT_EQ(parallel.report.shards[s].status, serial.report.shards[s].status)
        << "shard " << s;
}

TEST(SuperRecovery, RetriesRecoverCrashedShardsDeterministically) {
  InternetConfig cfg = tiny_config();
  cfg.fault_plan.shards.crash_rate = 0.4;
  super::SupervisorConfig supervise;
  supervise.max_attempts = 6;

  const NetalyzrRun supervised = run_netalyzr(cfg, supervise, 1);
  EXPECT_GT(supervised.report.count(super::ShardStatus::recovered), 0u);
  EXPECT_FALSE(supervised.report.degraded());

  // A recovered campaign equals the one where nothing ever crashed: the
  // crash layer is orthogonal to the measurement itself. The no-crash
  // world keeps the same fault seed but an *inactive* plan.
  InternetConfig calm = tiny_config();
  const NetalyzrRun plain = run_netalyzr(calm, {}, 1);
  EXPECT_EQ(supervised.fingerprint, plain.fingerprint);
  EXPECT_EQ(supervised.sessions, plain.sessions);
  EXPECT_EQ(supervised.final_time, plain.final_time);
}

TEST(SuperRecovery, SupervisedCleanRunMatchesPlainRun) {
  const NetalyzrRun plain = run_netalyzr(tiny_config(), {}, 1);

  super::SupervisorConfig supervise;
  supervise.max_attempts = 3;
  supervise.checkpoint_path = temp_path("clean.ckpt");
  const NetalyzrRun supervised = run_netalyzr(tiny_config(), supervise, 1);

  EXPECT_EQ(supervised.fingerprint, plain.fingerprint);
  EXPECT_EQ(supervised.sessions, plain.sessions);
  EXPECT_EQ(supervised.final_time, plain.final_time);
  EXPECT_EQ(supervised.report.count(super::ShardStatus::completed),
            supervised.report.planned());
}

}  // namespace
}  // namespace cgn::scenario
