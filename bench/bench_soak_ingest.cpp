// bench_soak_ingest — paced long-soak harness for the push-ingestion path.
//
// Runs the deterministic campaign once, captures its event stream, and then
// spends a configurable wall-clock budget (CGN_SOAK_DURATION_S) pushing
// that stream into a live observatory over the real ingest socket, one
// campaign channel per cycle. Odd cycles inject a deterministic mid-frame
// disconnect and reconnect-resume from the server's cursor. After every
// cycle the channel's figure sets must compare equal to the ground truth an
// in-process observatory computed from the same capture — the byte-identity
// contract under sockets, faults and kills. A final overload leg freezes
// the drain thread and pushes with the shed policy, asserting that every
// accepted event is either ingested or counted shed (bounded queue, fully
// accounted degradation).
//
// Knobs: CGN_SOAK_DURATION_S (default 10), CGN_SOAK_PACE_US (default 0),
// CGN_SOAK_QUEUE (default 1024) plus the usual CGN_BENCH_* / CGN_FAULT_* /
// CGN_THREADS world knobs. Serves /metrics etc. while soaking and prints
// the daemon's announce line so scrapers can attach. Exits nonzero on any
// figure mismatch or accounting violation.
#include <chrono>
#include <thread>

#include "bench/common.hpp"
#include "observatory/ingest.hpp"
#include "observatory/observatory.hpp"
#include "observatory/stream_driver.hpp"

namespace {

using namespace cgn;

/// Records the driver's stream verbatim (events arrive with their final
/// virtual times) so it can be replayed any number of times.
struct CapturingSink : observatory::EventSink {
  std::vector<observatory::StreamEvent> events;
  std::uint64_t announced = 0;
  bool done = false;
  std::vector<std::pair<std::string, super::CampaignReport>> reports;

  void add_stream_total(std::uint64_t n) override { announced += n; }
  void ingest(const observatory::StreamEvent& e) override {
    events.push_back(e);
  }
  void note_stream_done() override { done = true; }
  void note_campaign_report(const std::string& kind,
                            const super::CampaignReport& report) override {
    reports.emplace_back(kind, report);
  }
};

/// Pushes the captured stream through one client connection. `full` also
/// sends the reports and the done frame (done blocks until the server
/// drained the campaign — the overload leg must skip it, and reports, to
/// keep the frozen queue exactly event-shaped).
void feed(observatory::PushClient& client, const CapturingSink& capture,
          int pace_us, bool full) {
  client.add_stream_total(capture.announced);
  for (const observatory::StreamEvent& e : capture.events) {
    client.ingest(e);
    if (pace_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
  }
  if (!full) return;
  for (const auto& [kind, report] : capture.reports)
    client.note_campaign_report(kind, report);
  client.note_stream_done();
}

}  // namespace

int main() {
  bench::print_header("soak_ingest",
                      "push-ingestion soak: figure convergence under "
                      "disconnects, resume and overload");

  observatory::StreamDriverConfig driver_cfg;
  driver_cfg.world = bench::scaled_config();
  driver_cfg.crawl.crawl.retry = bench::retry_policy_from_env();
  driver_cfg.crawl.supervise =
      bench::supervisor_config_from_env("crawl_ping");
  driver_cfg.netalyzr.retry = bench::retry_policy_from_env();
  driver_cfg.netalyzr.transition_battery = driver_cfg.world.v6.enabled;
  driver_cfg.netalyzr.supervise =
      bench::supervisor_config_from_env("netalyzr");

  observatory::StreamDriver driver(driver_cfg);
  CapturingSink capture;
  driver.run(capture);
  std::printf("soak: captured %zu events (announced %llu)\n",
              capture.events.size(),
              static_cast<unsigned long long>(capture.announced));

  // Ground truth: an in-process observatory over the same capture. Scoped
  // so its registry probes are gone before the live one registers its own.
  std::map<std::string, bench::Figures> truth;
  {
    observatory::Observatory truth_obs(driver.routes(), driver.registry());
    truth_obs.add_stream_total(capture.announced);
    for (const observatory::StreamEvent& e : capture.events)
      truth_obs.ingest(e);
    for (const auto& [kind, report] : capture.reports)
      truth_obs.note_campaign_report(kind, report);
    truth_obs.note_stream_done();
    truth = truth_obs.figure_sets();
  }

  observatory::Observatory live(driver.routes(), driver.registry());
  observatory::IngestConfig ingest_cfg;
  ingest_cfg.queue_capacity =
      static_cast<std::size_t>(bench::env_u64("CGN_SOAK_QUEUE", 1024));
  std::string error;
  if (!live.serve(0, &error) || !live.serve_ingest(0, ingest_cfg, &error)) {
    std::fprintf(stderr, "soak: cannot serve: %s\n", error.c_str());
    return 2;
  }
  // Same announce shape as cgn_observatoryd, so obs_scrape.py can attach.
  std::printf("observatory: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(live.port()));
  std::printf("observatory: ingest on 127.0.0.1:%u\n",
              static_cast<unsigned>(live.ingest_port()));
  std::fflush(stdout);

  const double duration_s = bench::env_double("CGN_SOAK_DURATION_S", 10.0);
  const int pace_us =
      static_cast<int>(bench::env_u64("CGN_SOAK_PACE_US", 0));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);

  observatory::PushClientConfig base_cfg;
  base_cfg.port = live.ingest_port();
  base_cfg.world_seed = driver_cfg.world.seed;
  base_cfg.plan_hash = driver_cfg.world.fault_plan.hash();

  std::uint64_t cycles = 0;
  std::uint64_t matches = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t events_total = 0;
  std::uint64_t reconnects = 0;
  do {
    const std::string campaign = "soak_" + std::to_string(cycles);
    observatory::PushClientConfig cfg = base_cfg;
    cfg.campaign = campaign;
    if (cycles % 2 == 1) {
      // Deterministic mid-stream hard disconnect, at a cycle-varied byte
      // offset so it lands inside different frames across the soak.
      cfg.faults.disconnect_after_bytes =
          16384 + (cycles % 7) * 8192;
    }
    bool pushed = false;
    try {
      observatory::PushClient client(cfg);
      client.connect();
      feed(client, capture, pace_us, true);
      pushed = true;
    } catch (const observatory::IngestError&) {
      // Expected on fault cycles: reconnect clean and resume.
    }
    if (!pushed) {
      ++reconnects;
      observatory::PushClientConfig clean = base_cfg;
      clean.campaign = campaign;
      try {
        observatory::PushClient client(clean);
        client.connect();
        feed(client, capture, pace_us, true);
      } catch (const observatory::IngestError& e) {
        std::fprintf(stderr, "soak: cycle %llu resume failed: %s\n",
                     static_cast<unsigned long long>(cycles), e.what());
        return 1;
      }
    }
    events_total += capture.events.size();

    if (live.figure_sets(campaign) == truth) {
      ++matches;
    } else {
      ++mismatches;
      std::fprintf(stderr, "soak: cycle %llu figures diverged from truth\n",
                   static_cast<unsigned long long>(cycles));
    }
    live.drop_campaign(campaign);
    ++cycles;
  } while (std::chrono::steady_clock::now() < deadline);

  // Overload leg: freeze the drain, push with shed policy, and require
  // every accepted event to be enqueued or shed — nothing unaccounted,
  // queue never above capacity.
  observatory::IngestServer* server = live.ingest_server();
  const observatory::IngestStats before = server->stats();
  server->set_drain_paused(true);
  bool overload_ok = true;
  {
    observatory::PushClientConfig cfg = base_cfg;
    cfg.campaign = "overload";
    cfg.policy = observatory::IngestOverloadPolicy::shed;
    try {
      observatory::PushClient client(cfg);
      client.connect();
      // Events only: done would (correctly) block while the drain sleeps.
      feed(client, capture, 0, false);
    } catch (const observatory::IngestError& e) {
      std::fprintf(stderr, "soak: overload push failed: %s\n", e.what());
      overload_ok = false;
    }
  }
  // feed() returns once the bytes are in the kernel buffer; wait for the
  // server's connection thread to consume them before taking the snapshot.
  {
    const auto settle = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
    while (overload_ok &&
           server->cursor("overload") < capture.events.size() &&
           std::chrono::steady_clock::now() < settle)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  observatory::IngestStats after = server->stats();
  const std::uint64_t accepted = server->cursor("overload");
  const std::uint64_t enqueued = after.events_enqueued - before.events_enqueued;
  const std::uint64_t shed = after.shed_total - before.shed_total;
  if (accepted != enqueued + shed) {
    std::fprintf(stderr,
                 "soak: overload accounting broken: accepted %llu != "
                 "enqueued %llu + shed %llu\n",
                 static_cast<unsigned long long>(accepted),
                 static_cast<unsigned long long>(enqueued),
                 static_cast<unsigned long long>(shed));
    overload_ok = false;
  }
  if (after.queue_depth > ingest_cfg.queue_capacity) {
    std::fprintf(stderr, "soak: queue exceeded capacity (%llu > %zu)\n",
                 static_cast<unsigned long long>(after.queue_depth),
                 ingest_cfg.queue_capacity);
    overload_ok = false;
  }
  server->set_drain_paused(false);
  // Let the drain finish so the final stats describe a quiescent server.
  while (server->stats().events_ingested <
         server->stats().events_enqueued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  after = server->stats();
  live.drop_campaign("overload");

  std::printf(
      "soak: %llu cycles (%llu matches, %llu mismatches, %llu reconnects), "
      "overload shed %llu, max queue depth %llu\n",
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(matches),
      static_cast<unsigned long long>(mismatches),
      static_cast<unsigned long long>(reconnects),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(after.max_queue_depth));

  bench::Figures figs;
  figs.emplace_back("ingest_cycles", static_cast<double>(cycles));
  figs.emplace_back("ingest_events_total", static_cast<double>(events_total));
  figs.emplace_back("ingest_figure_matches", static_cast<double>(matches));
  figs.emplace_back("ingest_figure_mismatches",
                    static_cast<double>(mismatches));
  figs.emplace_back("ingest_reconnects", static_cast<double>(reconnects));
  figs.emplace_back("ingest_shed_total", static_cast<double>(after.shed_total));
  figs.emplace_back("ingest_rejected_total",
                    static_cast<double>(after.rejected_total()));
  figs.emplace_back("ingest_parks", static_cast<double>(after.parks));
  figs.emplace_back("ingest_max_lag",
                    static_cast<double>(after.max_queue_depth));
  figs.emplace_back("ingest_queue_capacity",
                    static_cast<double>(ingest_cfg.queue_capacity));
  bench::write_bench_json("soak_ingest", figs);

  return (mismatches == 0 && overload_ok) ? 0 : 1;
}
