// Figure 5 — Netalyzr CGN-candidate ASes: sessions with IPcpe != IPpub vs
// unique /24s of IPcpe, per reserved range, with the 0.4*N diversity cutoff.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 5", "Netalyzr candidate sessions vs /24 diversity");

  bench::World world;
  const auto& nz = world.nz_result();

  static const char* names[] = {"192X", "172X", "10X", "100X"};
  for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
    std::vector<report::ScatterPoint> points;
    for (const auto& [asn, v] : nz.per_as) {
      if (v.cellular) continue;
      const auto& p = v.fig5[static_cast<std::size_t>(r)];
      if (p.candidate_sessions == 0) continue;
      points.push_back({static_cast<double>(p.candidate_sessions),
                        static_cast<double>(p.unique_slash24)});
    }
    std::cout << names[r] << " — " << points.size() << " candidate ASes\n"
              << "  x: sessions with IPcpe != IPpub, y: unique /24s of "
                 "IPcpe\n"
              << "  (detection: N >= 10 sessions and >= 0.4*N unique /24s)\n";
    report::scatter_loglog(std::cout, points, 10, 4, 56, 12);
    std::cout << "\n";
  }

  // Figure extraction is shared with the observatory's /figures endpoint
  // (analysis/figures.cpp) so both paths emit identical bytes.
  const analysis::Figures figures = analysis::fig05_figures(nz);
  const auto covered = static_cast<std::size_t>(figures[0].second);
  const auto positive = static_cast<std::size_t>(figures[1].second);
  std::cout << "Non-cellular ASes covered: " << covered
            << ", CGN-positive: " << positive << " ("
            << report::pct(covered ? static_cast<double>(positive) / covered
                                   : 0)
            << ") [paper: ~15% of covered ASes]\n"
            << "Shape: 192X is sparsely used by CGNs; candidate ASes with\n"
               "high /24 diversity cluster in 10X/100X above the cutoff.\n";

  bench::write_bench_json("fig05_netalyzr_candidates", figures);
  return 0;
}
