// Ablation — measurement resilience under injected faults.
//
// The paper's pipelines ran on the live Internet, where probes vanish and
// middleboxes reboot; the published detection counts already embody the
// real tools' retransmission logic. This ablation quantifies that
// dependency in simulation: sweep per-hop loss (0/1/5/10%) with the
// retry/backoff policy off and on, plus a CGN restart-frequency sweep, and
// report each pipeline's detection recall against the clean run's positive
// set. The headline: at 5% loss the fire-once pipelines lose detections
// that the 3-attempt policy recovers.
#include <cstdio>
#include <iostream>
#include <set>

#include "bench/common.hpp"

namespace {

struct Cell {
  std::set<cgn::netcore::Asn> bt_positives;
  std::set<cgn::netcore::Asn> nz_positives;
  // Continuous probe-level measures: per-AS detection flips only at the
  // 5×5-rule margins, so at bench scale it can mask substantial probe
  // attrition. These two move smoothly with loss.
  std::size_t bt_responders = 0;  ///< bt_ping responders in the crawl dataset
  std::size_t nz_flows = 0;       ///< echo flows the Netalyzr server observed
  std::uint64_t restarts = 0;
};

Cell run_cell(double loss_rate, bool retries, double restart_period_s) {
  using namespace cgn;
  scenario::InternetConfig cfg = bench::scaled_config();
  cfg.fault_plan.link.loss_rate = loss_rate;
  cfg.fault_plan.nat.restart_period_s = restart_period_s;

  obs::Counter& restart_counter = obs::counter("nat.fault_restarts");
  const std::uint64_t restarts_before = restart_counter.value();

  auto internet = scenario::build_internet(cfg);
  scenario::run_bittorrent_phase(*internet);

  scenario::CrawlPhaseConfig crawl_cfg;
  scenario::NetalyzrCampaignConfig nz_cfg;
  nz_cfg.enum_fraction = 0.0;
  nz_cfg.stun_fraction = 0.0;
  if (retries) {
    crawl_cfg.crawl.retry.attempts = 3;
    crawl_cfg.crawl.retry.base_backoff_s = 2.0;
    nz_cfg.retry = crawl_cfg.crawl.retry;
  }

  auto crawler = scenario::run_crawl_phase(*internet, crawl_cfg);
  auto bt = analysis::BtDetector().analyze(crawler->dataset(),
                                           internet->routes);
  auto sessions = scenario::run_netalyzr_campaign(*internet, nz_cfg);
  auto nz = analysis::NetalyzrDetector().analyze(sessions, internet->routes);

  Cell cell;
  for (const auto& [asn, v] : bt.per_as)
    if (v.cgn_positive) cell.bt_positives.insert(asn);
  for (const auto& [asn, v] : nz.per_as)
    if (!v.cellular && v.covered && v.cgn_positive)
      cell.nz_positives.insert(asn);
  cell.bt_responders = crawler->dataset().responding_peers();
  for (const auto& s : sessions) cell.nz_flows += s.tcp_flows.size();
  cell.restarts = restart_counter.value() - restarts_before;
  return cell;
}

double ratio(std::size_t got, std::size_t clean) {
  return clean == 0 ? 1.0
                    : static_cast<double>(got) / static_cast<double>(clean);
}

double recall(const std::set<cgn::netcore::Asn>& got,
              const std::set<cgn::netcore::Asn>& clean) {
  if (clean.empty()) return 1.0;
  std::size_t kept = 0;
  for (cgn::netcore::Asn asn : clean) kept += got.contains(asn) ? 1 : 0;
  return static_cast<double>(kept) / static_cast<double>(clean.size());
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace cgn;
  bench::print_header("Ablation", "fault injection vs detection recall");

  // The recall denominator: what each pipeline detects on a clean network
  // with retries off (the exact pre-fault pipeline).
  const Cell clean = run_cell(0.0, false, 0.0);
  std::cout << "Clean run: " << clean.bt_positives.size()
            << " BT-positive ASes, " << clean.nz_positives.size()
            << " Netalyzr-positive ASes, " << clean.bt_responders
            << " bt_ping responders, " << clean.nz_flows
            << " echo flows (recall denominators).\n\n";

  bench::Figures figures;
  figures.emplace_back("clean_bt_positives",
                       static_cast<double>(clean.bt_positives.size()));
  figures.emplace_back("clean_nz_positives",
                       static_cast<double>(clean.nz_positives.size()));
  figures.emplace_back("clean_bt_responders",
                       static_cast<double>(clean.bt_responders));
  figures.emplace_back("clean_nz_flows",
                       static_cast<double>(clean.nz_flows));

  std::cout << "(a) Per-hop loss sweep, retries off vs on (3 attempts)\n";
  report::Table loss_table({"loss", "retries", "bt recall", "nz recall",
                            "bt responders", "nz flows"});
  const double losses[] = {0.0, 0.01, 0.05, 0.10};
  double bt_ping_5pct[2] = {0, 0};
  double nz_flow_5pct[2] = {0, 0};
  for (double loss : losses) {
    for (int retries = 0; retries <= 1; ++retries) {
      const Cell cell = run_cell(loss, retries != 0, 0.0);
      const double bt_r = recall(cell.bt_positives, clean.bt_positives);
      const double nz_r = recall(cell.nz_positives, clean.nz_positives);
      const double bt_ping_r = ratio(cell.bt_responders, clean.bt_responders);
      const double nz_flow_r = ratio(cell.nz_flows, clean.nz_flows);
      loss_table.add_row({fmt(loss), retries ? "on" : "off", fmt(bt_r),
                          fmt(nz_r), fmt(bt_ping_r), fmt(nz_flow_r)});
      const std::string tag = "loss" +
                              std::to_string(static_cast<int>(loss * 100)) +
                              "_retry" + std::to_string(retries);
      figures.emplace_back("bt_recall_" + tag, bt_r);
      figures.emplace_back("nz_recall_" + tag, nz_r);
      figures.emplace_back("bt_ping_recall_" + tag, bt_ping_r);
      figures.emplace_back("nz_flow_recall_" + tag, nz_flow_r);
      if (loss == 0.05) {
        bt_ping_5pct[retries] = bt_ping_r;
        nz_flow_5pct[retries] = nz_flow_r;
      }
    }
  }
  loss_table.print(std::cout);
  std::cout << "  [recall vs the clean run's positives; responders/flows are\n"
               "   the probe-level measures whose attrition the real tools'\n"
               "   retransmissions kept out of the paper's counts]\n\n";
  figures.emplace_back("bt_retry_gain_at_5pct",
                       bt_ping_5pct[1] - bt_ping_5pct[0]);
  figures.emplace_back("nz_retry_gain_at_5pct",
                       nz_flow_5pct[1] - nz_flow_5pct[0]);

  std::cout << "(b) CGN restart-frequency sweep (clean links, retries off)\n";
  report::Table restart_table(
      {"restart period", "restarts fired", "bt recall", "nz recall"});
  for (double period : {3600.0, 900.0, 300.0}) {
    const Cell cell = run_cell(0.0, false, period);
    const double bt_r = recall(cell.bt_positives, clean.bt_positives);
    const double nz_r = recall(cell.nz_positives, clean.nz_positives);
    restart_table.add_row({fmt(period) + " s",
                           std::to_string(cell.restarts), fmt(bt_r),
                           fmt(nz_r)});
    const std::string tag =
        "restart" + std::to_string(static_cast<int>(period));
    figures.emplace_back("bt_recall_" + tag, bt_r);
    figures.emplace_back("nz_recall_" + tag, nz_r);
    figures.emplace_back("restarts_fired_" + tag,
                         static_cast<double>(cell.restarts));
  }
  restart_table.print(std::cout);
  std::cout << "  [restarts flush translation state mid-campaign: mappings\n"
               "   re-form on fresh ports, stressing both detectors'\n"
               "   address/port-diversity signals]\n";

  bench::write_bench_json("ablation_faults", figures);
  return 0;
}
