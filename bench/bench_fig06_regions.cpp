// Figure 6 — per-RIR eyeball coverage, eyeball CGN penetration and cellular
// CGN penetration.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 6", "coverage and CGN penetration per region");

  bench::World world;
  const auto& reg = world.coverage().regions;

  auto pct_of = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) /
                                static_cast<double>(den);
  };

  std::vector<std::string> labels;
  std::vector<double> covered, positive, cellular;
  for (int r = 0; r < netcore::kRirCount; ++r) {
    auto i = static_cast<std::size_t>(r);
    labels.push_back(std::string(
        netcore::to_string(static_cast<netcore::Rir>(r))));
    covered.push_back(pct_of(reg.eyeball_covered[i], reg.eyeball_total[i]));
    positive.push_back(
        pct_of(reg.eyeball_positive[i], reg.eyeball_covered[i]));
    cellular.push_back(
        pct_of(reg.cellular_positive[i], reg.cellular_covered[i]));
  }

  std::cout << "(a) % eyeball ASes covered (paper: 55-65% everywhere, no "
               "strong regional bias)\n";
  report::bar_chart(std::cout, labels, covered, 40, "%");
  std::cout << "\n(b) % covered eyeball ASes CGN-positive (paper: APNIC & "
               "RIPE > 2x others;\n    AFRINIC lowest — the only region with "
               "IPv4 left)\n";
  report::bar_chart(std::cout, labels, positive, 40, "%");
  std::cout << "\n(c) % cellular ASes CGN-positive (paper: ~100% except "
               "AFRINIC at ~2/3)\n";
  report::bar_chart(std::cout, labels, cellular, 40, "%");

  double eyeball_total = 0, eyeball_covered = 0, eyeball_positive = 0,
         cellular_cgn_positive = 0;
  for (int r = 0; r < netcore::kRirCount; ++r) {
    auto i = static_cast<std::size_t>(r);
    eyeball_total += static_cast<double>(reg.eyeball_total[i]);
    eyeball_covered += static_cast<double>(reg.eyeball_covered[i]);
    eyeball_positive += static_cast<double>(reg.eyeball_positive[i]);
    cellular_cgn_positive += static_cast<double>(reg.cellular_positive[i]);
  }
  bench::write_bench_json("fig06_regions",
                          {{"eyeball_ases", eyeball_total},
                           {"eyeball_covered", eyeball_covered},
                           {"eyeball_cgn_positive", eyeball_positive},
                           {"cellular_cgn_positive", cellular_cgn_positive}});
  return 0;
}
