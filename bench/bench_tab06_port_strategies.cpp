// Table 6 — dominant port allocation strategy per CGN AS, chunk-based
// allocation detection and per-subscriber chunk sizes; plus the §6.2
// pooling-behaviour split.
#include <iostream>

#include "analysis/port_analysis.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 6", "port allocation strategies of CGN ASes");

  bench::World world;
  (void)world.sessions();
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto ports = analysis::PortAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  auto count_total = [&](bool cellular) {
    std::size_t n = 0;
    for (const auto& [asn, p] : ports.per_as)
      if (p.cellular == cellular && p.sessions > 0) ++n;
    return n;
  };
  std::size_t n_fixed = count_total(false);
  std::size_t n_cell = count_total(true);

  report::Table table({"Port allocation strategy", "Non-cellular", "Cellular",
                       "[paper noncell/cell]"});
  auto pct_of = [](std::size_t n, std::size_t d) {
    return d == 0 ? std::string("-")
                  : report::pct(static_cast<double>(n) /
                                static_cast<double>(d));
  };
  table.add_row(
      {"Port-preservation",
       pct_of(ports.count_dominant(analysis::PortStrategy::preservation,
                                   false),
              n_fixed),
       pct_of(ports.count_dominant(analysis::PortStrategy::preservation, true),
              n_cell),
       "41.2% / 27.9%"});
  table.add_row(
      {"Sequential",
       pct_of(ports.count_dominant(analysis::PortStrategy::sequential, false),
              n_fixed),
       pct_of(ports.count_dominant(analysis::PortStrategy::sequential, true),
              n_cell),
       "22.2% / 26.0%"});
  table.add_row(
      {"Random",
       pct_of(ports.count_dominant(analysis::PortStrategy::random, false),
              n_fixed),
       pct_of(ports.count_dominant(analysis::PortStrategy::random, true),
              n_cell),
       "35.6% / 44.7%"});
  table.add_row({"Random (chunk-based)",
                 std::to_string(ports.count_chunked(false)) + " ASes",
                 std::to_string(ports.count_chunked(true)) + " ASes",
                 "9 / 8 ASes"});
  table.print(std::cout);

  // Chunk size buckets.
  std::size_t le1k = 0, le4k = 0, le16k = 0;
  std::cout << "\nChunk sizes (CS) of chunk-allocating ASes:\n";
  for (const auto& [asn, p] : ports.per_as) {
    if (!p.chunk_based) continue;
    std::cout << "  AS" << asn << ": ~" << p.chunk_size_estimate
              << " ports/subscriber => up to "
              << 65536 / std::max(1u, p.chunk_size_estimate)
              << " subscribers per public IP\n";
    if (p.chunk_size_estimate <= 1024)
      ++le1k;
    else if (p.chunk_size_estimate <= 4096)
      ++le4k;
    else
      ++le16k;
  }
  report::Table sizes({"bucket", "measured ASes", "paper"});
  sizes.add_row({"CS <= 1K", std::to_string(le1k), "6"});
  sizes.add_row({"1K < CS <= 4K", std::to_string(le4k), "5"});
  sizes.add_row({"4K < CS <= 16K", std::to_string(le16k), "6"});
  sizes.print(std::cout);

  // Pooling behaviour (§6.2 text).
  std::size_t paired = 0, arbitrary = 0;
  for (const auto& [asn, p] : ports.per_as) {
    if (p.pooling_sessions == 0) continue;
    (p.arbitrary_pooling ? arbitrary : paired)++;
  }
  std::cout << "\nNAT pooling: " << paired << " paired ASes, " << arbitrary
            << " arbitrary ("
            << report::pct(paired + arbitrary
                               ? static_cast<double>(arbitrary) /
                                     static_cast<double>(paired + arbitrary)
                               : 0)
            << ") [paper: 21% of CGN ASes use arbitrary pooling]\n";

  bench::write_bench_json(
      "tab06_port_strategies",
      {{"noncellular_ases", static_cast<double>(n_fixed)},
       {"cellular_ases", static_cast<double>(n_cell)},
       {"chunked_ases", static_cast<double>(le1k + le4k + le16k)},
       {"paired_pooling_ases", static_cast<double>(paired)},
       {"arbitrary_pooling_ases", static_cast<double>(arbitrary)}});
  return 0;
}
