// Ablation — campaign completion under worker crashes, with and without
// supervised retries.
//
// The paper's crawls ran for months and its Netalyzr corpus accumulated
// over years; at that horizon the measurement *infrastructure* fails more
// often than the network. This ablation injects shard-attempt crashes
// (fault::ShardFaults) into both campaign drivers and sweeps the crash
// rate against the supervisor's attempt budget. With one attempt a crashed
// shard is quarantined and its ASes go unmeasured — detection recall and
// measurement coverage degrade together; with a 3-attempt budget the
// supervisor re-runs crashed shards from their own substreams and recovers
// nearly all of the plan. A final "stormy" cell stacks crashes on top of
// packet loss/dup/deaf-peer faults to show the two fault layers compose.
#include <cstdio>
#include <iostream>
#include <set>

#include "bench/common.hpp"

namespace {

struct Cell {
  std::set<cgn::netcore::Asn> bt_positives;
  std::set<cgn::netcore::Asn> nz_positives;
  cgn::super::CampaignReport bt_report;
  cgn::super::CampaignReport nz_report;

  [[nodiscard]] double coverage() const {
    const std::size_t planned = bt_report.planned() + nz_report.planned();
    const std::size_t finished = bt_report.finished() + nz_report.finished();
    return planned == 0 ? 1.0
                        : static_cast<double>(finished) /
                              static_cast<double>(planned);
  }
  [[nodiscard]] std::size_t quarantined() const {
    return bt_report.count(cgn::super::ShardStatus::quarantined) +
           nz_report.count(cgn::super::ShardStatus::quarantined);
  }
  [[nodiscard]] std::size_t recovered() const {
    return bt_report.count(cgn::super::ShardStatus::recovered) +
           nz_report.count(cgn::super::ShardStatus::recovered);
  }
};

Cell run_cell(double crash_rate, int attempts, bool stormy) {
  using namespace cgn;
  scenario::InternetConfig cfg = bench::scaled_config();
  cfg.fault_plan.shards.crash_rate = crash_rate;
  if (stormy) {
    cfg.fault_plan.link.loss_rate = 0.02;
    cfg.fault_plan.link.duplication_rate = 0.01;
    cfg.fault_plan.peers.unresponsive_fraction = 0.10;
  }

  auto internet = scenario::build_internet(cfg);
  scenario::run_bittorrent_phase(*internet);

  Cell cell;
  scenario::CrawlPhaseConfig crawl_cfg;
  crawl_cfg.supervise.max_attempts = attempts;
  auto crawler =
      scenario::run_crawl_phase(*internet, crawl_cfg, &cell.bt_report);
  auto bt = analysis::BtDetector().analyze(crawler->dataset(),
                                           internet->routes);

  scenario::NetalyzrCampaignConfig nz_cfg;
  nz_cfg.enum_fraction = 0.0;
  nz_cfg.stun_fraction = 0.0;
  nz_cfg.supervise.max_attempts = attempts;
  auto sessions =
      scenario::run_netalyzr_campaign(*internet, nz_cfg, &cell.nz_report);
  auto nz = analysis::NetalyzrDetector().analyze(sessions, internet->routes);

  for (const auto& [asn, v] : bt.per_as)
    if (v.cgn_positive) cell.bt_positives.insert(asn);
  for (const auto& [asn, v] : nz.per_as)
    if (!v.cellular && v.covered && v.cgn_positive)
      cell.nz_positives.insert(asn);
  return cell;
}

double recall(const std::set<cgn::netcore::Asn>& got,
              const std::set<cgn::netcore::Asn>& clean) {
  if (clean.empty()) return 1.0;
  std::size_t kept = 0;
  for (cgn::netcore::Asn asn : clean) kept += got.contains(asn) ? 1 : 0;
  return static_cast<double>(kept) / static_cast<double>(clean.size());
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main() {
  using namespace cgn;
  bench::print_header("Ablation", "worker crashes vs campaign completion");

  // Recall denominator: no crashes, single attempt — the exact
  // pre-supervision pipeline.
  const Cell clean = run_cell(0.0, 1, false);
  std::cout << "Clean run: " << clean.bt_positives.size()
            << " BT-positive ASes, " << clean.nz_positives.size()
            << " Netalyzr-positive ASes over "
            << clean.bt_report.planned() + clean.nz_report.planned()
            << " campaign shards (recall denominators).\n\n";

  bench::Figures figures;
  figures.emplace_back("clean_bt_positives",
                       static_cast<double>(clean.bt_positives.size()));
  figures.emplace_back("clean_nz_positives",
                       static_cast<double>(clean.nz_positives.size()));
  figures.emplace_back(
      "clean_shards",
      static_cast<double>(clean.bt_report.planned() +
                          clean.nz_report.planned()));

  std::cout << "(a) Crash-rate sweep, attempt budget 1 vs 3\n";
  report::Table table({"crash rate", "attempts", "coverage", "quarantined",
                       "recovered", "bt recall", "nz recall"});
  double coverage_50pct[2] = {0, 0};
  for (double crash : {0.10, 0.30, 0.50}) {
    for (int attempts : {1, 3}) {
      const Cell cell = run_cell(crash, attempts, false);
      const double bt_r = recall(cell.bt_positives, clean.bt_positives);
      const double nz_r = recall(cell.nz_positives, clean.nz_positives);
      table.add_row({fmt(crash), std::to_string(attempts),
                     fmt(cell.coverage()), std::to_string(cell.quarantined()),
                     std::to_string(cell.recovered()), fmt(bt_r), fmt(nz_r)});
      const std::string tag = "crash" +
                              std::to_string(static_cast<int>(crash * 100)) +
                              "_att" + std::to_string(attempts);
      figures.emplace_back("coverage_" + tag, cell.coverage());
      figures.emplace_back("quarantined_" + tag,
                           static_cast<double>(cell.quarantined()));
      figures.emplace_back("recovered_" + tag,
                           static_cast<double>(cell.recovered()));
      figures.emplace_back("bt_recall_" + tag, bt_r);
      figures.emplace_back("nz_recall_" + tag, nz_r);
      if (crash == 0.50) coverage_50pct[attempts == 3] = cell.coverage();
    }
  }
  table.print(std::cout);
  std::cout << "  [coverage = finished/planned shards across both campaigns;\n"
               "   a quarantined shard drops its ASes from the corpus, so\n"
               "   recall tracks coverage with 1 attempt and recovers with 3]\n\n";
  figures.emplace_back("retry_coverage_gain_at_50pct",
                       coverage_50pct[1] - coverage_50pct[0]);

  std::cout << "(b) Stormy cell: 30% crashes on top of loss/dup/deaf peers\n";
  report::Table storm_table(
      {"attempts", "coverage", "quarantined", "bt recall", "nz recall"});
  for (int attempts : {1, 3}) {
    const Cell cell = run_cell(0.30, attempts, true);
    const double bt_r = recall(cell.bt_positives, clean.bt_positives);
    const double nz_r = recall(cell.nz_positives, clean.nz_positives);
    storm_table.add_row({std::to_string(attempts), fmt(cell.coverage()),
                         std::to_string(cell.quarantined()), fmt(bt_r),
                         fmt(nz_r)});
    const std::string tag = "storm_att" + std::to_string(attempts);
    figures.emplace_back("coverage_" + tag, cell.coverage());
    figures.emplace_back("bt_recall_" + tag, bt_r);
    figures.emplace_back("nz_recall_" + tag, nz_r);
  }
  storm_table.print(std::cout);
  std::cout << "  [crash retries replay the same network-fault substreams, so\n"
               "   recovered shards measure the impaired network, not a\n"
               "   cleaner one: recall stays bounded by the storm itself]\n";

  bench::write_bench_json("ablation_recovery", figures);
  return 0;
}
