// Table 3 — peers reported via reserved IP addresses (internal peers), and
// the peers that leaked them, per reserved address range.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 3", "internal peers and leaking peers per range");

  bench::World world;
  const auto& bt = world.bt_result();

  report::Table table({"Range", "Internal total", "Internal IPs",
                       "Leaking total", "Leaking IPs", "Leaking ASes"});
  static const char* names[] = {"192X", "172X", "10X", "100X"};
  for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
    const auto& row = bt.per_range[static_cast<std::size_t>(r)];
    table.add_row({names[r], report::count(row.internal_total),
                   report::count(row.internal_unique_ips),
                   report::count(row.leaking_total),
                   report::count(row.leaking_unique_ips),
                   report::count(row.leaking_ases)});
  }
  table.print(std::cout);

  std::cout << "\nPaper (internal total / leaking total / leaking ASes):\n"
               "  192X 565.9K / 186.8K / 4.1K    172X 336.6K / 52.9K / 1.0K\n"
               "  10X  1.3M   / 283.9K / 2.2K    100X 1.5M   / 192.0K / 723\n"
               "Shape: 10X and 100X dominate the internal-peer counts (CGN\n"
               "ranges); 192X leaks spread over the most ASes (home NATs\n"
               "everywhere) while 100X concentrates in the fewest.\n";

  double internal_total = 0, leaking_total = 0, leaking_as_rels = 0;
  for (const auto& row : bt.per_range) {
    internal_total += static_cast<double>(row.internal_total);
    leaking_total += static_cast<double>(row.leaking_total);
    leaking_as_rels += static_cast<double>(row.leaking_ases);
  }
  bench::write_bench_json("tab03_leakage",
                          {{"internal_total", internal_total},
                           {"leaking_total", leaking_total},
                           {"leaking_as_relationships", leaking_as_rels}});
  return 0;
}
