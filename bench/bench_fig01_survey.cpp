// Figure 1 — ISP survey: status of CGN deployment and IPv6 deployment,
// plus the §2 scarcity / address-market statistics.
#include <iostream>

#include "bench/common.hpp"
#include "survey/survey.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 1 (+ §2)", "operator survey tabulation");

  sim::Rng rng(bench::env_u64("CGN_BENCH_SEED", 42));
  auto responses = survey::generate_responses(75, rng);
  auto t = survey::tabulate(responses);

  std::cout << "(a) Carrier-Grade NAT deployment (n=" << t.n << ")\n";
  report::bar_chart(std::cout,
                    {"yes, already deployed   [38%]",
                     "considering deployment  [12%]",
                     "no plans to deploy      [50%]"},
                    {t.cgn_deployed * 100, t.cgn_considering * 100,
                     t.cgn_no_plans * 100},
                    40, "%");

  std::cout << "\n(b) IPv6 deployment\n";
  report::bar_chart(std::cout,
                    {"yes, most/all subscribers [32%]",
                     "yes, some subscribers     [35%]",
                     "plans to deploy soon      [11%]",
                     "no plans to deploy        [22%]"},
                    {t.ipv6_most * 100, t.ipv6_some * 100, t.ipv6_soon * 100,
                     t.ipv6_no_plans * 100},
                    40, "%");

  std::cout << "\nIPv4 scarcity and markets (paper §2 text)\n";
  report::Table table({"statistic", "measured", "paper"});
  table.add_row({"facing IPv4 scarcity", report::pct(t.scarcity_facing),
                 ">40%"});
  table.add_row({"scarcity looming", report::pct(t.scarcity_looming), "~10%"});
  table.add_row({"internal address scarcity", report::pct(t.internal_scarcity),
                 "3 ISPs (4%)"});
  table.add_row({"bought IPv4 addresses", report::pct(t.bought), "3 ISPs (4%)"});
  table.add_row({"considered buying", report::pct(t.considered_buying),
                 "15 ISPs (20%)"});
  table.add_row({"concern: price", report::pct(t.concern_price), "60%"});
  table.add_row({"concern: polluted blocks", report::pct(t.concern_polluted),
                 "44%"});
  table.add_row({"concern: ownership", report::pct(t.concern_ownership),
                 "42%"});
  table.print(std::cout);

  bench::write_bench_json(
      "fig01_survey",
      {{"respondents", static_cast<double>(t.n)},
       {"cgn_deployed", t.cgn_deployed},
       {"cgn_considering", t.cgn_considering},
       {"ipv6_most", t.ipv6_most},
       {"scarcity_facing", t.scarcity_facing}});
  return 0;
}
