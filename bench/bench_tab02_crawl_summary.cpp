// Table 2 — BitTorrent DHT crawl summary: peers queried vs learned, unique
// IPs, AS footprint, and bt_ping responders.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 2", "BitTorrent DHT crawl summary");

  bench::World world;
  const auto& bt = world.bt_result();
  const auto& s = bt.summary;

  report::Table table({"", "Peers", "Unique IPs", "ASes"});
  table.add_row({"Queried", report::count(s.queried_peers),
                 report::count(s.queried_unique_ips),
                 report::count(s.queried_ases)});
  table.add_row({"Learned", report::count(s.learned_peers),
                 report::count(s.learned_unique_ips),
                 report::count(s.learned_ases)});
  table.print(std::cout);

  std::cout << "\nbt_ping responders: " << report::count(s.responding_peers)
            << " peers, " << report::count(s.responding_unique_ips)
            << " unique IPs ("
            << report::pct(s.learned_peers
                               ? static_cast<double>(s.responding_peers) /
                                     static_cast<double>(s.learned_peers)
                               : 0)
            << " of learned)\n";
  std::cout << "\nPaper: queried 21.5M peers / 15.5M IPs / 18.8K ASes;\n"
               "       learned 192.0M peers / 62.1M IPs / 26.7K ASes;\n"
               "       107.7M peers (56%) and 36.7M IPs responded to "
               "bt_ping.\n"
               "Shape: learned >> queried; learned AS footprint > queried "
               "AS footprint;\n       roughly half the learned peers "
               "respond.\n";

  bench::write_bench_json(
      "tab02_crawl_summary",
      {{"queried_peers", static_cast<double>(s.queried_peers)},
       {"queried_unique_ips", static_cast<double>(s.queried_unique_ips)},
       {"learned_peers", static_cast<double>(s.learned_peers)},
       {"learned_unique_ips", static_cast<double>(s.learned_unique_ips)},
       {"learned_ases", static_cast<double>(s.learned_ases)},
       {"responding_peers", static_cast<double>(s.responding_peers)}});
  return 0;
}
