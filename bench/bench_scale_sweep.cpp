// Scale sweep (README "Scale"): how the world's memory footprint and hot-path
// latency grow with CGN_BENCH_SCALE. For each scale the binary re-execs
// itself as a child process — peak RSS is a per-process high-watermark
// (/proc/self/status VmHWM), so each scale must start from a clean slate —
// builds a lazy world, materializes every planned line plus the silent-line
// ballast, times a warmed NAT444 echo round trip, and reports one JSON line.
// The parent aggregates the per-scale samples into BENCH_scale_sweep.json
// under `scale_<tag>_*` keys that scripts/bench_compare.py gates (peak-RSS
// regressions warn at >10% and fail at >30% against the committed baseline).
//
// Knobs: CGN_SCALE_SWEEP_SCALES (comma list, default "0.4,1,4,10"),
// CGN_SILENT_LINES (ballast per CGN AS; default 850 here — enough that the
// scale-10 world crosses 1,000,000 subscriber lines), plus the usual
// CGN_BENCH_SEED. The sweep always builds lazily: plan and materialization
// are timed as separate phases, which is the point of the lazy split.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#ifdef __linux__
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "bench/common.hpp"
#include "netalyzr/messages.hpp"
#include "netalyzr/session.hpp"
#include "scenario/internet.hpp"
#include "sim/network.hpp"

namespace {

using namespace cgn;

// Ballast per CGN AS when CGN_SILENT_LINES is unset: sized so the scale-10
// world (see README "Scale") lands above one million subscriber lines.
constexpr std::uint64_t kDefaultSilentLines = 850;

/// Peak resident set in KiB: VmHWM from /proc/self/status (the process
/// lifetime high-watermark), falling back to getrusage ru_maxrss.
long peak_rss_kib() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("VmHWM:", 0) == 0)
      return std::atol(line.c_str() + 6);
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) return ru.ru_maxrss;
#endif
  return 0;
}

volatile std::uint64_t g_sink = 0;  // keeps the timed loop observable

template <typename Fn>
double ns_per_op(Fn&& fn, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

/// Child mode: one scale, one process. Prints a single machine-readable
/// line ("@scale_sweep {...}") that the parent scrapes out of the output.
int run_child() {
  scenario::InternetConfig cfg = bench::scaled_config();
  cfg.lazy_build = true;  // the sweep measures the plan/materialize split
  if (!std::getenv("CGN_SILENT_LINES"))
    cfg.silent_lines_per_cgn_as = kDefaultSilentLines;

  auto t0 = std::chrono::steady_clock::now();
  auto internet = scenario::build_internet(cfg);
  auto t1 = std::chrono::steady_clock::now();

  internet->materialize_all();
  std::size_t silent_built = 0;
  for (scenario::IspInstance& isp : internet->isps)
    silent_built += internet->materialize_silent_lines(isp);
  auto t2 = std::chrono::steady_clock::now();

  std::size_t lines = silent_built;
  for (const scenario::IspInstance& isp : internet->isps)
    lines += isp.subscribers.size();

  // Warmed NAT444 echo round trip — same fixture as bench_perf_micro: a
  // line behind both a CPE NAT and the CGN, pinging the Netalyzr echo
  // server, so the packet crosses two translators each way.
  const scenario::Subscriber* sub = nullptr;
  for (const auto& isp : internet->isps) {
    if (!isp.cgn) continue;
    for (const auto& s : isp.subscribers)
      if (s.cpe && s.behind_cgn) {
        sub = &s;
        break;
      }
    if (sub) break;
  }
  if (!sub)
    for (const auto& isp : internet->isps)
      if (!isp.subscribers.empty()) {
        sub = &isp.subscribers.front();
        break;
      }
  double echo_ns = 0.0;
  if (sub) {
    const netcore::Endpoint dst = internet->servers.netalyzr->echo_endpoint();
    std::uint64_t tx = 0;
    auto deliver = [&] {
      sim::Packet pkt = sim::Packet::tcp({sub->device_address, 40000}, dst);
      pkt.payload = netalyzr::NetalyzrMessage{netalyzr::EchoRequest{++tx}};
      g_sink = g_sink + static_cast<std::uint64_t>(
          internet->net.send(std::move(pkt), sub->device).hops);
    };
    ns_per_op(deliver, 10'000);  // warm the NAT mapping + route caches
    echo_ns = 1e18;
    for (int rep = 0; rep < 5; ++rep)
      echo_ns = std::min(echo_ns, ns_per_op(deliver, 100'000));
  }

  const double build_s = std::chrono::duration<double>(t1 - t0).count();
  const double materialize_s = std::chrono::duration<double>(t2 - t1).count();
  std::ostringstream os;
  os.precision(12);
  os << "@scale_sweep {\"scale\":" << bench::env_double("CGN_BENCH_SCALE", 0.4)
     << ",\"rss_kib\":" << peak_rss_kib() << ",\"ns_per_packet\":" << echo_ns
     << ",\"build_s\":" << build_s << ",\"materialize_s\":" << materialize_s
     << ",\"subscribers\":" << lines << "}";
  std::cout << os.str() << std::endl;
  return 0;
}

/// Pulls `"key":<number>` out of the child's JSON line; 0 when absent.
double extract(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  return at == std::string::npos ? 0.0
                                 : std::atof(json.c_str() + at + needle.size());
}

/// This binary's own path, for the re-exec. argv[0] works from the build
/// tree; /proc/self/exe survives PATH-relative and symlinked invocations.
std::string self_exe(const char* argv0) {
#ifdef __linux__
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
#endif
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  if (std::getenv("CGN_SCALE_SWEEP_CHILD")) return run_child();

  bench::print_header("scale_sweep",
                      "peak RSS and hot-path latency vs world scale");

  std::string scales_env = "0.4,1,4,10";
  if (const char* s = std::getenv("CGN_SCALE_SWEEP_SCALES"); s && *s)
    scales_env = s;
  std::vector<std::string> scales;
  for (std::size_t pos = 0; pos < scales_env.size();) {
    const std::size_t comma = scales_env.find(',', pos);
    const std::size_t end = comma == std::string::npos ? scales_env.size()
                                                       : comma;
    if (end > pos) scales.push_back(scales_env.substr(pos, end - pos));
    pos = end + 1;
  }

  const std::string exe = self_exe(argv[0]);
  bench::Figures figures;
  bool ok = true;
  std::cout << "  scale     subscribers    peak RSS      ns/packet   "
               "build s   materialize s\n";
  for (const std::string& scale : scales) {
    // One process per scale: VmHWM is a lifetime high-watermark, so a
    // shared process would report every scale at the scale-10 peak.
    const std::string cmd = "CGN_SCALE_SWEEP_CHILD=1 CGN_BENCH_SCALE=" +
                            scale + " '" + exe + "' 2>&1";
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (!pipe) {
      std::cerr << "popen failed for scale " << scale << "\n";
      ok = false;
      continue;
    }
    std::string sample;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe)) {
      if (std::strncmp(buf, "@scale_sweep ", 13) == 0)
        sample.assign(buf + 13);
      else
        std::cout << "    [scale " << scale << "] " << buf;
    }
    const int rc = ::pclose(pipe);
    if (rc != 0 || sample.empty()) {
      std::cerr << "scale " << scale << " child failed (exit " << rc << ")\n";
      ok = false;
      continue;
    }

    // Figure keys: '.' would collide with bench_compare.py's dotted-path
    // convention, so 0.4 becomes tag 0_4.
    std::string tag = scale;
    for (char& c : tag)
      if (c == '.') c = '_';
    const double rss = extract(sample, "rss_kib");
    const double ns = extract(sample, "ns_per_packet");
    const double build_s = extract(sample, "build_s");
    const double mat_s = extract(sample, "materialize_s");
    const double subs = extract(sample, "subscribers");
    figures.emplace_back("scale_" + tag + "_rss_kib", rss);
    figures.emplace_back("scale_" + tag + "_ns_per_packet", ns);
    figures.emplace_back("scale_" + tag + "_build_s", build_s);
    figures.emplace_back("scale_" + tag + "_materialize_s", mat_s);
    figures.emplace_back("scale_" + tag + "_subscribers", subs);
    std::printf("  %-8s %12.0f %9.0f KiB %12.1f %9.2f %15.2f\n",
                scale.c_str(), subs, rss, ns, build_s, mat_s);
  }

  if (figures.empty()) {
    std::cerr << "no scale produced a sample; not writing bench JSON\n";
    return 1;
  }
  bench::write_bench_json("scale_sweep", figures);
  return ok ? 0 : 1;
}
