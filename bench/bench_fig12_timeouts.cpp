// Figure 12 — UDP mapping timeouts of CPEs and CGNs (boxplots: cellular CGN
// per AS, non-cellular CGN per AS, CPE per session).
#include <iostream>

#include "analysis/path_analysis.hpp"
#include "analysis/stats.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 12", "UDP mapping timeouts of CPEs and CGNs");

  bench::World world;
  (void)world.sessions(/*enum_fraction=*/0.35, /*stun_fraction=*/0.0);
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto result = analysis::PathAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  auto show = [](const char* label, const std::vector<double>& v) {
    if (v.empty()) {
      std::cout << "  " << label << ": (no data)\n";
      return;
    }
    auto b = analysis::boxplot(v);
    report::boxplot_line(std::cout, label, b.min, b.q1, b.median, b.q3, b.max,
                         b.n);
  };
  show("cellular CGN (per AS)", result.fig12.cellular_cgn_per_as);
  show("non-cellular CGN (per AS)", result.fig12.noncellular_cgn_per_as);
  show("CPE (per session)", result.fig12.cpe_per_session);

  // Share of detected CGNs expiring within about a minute (§6.5 text: 74%
  // of detected NATs expire idle UDP state after one minute or less; the
  // 10 s probing granularity biases measurements up by one step).
  std::vector<double> cgns = result.fig12.cellular_cgn_per_as;
  cgns.insert(cgns.end(), result.fig12.noncellular_cgn_per_as.begin(),
              result.fig12.noncellular_cgn_per_as.end());
  std::size_t fast = 0;
  for (double t : cgns) fast += t <= 70.0 ? 1 : 0;
  if (!cgns.empty())
    std::cout << "\nCGN ASes with timeout <= ~1 minute: "
              << report::pct(static_cast<double>(fast) /
                             static_cast<double>(cgns.size()))
              << " [paper: 74% of detected NATs expire within <= 1 min]\n";

  std::cout << "\nPaper shape: cellular CGNs median ~65 s; non-cellular\n"
               "CGNs median ~35 s with higher variability; CPEs\n"
               "predominantly 65 s. Values range 10-200 s, measured at\n"
               "10 s granularity, capped at 200 s by the test budget.\n";

  bench::write_bench_json(
      "fig12_timeouts",
      {{"cgn_ases_measured", static_cast<double>(cgns.size())},
       {"cgn_fast_timeout_ases", static_cast<double>(fast)},
       {"cpe_sessions",
        static_cast<double>(result.fig12.cpe_per_session.size())}});
  return 0;
}
