// Figure 13 — STUN results: (a) mapping types of CPE NATs per session,
// (b) most permissive mapping type per CGN-positive AS.
#include <iostream>

#include "analysis/path_analysis.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 13", "STUN mapping types: CPEs vs CGNs");

  bench::World world;
  (void)world.sessions(/*enum_fraction=*/0.0, /*stun_fraction=*/0.6);
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto result = analysis::StunAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  static const stun::StunType kOrder[] = {
      stun::StunType::symmetric, stun::StunType::port_address_restricted,
      stun::StunType::address_restricted, stun::StunType::full_cone};

  auto render = [&](const std::map<stun::StunType, std::size_t>& counts,
                    const char* label) {
    double total = 0;
    for (auto t : kOrder) {
      auto it = counts.find(t);
      total += it == counts.end() ? 0 : static_cast<double>(it->second);
    }
    std::cout << label << " (n=" << static_cast<std::size_t>(total) << ")\n";
    if (total == 0) {
      std::cout << "  (no data)\n\n";
      return;
    }
    std::vector<std::string> labels;
    std::vector<double> values;
    for (auto t : kOrder) {
      auto it = counts.find(t);
      labels.push_back(std::string(stun::to_string(t)));
      values.push_back(100.0 *
                       (it == counts.end() ? 0.0
                                           : static_cast<double>(it->second)) /
                       total);
    }
    report::bar_chart(std::cout, labels, values, 40, "%");
    std::cout << "\n";
  };

  render(result.cpe_sessions,
         "(a) CPE NAT mapping types, per session (non-cellular, no CGN)");
  render(result.noncellular_cgn_ases,
         "(b1) Most permissive type per non-cellular CGN AS");
  render(result.cellular_cgn_ases,
         "(b2) Most permissive type per cellular CGN AS");

  std::cout << "Sessions with STUN results: " << result.sessions_used
            << " across " << result.ases << " ASes (" << result.cgn_ases
            << " CGN) [paper: 20K sessions, 720 ASes, 170 CGN]\n\n"
            << "Paper shape: <2% of CPE sessions are symmetric; 11% of\n"
               "non-cellular CGN ASes are symmetric even in their most\n"
               "permissive session; cellular CGNs are bimodal (~40%\n"
               "symmetric, ~20% full cone) — CGNs are markedly more\n"
               "restrictive than home NATs.\n";

  bench::write_bench_json(
      "fig13_stun_types",
      {{"stun_sessions", static_cast<double>(result.sessions_used)},
       {"ases", static_cast<double>(result.ases)},
       {"cgn_ases", static_cast<double>(result.cgn_ases)}});
  return 0;
}
