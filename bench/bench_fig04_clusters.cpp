// Figure 4 — size of the largest connected cluster of leaking and internal
// BitTorrent peers per AS, per reserved range, with the 5x5 detection
// boundary.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 4", "largest leakage cluster per AS and range");

  bench::World world;
  const auto& bt = world.bt_result();

  static const char* names[] = {"192X", "172X", "10X", "100X"};
  for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
    std::vector<report::ScatterPoint> points;
    std::size_t beyond = 0;
    for (const auto& [asn, v] : bt.per_as) {
      const auto& c = v.largest[static_cast<std::size_t>(r)];
      if (c.public_ips == 0 && c.internal_ips == 0) continue;
      points.push_back({static_cast<double>(c.public_ips),
                        static_cast<double>(c.internal_ips)});
      if (c.public_ips >= 5 && c.internal_ips >= 5) ++beyond;
    }
    std::cout << names[r] << " — " << points.size()
              << " ASes with clusters, " << beyond
              << " beyond the 5x5 detection boundary\n";
    std::cout << "  x: leaking peers [unique IPs], y: internal peers "
                 "[unique IPs]\n";
    report::scatter_loglog(std::cout, points, 5, 5, 56, 14);
    std::cout << "\n";
  }

  std::cout << "Paper shape: only a handful of ASes show large clusters in\n"
               "192X (home-NAT space), while 10X and 100X host most of the\n"
               "large clusters; detection requires >=5 public and >=5\n"
               "internal IPs in the largest cluster.\n";

  // Figure extraction is shared with the observatory's /figures endpoint
  // (analysis/figures.cpp) so both paths emit identical bytes.
  bench::write_bench_json("fig04_clusters", analysis::fig04_figures(bt));
  return 0;
}
