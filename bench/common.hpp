// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every bench builds a synthetic Internet, runs the measurement campaign it
// needs (BitTorrent crawl and/or Netalyzr sessions), and prints the paper's
// rows/series next to the measured ones. CGN_BENCH_SCALE scales the AS
// universe (default 0.4 for quick runs; 1.0 reproduces the calibrated
// full-size world used in EXPERIMENTS.md), CGN_BENCH_SEED the world seed.
// CGN_THREADS=N shards the Netalyzr campaign and the crawler's ping sweep
// across N workers (default 1): wall clock drops, but figures, tables and
// merged obs totals are bit-identical for every N (see cgn::par).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bt_detector.hpp"
#include "analysis/coverage.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "par/thread_pool.hpp"
#include "report/report.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::uint64_t>(std::atoll(v)) : fallback;
}

/// The impairment scenario, from the environment. All-zero defaults give
/// the inactive plan (clean runs identical to a no-fault build).
/// CGN_FAULT_LOSS / CGN_FAULT_DUP are per-hop / per-delivery rates;
/// CGN_FAULT_UNRESP the deaf-BT-peer fraction; CGN_FAULT_RESTART_S and the
/// CGN_FAULT_PRESSURE_* knobs drive the CGN device faults;
/// CGN_FAULT_SHARD_CRASH kills campaign shard attempts (see cgn::super).
inline fault::FaultPlan fault_plan_from_env() {
  fault::FaultPlan plan;
  plan.seed = env_u64("CGN_FAULT_SEED", plan.seed);
  plan.link.loss_rate = env_double("CGN_FAULT_LOSS", 0.0);
  plan.link.duplication_rate = env_double("CGN_FAULT_DUP", 0.0);
  plan.peers.unresponsive_fraction = env_double("CGN_FAULT_UNRESP", 0.0);
  plan.nat.restart_period_s = env_double("CGN_FAULT_RESTART_S", 0.0);
  plan.nat.pressure_period_s = env_double("CGN_FAULT_PRESSURE_S", 0.0);
  plan.nat.pressure_duration_s = env_double("CGN_FAULT_PRESSURE_DUR_S", 0.0);
  plan.nat.pressure_reserve_fraction =
      env_double("CGN_FAULT_PRESSURE_RESERVE", 0.0);
  plan.shards.crash_rate = env_double("CGN_FAULT_SHARD_CRASH", 0.0);
  return plan;
}

/// Campaign supervision policy, from the environment. Defaults preserve
/// historical behaviour (single attempt, quarantine on, no deadlines, no
/// checkpointing). CGN_SUPER_ATTEMPTS sets the per-shard budget;
/// CGN_SUPER_SHARD_DEADLINE_S / CGN_SUPER_CAMPAIGN_DEADLINE_S the watchdog
/// budgets; CGN_SUPER_CHECKPOINT_DIR enables checkpoint/resume (one
/// `<kind>.ckpt` file per campaign in that directory).
inline super::SupervisorConfig supervisor_config_from_env(
    const std::string& kind) {
  super::SupervisorConfig cfg;
  cfg.max_attempts = static_cast<int>(env_u64("CGN_SUPER_ATTEMPTS", 1));
  cfg.shard_deadline_s = env_double("CGN_SUPER_SHARD_DEADLINE_S", 0.0);
  cfg.campaign_deadline_s = env_double("CGN_SUPER_CAMPAIGN_DEADLINE_S", 0.0);
  const char* dir = std::getenv("CGN_SUPER_CHECKPOINT_DIR");
  if (dir && *dir) {
    // CheckpointWriter::open cannot create directories; make the drill
    // (point the env at a scratch dir, kill, rerun) just work.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    cfg.checkpoint_path = std::string(dir) + "/" + kind + ".ckpt";
  }
  return cfg;
}

/// Probe retransmission policy, from the environment. The default
/// (CGN_RETRY_ATTEMPTS=1) is the original fire-once behaviour.
inline fault::RetryPolicy retry_policy_from_env() {
  fault::RetryPolicy retry;
  retry.attempts = static_cast<int>(env_u64("CGN_RETRY_ATTEMPTS", 1));
  retry.base_backoff_s = env_double("CGN_RETRY_BACKOFF_S", 1.0);
  retry.backoff_factor = env_double("CGN_RETRY_FACTOR", 2.0);
  retry.jitter_fraction = env_double("CGN_RETRY_JITTER", 0.0);
  return retry;
}

/// The calibrated world, scaled. Scale 1.0 is a 1:8 model of the paper's
/// Internet (6,500 routed ASes, 360 PBL eyeballs, ...).
inline scenario::InternetConfig scaled_config() {
  double scale = env_double("CGN_BENCH_SCALE", 0.4);
  scenario::InternetConfig cfg;
  cfg.seed = env_u64("CGN_BENCH_SEED", 42);
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(8, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  cfg.routed_ases = scaled(cfg.routed_ases);
  cfg.pbl_eyeballs = scaled(cfg.pbl_eyeballs);
  cfg.apnic_eyeballs = scaled(cfg.apnic_eyeballs);
  cfg.cellular_ases = scaled(cfg.cellular_ases);
  cfg.fault_plan = fault_plan_from_env();
  return cfg;
}

/// Lazily-run measurement campaign over one world.
class World {
 public:
  World() : internet_(scenario::build_internet(scaled_config())) {}

  [[nodiscard]] scenario::Internet& internet() { return *internet_; }

  /// BitTorrent phase + crawl (+ detection), run once on demand.
  const crawler::CrawlDataset& crawl_data() {
    ensure_crawl();
    return crawler_->dataset();
  }
  const analysis::BtDetectionResult& bt_result() {
    ensure_crawl();
    if (!bt_result_) {
      bt_result_ = std::make_unique<analysis::BtDetectionResult>(
          analysis::BtDetector().analyze(crawler_->dataset(),
                                         internet_->routes));
    }
    return *bt_result_;
  }

  /// Netalyzr campaign (+ detection), run once on demand.
  const std::vector<netalyzr::SessionResult>& sessions(
      double enum_fraction = 0.0, double stun_fraction = 0.0) {
    if (!sessions_run_) {
      scenario::NetalyzrCampaignConfig cfg;
      cfg.enum_fraction = enum_fraction;
      cfg.stun_fraction = stun_fraction;
      cfg.retry = retry_policy_from_env();
      cfg.supervise = supervisor_config_from_env("netalyzr");
      sessions_ = scenario::run_netalyzr_campaign(*internet_, cfg, &nz_report_);
      sessions_run_ = true;
    }
    return sessions_;
  }
  const analysis::NetalyzrDetectionResult& nz_result() {
    if (!nz_result_) {
      nz_result_ = std::make_unique<analysis::NetalyzrDetectionResult>(
          analysis::NetalyzrDetector().analyze(sessions(), internet_->routes));
    }
    return *nz_result_;
  }

  /// Combined §5 coverage (triggers both campaigns). Includes
  /// `measurement` fractions from the supervised campaigns, so a degraded
  /// (quarantined-shard) run is visible next to the Table 5 numbers.
  const analysis::CoverageResult& coverage() {
    if (!coverage_) {
      coverage_ = std::make_unique<analysis::CoverageResult>(
          analysis::combine_coverage(bt_result(), nz_result(),
                                     internet_->registry));
      analysis::note_supervision(*coverage_, &bt_report_, &nz_report_);
    }
    return *coverage_;
  }

  /// Supervision reports of the two campaigns (empty until each runs).
  [[nodiscard]] const super::CampaignReport& bt_report() const {
    return bt_report_;
  }
  [[nodiscard]] const super::CampaignReport& nz_report() const {
    return nz_report_;
  }

 private:
  void ensure_crawl() {
    if (!crawler_) {
      scenario::run_bittorrent_phase(*internet_);
      scenario::CrawlPhaseConfig cfg;
      cfg.crawl.retry = retry_policy_from_env();
      cfg.supervise = supervisor_config_from_env("crawl_ping");
      crawler_ = scenario::run_crawl_phase(*internet_, cfg, &bt_report_);
    }
  }

  std::unique_ptr<scenario::Internet> internet_;
  std::unique_ptr<crawler::DhtCrawler> crawler_;
  std::unique_ptr<analysis::BtDetectionResult> bt_result_;
  std::vector<netalyzr::SessionResult> sessions_;
  bool sessions_run_ = false;
  std::unique_ptr<analysis::NetalyzrDetectionResult> nz_result_;
  std::unique_ptr<analysis::CoverageResult> coverage_;
  super::CampaignReport bt_report_;
  super::CampaignReport nz_report_;
};

inline void print_header(const std::string& experiment,
                         const std::string& title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n"
            << "    (scale=" << env_double("CGN_BENCH_SCALE", 0.4)
            << ", seed=" << env_u64("CGN_BENCH_SEED", 42)
            << "; paper values in [brackets]; expect shape, not absolutes)\n\n";
}

/// Headline numbers a bench reproduced, in insertion order.
using Figures = std::vector<std::pair<std::string, double>>;

/// Ends a bench run: writes `BENCH_<name>.json` — the machine-readable run
/// record holding the reproduced figures, the per-phase wall-clock timings
/// and the full simulation metrics snapshot — and prints the phase table.
/// CGN_BENCH_JSON_DIR redirects the output file (default: cwd);
/// CGN_OBS_DASHBOARD=1 additionally prints the metrics dashboard. The JSON
/// schema is documented in README.md ("Observability").
inline void write_bench_json(const std::string& name, const Figures& figures) {
  const char* dir = std::getenv("CGN_BENCH_JSON_DIR");
  const std::string path =
      (dir && *dir ? std::string(dir) + "/" : std::string()) + "BENCH_" +
      name + ".json";
  std::ofstream os(path);
  os.precision(12);  // keep large counts out of scientific notation
  os << "{\"bench\":";
  obs::json_escape(os, name);
  os << ",\"scale\":" << env_double("CGN_BENCH_SCALE", 0.4)
     << ",\"seed\":" << env_u64("CGN_BENCH_SEED", 42)
     << ",\"threads\":" << par::configured_threads();
  // Provenance: which impairment scenario and retransmission policy were
  // active, so trajectories can tell clean runs from ablations.
  {
    const fault::FaultPlan plan = fault_plan_from_env();
    const fault::RetryPolicy retry = retry_policy_from_env();
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(plan.hash()));
    os << ",\"fault_plan_hash\":\"" << hex << '"'
       << ",\"fault_plan_active\":" << (plan.active() ? "true" : "false")
       << ",\"retry\":{\"attempts\":" << retry.attempts
       << ",\"base_backoff_s\":" << retry.base_backoff_s
       << ",\"backoff_factor\":" << retry.backoff_factor
       << ",\"jitter_fraction\":" << retry.jitter_fraction << '}';
  }
  os << ",\"figures\":{";
  bool first = true;
  for (const auto& [key, value] : figures) {
    if (!first) os << ',';
    first = false;
    obs::json_escape(os, key);
    os << ':' << value;
  }
  os << "},\"super\":{";
  // Supervision rollup: how much of the planned campaign actually ran.
  // All zeros (coverage 1.0) for unsupervised or failure-free runs.
  {
    const std::uint64_t planned =
        obs::counter("super.shards_planned").value();
    const std::uint64_t finished =
        obs::counter("super.shards_ok").value() +
        obs::counter("super.shards_retried").value() +
        obs::counter("super.shards_resumed").value();
    os << "\"shards_planned\":" << planned << ",\"shards_ok\":"
       << obs::counter("super.shards_ok").value() << ",\"shards_retried\":"
       << obs::counter("super.shards_retried").value()
       << ",\"shards_resumed\":"
       << obs::counter("super.shards_resumed").value()
       << ",\"shards_quarantined\":"
       << obs::counter("super.shards_quarantined").value()
       << ",\"deadline_aborts\":"
       << obs::counter("super.deadline_aborts").value()
       << ",\"retry_attempts\":"
       << obs::counter("super.retry_attempts").value() << ",\"coverage\":"
       << (planned == 0 ? 1.0
                        : static_cast<double>(finished) /
                              static_cast<double>(planned));
  }
  os << "},\"obs\":";
  obs::export_json(os);  // {"metrics":{...},"phases":[...]}
  os << "}\n";

  obs::PhaseProfiler::global().print(std::cout);
  const char* dash = std::getenv("CGN_OBS_DASHBOARD");
  if (dash && *dash && *dash != '0')
    obs::MetricsRegistry::global().print_dashboard(std::cout);
  if (os)
    std::cout << "\nwrote " << path << "\n";
  else
    std::cerr << "\nfailed to write " << path
              << " (is CGN_BENCH_JSON_DIR a writable directory?)\n";
}

}  // namespace cgn::bench
