// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every bench builds a synthetic Internet, runs the measurement campaign it
// needs (BitTorrent crawl and/or Netalyzr sessions), and prints the paper's
// rows/series next to the measured ones. CGN_BENCH_SCALE scales the AS
// universe (default 0.4 for quick runs; 1.0 reproduces the calibrated
// full-size world used in EXPERIMENTS.md), CGN_BENCH_SEED the world seed.
// CGN_THREADS=N shards the Netalyzr campaign and the crawler's ping sweep
// across N workers (default 1): wall clock drops, but figures, tables and
// merged obs totals are bit-identical for every N (see cgn::par).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bt_detector.hpp"
#include "analysis/coverage.hpp"
#include "analysis/figures.hpp"
#include "analysis/netalyzr_detector.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "par/thread_pool.hpp"
#include "report/report.hpp"
#include "scenario/campaign.hpp"
#include "scenario/env_config.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::bench {

// The CGN_* environment parsing lives in scenario/env_config.hpp so the
// observatory daemon reads the exact same knobs; these aliases keep the
// historical cgn::bench spellings working.
using scenario::env_double;
using scenario::env_u64;
using scenario::fault_plan_from_env;
using scenario::retry_policy_from_env;
using scenario::scaled_config;
using scenario::supervisor_config_from_env;

/// Lazily-run measurement campaign over one world.
class World {
 public:
  World() : internet_(scenario::build_internet(scaled_config())) {}

  [[nodiscard]] scenario::Internet& internet() { return *internet_; }

  /// BitTorrent phase + crawl (+ detection), run once on demand.
  const crawler::CrawlDataset& crawl_data() {
    ensure_crawl();
    return crawler_->dataset();
  }
  const analysis::BtDetectionResult& bt_result() {
    ensure_crawl();
    if (!bt_result_) {
      bt_result_ = std::make_unique<analysis::BtDetectionResult>(
          analysis::BtDetector().analyze(crawler_->dataset(),
                                         internet_->routes));
    }
    return *bt_result_;
  }

  /// Netalyzr campaign (+ detection), run once on demand.
  /// `transition_battery` additionally runs the Big-NAT IPv6-transition
  /// battery on every session (fig14); off by default so the classic
  /// benches' campaigns stay byte-identical.
  const std::vector<netalyzr::SessionResult>& sessions(
      double enum_fraction = 0.0, double stun_fraction = 0.0,
      bool transition_battery = false) {
    if (!sessions_run_) {
      scenario::NetalyzrCampaignConfig cfg;
      cfg.enum_fraction = enum_fraction;
      cfg.stun_fraction = stun_fraction;
      cfg.transition_battery = transition_battery;
      cfg.retry = retry_policy_from_env();
      cfg.supervise = supervisor_config_from_env("netalyzr");
      sessions_ = scenario::run_netalyzr_campaign(*internet_, cfg, &nz_report_);
      sessions_run_ = true;
    }
    return sessions_;
  }
  const analysis::NetalyzrDetectionResult& nz_result() {
    if (!nz_result_) {
      nz_result_ = std::make_unique<analysis::NetalyzrDetectionResult>(
          analysis::NetalyzrDetector().analyze(sessions(), internet_->routes));
    }
    return *nz_result_;
  }

  /// Combined §5 coverage (triggers both campaigns). Includes
  /// `measurement` fractions from the supervised campaigns, so a degraded
  /// (quarantined-shard) run is visible next to the Table 5 numbers.
  const analysis::CoverageResult& coverage() {
    if (!coverage_) {
      coverage_ = std::make_unique<analysis::CoverageResult>(
          analysis::combine_coverage(bt_result(), nz_result(),
                                     internet_->registry));
      analysis::note_supervision(*coverage_, &bt_report_, &nz_report_);
    }
    return *coverage_;
  }

  /// Supervision reports of the two campaigns (empty until each runs).
  [[nodiscard]] const super::CampaignReport& bt_report() const {
    return bt_report_;
  }
  [[nodiscard]] const super::CampaignReport& nz_report() const {
    return nz_report_;
  }

 private:
  void ensure_crawl() {
    if (!crawler_) {
      scenario::run_bittorrent_phase(*internet_);
      scenario::CrawlPhaseConfig cfg;
      cfg.crawl.retry = retry_policy_from_env();
      cfg.supervise = supervisor_config_from_env("crawl_ping");
      crawler_ = scenario::run_crawl_phase(*internet_, cfg, &bt_report_);
    }
  }

  std::unique_ptr<scenario::Internet> internet_;
  std::unique_ptr<crawler::DhtCrawler> crawler_;
  std::unique_ptr<analysis::BtDetectionResult> bt_result_;
  std::vector<netalyzr::SessionResult> sessions_;
  bool sessions_run_ = false;
  std::unique_ptr<analysis::NetalyzrDetectionResult> nz_result_;
  std::unique_ptr<analysis::CoverageResult> coverage_;
  super::CampaignReport bt_report_;
  super::CampaignReport nz_report_;
};

inline void print_header(const std::string& experiment,
                         const std::string& title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n"
            << "    (scale=" << env_double("CGN_BENCH_SCALE", 0.4)
            << ", seed=" << env_u64("CGN_BENCH_SEED", 42)
            << "; paper values in [brackets]; expect shape, not absolutes)\n\n";
}

/// Headline numbers a bench reproduced, in insertion order. (The figure
/// computations themselves live in analysis/figures.hpp, shared with the
/// observatory's /figures endpoint.)
using analysis::Figures;

/// Ends a bench run: writes `BENCH_<name>.json` — the machine-readable run
/// record holding the reproduced figures, the per-phase wall-clock timings
/// and the full simulation metrics snapshot — and prints the phase table.
/// CGN_BENCH_JSON_DIR redirects the output file (default: cwd);
/// CGN_OBS_DASHBOARD=1 additionally prints the metrics dashboard. The JSON
/// schema is documented in README.md ("Observability").
inline void write_bench_json(const std::string& name, const Figures& figures) {
  const char* dir = std::getenv("CGN_BENCH_JSON_DIR");
  const std::string path =
      (dir && *dir ? std::string(dir) + "/" : std::string()) + "BENCH_" +
      name + ".json";
  std::ofstream os(path);
  os.precision(12);  // keep large counts out of scientific notation
  os << "{\"bench\":";
  obs::json_escape(os, name);
  os << ",\"scale\":" << env_double("CGN_BENCH_SCALE", 0.4)
     << ",\"seed\":" << env_u64("CGN_BENCH_SEED", 42)
     << ",\"threads\":" << par::configured_threads();
  // Provenance: which impairment scenario and retransmission policy were
  // active, so trajectories can tell clean runs from ablations.
  {
    const fault::FaultPlan plan = fault_plan_from_env();
    const fault::RetryPolicy retry = retry_policy_from_env();
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(plan.hash()));
    os << ",\"fault_plan_hash\":\"" << hex << '"'
       << ",\"fault_plan_active\":" << (plan.active() ? "true" : "false")
       << ",\"retry\":{\"attempts\":" << retry.attempts
       << ",\"base_backoff_s\":" << retry.base_backoff_s
       << ",\"backoff_factor\":" << retry.backoff_factor
       << ",\"jitter_fraction\":" << retry.jitter_fraction << '}';
  }
  os << ",\"figures\":";
  analysis::render_figures_json(os, figures);
  os << ",\"super\":{";
  // Supervision rollup: how much of the planned campaign actually ran.
  // All zeros (coverage 1.0) for unsupervised or failure-free runs.
  {
    const std::uint64_t planned =
        obs::counter("super.shards_planned").value();
    const std::uint64_t finished =
        obs::counter("super.shards_ok").value() +
        obs::counter("super.shards_retried").value() +
        obs::counter("super.shards_resumed").value();
    os << "\"shards_planned\":" << planned << ",\"shards_ok\":"
       << obs::counter("super.shards_ok").value() << ",\"shards_retried\":"
       << obs::counter("super.shards_retried").value()
       << ",\"shards_resumed\":"
       << obs::counter("super.shards_resumed").value()
       << ",\"shards_quarantined\":"
       << obs::counter("super.shards_quarantined").value()
       << ",\"deadline_aborts\":"
       << obs::counter("super.deadline_aborts").value()
       << ",\"retry_attempts\":"
       << obs::counter("super.retry_attempts").value() << ",\"coverage\":"
       << (planned == 0 ? 1.0
                        : static_cast<double>(finished) /
                              static_cast<double>(planned));
  }
  os << "},\"obs\":";
  obs::export_json(os);  // {"metrics":{...},"phases":[...]}
  os << "}\n";

  obs::PhaseProfiler::global().print(std::cout);
  const char* dash = std::getenv("CGN_OBS_DASHBOARD");
  if (dash && *dash && *dash != '0')
    obs::MetricsRegistry::global().print_dashboard(std::cout);
  if (os)
    std::cout << "\nwrote " << path << "\n";
  else
    std::cerr << "\nfailed to write " << path
              << " (is CGN_BENCH_JSON_DIR a writable directory?)\n";
}

}  // namespace cgn::bench
