// Figure 14 — IPv6-transition comparison: detection accuracy and measured
// translator behavior across {NAT444, NAT64, 464XLAT, DS-Lite}. Enables
// the v6 scenario pack (CGN_V6_TRANSITION) and the client's Big-NAT
// battery, then scores the classifier against the builder's ground-truth
// line stamps.
#include <cstdlib>
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/transition.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  // The bench is about the transition world; enable it unless the caller
  // explicitly set the knob (overwrite=0 keeps ablations possible). Must
  // happen before bench::World reads the scenario config from env.
  setenv("CGN_V6_TRANSITION", "1", /*overwrite=*/0);

  bench::print_header("Figure 14",
                      "IPv6 transition mechanisms: detection and timeouts");

  bench::World world;
  const auto& sessions = world.sessions(/*enum_fraction=*/0.30,
                                        /*stun_fraction=*/0.0,
                                        /*transition_battery=*/true);
  const analysis::TransitionDetectionResult result =
      analysis::TransitionDetector().analyze(sessions);

  // Ground-truth mechanism mix of the instrumented ASes.
  std::size_t as_mix[analysis::kTransitionVerdicts] = {};
  for (const auto& isp : world.internet().isps) {
    switch (isp.transition) {
      case nat::TranslatorMode::nat64:
        ++as_mix[static_cast<int>(analysis::TransitionVerdict::nat64)];
        break;
      case nat::TranslatorMode::dslite_aftr:
        ++as_mix[static_cast<int>(analysis::TransitionVerdict::dslite)];
        break;
      case nat::TranslatorMode::nat44:
        ++as_mix[static_cast<int>(analysis::TransitionVerdict::nat444)];
        break;
    }
  }
  std::cout << "Instrumented ASes by deployed mechanism (ground truth):\n"
            << "  NAT444 (incl. plain v4): "
            << as_mix[static_cast<int>(analysis::TransitionVerdict::nat444)]
            << ", NAT64: "
            << as_mix[static_cast<int>(analysis::TransitionVerdict::nat64)]
            << ", DS-Lite: "
            << as_mix[static_cast<int>(analysis::TransitionVerdict::dslite)]
            << "\n  (464XLAT is a per-line property of NAT64 ASes: CLAT "
               "present)\n\n";

  std::cout << "Battery sessions observed: " << result.observed_sessions
            << " across " << result.scored_ases << " scored ASes\n\n"
            << "mechanism   truth  classified  correct  accuracy  "
               "median timeout\n";
  for (int i = 0; i < analysis::kTransitionVerdicts; ++i) {
    const auto v = static_cast<analysis::TransitionVerdict>(i);
    const analysis::MechanismScore& m = result.of(v);
    std::printf("%-11s %5zu  %10zu  %7zu  %7.1f%%  ",
                std::string(analysis::to_string(v)).c_str(), m.truth_sessions,
                m.classified_sessions, m.correct_sessions,
                100.0 * m.accuracy());
    if (m.timeouts_s.empty())
      std::cout << "(no data)\n";
    else
      std::printf("%9.1f s\n", analysis::quantile(m.timeouts_s, 0.5));
  }
  std::cout << "\nPaper shape: pref64 discovery separates NAT64/464XLAT "
               "cleanly; the\nDS-Lite B4 signature (identical RFC 1918 "
               "ip_dev, UPnP-silent, translated\npublic address) is "
               "AS-level; cellular carriers skew to short mapping\n"
               "lifetimes and randomized port allocation (Tables 6/7).\n";

  // Figure extraction is shared with the observatory's /figures endpoint
  // (analysis/figures.cpp) so both paths emit identical bytes.
  bench::write_bench_json("fig14_transition",
                          analysis::fig14_figures(result));
  return 0;
}
