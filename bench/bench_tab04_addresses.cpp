// Table 4 — address ranges seen for the device IP (IPdev) and the CPE's
// external IP (IPcpe), cellular vs non-cellular, plus the per-AS cellular
// assignment split reported in §4.2.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 4", "device and CPE address classification");

  bench::World world;
  const auto& nz = world.nz_result();
  const auto& t = nz.table4;

  report::Table table({"Address space", "Cellular IPdev", "Non-cell IPdev",
                       "Non-cell IPcpe", "[paper cell/dev/cpe]"});
  static const char* paper[] = {"0.2% / 92.4% / 8.9%", "2.5% / 1.1% / 0.8%",
                                "58.7% / 6.2% / 4.8%", "17.3% / 0.0% / 1.9%",
                                "12.5% / 0.0% / 0.0%", "5.7% / 0.0% / 83.0%",
                                "3.0% / 0.3% / 0.5%"};
  for (int r = 0; r < analysis::kTable4Rows; ++r) {
    auto row = static_cast<analysis::Table4Row>(r);
    table.add_row({std::string(analysis::to_string(row)),
                   report::pct(t.cellular_dev.fraction(row)),
                   report::pct(t.noncellular_dev.fraction(row)),
                   report::pct(t.noncellular_cpe.fraction(row)), paper[r]});
  }
  table.add_row({"(N)", report::count(t.cellular_dev.n),
                 report::count(t.noncellular_dev.n),
                 report::count(t.noncellular_cpe.n),
                 "8.6K / 567.5K / 229.8K"});
  table.print(std::cout);

  // §4.2 cellular per-AS assignment split.
  std::size_t internal_only = 0, public_only = 0, mixed = 0, covered = 0;
  for (const auto& [asn, v] : nz.per_as) {
    if (!v.cellular || !v.covered) continue;
    ++covered;
    switch (v.assignment) {
      case analysis::CellularAssignment::internal_only: ++internal_only; break;
      case analysis::CellularAssignment::public_only: ++public_only; break;
      case analysis::CellularAssignment::mixed: ++mixed; break;
    }
  }
  std::cout << "\nCellular ASes by device-address assignment (N=" << covered
            << "):\n";
  auto frac = [&](std::size_t n) {
    return covered ? static_cast<double>(n) / static_cast<double>(covered)
                   : 0.0;
  };
  report::Table cell({"assignment", "measured", "paper"});
  cell.add_row({"exclusively internal", report::pct(frac(internal_only)),
                "63.8%"});
  cell.add_row({"exclusively public", report::pct(frac(public_only)), "6.0%"});
  cell.add_row({"mixed", report::pct(frac(mixed)), "30.3%"});
  cell.print(std::cout);

  std::cout << "\nShape: cellular devices sit in 10X/100X (and some routable-"
               "used-\ninternally space); non-cellular devices sit almost\n"
               "entirely in 192X; 83% of CPE externals are routed matches\n"
               "(single home NAT), the rest betray layered translation.\n";

  bench::write_bench_json(
      "tab04_addresses",
      {{"cellular_dev_sessions", static_cast<double>(t.cellular_dev.n)},
       {"noncellular_dev_sessions", static_cast<double>(t.noncellular_dev.n)},
       {"noncellular_cpe_sessions", static_cast<double>(t.noncellular_cpe.n)},
       {"cellular_ases_covered", static_cast<double>(covered)},
       {"cellular_internal_only", static_cast<double>(internal_only)},
       {"cellular_mixed", static_cast<double>(mixed)}});
  return 0;
}
