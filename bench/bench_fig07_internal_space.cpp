// Figure 7 — internal address space usage of detected CGNs: (a) range mix
// per AS for cellular vs non-cellular deployments, (b) ASes using routable
// address space internally.
#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 7", "internal address space in CGN deployments");

  bench::World world;
  const auto& nz = world.nz_result();
  const auto& bt = world.bt_result();
  const auto& cov = world.coverage();

  // Merge observed internal ranges per CGN-positive AS from both methods.
  struct AsRanges {
    std::set<netcore::ReservedRange> ranges;
    bool routable = false;
    bool cellular = false;
  };
  std::map<netcore::Asn, AsRanges> per_as;
  for (netcore::Asn asn : cov.cgn_positive_ases()) {
    AsRanges agg;
    if (auto it = nz.per_as.find(asn); it != nz.per_as.end()) {
      agg.ranges.insert(it->second.internal_ranges.begin(),
                        it->second.internal_ranges.end());
      agg.routable = it->second.uses_routable_internal;
      agg.cellular = it->second.cellular;
    }
    if (auto it = bt.per_as.find(asn); it != bt.per_as.end())
      agg.ranges.insert(it->second.detected_ranges.begin(),
                        it->second.detected_ranges.end());
    if (!agg.ranges.empty() || agg.routable) per_as[asn] = std::move(agg);
  }

  // (a) Stacked categories per network type.
  auto tabulate = [&](bool cellular) {
    std::array<double, 6> counts{};  // 192X,172X,10X,100X,multiple,priv+routable
    double n = 0;
    for (const auto& [asn, a] : per_as) {
      if (a.cellular != cellular) continue;
      ++n;
      if (a.routable && !a.ranges.empty())
        ++counts[5];
      else if (a.ranges.size() > 1)
        ++counts[4];
      else if (a.ranges.size() == 1)
        ++counts[static_cast<int>(*a.ranges.begin()) - 1];
      else
        ++counts[5];  // routable only
    }
    std::vector<double> fractions;
    for (double c : counts) fractions.push_back(n > 0 ? c / n : 0.0);
    return std::pair{fractions, n};
  };

  auto [cell_fracs, cell_n] = tabulate(true);
  auto [fixed_fracs, fixed_n] = tabulate(false);
  std::cout << "(a) Internal ranges per CGN AS (cellular n=" << cell_n
            << ", non-cellular n=" << fixed_n << ")\n";
  report::stacked_bars(
      std::cout, {"cellular", "non-cellular"},
      {"192X", "172X", "10X", "100X", "multiple", "private&routable"},
      {cell_fracs, fixed_fracs}, 56);

  // (b) Routable space used internally.
  std::cout << "\n(b) ASes using routable address space as internal space\n";
  std::size_t shown = 0;
  for (const auto& [asn, v] : nz.per_as) {
    if (!v.uses_routable_internal || v.routable_internal_slash8.empty())
      continue;
    std::cout << "  AS" << asn << " (" << (v.cellular ? "cellular" : "fixed")
              << "): ";
    bool first = true;
    for (std::uint8_t block : v.routable_internal_slash8) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << int(block) << "/8";
      // Is somebody else routing this block?
      auto origin = world.internet().routes.origin_of(
          netcore::Ipv4Address(block, 0, 0, 1));
      if (origin && *origin != asn)
        std::cout << " (publicly routed by AS" << *origin << "!)";
    }
    std::cout << "\n";
    if (++shown >= 10) break;
  }
  if (shown == 0) std::cout << "  (none observed at this scale)\n";

  std::cout << "\nPaper shape: 10X is the most common internal range,\n"
               "followed by the purpose-allocated 100X; ~20% of CGN ASes\n"
               "combine multiple ranges; a handful of (mostly cellular)\n"
               "ISPs — TELUS, Sprint, Rogers, T-Mobile, H3G in the paper —\n"
               "use nominally-public blocks (1/8, 21/8, 22/8, 25/8, ...)\n"
               "internally, some of which other networks actually route.\n";

  std::size_t routable_ases = 0;
  for (const auto& [asn, a] : per_as) routable_ases += a.routable ? 1 : 0;
  bench::write_bench_json(
      "fig07_internal_space",
      {{"cgn_ases_with_observations", static_cast<double>(per_as.size())},
       {"cellular_ases", cell_n},
       {"noncellular_ases", fixed_n},
       {"routable_internal_ases", static_cast<double>(routable_ases)}});
  return 0;
}
