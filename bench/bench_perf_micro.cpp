// Micro-benchmarks (google-benchmark) for the core data-path operations:
// NAT translation, LPM routing lookups, DHT closest-k selection, end-to-end
// packet delivery, and leakage-graph clustering.
#include <benchmark/benchmark.h>

#include "analysis/union_find.hpp"
#include "dht/dht_node.hpp"
#include "nat/nat_device.hpp"
#include "netcore/routing_table.hpp"
#include "sim/network.hpp"

namespace {

using namespace cgn;

std::vector<netcore::Ipv4Address> make_pool(int n) {
  std::vector<netcore::Ipv4Address> pool;
  for (int i = 0; i < n; ++i)
    pool.push_back(netcore::Ipv4Address(16, 1, 0, static_cast<std::uint8_t>(i)));
  return pool;
}

void BM_NatOutboundTranslate(benchmark::State& state) {
  nat::NatConfig cfg;
  cfg.port_allocation = static_cast<nat::PortAllocation>(state.range(0));
  cfg.udp_timeout_s = 1e9;
  nat::NatDevice nat(cfg, make_pool(8), sim::Rng(1));
  std::uint32_t i = 0;
  for (auto _ : state) {
    sim::Packet p = sim::Packet::udp(
        {netcore::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i)),
         static_cast<std::uint16_t>(2000 + (i % 50000))},
        {netcore::Ipv4Address(16, 9, 9, 9), 80});
    benchmark::DoNotOptimize(nat.process_outbound(p, 0.0));
    i = (i + 1) % 30000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NatOutboundTranslate)
    ->Arg(0)  // preservation
    ->Arg(1)  // sequential
    ->Arg(2); // random

void BM_NatMappingHit(benchmark::State& state) {
  nat::NatConfig cfg;
  cfg.udp_timeout_s = 1e9;
  nat::NatDevice nat(cfg, make_pool(1), sim::Rng(1));
  sim::Packet out = sim::Packet::udp({netcore::Ipv4Address(10, 0, 0, 1), 5000},
                                     {netcore::Ipv4Address(16, 9, 9, 9), 80});
  (void)nat.process_outbound(out, 0.0);
  for (auto _ : state) {
    sim::Packet in = sim::Packet::udp({netcore::Ipv4Address(16, 9, 9, 9), 80},
                                      out.src);
    benchmark::DoNotOptimize(nat.process_inbound(in, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NatMappingHit);

void BM_RoutingLookup(benchmark::State& state) {
  netcore::RoutingTable rt;
  sim::Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    auto addr = static_cast<std::uint32_t>(rng.uniform(0x10000000, 0x1FFFFFFF));
    rt.announce(netcore::Ipv4Prefix(netcore::Ipv4Address(addr), 20),
                static_cast<netcore::Asn>(i));
  }
  std::uint32_t x = 0x10000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup(netcore::Ipv4Address(x)));
    x = 0x10000000 | ((x + 16411) & 0x0FFFFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLookup)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_EndToEndDelivery(benchmark::State& state) {
  sim::Clock clock;
  sim::Network net(clock);
  sim::NodeId ra = net.add_router_chain(net.root(), 4, "a");
  sim::NodeId host = net.add_node(ra, "host");
  netcore::Ipv4Address addr_a(16, 0, 0, 1), addr_b(16, 0, 0, 2);
  net.add_local_address(host, addr_a);
  net.register_address(addr_a, host, net.root());
  sim::NodeId rb = net.add_router_chain(net.root(), 4, "b");
  sim::NodeId server = net.add_node(rb, "server");
  net.add_local_address(server, addr_b);
  net.register_address(addr_b, server, net.root());
  for (auto _ : state) {
    auto r = net.send(sim::Packet::udp({addr_a, 1}, {addr_b, 2}), host);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // ~10 hops per send
  state.SetLabel("10-hop path");
}
BENCHMARK(BM_EndToEndDelivery);

void BM_DhtClosestK(benchmark::State& state) {
  sim::Rng rng(3);
  dht::DhtNodeConfig cfg;
  cfg.table_capacity = static_cast<std::size_t>(state.range(0));
  sim::Clock clock;
  sim::Network net(clock);
  sim::NodeId host = net.add_node(net.root(), "h");
  dht::DhtNode node(dht::NodeId160::random(rng),
                    {netcore::Ipv4Address(16, 0, 0, 1), 6881}, host, cfg,
                    sim::Rng(4));
  for (int i = 0; i < state.range(0); ++i)
    node.learn_contact({dht::NodeId160::random(rng),
                        {netcore::Ipv4Address(16, 1, 0, 1),
                         static_cast<std::uint16_t>(1000 + i)}});
  for (auto _ : state) {
    // all_contacts + the closest-k path exercised via handle() would need
    // packets; measure table scans directly.
    benchmark::DoNotOptimize(node.all_contacts());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DhtClosestK)->Arg(64)->Arg(128)->Arg(256);

void BM_UnionFindClustering(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(5);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n * 2; ++i)
    edges.emplace_back(rng.index(n), rng.index(n));
  for (auto _ : state) {
    analysis::UnionFind uf(n);
    for (auto [a, b] : edges) uf.unite(a, b);
    benchmark::DoNotOptimize(uf.find(0));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_UnionFindClustering)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
