// Micro-benchmarks (google-benchmark) for the core data-path operations:
// NAT translation, LPM routing lookups, DHT closest-k selection, end-to-end
// packet delivery, leakage-graph clustering, and the obs metrics hot path.
//
// After the google-benchmark suite, main() hand-times the delivery loop and
// the obs primitives to estimate the metrics overhead on the hot path (the
// acceptance bar is <2% per delivery) and writes BENCH_perf_micro.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>

#ifdef __linux__
#include <sched.h>
#include <sys/resource.h>
#endif

#include "analysis/union_find.hpp"
#include "bench/common.hpp"
#include "dht/dht_node.hpp"
#include "nat/nat_device.hpp"
#include "netalyzr/messages.hpp"
#include "netalyzr/session.hpp"
#include "netcore/routing_table.hpp"
#include "obs/metrics.hpp"
#include "observatory/http.hpp"
#include "sim/network.hpp"

namespace {

using namespace cgn;

/// Cores this process can actually run on (the affinity mask, not the
/// machine total): bench_compare.py uses this to decide whether wall-clock
/// parallel speedup is even physically expressible on the runner.
double usable_cores() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0)
    return static_cast<double>(CPU_COUNT(&set));
#endif
  return static_cast<double>(std::thread::hardware_concurrency());
}

/// Process CPU seconds (user + system) so far; the per-leg delta measures
/// work burned, not wall waited — a work-conserving scheduler keeps the
/// 4-worker campaign's CPU time equal to the serial one's.
double process_cpu_s() {
#ifdef __linux__
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0)
    return static_cast<double>(ru.ru_utime.tv_sec) +
           1e-6 * static_cast<double>(ru.ru_utime.tv_usec) +
           static_cast<double>(ru.ru_stime.tv_sec) +
           1e-6 * static_cast<double>(ru.ru_stime.tv_usec);
#endif
  return 0.0;
}

std::vector<netcore::Ipv4Address> make_pool(int n) {
  std::vector<netcore::Ipv4Address> pool;
  for (int i = 0; i < n; ++i)
    pool.push_back(netcore::Ipv4Address(16, 1, 0, static_cast<std::uint8_t>(i)));
  return pool;
}

void BM_NatOutboundTranslate(benchmark::State& state) {
  nat::NatConfig cfg;
  cfg.port_allocation = static_cast<nat::PortAllocation>(state.range(0));
  cfg.udp_timeout_s = 1e9;
  nat::NatDevice nat(cfg, make_pool(8), sim::Rng(1));
  std::uint32_t i = 0;
  for (auto _ : state) {
    sim::Packet p = sim::Packet::udp(
        {netcore::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i)),
         static_cast<std::uint16_t>(2000 + (i % 50000))},
        {netcore::Ipv4Address(16, 9, 9, 9), 80});
    benchmark::DoNotOptimize(nat.process_outbound(p, 0.0));
    i = (i + 1) % 30000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NatOutboundTranslate)
    ->Arg(0)  // preservation
    ->Arg(1)  // sequential
    ->Arg(2); // random

void BM_NatMappingHit(benchmark::State& state) {
  nat::NatConfig cfg;
  cfg.udp_timeout_s = 1e9;
  nat::NatDevice nat(cfg, make_pool(1), sim::Rng(1));
  sim::Packet out = sim::Packet::udp({netcore::Ipv4Address(10, 0, 0, 1), 5000},
                                     {netcore::Ipv4Address(16, 9, 9, 9), 80});
  (void)nat.process_outbound(out, 0.0);
  for (auto _ : state) {
    sim::Packet in = sim::Packet::udp({netcore::Ipv4Address(16, 9, 9, 9), 80},
                                      out.src);
    benchmark::DoNotOptimize(nat.process_inbound(in, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NatMappingHit);

void BM_RoutingLookup(benchmark::State& state) {
  netcore::RoutingTable rt;
  sim::Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    auto addr = static_cast<std::uint32_t>(rng.uniform(0x10000000, 0x1FFFFFFF));
    rt.announce(netcore::Ipv4Prefix(netcore::Ipv4Address(addr), 20),
                static_cast<netcore::Asn>(i));
  }
  std::uint32_t x = 0x10000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup(netcore::Ipv4Address(x)));
    x = 0x10000000 | ((x + 16411) & 0x0FFFFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLookup)->Arg(1000)->Arg(10000)->Arg(50000);

/// The 10-hop delivery fixture shared by the google-benchmark case and the
/// hand-timed overhead estimate below.
struct DeliveryFixture {
  sim::Clock clock;
  sim::Network net{clock};
  sim::NodeId host = 0, server = 0;
  netcore::Ipv4Address addr_a{16, 0, 0, 1}, addr_b{16, 0, 0, 2};

  DeliveryFixture() {
    sim::NodeId ra = net.add_router_chain(net.root(), 4, "a");
    host = net.add_node(ra, "host");
    net.add_local_address(host, addr_a);
    net.register_address(addr_a, host, net.root());
    sim::NodeId rb = net.add_router_chain(net.root(), 4, "b");
    server = net.add_node(rb, "server");
    net.add_local_address(server, addr_b);
    net.register_address(addr_b, server, net.root());
  }

  auto send_one() {
    return net.send(sim::Packet::udp({addr_a, 1}, {addr_b, 2}), host);
  }
};

void BM_EndToEndDelivery(benchmark::State& state) {
  DeliveryFixture fx;
  for (auto _ : state) {
    auto r = fx.send_one();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 10);  // ~10 hops per send
  state.SetLabel("10-hop path");
}
BENCHMARK(BM_EndToEndDelivery);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter& c = obs::counter("perf.counter_probe");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(obs::kMetricsEnabled ? "enabled" : "compiled out");
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram& h =
      obs::histogram("perf.histogram_probe", {1, 2, 4, 8, 16, 32});
  double x = 0;
  for (auto _ : state) {
    h.observe(x);
    x = x >= 40 ? 0 : x + 1;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(obs::kMetricsEnabled ? "enabled" : "compiled out");
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_DhtClosestK(benchmark::State& state) {
  sim::Rng rng(3);
  dht::DhtNodeConfig cfg;
  cfg.table_capacity = static_cast<std::size_t>(state.range(0));
  sim::Clock clock;
  sim::Network net(clock);
  sim::NodeId host = net.add_node(net.root(), "h");
  dht::DhtNode node(dht::NodeId160::random(rng),
                    {netcore::Ipv4Address(16, 0, 0, 1), 6881}, host, cfg,
                    sim::Rng(4));
  for (int i = 0; i < state.range(0); ++i)
    node.learn_contact({dht::NodeId160::random(rng),
                        {netcore::Ipv4Address(16, 1, 0, 1),
                         static_cast<std::uint16_t>(1000 + i)}});
  for (auto _ : state) {
    // all_contacts + the closest-k path exercised via handle() would need
    // packets; measure table scans directly.
    benchmark::DoNotOptimize(node.all_contacts());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DhtClosestK)->Arg(64)->Arg(128)->Arg(256);

void BM_UnionFindClustering(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(5);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n * 2; ++i)
    edges.emplace_back(rng.index(n), rng.index(n));
  for (auto _ : state) {
    analysis::UnionFind uf(n);
    for (auto [a, b] : edges) uf.unite(a, b);
    benchmark::DoNotOptimize(uf.find(0));
  }
  state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_UnionFindClustering)->Arg(1000)->Arg(100000);

/// Nanoseconds per call of `op`, hand-timed over `iters` iterations.
template <typename F>
double ns_per_op(F&& op, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    cgn::obs::ScopedPhase phase("perf.google_benchmark");
    benchmark::RunSpecifiedBenchmarks();
  }

  // Hand-timed overhead estimate on the campaign hot loop: a TCP echo
  // round trip exactly as NetalyzrClient::run_basic issues it — request
  // through the CPE NAT, the ISP's CGN and the routed core to the echo
  // server, whose reply crosses both NATs back. Per round trip the obs
  // layer sees sent/delivered and the hop histogram on both directions
  // plus one translation counter in each NAT each way — 8 counter
  // increments and 2 histogram observations. The tax is that op bundle
  // priced at the measured per-primitive cost. (A loop-differential
  // estimate was tried and rejected: adding the bundle to the timed loop
  // perturbs code layout by more than the bundle costs. The primitive-sum
  // figure matches a ground-truth cross-check — this same binary built
  // with -DCGN_OBS=OFF times the round trip ~1.4% faster, in line with
  // the estimate below.)
  double delivery_ns = 0, counter_ns = 0, observe_ns = 0, tax_ns = 0;
  double delivery_idle_endpoint_ns = 0;
  bool behind_cpe_and_cgn = false;
  {
    cgn::obs::ScopedPhase phase("perf.overhead_estimate");
    cgn::scenario::InternetConfig cfg;
    cfg.seed = 42;
    cfg.routed_ases = 80;
    cfg.pbl_eyeballs = 40;
    cfg.apnic_eyeballs = 40;
    cfg.cellular_ases = 10;
    auto internet = cgn::scenario::build_internet(cfg);
    const cgn::scenario::Subscriber* sub = nullptr;
    for (const auto& isp : internet->isps) {
      if (!isp.cgn) continue;
      for (const auto& s : isp.subscribers)
        if (s.cpe && s.behind_cgn) {  // behind both a CPE NAT and the CGN
          sub = &s;
          behind_cpe_and_cgn = true;
          break;
        }
      if (sub) break;
    }
    if (!sub)  // tiny world without such a line: any subscriber will do
      for (const auto& isp : internet->isps)
        if (!isp.subscribers.empty()) {
          sub = &isp.subscribers.front();
          break;
        }
    const cgn::netcore::Endpoint dst =
        internet->servers.netalyzr->echo_endpoint();
    cgn::obs::Counter& c = cgn::obs::counter("perf.counter_probe");
    cgn::obs::Histogram& h =
        cgn::obs::histogram("perf.histogram_probe", {1, 2, 4, 8, 16, 32});
    counter_ns = ns_per_op([&] { c.inc(); }, 2'000'000);
    // The integer fast path is what Network::finish uses for hop counts.
    observe_ns = ns_per_op([&] { h.observe_small(8); }, 2'000'000);

    std::uint64_t tx = 0;
    auto deliver = [&] {
      cgn::sim::Packet pkt =
          cgn::sim::Packet::tcp({sub->device_address, 40000}, dst);
      pkt.payload = cgn::netalyzr::NetalyzrMessage{
          cgn::netalyzr::EchoRequest{++tx}};
      benchmark::DoNotOptimize(internet->net.send(std::move(pkt),
                                                  sub->device));
    };
    // Best-of-N round-trip timing to shave scheduler/frequency noise.
    delivery_ns = 1e18;
    for (int rep = 0; rep < 5; ++rep)
      delivery_ns = std::min(delivery_ns, ns_per_op(deliver, 100'000));
    // The obs op bundle one round trip executes (see comment above).
    tax_ns = 8 * counter_ns + 2 * observe_ns;

    // The observatory endpoint's idle cost on the same hot path: an
    // HttpServer blocked in accept() shares no state with the sim, so the
    // round trip must not move beyond noise. 0 when the sandbox can't bind
    // a loopback socket.
    {
      cgn::observatory::HttpServer server;
      if (server.start(
              0,
              [](const std::string&) {
                return cgn::observatory::HttpResponse{};
              },
              nullptr)) {
        delivery_idle_endpoint_ns = 1e18;
        for (int rep = 0; rep < 5; ++rep)
          delivery_idle_endpoint_ns =
              std::min(delivery_idle_endpoint_ns, ns_per_op(deliver, 100'000));
        server.stop();
      }
    }
  }
  // delivery_ns already contains one tax bundle; the compiled-out baseline
  // is therefore delivery_ns - tax_ns.
  const double overhead_pct =
      delivery_ns > tax_ns
          ? 100.0 * tax_ns / (delivery_ns - tax_ns)
          : 0.0;

  std::cout << "\nObs hot-path overhead (metrics "
            << (cgn::obs::kMetricsEnabled ? "enabled" : "compiled out")
            << ", " << (behind_cpe_and_cgn ? "CPE+CGN line" : "fallback line")
            << "):\n"
            << "  echo round trip (CPE+CGN): " << delivery_ns << " ns\n"
            << "  counter.inc():      " << counter_ns << " ns\n"
            << "  histogram.observe:  " << observe_ns << " ns\n"
            << "  obs tax per round trip (8 incs + 2 observes): " << tax_ns
            << " ns (" << overhead_pct << "% — acceptance bar <2%)\n"
            << "  echo round trip with idle observatory endpoint: "
            << delivery_idle_endpoint_ns << " ns\n";

  // Thread scaling of the Netalyzr campaign: the same world (fresh build,
  // same seed) runs its campaign at 1, 2 and 4 workers. The session
  // fingerprints must agree bit for bit — that is cgn::par's determinism
  // guarantee — while wall clock shrinks with available cores (on a
  // single-core host the worker counts tie; the identity check still
  // exercises the full parallel machinery).
  constexpr std::size_t kWorkerCounts[] = {1, 2, 4};
  constexpr int kScalingRuns = int(std::size(kWorkerCounts));
  double campaign_s[kScalingRuns] = {};
  double campaign_cpu_s[kScalingRuns] = {};
  std::uint64_t fp[kScalingRuns] = {};
  {
    cgn::obs::ScopedPhase phase("perf.thread_scaling");
    for (int i = 0; i < kScalingRuns; ++i) {
      cgn::scenario::InternetConfig cfg;
      cfg.seed = 42;
      cfg.routed_ases = 240;
      cfg.pbl_eyeballs = 120;
      cfg.apnic_eyeballs = 120;
      cfg.cellular_ases = 30;
      auto internet = cgn::scenario::build_internet(cfg);
      cgn::scenario::NetalyzrCampaignConfig cc;
      cc.threads = kWorkerCounts[i];
      const double cpu0 = process_cpu_s();
      auto t0 = std::chrono::steady_clock::now();
      auto sessions = cgn::scenario::run_netalyzr_campaign(*internet, cc);
      auto t1 = std::chrono::steady_clock::now();
      campaign_s[i] = std::chrono::duration<double>(t1 - t0).count();
      campaign_cpu_s[i] = process_cpu_s() - cpu0;
      fp[i] = cgn::netalyzr::fingerprint(sessions);
    }
  }
  const bool parallel_identical = fp[0] == fp[1] && fp[1] == fp[2];
  const double speedup_4t =
      campaign_s[2] > 0 ? campaign_s[0] / campaign_s[2] : 0.0;
  // Work conservation: CPU seconds burned at 4 workers vs serial. Unlike
  // wall-clock speedup this is machine-class-independent — a pool that
  // spins or duplicates work drags it below 1 even on a 1-core runner
  // where wall speedup is pinned at ~1.
  const double cpu_efficiency_4t =
      campaign_cpu_s[2] > 0 ? campaign_cpu_s[0] / campaign_cpu_s[2] : 0.0;
  const double cores = usable_cores();
  std::cout << "\nNetalyzr campaign thread scaling (same seed, fresh world "
            << "per run):\n";
  for (int i = 0; i < kScalingRuns; ++i)
    std::cout << "  " << kWorkerCounts[i] << " worker(s): " << campaign_s[i]
              << " s wall, " << campaign_cpu_s[i] << " s cpu\n";
  std::cout << "  speedup at 4 workers: " << speedup_4t << "x on " << cores
            << " usable core(s)\n"
            << "  cpu efficiency at 4 workers (cpu_1t/cpu_4t): "
            << cpu_efficiency_4t << '\n'
            << "  results identical across worker counts: "
            << (parallel_identical ? "yes" : "NO — DETERMINISM BROKEN")
            << '\n';

  cgn::bench::write_bench_json(
      "perf_micro",
      {{"echo_roundtrip_ns", delivery_ns},
       {"echo_roundtrip_idle_endpoint_ns", delivery_idle_endpoint_ns},
       {"counter_inc_ns", counter_ns},
       {"histogram_observe_ns", observe_ns},
       {"obs_tax_per_roundtrip_ns", tax_ns},
       {"obs_overhead_pct_estimate", overhead_pct},
       {"metrics_enabled", cgn::obs::kMetricsEnabled ? 1.0 : 0.0},
       {"netalyzr_campaign_s_1t", campaign_s[0]},
       {"netalyzr_campaign_s_2t", campaign_s[1]},
       {"netalyzr_campaign_s_4t", campaign_s[2]},
       {"netalyzr_speedup_4t", speedup_4t},
       {"netalyzr_cpu_s_1t", campaign_cpu_s[0]},
       {"netalyzr_cpu_s_4t", campaign_cpu_s[2]},
       {"netalyzr_cpu_efficiency_4t", cpu_efficiency_4t},
       {"hardware_cores", cores},
       {"parallel_identical", parallel_identical ? 1.0 : 0.0}});
  return 0;
}
