// Figure 11 — maximum NAT distance from the subscriber, per AS, for
// non-cellular no-CGN / non-cellular CGN / cellular CGN vantage classes.
#include <iostream>

#include "analysis/path_analysis.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 11", "most distant NAT per AS");

  bench::World world;
  (void)world.sessions(/*enum_fraction=*/0.35, /*stun_fraction=*/0.0);
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto result = analysis::PathAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  for (auto vclass : {analysis::VantageClass::noncellular_no_cgn,
                      analysis::VantageClass::noncellular_cgn,
                      analysis::VantageClass::cellular_cgn}) {
    auto it = result.fig11.find(vclass);
    std::cout << analysis::to_string(vclass) << " — "
              << (it == result.fig11.end() ? 0 : it->second.total_ases)
              << " ASes\n";
    if (it == result.fig11.end() || it->second.total_ases == 0) {
      std::cout << "  (no data)\n\n";
      continue;
    }
    std::vector<std::string> labels;
    std::vector<double> fractions;
    for (std::size_t h = 0; h < it->second.ases_by_hop.size(); ++h) {
      labels.push_back(h + 1 == it->second.ases_by_hop.size()
                           ? ">=10 hops"
                           : "hop " + std::to_string(h + 1));
      fractions.push_back(100.0 *
                          static_cast<double>(it->second.ases_by_hop[h]) /
                          static_cast<double>(it->second.total_ases));
    }
    report::bar_chart(std::cout, labels, fractions, 40, "%");
    std::cout << "\n";
  }

  std::cout << "Paper shape: in non-CGN ASes 92% of the most distant NATs\n"
               "sit at hop 1 (the CPE); non-cellular CGNs mostly sit 2-6\n"
               "hops out; cellular CGNs range 1-12 hops with ~10% of ASes\n"
               "at >=6 hops (centralized aggregation).\n";

  auto class_ases = [&](analysis::VantageClass c) {
    auto it = result.fig11.find(c);
    return it == result.fig11.end()
               ? 0.0
               : static_cast<double>(it->second.total_ases);
  };
  bench::write_bench_json(
      "fig11_nat_distance",
      {{"noncellular_no_cgn_ases",
        class_ases(analysis::VantageClass::noncellular_no_cgn)},
       {"noncellular_cgn_ases",
        class_ases(analysis::VantageClass::noncellular_cgn)},
       {"cellular_cgn_ases",
        class_ases(analysis::VantageClass::cellular_cgn)}});
  return 0;
}
