// Ablation — sensitivity of both detection rules to their thresholds.
//
// The paper fixes two magic numbers and justifies them qualitatively: the
// BitTorrent rule needs >=5 public and >=5 internal IPs in the largest
// cluster ("to address possible misclassifications arising from dynamic
// addressing"), and the Netalyzr rule needs >=0.4*N unique /24s. This
// ablation sweeps both and reports detections and false positives against
// the generator's ground truth — the analysis the paper could not run,
// because the real Internet has no ground truth.
#include <iostream>

#include "bench/common.hpp"
#include "scenario/churn.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Ablation", "detection-threshold sensitivity");

  // Custom pipeline: inject dynamic-addressing churn between swarm phases,
  // so households surface under several public addresses — the very
  // confounder the 5x5 rule guards against.
  auto internet_ptr = scenario::build_internet(bench::scaled_config());
  auto& internet = *internet_ptr;
  scenario::run_bittorrent_phase(internet);
  scenario::ChurnConfig churn_cfg;
  churn_cfg.events = 2;
  churn_cfg.renumber_fraction = 0.35;
  auto churn = scenario::apply_renumbering_event(internet, churn_cfg);
  std::cout << "Applied " << churn.events_applied
            << " renumbering events: " << churn.lines_renumbered
            << " public lines changed address mid-campaign.\n\n";
  // Another short swarm phase so leaks re-form under the new addresses.
  scenario::BitTorrentPhaseConfig post;
  post.maintenance_rounds = 5;
  post.announce_rounds = 2;
  scenario::run_bittorrent_phase(internet, post);
  auto crawler = scenario::run_crawl_phase(internet);
  const auto& crawl = crawler->dataset();

  scenario::NetalyzrCampaignConfig nz_cfg;
  nz_cfg.enum_fraction = 0.0;
  nz_cfg.stun_fraction = 0.0;
  auto sessions = scenario::run_netalyzr_campaign(internet, nz_cfg);

  std::cout << "(a) BitTorrent cluster rule: require >= K public and >= K "
               "internal IPs\n";
  report::Table bt_table({"K", "positives", "true", "false",
                          "precision"});
  for (std::size_t k : {1u, 2u, 3u, 5u, 8u, 12u}) {
    analysis::BtDetectorConfig cfg;
    cfg.min_cluster_public_ips = k;
    cfg.min_cluster_internal_ips = k;
    auto result = analysis::BtDetector(cfg).analyze(crawl, internet.routes);
    std::size_t tp = 0, fp = 0;
    for (const auto& [asn, v] : result.per_as) {
      if (!v.cgn_positive) continue;
      (internet.truth_has_cgn(asn) ? tp : fp)++;
    }
    bt_table.add_row({std::to_string(k), std::to_string(tp + fp),
                      std::to_string(tp), std::to_string(fp),
                      tp + fp ? report::pct(static_cast<double>(tp) /
                                            static_cast<double>(tp + fp))
                              : "-"});
  }
  bt_table.print(std::cout);
  std::cout << "  [paper's choice: K=5 — the sweep shows where home-NAT\n"
               "   dynamics start polluting the positives]\n\n";

  std::cout << "(b) Netalyzr diversity rule: require >= f*N unique /24s\n";
  report::Table nz_table({"f", "positives", "true", "false", "precision"});
  for (double f : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    analysis::NetalyzrDetectorConfig cfg;
    cfg.slash24_diversity_factor = f;
    auto result =
        analysis::NetalyzrDetector(cfg).analyze(sessions,
                                                internet.routes);
    std::size_t tp = 0, fp = 0;
    for (const auto& [asn, v] : result.per_as) {
      if (v.cellular || !v.covered || !v.cgn_positive) continue;
      (internet.truth_has_cgn(asn) ? tp : fp)++;
    }
    nz_table.add_row({report::num(f, 2), std::to_string(tp + fp),
                      std::to_string(tp), std::to_string(fp),
                      tp + fp ? report::pct(static_cast<double>(tp) /
                                            static_cast<double>(tp + fp))
                              : "-"});
  }
  nz_table.print(std::cout);
  std::cout << "  [paper's choice: f=0.4]\n\n";

  std::cout << "(c) Netalyzr candidate-session floor: require N >= n "
               "candidates\n";
  report::Table n_table({"n", "positives", "true", "false", "precision"});
  for (std::size_t n : {3u, 5u, 10u, 15u, 25u}) {
    analysis::NetalyzrDetectorConfig cfg;
    cfg.min_candidate_sessions = n;
    auto result =
        analysis::NetalyzrDetector(cfg).analyze(sessions,
                                                internet.routes);
    std::size_t tp = 0, fp = 0;
    for (const auto& [asn, v] : result.per_as) {
      if (v.cellular || !v.covered || !v.cgn_positive) continue;
      (internet.truth_has_cgn(asn) ? tp : fp)++;
    }
    n_table.add_row({std::to_string(n), std::to_string(tp + fp),
                     std::to_string(tp), std::to_string(fp),
                     tp + fp ? report::pct(static_cast<double>(tp) /
                                           static_cast<double>(tp + fp))
                             : "-"});
  }
  n_table.print(std::cout);
  std::cout << "  [paper's choice: n=10]\n";

  bench::write_bench_json(
      "ablation_detection",
      {{"renumbering_events", static_cast<double>(churn.events_applied)},
       {"lines_renumbered", static_cast<double>(churn.lines_renumbered)},
       {"netalyzr_sessions", static_cast<double>(sessions.size())},
       {"observed_leaks", static_cast<double>(crawl.leaks().size())}});
  return 0;
}
