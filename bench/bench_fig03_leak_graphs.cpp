// Figure 3 — peer leakage in a non-CGN vs a CGN AS: isolated leaking
// relationships (home NATs, the paper's Comcast example) vs clustered
// leaking relationships (carrier NAT, the paper's FastWEB example).
//
// This bench runs the full campaign, then renders the leakage graph of the
// AS with the most isolated components and the AS with the largest cluster.
#include <algorithm>
#include <iostream>
#include <map>
#include <set>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 3", "isolated vs clustered leakage graphs");

  bench::World world;
  const auto& bt = world.bt_result();
  const auto& data = world.crawl_data();

  // Leaker -> set of leaked internal IPs, grouped per AS.
  struct AsGraph {
    std::map<netcore::Ipv4Address, std::set<netcore::Ipv4Address>> by_leaker;
  };
  std::map<netcore::Asn, AsGraph> graphs;
  for (const auto& e : data.leaks()) {
    auto asn = world.internet().routes.origin_of(e.leaker.endpoint.address);
    if (!asn) continue;
    graphs[*asn].by_leaker[e.leaker.endpoint.address].insert(
        e.internal.endpoint.address);
  }

  // Pick the "Comcast analogue": most leakers in an AS the detector did NOT
  // flag; and the "FastWEB analogue": the flagged AS with the biggest
  // cluster.
  auto multi_leaked = [](const AsGraph& g) {
    std::map<netcore::Ipv4Address, int> count;
    for (const auto& [leaker, internals] : g.by_leaker)
      for (const auto& internal : internals) ++count[internal];
    std::size_t multi = 0;
    for (const auto& [internal, n] : count) multi += n > 1 ? 1 : 0;
    return multi;
  };
  netcore::Asn isolated_as = 0, clustered_as = 0;
  std::size_t best_isolated = 0, best_cluster = 0;
  for (const auto& [asn, v] : bt.per_as) {
    std::size_t cluster = 0;
    for (const auto& c : v.largest)
      cluster = std::max(cluster, c.public_ips + c.internal_ips);
    auto git = graphs.find(asn);
    if (git == graphs.end()) continue;
    std::size_t leakers = git->second.by_leaker.size();
    // The Comcast-style example: plenty of leaking peers, but every internal
    // peer leaked by exactly one external IP.
    if (multi_leaked(git->second) == 0 && leakers > best_isolated) {
      best_isolated = leakers;
      isolated_as = asn;
    }
    if (v.cgn_positive && cluster > best_cluster) {
      best_cluster = cluster;
      clustered_as = asn;
    }
  }

  auto render = [&](netcore::Asn asn, const char* label) {
    std::cout << label << " — AS" << asn << " ("
              << (world.internet().truth_has_cgn(asn) ? "deploys CGN"
                                                      : "no CGN")
              << ", ground truth)\n";
    if (!graphs.contains(asn)) {
      std::cout << "  (no leaks observed)\n";
      return;
    }
    const auto& g = graphs.at(asn);
    std::size_t shown = 0;
    std::size_t multi = 0;
    std::map<netcore::Ipv4Address, int> leakers_per_internal;
    for (const auto& [leaker, internals] : g.by_leaker)
      for (const auto& internal : internals) ++leakers_per_internal[internal];
    for (const auto& [internal, n] : leakers_per_internal)
      if (n > 1) ++multi;
    for (const auto& [leaker, internals] : g.by_leaker) {
      if (shown++ >= 8) break;
      std::cout << "  " << leaker.to_string() << " --> {";
      std::size_t k = 0;
      for (const auto& internal : internals) {
        if (k++) std::cout << ", ";
        if (k > 5) {
          std::cout << "...";
          break;
        }
        std::cout << internal.to_string();
      }
      std::cout << "}\n";
    }
    if (g.by_leaker.size() > shown)
      std::cout << "  ... (" << g.by_leaker.size() - shown
                << " more leaking peers)\n";
    std::cout << "  leaking peers: " << g.by_leaker.size()
              << ", internal peers leaked by >1 external IP: " << multi
              << "\n\n";
  };

  render(isolated_as, "(a) Isolated leaking relationships");
  render(clustered_as, "(b) Clustered leaking relationships");

  std::cout << "Paper: in AS7922 (Comcast) every internal peer is leaked by\n"
               "exactly one external peer; in AS12874 (FastWEB) many peers\n"
               "behind different external IPs leak overlapping internal\n"
               "peers — the NAT-pooling signature of a CGN.\n";

  bench::write_bench_json(
      "fig03_leak_graphs",
      {{"isolated_as", static_cast<double>(isolated_as)},
       {"isolated_leakers", static_cast<double>(best_isolated)},
       {"clustered_as", static_cast<double>(clustered_as)},
       {"largest_cluster", static_cast<double>(best_cluster)}});
  return 0;
}
