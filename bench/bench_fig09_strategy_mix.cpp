// Figure 9 — distribution of observed port allocation strategies per
// CGN-positive AS, sorted pure -> mixed, non-cellular vs cellular.
#include <algorithm>
#include <iostream>

#include "analysis/port_analysis.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 9", "port allocation strategy mix per CGN AS");

  bench::World world;
  (void)world.sessions();
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto ports = analysis::PortAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  auto render = [&](bool cellular, const char* label) {
    std::vector<const analysis::AsPortProfile*> ases;
    for (const auto& [asn, p] : ports.per_as)
      if (p.cellular == cellular && p.sessions >= 3) ases.push_back(&p);
    // Pure-allocation ASes first, then by dominant share descending.
    std::sort(ases.begin(), ases.end(), [](const auto* a, const auto* b) {
      if (a->pure() != b->pure()) return a->pure();
      return a->fraction(a->dominant) > b->fraction(b->dominant);
    });
    std::size_t pure = 0;
    for (const auto* a : ases) pure += a->pure() ? 1 : 0;
    std::cout << label << " (" << ases.size() << " ASes, " << pure
              << " with a pure strategy)\n";
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (const auto* a : ases) {
      labels.push_back("AS" + std::to_string(a->asn));
      series.push_back(
          {a->fraction(analysis::PortStrategy::preservation),
           a->fraction(analysis::PortStrategy::sequential),
           a->fraction(analysis::PortStrategy::random)});
    }
    // Cap the rendering at 30 rows.
    if (labels.size() > 30) {
      labels.resize(30);
      series.resize(30);
    }
    report::stacked_bars(std::cout, labels,
                         {"preservation", "sequential", "random"}, series, 50);
    std::cout << "\n";
  };

  render(false, "Non-cellular CGN ASes");
  render(true, "Cellular CGN ASes");

  std::cout << "Paper shape: about a third of non-cellular and half of\n"
               "cellular CGN ASes show one pure strategy; the rest are\n"
               "mixed (distributed CGN deployments and load-dependent\n"
               "behaviour).\n";

  std::size_t profiled_ases = 0, pure_ases = 0;
  for (const auto& [asn, p] : ports.per_as) {
    if (p.sessions < 3) continue;
    ++profiled_ases;
    pure_ases += p.pure() ? 1 : 0;
  }
  bench::write_bench_json(
      "fig09_strategy_mix",
      {{"profiled_ases", static_cast<double>(profiled_ases)},
       {"pure_strategy_ases", static_cast<double>(pure_ases)}});
  return 0;
}
