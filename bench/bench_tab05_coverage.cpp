// Table 5 — coverage and detection rates of both methods across the three
// AS populations (all routed, PBL eyeballs, APNIC eyeballs).
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 5", "coverage and CGN detection rates");

  bench::World world;
  const auto& cov = world.coverage();
  const auto& t = cov.table5;

  auto cell_text = [](const analysis::CoverageCell& c, std::size_t pop) {
    std::string out = report::count(c.covered) + " (" +
                      report::pct(pop ? static_cast<double>(c.covered) /
                                            static_cast<double>(pop)
                                      : 0) +
                      ") cov, " + report::count(c.positive) + " (" +
                      report::pct(c.covered
                                      ? static_cast<double>(c.positive) /
                                            static_cast<double>(c.covered)
                                      : 0) +
                      ") pos";
    return out;
  };

  report::Table table({"method", "routed ASes", "eyeball (PBL)",
                       "eyeball (APNIC)"});
  auto add = [&](const char* name,
                 const std::array<analysis::CoverageCell,
                                  analysis::kPopulationCount>& row) {
    table.add_row({name, cell_text(row[0], t.population[0]),
                   cell_text(row[1], t.population[1]),
                   cell_text(row[2], t.population[2])});
  };
  table.add_row({"population", report::count(t.population[0]),
                 report::count(t.population[1]),
                 report::count(t.population[2])});
  add("BitTorrent", t.bittorrent);
  add("Netalyzr non-cellular", t.netalyzr_noncellular);
  add("BitTorrent u Netalyzr", t.combined);
  add("Netalyzr cellular", t.netalyzr_cellular);
  table.print(std::cout);

  std::cout <<
      "\nPaper (covered%, positive-of-covered%):\n"
      "                       routed        PBL           APNIC\n"
      "  BitTorrent           5.2%,  9.4%   57.7%, 10.8%  59.6%, 11.2%\n"
      "  Netalyzr non-cell    2.6%, 14.3%   29.8%, 17.4%  30.4%, 18.7%\n"
      "  BT u Netalyzr        6.0%, 13.3%   61.7%, 17.1%  63.6%, 18.0%\n"
      "  Netalyzr cellular    0.4%, 94.0%    6.0%, 92.6%   5.6%, 94.2%\n"
      "Shape: vantage points cover an order of magnitude more eyeball ASes\n"
      "than routed ASes; Netalyzr detects at a higher *rate*, BitTorrent\n"
      "covers more ASes; cellular penetration is >90%; 17-18%% of eyeball\n"
      "ASes are CGN-positive overall.\n";

  // Figure extraction is shared with the observatory's /figures endpoint
  // (analysis/figures.cpp) so both paths emit identical bytes.
  bench::write_bench_json("tab05_coverage", analysis::tab05_figures(cov));
  return 0;
}
