// Figure 8 — port allocation properties: (a) ephemeral port space seen by
// the server for OS-preserved vs CGN-renumbered flows, (b) port preservation
// per CPE model, (c) a chunk-based allocation example.
#include <algorithm>
#include <iostream>

#include "analysis/port_analysis.hpp"
#include "analysis/stats.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Figure 8", "port allocation properties");

  bench::World world;
  (void)world.sessions();
  auto cgn_ases = world.coverage().cgn_positive_ases();
  analysis::PortAnalyzer analyzer;
  auto ports = analyzer.analyze(world.sessions(), world.internet().routes,
                                cgn_ases);

  // (a) Port histograms.
  auto to_doubles = [](const std::vector<std::uint16_t>& v) {
    std::vector<double> out(v.begin(), v.end());
    return out;
  };
  auto preserved = analysis::histogram(
      to_doubles(ports.ports_preserved_sessions), 0, 65536, 16);
  auto translated = analysis::histogram(
      to_doubles(ports.ports_translated_sessions), 0, 65536, 16);
  std::cout << "(a) Source ports observed by the echo server (16 bins of "
               "4096 ports)\n    bin:   ";
  for (int b = 0; b < 16; ++b) std::cout << b % 10 << "    ";
  auto render = [](const std::vector<std::size_t>& h, const char* label) {
    std::size_t total = 0, max = 1;
    for (auto c : h) {
      total += c;
      max = std::max(max, c);
    }
    std::cout << "\n    " << label << " ";
    for (auto c : h) {
      int height = static_cast<int>(9.0 * static_cast<double>(c) /
                                    static_cast<double>(max));
      std::cout << height << "    ";
    }
    std::cout << " (n=" << total << ")";
  };
  render(preserved, "OS ephemeral ports   ");
  render(translated, "CGN port renumbering ");
  std::cout << "\n    [paper: preserved flows pile up in the OS ephemeral "
               "band (32768-61000);\n     CGN-translated flows spread over "
               "the whole 0-65535 space]\n";

  // (b) Port preservation per CPE model (non-CGN sessions).
  std::cout << "\n(b) Port preservation per CPE model (UPnP-identified, "
               "non-CGN sessions)\n";
  report::Table table({"CPE model", "sessions", "port-preserving", "%"});
  std::size_t total_sessions = 0, total_preserving = 0;
  for (const auto& [model, counts] : ports.per_cpe_model) {
    table.add_row({model, report::count(counts.first),
                   report::count(counts.second),
                   report::pct(counts.first
                                   ? static_cast<double>(counts.second) /
                                         static_cast<double>(counts.first)
                                   : 0)});
    total_sessions += counts.first;
    total_preserving += counts.second;
  }
  table.print(std::cout);
  std::cout << "  overall: "
            << report::pct(total_sessions
                               ? static_cast<double>(total_preserving) /
                                     static_cast<double>(total_sessions)
                               : 0)
            << " of sessions preserve ports [paper: 92%]\n";

  // (c) Chunk-based allocation example: pick the AS with the clearest chunks.
  const analysis::AsPortProfile* chunked = nullptr;
  for (const auto& [asn, p] : ports.per_as)
    if (p.chunk_based && (!chunked || p.sessions > chunked->sessions))
      chunked = &p;
  std::cout << "\n(c) Chunk-based random allocation example";
  if (chunked) {
    std::cout << " — AS" << chunked->asn
              << ", estimated chunk size: " << chunked->chunk_size_estimate
              << " ports\n";
    int shown = 0;
    for (const auto& s : world.sessions()) {
      if (shown >= 12) break;
      auto asn = s.ip_pub
                     ? world.internet().routes.origin_of(*s.ip_pub).value_or(
                           s.asn)
                     : s.asn;
      if (asn != chunked->asn || s.tcp_flows.size() < 5) continue;
      auto strategy = analysis::classify_session_ports(s.tcp_flows);
      if (strategy != analysis::PortStrategy::random) continue;
      auto [lo, hi] = std::minmax_element(
          s.tcp_flows.begin(), s.tcp_flows.end(),
          [](const auto& a, const auto& b) {
            return a.observed.port < b.observed.port;
          });
      std::cout << "  session " << shown + 1 << ": ports in ["
                << lo->observed.port << ", " << hi->observed.port
                << "]  span=" << hi->observed.port - lo->observed.port << "\n";
      ++shown;
    }
    std::cout << "  [paper: AS12978 confines each subscriber's random ports "
                 "to a 4K chunk]\n";
  } else {
    std::cout << "\n  (no chunk-allocating AS detected at this scale; "
                 "increase CGN_BENCH_SCALE)\n";
  }

  bench::write_bench_json(
      "fig08_port_allocation",
      {{"preserved_flow_sessions",
        static_cast<double>(ports.ports_preserved_sessions.size())},
       {"translated_flow_sessions",
        static_cast<double>(ports.ports_translated_sessions.size())},
       {"cpe_sessions", static_cast<double>(total_sessions)},
       {"cpe_port_preserving", static_cast<double>(total_preserving)},
       {"chunk_size_estimate",
        chunked ? static_cast<double>(chunked->chunk_size_estimate) : 0.0}});
  return 0;
}
