// Table 7 — detection rate of the TTL-driven NAT enumeration test:
// address mismatch vs whether an expiring mapping was found.
#include <iostream>

#include "analysis/path_analysis.hpp"
#include "bench/common.hpp"

int main() {
  using namespace cgn;
  bench::print_header("Table 7", "TTL-driven NAT enumeration detection rates");

  bench::World world;
  (void)world.sessions(/*enum_fraction=*/0.35, /*stun_fraction=*/0.0);
  auto cgn_ases = world.coverage().cgn_positive_ases();
  auto result = analysis::PathAnalyzer().analyze(
      world.sessions(), world.internet().routes, cgn_ases);

  const auto& t = result.table7;
  auto pct_of = [&](std::uint64_t n) {
    return report::pct(t.total() ? static_cast<double>(n) /
                                       static_cast<double>(t.total())
                                 : 0);
  };
  report::Table table({"", "NAT detected (mapping expired)",
                       "No NAT detected", "[paper]"});
  table.add_row({"IP address mismatch", pct_of(t.mismatch_detected),
                 pct_of(t.mismatch_undetected), "67.6% / 30.9%"});
  table.add_row({"IP address match", pct_of(t.match_detected),
                 pct_of(t.match_undetected), "0.5% / 0.9%"});
  table.print(std::cout);

  std::cout << "\nEnumeration sessions analysed: " << result.enum_sessions_used
            << " across " << result.enum_ases << " ASes (" << result.enum_cgn_ases
            << " CGN-positive) [paper: 18K sessions, 608 ASes, 259 CGN]\n"
            << "Shape: most translated sessions also show an expiring\n"
               "mapping; the no-detection cell is NATs with timeouts beyond\n"
               "the 200 s probing budget; stateful middleboxes without\n"
               "translation are rare (<1%).\n";

  bench::write_bench_json(
      "tab07_ttl_detection",
      {{"enum_sessions", static_cast<double>(result.enum_sessions_used)},
       {"enum_ases", static_cast<double>(result.enum_ases)},
       {"mismatch_detected", static_cast<double>(t.mismatch_detected)},
       {"mismatch_undetected", static_cast<double>(t.mismatch_undetected)},
       {"match_detected", static_cast<double>(t.match_detected)},
       {"match_undetected", static_cast<double>(t.match_undetected)}});
  return 0;
}
