# Empty compiler generated dependencies file for bench_fig05_netalyzr_candidates.
# This may be replaced when dependencies are built.
