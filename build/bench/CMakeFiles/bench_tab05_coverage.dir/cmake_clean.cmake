file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_coverage.dir/bench_tab05_coverage.cpp.o"
  "CMakeFiles/bench_tab05_coverage.dir/bench_tab05_coverage.cpp.o.d"
  "bench_tab05_coverage"
  "bench_tab05_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
