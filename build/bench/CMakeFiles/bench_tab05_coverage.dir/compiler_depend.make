# Empty compiler generated dependencies file for bench_tab05_coverage.
# This may be replaced when dependencies are built.
