file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_crawl_summary.dir/bench_tab02_crawl_summary.cpp.o"
  "CMakeFiles/bench_tab02_crawl_summary.dir/bench_tab02_crawl_summary.cpp.o.d"
  "bench_tab02_crawl_summary"
  "bench_tab02_crawl_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_crawl_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
