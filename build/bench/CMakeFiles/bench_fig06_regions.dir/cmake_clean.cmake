file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_regions.dir/bench_fig06_regions.cpp.o"
  "CMakeFiles/bench_fig06_regions.dir/bench_fig06_regions.cpp.o.d"
  "bench_fig06_regions"
  "bench_fig06_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
