# Empty dependencies file for bench_fig07_internal_space.
# This may be replaced when dependencies are built.
