# Empty compiler generated dependencies file for bench_fig13_stun_types.
# This may be replaced when dependencies are built.
