# Empty dependencies file for bench_fig12_timeouts.
# This may be replaced when dependencies are built.
