file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_timeouts.dir/bench_fig12_timeouts.cpp.o"
  "CMakeFiles/bench_fig12_timeouts.dir/bench_fig12_timeouts.cpp.o.d"
  "bench_fig12_timeouts"
  "bench_fig12_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
