# Empty compiler generated dependencies file for bench_fig08_port_allocation.
# This may be replaced when dependencies are built.
