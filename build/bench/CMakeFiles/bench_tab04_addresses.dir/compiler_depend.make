# Empty compiler generated dependencies file for bench_tab04_addresses.
# This may be replaced when dependencies are built.
