file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_addresses.dir/bench_tab04_addresses.cpp.o"
  "CMakeFiles/bench_tab04_addresses.dir/bench_tab04_addresses.cpp.o.d"
  "bench_tab04_addresses"
  "bench_tab04_addresses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_addresses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
