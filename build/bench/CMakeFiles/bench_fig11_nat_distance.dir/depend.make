# Empty dependencies file for bench_fig11_nat_distance.
# This may be replaced when dependencies are built.
