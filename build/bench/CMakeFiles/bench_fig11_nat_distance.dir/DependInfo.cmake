
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_nat_distance.cpp" "bench/CMakeFiles/bench_fig11_nat_distance.dir/bench_fig11_nat_distance.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_nat_distance.dir/bench_fig11_nat_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/cgn_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cgn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cgn_report.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cgn_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/cgn_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/cgn_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/netalyzr/CMakeFiles/cgn_netalyzr.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/cgn_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/stun/CMakeFiles/cgn_stun.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/cgn_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
