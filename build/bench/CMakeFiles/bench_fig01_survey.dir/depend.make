# Empty dependencies file for bench_fig01_survey.
# This may be replaced when dependencies are built.
