# Empty compiler generated dependencies file for bench_fig03_leak_graphs.
# This may be replaced when dependencies are built.
