# Empty compiler generated dependencies file for bench_fig09_strategy_mix.
# This may be replaced when dependencies are built.
