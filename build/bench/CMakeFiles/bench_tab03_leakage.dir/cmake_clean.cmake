file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_leakage.dir/bench_tab03_leakage.cpp.o"
  "CMakeFiles/bench_tab03_leakage.dir/bench_tab03_leakage.cpp.o.d"
  "bench_tab03_leakage"
  "bench_tab03_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
