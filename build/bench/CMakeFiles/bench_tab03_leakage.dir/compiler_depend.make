# Empty compiler generated dependencies file for bench_tab03_leakage.
# This may be replaced when dependencies are built.
