file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_clusters.dir/bench_fig04_clusters.cpp.o"
  "CMakeFiles/bench_fig04_clusters.dir/bench_fig04_clusters.cpp.o.d"
  "bench_fig04_clusters"
  "bench_fig04_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
