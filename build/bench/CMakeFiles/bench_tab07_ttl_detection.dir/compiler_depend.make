# Empty compiler generated dependencies file for bench_tab07_ttl_detection.
# This may be replaced when dependencies are built.
