# Empty compiler generated dependencies file for bench_tab06_port_strategies.
# This may be replaced when dependencies are built.
