file(REMOVE_RECURSE
  "CMakeFiles/bench_tab06_port_strategies.dir/bench_tab06_port_strategies.cpp.o"
  "CMakeFiles/bench_tab06_port_strategies.dir/bench_tab06_port_strategies.cpp.o.d"
  "bench_tab06_port_strategies"
  "bench_tab06_port_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab06_port_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
