# Empty compiler generated dependencies file for dht_crawl_survey.
# This may be replaced when dependencies are built.
