file(REMOVE_RECURSE
  "CMakeFiles/dht_crawl_survey.dir/dht_crawl_survey.cpp.o"
  "CMakeFiles/dht_crawl_survey.dir/dht_crawl_survey.cpp.o.d"
  "dht_crawl_survey"
  "dht_crawl_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_crawl_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
