# Empty dependencies file for isp_dimensioning.
# This may be replaced when dependencies are built.
