file(REMOVE_RECURSE
  "CMakeFiles/isp_dimensioning.dir/isp_dimensioning.cpp.o"
  "CMakeFiles/isp_dimensioning.dir/isp_dimensioning.cpp.o.d"
  "isp_dimensioning"
  "isp_dimensioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_dimensioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
