# Empty compiler generated dependencies file for p2p_connectivity.
# This may be replaced when dependencies are built.
