file(REMOVE_RECURSE
  "CMakeFiles/p2p_connectivity.dir/p2p_connectivity.cpp.o"
  "CMakeFiles/p2p_connectivity.dir/p2p_connectivity.cpp.o.d"
  "p2p_connectivity"
  "p2p_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
