file(REMOVE_RECURSE
  "CMakeFiles/nat_behavior_lab.dir/nat_behavior_lab.cpp.o"
  "CMakeFiles/nat_behavior_lab.dir/nat_behavior_lab.cpp.o.d"
  "nat_behavior_lab"
  "nat_behavior_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_behavior_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
