# Empty dependencies file for nat_behavior_lab.
# This may be replaced when dependencies are built.
