file(REMOVE_RECURSE
  "CMakeFiles/cgn_netcore.dir/address_pool.cpp.o"
  "CMakeFiles/cgn_netcore.dir/address_pool.cpp.o.d"
  "CMakeFiles/cgn_netcore.dir/as_registry.cpp.o"
  "CMakeFiles/cgn_netcore.dir/as_registry.cpp.o.d"
  "CMakeFiles/cgn_netcore.dir/ipv4.cpp.o"
  "CMakeFiles/cgn_netcore.dir/ipv4.cpp.o.d"
  "CMakeFiles/cgn_netcore.dir/routing_table.cpp.o"
  "CMakeFiles/cgn_netcore.dir/routing_table.cpp.o.d"
  "libcgn_netcore.a"
  "libcgn_netcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_netcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
