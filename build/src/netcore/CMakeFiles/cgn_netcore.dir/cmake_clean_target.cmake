file(REMOVE_RECURSE
  "libcgn_netcore.a"
)
