
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netcore/address_pool.cpp" "src/netcore/CMakeFiles/cgn_netcore.dir/address_pool.cpp.o" "gcc" "src/netcore/CMakeFiles/cgn_netcore.dir/address_pool.cpp.o.d"
  "/root/repo/src/netcore/as_registry.cpp" "src/netcore/CMakeFiles/cgn_netcore.dir/as_registry.cpp.o" "gcc" "src/netcore/CMakeFiles/cgn_netcore.dir/as_registry.cpp.o.d"
  "/root/repo/src/netcore/ipv4.cpp" "src/netcore/CMakeFiles/cgn_netcore.dir/ipv4.cpp.o" "gcc" "src/netcore/CMakeFiles/cgn_netcore.dir/ipv4.cpp.o.d"
  "/root/repo/src/netcore/routing_table.cpp" "src/netcore/CMakeFiles/cgn_netcore.dir/routing_table.cpp.o" "gcc" "src/netcore/CMakeFiles/cgn_netcore.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
