# Empty compiler generated dependencies file for cgn_netcore.
# This may be replaced when dependencies are built.
