file(REMOVE_RECURSE
  "libcgn_sim.a"
)
