# Empty dependencies file for cgn_sim.
# This may be replaced when dependencies are built.
