file(REMOVE_RECURSE
  "CMakeFiles/cgn_sim.dir/network.cpp.o"
  "CMakeFiles/cgn_sim.dir/network.cpp.o.d"
  "libcgn_sim.a"
  "libcgn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
