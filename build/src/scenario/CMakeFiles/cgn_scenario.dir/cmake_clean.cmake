file(REMOVE_RECURSE
  "CMakeFiles/cgn_scenario.dir/campaign.cpp.o"
  "CMakeFiles/cgn_scenario.dir/campaign.cpp.o.d"
  "CMakeFiles/cgn_scenario.dir/churn.cpp.o"
  "CMakeFiles/cgn_scenario.dir/churn.cpp.o.d"
  "CMakeFiles/cgn_scenario.dir/internet.cpp.o"
  "CMakeFiles/cgn_scenario.dir/internet.cpp.o.d"
  "CMakeFiles/cgn_scenario.dir/profiles.cpp.o"
  "CMakeFiles/cgn_scenario.dir/profiles.cpp.o.d"
  "libcgn_scenario.a"
  "libcgn_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
