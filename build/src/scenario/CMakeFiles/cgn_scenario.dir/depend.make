# Empty dependencies file for cgn_scenario.
# This may be replaced when dependencies are built.
