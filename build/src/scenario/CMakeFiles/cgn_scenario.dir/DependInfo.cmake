
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenario/campaign.cpp" "src/scenario/CMakeFiles/cgn_scenario.dir/campaign.cpp.o" "gcc" "src/scenario/CMakeFiles/cgn_scenario.dir/campaign.cpp.o.d"
  "/root/repo/src/scenario/churn.cpp" "src/scenario/CMakeFiles/cgn_scenario.dir/churn.cpp.o" "gcc" "src/scenario/CMakeFiles/cgn_scenario.dir/churn.cpp.o.d"
  "/root/repo/src/scenario/internet.cpp" "src/scenario/CMakeFiles/cgn_scenario.dir/internet.cpp.o" "gcc" "src/scenario/CMakeFiles/cgn_scenario.dir/internet.cpp.o.d"
  "/root/repo/src/scenario/profiles.cpp" "src/scenario/CMakeFiles/cgn_scenario.dir/profiles.cpp.o" "gcc" "src/scenario/CMakeFiles/cgn_scenario.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crawler/CMakeFiles/cgn_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/netalyzr/CMakeFiles/cgn_netalyzr.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/cgn_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/stun/CMakeFiles/cgn_stun.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/cgn_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/cgn_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
