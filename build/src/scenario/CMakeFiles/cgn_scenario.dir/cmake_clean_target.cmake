file(REMOVE_RECURSE
  "libcgn_scenario.a"
)
