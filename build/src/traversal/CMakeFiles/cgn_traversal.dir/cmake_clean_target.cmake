file(REMOVE_RECURSE
  "libcgn_traversal.a"
)
