# Empty compiler generated dependencies file for cgn_traversal.
# This may be replaced when dependencies are built.
