file(REMOVE_RECURSE
  "CMakeFiles/cgn_traversal.dir/hole_punch.cpp.o"
  "CMakeFiles/cgn_traversal.dir/hole_punch.cpp.o.d"
  "libcgn_traversal.a"
  "libcgn_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
