# Empty compiler generated dependencies file for cgn_dht.
# This may be replaced when dependencies are built.
