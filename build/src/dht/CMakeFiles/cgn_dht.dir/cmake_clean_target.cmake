file(REMOVE_RECURSE
  "libcgn_dht.a"
)
