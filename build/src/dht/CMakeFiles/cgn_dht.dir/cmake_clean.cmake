file(REMOVE_RECURSE
  "CMakeFiles/cgn_dht.dir/dht_node.cpp.o"
  "CMakeFiles/cgn_dht.dir/dht_node.cpp.o.d"
  "CMakeFiles/cgn_dht.dir/node_id.cpp.o"
  "CMakeFiles/cgn_dht.dir/node_id.cpp.o.d"
  "CMakeFiles/cgn_dht.dir/tracker.cpp.o"
  "CMakeFiles/cgn_dht.dir/tracker.cpp.o.d"
  "libcgn_dht.a"
  "libcgn_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
