file(REMOVE_RECURSE
  "CMakeFiles/cgn_report.dir/report.cpp.o"
  "CMakeFiles/cgn_report.dir/report.cpp.o.d"
  "libcgn_report.a"
  "libcgn_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
