# Empty dependencies file for cgn_report.
# This may be replaced when dependencies are built.
