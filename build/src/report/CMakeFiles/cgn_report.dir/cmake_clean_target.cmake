file(REMOVE_RECURSE
  "libcgn_report.a"
)
