file(REMOVE_RECURSE
  "libcgn_netalyzr.a"
)
