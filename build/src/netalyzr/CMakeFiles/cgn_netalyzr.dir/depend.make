# Empty dependencies file for cgn_netalyzr.
# This may be replaced when dependencies are built.
