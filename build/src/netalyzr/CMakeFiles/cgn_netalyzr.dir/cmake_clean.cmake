file(REMOVE_RECURSE
  "CMakeFiles/cgn_netalyzr.dir/client.cpp.o"
  "CMakeFiles/cgn_netalyzr.dir/client.cpp.o.d"
  "CMakeFiles/cgn_netalyzr.dir/server.cpp.o"
  "CMakeFiles/cgn_netalyzr.dir/server.cpp.o.d"
  "libcgn_netalyzr.a"
  "libcgn_netalyzr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_netalyzr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
