file(REMOVE_RECURSE
  "CMakeFiles/cgn_survey.dir/survey.cpp.o"
  "CMakeFiles/cgn_survey.dir/survey.cpp.o.d"
  "libcgn_survey.a"
  "libcgn_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
