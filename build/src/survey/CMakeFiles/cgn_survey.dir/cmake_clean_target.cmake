file(REMOVE_RECURSE
  "libcgn_survey.a"
)
