# Empty compiler generated dependencies file for cgn_survey.
# This may be replaced when dependencies are built.
