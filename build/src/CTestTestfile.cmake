# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netcore")
subdirs("sim")
subdirs("nat")
subdirs("dht")
subdirs("stun")
subdirs("traversal")
subdirs("crawler")
subdirs("netalyzr")
subdirs("analysis")
subdirs("report")
subdirs("survey")
subdirs("scenario")
