file(REMOVE_RECURSE
  "CMakeFiles/cgn_stun.dir/stun.cpp.o"
  "CMakeFiles/cgn_stun.dir/stun.cpp.o.d"
  "libcgn_stun.a"
  "libcgn_stun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_stun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
