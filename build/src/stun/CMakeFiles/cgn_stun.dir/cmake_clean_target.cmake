file(REMOVE_RECURSE
  "libcgn_stun.a"
)
