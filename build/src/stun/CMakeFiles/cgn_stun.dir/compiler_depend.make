# Empty compiler generated dependencies file for cgn_stun.
# This may be replaced when dependencies are built.
