# Empty dependencies file for cgn_crawler.
# This may be replaced when dependencies are built.
