file(REMOVE_RECURSE
  "libcgn_crawler.a"
)
