file(REMOVE_RECURSE
  "CMakeFiles/cgn_crawler.dir/dht_crawler.cpp.o"
  "CMakeFiles/cgn_crawler.dir/dht_crawler.cpp.o.d"
  "libcgn_crawler.a"
  "libcgn_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
