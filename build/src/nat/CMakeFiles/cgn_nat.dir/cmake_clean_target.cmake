file(REMOVE_RECURSE
  "libcgn_nat.a"
)
