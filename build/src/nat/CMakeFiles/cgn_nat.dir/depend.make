# Empty dependencies file for cgn_nat.
# This may be replaced when dependencies are built.
