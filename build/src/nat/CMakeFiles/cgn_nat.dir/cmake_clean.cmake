file(REMOVE_RECURSE
  "CMakeFiles/cgn_nat.dir/nat_device.cpp.o"
  "CMakeFiles/cgn_nat.dir/nat_device.cpp.o.d"
  "libcgn_nat.a"
  "libcgn_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
