
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bt_detector.cpp" "src/analysis/CMakeFiles/cgn_analysis.dir/bt_detector.cpp.o" "gcc" "src/analysis/CMakeFiles/cgn_analysis.dir/bt_detector.cpp.o.d"
  "/root/repo/src/analysis/coverage.cpp" "src/analysis/CMakeFiles/cgn_analysis.dir/coverage.cpp.o" "gcc" "src/analysis/CMakeFiles/cgn_analysis.dir/coverage.cpp.o.d"
  "/root/repo/src/analysis/netalyzr_detector.cpp" "src/analysis/CMakeFiles/cgn_analysis.dir/netalyzr_detector.cpp.o" "gcc" "src/analysis/CMakeFiles/cgn_analysis.dir/netalyzr_detector.cpp.o.d"
  "/root/repo/src/analysis/path_analysis.cpp" "src/analysis/CMakeFiles/cgn_analysis.dir/path_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/cgn_analysis.dir/path_analysis.cpp.o.d"
  "/root/repo/src/analysis/port_analysis.cpp" "src/analysis/CMakeFiles/cgn_analysis.dir/port_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/cgn_analysis.dir/port_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crawler/CMakeFiles/cgn_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/netalyzr/CMakeFiles/cgn_netalyzr.dir/DependInfo.cmake"
  "/root/repo/build/src/stun/CMakeFiles/cgn_stun.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/cgn_netcore.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/cgn_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/cgn_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
