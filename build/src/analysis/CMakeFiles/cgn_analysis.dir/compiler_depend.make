# Empty compiler generated dependencies file for cgn_analysis.
# This may be replaced when dependencies are built.
