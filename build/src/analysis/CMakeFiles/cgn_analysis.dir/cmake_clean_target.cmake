file(REMOVE_RECURSE
  "libcgn_analysis.a"
)
