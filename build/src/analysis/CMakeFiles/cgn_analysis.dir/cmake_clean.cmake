file(REMOVE_RECURSE
  "CMakeFiles/cgn_analysis.dir/bt_detector.cpp.o"
  "CMakeFiles/cgn_analysis.dir/bt_detector.cpp.o.d"
  "CMakeFiles/cgn_analysis.dir/coverage.cpp.o"
  "CMakeFiles/cgn_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/cgn_analysis.dir/netalyzr_detector.cpp.o"
  "CMakeFiles/cgn_analysis.dir/netalyzr_detector.cpp.o.d"
  "CMakeFiles/cgn_analysis.dir/path_analysis.cpp.o"
  "CMakeFiles/cgn_analysis.dir/path_analysis.cpp.o.d"
  "CMakeFiles/cgn_analysis.dir/port_analysis.cpp.o"
  "CMakeFiles/cgn_analysis.dir/port_analysis.cpp.o.d"
  "libcgn_analysis.a"
  "libcgn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
