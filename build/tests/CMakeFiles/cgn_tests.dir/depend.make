# Empty dependencies file for cgn_tests.
# This may be replaced when dependencies are built.
