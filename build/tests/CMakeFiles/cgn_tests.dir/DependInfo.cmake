
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/cgn_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/campaign_test.cpp" "tests/CMakeFiles/cgn_tests.dir/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/campaign_test.cpp.o.d"
  "/root/repo/tests/churn_test.cpp" "tests/CMakeFiles/cgn_tests.dir/churn_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/churn_test.cpp.o.d"
  "/root/repo/tests/crawler_test.cpp" "tests/CMakeFiles/cgn_tests.dir/crawler_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/crawler_test.cpp.o.d"
  "/root/repo/tests/dht_crawler_edge_test.cpp" "tests/CMakeFiles/cgn_tests.dir/dht_crawler_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/dht_crawler_edge_test.cpp.o.d"
  "/root/repo/tests/dht_test.cpp" "tests/CMakeFiles/cgn_tests.dir/dht_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/dht_test.cpp.o.d"
  "/root/repo/tests/misc_edge_test.cpp" "tests/CMakeFiles/cgn_tests.dir/misc_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/misc_edge_test.cpp.o.d"
  "/root/repo/tests/nat_device_test.cpp" "tests/CMakeFiles/cgn_tests.dir/nat_device_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/nat_device_test.cpp.o.d"
  "/root/repo/tests/nat_property_test.cpp" "tests/CMakeFiles/cgn_tests.dir/nat_property_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/nat_property_test.cpp.o.d"
  "/root/repo/tests/nat_tcp_state_test.cpp" "tests/CMakeFiles/cgn_tests.dir/nat_tcp_state_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/nat_tcp_state_test.cpp.o.d"
  "/root/repo/tests/netalyzr_test.cpp" "tests/CMakeFiles/cgn_tests.dir/netalyzr_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/netalyzr_test.cpp.o.d"
  "/root/repo/tests/netcore_ipv4_test.cpp" "tests/CMakeFiles/cgn_tests.dir/netcore_ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/netcore_ipv4_test.cpp.o.d"
  "/root/repo/tests/netcore_routing_test.cpp" "tests/CMakeFiles/cgn_tests.dir/netcore_routing_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/netcore_routing_test.cpp.o.d"
  "/root/repo/tests/network_nat_integration_test.cpp" "tests/CMakeFiles/cgn_tests.dir/network_nat_integration_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/network_nat_integration_test.cpp.o.d"
  "/root/repo/tests/report_survey_test.cpp" "tests/CMakeFiles/cgn_tests.dir/report_survey_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/report_survey_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/cgn_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sim_network_test.cpp" "tests/CMakeFiles/cgn_tests.dir/sim_network_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/sim_network_test.cpp.o.d"
  "/root/repo/tests/stun_behavior_test.cpp" "tests/CMakeFiles/cgn_tests.dir/stun_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/stun_behavior_test.cpp.o.d"
  "/root/repo/tests/stun_test.cpp" "tests/CMakeFiles/cgn_tests.dir/stun_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/stun_test.cpp.o.d"
  "/root/repo/tests/translation_log_test.cpp" "tests/CMakeFiles/cgn_tests.dir/translation_log_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/translation_log_test.cpp.o.d"
  "/root/repo/tests/traversal_test.cpp" "tests/CMakeFiles/cgn_tests.dir/traversal_test.cpp.o" "gcc" "tests/CMakeFiles/cgn_tests.dir/traversal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traversal/CMakeFiles/cgn_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/cgn_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cgn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cgn_report.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cgn_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/cgn_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/cgn_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/netalyzr/CMakeFiles/cgn_netalyzr.dir/DependInfo.cmake"
  "/root/repo/build/src/nat/CMakeFiles/cgn_nat.dir/DependInfo.cmake"
  "/root/repo/build/src/stun/CMakeFiles/cgn_stun.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cgn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netcore/CMakeFiles/cgn_netcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
