// dht_crawl_survey: build a synthetic Internet, run the BitTorrent phase and
// the DHT crawl, and compare the crawler's per-AS CGN verdicts against the
// generator's ground truth — the §4.1 methodology end to end, including its
// deliberate blind spots (restrictive CGNs are invisible to the crawler).
//
//   ./build/examples/dht_crawl_survey [n_routed_ases]
#include <cstdlib>
#include <iostream>

#include "analysis/bt_detector.hpp"
#include "report/report.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"

int main(int argc, char** argv) {
  using namespace cgn;

  scenario::InternetConfig cfg;
  cfg.seed = 1234;
  cfg.routed_ases = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1200;
  cfg.pbl_eyeballs = cfg.routed_ases / 18;
  cfg.apnic_eyeballs = cfg.pbl_eyeballs + cfg.pbl_eyeballs / 12;
  cfg.cellular_ases = std::max<std::size_t>(2, cfg.routed_ases / 200);

  std::cout << "Building a synthetic Internet with " << cfg.routed_ases
            << " routed ASes...\n";
  auto internet = scenario::build_internet(cfg);
  std::cout << "  " << internet->isps.size() << " instrumented ISPs, "
            << internet->bt_peers().size() << " BitTorrent peers, "
            << internet->net.node_count() << " network nodes\n";

  std::cout << "Running the swarm (bootstrap, tracker announces, DHT "
               "maintenance)...\n";
  scenario::run_bittorrent_phase(*internet);

  std::cout << "Crawling the DHT...\n";
  auto crawler = scenario::run_crawl_phase(*internet);
  const auto& data = crawler->dataset();
  std::cout << "  queried " << data.queried_peers() << " peers, learned "
            << data.learned_peers() << ", observed " << data.leaks().size()
            << " internal-address leak edges\n\n";

  analysis::BtDetector detector;
  auto result = detector.analyze(data, internet->routes);

  // Confusion summary against ground truth (only BT-covered ASes count).
  std::size_t tp = 0, fp = 0, fn_permissive = 0, fn_other = 0;
  for (const auto& [asn, v] : result.per_as) {
    if (!v.covered || v.queried_peers < 20) continue;
    bool truth = internet->truth_has_cgn(asn);
    if (v.cgn_positive && truth) ++tp;
    if (v.cgn_positive && !truth) ++fp;
    if (!v.cgn_positive && truth) {
      auto idx = internet->isp_index.find(asn);
      bool permissive = false;
      if (idx != internet->isp_index.end()) {
        const auto& prof = internet->isps[idx->second].cgn_profile;
        permissive = prof && prof->mapping == nat::MappingType::full_cone &&
                     prof->hairpin_preserve_source;
      }
      (permissive ? fn_permissive : fn_other)++;
    }
  }

  report::Table table({"verdict vs ground truth", "ASes"});
  table.add_row({"true positives (CGN found)", std::to_string(tp)});
  table.add_row({"false positives", std::to_string(fp)});
  table.add_row({"missed: leak-capable CGN", std::to_string(fn_permissive)});
  table.add_row({"missed: restrictive/conformant CGN (method blind spot)",
                 std::to_string(fn_other)});
  table.print(std::cout);

  std::cout << "\nDetected CGN ASes and their largest clusters:\n";
  for (const auto& [asn, v] : result.per_as) {
    if (!v.cgn_positive) continue;
    std::cout << "  AS" << asn << ": ";
    static const char* names[] = {"192X", "172X", "10X", "100X"};
    for (int r = 0; r < netcore::kReservedRangeCount; ++r) {
      const auto& c = v.largest[static_cast<std::size_t>(r)];
      if (c.public_ips >= 5 && c.internal_ips >= 5)
        std::cout << names[r] << " cluster " << c.public_ips << " public x "
                  << c.internal_ips << " internal IPs  ";
    }
    std::cout << "\n";
  }

  std::cout << "\nNote the asymmetry the paper stresses: the crawler never\n"
               "false-positives, but CGNs that filter inbound traffic or\n"
               "hairpin correctly stay invisible — BitTorrent detection is\n"
               "a lower bound.\n";
  return 0;
}
