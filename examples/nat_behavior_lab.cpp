// nat_behavior_lab: a test lab for NAT configurations. For every mapping
// type and port-allocation strategy, set up a subscriber line behind that
// NAT, then characterize it from the outside with the paper's tools: STUN
// classification, the ten-flow port-translation test, and TTL-driven
// enumeration of mapping timeouts.
//
//   ./build/examples/nat_behavior_lab
#include <iostream>

#include "analysis/port_analysis.hpp"
#include "nat/nat_device.hpp"
#include "netalyzr/client.hpp"
#include "netalyzr/server.hpp"
#include "report/report.hpp"
#include "sim/demux.hpp"
#include "stun/stun.hpp"

int main() {
  using namespace cgn;
  using netcore::Ipv4Address;

  report::Table table({"NAT configuration", "STUN says", "port test says",
                       "timeout measured"});

  static const nat::MappingType kTypes[] = {
      nat::MappingType::full_cone, nat::MappingType::address_restricted,
      nat::MappingType::port_address_restricted, nat::MappingType::symmetric};
  static const nat::PortAllocation kAllocs[] = {
      nat::PortAllocation::preservation, nat::PortAllocation::sequential,
      nat::PortAllocation::random, nat::PortAllocation::chunk_random};
  static const double kTimeouts[] = {30.0, 65.0, 120.0};

  int lab = 0;
  for (auto mapping : kTypes) {
    for (auto alloc : kAllocs) {
      double timeout = kTimeouts[lab++ % 3];
      // A fresh world per configuration.
      sim::Clock clock;
      sim::Network net(clock);
      sim::NodeId rack = net.add_router_chain(net.root(), 2, "dc");
      sim::NodeId ns_host = net.add_node(rack, "netalyzr");
      netalyzr::NetalyzrServer nserver(ns_host, Ipv4Address{16, 255, 0, 10});
      nserver.install(net);
      sim::NodeId stun_host = net.add_node(rack, "stun");
      stun::StunServer sserver(net, stun_host, Ipv4Address{16, 255, 0, 20},
                               Ipv4Address{16, 255, 0, 21}, 3478, 3479);
      sserver.install(net);

      sim::NodeId isp = net.add_router_chain(net.root(), 1, "isp");
      sim::NodeId nat_node = net.add_node(isp, "nat");
      nat::NatConfig cfg;
      cfg.name = "lab";
      cfg.mapping = mapping;
      cfg.port_allocation = alloc;
      cfg.chunk_size = 2048;
      cfg.udp_timeout_s = timeout;
      std::vector<Ipv4Address> pool{Ipv4Address{16, 10, 0, 10},
                                    Ipv4Address{16, 10, 0, 11}};
      nat::NatDevice nat(cfg, pool, sim::Rng(7));
      net.set_middlebox(nat_node, &nat);
      for (auto a : pool) net.register_address(a, nat_node, net.root());

      sim::NodeId access = net.add_router_chain(nat_node, 1, "acc");
      sim::NodeId device = net.add_node(access, "device");
      Ipv4Address dev_addr{10, 0, 0, 2};
      net.add_local_address(device, dev_addr);
      net.register_address(dev_addr, device, nat_node);
      sim::PortDemux demux;
      demux.attach(net, device);

      // STUN.
      stun::StunClient stun_client(device, {dev_addr, 40000}, demux);
      auto stun_result = stun_client.classify(net, sserver);

      // Port-translation test.
      netalyzr::ClientContext ctx;
      ctx.host = device;
      ctx.device_address = dev_addr;
      netalyzr::NetalyzrClient client(ctx, demux, sim::Rng(8));
      auto session = client.run_basic(net, nserver);
      auto strategy = analysis::classify_session_ports(session.tcp_flows);

      // Timeout via TTL enumeration.
      netalyzr::TtlEnumConfig ecfg;
      client.run_enumeration(net, clock, nserver, ecfg, session);
      std::string measured = "-";
      for (const auto& h : session.enumeration->hops)
        if (h.stateful && h.timeout_s)
          measured = report::num(*h.timeout_s, 0) + " s (truth " +
                     report::num(timeout, 0) + ")";

      table.add_row(
          {std::string(nat::to_string(mapping)) + " / " +
               std::string(nat::to_string(alloc)),
           std::string(stun::to_string(stun_result.type)),
           strategy ? std::string(analysis::to_string(*strategy)) : "-",
           measured});
    }
  }

  std::cout << "NAT behaviour lab: ground-truth configuration vs what the\n"
               "paper's measurement tests recover from the outside.\n\n";
  table.print(std::cout);
  std::cout << "\nNotes:\n"
               "  * a symmetric NAT whose two test mappings happen to get\n"
               "    identical external endpoints (port preservation, no\n"
               "    collision) would masquerade as port-address restricted —\n"
               "    a classic STUN limitation; here the second mapping\n"
               "    collides on the preserved port, so STUN sees through it;\n"
               "  * chunk-random looks 'random' to a single session; chunk\n"
               "    detection needs many sessions per AS (see Table 6).\n";
  return 0;
}
