// isp_dimensioning: a CGN dimensioning study. The paper's operators call
// port-space sizing a "black art" and §7 flags 512-port chunks as scarily
// small. This example sweeps per-subscriber chunk sizes and workload
// intensities and measures flow-blocking rates and address-sharing ratios —
// the trade-off an operator actually has to make.
//
//   ./build/examples/isp_dimensioning
#include <iostream>

#include "nat/nat_device.hpp"
#include "report/report.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace cgn;
  using netcore::Ipv4Address;

  std::cout
      << "CGN dimensioning sweep: one external IP, chunk-based random\n"
         "allocation, subscribers opening concurrent flows (e.g. loading\n"
         "complex web pages; dozens of connections each, cf. paper §6.2).\n\n";

  report::Table table({"chunk size", "subscribers/IP", "flows/subscriber",
                       "blocked flows", "verdict"});

  static const std::uint32_t kChunks[] = {512, 1024, 2048, 4096, 8192};
  static const int kFlows[] = {64, 256, 480, 600};

  for (std::uint32_t chunk : kChunks) {
    for (int flows : kFlows) {
      nat::NatConfig cfg;
      cfg.name = "cgn";
      cfg.port_allocation = nat::PortAllocation::chunk_random;
      cfg.chunk_size = chunk;
      cfg.udp_timeout_s = 1e9;  // worst case: nothing expires during the burst
      nat::NatDevice cgn(cfg, {Ipv4Address{16, 10, 0, 10}}, sim::Rng(11));

      // Admit subscribers until the chunk pool is exhausted.
      int subscribers = 0;
      std::uint64_t blocked = 0, attempted = 0;
      for (int s = 0;; ++s) {
        Ipv4Address sub(10, 0, static_cast<std::uint8_t>(s >> 8),
                        static_cast<std::uint8_t>(s & 0xFF));
        // First flow decides admission (chunk assignment).
        sim::Packet first = sim::Packet::udp(
            {sub, 30000}, {Ipv4Address{16, 9, 9, 9}, 80});
        if (cgn.process_outbound(first, 0.0) !=
            sim::Middlebox::Verdict::forward)
          break;  // no chunks left: subscriber cannot be admitted
        ++subscribers;
        ++attempted;
        for (int f = 1; f < flows; ++f) {
          sim::Packet p = sim::Packet::udp(
              {sub, static_cast<std::uint16_t>(30000 + f)},
              {Ipv4Address{16, 9, 9, 9},
               static_cast<std::uint16_t>(80 + (f % 500))});
          ++attempted;
          if (cgn.process_outbound(p, 0.0) !=
              sim::Middlebox::Verdict::forward)
            ++blocked;
        }
        if (s > 4096) break;  // safety
      }

      double block_rate =
          attempted ? static_cast<double>(blocked) /
                          static_cast<double>(attempted)
                    : 0.0;
      const char* verdict = block_rate == 0.0          ? "ok"
                            : block_rate < 0.01        ? "marginal"
                                                       : "underprovisioned";
      table.add_row({std::to_string(chunk), std::to_string(subscribers),
                     std::to_string(flows), report::pct(block_rate), verdict});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: a 512-port chunk multiplexes ~126 subscribers per\n"
         "public IPv4 address but saturates under a single busy browsing\n"
         "session (hundreds of concurrent flows); 4K chunks (the paper's\n"
         "AS12978) keep blocking at zero for realistic workloads while\n"
         "still sharing one address among ~15 subscribers. This is the\n"
         "sharing-vs-usability dial the paper's survey respondents\n"
         "described dimensioning by trial and error.\n";
  return 0;
}
