// Quickstart: build a miniature NAT444 access line (device behind a home
// CPE behind a carrier-grade NAT), run one Netalyzr-style session against a
// measurement server, and print what every vantage point sees.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "nat/nat_device.hpp"
#include "netalyzr/client.hpp"
#include "netalyzr/server.hpp"
#include "netcore/ipv4.hpp"
#include "sim/clock.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"

int main() {
  using namespace cgn;
  using netcore::Ipv4Address;

  // --- 1. A virtual clock and an empty network (one "core" node). --------
  sim::Clock clock;
  sim::Network net(clock);

  // --- 2. A public measurement server three hops off the core. -----------
  sim::NodeId rack = net.add_router_chain(net.root(), 3, "dc");
  sim::NodeId server_host = net.add_node(rack, "server");
  netalyzr::NetalyzrServer server(server_host, Ipv4Address{16, 255, 0, 10});
  server.install(net);

  // --- 3. An ISP that translates twice (Figure 2, subscriber C). ---------
  // The carrier NAT: pool of four public addresses, chunked random ports,
  // 35-second UDP timeout, four hops from the subscriber.
  sim::NodeId isp = net.add_router_chain(net.root(), 1, "isp");
  sim::NodeId cgn_node = net.add_node(isp, "cgn");
  nat::NatConfig cgn_cfg;
  cgn_cfg.name = "CGN";
  cgn_cfg.mapping = nat::MappingType::address_restricted;
  cgn_cfg.port_allocation = nat::PortAllocation::chunk_random;
  cgn_cfg.chunk_size = 2048;
  cgn_cfg.udp_timeout_s = 35.0;
  std::vector<Ipv4Address> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(Ipv4Address(16, 10, 0, 10 + i));
  nat::NatDevice cgn(cgn_cfg, pool, sim::Rng(1));
  net.set_middlebox(cgn_node, &cgn);
  for (auto a : pool) net.register_address(a, cgn_node, net.root());

  // The home CPE: one CGN-internal address on its WAN side, 192.168 inside.
  sim::NodeId access = net.add_router_chain(cgn_node, 2, "access");
  sim::NodeId cpe_node = net.add_node(access, "cpe");
  Ipv4Address cpe_wan{100, 64, 7, 2};  // RFC 6598 shared address space
  nat::NatConfig cpe_cfg;
  cpe_cfg.name = "HomeBox 3000";
  cpe_cfg.mapping = nat::MappingType::full_cone;
  cpe_cfg.udp_timeout_s = 65.0;
  nat::NatDevice cpe(cpe_cfg, {cpe_wan}, sim::Rng(2));
  net.set_middlebox(cpe_node, &cpe);
  net.register_address(cpe_wan, cpe_node, cgn_node);  // scoped to the ISP

  // The subscriber's device on the home LAN.
  sim::NodeId device = net.add_node(cpe_node, "laptop");
  Ipv4Address device_addr{192, 168, 1, 2};
  net.add_local_address(device, device_addr);
  net.register_address(device_addr, device, cpe_node);
  sim::PortDemux demux;
  demux.attach(net, device);

  // --- 4. Run a Netalyzr session from the device. ------------------------
  netalyzr::ClientContext ctx;
  ctx.host = device;
  ctx.device_address = device_addr;
  ctx.upnp_cpe = &cpe;  // the CPE answers UPnP queries
  netalyzr::NetalyzrClient client(ctx, demux, sim::Rng(3));

  auto session = client.run_basic(net, server);
  std::cout << "Address test (Table 4 vantage points):\n"
            << "  IPdev (device):        " << session.ip_dev.to_string()
            << "\n  IPcpe (UPnP from CPE): "
            << (session.ip_cpe ? session.ip_cpe->to_string() : "n/a")
            << "\n  IPpub (server view):   "
            << (session.ip_pub ? session.ip_pub->to_string() : "n/a")
            << "\n  => two layers of translation (NAT444): IPcpe is in "
               "100.64/10\n     and differs from IPpub.\n\n";

  std::cout << "Port translation test (ten TCP flows):\n";
  for (const auto& f : session.tcp_flows)
    std::cout << "  local " << f.local_port << "  ->  observed "
              << f.observed.to_string() << "\n";

  // --- 5. TTL-driven NAT enumeration (§6.3). ------------------------------
  netalyzr::TtlEnumConfig enum_cfg;
  client.run_enumeration(net, clock, server, enum_cfg, session);
  std::cout << "\nTTL-driven NAT enumeration (" << session.enumeration->experiments
            << " reachability experiments):\n";
  for (const auto& hop : session.enumeration->hops) {
    std::cout << "  hop " << hop.hop << ": "
              << (hop.stateful ? "STATEFUL (NAT)" : "stateless");
    if (hop.timeout_s)
      std::cout << ", mapping timeout ~" << *hop.timeout_s << " s";
    std::cout << "\n";
  }
  std::cout << "  => the CPE at hop 1 (65 s) and the CGN at hop 4 (35 s).\n";
  return 0;
}
