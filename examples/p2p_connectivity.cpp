// p2p_connectivity: quantifies the paper's §7 implication — "CGNs rule out
// peer-to-peer connectivity, complicating modern protocols such as WebRTC
// that now need to rely on rendezvous servers" — by hole punching between
// sampled subscriber pairs of a synthetic Internet and measuring how often
// a relay (TURN-style) would be required, split by the NAT layering of the
// two endpoints.
//
//   ./build/examples/p2p_connectivity [pairs]
#include <cstdlib>
#include <iostream>

#include "report/report.hpp"
#include "scenario/internet.hpp"
#include "traversal/hole_punch.hpp"

int main(int argc, char** argv) {
  using namespace cgn;
  std::size_t target_pairs =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

  scenario::InternetConfig cfg;
  cfg.seed = 99;
  cfg.routed_ases = 1000;
  cfg.pbl_eyeballs = 60;
  cfg.apnic_eyeballs = 64;
  cfg.cellular_ases = 8;
  auto internet = scenario::build_internet(cfg);

  // A rendezvous server at the core.
  sim::NodeId rv_host = internet->net.add_node(internet->net.root(), "rv");
  traversal::RendezvousServer rendezvous(
      rv_host, netcore::Ipv4Address{16, 254, 0, 1});
  rendezvous.install(internet->net);

  // Collect subscriber endpoints, classified by their NAT layering.
  enum class Kind { open_line, cpe_only, behind_cgn };
  struct Candidate {
    scenario::Subscriber* sub;
    Kind kind;
  };
  std::vector<Candidate> candidates;
  for (auto& isp : internet->isps) {
    for (auto& sub : isp.subscribers) {
      Kind kind = sub.behind_cgn ? Kind::behind_cgn
                  : sub.cpe      ? Kind::cpe_only
                                 : Kind::open_line;
      candidates.push_back({&sub, kind});
    }
  }
  std::cout << "Sampled " << candidates.size() << " subscriber lines from "
            << internet->isps.size() << " ISPs.\n\n";

  struct Bucket {
    std::size_t attempts = 0;
    std::size_t direct = 0;
  };
  Bucket matrix[3][3];
  sim::Rng rng = internet->fork_rng();

  std::uint64_t session = 1;
  std::uint16_t port = 52000;
  for (std::size_t i = 0; i < target_pairs; ++i) {
    const Candidate& a = candidates[rng.index(candidates.size())];
    const Candidate& b = candidates[rng.index(candidates.size())];
    if (a.sub == b.sub) continue;
    traversal::PunchPeer pa{a.sub->device,
                            {a.sub->device_address, port}, a.sub->demux};
    traversal::PunchPeer pb{b.sub->device,
                            {b.sub->device_address,
                             static_cast<std::uint16_t>(port + 1)},
                            b.sub->demux};
    auto result =
        traversal::punch(internet->net, rendezvous, pa, pb, session++);
    port = port >= 64000 ? 52000 : static_cast<std::uint16_t>(port + 2);

    auto& cell = matrix[static_cast<int>(a.kind)][static_cast<int>(b.kind)];
    auto& mirror = matrix[static_cast<int>(b.kind)][static_cast<int>(a.kind)];
    ++cell.attempts;
    if (&cell != &mirror) ++mirror.attempts;
    if (result == traversal::PunchResult::direct_both) {
      ++cell.direct;
      if (&cell != &mirror) ++mirror.direct;
    }
    // Keep NAT state from piling up between attempts.
    internet->clock.advance(400.0);
  }

  static const char* names[] = {"open line", "home NAT only", "behind CGN"};
  report::Table table({"A \\ B", names[0], names[1], names[2]});
  for (int r = 0; r < 3; ++r) {
    std::vector<std::string> row{names[r]};
    for (int c = 0; c < 3; ++c) {
      const Bucket& cell = matrix[r][c];
      row.push_back(cell.attempts == 0
                        ? "-"
                        : report::pct(static_cast<double>(cell.direct) /
                                      static_cast<double>(cell.attempts)) +
                              " of " + std::to_string(cell.attempts));
    }
    table.add_row(row);
  }
  std::cout << "Direct-connection success rate (UDP hole punching via a\n"
               "rendezvous server; everything else needs a relay):\n\n";
  table.print(std::cout);
  std::cout
      << "\nReading: pairs of ordinary home-NAT subscribers almost always\n"
         "punch through; once one side sits behind a CGN the success rate\n"
         "drops with the share of symmetric/port-restricted carrier NATs\n"
         "(Figure 13), and CGN-to-CGN pairs fare worst — the paper's\n"
         "WebRTC/gaming concern, quantified.\n";
  return 0;
}
