// Deterministic fault injection.
//
// The paper's vantage points measure through a lossy Internet: probes vanish,
// DHT peers go deaf, CGNs reboot and flush their translation state, and port
// pools run hot. A FaultPlan describes those impairments declaratively; a
// FaultInjector turns the plan into per-packet decisions drawn from
// Rng::fork substreams, so a given (seed, plan) fires the exact same faults
// no matter how many worker threads the campaign runs on. With the default
// (inactive) plan the injector draws no random numbers at all, which keeps
// clean runs byte-identical to a build without fault hooks.
//
// Injection points: sim::Network (per-hop loss, delivery duplication,
// unresponsive endpoints) and nat::NatDevice (scheduled restarts, port-pool
// pressure windows). Consumers opt into resilience via fault::RetryPolicy
// (see retry.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace cgn::fault {

/// Per-hop / per-delivery link impairments.
struct LinkFaults {
  double loss_rate = 0.0;         ///< P(drop) at every traversed hop
  double duplication_rate = 0.0;  ///< P(second delivery) at the receiver
};

/// Application-level deafness: a peer whose inbound traffic is discarded
/// (BitTorrent client crashed, strict firewall) while its own outbound
/// still flows — the peers Richter et al. probe and then discard (§4).
struct PeerFaults {
  double unresponsive_fraction = 0.0;  ///< default share of BT peers per AS
  /// Per-AS overrides (ASN -> fraction), for skewed scenarios.
  std::unordered_map<std::uint32_t, double> by_as;

  [[nodiscard]] double rate_for(std::uint32_t asn) const {
    auto it = by_as.find(asn);
    return it == by_as.end() ? unresponsive_fraction : it->second;
  }
};

/// Campaign-infrastructure faults: a measurement *worker* (not the network)
/// dies and takes its shard with it — the collector crashes Richter et al.'s
/// long crawls had to survive. Crashes fire at shard dispatch, before the
/// shard body runs, so a supervised retry replays a clean substream and
/// stays bit-identical (see cgn::super).
struct ShardFaults {
  /// P(a given shard attempt is killed), drawn independently per attempt
  /// from fork(plan.seed ^ salt, shard) — a pure function of what the
  /// shard is, so crash patterns are thread-count invariant.
  double crash_rate = 0.0;
};

/// CGN device faults: scheduled restarts that flush all dynamic state
/// (mappings, port accounting, chunk assignments) and transient port-pool
/// pressure windows during which part of the external port range is
/// unusable (e.g. reserved by an operator maintenance job).
struct NatFaults {
  double restart_period_s = 0.0;  ///< 0 disables restarts
  double pressure_period_s = 0.0;        ///< 0 disables pressure windows
  double pressure_duration_s = 0.0;      ///< window length per period
  double pressure_reserve_fraction = 0.0;  ///< top share of ports blocked
};

/// The complete impairment scenario. Value-semantic and cheap to copy; an
/// all-defaults plan is "inactive" and injects nothing.
struct FaultPlan {
  /// Root of every fault substream. Independent from the world seed so the
  /// same world can be re-run under different adversity.
  std::uint64_t seed = 0xfa017;
  LinkFaults link;
  PeerFaults peers;
  NatFaults nat;
  ShardFaults shards;

  [[nodiscard]] bool active() const {
    return link.loss_rate > 0 || link.duplication_rate > 0 ||
           peers.unresponsive_fraction > 0 || !peers.by_as.empty() ||
           nat.restart_period_s > 0 || nat.pressure_period_s > 0 ||
           shards.crash_rate > 0;
  }

  /// Canonical one-line rendering (also the hash input).
  [[nodiscard]] std::string describe() const;
  /// FNV-1a over describe(): stable across runs/platforms, recorded in
  /// bench JSON so trajectories distinguish clean from impaired runs.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Substream salts: each injection context derives its decisions from
/// fork(plan.seed ^ salt, shard), keeping contexts independent.
inline constexpr std::uint64_t kSaltSerial = 0;
inline constexpr std::uint64_t kSaltNetalyzr = 1;
inline constexpr std::uint64_t kSaltPingSweep = 2;
inline constexpr std::uint64_t kSaltBuilder = 3;
inline constexpr std::uint64_t kSaltRetryJitter = 4;
inline constexpr std::uint64_t kSaltShardCrash = 5;

class FaultInjector;

/// Installs a thread-local fault substream for one campaign shard, mirroring
/// sim::ThreadClockScope. Every drop/duplication decision on this thread
/// then draws from fork(plan.seed ^ salt, shard) — a function of what the
/// shard *is*, not which worker runs it, so fault sequences are
/// thread-count invariant. No-op when the injector is null or inactive.
class StreamScope {
 public:
  StreamScope(const FaultInjector* injector, std::uint64_t salt,
              std::uint64_t shard);
  ~StreamScope();
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  bool active_;
  sim::Rng rng_;
  sim::Rng* prev_;
};

/// Turns a FaultPlan into deterministic per-packet decisions. One injector
/// per Internet; sim::Network calls the hook methods from the delivery path
/// (only when attached, i.e. only when the plan is active).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool active() const noexcept { return plan_.active(); }

  /// True when the packet is lost on the wire into the current hop. Draws
  /// from the calling thread's substream only when loss_rate > 0.
  [[nodiscard]] bool drop_at_hop();
  /// True when the delivered packet arrives twice (receiver re-invoked).
  [[nodiscard]] bool duplicate_delivery();

  /// The deterministic substream for (salt, shard): a pure function of the
  /// plan seed, never of injector state — StreamScope and the scenario
  /// builder derive their decision streams here.
  [[nodiscard]] sim::Rng substream(std::uint64_t salt,
                                   std::uint64_t shard) const;

  /// True when `attempt` (1-based) of `shard` under `campaign_salt` is
  /// killed at dispatch. A pure function of (plan seed, salt, shard,
  /// attempt): cgn::super consults it before running the shard body, so
  /// crash patterns are thread-count invariant and retries can
  /// deterministically succeed.
  [[nodiscard]] bool shard_crash(std::uint64_t campaign_salt,
                                 std::uint64_t shard, int attempt) const;

  /// Marks (node, port) as an unresponsive endpoint: inbound packets to it
  /// are dropped at delivery. Build-time only; reads are lock-free.
  void mark_unresponsive(std::uint32_t node, std::uint16_t port);
  [[nodiscard]] bool unresponsive(std::uint32_t node,
                                  std::uint16_t port) const {
    return !unresponsive_.empty() &&
           unresponsive_.contains((std::uint64_t{node} << 16) | port);
  }
  [[nodiscard]] std::size_t unresponsive_count() const noexcept {
    return unresponsive_.size();
  }

 private:
  friend class StreamScope;
  /// The calling thread's substream: the StreamScope override inside
  /// campaign shards, else the serial stream (main thread only).
  [[nodiscard]] sim::Rng& stream() noexcept {
    return t_stream_ ? *t_stream_ : serial_stream_;
  }

  static thread_local sim::Rng* t_stream_;

  FaultPlan plan_;
  sim::Rng serial_stream_;
  std::unordered_set<std::uint64_t> unresponsive_;
};

}  // namespace cgn::fault
