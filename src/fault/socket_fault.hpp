// Deterministic socket-fault injection for the observatory's push path.
//
// The link/peer/NAT fault plans (fault.hpp) impair the *simulated* network;
// this profile impairs a real loopback socket so tests and soak drills can
// exercise the ingest boundary the way a flaky WAN would: short writes
// (max_write_bytes chunks the send path, forcing the receiver through its
// partial-read loops), slow writers (write_delay_us between chunks — the
// client-side half of a slow-loris), and hard mid-frame disconnects
// (disconnect_after_bytes closes the socket after exactly N bytes, possibly
// inside a frame header). All three are byte-deterministic: the same
// profile over the same stream faults at the same offsets every run.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cgn::fault {

struct SocketFaultProfile {
  /// Largest single send() the client issues; 0 = unlimited. Small values
  /// (1-7 bytes) split frame headers across reads on the receiver.
  std::size_t max_write_bytes = 0;
  /// Wall-clock pause between chunked sends (a deliberately slow writer).
  int write_delay_us = 0;
  /// Hard-close the socket after exactly this many bytes have been sent
  /// (mid-frame when it lands inside one); 0 = never. The writer sees the
  /// failure as a thrown error and may reconnect-and-resume.
  std::uint64_t disconnect_after_bytes = 0;

  [[nodiscard]] bool active() const noexcept {
    return max_write_bytes != 0 || write_delay_us != 0 ||
           disconnect_after_bytes != 0;
  }
};

}  // namespace cgn::fault
