#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace cgn::fault {

namespace {

// File-scope metric handles: resolved once, bumped with one relaxed add.
obs::Counter& g_injected_loss = obs::counter("fault.injected_loss");
obs::Counter& g_injected_dup = obs::counter("fault.injected_duplication");
obs::Counter& g_retries = obs::counter("fault.retries");
obs::Counter& g_retry_recoveries = obs::counter("fault.retry_recoveries");
obs::Counter& g_retry_exhausted = obs::counter("fault.retry_exhausted");

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_salt(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ull * (salt + 1));
}

}  // namespace

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os.precision(12);
  os << "seed=" << seed << " loss=" << link.loss_rate
     << " dup=" << link.duplication_rate
     << " unresponsive=" << peers.unresponsive_fraction;
  // Canonical order for the per-AS overrides so the hash is stable.
  std::vector<std::pair<std::uint32_t, double>> overrides(peers.by_as.begin(),
                                                          peers.by_as.end());
  std::sort(overrides.begin(), overrides.end());
  for (const auto& [asn, rate] : overrides)
    os << " unresponsive[AS" << asn << "]=" << rate;
  os << " restart_period=" << nat.restart_period_s
     << " pressure_period=" << nat.pressure_period_s
     << " pressure_duration=" << nat.pressure_duration_s
     << " pressure_reserve=" << nat.pressure_reserve_fraction;
  // Appended only when set so plans predating shard crashes keep their hash.
  if (shards.crash_rate > 0) os << " shard_crash=" << shards.crash_rate;
  return os.str();
}

std::uint64_t FaultPlan::hash() const { return fnv1a(describe()); }

thread_local sim::Rng* FaultInjector::t_stream_ = nullptr;

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan),
      serial_stream_(sim::Rng::fork(mix_salt(plan.seed, kSaltSerial), 0)) {}

sim::Rng FaultInjector::substream(std::uint64_t salt,
                                  std::uint64_t shard) const {
  return sim::Rng::fork(mix_salt(plan_.seed, salt), shard);
}

bool FaultInjector::shard_crash(std::uint64_t campaign_salt,
                                std::uint64_t shard, int attempt) const {
  const double rate = plan_.shards.crash_rate;
  if (rate <= 0 || attempt <= 0) return false;
  // One substream per (campaign, shard); draw `attempt` variates so each
  // attempt's fate is independent yet replayable in isolation.
  sim::Rng rng = substream(kSaltShardCrash + (campaign_salt << 8), shard);
  double draw = 1.0;
  for (int i = 0; i < attempt; ++i) draw = rng.uniform01();
  return draw < rate;
}

bool FaultInjector::drop_at_hop() {
  if (plan_.link.loss_rate <= 0) return false;
  if (!stream().chance(plan_.link.loss_rate)) return false;
  g_injected_loss.inc();
  return true;
}

bool FaultInjector::duplicate_delivery() {
  if (plan_.link.duplication_rate <= 0) return false;
  if (!stream().chance(plan_.link.duplication_rate)) return false;
  g_injected_dup.inc();
  return true;
}

void FaultInjector::mark_unresponsive(std::uint32_t node, std::uint16_t port) {
  unresponsive_.insert((std::uint64_t{node} << 16) | port);
}

StreamScope::StreamScope(const FaultInjector* injector, std::uint64_t salt,
                         std::uint64_t shard)
    : active_(injector != nullptr && injector->active()),
      rng_(active_ ? injector->substream(salt, shard) : sim::Rng(0)),
      prev_(FaultInjector::t_stream_) {
  if (active_) FaultInjector::t_stream_ = &rng_;
}

StreamScope::~StreamScope() {
  if (active_) FaultInjector::t_stream_ = prev_;
}

namespace detail {

void note_retry() { g_retries.inc(); }
void note_retry_recovery() { g_retry_recoveries.inc(); }
void note_retry_exhausted() { g_retry_exhausted.inc(); }

}  // namespace detail

}  // namespace cgn::fault
