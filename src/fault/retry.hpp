// Shared retry/timeout/exponential-backoff policy for the measurement
// drivers (DHT crawler, Netalyzr client).
//
// The real tools retransmit: Richter et al. re-issue TTL-limited probes and
// timeout probes, and DHT crawlers retry pings before declaring a peer
// unresponsive. retry_loop() is the single implementation both drivers
// share. Backoff runs on a scoped timeline: the caller's (virtual,
// per-shard) clock advances between attempts — so time-dependent middlebox
// state (mapping expiry, pressure windows) evolves while a probe waits —
// and rewinds to the probe's start time when the loop ends, because the
// live tools multiplex thousands of probes concurrently and their timeouts
// overlap rather than serialize. Timing-sensitive probes (TTL enumeration,
// timeout sweeps) pass a null clock instead, modelling sub-second
// retransmission that must not perturb the idle interval under measurement.
#pragma once

#include <algorithm>

#include "sim/clock.hpp"
#include "sim/rng.hpp"

namespace cgn::fault {

namespace detail {
// obs counters live in fault.cpp so this header stays template-friendly.
void note_retry();
void note_retry_recovery();
void note_retry_exhausted();
}  // namespace detail

/// Attempt budget + backoff schedule. The default (attempts = 1) is "no
/// retries": retry_loop degenerates to a single attempt with no RNG draws
/// and no clock advance, keeping clean runs bit-identical to the pre-fault
/// code path.
struct RetryPolicy {
  int attempts = 1;           ///< total tries per probe (1 = no retry)
  double base_backoff_s = 1.0;  ///< wait before the 2nd attempt
  double backoff_factor = 2.0;  ///< exponential growth per further attempt
  double jitter_fraction = 0.0;  ///< extra uniform [0, f) share per wait

  [[nodiscard]] bool enabled() const noexcept { return attempts > 1; }

  /// Backoff before attempt number `attempt` (2-based). Jitter draws from
  /// `rng` only when jitter_fraction > 0 and rng != nullptr.
  [[nodiscard]] double backoff_before(int attempt, sim::Rng* rng) const {
    double wait = base_backoff_s;
    for (int i = 2; i < attempt; ++i) wait *= backoff_factor;
    if (jitter_fraction > 0 && rng != nullptr)
      wait *= 1.0 + jitter_fraction * rng->uniform01();
    return wait;
  }
};

/// Runs `attempt` (a callable returning true on success) up to
/// policy.attempts times, advancing `clock` by the backoff schedule between
/// tries and rewinding it to the entry time once the loop ends (scoped
/// timeline — see the header comment). Returns the final outcome. `clock`
/// and `rng` may be null.
template <typename AttemptFn>
bool retry_loop(const RetryPolicy& policy, sim::Clock* clock, sim::Rng* rng,
                AttemptFn&& attempt) {
  const int budget = std::max(1, policy.attempts);
  const sim::SimTime t0 = clock != nullptr ? clock->now() : 0.0;
  bool ok = false;
  for (int n = 1;; ++n) {
    if (attempt()) {
      if (n > 1) detail::note_retry_recovery();
      ok = true;
      break;
    }
    if (n >= budget) {
      if (budget > 1) detail::note_retry_exhausted();
      break;
    }
    detail::note_retry();
    if (clock != nullptr) clock->advance(policy.backoff_before(n + 1, rng));
  }
  if (clock != nullptr && clock->now() > t0) clock->rewind(t0);
  return ok;
}

}  // namespace cgn::fault
