// DNS64 AAAA synthesis (RFC 6147) and client-side pref64 discovery
// (RFC 7050-style probing of an IPv4-only anchor name).
//
// The simulator models DNS names by their A-record address: resolving a
// "name" means asking for the AAAA record of the host whose v4 address is
// `name`. Hosts registered with a native AAAA are returned verbatim —
// synthesis only kicks in for v4-only hosts, exactly the RFC 6147 rule the
// satellite test pins down.
#pragma once

#include <cstdint>
#include <optional>

#include "flat/flat.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"

namespace cgn::v6 {

/// The RFC 7050 IPv4-only anchors (ipv4only.arpa A records): names that by
/// contract never have a native AAAA, so any AAAA answer for them proves a
/// DNS64 is on-path and exposes its pref64.
inline constexpr netcore::Ipv4Address kIpv4OnlyAnchorA{192, 0, 0, 170};
inline constexpr netcore::Ipv4Address kIpv4OnlyAnchorB{192, 0, 0, 171};

class Dns64Resolver {
 public:
  explicit Dns64Resolver(netcore::Ipv6Prefix pref64) : pref64_(pref64) {}

  /// Registers a dual-stack host: DNS64 must NOT synthesize for it.
  void add_native_aaaa(netcore::Ipv4Address name, netcore::Ipv6Address aaaa) {
    native_.insert_or_assign(name, aaaa);
  }

  struct Answer {
    netcore::Ipv6Address aaaa;
    bool synthesized = false;  ///< false: native AAAA returned verbatim
  };

  /// AAAA resolution with RFC 6147 semantics. Never fails in this model:
  /// a v4-only host always yields a synthesized answer.
  [[nodiscard]] Answer resolve_aaaa(netcore::Ipv4Address name) const {
    ++queries_;
    if (auto it = native_.find(name); it != native_.end()) {
      return {it->second, false};
    }
    ++synthesized_;
    return {netcore::pref64_embed(pref64_, name), true};
  }

  [[nodiscard]] const netcore::Ipv6Prefix& pref64() const noexcept {
    return pref64_;
  }
  [[nodiscard]] std::uint64_t queries() const noexcept { return queries_; }
  [[nodiscard]] std::uint64_t synthesized() const noexcept {
    return synthesized_;
  }

 private:
  netcore::Ipv6Prefix pref64_;
  flat::FlatMap<netcore::Ipv4Address, netcore::Ipv6Address> native_;
  mutable std::uint64_t queries_ = 0;
  mutable std::uint64_t synthesized_ = 0;
};

/// Client-side pref64 discovery: resolves both IPv4-only anchors through
/// `dns` and scans the six RFC 6052 prefix lengths (longest first) for the
/// one under which both answers extract back to their anchor. Returns
/// nullopt when the resolver answered natively (no DNS64 on path) or no
/// length is consistent.
[[nodiscard]] std::optional<netcore::Ipv6Prefix> discover_pref64(
    const Dns64Resolver& dns);

}  // namespace cgn::v6
