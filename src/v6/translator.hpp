// IPv6-transition data-plane elements (DESIGN.md §14).
//
// The simulated network routes on the IPv4 header; IPv6 rides in the
// packet's POD overlay (sim::V6Overlay). Every v6 line keeps a unique
// *underlay v4 handle* — an address drawn from the ISP's internal ranges
// exactly like a NAT444 line address — and the elements here translate
// between the overlay's true 128-bit addresses and that handle:
//
//   Nat64Device   RFC 6146 stateful translator (also the PLAT of 464XLAT).
//                 Wraps an unmodified nat::NatDevice core keyed on the
//                 underlay handle, so port-allocation strategies, mapping
//                 timeouts, restart flushes and pressure windows are the
//                 same code the NAT444 figures exercise.
//   DsLiteAftr    RFC 6333 AFTR: terminates per-subscriber softwires and
//                 runs a NAT44 core over (softwire, inner v4) pairs, which
//                 is what lets two B4s share inner 10.0.0.1.
//   B4Element     the subscriber end of a DS-Lite softwire (encap/decap).
//   ClatElement   stateless RFC 6877 CLAT: v4 apps on a v6-only line.
//   HostV6Stack   a v6-only host: flows to destinations with no AAAA
//                 (v4 literals) die here — the Big-NAT battery's
//                 NAT64-vs-464XLAT discriminator.
#pragma once

#include <cstdint>

#include "fault/fault.hpp"
#include "flat/flat.hpp"
#include "nat/nat_device.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::v6 {

/// Counters of the v6-specific half of a translator (the embedded NAT core
/// keeps its own nat::NatStats).
struct V6Stats {
  std::uint64_t out_translated = 0;
  std::uint64_t in_translated = 0;
  std::uint64_t drop_unknown_host = 0;   ///< src v6 not provisioned here
  std::uint64_t drop_not_pref64 = 0;     ///< dst outside the pref64
  std::uint64_t drop_no_overlay = 0;     ///< v4 packet hit a v6-only path
};

/// RFC 6146 stateful NAT64. `add_host` provisions one v6 host and its
/// underlay handle; the embedded NAT44 core sees only handles, so all of
/// its behaviour (and its fault hooks) transfer unchanged.
class Nat64Device final : public sim::Middlebox {
 public:
  Nat64Device(nat::NatConfig config,
              std::vector<netcore::Ipv4Address> external_pool, sim::Rng rng,
              netcore::Ipv6Prefix pref64)
      : core_(std::move(config), std::move(external_pool), std::move(rng)),
        pref64_(pref64) {}

  void add_host(netcore::Ipv6Address host, netcore::Ipv4Address underlay) {
    v6_to_underlay_.insert_or_assign(host, underlay);
    underlay_to_v6_.insert_or_assign(underlay, host);
  }

  Verdict process_outbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_hairpin(sim::Packet& pkt, sim::SimTime now) override;
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override {
    return core_.owns_external(a);
  }

  /// Fault hooks pass straight to the core: a scheduled restart flushes the
  /// NAT64 binding table, a pressure window shrinks its port pool.
  void set_fault_profile(const fault::NatFaults& faults,
                         double restart_phase_s, double pressure_phase_s) {
    core_.set_fault_profile(faults, restart_phase_s, pressure_phase_s);
  }

  [[nodiscard]] nat::NatDevice& core() noexcept { return core_; }
  [[nodiscard]] const nat::NatDevice& core() const noexcept { return core_; }
  [[nodiscard]] const netcore::Ipv6Prefix& pref64() const noexcept {
    return pref64_;
  }
  [[nodiscard]] const V6Stats& v6_stats() const noexcept { return v6_stats_; }

 private:
  nat::NatDevice core_;
  netcore::Ipv6Prefix pref64_;
  flat::FlatMap<netcore::Ipv6Address, netcore::Ipv4Address> v6_to_underlay_;
  flat::FlatMap<netcore::Ipv4Address, netcore::Ipv6Address> underlay_to_v6_;
  V6Stats v6_stats_;
};

/// RFC 6333 AFTR. Each subscriber softwire is keyed by its B4's v6 address;
/// inner v4 addresses may overlap across softwires, so the NAT44 core is
/// keyed on per-(softwire, inner address) *handles* drawn from a private
/// 240.0.0.0/4 space that never routes. Handles are assigned first-seen and
/// looked up on every later packet, which keeps shard-retry replays
/// bit-identical (same key -> same handle, no matter where a replay starts).
class DsLiteAftr final : public sim::Middlebox {
 public:
  DsLiteAftr(nat::NatConfig config,
             std::vector<netcore::Ipv4Address> external_pool, sim::Rng rng,
             netcore::Ipv6Address aftr_address)
      : core_(std::move(config), std::move(external_pool), std::move(rng)),
        aftr_address_(aftr_address) {}

  /// Provisions a subscriber softwire: the B4's v6 address and the line's
  /// routable underlay handle (where descending packets are sent).
  void add_softwire(netcore::Ipv6Address b4, netcore::Ipv4Address underlay) {
    b4_to_underlay_.insert_or_assign(b4, underlay);
    underlay_to_b4_.insert_or_assign(underlay, b4);
  }

  Verdict process_outbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime now) override;
  Verdict process_hairpin(sim::Packet& pkt, sim::SimTime now) override;
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override {
    return core_.owns_external(a);
  }

  void set_fault_profile(const fault::NatFaults& faults,
                         double restart_phase_s, double pressure_phase_s) {
    core_.set_fault_profile(faults, restart_phase_s, pressure_phase_s);
  }

  [[nodiscard]] nat::NatDevice& core() noexcept { return core_; }
  [[nodiscard]] const nat::NatDevice& core() const noexcept { return core_; }
  [[nodiscard]] netcore::Ipv6Address aftr_address() const noexcept {
    return aftr_address_;
  }
  [[nodiscard]] const V6Stats& v6_stats() const noexcept { return v6_stats_; }
  /// Distinct (softwire, inner v4) pairs seen so far.
  [[nodiscard]] std::size_t handle_count() const noexcept {
    return handle_by_key_.size();
  }

 private:
  static constexpr std::uint32_t kHandleBase = 0xF0000000;  // 240.0.0.0/4

  [[nodiscard]] static std::uint64_t pack_key(netcore::Ipv4Address underlay,
                                              netcore::Ipv4Address inner) {
    return (std::uint64_t{underlay.value()} << 32) | inner.value();
  }
  netcore::Ipv4Address handle_for(netcore::Ipv4Address underlay,
                                  netcore::Ipv4Address inner);

  nat::NatDevice core_;
  netcore::Ipv6Address aftr_address_;
  flat::FlatMap<netcore::Ipv6Address, netcore::Ipv4Address> b4_to_underlay_;
  flat::FlatMap<netcore::Ipv4Address, netcore::Ipv6Address> underlay_to_b4_;
  flat::FlatMap<std::uint64_t, netcore::Ipv4Address> handle_by_key_;
  flat::FlatMap<netcore::Ipv4Address, std::uint64_t> key_by_handle_;
  std::uint32_t next_handle_ = kHandleBase;
  V6Stats v6_stats_;
};

/// The subscriber end of a DS-Lite softwire: stateless v4-in-v6
/// encapsulation on the way up, decapsulation (restoring the inner v4
/// destination the AFTR stashed in the overlay) on the way down.
class B4Element final : public sim::Middlebox {
 public:
  B4Element(netcore::Ipv6Address b4, netcore::Ipv6Address aftr,
            netcore::Ipv4Address underlay)
      : b4_(b4), aftr_(aftr), underlay_(underlay) {}

  Verdict process_outbound(sim::Packet& pkt, sim::SimTime) override {
    pkt.v6.src = b4_;
    pkt.v6.dst = aftr_;
    pkt.v6.present = true;
    return Verdict::forward;
  }
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime) override {
    if (!pkt.v6.present || pkt.v6.dst != b4_) return Verdict::drop_other;
    pkt.dst.address = pkt.v6.inner;
    pkt.v6.present = false;
    return Verdict::forward;
  }
  Verdict process_hairpin(sim::Packet&, sim::SimTime) override {
    return Verdict::drop_other;
  }
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override {
    return a == underlay_;
  }

 private:
  netcore::Ipv6Address b4_;
  netcore::Ipv6Address aftr_;
  netcore::Ipv4Address underlay_;
};

/// Stateless RFC 6877 CLAT (customer-side translator of 464XLAT). The
/// device keeps a private v4 (RFC 7335 192.0.0.0/29 style); the CLAT maps
/// it onto the line's underlay handle and embeds the v4 destination into
/// the carrier's pref64, port-preserving — all NAT state lives in the PLAT.
class ClatElement final : public sim::Middlebox {
 public:
  ClatElement(netcore::Ipv6Address clat, netcore::Ipv6Prefix pref64,
              netcore::Ipv4Address underlay, netcore::Ipv4Address device_v4)
      : clat_(clat), pref64_(pref64), underlay_(underlay),
        device_v4_(device_v4) {}

  Verdict process_outbound(sim::Packet& pkt, sim::SimTime) override {
    pkt.v6.src = clat_;
    pkt.v6.dst = netcore::pref64_embed(pref64_, pkt.dst.address);
    pkt.v6.present = true;
    pkt.src.address = underlay_;
    return Verdict::forward;
  }
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime) override {
    if (!pkt.v6.present) return Verdict::drop_other;
    pkt.dst.address = device_v4_;
    pkt.v6.present = false;
    return Verdict::forward;
  }
  Verdict process_hairpin(sim::Packet&, sim::SimTime) override {
    return Verdict::drop_other;
  }
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override {
    return a == underlay_;
  }

 private:
  netcore::Ipv6Address clat_;
  netcore::Ipv6Prefix pref64_;
  netcore::Ipv4Address underlay_;
  netcore::Ipv4Address device_v4_;
};

/// A v6-only host's network stack (NAT64 line without CLAT). Destinations
/// acquired through DNS (note_resolved) get their AAAA stamped into the
/// overlay; raw v4 literals have no AAAA and are dropped on the floor —
/// which is precisely what breaks v4-literal applications behind NAT64 and
/// what the Big-NAT battery probes for.
class HostV6Stack final : public sim::Middlebox {
 public:
  HostV6Stack(netcore::Ipv6Address host, netcore::Ipv4Address underlay,
              netcore::Ipv4Address device_v4)
      : host_(host), underlay_(underlay), device_v4_(device_v4) {}

  /// Records a DNS answer: flows to `name` will carry `aaaa` as overlay dst.
  void note_resolved(netcore::Ipv4Address name, netcore::Ipv6Address aaaa) {
    resolved_.insert_or_assign(name, aaaa);
  }

  Verdict process_outbound(sim::Packet& pkt, sim::SimTime) override {
    auto aaaa = resolved_.find(pkt.dst.address);
    if (aaaa == resolved_.end()) {
      ++stats_.drop_unresolved_literal;
      return Verdict::drop_no_mapping;
    }
    pkt.v6.src = host_;
    pkt.v6.dst = aaaa->second;
    pkt.v6.present = true;
    pkt.src.address = underlay_;
    return Verdict::forward;
  }
  Verdict process_inbound(sim::Packet& pkt, sim::SimTime) override {
    if (!pkt.v6.present) return Verdict::drop_other;
    pkt.dst.address = device_v4_;
    pkt.v6.present = false;
    return Verdict::forward;
  }
  Verdict process_hairpin(sim::Packet&, sim::SimTime) override {
    return Verdict::drop_other;
  }
  [[nodiscard]] bool owns_external(netcore::Ipv4Address a) const override {
    return a == underlay_;
  }

  struct Stats {
    std::uint64_t drop_unresolved_literal = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  netcore::Ipv6Address host_;
  netcore::Ipv4Address underlay_;
  netcore::Ipv4Address device_v4_;
  flat::FlatMap<netcore::Ipv4Address, netcore::Ipv6Address> resolved_;
  Stats stats_;
};

}  // namespace cgn::v6
