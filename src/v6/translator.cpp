#include "v6/translator.hpp"

namespace cgn::v6 {

using Verdict = sim::Middlebox::Verdict;

// --- Nat64Device -----------------------------------------------------------

Verdict Nat64Device::process_outbound(sim::Packet& pkt, sim::SimTime now) {
  if (!pkt.v6.present) {
    ++v6_stats_.drop_no_overlay;
    return Verdict::drop_other;
  }
  auto underlay = v6_to_underlay_.find(pkt.v6.src);
  if (underlay == v6_to_underlay_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  auto v4dst = netcore::pref64_extract(pref64_, pkt.v6.dst);
  if (!v4dst) {
    ++v6_stats_.drop_not_pref64;
    return Verdict::drop_other;
  }
  // From here on the packet is plain IPv4: internal = the line's underlay
  // handle, destination = the address embedded in the pref64. The NAT44
  // core applies its port-allocation strategy, timeouts and fault schedule
  // exactly as it would for a NAT444 subscriber.
  pkt.src.address = underlay->second;
  pkt.dst.address = *v4dst;
  pkt.v6.present = false;
  Verdict v = core_.process_outbound(pkt, now);
  if (v == Verdict::forward) ++v6_stats_.out_translated;
  return v;
}

Verdict Nat64Device::process_inbound(sim::Packet& pkt, sim::SimTime now) {
  Verdict v = core_.process_inbound(pkt, now);
  if (v != Verdict::forward) return v;
  // The core rewrote dst to the internal endpoint — an underlay handle.
  auto host = underlay_to_v6_.find(pkt.dst.address);
  if (host == underlay_to_v6_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  pkt.v6.src = netcore::pref64_embed(pref64_, pkt.src.address);
  pkt.v6.dst = host->second;
  pkt.v6.inner = netcore::Ipv4Address{};
  pkt.v6.present = true;
  ++v6_stats_.in_translated;
  return Verdict::forward;
}

Verdict Nat64Device::process_hairpin(sim::Packet& pkt, sim::SimTime now) {
  if (!pkt.v6.present) {
    ++v6_stats_.drop_no_overlay;
    return Verdict::drop_other;
  }
  auto underlay = v6_to_underlay_.find(pkt.v6.src);
  if (underlay == v6_to_underlay_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  pkt.src.address = underlay->second;
  pkt.v6.present = false;
  Verdict v = core_.process_hairpin(pkt, now);
  if (v != Verdict::forward) return v;
  // Re-wrap for the destination line (dst is its underlay handle now).
  auto host = underlay_to_v6_.find(pkt.dst.address);
  if (host == underlay_to_v6_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  pkt.v6.src = netcore::pref64_embed(pref64_, pkt.src.address);
  pkt.v6.dst = host->second;
  pkt.v6.inner = netcore::Ipv4Address{};
  pkt.v6.present = true;
  return Verdict::forward;
}

// --- DsLiteAftr ------------------------------------------------------------

netcore::Ipv4Address DsLiteAftr::handle_for(netcore::Ipv4Address underlay,
                                            netcore::Ipv4Address inner) {
  const std::uint64_t key = pack_key(underlay, inner);
  if (auto it = handle_by_key_.find(key); it != handle_by_key_.end())
    return it->second;
  const netcore::Ipv4Address handle{next_handle_++};
  handle_by_key_.insert_or_assign(key, handle);
  key_by_handle_.insert_or_assign(handle, key);
  return handle;
}

Verdict DsLiteAftr::process_outbound(sim::Packet& pkt, sim::SimTime now) {
  if (!pkt.v6.present) {
    ++v6_stats_.drop_no_overlay;
    return Verdict::drop_other;
  }
  if (pkt.v6.dst != aftr_address_) {
    ++v6_stats_.drop_not_pref64;
    return Verdict::drop_other;
  }
  auto underlay = b4_to_underlay_.find(pkt.v6.src);
  if (underlay == b4_to_underlay_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  // Decapsulate onto a per-(softwire, inner v4) handle so overlapping inner
  // spaces (every home reusing 192.168.1.0/24 or 10.0.0.1) stay distinct
  // inside the shared NAT44 core.
  pkt.src.address = handle_for(underlay->second, pkt.src.address);
  pkt.v6.present = false;
  Verdict v = core_.process_outbound(pkt, now);
  if (v == Verdict::forward) ++v6_stats_.out_translated;
  return v;
}

Verdict DsLiteAftr::process_inbound(sim::Packet& pkt, sim::SimTime now) {
  Verdict v = core_.process_inbound(pkt, now);
  if (v != Verdict::forward) return v;
  auto key = key_by_handle_.find(pkt.dst.address);
  if (key == key_by_handle_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  const netcore::Ipv4Address underlay{
      static_cast<std::uint32_t>(key->second >> 32)};
  const netcore::Ipv4Address inner{
      static_cast<std::uint32_t>(key->second & 0xffffffffu)};
  auto b4 = underlay_to_b4_.find(underlay);
  if (b4 == underlay_to_b4_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  // Re-encapsulate: route down on the underlay handle, stash the inner v4
  // destination for the B4 to restore at decap time.
  pkt.dst.address = underlay;
  pkt.v6.src = aftr_address_;
  pkt.v6.dst = b4->second;
  pkt.v6.inner = inner;
  pkt.v6.present = true;
  ++v6_stats_.in_translated;
  return Verdict::forward;
}

Verdict DsLiteAftr::process_hairpin(sim::Packet& pkt, sim::SimTime now) {
  if (!pkt.v6.present) {
    ++v6_stats_.drop_no_overlay;
    return Verdict::drop_other;
  }
  auto underlay = b4_to_underlay_.find(pkt.v6.src);
  if (underlay == b4_to_underlay_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  pkt.src.address = handle_for(underlay->second, pkt.src.address);
  pkt.v6.present = false;
  Verdict v = core_.process_hairpin(pkt, now);
  if (v != Verdict::forward) return v;
  auto key = key_by_handle_.find(pkt.dst.address);
  if (key == key_by_handle_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  const netcore::Ipv4Address dst_underlay{
      static_cast<std::uint32_t>(key->second >> 32)};
  const netcore::Ipv4Address inner{
      static_cast<std::uint32_t>(key->second & 0xffffffffu)};
  auto b4 = underlay_to_b4_.find(dst_underlay);
  if (b4 == underlay_to_b4_.end()) {
    ++v6_stats_.drop_unknown_host;
    return Verdict::drop_no_mapping;
  }
  pkt.dst.address = dst_underlay;
  pkt.v6.src = aftr_address_;
  pkt.v6.dst = b4->second;
  pkt.v6.inner = inner;
  pkt.v6.present = true;
  return Verdict::forward;
}

}  // namespace cgn::v6
