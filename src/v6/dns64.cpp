#include "v6/dns64.hpp"

namespace cgn::v6 {

std::optional<netcore::Ipv6Prefix> discover_pref64(const Dns64Resolver& dns) {
  const Dns64Resolver::Answer a = dns.resolve_aaaa(kIpv4OnlyAnchorA);
  const Dns64Resolver::Answer b = dns.resolve_aaaa(kIpv4OnlyAnchorB);
  if (!a.synthesized || !b.synthesized) return std::nullopt;
  // Longest-first scan: a shorter length can alias a longer one when the
  // suffix bytes happen to look like a prefix, never the other way round.
  for (int i = netcore::kPref64LengthCount - 1; i >= 0; --i) {
    const int len = netcore::kPref64Lengths[i];
    const netcore::Ipv6Prefix pa(a.aaaa, len);
    const netcore::Ipv6Prefix pb(b.aaaa, len);
    if (pa != pb) continue;
    auto xa = netcore::pref64_extract(pa, a.aaaa);
    auto xb = netcore::pref64_extract(pb, b.aaaa);
    if (xa && *xa == kIpv4OnlyAnchorA && xb && *xb == kIpv4OnlyAnchorB)
      return pa;
  }
  return std::nullopt;
}

}  // namespace cgn::v6
