// Wall-clock attribution for campaign phases.
//
// PhaseProfiler keeps a begin/end stack; nested phases accumulate under a
// slash-joined path ("campaign.crawl/walk"), so the export shows both the
// totals and where inside a phase the time went. ScopedPhase is the RAII
// entry point campaign drivers use; ScopedTimer is the bare building block
// for accumulating a double somewhere else.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cgn::obs {

class PhaseProfiler {
 public:
  struct Phase {
    std::string path;  ///< slash-joined nesting path
    int depth = 0;
    std::uint64_t count = 0;  ///< times entered
    double wall_s = 0.0;      ///< accumulated wall-clock seconds
  };

  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  static PhaseProfiler& global();

  /// `name` must not contain '/'. Phases nest: a begin() inside an open
  /// phase records under "<outer>/<name>".
  void begin(std::string_view name);
  /// Closes the innermost open phase. Throws std::logic_error when no phase
  /// is open.
  void end();

  [[nodiscard]] int open_depth() const;

  /// All recorded phases in first-entered order.
  [[nodiscard]] std::vector<Phase> phases() const;

  /// Forgets recorded phases. Open phases survive (their frames are still
  /// on the stack) and re-record on end().
  void reset();

  /// JSON array: [{"phase":path,"depth":d,"count":n,"wall_s":s},...].
  /// Composable: no trailing newline.
  void export_json(std::ostream& os) const;

  /// Indented phase table rendered with report::Table.
  void print(std::ostream& os) const;

 private:
  struct Frame {
    std::string path;
    std::chrono::steady_clock::time_point start;
  };

  mutable std::mutex mu_;
  std::vector<Frame> stack_;
  std::vector<Phase> phases_;                          // insertion order
  std::unordered_map<std::string, std::size_t> index_;  // path -> phases_ idx
};

/// RAII phase: begin on construction, end on destruction.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name,
                       PhaseProfiler& profiler = PhaseProfiler::global())
      : profiler_(&profiler) {
    profiler_->begin(name);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { profiler_->end(); }

 private:
  PhaseProfiler* profiler_;
};

/// Accumulates elapsed wall-clock seconds into a caller-owned double.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    *sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cgn::obs
