#include "obs/profiler.hpp"

#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "report/report.hpp"

namespace cgn::obs {

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler instance;
  return instance;
}

void PhaseProfiler::begin(std::string_view name) {
  std::lock_guard lock(mu_);
  std::string path = stack_.empty()
                         ? std::string(name)
                         : stack_.back().path + "/" + std::string(name);
  stack_.push_back({std::move(path), std::chrono::steady_clock::now()});
}

void PhaseProfiler::end() {
  std::lock_guard lock(mu_);
  if (stack_.empty())
    throw std::logic_error("PhaseProfiler::end with no open phase");
  Frame frame = std::move(stack_.back());
  stack_.pop_back();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    frame.start)
          .count();
  auto [it, inserted] = index_.try_emplace(frame.path, phases_.size());
  if (inserted) {
    Phase p;
    p.path = frame.path;
    p.depth = static_cast<int>(stack_.size());
    phases_.push_back(std::move(p));
  }
  Phase& p = phases_[it->second];
  ++p.count;
  p.wall_s += elapsed;
}

int PhaseProfiler::open_depth() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(stack_.size());
}

std::vector<PhaseProfiler::Phase> PhaseProfiler::phases() const {
  std::lock_guard lock(mu_);
  return phases_;
}

void PhaseProfiler::reset() {
  std::lock_guard lock(mu_);
  phases_.clear();
  index_.clear();
}

void PhaseProfiler::export_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << '[';
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const Phase& p = phases_[i];
    if (i) os << ',';
    os << "{\"phase\":";
    json_escape(os, p.path);
    os << ",\"depth\":" << p.depth << ",\"count\":" << p.count
       << ",\"wall_s\":" << p.wall_s << '}';
  }
  os << ']';
}

void PhaseProfiler::print(std::ostream& os) const {
  std::lock_guard lock(mu_);
  if (phases_.empty()) return;
  report::Table table({"phase", "count", "wall (s)"});
  for (const Phase& p : phases_) {
    // Indent by depth; show only the leaf name, the nesting carries context.
    auto slash = p.path.rfind('/');
    std::string leaf =
        slash == std::string::npos ? p.path : p.path.substr(slash + 1);
    table.add_row({std::string(static_cast<std::size_t>(p.depth) * 2, ' ') +
                       leaf,
                   std::to_string(p.count), report::num(p.wall_s, 3)});
  }
  os << "-- phases --\n";
  table.print(os);
}

}  // namespace cgn::obs
