// Simulation-wide metrics: named counters, gauges and fixed-bucket
// histograms behind a process-global registry.
//
// The design splits the cost asymmetrically: *registration* (name lookup,
// allocation) happens once, on the cold path, and hands back a stable
// reference; the *hot path* is a relaxed atomic load+store on that
// reference — a plain memory add in the generated code, no lock prefix.
// Instrumented components cache their handles at construction (or in a
// file-scope reference), so packet-rate code never touches the registry
// map. Defining CGN_OBS_DISABLED (CMake option -DCGN_OBS=OFF) compiles
// every increment down to nothing, which is what the perf-micro bench
// compares against.
//
// Threading: every metric is striped over kMaxThreadSlots per-thread cells.
// The default slot 0 serves single-threaded code; cgn::par workers install
// a distinct slot (ThreadSlotScope), so each cell stays single-writer and
// the cheap relaxed update remains exact even while campaign shards run in
// parallel. Reads (value(), export) merge the cells in slot order — integer
// totals are exact and independent of how shards were assigned to workers,
// which is what makes an N-thread campaign's metric totals bit-identical
// to the 1-thread run.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cgn::obs {

#ifdef CGN_OBS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Metric cells per metric: slot 0 is the default (main-thread) cell,
/// slots 1.. are claimed by parallel campaign workers. Bounds the worker
/// count of cgn::par::ThreadPool.
inline constexpr std::size_t kMaxThreadSlots = 32;

namespace detail {
inline thread_local std::size_t t_metric_slot = 0;
}  // namespace detail

/// The calling thread's metric slot (0 unless a ThreadSlotScope is active).
[[nodiscard]] inline std::size_t thread_slot() noexcept {
  return detail::t_metric_slot;
}

/// Scoped claim of a metric slot for the calling thread. Two live threads
/// must never share a slot; cgn::par::ThreadPool assigns worker w slot w+1
/// for the worker's lifetime, keeping slot 0 for the (blocked) main thread.
class ThreadSlotScope {
 public:
  explicit ThreadSlotScope(std::size_t slot) noexcept
      : prev_(detail::t_metric_slot) {
    detail::t_metric_slot = slot < kMaxThreadSlots ? slot : kMaxThreadSlots - 1;
  }
  ThreadSlotScope(const ThreadSlotScope&) = delete;
  ThreadSlotScope& operator=(const ThreadSlotScope&) = delete;
  ~ThreadSlotScope() { detail::t_metric_slot = prev_; }

 private:
  std::size_t prev_;
};

namespace detail {
/// One cache line per cell so workers bumping the same counter never
/// false-share.
template <typename T>
struct alignas(64) PaddedAtomic {
  std::atomic<T> v{0};
};
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if constexpr (kMetricsEnabled) {
      // Single-writer add on the thread's own cell (see the header
      // comment): a plain add instruction instead of a lock-prefixed
      // fetch_add, ~5x cheaper on the hot path.
      auto& cell = cells_[detail::t_metric_slot].v;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedAtomic<std::uint64_t>, kMaxThreadSlots> cells_;
};

/// Instantaneous level (table occupancy, frontier size, ...). Signed so a
/// transient dip below an earlier reset cannot wrap.
class Gauge {
 public:
  void add(std::int64_t n) noexcept {
    if constexpr (kMetricsEnabled) {
      auto& cell = cells_[detail::t_metric_slot].v;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  /// Absolute store. Only meaningful from single-threaded code: the value
  /// lands in the calling thread's cell and every other cell is zeroed, so
  /// concurrent workers must stick to add()/sub().
  void set(std::int64_t v) noexcept {
    if constexpr (kMetricsEnabled) {
      for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
      cells_[detail::t_metric_slot].v.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  /// Raises the calling thread's cell to at least `v` — a single-writer
  /// high-water mark (queue depths, lag ceilings). Like set(), only
  /// meaningful when one thread owns the gauge.
  void track_max(std::int64_t v) noexcept {
    if constexpr (kMetricsEnabled) {
      auto& cell = cells_[detail::t_metric_slot].v;
      if (cell.load(std::memory_order_relaxed) < v)
        cell.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedAtomic<std::int64_t>, kMaxThreadSlots> cells_;
};

/// Fixed-bucket histogram: bucket `i` counts observations <= bounds[i], the
/// implicit last bucket counts the overflow. Bounds are immutable after
/// construction, so observation is lock-free. Buckets and sums are striped
/// per thread slot like Counter; integer contributions (observe_small)
/// merge exactly across slots, so campaign-path histograms — which stay on
/// the integer fast path — are thread-count invariant.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept {
    if constexpr (kMetricsEnabled) {
      // Bucket i counts v <= bounds[i]: first bound not less than v, found
      // by binary search (bounds are sorted and immutable).
      const auto i = static_cast<std::size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), v) -
          bounds_.begin());
      auto& b = bucket_cell(detail::t_metric_slot, i);
      b.store(b.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      auto& s = sums_[detail::t_metric_slot].v;
      s.store(s.load(std::memory_order_relaxed) + v,
              std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }

  /// Integer fast path: the bucket index for small values is precomputed at
  /// construction and the running sum stays integral, so the packet-rate
  /// call is two relaxed integer load+store pairs with no bound search and
  /// no double arithmetic. Values beyond the table fall back to observe().
  void observe_small(std::uint32_t v) noexcept {
    if constexpr (kMetricsEnabled) {
      if (v < small_lut_.size()) {
        auto& b = bucket_cell(detail::t_metric_slot, small_lut_[v]);
        b.store(b.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        auto& s = isums_[detail::t_metric_slot].v;
        s.store(s.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
      } else {
        observe(static_cast<double>(v));
      }
    } else {
      (void)v;
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket. Merged
  /// over thread slots in slot order.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Total observations — derived from the buckets (cold path).
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] double sum() const noexcept {
    // Slot-order merge: integer contributions first (exact), then the
    // observe() doubles in slot order so the rounding sequence is fixed.
    std::uint64_t isum = 0;
    for (const auto& s : isums_) isum += s.v.load(std::memory_order_relaxed);
    double total = static_cast<double>(isum);
    for (const auto& s : sums_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] double mean() const noexcept {
    auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Quantile estimate from the bucket counts, Prometheus-style: find the
  /// bucket holding the q-rank observation and interpolate linearly inside
  /// it. Values in the overflow bucket clamp to the last bound (nothing
  /// sensible to extrapolate to). 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  void reset() noexcept;

  /// Adds `other`'s observations into this histogram (into the calling
  /// thread's slot). Bounds must match; used by MetricsRegistry::merge_from.
  void merge_from(const Histogram& other);

 private:
  [[nodiscard]] std::atomic<std::uint64_t>& bucket_cell(std::size_t slot,
                                                        std::size_t i) noexcept {
    return buckets_[slot * (bounds_.size() + 1) + i];
  }

  std::vector<double> bounds_;
  /// kMaxThreadSlots stripes of bounds()+1 buckets: index slot*(n+1)+i.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::vector<std::uint16_t> small_lut_;  ///< bucket index for v in [0, 64]
  /// observe() contributions per slot.
  std::array<detail::PaddedAtomic<double>, kMaxThreadSlots> sums_;
  /// observe_small() contributions per slot.
  std::array<detail::PaddedAtomic<std::uint64_t>, kMaxThreadSlots> isums_;
};

/// Owns every metric by name. Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime — reset_values()
/// zeroes values but never invalidates a handle. The process-global
/// instance (global()) is what instrumented subsystems register against;
/// tests that want isolation construct their own.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Finds or creates. Creating a histogram that already exists keeps the
  /// original bounds (first registration wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// A pull-sampled value (e.g. a derived utilization). Sampled at export
  /// time only; re-registering a name replaces the callback.
  using Probe = std::function<double()>;
  void register_probe(const std::string& name, Probe probe);
  void unregister_probe(const std::string& name);

  /// Zeroes all counter/gauge/histogram values; handles stay valid and
  /// probes stay registered.
  void reset_values();

  /// Folds `other`'s metric values into this registry, creating metrics
  /// that don't exist here yet. Callers merging several registries must do
  /// so in a fixed (shard) order so double-sum rounding is reproducible;
  /// integer totals merge exactly in any order. Probes are not copied.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] std::size_t metric_count() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{bounds,buckets,count,sum,p50,p90,p99}},
  /// "probes":{...}}. Composable: no trailing newline, so callers can
  /// embed it.
  void export_json(std::ostream& os) const;

  /// Prometheus text exposition (version 0.0.4) of every metric: counters
  /// and gauges as single samples, histograms as cumulative `_bucket`
  /// series with `le` labels plus `_sum`/`_count` and `_p50/_p90/_p99`
  /// quantile gauges, probes sampled as gauges. Names are prefixed `cgn_`
  /// and dots become underscores ("sim.net.sent" -> "cgn_sim_net_sent").
  void export_prometheus(std::ostream& os) const;

  /// Human-readable dashboard rendered with report::Table.
  void print_dashboard(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, Probe, std::less<>> probes_;
};

// Convenience accessors against the global registry: the idiom is a
// file-scope `obs::Counter& g_foo = obs::counter("sub.foo");` so the hot
// path pays only the relaxed add.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

/// Full observability snapshot of the global registry and the global
/// PhaseProfiler as one JSON object: {"metrics":{...},"phases":[...]}.
void export_json(std::ostream& os);

/// Writes a JSON string literal (quotes + escapes) — shared by the metric
/// and profiler exporters.
void json_escape(std::ostream& os, std::string_view s);

}  // namespace cgn::obs
