// Simulation-wide metrics: named counters, gauges and fixed-bucket
// histograms behind a process-global registry.
//
// The design splits the cost asymmetrically: *registration* (name lookup,
// allocation) happens once, on the cold path, and hands back a stable
// reference; the *hot path* is a relaxed atomic load+store on that
// reference — a plain memory add in the generated code, no lock prefix.
// The simulator is single-threaded, so the single-writer update is exact;
// concurrent writers would lose increments (never tear or fault), which is
// an acceptable trade for metrics. Instrumented components cache their
// handles at construction (or in a file-scope reference), so packet-rate
// code never touches the registry map. Defining CGN_OBS_DISABLED (CMake
// option -DCGN_OBS=OFF) compiles every increment down to nothing, which is
// what the perf-micro bench compares against.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cgn::obs {

#ifdef CGN_OBS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if constexpr (kMetricsEnabled)
      // Single-writer add (see the header comment): a plain add instruction
      // instead of a lock-prefixed fetch_add, ~5x cheaper on the hot path.
      value_.store(value_.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
    else
      (void)n;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (table occupancy, frontier size, ...). Signed so a
/// transient dip below an earlier reset cannot wrap.
class Gauge {
 public:
  void add(std::int64_t n) noexcept {
    if constexpr (kMetricsEnabled)
      value_.store(value_.load(std::memory_order_relaxed) + n,
                   std::memory_order_relaxed);
    else
      (void)n;
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  void set(std::int64_t v) noexcept {
    if constexpr (kMetricsEnabled)
      value_.store(v, std::memory_order_relaxed);
    else
      (void)v;
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket `i` counts observations <= bounds[i], the
/// implicit last bucket counts the overflow. Bounds are immutable after
/// construction, so observation is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept {
    if constexpr (kMetricsEnabled) {
      // Bucket i counts v <= bounds[i]: first bound not less than v, found
      // by binary search (bounds are sorted and immutable).
      const auto i = static_cast<std::size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), v) -
          bounds_.begin());
      buckets_[i].store(buckets_[i].load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
      sum_.store(sum_.load(std::memory_order_relaxed) + v,
                 std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }

  /// Integer fast path: the bucket index for small values is precomputed at
  /// construction and the running sum stays integral, so the packet-rate
  /// call is two relaxed integer load+store pairs with no bound search and
  /// no double arithmetic. Values beyond the table fall back to observe().
  void observe_small(std::uint32_t v) noexcept {
    if constexpr (kMetricsEnabled) {
      if (v < small_lut_.size()) {
        const std::size_t i = small_lut_[v];
        buckets_[i].store(buckets_[i].load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
        isum_.store(isum_.load(std::memory_order_relaxed) + v,
                    std::memory_order_relaxed);
      } else {
        observe(static_cast<double>(v));
      }
    } else {
      (void)v;
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Total observations — derived from the buckets (cold path).
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed) +
           static_cast<double>(isum_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] double mean() const noexcept {
    auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::vector<std::uint16_t> small_lut_;  ///< bucket index for v in [0, 64]
  std::atomic<double> sum_{0.0};          ///< observe() contributions
  std::atomic<std::uint64_t> isum_{0};    ///< observe_small() contributions
};

/// Owns every metric by name. Handles returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime — reset_values()
/// zeroes values but never invalidates a handle. The process-global
/// instance (global()) is what instrumented subsystems register against;
/// tests that want isolation construct their own.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Finds or creates. Creating a histogram that already exists keeps the
  /// original bounds (first registration wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// A pull-sampled value (e.g. a derived utilization). Sampled at export
  /// time only; re-registering a name replaces the callback.
  using Probe = std::function<double()>;
  void register_probe(const std::string& name, Probe probe);
  void unregister_probe(const std::string& name);

  /// Zeroes all counter/gauge/histogram values; handles stay valid and
  /// probes stay registered.
  void reset_values();

  [[nodiscard]] std::size_t metric_count() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{bounds,buckets,count,sum}},"probes":{...}}.
  /// Composable: no trailing newline, so callers can embed it.
  void export_json(std::ostream& os) const;

  /// Human-readable dashboard rendered with report::Table.
  void print_dashboard(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, Probe, std::less<>> probes_;
};

// Convenience accessors against the global registry: the idiom is a
// file-scope `obs::Counter& g_foo = obs::counter("sub.foo");` so the hot
// path pays only the relaxed add.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

/// Full observability snapshot of the global registry and the global
/// PhaseProfiler as one JSON object: {"metrics":{...},"phases":[...]}.
void export_json(std::ostream& os);

/// Writes a JSON string literal (quotes + escapes) — shared by the metric
/// and profiler exporters.
void json_escape(std::ostream& os, std::string_view s);

}  // namespace cgn::obs
