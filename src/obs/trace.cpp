#include "obs/trace.hpp"

namespace cgn::obs {

std::vector<TraceEvent> TraceRing::events() const {
  std::vector<TraceEvent> out;
  events_into(out);
  return out;
}

void TraceRing::events_into(std::vector<TraceEvent>& out) const {
  out.clear();
  out.reserve(size_);
  const std::size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buffer_[(start + i) % buffer_.size()]);
}

}  // namespace cgn::obs
