#include "obs/metrics.hpp"

#include <ostream>
#include <sstream>

#include "obs/profiler.hpp"
#include "report/report.hpp"

namespace cgn::obs {

namespace {

// JSON-safe number: histograms sum doubles, probes return doubles.
void json_number(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    os << static_cast<std::int64_t>(v);
  } else {
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << v;
    os << tmp.str();
  }
}

}  // namespace

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_((bounds_.size() + 1) * kMaxThreadSlots) {
  small_lut_.resize(65);
  for (std::uint32_t v = 0; v < small_lut_.size(); ++v)
    small_lut_[v] = static_cast<std::uint16_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(),
                         static_cast<double>(v)) -
        bounds_.begin());
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  const std::size_t n = bounds_.size() + 1;
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t slot = 0; slot < kMaxThreadSlots; ++slot)
    for (std::size_t i = 0; i < n; ++i)
      out[i] += buckets_[slot * n + i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t n = 0;
  for (const auto c : counts) n += c;
  if (n == 0 || bounds_.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= bounds_.size()) return bounds_.back();  // overflow: clamp
    const double upper = bounds_[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
    if (counts[i] == 0) return upper;
    const double into_bucket =
        target - static_cast<double>(cum - counts[i]);
    return lower +
           (upper - lower) * into_bucket / static_cast<double>(counts[i]);
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.v.store(0.0, std::memory_order_relaxed);
  for (auto& s : isums_) s.v.store(0, std::memory_order_relaxed);
}

void Histogram::merge_from(const Histogram& other) {
  const std::size_t n = bounds_.size() + 1;
  if (other.bounds_ != bounds_) return;  // incompatible shapes: skip
  const auto counts = other.bucket_counts();
  const std::size_t slot = detail::t_metric_slot;
  for (std::size_t i = 0; i < n; ++i) {
    auto& b = bucket_cell(slot, i);
    b.store(b.load(std::memory_order_relaxed) + counts[i],
            std::memory_order_relaxed);
  }
  std::uint64_t isum = 0;
  for (const auto& s : other.isums_)
    isum += s.v.load(std::memory_order_relaxed);
  auto& is = isums_[slot].v;
  is.store(is.load(std::memory_order_relaxed) + isum,
           std::memory_order_relaxed);
  double dsum = 0.0;
  for (const auto& s : other.sums_)
    dsum += s.v.load(std::memory_order_relaxed);
  auto& ds = sums_[slot].v;
  ds.store(ds.load(std::memory_order_relaxed) + dsum,
           std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void MetricsRegistry::register_probe(const std::string& name, Probe probe) {
  std::lock_guard lock(mu_);
  probes_[name] = std::move(probe);
}

void MetricsRegistry::unregister_probe(const std::string& name) {
  std::lock_guard lock(mu_);
  probes_.erase(name);
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (&other == this) return;
  // Lock ordering: other first, and never merge two registries into each
  // other concurrently. In practice `other` is a quiesced per-shard
  // registry, so contention is nil.
  std::scoped_lock lock(other.mu_, mu_);
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end())
      it = counters_.emplace(name, std::make_unique<Counter>()).first;
    it->second->inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end())
      it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    it->second->add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_
               .emplace(name, std::make_unique<Histogram>(h->bounds()))
               .first;
    it->second->merge_from(*h);
  }
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         probes_.size();
}

void MetricsRegistry::export_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':' << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ":{\"bounds\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << ',';
      json_number(os, bounds[i]);
    }
    os << "],\"buckets\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ',';
      os << counts[i];
    }
    os << "],\"count\":" << h->count() << ",\"sum\":";
    json_number(os, h->sum());
    os << ",\"p50\":";
    json_number(os, h->quantile(0.50));
    os << ",\"p90\":";
    json_number(os, h->quantile(0.90));
    os << ",\"p99\":";
    json_number(os, h->quantile(0.99));
    os << '}';
  }
  os << "},\"probes\":{";
  first = true;
  for (const auto& [name, probe] : probes_) {
    if (!first) os << ',';
    first = false;
    json_escape(os, name);
    os << ':';
    json_number(os, probe());
  }
  os << "}}";
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry's dotted
// names map 1:1 (dots and other separators become underscores).
std::string prometheus_name(std::string_view name) {
  std::string out = "cgn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prometheus_number(std::ostream& os, double v) {
  json_number(os, v);  // same minimal-decimal rendering works for both
}

}  // namespace

void MetricsRegistry::export_prometheus(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " histogram\n";
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      os << n << "_bucket{le=\"";
      prometheus_number(os, bounds[i]);
      os << "\"} " << cum << '\n';
    }
    cum += counts.empty() ? 0 : counts.back();
    os << n << "_bucket{le=\"+Inf\"} " << cum << '\n';
    os << n << "_sum ";
    prometheus_number(os, h->sum());
    os << '\n' << n << "_count " << h->count() << '\n';
    for (const auto& [suffix, q] :
         {std::pair{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}}) {
      os << "# TYPE " << n << suffix << " gauge\n" << n << suffix << ' ';
      prometheus_number(os, h->quantile(q));
      os << '\n';
    }
  }
  for (const auto& [name, probe] : probes_) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ';
    prometheus_number(os, probe());
    os << '\n';
  }
}

void MetricsRegistry::print_dashboard(std::ostream& os) const {
  std::lock_guard lock(mu_);
  report::Table scalars({"metric", "kind", "value"});
  for (const auto& [name, c] : counters_)
    scalars.add_row({name, "counter", report::count(c->value())});
  for (const auto& [name, g] : gauges_)
    scalars.add_row({name, "gauge", std::to_string(g->value())});
  for (const auto& [name, probe] : probes_)
    scalars.add_row({name, "probe", report::num(probe(), 3)});
  os << "-- metrics --\n";
  scalars.print(os);
  if (!histograms_.empty()) {
    report::Table hist({"histogram", "count", "mean", "buckets (<=bound:n)"});
    for (const auto& [name, h] : histograms_) {
      std::ostringstream cells;
      const auto& bounds = h->bounds();
      const auto counts = h->bucket_counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        if (cells.tellp() > 0) cells << ' ';
        if (i < bounds.size())
          cells << report::num(bounds[i], 0) << ':' << counts[i];
        else
          cells << "inf:" << counts[i];
      }
      hist.add_row({name, report::count(h->count()), report::num(h->mean(), 2),
                    cells.str()});
    }
    hist.print(os);
  }
}

void export_json(std::ostream& os) {
  os << "{\"metrics\":";
  MetricsRegistry::global().export_json(os);
  os << ",\"phases\":";
  PhaseProfiler::global().export_json(os);
  os << "}";
}

}  // namespace cgn::obs
