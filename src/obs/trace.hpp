// Lightweight event-trace ring buffer for per-packet hop traces.
//
// The sim's delivery engine pushes one fixed-size event per hop when a ring
// is attached (Network::set_hop_trace); with no ring attached the hot path
// pays a single predictable null check. Events are raw integers — the
// layer that owns the semantics (sim::Network) assigns the kind/code values
// and formats them for humans — so obs stays a leaf with no upward
// dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cgn::obs {

struct TraceEvent {
  std::uint32_t node = 0;   ///< sim node id
  std::int16_t ttl = 0;     ///< packet TTL after the hop's decrement
  std::uint8_t kind = 0;    ///< producer-defined event class
  std::uint8_t code = 0;    ///< producer-defined detail (verdict, reason)
  double time = 0.0;        ///< simulated time of the event
};

/// Fixed-capacity overwrite-oldest ring. Single-threaded, like the sim.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256)
      : buffer_(capacity == 0 ? 1 : capacity) {}

  void push(const TraceEvent& e) noexcept {
    buffer_[head_] = e;
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
    ++total_;
    ++kind_tally_[e.kind & (kKindTallySlots - 1)];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    total_ = 0;
    kind_tally_.fill(0);
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Events ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_; }

  /// Kind slots tallied by push (producer kinds above the slot count fold
  /// modulo; sim::Network uses 4 of the 8).
  static constexpr std::size_t kKindTallySlots = 8;
  /// Events ever pushed with the given kind, overwritten ones included —
  /// the ring window slides but the tallies don't forget.
  [[nodiscard]] std::uint64_t kind_tally(std::uint8_t kind) const noexcept {
    return kind_tally_[kind & (kKindTallySlots - 1)];
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Like events(), but reuses the caller's buffer so a warmed-up scratch
  /// vector makes repeated snapshots allocation-free.
  void events_into(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kKindTallySlots> kind_tally_{};
};

}  // namespace cgn::obs
