#include "sim/network.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "fault/fault.hpp"

namespace cgn::sim {

Network::ObsHandles Network::make_obs_handles() {
  // Bucket per hop count up to the kMaxHops ceiling; paths in the synthetic
  // Internet are short, so low buckets are exact.
  static const std::vector<double> kHopBounds{1, 2,  3,  4,  5,  6,  8,
                                              10, 12, 16, 20, 24, 32, 48};
  return ObsHandles{
      .sent = obs::counter("sim.net.sent"),
      .delivered = obs::counter("sim.net.delivered"),
      .dropped_ttl = obs::counter("sim.net.dropped.ttl_expired"),
      .dropped_no_route = obs::counter("sim.net.dropped.no_route"),
      .dropped_filtered = obs::counter("sim.net.dropped.filtered"),
      .dropped_no_mapping = obs::counter("sim.net.dropped.no_mapping"),
      .dropped_other = obs::counter("sim.net.dropped.other"),
      .dropped_fault_loss = obs::counter("sim.net.dropped.fault_loss"),
      .dropped_fault_unresponsive =
          obs::counter("sim.net.dropped.fault_unresponsive"),
      .route_cache_hits = obs::counter("sim.net.route_cache_hits"),
      .hops = obs::histogram("sim.net.hops", kHopBounds),
  };
}

std::string_view to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::none: return "none";
    case DropReason::ttl_expired: return "ttl_expired";
    case DropReason::no_route: return "no_route";
    case DropReason::filtered: return "filtered";
    case DropReason::no_mapping: return "no_mapping";
    case DropReason::mb_dropped: return "mb_dropped";
    case DropReason::hop_limit: return "hop_limit";
    case DropReason::fault_loss: return "fault_loss";
    case DropReason::fault_unresponsive: return "fault_unresponsive";
  }
  return "?";
}

Network::Network(Clock& clock) : clock_(&clock) {
  Node core;
  core.name = "core";
  nodes_.push_back(std::move(core));
  grow_route_cache();
}

void Network::grow_route_cache() {
  if (nodes_.size() <= route_stride_) return;
  std::size_t stride = route_stride_ == 0 ? 64 : route_stride_;
  while (stride < nodes_.size()) stride *= 2;
  route_stride_ = stride;
  // Reallocate (zeroed) any stripe a thread already touched; unused slots
  // stay lazy. Topology construction is single-threaded, so no send is in
  // flight while stripes swap.
  for (auto& stripe : route_stripes_)
    if (stripe) stripe.reset(new std::atomic<std::uint64_t>[route_stride_]());
}

NodeId Network::add_node(NodeId parent, std::string name) {
  if (parent >= nodes_.size()) throw std::out_of_range("bad parent node");
  Node node;
  node.name = std::move(name);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  grow_route_cache();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_router_chain(NodeId parent, int count,
                                 const std::string& prefix) {
  NodeId node = parent;
  for (int i = 0; i < count; ++i)
    node = add_node(node, prefix + "-r" + std::to_string(i));
  return node;
}

void Network::set_middlebox(NodeId node, Middlebox* box) {
  nodes_.at(node).middlebox = box;
}

void Network::set_receiver(NodeId node, Receiver receiver) {
  nodes_.at(node).receiver = std::move(receiver);
}

void Network::add_local_address(NodeId node, netcore::Ipv4Address address) {
  nodes_.at(node).local_addresses.push_back(address);
}

void Network::register_address(netcore::Ipv4Address address, NodeId owner,
                               NodeId scope) {
  NodeId child = owner;
  NodeId node = nodes_.at(owner).parent;
  while (node != kNoNode) {
    nodes_[node].down_routes[address] = child;
    // Any route mutation invalidates the node's cache entry in every
    // thread's stripe, whatever address each currently holds.
    invalidate_route_cache(node);
    if (node == scope) return;
    child = node;
    node = nodes_[node].parent;
  }
  throw std::invalid_argument("scope is not an ancestor of owner");
}

void Network::unregister_address(netcore::Ipv4Address address, NodeId owner,
                                 NodeId scope) {
  NodeId node = nodes_.at(owner).parent;
  while (node != kNoNode) {
    nodes_[node].down_routes.erase(address);
    invalidate_route_cache(node);
    if (node == scope) return;
    node = nodes_[node].parent;
  }
}

NodeId Network::parent(NodeId node) const { return nodes_.at(node).parent; }

const NetworkStats& Network::stats() const noexcept {
  stats_merged_ = {};
  for (const auto& padded : stats_cells_) {
    const NetworkStats& cell = padded.v;
    stats_merged_.sent += cell.sent;
    stats_merged_.delivered += cell.delivered;
    stats_merged_.dropped_ttl += cell.dropped_ttl;
    stats_merged_.dropped_no_route += cell.dropped_no_route;
    stats_merged_.dropped_filtered += cell.dropped_filtered;
    stats_merged_.dropped_no_mapping += cell.dropped_no_mapping;
    stats_merged_.dropped_other += cell.dropped_other;
    stats_merged_.dropped_fault_loss += cell.dropped_fault_loss;
    stats_merged_.dropped_fault_unresponsive +=
        cell.dropped_fault_unresponsive;
    stats_merged_.duplicated += cell.duplicated;
    stats_merged_.route_cache_hits += cell.route_cache_hits;
  }
  return stats_merged_;
}

NodeId Network::top_route(netcore::Ipv4Address address) const {
  const auto& routes = nodes_.front().down_routes;
  auto it = routes.find(address);
  return it == routes.end() ? kNoNode : it->second;
}

const std::string& Network::name(NodeId node) const {
  return nodes_.at(node).name;
}

int Network::path_hops(NodeId from, NodeId to) const {
  auto depth = [this](NodeId n) {
    int d = 0;
    for (NodeId p = nodes_.at(n).parent; p != kNoNode; p = nodes_[p].parent)
      ++d;
    return d;
  };
  int df = depth(from);
  int dt = depth(to);
  NodeId a = from;
  NodeId b = to;
  int da = df;
  int db = dt;
  while (da > db) {
    a = nodes_[a].parent;
    --da;
  }
  while (db > da) {
    b = nodes_[b].parent;
    --db;
  }
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
    --da;
  }
  return df + dt - 2 * da - 1;
}

bool Network::owns_local(const Node& n, netcore::Ipv4Address a) const {
  return std::find(n.local_addresses.begin(), n.local_addresses.end(), a) !=
         n.local_addresses.end();
}

DropReason Network::to_drop_reason(Middlebox::Verdict v) noexcept {
  switch (v) {
    case Middlebox::Verdict::forward: return DropReason::none;
    case Middlebox::Verdict::drop_filtered: return DropReason::filtered;
    case Middlebox::Verdict::drop_no_mapping: return DropReason::no_mapping;
    case Middlebox::Verdict::drop_other: return DropReason::mb_dropped;
  }
  return DropReason::mb_dropped;
}

DeliveryResult Network::finish(DeliveryResult r, SendCtx& ctx) {
  // Batched flush: route-cache hits accumulated hop by hop in the send's
  // local context land in the metric slot once per delivery, not once per
  // hop. Nested sends (receiver replies) carry their own context, so the
  // counts are exact.
  if (ctx.cache_hits > 0) {
    stats_cell().route_cache_hits +=
        static_cast<std::uint64_t>(ctx.cache_hits);
    obs_.route_cache_hits.inc(static_cast<std::uint64_t>(ctx.cache_hits));
    ctx.cache_hits = 0;
  }
  switch (r.reason) {
    case DropReason::none:
      ++stats_cell().delivered;
      obs_.delivered.inc();
      obs_.hops.observe_small(static_cast<std::uint32_t>(r.hops));
      break;
    case DropReason::ttl_expired:
      ++stats_cell().dropped_ttl;
      obs_.dropped_ttl.inc();
      break;
    case DropReason::no_route:
      ++stats_cell().dropped_no_route;
      obs_.dropped_no_route.inc();
      break;
    case DropReason::filtered:
      ++stats_cell().dropped_filtered;
      obs_.dropped_filtered.inc();
      break;
    case DropReason::no_mapping:
      ++stats_cell().dropped_no_mapping;
      obs_.dropped_no_mapping.inc();
      break;
    case DropReason::fault_loss:
      ++stats_cell().dropped_fault_loss;
      obs_.dropped_fault_loss.inc();
      break;
    case DropReason::fault_unresponsive:
      ++stats_cell().dropped_fault_unresponsive;
      obs_.dropped_fault_unresponsive.inc();
      break;
    default:
      ++stats_cell().dropped_other;
      obs_.dropped_other.inc();
      break;
  }
  trace_event(r.delivered ? TraceKind::delivered : TraceKind::dropped,
              r.final_node, r.hops, static_cast<std::uint8_t>(r.reason));
  return r;
}

DeliveryResult Network::deliver_at(NodeId node, Packet& pkt, int hops,
                                   SendCtx& ctx) {
  // An injected-unresponsive endpoint receives nothing: the NAT state along
  // the path was still created/refreshed (the packet really travelled), but
  // the application never answers — a deaf BitTorrent peer.
  if (faults_ && faults_->unresponsive(node, pkt.dst.port))
    return finish({.reason = DropReason::fault_unresponsive,
                   .hops = hops,
                   .final_node = node},
                  ctx);
  if (nodes_[node].receiver) {
    nodes_[node].receiver(*this, pkt);
    // Injected duplication: the receiver sees the same datagram twice, as
    // after a spurious link-layer retransmission.
    if (faults_ && faults_->duplicate_delivery()) {
      ++stats_cell().duplicated;
      nodes_[node].receiver(*this, pkt);
    }
  }
  return finish({.delivered = true,
                 .reason = DropReason::none,
                 .hops = hops,
                 .final_node = node},
                ctx);
}

DeliveryResult Network::send(Packet pkt, NodeId from) {
  ++stats_cell().sent;
  obs_.sent.inc();
  // One TLS read resolves this thread's route-cache stripe for the whole
  // delivery (every hop used to re-derive the slot via the metric cell).
  SendCtx ctx{route_stripe()};
  const SimTime now = clock().now();
  int hops = 0;
  NodeId node = nodes_.at(from).parent;
  // Ascent: walk from the sender toward the core until a node claims the
  // destination (locally, via a scoped down-route, or via a hairpin).
  while (node != kNoNode) {
    if (++hops > kMaxHops)
      return finish({.reason = DropReason::hop_limit, .final_node = node},
                    ctx);
    Node& n = nodes_[node];
    pkt.ttl -= 1;
    trace_event(TraceKind::hop, node, pkt.ttl, 0);
    // Injected loss models the wire into this node: upstream NAT state was
    // already refreshed, this hop and everything past it sees nothing.
    if (faults_ && faults_->drop_at_hop())
      return finish({.reason = DropReason::fault_loss,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    if (owns_local(n, pkt.dst.address))
      return deliver_at(node, pkt, hops, ctx);
    if (pkt.ttl <= 0)
      return finish({.reason = DropReason::ttl_expired,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    if (NodeId next = route_lookup(n, node, pkt.dst.address, ctx);
        next != kNoNode)
      return descend(next, pkt, hops, ctx);
    if (n.middlebox && n.middlebox->owns_external(pkt.dst.address)) {
      auto verdict = n.middlebox->process_hairpin(pkt, now);
      trace_event(TraceKind::middlebox, node, pkt.ttl,
                  static_cast<std::uint8_t>(verdict));
      if (verdict != Middlebox::Verdict::forward)
        return finish({.reason = to_drop_reason(verdict),
                       .hops = hops,
                       .final_node = node},
                      ctx);
      // Hairpin processing may rewrite pkt.dst, so route on the new address.
      NodeId next = route_lookup(n, node, pkt.dst.address, ctx);
      if (next == kNoNode)
        return finish({.reason = DropReason::no_route,
                       .hops = hops,
                       .final_node = node},
                      ctx);
      return descend(next, pkt, hops, ctx);
    }
    if (n.middlebox) {
      auto verdict = n.middlebox->process_outbound(pkt, now);
      trace_event(TraceKind::middlebox, node, pkt.ttl,
                  static_cast<std::uint8_t>(verdict));
      if (verdict != Middlebox::Verdict::forward)
        return finish({.reason = to_drop_reason(verdict),
                       .hops = hops,
                       .final_node = node},
                      ctx);
    }
    if (n.parent == kNoNode)
      return finish({.reason = DropReason::no_route,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    node = n.parent;
  }
  return finish({.reason = DropReason::no_route, .hops = hops}, ctx);
}

DeliveryResult Network::descend(NodeId node, Packet& pkt, int hops,
                                SendCtx& ctx) {
  const SimTime now = clock().now();
  while (true) {
    if (++hops > kMaxHops)
      return finish({.reason = DropReason::hop_limit, .final_node = node},
                    ctx);
    Node& n = nodes_[node];
    pkt.ttl -= 1;
    trace_event(TraceKind::hop, node, pkt.ttl, 0);
    if (faults_ && faults_->drop_at_hop())
      return finish({.reason = DropReason::fault_loss,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    // A NAT whose external address the packet targets translates it inward —
    // but only if the packet still has TTL budget to be forwarded; a probe
    // that expires here dies without refreshing the NAT's mapping, which is
    // exactly what the TTL-driven enumeration test exploits.
    if (n.middlebox && n.middlebox->owns_external(pkt.dst.address)) {
      if (pkt.ttl <= 0)
        return finish({.reason = DropReason::ttl_expired,
                       .hops = hops,
                       .final_node = node},
                      ctx);
      auto verdict = n.middlebox->process_inbound(pkt, now);
      trace_event(TraceKind::middlebox, node, pkt.ttl,
                  static_cast<std::uint8_t>(verdict));
      if (verdict != Middlebox::Verdict::forward)
        return finish({.reason = to_drop_reason(verdict),
                       .hops = hops,
                       .final_node = node},
                      ctx);
    }
    if (owns_local(n, pkt.dst.address))
      return deliver_at(node, pkt, hops, ctx);
    if (pkt.ttl <= 0)
      return finish({.reason = DropReason::ttl_expired,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    NodeId next = route_lookup(n, node, pkt.dst.address, ctx);
    if (next == kNoNode)
      return finish({.reason = DropReason::no_route,
                     .hops = hops,
                     .final_node = node},
                    ctx);
    node = next;
  }
}

void Network::dump_trace(std::ostream& os, const obs::TraceRing& ring) const {
  auto verdict_name = [](std::uint8_t code) -> std::string_view {
    switch (static_cast<Middlebox::Verdict>(code)) {
      case Middlebox::Verdict::forward: return "forward";
      case Middlebox::Verdict::drop_filtered: return "drop_filtered";
      case Middlebox::Verdict::drop_no_mapping: return "drop_no_mapping";
      case Middlebox::Verdict::drop_other: return "drop_other";
    }
    return "?";
  };
  auto node_name = [this](std::uint32_t node) -> std::string_view {
    return node < nodes_.size() ? std::string_view(nodes_[node].name)
                                : std::string_view("<none>");
  };
  // Per-thread scratch: repeated dumps (TTL enumeration reports snapshot the
  // ring per probe) reuse the warmed-up buffer instead of allocating.
  static thread_local std::vector<obs::TraceEvent> scratch;
  ring.events_into(scratch);
  for (const obs::TraceEvent& e : scratch) {
    os << "[t=" << e.time << "] ";
    switch (static_cast<TraceKind>(e.kind)) {
      case TraceKind::hop:
        os << "hop       " << node_name(e.node) << " ttl=" << e.ttl;
        break;
      case TraceKind::middlebox:
        os << "middlebox " << node_name(e.node) << " ttl=" << e.ttl << " -> "
           << verdict_name(e.code);
        break;
      case TraceKind::delivered:
        os << "delivered " << node_name(e.node) << " hops=" << e.ttl;
        break;
      case TraceKind::dropped:
        os << "dropped   " << node_name(e.node) << " hops=" << e.ttl
           << " reason=" << to_string(static_cast<DropReason>(e.code));
        break;
      default:
        os << "event kind=" << int(e.kind) << " node=" << e.node;
        break;
    }
    os << '\n';
  }
}

}  // namespace cgn::sim
