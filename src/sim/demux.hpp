// Per-port dispatch of delivered packets to application handlers, so one
// simulated host can run several endpoints (DHT node, Netalyzr client,
// STUN client) on different local ports.
#pragma once

#include <functional>

#include "flat/flat.hpp"
#include "sim/network.hpp"

namespace cgn::sim {

class PortDemux {
 public:
  using Handler = std::function<void(Network&, const Packet&)>;

  void bind(std::uint16_t port, Handler handler) {
    handlers_[port] = std::move(handler);
  }
  void unbind(std::uint16_t port) { handlers_.erase(port); }

  /// Receiver-compatible dispatch; packets to unbound ports are dropped
  /// silently (like an OS with no listening socket).
  void operator()(Network& net, const Packet& pkt) {
    auto it = handlers_.find(pkt.dst.port);
    if (it != handlers_.end()) it->second(net, pkt);
  }

  /// Installs this demux as the receiver of `host`. The demux must outlive
  /// the network registration (keep it in the host's owning structure).
  void attach(Network& net, NodeId host) {
    net.set_receiver(host, [this](Network& n, const Packet& p) { (*this)(n, p); });
  }

 private:
  flat::FlatMap<std::uint16_t, Handler> handlers_;
};

}  // namespace cgn::sim
