// Tree-topology packet delivery engine.
//
// The synthetic Internet is a forest rooted at a single "core" node: servers
// hang off the core through chains of plain router nodes, and each ISP is a
// subtree (access routers, optional CGN middlebox, CPE middleboxes, end
// hosts). Delivery walks real hops: every hop decrements the TTL, NAT
// middleboxes translate and filter, and scoped per-node routing maps model
// the fact that reserved address space is only meaningful inside its own
// subtree. This per-hop fidelity is what makes the paper's TTL-driven NAT
// enumeration (§6.3) and hairpin-based internal-address leakage (§4.1)
// reproducible as *measurements* instead of hard-coded outputs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "flat/flat.hpp"
#include "netcore/ipv4.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/packet.hpp"

namespace cgn::fault {
class FaultInjector;
}  // namespace cgn::fault

namespace cgn::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Why a packet failed to reach its destination.
enum class DropReason : std::uint8_t {
  none,         ///< delivered
  ttl_expired,  ///< TTL reached zero at an intermediate hop
  no_route,     ///< no node claimed the destination address
  filtered,     ///< a NAT's filtering policy rejected the packet
  no_mapping,   ///< a NAT had no (live) mapping for the destination
  mb_dropped,   ///< middlebox dropped for another reason (e.g. pool exhausted)
  hop_limit,    ///< safety valve: path exceeded kMaxHops
  fault_loss,   ///< injected packet loss (fault::FaultInjector)
  fault_unresponsive,  ///< delivered to an injected-unresponsive endpoint
};

[[nodiscard]] std::string_view to_string(DropReason r) noexcept;

/// In-path packet processor (a NAT, in this project). Implementations live
/// in cgn::nat; the engine only sees this interface.
class Middlebox {
 public:
  virtual ~Middlebox() = default;

  enum class Verdict : std::uint8_t {
    forward,
    drop_filtered,
    drop_no_mapping,
    drop_other,
  };

  /// Packet travelling from the edge toward the core: translate src.
  virtual Verdict process_outbound(Packet& pkt, SimTime now) = 0;
  /// Packet travelling from the core toward the edge: match mapping, apply
  /// filtering policy, translate dst.
  virtual Verdict process_inbound(Packet& pkt, SimTime now) = 0;
  /// Packet from the inside addressed to one of our own external addresses.
  virtual Verdict process_hairpin(Packet& pkt, SimTime now) = 0;
  /// True when `a` is one of this box's external (translated-to) addresses.
  [[nodiscard]] virtual bool owns_external(netcore::Ipv4Address a) const = 0;
};

/// Outcome of one end-to-end delivery attempt.
struct DeliveryResult {
  bool delivered = false;
  DropReason reason = DropReason::none;
  int hops = 0;             ///< nodes traversed (excluding the sender)
  NodeId final_node = kNoNode;  ///< delivering node, or node of drop
};

/// Aggregate delivery statistics (diagnostics and tests).
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_filtered = 0;
  std::uint64_t dropped_no_mapping = 0;
  std::uint64_t dropped_other = 0;
  std::uint64_t dropped_fault_loss = 0;
  std::uint64_t dropped_fault_unresponsive = 0;
  std::uint64_t duplicated = 0;  ///< extra deliveries from injected duplication
  /// Down-route lookups answered by the per-node one-entry route cache
  /// (repeated same-destination probes: TTL enumeration, ping sweeps).
  std::uint64_t route_cache_hits = 0;
};

class Network {
 public:
  /// Handler invoked when a packet is delivered to a host node. The packet's
  /// dst is the host-local (post-translation) endpoint. Handlers may call
  /// Network::send to respond.
  using Receiver = std::function<void(Network&, const Packet&)>;

  explicit Network(Clock& clock);

  /// The root ("core") node, created by the constructor.
  [[nodiscard]] NodeId root() const noexcept { return 0; }

  /// Adds a plain node beneath `parent`. Middlebox/receiver/addresses can be
  /// attached afterwards. Throws std::out_of_range on bad parent.
  NodeId add_node(NodeId parent, std::string name);

  /// Convenience: adds a chain of `count` plain router nodes under `parent`
  /// and returns the bottom node.
  NodeId add_router_chain(NodeId parent, int count, const std::string& prefix);

  /// Attaches a middlebox to a node. The pointer is non-owning; the box must
  /// outlive the network.
  void set_middlebox(NodeId node, Middlebox* box);

  /// Marks a node as a host with a delivery callback.
  void set_receiver(NodeId node, Receiver receiver);

  /// Declares that `node` locally owns `address` (a host interface address).
  void add_local_address(NodeId node, netcore::Ipv4Address address);

  /// Installs downward routes for `address` from `scope` (inclusive) down to
  /// `owner`: each ancestor learns the child next-hop. `scope` must be an
  /// ancestor of `owner`. Use the root as scope for public addresses and the
  /// enclosing NAT node for internal ones.
  void register_address(netcore::Ipv4Address address, NodeId owner,
                        NodeId scope);

  /// Removes the downward routes for `address` along the owner->scope path
  /// (ISP renumbering). Missing entries are ignored.
  void unregister_address(netcore::Ipv4Address address, NodeId owner,
                          NodeId scope);

  /// Parent of a node (kNoNode for the root).
  [[nodiscard]] NodeId parent(NodeId node) const;
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Number of hops (intermediate nodes, excluding both hosts) a packet
  /// from `from` to `to` traverses, assuming no hairpin. Host-to-host
  /// distance through the tree.
  [[nodiscard]] int path_hops(NodeId from, NodeId to) const;

  /// Sends `pkt` from host node `from`. Delivery is synchronous: the
  /// receiver callback (and any packets it sends in response) runs before
  /// send returns.
  DeliveryResult send(Packet pkt, NodeId from);

  /// Delivery statistics merged over thread slots (see obs::ThreadSlotScope).
  /// Call only while no worker is mid-send; campaign code reads it after
  /// the shard barrier.
  [[nodiscard]] const NetworkStats& stats() const noexcept;
  void reset_stats() noexcept {
    for (auto& cell : stats_cells_) cell.v = {};
  }

  /// The clock packets are stamped with: the calling thread's
  /// ThreadClockScope override when one is active (campaign shards), else
  /// the network's own clock.
  [[nodiscard]] const Clock& clock() const noexcept {
    const Clock* c = ThreadClockScope::current();
    return c ? *c : *clock_;
  }

  /// First-hop child the root would forward `address` to, or kNoNode when
  /// the root has no route (reserved/unrouted space). Two destinations with
  /// the same top route share a root subtree — the unit campaign sharding
  /// partitions work by, since all mutable middlebox state on a delivery
  /// path lives inside the destination's subtree.
  [[nodiscard]] NodeId top_route(netcore::Ipv4Address address) const;

  /// Event classes pushed into an attached hop-trace ring. `code` carries
  /// the Middlebox::Verdict for `middlebox` events and the DropReason for
  /// `dropped` events; terminal events reuse the ttl field for hop count.
  enum class TraceKind : std::uint8_t {
    hop = 0,        ///< packet arrived at a node (ttl already decremented)
    middlebox = 1,  ///< a middlebox processed the packet
    delivered = 2,
    dropped = 3,
  };

  /// Attaches a fault injector: subsequent deliveries consult it for
  /// injected loss (per hop), duplication (per delivery) and unresponsive
  /// endpoints. Null (the default) means a perfect network; attach only an
  /// injector with an active plan, so clean runs pay one null check per
  /// hop. The injector is caller-owned and must outlive attachment.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    faults_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* fault_injector() const noexcept {
    return faults_;
  }

  /// Attaches a hop-trace ring: every subsequent delivery pushes one event
  /// per hop plus middlebox verdicts and the terminal outcome. Off by
  /// default (null ring); enable around a single send() to debug TTL or
  /// hairpin paths. The ring is caller-owned and must outlive attachment.
  void set_hop_trace(obs::TraceRing* ring) noexcept { trace_ = ring; }

  /// Renders a captured ring with this network's node names.
  void dump_trace(std::ostream& os, const obs::TraceRing& ring) const;

 private:
  struct Node {
    std::string name;
    NodeId parent = kNoNode;
    Middlebox* middlebox = nullptr;
    Receiver receiver;
    flat::FlatMap<netcore::Ipv4Address, NodeId> down_routes;
    std::vector<netcore::Ipv4Address> local_addresses;
  };

  /// Per-delivery context threaded through send/descend: the calling
  /// thread's route-cache stripe resolved once per send (one TLS read
  /// instead of one per hop), and the send's cache hits batched into a
  /// plain local counter that finish() flushes to the metric slot in one
  /// go — per-send instead of per-hop metric traffic.
  struct SendCtx {
    std::atomic<std::uint64_t>* cache;
    int cache_hits = 0;
  };

  static constexpr int kMaxHops = 64;

  /// Stable handles into the global metrics registry, resolved once per
  /// Network; the delivery path pays one relaxed add per event.
  struct ObsHandles {
    obs::Counter& sent;
    obs::Counter& delivered;
    obs::Counter& dropped_ttl;
    obs::Counter& dropped_no_route;
    obs::Counter& dropped_filtered;
    obs::Counter& dropped_no_mapping;
    obs::Counter& dropped_other;
    obs::Counter& dropped_fault_loss;
    obs::Counter& dropped_fault_unresponsive;
    obs::Counter& route_cache_hits;
    obs::Histogram& hops;
  };
  static ObsHandles make_obs_handles();

  [[nodiscard]] bool owns_local(const Node& n, netcore::Ipv4Address a) const;
  DeliveryResult deliver_at(NodeId node, Packet& pkt, int hops, SendCtx& ctx);
  DeliveryResult descend(NodeId node, Packet& pkt, int hops, SendCtx& ctx);
  DeliveryResult finish(DeliveryResult r, SendCtx& ctx);
  static DropReason to_drop_reason(Middlebox::Verdict v) noexcept;

  /// The calling thread's route-cache stripe: one packed (address << 32) |
  /// child entry per node, 0 when empty (a valid child NodeId is never 0 —
  /// the root has no ancestors). Stripes are private to a metric slot, so
  /// campaign workers crossing the same shared core nodes never write the
  /// same cache line — the old single shared entry per node turned every
  /// differing-destination descent into cross-core cache-line ping-pong.
  /// Lazily allocated on a slot's first send; route mutations invalidate
  /// the entry in every stripe (see DESIGN.md §10).
  [[nodiscard]] std::atomic<std::uint64_t>* route_stripe() {
    auto& stripe = route_stripes_[obs::thread_slot()];
    if (!stripe)  // first send on this slot (cold)
      stripe.reset(new std::atomic<std::uint64_t>[route_stride_]());
    return stripe.get();
  }

  /// Down-route lookup through the sending thread's per-node cache entry.
  /// Returns kNoNode when the node has no route for `a`; negative results
  /// are not cached. Hits are batched in ctx and flushed by finish().
  [[nodiscard]] NodeId route_lookup(Node& n, NodeId id, netcore::Ipv4Address a,
                                    SendCtx& ctx) noexcept {
    std::atomic<std::uint64_t>& entry = ctx.cache[id];
    const std::uint64_t e = entry.load(std::memory_order_relaxed);
    if (e != 0 && (e >> 32) == a.value()) {
      ++ctx.cache_hits;
      return static_cast<NodeId>(e);
    }
    auto it = n.down_routes.find(a);
    if (it == n.down_routes.end()) return kNoNode;
    entry.store((std::uint64_t{a.value()} << 32) | it->second,
                std::memory_order_relaxed);
    return it->second;
  }

  /// Grows the route-cache stride to cover `nodes_.size()` nodes and drops
  /// any already-allocated stripes' contents (topology construction is
  /// single-threaded and cold).
  void grow_route_cache();

  /// Zeroes `node`'s cache entry in every allocated stripe (route
  /// mutation: register/unregister_address).
  void invalidate_route_cache(NodeId node) noexcept {
    for (auto& stripe : route_stripes_)
      if (stripe) stripe[node].store(0, std::memory_order_relaxed);
  }

  void trace_event(TraceKind kind, NodeId node, int ttl,
                   std::uint8_t code) const {
    if (trace_)
      trace_->push({node, static_cast<std::int16_t>(ttl),
                    static_cast<std::uint8_t>(kind), code, clock().now()});
  }

  /// One slot's delivery stats, padded out to its own cache lines: the
  /// bare 88-byte struct made adjacent workers' cells share lines, so the
  /// per-hop/per-send increments false-shared across cores.
  struct alignas(64) StatsCell {
    NetworkStats v;
  };

  /// The calling thread's stats cell. Cells are per obs thread slot, so
  /// concurrent shard workers never write the same cell (plain non-atomic
  /// fields stay race-free and, padded, never share a cache line);
  /// stats() merges them.
  [[nodiscard]] NetworkStats& stats_cell() noexcept {
    return stats_cells_[obs::thread_slot()].v;
  }

  Clock* clock_;
  std::vector<Node> nodes_;
  /// Per-slot route-cache stripes (route_stripe()); stride >= nodes_.size().
  std::array<std::unique_ptr<std::atomic<std::uint64_t>[]>,
             obs::kMaxThreadSlots>
      route_stripes_;
  std::size_t route_stride_ = 0;
  std::array<StatsCell, obs::kMaxThreadSlots> stats_cells_{};
  mutable NetworkStats stats_merged_;  ///< scratch for stats()
  ObsHandles obs_ = make_obs_handles();
  obs::TraceRing* trace_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace cgn::sim
