// Deterministic random source used by every stochastic component.
//
// A single seed reproduces an entire synthetic Internet, crawl, and
// measurement campaign bit-for-bit, which the tests rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace cgn::sim {

/// Convenience wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Throws if lo > hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
    return std::uniform_int_distribution<std::uint64_t>{lo, hi}(engine_);
  }

  /// Uniform integer in [0, n). Throws if n == 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("index: empty range");
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Picks one element of a non-empty span uniformly at random.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Samples an index according to non-negative weights. Throws when all
  /// weights are zero or the span is empty.
  [[nodiscard]] std::size_t weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) throw std::invalid_argument("weighted: no positive weight");
    double x = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child generator (for parallel subsystem seeding).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Derives the substream for shard `shard_id` of a campaign seeded with
  /// `seed`. Unlike fork(), this consumes no generator state: shard k's
  /// stream depends only on (seed, k), never on how many shards exist or in
  /// which order they are derived — the property that makes sharded
  /// campaigns thread-count invariant. Mixing is splitmix64, whose output
  /// is equidistributed over distinct inputs, so adjacent shard ids yield
  /// uncorrelated mt19937_64 seeds.
  [[nodiscard]] static Rng fork(std::uint64_t seed, std::uint64_t shard_id) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (shard_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cgn::sim
