// The packet model the simulated network transports.
//
// Packets carry a transport 5-tuple-ish header (protocol, src/dst endpoints,
// TTL) plus a type-erased application payload (DHT message, Netalyzr probe,
// STUN request, ...). A packet is mutated in place as it traverses the path:
// NATs rewrite src on the way out and dst on the way in, and every hop
// decrements the TTL — exactly the observables the paper's methods rely on.
#pragma once

#include <any>
#include <cstdint>

#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"

namespace cgn::sim {

/// Minimal TCP signalling the NAT engine needs for state tracking.
enum class TcpFlag : std::uint8_t { none, syn, fin, rst };

/// Optional IPv6 overlay header (DESIGN.md §14). Routing stays on the v4
/// header — translators and softwire elements read/write this overlay while
/// mapping it onto per-line v4 underlay handles, so the v4-only hot path
/// never branches on it. `inner` is the DS-Lite decap scratch: on the
/// descending half of a softwire it carries the inner IPv4 destination the
/// B4 restores after stripping the v6 header. Plain POD — copying a Packet
/// with an engaged overlay still performs zero heap allocation.
struct V6Overlay {
  netcore::Ipv6Address src;
  netcore::Ipv6Address dst;
  netcore::Ipv4Address inner;
  bool present = false;
};

struct Packet {
  netcore::Protocol proto = netcore::Protocol::udp;
  netcore::Endpoint src;
  netcore::Endpoint dst;
  int ttl = 64;
  TcpFlag tcp_flag = TcpFlag::none;
  V6Overlay v6;      ///< engaged (present=true) only on v6-transition paths
  std::any payload;  ///< application message; receivers std::any_cast it

  [[nodiscard]] static Packet udp(netcore::Endpoint src, netcore::Endpoint dst,
                                  int ttl = 64) {
    Packet p;
    p.proto = netcore::Protocol::udp;
    p.src = src;
    p.dst = dst;
    p.ttl = ttl;
    return p;
  }

  [[nodiscard]] static Packet tcp(netcore::Endpoint src, netcore::Endpoint dst,
                                  TcpFlag flag = TcpFlag::syn, int ttl = 64) {
    Packet p;
    p.proto = netcore::Protocol::tcp;
    p.src = src;
    p.dst = dst;
    p.ttl = ttl;
    p.tcp_flag = flag;
    return p;
  }
};

/// Default initial TTL used by well-behaved simulated hosts.
inline constexpr int kDefaultTtl = 64;

}  // namespace cgn::sim
