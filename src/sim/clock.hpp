// Virtual time for the discrete-event simulation.
//
// All NAT timeout behaviour (mapping expiry, the TTL-driven enumeration
// test's idle periods) is driven by this clock; drivers advance it
// explicitly, so a 200-second idle period costs nothing to simulate.
#pragma once

#include <stdexcept>

namespace cgn::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// A monotonically advancing virtual clock.
class Clock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advances the clock by `dt` seconds. Throws on negative dt.
  void advance(SimTime dt) {
    if (dt < 0) throw std::invalid_argument("clock cannot go backwards");
    now_ += dt;
  }

  /// Jumps to absolute time `t`. Throws if `t` is in the past.
  void set(SimTime t) {
    if (t < now_) throw std::invalid_argument("clock cannot go backwards");
    now_ = t;
  }

  /// Rolls back to absolute time `t`. The one sanctioned use is closing a
  /// scoped timeline: fault::retry_loop advances the clock while a probe
  /// backs off, then rewinds to the probe's start so thousands of
  /// concurrently multiplexed probes do not serialize their waits. Throws
  /// if `t` is in the future.
  void rewind(SimTime t) {
    if (t > now_) throw std::invalid_argument("rewind cannot go forward");
    now_ = t;
  }

 private:
  SimTime now_ = 0.0;
};

/// Scoped thread-local clock override. While a scope is live on a thread,
/// sim::Network timestamps packets (and reports clock()) from the override
/// instead of the network's own clock — this is how each campaign shard
/// advances its private clock without touching the shared one. Scopes nest;
/// destruction restores the previous override.
class ThreadClockScope {
 public:
  explicit ThreadClockScope(const Clock& clock) noexcept : prev_(current_) {
    current_ = &clock;
  }
  ThreadClockScope(const ThreadClockScope&) = delete;
  ThreadClockScope& operator=(const ThreadClockScope&) = delete;
  ~ThreadClockScope() { current_ = prev_; }

  /// The active override for the calling thread, or nullptr.
  [[nodiscard]] static const Clock* current() noexcept { return current_; }

 private:
  const Clock* prev_;
  inline static thread_local const Clock* current_ = nullptr;
};

}  // namespace cgn::sim
