// Virtual time for the discrete-event simulation.
//
// All NAT timeout behaviour (mapping expiry, the TTL-driven enumeration
// test's idle periods) is driven by this clock; drivers advance it
// explicitly, so a 200-second idle period costs nothing to simulate.
#pragma once

#include <stdexcept>

namespace cgn::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// A monotonically advancing virtual clock.
class Clock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advances the clock by `dt` seconds. Throws on negative dt.
  void advance(SimTime dt) {
    if (dt < 0) throw std::invalid_argument("clock cannot go backwards");
    now_ += dt;
  }

  /// Jumps to absolute time `t`. Throws if `t` is in the past.
  void set(SimTime t) {
    if (t < now_) throw std::invalid_argument("clock cannot go backwards");
    now_ = t;
  }

 private:
  SimTime now_ = 0.0;
};

}  // namespace cgn::sim
