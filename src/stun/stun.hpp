// Session Traversal Utilities for NAT (STUN), RFC 3489-style classification.
//
// The paper's Netalyzr STUN test (§6.3) classifies the most restrictive NAT
// on the path into the Figure 13 categories. The server answers binding
// requests from its primary or alternate port/IP as requested; the client
// runs the classic decision tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "netcore/ipv4.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"

namespace cgn::stun {

/// What the client asks the server to change when responding.
struct ChangeRequest {
  bool change_ip = false;
  bool change_port = false;
};

struct BindingRequest {
  std::uint64_t tx = 0;
  ChangeRequest change;
};

struct BindingResponse {
  std::uint64_t tx = 0;
  /// The client's endpoint as observed by the server (MAPPED-ADDRESS).
  netcore::Endpoint mapped;
};

/// STUN classification outcome (Figure 13 categories).
enum class StunType : std::uint8_t {
  open_internet,            ///< no translation observed
  symmetric,
  port_address_restricted,
  address_restricted,
  full_cone,
  blocked,                  ///< no response at all ("other" in the paper)
};

[[nodiscard]] std::string_view to_string(StunType t) noexcept;

/// True when `t` names an address-translating NAT type (not open/blocked).
[[nodiscard]] constexpr bool is_nat_type(StunType t) noexcept {
  return t == StunType::symmetric || t == StunType::port_address_restricted ||
         t == StunType::address_restricted || t == StunType::full_cone;
}

/// Permissiveness rank for "most permissive type per AS" (Figure 13(b)):
/// symmetric(0) < port-address(1) < address(2) < full cone(3); open/blocked
/// have no rank.
[[nodiscard]] std::optional<int> permissiveness(StunType t) noexcept;

/// The server side: one network host owning two public IP addresses, each
/// listening on two ports.
class StunServer {
 public:
  StunServer(sim::Network& net, sim::NodeId host,
             netcore::Ipv4Address primary_ip,
             netcore::Ipv4Address alternate_ip, std::uint16_t primary_port,
             std::uint16_t alternate_port);

  [[nodiscard]] netcore::Endpoint primary() const noexcept {
    return {primary_ip_, primary_port_};
  }
  [[nodiscard]] netcore::Endpoint alternate_address() const noexcept {
    return {alternate_ip_, primary_port_};
  }

  /// Registers the server's addresses/receiver with the network; call once
  /// after construction (the host node must be attached under the core).
  void install(sim::Network& net);

 private:
  void handle(sim::Network& net, const sim::Packet& pkt);

  sim::NodeId host_;
  netcore::Ipv4Address primary_ip_;
  netcore::Ipv4Address alternate_ip_;
  std::uint16_t primary_port_;
  std::uint16_t alternate_port_;
};

/// Result of a full classification run.
struct StunOutcome {
  StunType type = StunType::blocked;
  /// Mapped endpoint from the first binding request (when any response came).
  std::optional<netcore::Endpoint> mapped;
};

/// RFC 5780 decomposes NAT behaviour into two independent dimensions,
/// replacing the monolithic RFC 3489 types.
enum class MappingBehavior : std::uint8_t {
  endpoint_independent,       ///< one mapping regardless of destination
  address_and_port_dependent, ///< fresh mapping per destination (symmetric)
};
enum class FilteringBehavior : std::uint8_t {
  endpoint_independent,       ///< anyone may send (full cone)
  address_dependent,          ///< contacted IPs may send, any port
  address_and_port_dependent, ///< only contacted IP:port pairs may send
};

[[nodiscard]] std::string_view to_string(MappingBehavior b) noexcept;
[[nodiscard]] std::string_view to_string(FilteringBehavior b) noexcept;

/// Outcome of an RFC 5780 behaviour-discovery run.
struct BehaviorDiscovery {
  bool responded = false;
  bool natted = false;  ///< mapped address != local address
  MappingBehavior mapping = MappingBehavior::endpoint_independent;
  FilteringBehavior filtering = FilteringBehavior::endpoint_independent;
};

/// The client side: runs the RFC 3489 decision tree (classify) or the
/// RFC 5780 behaviour-discovery procedure (discover) from a host. The sim
/// is synchronous, so each request either yields a response before send()
/// returns, or never will.
class StunClient {
 public:
  /// `demux` is the host's port dispatcher; the client binds `local.port`.
  StunClient(sim::NodeId host, netcore::Endpoint local, sim::PortDemux& demux);
  ~StunClient();

  StunClient(const StunClient&) = delete;
  StunClient& operator=(const StunClient&) = delete;

  /// Runs the classification against a server.
  [[nodiscard]] StunOutcome classify(sim::Network& net,
                                     const StunServer& server);

  /// Runs RFC 5780 behaviour discovery: probes the server's alternate
  /// address to separate the *mapping* dimension from the *filtering*
  /// dimension.
  [[nodiscard]] BehaviorDiscovery discover(sim::Network& net,
                                           const StunServer& server);

 private:
  std::optional<BindingResponse> request(sim::Network& net,
                                         const netcore::Endpoint& server,
                                         ChangeRequest change);

  sim::NodeId host_;
  netcore::Endpoint local_;
  sim::PortDemux* demux_;
  std::uint64_t next_tx_ = 1;
  std::optional<BindingResponse> last_response_;
};

}  // namespace cgn::stun
