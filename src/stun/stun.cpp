#include "stun/stun.hpp"

#include <variant>

namespace cgn::stun {

std::string_view to_string(StunType t) noexcept {
  switch (t) {
    case StunType::open_internet: return "open internet";
    case StunType::symmetric: return "symmetric";
    case StunType::port_address_restricted: return "port-address restricted";
    case StunType::address_restricted: return "address restricted";
    case StunType::full_cone: return "full cone";
    case StunType::blocked: return "blocked";
  }
  return "?";
}

std::optional<int> permissiveness(StunType t) noexcept {
  switch (t) {
    case StunType::symmetric: return 0;
    case StunType::port_address_restricted: return 1;
    case StunType::address_restricted: return 2;
    case StunType::full_cone: return 3;
    default: return std::nullopt;
  }
}

StunServer::StunServer(sim::Network& net, sim::NodeId host,
                       netcore::Ipv4Address primary_ip,
                       netcore::Ipv4Address alternate_ip,
                       std::uint16_t primary_port,
                       std::uint16_t alternate_port)
    : host_(host), primary_ip_(primary_ip), alternate_ip_(alternate_ip),
      primary_port_(primary_port), alternate_port_(alternate_port) {
  (void)net;
}

void StunServer::install(sim::Network& net) {
  net.add_local_address(host_, primary_ip_);
  net.add_local_address(host_, alternate_ip_);
  net.register_address(primary_ip_, host_, net.root());
  net.register_address(alternate_ip_, host_, net.root());
  net.set_receiver(host_, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
}

void StunServer::handle(sim::Network& net, const sim::Packet& pkt) {
  const auto* req = std::any_cast<BindingRequest>(&pkt.payload);
  if (!req) return;
  netcore::Ipv4Address from_ip =
      req->change.change_ip
          ? (pkt.dst.address == primary_ip_ ? alternate_ip_ : primary_ip_)
          : pkt.dst.address;
  std::uint16_t from_port =
      req->change.change_port
          ? (pkt.dst.port == primary_port_ ? alternate_port_ : primary_port_)
          : pkt.dst.port;
  sim::Packet reply = sim::Packet::udp({from_ip, from_port}, pkt.src);
  reply.payload = BindingResponse{req->tx, pkt.src};
  net.send(std::move(reply), host_);
}

StunClient::StunClient(sim::NodeId host, netcore::Endpoint local,
                       sim::PortDemux& demux)
    : host_(host), local_(local), demux_(&demux) {
  demux_->bind(local_.port, [this](sim::Network&, const sim::Packet& pkt) {
    if (const auto* resp = std::any_cast<BindingResponse>(&pkt.payload))
      last_response_ = *resp;
  });
}

StunClient::~StunClient() { demux_->unbind(local_.port); }

std::optional<BindingResponse> StunClient::request(
    sim::Network& net, const netcore::Endpoint& server, ChangeRequest change) {
  std::uint64_t tx = next_tx_++;
  last_response_.reset();
  sim::Packet pkt = sim::Packet::udp(local_, server);
  pkt.payload = BindingRequest{tx, change};
  net.send(std::move(pkt), host_);
  if (last_response_ && last_response_->tx == tx) return last_response_;
  return std::nullopt;
}

std::string_view to_string(MappingBehavior b) noexcept {
  switch (b) {
    case MappingBehavior::endpoint_independent:
      return "endpoint-independent mapping";
    case MappingBehavior::address_and_port_dependent:
      return "address-and-port-dependent mapping";
  }
  return "?";
}

std::string_view to_string(FilteringBehavior b) noexcept {
  switch (b) {
    case FilteringBehavior::endpoint_independent:
      return "endpoint-independent filtering";
    case FilteringBehavior::address_dependent:
      return "address-dependent filtering";
    case FilteringBehavior::address_and_port_dependent:
      return "address-and-port-dependent filtering";
  }
  return "?";
}

BehaviorDiscovery StunClient::discover(sim::Network& net,
                                       const StunServer& server) {
  BehaviorDiscovery out;
  auto r1 = request(net, server.primary(), {});
  if (!r1) return out;
  out.responded = true;
  out.natted = r1->mapped != local_;

  // Filtering dimension first: these probes must run while the alternate
  // address is still *uncontacted*, or the mapping-dimension request below
  // would whitelist it on address-restricted NATs (RFC 5780 §4.4 ordering).
  if (request(net, server.primary(), {.change_ip = true, .change_port = true}))
    out.filtering = FilteringBehavior::endpoint_independent;
  else if (request(net, server.primary(), {.change_port = true}))
    out.filtering = FilteringBehavior::address_dependent;
  else
    out.filtering = FilteringBehavior::address_and_port_dependent;

  // Mapping dimension: compare the mapped endpoint across destinations.
  auto r2 = request(net, server.alternate_address(), {});
  out.mapping = (r2 && r2->mapped == r1->mapped)
                    ? MappingBehavior::endpoint_independent
                    : MappingBehavior::address_and_port_dependent;
  return out;
}

StunOutcome StunClient::classify(sim::Network& net, const StunServer& server) {
  // RFC 3489 decision tree.
  // Test I: plain binding request to the primary endpoint.
  auto r1 = request(net, server.primary(), {});
  if (!r1) return {StunType::blocked, std::nullopt};
  StunOutcome out;
  out.mapped = r1->mapped;
  if (r1->mapped == local_) {
    out.type = StunType::open_internet;
    return out;
  }
  // Test II: ask for a reply from the alternate IP *and* port. Only a
  // full-cone mapping lets a never-contacted endpoint through.
  if (request(net, server.primary(), {.change_ip = true, .change_port = true})) {
    out.type = StunType::full_cone;
    return out;
  }
  // Test I': binding request to the alternate address; a different mapped
  // endpoint means per-destination mappings, i.e. a symmetric NAT.
  auto r2 = request(net, server.alternate_address(), {});
  if (!r2) {
    // Inconsistent: the alternate address should answer directly.
    out.type = StunType::blocked;
    return out;
  }
  if (r2->mapped != r1->mapped) {
    out.type = StunType::symmetric;
    return out;
  }
  // Test III: reply from the alternate port of a contacted IP.
  if (request(net, server.alternate_address(), {.change_port = true}))
    out.type = StunType::address_restricted;
  else
    out.type = StunType::port_address_restricted;
  return out;
}

}  // namespace cgn::stun
