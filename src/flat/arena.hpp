#pragma once
// Chunked object slab with stable addresses and 32-bit handles.
//
// `Arena<T>` owns its objects in fixed-size chunks (no reallocation ever
// moves a live object), hands out dense `std::uint32_t` handles instead of
// pointers, and recycles erased slots through a LIFO free list. Compared to
// the `std::vector<std::unique_ptr<T>>` ownership pattern it replaces:
//
//   * one allocation per `ChunkSize` objects instead of one per object
//     (orders of magnitude fewer malloc calls and ~16 bytes/object less
//     header overhead at million-object scale);
//   * handles are half the size of pointers, so side tables that reference
//     arena entries (e.g. the NAT translation maps) shrink accordingly;
//   * erase + emplace reuse is deterministic: the most recently freed slot
//     is always handed out next, independent of the heap state, which keeps
//     handle sequences reproducible across runs.
//
// Objects are constructed in place (`emplace` forwards to the constructor),
// so non-movable types work. Destruction order on `clear()` is slot order,
// chunk by chunk.
//
// Not thread-safe; external synchronisation required, same as the flat
// containers next door.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cgn::flat {

template <typename T, std::size_t ChunkSize = 1024>
class Arena {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "ChunkSize must be a power of two");

 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNoHandle = 0xFFFFFFFFu;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept
      : chunks_(std::move(other.chunks_)),
        live_(std::move(other.live_)),
        free_(std::move(other.free_)),
        end_(other.end_),
        size_(other.size_) {
    other.end_ = 0;
    other.size_ = 0;
  }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      destroy_all();
      chunks_ = std::move(other.chunks_);
      live_ = std::move(other.live_);
      free_ = std::move(other.free_);
      end_ = other.end_;
      size_ = other.size_;
      other.end_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  ~Arena() { destroy_all(); }

  /// Constructs a T in a free slot and returns its handle. Reuses the most
  /// recently erased slot first; otherwise appends (growing by one chunk
  /// when the current one is full).
  template <typename... Args>
  Handle emplace(Args&&... args) {
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
    } else {
      h = end_;
      if ((end_ >> kShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(ChunkSize));
        live_.resize(live_.size() + ChunkSize, 0);
      }
      ++end_;
    }
    ::new (static_cast<void*>(slot(h))) T(std::forward<Args>(args)...);
    live_[h] = 1;
    ++size_;
    return h;
  }

  /// Destroys the object at `h` and recycles its slot.
  void erase(Handle h) {
    assert(h < end_ && live_[h]);
    std::launder(reinterpret_cast<T*>(slot(h)))->~T();
    live_[h] = 0;
    --size_;
    free_.push_back(h);
  }

  T& operator[](Handle h) {
    assert(h < end_ && live_[h]);
    return *std::launder(reinterpret_cast<T*>(slot(h)));
  }
  const T& operator[](Handle h) const {
    assert(h < end_ && live_[h]);
    return *std::launder(reinterpret_cast<const T*>(slot(h)));
  }

  bool contains(Handle h) const { return h < end_ && live_[h]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots ever handed out (high-water mark), live or not.
  std::size_t slots() const { return end_; }
  /// Bytes reserved for object storage across all chunks.
  std::size_t capacity_bytes() const {
    return chunks_.size() * ChunkSize * sizeof(T);
  }

  /// Destroys all live objects and resets the free list; chunk memory is
  /// kept for reuse (mirrors PortSet::clear()).
  void clear() {
    for (Handle h = 0; h < end_; ++h)
      if (live_[h]) {
        std::launder(reinterpret_cast<T*>(slot(h)))->~T();
        live_[h] = 0;
      }
    free_.clear();
    end_ = 0;
    size_ = 0;
  }

  /// Calls `fn(handle, T&)` for every live object in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Handle h = 0; h < end_; ++h)
      if (live_[h]) fn(h, (*this)[h]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Handle h = 0; h < end_; ++h)
      if (live_[h]) fn(h, (*this)[h]);
  }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };
  static constexpr std::uint32_t kShift = [] {
    std::uint32_t s = 0;
    while ((std::size_t{1} << s) < ChunkSize) ++s;
    return s;
  }();
  static constexpr std::uint32_t kMask = ChunkSize - 1;

  Slot* slot(Handle h) { return &chunks_[h >> kShift][h & kMask]; }
  const Slot* slot(Handle h) const { return &chunks_[h >> kShift][h & kMask]; }

  void destroy_all() {
    for (Handle h = 0; h < end_; ++h)
      if (live_[h]) std::launder(reinterpret_cast<T*>(slot(h)))->~T();
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint8_t> live_;
  std::vector<Handle> free_;
  Handle end_ = 0;       // one past the highest slot ever handed out
  std::size_t size_ = 0; // live objects
};

}  // namespace cgn::flat
