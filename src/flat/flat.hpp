// cgn::flat — open-addressing hash containers for the packet hot path.
//
// The delivery engine and the NAT translation tables sit on every simulated
// packet, so their containers must not pay std::unordered_map's node
// allocation, pointer chasing and per-insert malloc. FlatMap/FlatSet store
// elements inline in one power-of-two array, probe linearly, and erase with
// backward shifting (no tombstones, so probe chains never degrade). Hashes
// are finalized with a 64-bit avalanche mix so the weak identity hashes of
// std::hash<integral> (and the repo's FNV-1a-style key hashes) spread over
// the low bits that a power-of-two mask keeps.
//
// Determinism note (see DESIGN.md §10): iteration order differs from the
// std containers these replace, so callers must never let iteration order
// escape into results — the repo's packet-path users only do point lookups,
// whole-table clears, or order-insensitive folds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cgn::flat {

// --- hashing ---------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// FNV-1a over a byte range — the same digest the repo already uses for
/// fault-plan hashes and session fingerprints.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Murmur3-style 64-bit finalizer: every input bit avalanches into every
/// output bit, so power-of-two masking sees a uniform low word.
inline std::uint64_t avalanche(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Default hasher: FNV-1a over the value bytes for integers/enums (stable
/// and byte-order independent within a run), std::hash for everything else.
/// FlatMap/FlatSet avalanche the result, so even an identity std::hash is
/// safe under linear probing.
template <class K>
struct DefaultHash {
  std::size_t operator()(const K& k) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      auto v = static_cast<std::uint64_t>(k);
      return static_cast<std::size_t>(fnv1a_bytes(&v, sizeof v));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

namespace detail {

/// Shared open-addressing core. Entry is the stored element (std::pair<K,V>
/// for maps, K for sets); KeyOf projects the key out of an entry.
template <class Entry, class K, class KeyOf, class Hasher>
class FlatTable {
 public:
  class const_iterator;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = Entry*;
    using reference = Entry&;

    iterator() = default;
    reference operator*() const noexcept { return *t_->entry(i_); }
    pointer operator->() const noexcept { return t_->entry(i_); }
    iterator& operator++() noexcept {
      i_ = t_->next_full(i_ + 1);
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator&) const noexcept = default;

   private:
    friend class FlatTable;
    friend class const_iterator;
    iterator(FlatTable* t, std::size_t i) noexcept : t_(t), i_(i) {}
    FlatTable* t_ = nullptr;
    std::size_t i_ = 0;
  };

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = const Entry*;
    using reference = const Entry&;

    const_iterator() = default;
    const_iterator(iterator it) noexcept : t_(it.t_), i_(it.i_) {}
    reference operator*() const noexcept { return *t_->entry(i_); }
    pointer operator->() const noexcept { return t_->entry(i_); }
    const_iterator& operator++() noexcept {
      i_ = t_->next_full(i_ + 1);
      return *this;
    }
    const_iterator operator++(int) noexcept {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator&) const noexcept = default;

   private:
    friend class FlatTable;
    const_iterator(const FlatTable* t, std::size_t i) noexcept
        : t_(t), i_(i) {}
    const FlatTable* t_ = nullptr;
    std::size_t i_ = 0;
  };

  FlatTable() = default;
  FlatTable(const FlatTable& other) { copy_from(other); }
  FlatTable(FlatTable&& other) noexcept { swap(other); }
  FlatTable& operator=(const FlatTable& other) {
    if (this != &other) {
      destroy_all();
      release();
      copy_from(other);
    }
    return *this;
  }
  FlatTable& operator=(FlatTable&& other) noexcept {
    if (this != &other) {
      destroy_all();
      release();
      swap(other);
    }
    return *this;
  }
  ~FlatTable() {
    destroy_all();
    release();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  iterator begin() noexcept { return {this, next_full(0)}; }
  iterator end() noexcept { return {this, cap_}; }
  const_iterator begin() const noexcept { return {this, next_full(0)}; }
  const_iterator end() const noexcept { return {this, cap_}; }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  template <class Key>
  [[nodiscard]] iterator find(const Key& k) noexcept {
    const std::size_t i = find_index(k);
    return {this, i};
  }
  template <class Key>
  [[nodiscard]] const_iterator find(const Key& k) const noexcept {
    const std::size_t i = const_cast<FlatTable*>(this)->find_index(k);
    return {this, i};
  }
  template <class Key>
  [[nodiscard]] bool contains(const Key& k) const noexcept {
    return const_cast<FlatTable*>(this)->find_index(k) != cap_;
  }

  /// Ensures `n` elements fit without another rehash.
  void reserve(std::size_t n) {
    std::size_t want = min_capacity_for(n);
    if (want > cap_) rehash(want);
  }

  /// Destroys every element; keeps the allocation (like unordered_map).
  void clear() noexcept {
    destroy_all();
    if (cap_ != 0) std::memset(full_.get(), 0, cap_);
    size_ = 0;
  }

  /// Removes the entry for `k`, backward-shifting the probe chain so no
  /// tombstone is left behind. Returns the number of elements removed.
  template <class Key>
  std::size_t erase(const Key& k) noexcept {
    std::size_t i = find_index(k);
    if (i == cap_) return 0;
    erase_at(i);
    return 1;
  }

 protected:
  /// Finds the slot holding `k`, or inserts a new default slot for it.
  /// Returns (index, inserted). The caller constructs the entry when
  /// inserted is true; the slot is NOT yet constructed in that case.
  template <class Key>
  std::pair<std::size_t, bool> find_or_prepare(const Key& k) {
    if (cap_ == 0 || (size_ + 1) * 4 > cap_ * 3) grow();
    const std::size_t mask = cap_ - 1;
    std::size_t i = home(k);
    while (full_[i]) {
      if (KeyOf{}(*entry(i)) == k) return {i, false};
      i = (i + 1) & mask;
    }
    return {i, true};
  }

  /// Marks a slot prepared by find_or_prepare as constructed.
  void commit(std::size_t i) noexcept {
    full_[i] = 1;
    ++size_;
  }

  /// Iterator over a known-full slot (for derived-class insert paths).
  [[nodiscard]] iterator make_iterator(std::size_t i) noexcept {
    return {this, i};
  }

  [[nodiscard]] Entry* entry(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<Entry*>(slots_.get()) + i);
  }
  [[nodiscard]] const Entry* entry(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<const Entry*>(slots_.get()) + i);
  }

  template <class Key>
  [[nodiscard]] std::size_t find_index(const Key& k) noexcept {
    if (cap_ == 0) return cap_;
    const std::size_t mask = cap_ - 1;
    std::size_t i = home(k);
    while (full_[i]) {
      if (KeyOf{}(*entry(i)) == k) return i;
      i = (i + 1) & mask;
    }
    return cap_;
  }

  void erase_at(std::size_t i) noexcept {
    const std::size_t mask = cap_ - 1;
    entry(i)->~Entry();
    full_[i] = 0;
    --size_;
    // Backward-shift: walk the chain after the hole; any element whose home
    // slot lies at or before the hole (cyclically) moves into it, so every
    // remaining element stays reachable from its home without tombstones.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (!full_[j]) return;
      const std::size_t h = home(KeyOf{}(*entry(j)));
      if (((j - h) & mask) >= ((j - i) & mask)) {
        ::new (static_cast<void*>(entry(i))) Entry(std::move(*entry(j)));
        entry(j)->~Entry();
        full_[i] = 1;
        full_[j] = 0;
        i = j;
      }
    }
  }

  [[nodiscard]] std::size_t next_full(std::size_t i) const noexcept {
    while (i < cap_ && !full_[i]) ++i;
    return i;
  }

 private:
  template <class Key>
  [[nodiscard]] std::size_t home(const Key& k) const noexcept {
    return static_cast<std::size_t>(
               avalanche(static_cast<std::uint64_t>(Hasher{}(k)))) &
           (cap_ - 1);
  }

  [[nodiscard]] static std::size_t min_capacity_for(std::size_t n) noexcept {
    std::size_t cap = 8;
    while (n * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  void grow() { rehash(cap_ == 0 ? 8 : cap_ * 2); }

  void rehash(std::size_t new_cap) {
    auto new_slots = std::make_unique<std::byte[]>(new_cap * sizeof(Entry));
    auto new_full = std::make_unique<std::uint8_t[]>(new_cap);
    std::memset(new_full.get(), 0, new_cap);
    const std::size_t old_cap = cap_;
    auto old_slots = std::move(slots_);
    auto old_full = std::move(full_);
    slots_ = std::move(new_slots);
    full_ = std::move(new_full);
    cap_ = new_cap;
    const std::size_t mask = new_cap - 1;
    auto* old_entries =
        std::launder(reinterpret_cast<Entry*>(old_slots.get()));
    for (std::size_t s = 0; s < old_cap; ++s) {
      if (!old_full[s]) continue;
      Entry& e = old_entries[s];
      std::size_t i = home(KeyOf{}(e));
      while (full_[i]) i = (i + 1) & mask;
      ::new (static_cast<void*>(entry(i))) Entry(std::move(e));
      full_[i] = 1;
      e.~Entry();
    }
  }

  void copy_from(const FlatTable& other) {
    if (other.size_ == 0) return;
    rehash(other.cap_);
    const std::size_t mask = cap_ - 1;
    for (std::size_t s = 0; s < other.cap_; ++s) {
      if (!other.full_[s]) continue;
      const Entry& e = *other.entry(s);
      std::size_t i = home(KeyOf{}(e));
      while (full_[i]) i = (i + 1) & mask;
      ::new (static_cast<void*>(entry(i))) Entry(e);
      full_[i] = 1;
    }
    size_ = other.size_;
  }

  void destroy_all() noexcept {
    if constexpr (!std::is_trivially_destructible_v<Entry>) {
      for (std::size_t i = 0; i < cap_; ++i)
        if (full_[i]) entry(i)->~Entry();
    }
  }

  void release() noexcept {
    slots_.reset();
    full_.reset();
    cap_ = 0;
    size_ = 0;
  }

  void swap(FlatTable& other) noexcept {
    std::swap(slots_, other.slots_);
    std::swap(full_, other.full_);
    std::swap(cap_, other.cap_);
    std::swap(size_, other.size_);
  }

  std::unique_ptr<std::byte[]> slots_;
  std::unique_ptr<std::uint8_t[]> full_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

template <class K, class V>
struct PairKeyOf {
  const K& operator()(const std::pair<K, V>& e) const noexcept {
    return e.first;
  }
};
template <class K>
struct SelfKeyOf {
  const K& operator()(const K& e) const noexcept { return e; }
};

}  // namespace detail

// --- FlatMap ---------------------------------------------------------------

/// Drop-in replacement for the std::unordered_map uses on the packet path.
/// Differences: iteration order is unspecified and changes across rehashes;
/// iterators/pointers are invalidated by any insert or erase (backward
/// shifting moves elements); elements are exposed as std::pair<K,V>, and
/// callers must not modify `first` through iterators.
template <class K, class V, class Hasher = DefaultHash<K>>
class FlatMap : public detail::FlatTable<std::pair<K, V>, K,
                                         detail::PairKeyOf<K, V>, Hasher> {
  using Base = detail::FlatTable<std::pair<K, V>, K, detail::PairKeyOf<K, V>,
                                 Hasher>;

 public:
  using value_type = std::pair<K, V>;
  using iterator = typename Base::iterator;
  using const_iterator = typename Base::const_iterator;

  /// Inserts `(k, args...)` if `k` is absent. Mirrors unordered_map's
  /// try_emplace: on a hit the args are not consumed.
  template <class Key, class... Args>
  std::pair<iterator, bool> try_emplace(Key&& k, Args&&... args) {
    auto [i, inserted] = this->find_or_prepare(k);
    if (inserted) {
      ::new (static_cast<void*>(this->entry(i))) value_type(
          std::piecewise_construct,
          std::forward_as_tuple(std::forward<Key>(k)),
          std::forward_as_tuple(std::forward<Args>(args)...));
      this->commit(i);
    }
    return {this->make_iterator(i), inserted};
  }

  /// unordered_map-style emplace for the (key, value) call sites.
  template <class Key, class... Args>
  std::pair<iterator, bool> emplace(Key&& k, Args&&... args) {
    return try_emplace(std::forward<Key>(k), std::forward<Args>(args)...);
  }

  template <class Key, class Val>
  std::pair<iterator, bool> insert_or_assign(Key&& k, Val&& v) {
    auto [it, inserted] = try_emplace(std::forward<Key>(k));
    it->second = std::forward<Val>(v);
    return {it, inserted};
  }

  V& operator[](const K& k) { return try_emplace(k).first->second; }
};

// --- FlatSet ---------------------------------------------------------------

/// Open-addressing set with the same layout/probing as FlatMap.
template <class K, class Hasher = DefaultHash<K>>
class FlatSet
    : public detail::FlatTable<K, K, detail::SelfKeyOf<K>, Hasher> {
  using Base = detail::FlatTable<K, K, detail::SelfKeyOf<K>, Hasher>;

 public:
  using value_type = K;
  using iterator = typename Base::iterator;
  using const_iterator = typename Base::const_iterator;

  template <class Key>
  std::pair<iterator, bool> insert(Key&& k) {
    auto [i, inserted] = this->find_or_prepare(k);
    if (inserted) {
      ::new (static_cast<void*>(this->entry(i))) K(std::forward<Key>(k));
      this->commit(i);
    }
    return {this->make_iterator(i), inserted};
  }
};

// --- PortSet ---------------------------------------------------------------

/// Membership set over the full 16-bit port space as a flat bitmap: 8 KiB,
/// O(1) everything, no hashing, no per-insert allocation. The word array is
/// allocated on first insert so idle NAT devices (most CPEs in a large
/// world) stay tiny; clear() keeps the allocation, matching the restart
/// path's reuse pattern.
class PortSet {
 public:
  [[nodiscard]] bool contains(std::uint16_t p) const noexcept {
    return words_ && (words_[p >> 6] >> (p & 63)) & 1u;
  }

  /// Returns true when `p` was newly inserted.
  bool insert(std::uint16_t p) {
    if (!words_) words_ = std::make_unique<std::uint64_t[]>(kWords);
    std::uint64_t& w = words_[p >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (p & 63);
    if (w & bit) return false;
    w |= bit;
    ++size_;
    return true;
  }

  /// Returns 1 when `p` was present (erase-count, like the std containers).
  std::size_t erase(std::uint16_t p) noexcept {
    if (!contains(p)) return 0;
    words_[p >> 6] &= ~(std::uint64_t{1} << (p & 63));
    --size_;
    return 1;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    if (words_ && size_ != 0)
      std::memset(words_.get(), 0, kWords * sizeof(std::uint64_t));
    size_ = 0;
  }

 private:
  static constexpr std::size_t kWords = (1u << 16) / 64;
  std::unique_ptr<std::uint64_t[]> words_;
  std::uint32_t size_ = 0;
};

}  // namespace cgn::flat
