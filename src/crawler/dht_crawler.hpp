// The BitTorrent DHT crawler of paper §4.1.
//
// Starting from a bootstrap server, the crawler sends each discovered peer a
// series of find_nodes queries with random targets (five by default, as in
// the paper, harvesting ~40 contacts per peer), records every contact it
// learns, and — when a peer reports contacts with reserved-range addresses —
// keeps issuing batches of ten further queries for as long as fresh internal
// peers keep coming. Learned peers are additionally probed with bt_ping to
// measure responsiveness (Table 2).
#pragma once

#include <deque>
#include <optional>
#include <span>

#include "crawler/crawl_dataset.hpp"
#include "dht/dht_node.hpp"
#include "fault/retry.hpp"
#include "sim/clock.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::crawler {

struct CrawlConfig {
  /// find_nodes queries per newly discovered peer.
  int initial_queries = 5;
  /// Extra queries per batch once a peer leaks internal contacts.
  int leak_batch_queries = 10;
  /// Upper bound on leak batches per peer (the paper continues "as long as
  /// we continue to harvest"; this caps pathological peers).
  int max_leak_batches = 8;
  /// Probe learned peers with bt_ping after the crawl.
  bool ping_learned = true;
  /// Virtual seconds the driver should advance between crawl steps; the
  /// crawler itself never advances the clock.
  sim::SimTime step_interval_s = 0.0;
  /// Retransmission policy for find_nodes queries and bt_pings. The default
  /// (attempts = 1) sends once and never retries — the pre-fault behaviour.
  fault::RetryPolicy retry;
};

/// Counters describing crawler activity (not the harvested data).
struct CrawlerStats {
  std::uint64_t find_nodes_sent = 0;
  std::uint64_t find_nodes_answered = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t peers_with_leaks = 0;
};

class DhtCrawler {
 public:
  DhtCrawler(sim::NodeId host, netcore::Endpoint local, CrawlConfig config,
             sim::Rng rng);

  /// Installs the crawler's receiver on its host node.
  void install(sim::Network& net);

  /// Clock the retry policy's backoff advances during serial phases (the
  /// crawl walk and ping_step). Null disables backoff time; parallel sweep
  /// shards pass their private clock to ping_shard instead.
  void set_retry_clock(sim::Clock* clock) noexcept { retry_clock_ = clock; }

  /// Seeds the frontier from the bootstrap server.
  void start(sim::Network& net, const netcore::Endpoint& bootstrap);

  /// Processes up to `peer_budget` frontier peers; returns the number
  /// actually processed (0 when the frontier is empty). Interleave with
  /// swarm maintenance so peers' NAT mappings stay warm.
  std::size_t crawl_step(sim::Network& net, std::size_t peer_budget);

  [[nodiscard]] bool frontier_empty() const noexcept {
    return frontier_.empty();
  }

  /// bt_ping sweep over every learned contact (Table 2's responder counts).
  /// Call after the crawl; may be interleaved via `budget`, returns probes
  /// issued.
  std::size_t ping_step(sim::Network& net, std::size_t budget);

  /// Locally recorded results of one parallel sweep shard, merged into the
  /// crawler with absorb_ping_outcomes().
  struct PingShardOutcome {
    std::vector<dht::Contact> responders;
    std::uint64_t pings_sent = 0;
    std::uint64_t pongs_received = 0;
  };

  /// One shard of the parallel bt_ping sweep: probes `contacts` using
  /// thread-local in-flight state and tx ids from shard `shard_id`'s
  /// namespace, so concurrent shards never route each other's pongs. Does
  /// not mutate stats_ or the dataset — the campaign driver absorbs the
  /// outcomes in shard order after the barrier. Contact lists must target
  /// disjoint routing subtrees (see Network::top_route).
  /// `clock`/`rng` drive the retry policy's backoff and jitter for this
  /// shard (both may be null; pass the shard's private clock and a
  /// substream keyed on shard_id to stay thread-count invariant).
  [[nodiscard]] PingShardOutcome ping_shard(
      sim::Network& net, std::span<const dht::Contact> contacts,
      std::size_t shard_id, sim::Clock* clock = nullptr,
      sim::Rng* rng = nullptr);

  /// Folds shard outcomes into stats() and dataset() in the given order.
  void absorb_ping_outcomes(std::span<const PingShardOutcome> outcomes);

  [[nodiscard]] const CrawlDataset& dataset() const noexcept { return data_; }
  [[nodiscard]] const CrawlerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const netcore::Endpoint& local_endpoint() const noexcept {
    return local_;
  }

 private:
  void handle(sim::Network& net, const sim::Packet& pkt);
  /// Sends one find_nodes; returns the contacts received (empty if no reply).
  std::optional<std::vector<dht::Contact>> query(sim::Network& net,
                                                 const dht::Contact& peer);
  /// Queries one peer fully (initial queries + leak batches).
  void process_peer(sim::Network& net, const dht::Contact& peer);
  void record_contacts(const dht::Contact& from,
                       const std::vector<dht::Contact>& contacts,
                       bool& saw_new_internal);

  sim::NodeId host_;
  netcore::Endpoint local_;
  CrawlConfig config_;
  sim::Rng rng_;
  sim::Clock* retry_clock_ = nullptr;
  dht::NodeId160 id_;

  CrawlDataset data_;
  CrawlerStats stats_;

  std::deque<dht::Contact> frontier_;
  std::unordered_set<PeerKey, PeerKeyHash> enqueued_;
  std::vector<dht::Contact> ping_queue_;
  std::size_t ping_cursor_ = 0;
  bool ping_queue_built_ = false;

  // Per in-flight request state (the sim is synchronous).
  std::uint64_t next_tx_ = 1;
  std::uint64_t awaiting_tx_ = 0;
  std::optional<std::vector<dht::Contact>> reply_contacts_;
  std::optional<std::uint64_t> pong_tx_;

  /// In-flight ping state for a parallel sweep shard. handle() runs on the
  /// worker that sent the ping (delivery is synchronous), so a thread-local
  /// pointer routes each pong to its sender without touching the serial
  /// awaiting_tx_/pong_tx_ fields.
  struct PingCtx {
    std::uint64_t awaiting = 0;
    bool got_pong = false;
  };
  inline static thread_local PingCtx* tls_ping_ctx_ = nullptr;
};

}  // namespace cgn::crawler
