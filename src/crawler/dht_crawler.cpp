#include "crawler/dht_crawler.hpp"

#include "obs/metrics.hpp"

namespace cgn::crawler {

namespace {
obs::Counter& g_find_nodes_sent = obs::counter("crawler.find_nodes_sent");
obs::Counter& g_find_nodes_answered =
    obs::counter("crawler.find_nodes_answered");
obs::Counter& g_pings_sent = obs::counter("crawler.bt_pings_sent");
obs::Counter& g_pongs_received = obs::counter("crawler.bt_pongs_received");
obs::Counter& g_peers_with_leaks = obs::counter("crawler.peers_with_leaks");
obs::Gauge& g_frontier_size = obs::gauge("crawler.frontier_size");
}  // namespace

DhtCrawler::DhtCrawler(sim::NodeId host, netcore::Endpoint local,
                       CrawlConfig config, sim::Rng rng)
    : host_(host), local_(local), config_(config), rng_(std::move(rng)),
      id_(dht::NodeId160::random(rng_)) {}

void DhtCrawler::install(sim::Network& net) {
  net.set_receiver(host_, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
}

void DhtCrawler::handle(sim::Network& net, const sim::Packet& pkt) {
  const auto* msg = std::any_cast<dht::Message>(&pkt.payload);
  if (!msg) return;
  if (const auto* nodes = std::get_if<dht::NodesMsg>(msg)) {
    if (nodes->tx == awaiting_tx_) reply_contacts_ = nodes->contacts;
    return;
  }
  if (const auto* pong = std::get_if<dht::PongMsg>(msg)) {
    if (tls_ping_ctx_) {
      if (pong->tx == tls_ping_ctx_->awaiting) tls_ping_ctx_->got_pong = true;
    } else if (pong->tx == awaiting_tx_) {
      pong_tx_ = pong->tx;
    }
    return;
  }
  // The crawler participates in the DHT: answer pings so peers that learn
  // about us can validate our reachability.
  if (const auto* ping = std::get_if<dht::PingMsg>(msg)) {
    sim::Packet reply = sim::Packet::udp(local_, pkt.src);
    reply.payload = dht::Message{dht::PongMsg{ping->tx, id_}};
    net.send(std::move(reply), host_);
    return;
  }
  if (const auto* fn = std::get_if<dht::FindNodesMsg>(msg)) {
    // Reply with an empty contact list: we harvest, we do not feed.
    sim::Packet reply = sim::Packet::udp(local_, pkt.src);
    reply.payload = dht::Message{dht::NodesMsg{fn->tx, id_, {}}};
    net.send(std::move(reply), host_);
    return;
  }
}

std::optional<std::vector<dht::Contact>> DhtCrawler::query(
    sim::Network& net, const dht::Contact& peer) {
  // Each attempt is a fresh query: new tx, new random target. A lost reply
  // costs one backoff interval on the retry clock's scoped timeline.
  std::optional<std::vector<dht::Contact>> reply;
  fault::retry_loop(config_.retry, retry_clock_, &rng_, [&] {
    std::uint64_t tx = next_tx_++;
    awaiting_tx_ = tx;
    reply_contacts_.reset();
    dht::NodeId160 target = dht::NodeId160::random(rng_);
    sim::Packet pkt = sim::Packet::udp(local_, peer.endpoint);
    pkt.payload = dht::Message{dht::FindNodesMsg{tx, id_, target}};
    ++stats_.find_nodes_sent;
    g_find_nodes_sent.inc();
    net.send(std::move(pkt), host_);
    awaiting_tx_ = 0;
    if (!reply_contacts_) return false;
    reply = std::move(reply_contacts_);
    return true;
  });
  if (reply) {
    ++stats_.find_nodes_answered;
    g_find_nodes_answered.inc();
  }
  return reply;
}

void DhtCrawler::record_contacts(const dht::Contact& from,
                                 const std::vector<dht::Contact>& contacts,
                                 bool& saw_new_internal) {
  for (const dht::Contact& c : contacts) {
    bool fresh = !data_.was_learned(c);
    data_.note_learned(c);
    if (netcore::is_reserved(c.endpoint.address)) {
      data_.note_leak(from, c);
      if (fresh) saw_new_internal = true;
    } else if (fresh && !enqueued_.contains(PeerKey{c})) {
      // Publicly addressed peers join the crawl frontier.
      enqueued_.insert(PeerKey{c});
      frontier_.push_back(c);
    }
  }
}

void DhtCrawler::process_peer(sim::Network& net, const dht::Contact& peer) {
  bool responded = false;
  bool saw_internal = false;
  for (int i = 0; i < config_.initial_queries; ++i) {
    auto contacts = query(net, peer);
    if (!contacts) continue;
    responded = true;
    record_contacts(peer, *contacts, saw_internal);
  }
  if (responded) data_.note_queried(peer);
  if (saw_internal) {
    ++stats_.peers_with_leaks;
    g_peers_with_leaks.inc();
  }
  // Leak-triggered batches: keep asking while fresh internal peers arrive.
  int batches = 0;
  while (saw_internal && batches < config_.max_leak_batches) {
    saw_internal = false;
    for (int i = 0; i < config_.leak_batch_queries; ++i) {
      auto contacts = query(net, peer);
      if (contacts) record_contacts(peer, *contacts, saw_internal);
    }
    ++batches;
  }
}

void DhtCrawler::start(sim::Network& net, const netcore::Endpoint& bootstrap) {
  // The bootstrap server is a DHT node like any other; crawl it first.
  dht::Contact boot{dht::NodeId160{}, bootstrap};
  enqueued_.insert(PeerKey{boot});
  frontier_.push_back(boot);
  (void)net;
}

std::size_t DhtCrawler::crawl_step(sim::Network& net,
                                   std::size_t peer_budget) {
  std::size_t processed = 0;
  while (processed < peer_budget && !frontier_.empty()) {
    dht::Contact peer = frontier_.front();
    frontier_.pop_front();
    process_peer(net, peer);
    ++processed;
  }
  g_frontier_size.set(static_cast<std::int64_t>(frontier_.size()));
  return processed;
}

std::size_t DhtCrawler::ping_step(sim::Network& net, std::size_t budget) {
  if (!config_.ping_learned) return 0;
  if (!ping_queue_built_) {
    ping_queue_ = data_.learned_contacts();
    ping_cursor_ = 0;
    ping_queue_built_ = true;
  }
  std::size_t issued = 0;
  while (issued < budget && ping_cursor_ < ping_queue_.size()) {
    const dht::Contact& peer = ping_queue_[ping_cursor_++];
    const bool pong = fault::retry_loop(config_.retry, retry_clock_, &rng_, [&] {
      std::uint64_t tx = next_tx_++;
      awaiting_tx_ = tx;
      pong_tx_.reset();
      sim::Packet pkt = sim::Packet::udp(local_, peer.endpoint);
      pkt.payload = dht::Message{dht::PingMsg{tx, id_}};
      ++stats_.pings_sent;
      g_pings_sent.inc();
      net.send(std::move(pkt), host_);
      awaiting_tx_ = 0;
      return pong_tx_.has_value();
    });
    if (pong) {
      g_pongs_received.inc();
      data_.note_ping_response(peer);
    }
    ++issued;
  }
  return issued;
}

DhtCrawler::PingShardOutcome DhtCrawler::ping_shard(
    sim::Network& net, std::span<const dht::Contact> contacts,
    std::size_t shard_id, sim::Clock* clock, sim::Rng* rng) {
  PingShardOutcome out;
  if (!config_.ping_learned) return out;
  PingCtx ctx;
  tls_ping_ctx_ = &ctx;
  // Tx ids live in the shard's own namespace, far above the serial
  // counter's range, so no two in-flight pings ever share an id.
  std::uint64_t k = 0;
  for (const dht::Contact& peer : contacts) {
    const bool pong = fault::retry_loop(config_.retry, clock, rng, [&] {
      const std::uint64_t tx = ((shard_id + 1) << 32) | ++k;
      ctx.awaiting = tx;
      ctx.got_pong = false;
      sim::Packet pkt = sim::Packet::udp(local_, peer.endpoint);
      pkt.payload = dht::Message{dht::PingMsg{tx, id_}};
      ++out.pings_sent;
      g_pings_sent.inc();
      net.send(std::move(pkt), host_);
      ctx.awaiting = 0;
      return ctx.got_pong;
    });
    if (pong) {
      ++out.pongs_received;
      g_pongs_received.inc();
      out.responders.push_back(peer);
    }
  }
  tls_ping_ctx_ = nullptr;
  return out;
}

void DhtCrawler::absorb_ping_outcomes(
    std::span<const PingShardOutcome> outcomes) {
  for (const PingShardOutcome& o : outcomes) {
    stats_.pings_sent += o.pings_sent;
    for (const dht::Contact& peer : o.responders)
      data_.note_ping_response(peer);
  }
}

}  // namespace cgn::crawler
