// The dataset a DHT crawl produces: queried/learned peers, bt_ping
// responders, and internal-address leak edges (paper §4.1, Tables 2-3).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/messages.hpp"
#include "netcore/ipv4.hpp"

namespace cgn::crawler {

/// Peer identity is the full (endpoint, nodeid) tuple — the paper's choice,
/// which also defuses DHT-poisoning bias.
struct PeerKey {
  dht::Contact contact;
  bool operator==(const PeerKey&) const = default;
};

struct PeerKeyHash {
  std::size_t operator()(const PeerKey& k) const noexcept {
    std::size_t h1 = std::hash<dht::NodeId160>{}(k.contact.id);
    std::size_t h2 = std::hash<netcore::Endpoint>{}(k.contact.endpoint);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  }
};

/// One observed leak: a peer (at its publicly observed endpoint) reported
/// contact information carrying a reserved-range address.
struct LeakEdge {
  dht::Contact leaker;    ///< the peer that answered find_nodes
  dht::Contact internal;  ///< the reserved-address contact it reported
};

class CrawlDataset {
 public:
  void note_learned(const dht::Contact& c) {
    if (learned_.insert(PeerKey{c}).second)
      learned_ips_.insert(c.endpoint.address);
  }
  void note_queried(const dht::Contact& c) {
    if (queried_.insert(PeerKey{c}).second)
      queried_ips_.insert(c.endpoint.address);
  }
  void note_ping_response(const dht::Contact& c) {
    if (responders_.insert(PeerKey{c}).second)
      responder_ips_.insert(c.endpoint.address);
  }
  void note_leak(const dht::Contact& leaker, const dht::Contact& internal) {
    leaks_.push_back(LeakEdge{leaker, internal});
  }

  [[nodiscard]] std::size_t learned_peers() const noexcept {
    return learned_.size();
  }
  [[nodiscard]] std::size_t learned_unique_ips() const noexcept {
    return learned_ips_.size();
  }
  [[nodiscard]] std::size_t queried_peers() const noexcept {
    return queried_.size();
  }
  [[nodiscard]] std::size_t queried_unique_ips() const noexcept {
    return queried_ips_.size();
  }
  [[nodiscard]] std::size_t responding_peers() const noexcept {
    return responders_.size();
  }
  [[nodiscard]] std::size_t responding_unique_ips() const noexcept {
    return responder_ips_.size();
  }
  [[nodiscard]] const std::vector<LeakEdge>& leaks() const noexcept {
    return leaks_;
  }
  [[nodiscard]] bool was_learned(const dht::Contact& c) const {
    return learned_.contains(PeerKey{c});
  }

  /// All learned contacts (for the bt_ping sweep).
  [[nodiscard]] std::vector<dht::Contact> learned_contacts() const {
    std::vector<dht::Contact> out;
    out.reserve(learned_.size());
    for (const auto& k : learned_) out.push_back(k.contact);
    return out;
  }

  /// All peers that answered at least one find_nodes query.
  [[nodiscard]] std::vector<dht::Contact> queried_contacts() const {
    std::vector<dht::Contact> out;
    out.reserve(queried_.size());
    for (const auto& k : queried_) out.push_back(k.contact);
    return out;
  }

  /// All peers that answered a bt_ping (for event-stream replay).
  [[nodiscard]] std::vector<dht::Contact> responding_contacts() const {
    std::vector<dht::Contact> out;
    out.reserve(responders_.size());
    for (const auto& k : responders_) out.push_back(k.contact);
    return out;
  }

 private:
  std::unordered_set<PeerKey, PeerKeyHash> learned_;
  std::unordered_set<PeerKey, PeerKeyHash> queried_;
  std::unordered_set<PeerKey, PeerKeyHash> responders_;
  std::unordered_set<netcore::Ipv4Address> learned_ips_;
  std::unordered_set<netcore::Ipv4Address> queried_ips_;
  std::unordered_set<netcore::Ipv4Address> responder_ips_;
  std::vector<LeakEdge> leaks_;
};

}  // namespace cgn::crawler
