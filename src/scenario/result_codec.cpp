#include "scenario/result_codec.hpp"

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>

namespace cgn::scenario::codec {

void put_endpoint(super::wire::Writer& w, const netcore::Endpoint& ep) {
  w.u32(ep.address.value());
  w.u16(ep.port);
}

netcore::Endpoint get_endpoint(super::wire::Reader& r) {
  const std::uint32_t address = r.u32();
  const std::uint16_t port = r.u16();
  return {netcore::Ipv4Address(address), port};
}

void put_session(super::wire::Writer& w, const netalyzr::SessionResult& s) {
  w.u32(s.asn);
  w.boolean(s.cellular);
  w.u8(static_cast<std::uint8_t>(s.line_mode));
  w.boolean(s.line_clat);
  w.u32(s.ip_dev.value());
  w.boolean(s.ip_cpe.has_value());
  if (s.ip_cpe) w.u32(s.ip_cpe->value());
  w.boolean(s.cpe_model.has_value());
  if (s.cpe_model) w.str(*s.cpe_model);
  w.boolean(s.ip_pub.has_value());
  if (s.ip_pub) w.u32(s.ip_pub->value());
  w.u32(static_cast<std::uint32_t>(s.tcp_flows.size()));
  for (const netalyzr::FlowObservation& f : s.tcp_flows) {
    w.u16(f.local_port);
    put_endpoint(w, f.observed);
  }
  w.boolean(s.stun.has_value());
  if (s.stun) {
    w.u8(static_cast<std::uint8_t>(s.stun->type));
    w.boolean(s.stun->mapped.has_value());
    if (s.stun->mapped) put_endpoint(w, *s.stun->mapped);
  }
  w.boolean(s.enumeration.has_value());
  if (s.enumeration) {
    w.u32(static_cast<std::uint32_t>(s.enumeration->path_hops));
    w.u32(static_cast<std::uint32_t>(s.enumeration->hops.size()));
    for (const netalyzr::NatHopObservation& h : s.enumeration->hops) {
      w.u32(static_cast<std::uint32_t>(h.hop));
      w.boolean(h.stateful);
      w.boolean(h.timeout_s.has_value());
      if (h.timeout_s) w.f64(*h.timeout_s);
    }
    w.u32(static_cast<std::uint32_t>(s.enumeration->experiments));
  }
  w.boolean(s.transition.has_value());
  if (s.transition) {
    w.boolean(s.transition->pref64_detected);
    w.u32(static_cast<std::uint32_t>(s.transition->pref64_length));
    w.boolean(s.transition->literal_v4_ok);
    w.boolean(s.transition->translator_timeout_s.has_value());
    if (s.transition->translator_timeout_s)
      w.f64(*s.transition->translator_timeout_s);
  }
}

netalyzr::SessionResult get_session(super::wire::Reader& r) {
  netalyzr::SessionResult s;
  s.asn = r.u32();
  s.cellular = r.boolean();
  s.line_mode = static_cast<nat::TranslatorMode>(r.u8());
  s.line_clat = r.boolean();
  s.ip_dev = netcore::Ipv4Address(r.u32());
  if (r.boolean()) s.ip_cpe = netcore::Ipv4Address(r.u32());
  if (r.boolean()) s.cpe_model = std::string(r.str());
  if (r.boolean()) s.ip_pub = netcore::Ipv4Address(r.u32());
  const std::uint32_t flows = r.u32();
  for (std::uint32_t i = 0; i < flows && r.ok(); ++i) {
    netalyzr::FlowObservation f;
    f.local_port = r.u16();
    f.observed = get_endpoint(r);
    s.tcp_flows.push_back(f);
  }
  if (r.boolean()) {
    stun::StunOutcome outcome;
    outcome.type = static_cast<stun::StunType>(r.u8());
    if (r.boolean()) outcome.mapped = get_endpoint(r);
    s.stun = outcome;
  }
  if (r.boolean()) {
    netalyzr::TtlEnumResult e;
    e.path_hops = static_cast<int>(r.u32());
    const std::uint32_t hops = r.u32();
    for (std::uint32_t i = 0; i < hops && r.ok(); ++i) {
      netalyzr::NatHopObservation h;
      h.hop = static_cast<int>(r.u32());
      h.stateful = r.boolean();
      if (r.boolean()) h.timeout_s = r.f64();
      e.hops.push_back(h);
    }
    e.experiments = static_cast<int>(r.u32());
    s.enumeration = std::move(e);
  }
  if (r.boolean()) {
    netalyzr::TransitionObservation t;
    t.pref64_detected = r.boolean();
    t.pref64_length = static_cast<int>(r.u32());
    t.literal_v4_ok = r.boolean();
    if (r.boolean()) t.translator_timeout_s = r.f64();
    s.transition = t;
  }
  return s;
}

void put_contact(super::wire::Writer& w, const dht::Contact& c) {
  w.raw(c.id.bytes().data(), c.id.bytes().size());
  put_endpoint(w, c.endpoint);
}

dht::Contact get_contact(super::wire::Reader& r) {
  dht::Contact c;
  std::string_view bytes = r.raw(dht::NodeId160::Bytes{}.size());
  if (bytes.size() == dht::NodeId160::Bytes{}.size()) {
    dht::NodeId160::Bytes id{};
    std::copy(bytes.begin(), bytes.end(), id.begin());
    c.id = dht::NodeId160(id);
  }
  c.endpoint = get_endpoint(r);
  return c;
}

}  // namespace cgn::scenario::codec
