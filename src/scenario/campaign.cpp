#include "scenario/campaign.hpp"

#include <algorithm>

#include "obs/profiler.hpp"

namespace cgn::scenario {

void run_bittorrent_phase(Internet& internet,
                          const BitTorrentPhaseConfig& config) {
  obs::ScopedPhase phase("campaign.bittorrent");
  sim::Rng rng = internet.fork_rng();
  const auto& peers = internet.bt_peers();
  if (peers.empty()) return;

  // Swarm membership: a couple of global swarms per peer plus, with some
  // probability, the peer's AS-local swarm (regional content).
  const std::size_t global_swarms =
      std::max<std::size_t>(1, peers.size() / config.peers_per_swarm);
  std::vector<std::vector<std::uint64_t>> memberships(peers.size());
  {
    // Peer -> ASN map for local swarm ids.
    std::unordered_map<const dht::DhtNode*, netcore::Asn> asn_of;
    for (const IspInstance& isp : internet.isps)
      for (const Subscriber& s : isp.subscribers)
        if (s.bt_client) asn_of[s.bt_client] = isp.asn;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (int k = 0; k < config.swarms_per_peer; ++k)
        memberships[i].push_back(rng.uniform(1, global_swarms));
      if (rng.chance(config.local_swarm_join))
        memberships[i].push_back(1'000'000'000ull + asn_of[peers[i]]);
    }
  }

  // Bootstrap everyone into the DHT.
  {
    obs::ScopedPhase bootstrap("bootstrap");
    for (dht::DhtNode* peer : peers)
      peer->bootstrap(internet.net, internet.servers.bootstrap_endpoint);
    internet.clock.advance(config.round_interval_s);
  }

  // Interleave tracker announces and DHT maintenance.
  obs::ScopedPhase rounds("rounds");
  for (int round = 0; round < config.maintenance_rounds; ++round) {
    if (round < config.announce_rounds) {
      for (std::size_t i = 0; i < peers.size(); ++i)
        for (std::uint64_t swarm : memberships[i])
          peers[i]->announce(internet.net,
                             internet.servers.tracker->endpoint(), swarm);
    }
    for (dht::DhtNode* peer : peers) peer->run_maintenance(internet.net);
    internet.clock.advance(config.round_interval_s);
  }
}

std::unique_ptr<crawler::DhtCrawler> run_crawl_phase(
    Internet& internet, const CrawlPhaseConfig& config) {
  obs::ScopedPhase phase("campaign.crawl");
  auto crawler = std::make_unique<crawler::DhtCrawler>(
      internet.servers.crawler_host, internet.servers.crawler_endpoint,
      config.crawl, internet.fork_rng());
  crawler->install(internet.net);
  crawler->start(internet.net, internet.servers.bootstrap_endpoint);

  {
    obs::ScopedPhase walk("walk");
    std::size_t crawled = 0;
    while (!crawler->frontier_empty() && crawled < config.max_peers) {
      crawled += crawler->crawl_step(internet.net, config.peers_per_step);
      if (config.step_interval_s > 0)
        internet.clock.advance(config.step_interval_s);
    }
  }
  // bt_ping sweep over everything we learned (Table 2 responder counts).
  obs::ScopedPhase sweep("ping_sweep");
  while (crawler->ping_step(internet.net, 10'000) > 0) {
  }
  return crawler;
}

std::vector<netalyzr::SessionResult> run_netalyzr_campaign(
    Internet& internet, const NetalyzrCampaignConfig& config) {
  obs::ScopedPhase phase("campaign.netalyzr");
  sim::Rng rng = internet.fork_rng();
  std::vector<netalyzr::SessionResult> results;

  for (IspInstance& isp : internet.isps) {
    if (isp.nz_session_target == 0) continue;
    // Sessions come from distinct subscribers where possible.
    std::vector<std::size_t> order(isp.subscribers.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    for (std::size_t k = 0; k < isp.nz_session_target; ++k) {
      Subscriber& sub = isp.subscribers[order[k % order.size()]];
      netalyzr::ClientContext ctx;
      ctx.host = sub.device;
      ctx.device_address = sub.device_address;
      ctx.asn = isp.asn;
      ctx.cellular = isp.cellular;
      ctx.upnp_cpe = sub.cpe_upnp ? sub.cpe : nullptr;

      netalyzr::NetalyzrClient client(ctx, *sub.demux, rng.fork());
      netalyzr::SessionResult session =
          client.run_basic(internet.net, *internet.servers.netalyzr);
      if (rng.chance(config.stun_fraction))
        client.run_stun(internet.net, *internet.servers.stun, session);
      if (rng.chance(config.enum_fraction))
        client.run_enumeration(internet.net, internet.clock,
                               *internet.servers.netalyzr, config.enum_config,
                               session);
      results.push_back(std::move(session));
      internet.clock.advance(config.inter_session_gap_s);
    }
    // Trim the ISP's NAT state between ASes to bound memory.
    if (isp.cgn) isp.cgn->collect_garbage(internet.clock.now());
  }
  return results;
}

}  // namespace cgn::scenario
