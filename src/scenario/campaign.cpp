#include "scenario/campaign.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/profiler.hpp"
#include "par/thread_pool.hpp"

namespace cgn::scenario {

void run_bittorrent_phase(Internet& internet,
                          const BitTorrentPhaseConfig& config) {
  obs::ScopedPhase phase("campaign.bittorrent");
  sim::Rng rng = internet.fork_rng();
  const auto& peers = internet.bt_peers();
  if (peers.empty()) return;

  // Swarm membership: a couple of global swarms per peer plus, with some
  // probability, the peer's AS-local swarm (regional content).
  const std::size_t global_swarms =
      std::max<std::size_t>(1, peers.size() / config.peers_per_swarm);
  std::vector<std::vector<std::uint64_t>> memberships(peers.size());
  {
    // Peer -> ASN map for local swarm ids.
    std::unordered_map<const dht::DhtNode*, netcore::Asn> asn_of;
    for (const IspInstance& isp : internet.isps)
      for (const Subscriber& s : isp.subscribers)
        if (s.bt_client) asn_of[s.bt_client] = isp.asn;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (int k = 0; k < config.swarms_per_peer; ++k)
        memberships[i].push_back(rng.uniform(1, global_swarms));
      if (rng.chance(config.local_swarm_join))
        memberships[i].push_back(1'000'000'000ull + asn_of[peers[i]]);
    }
  }

  // Bootstrap everyone into the DHT.
  {
    obs::ScopedPhase bootstrap("bootstrap");
    for (dht::DhtNode* peer : peers)
      peer->bootstrap(internet.net, internet.servers.bootstrap_endpoint);
    internet.clock.advance(config.round_interval_s);
  }

  // Interleave tracker announces and DHT maintenance.
  obs::ScopedPhase rounds("rounds");
  for (int round = 0; round < config.maintenance_rounds; ++round) {
    if (round < config.announce_rounds) {
      for (std::size_t i = 0; i < peers.size(); ++i)
        for (std::uint64_t swarm : memberships[i])
          peers[i]->announce(internet.net,
                             internet.servers.tracker->endpoint(), swarm);
    }
    for (dht::DhtNode* peer : peers) peer->run_maintenance(internet.net);
    internet.clock.advance(config.round_interval_s);
  }
}

std::unique_ptr<crawler::DhtCrawler> run_crawl_phase(
    Internet& internet, const CrawlPhaseConfig& config) {
  obs::ScopedPhase phase("campaign.crawl");
  auto crawler = std::make_unique<crawler::DhtCrawler>(
      internet.servers.crawler_host, internet.servers.crawler_endpoint,
      config.crawl, internet.fork_rng());
  crawler->install(internet.net);
  // The serial walk retries against the world clock; the sweep shards pass
  // their private clocks to ping_shard instead.
  crawler->set_retry_clock(&internet.clock);
  crawler->start(internet.net, internet.servers.bootstrap_endpoint);

  {
    obs::ScopedPhase walk("walk");
    std::size_t crawled = 0;
    while (!crawler->frontier_empty() && crawled < config.max_peers) {
      crawled += crawler->crawl_step(internet.net, config.peers_per_step);
      if (config.step_interval_s > 0)
        internet.clock.advance(config.step_interval_s);
    }
  }
  // bt_ping sweep over everything we learned (Table 2 responder counts),
  // sharded by the destination's root routing subtree: every NAT a probe
  // (or its pong) can touch lives inside that subtree, so shards mutate
  // disjoint simulation state. Unrouted/reserved destinations group under
  // kNoNode. The grouping keys off topology — never the worker count — so
  // the decomposition (and with it the dataset) is thread-count invariant;
  // ping responses land in sets, so merge order cannot matter either.
  obs::ScopedPhase sweep("ping_sweep");
  const std::vector<dht::Contact> contacts =
      crawler->dataset().learned_contacts();
  std::vector<std::vector<dht::Contact>> shards;
  std::unordered_map<sim::NodeId, std::size_t> shard_of;
  for (const dht::Contact& c : contacts) {
    auto [it, inserted] =
        shard_of.try_emplace(internet.net.top_route(c.endpoint.address),
                             shards.size());
    if (inserted) shards.emplace_back();
    shards[it->second].push_back(c);
  }
  std::vector<crawler::DhtCrawler::PingShardOutcome> outcomes(shards.size());
  const sim::SimTime sweep_t0 = internet.clock.now();
  std::vector<sim::SimTime> sweep_end(shards.size(), sweep_t0);
  par::run_shards(
      shards.size(),
      [&](std::size_t s) {
        // Shards probe concurrently on private timelines (retry backoff
        // costs virtual time) and draw fault/jitter decisions from
        // shard-keyed substreams — all functions of what the shard is,
        // never of which worker runs it.
        sim::Clock clock;
        clock.set(sweep_t0);
        sim::ThreadClockScope clock_scope(clock);
        fault::StreamScope fault_scope(internet.faults.get(),
                                       fault::kSaltPingSweep, s);
        sim::Rng jitter =
            internet.faults->substream(fault::kSaltRetryJitter, s);
        outcomes[s] = crawler->ping_shard(internet.net, shards[s], s, &clock,
                                          &jitter);
        sweep_end[s] = clock.now();
      },
      config.threads);
  crawler->absorb_ping_outcomes(outcomes);
  sim::SimTime sweep_done = sweep_t0;
  for (sim::SimTime t : sweep_end) sweep_done = std::max(sweep_done, t);
  internet.clock.set(sweep_done);
  return crawler;
}

std::vector<netalyzr::SessionResult> run_netalyzr_campaign(
    Internet& internet, const NetalyzrCampaignConfig& config) {
  obs::ScopedPhase phase("campaign.netalyzr");
  // One fork keeps the Internet's RNG sequence aligned with earlier
  // drivers; its first output seeds every shard substream.
  const std::uint64_t campaign_seed = internet.fork_rng().engine()();

  // Shard = one ISP with sessions to run: an ISP's subscribers, CPE NATs
  // and CGN are confined to its own subtree, so shards mutate disjoint
  // simulation state (the shared Netalyzr/STUN servers are internally
  // synchronized or stateless). The decomposition keys off topology —
  // never the worker count — and each shard derives its RNG substream from
  // (campaign_seed, shard index) and runs on its own clock, so any worker
  // count produces bit-identical sessions.
  std::vector<IspInstance*> shard_isps;
  for (IspInstance& isp : internet.isps)
    if (isp.nz_session_target > 0) shard_isps.push_back(&isp);

  const sim::SimTime t0 = internet.clock.now();
  std::vector<std::vector<netalyzr::SessionResult>> shard_results(
      shard_isps.size());
  std::vector<sim::SimTime> shard_end(shard_isps.size(), t0);

  par::run_shards(
      shard_isps.size(),
      [&](std::size_t s) {
        IspInstance& isp = *shard_isps[s];
        sim::Rng rng = sim::Rng::fork(campaign_seed, s);
        // Per-ISP vantage points measure concurrently, so each shard
        // advances a private timeline; the override makes the network
        // stamp this worker's packets from it.
        sim::Clock clock;
        clock.set(t0);
        sim::ThreadClockScope clock_scope(clock);
        fault::StreamScope fault_scope(internet.faults.get(),
                                       fault::kSaltNetalyzr, s);

        // Sessions come from distinct subscribers where possible.
        std::vector<std::size_t> order(isp.subscribers.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.shuffle(order);

        std::vector<netalyzr::SessionResult>& results = shard_results[s];
        for (std::size_t k = 0; k < isp.nz_session_target; ++k) {
          Subscriber& sub = isp.subscribers[order[k % order.size()]];
          netalyzr::ClientContext ctx;
          ctx.host = sub.device;
          ctx.device_address = sub.device_address;
          ctx.asn = isp.asn;
          ctx.cellular = isp.cellular;
          ctx.upnp_cpe = sub.cpe_upnp ? sub.cpe : nullptr;

          netalyzr::NetalyzrClient client(ctx, *sub.demux, rng.fork(),
                                          config.retry);
          netalyzr::SessionResult session = client.run_basic(
              internet.net, *internet.servers.netalyzr, &clock);
          if (rng.chance(config.stun_fraction))
            client.run_stun(internet.net, *internet.servers.stun, session);
          if (rng.chance(config.enum_fraction))
            client.run_enumeration(internet.net, clock,
                                   *internet.servers.netalyzr,
                                   config.enum_config, session);
          results.push_back(std::move(session));
          clock.advance(config.inter_session_gap_s);
        }
        // Trim the ISP's NAT state to bound memory.
        if (isp.cgn) isp.cgn->collect_garbage(clock.now());
        shard_end[s] = clock.now();
      },
      config.threads);

  // Vantage points ran concurrently: the campaign took as long as its
  // longest shard.
  sim::SimTime end = t0;
  for (sim::SimTime t : shard_end) end = std::max(end, t);
  internet.clock.set(end);

  // Merge in shard (ISP) order — the same order the serial loop visited.
  std::vector<netalyzr::SessionResult> results;
  for (auto& shard : shard_results)
    for (auto& session : shard) results.push_back(std::move(session));
  return results;
}

}  // namespace cgn::scenario
