#include "scenario/campaign.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "obs/profiler.hpp"
#include "scenario/result_codec.hpp"
#include "super/wire.hpp"

namespace cgn::scenario {

namespace {

// --- Checkpoint payload codecs ---------------------------------------------
//
// Shard payloads round-trip *every* field of the shard's results plus its
// end-of-shard virtual time (the campaign clock advances to the latest
// shard end, so a resumed run must restore it exactly). The per-struct
// codecs live in scenario/result_codec.{hpp,cpp} and are shared with the
// observatory's push-ingestion wire protocol — see DESIGN.md §11. Bump the
// payload version constants when a struct there changes shape.

constexpr std::uint64_t kNetalyzrPayloadVersion = 2;  // v2: +transition
constexpr std::uint64_t kPingPayloadVersion = 1;

using codec::get_contact;
using codec::get_session;
using codec::put_contact;
using codec::put_session;

/// Fills driver-owned identity fields of a caller-supplied supervision
/// config: the checkpoint key must bind to *this* world and plan no matter
/// what the caller left in the struct.
super::SupervisorConfig stamped(super::SupervisorConfig cfg,
                                const Internet& internet,
                                std::string kind, std::uint64_t salt,
                                std::uint64_t payload_version) {
  cfg.campaign_kind = std::move(kind);
  cfg.world_seed = internet.config.seed;
  cfg.plan_hash = internet.faults->plan().hash();
  cfg.payload_version = payload_version;
  cfg.faults = internet.faults.get();
  cfg.salt = salt;
  return cfg;
}

}  // namespace

void run_bittorrent_phase(Internet& internet,
                          const BitTorrentPhaseConfig& config) {
  obs::ScopedPhase phase("campaign.bittorrent");
  sim::Rng rng = internet.fork_rng();
  const auto& peers = internet.bt_peers();
  if (peers.empty()) return;

  // Swarm membership: a couple of global swarms per peer plus, with some
  // probability, the peer's AS-local swarm (regional content).
  const std::size_t global_swarms =
      std::max<std::size_t>(1, peers.size() / config.peers_per_swarm);
  std::vector<std::vector<std::uint64_t>> memberships(peers.size());
  {
    // Peer -> ASN map for local swarm ids.
    std::unordered_map<const dht::DhtNode*, netcore::Asn> asn_of;
    for (const IspInstance& isp : internet.isps)
      for (const Subscriber& s : isp.subscribers)
        if (s.bt_client) asn_of[s.bt_client] = isp.asn;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (int k = 0; k < config.swarms_per_peer; ++k)
        memberships[i].push_back(rng.uniform(1, global_swarms));
      if (rng.chance(config.local_swarm_join))
        memberships[i].push_back(1'000'000'000ull + asn_of[peers[i]]);
    }
  }

  // Bootstrap everyone into the DHT.
  {
    obs::ScopedPhase bootstrap("bootstrap");
    for (dht::DhtNode* peer : peers)
      peer->bootstrap(internet.net, internet.servers.bootstrap_endpoint);
    internet.clock.advance(config.round_interval_s);
  }

  // Interleave tracker announces and DHT maintenance.
  obs::ScopedPhase rounds("rounds");
  for (int round = 0; round < config.maintenance_rounds; ++round) {
    if (round < config.announce_rounds) {
      for (std::size_t i = 0; i < peers.size(); ++i)
        for (std::uint64_t swarm : memberships[i])
          peers[i]->announce(internet.net,
                             internet.servers.tracker->endpoint(), swarm);
    }
    for (dht::DhtNode* peer : peers) peer->run_maintenance(internet.net);
    internet.clock.advance(config.round_interval_s);
  }
}

std::unique_ptr<crawler::DhtCrawler> run_crawl_phase(
    Internet& internet, const CrawlPhaseConfig& config,
    super::CampaignReport* report_out) {
  obs::ScopedPhase phase("campaign.crawl");
  auto crawler = std::make_unique<crawler::DhtCrawler>(
      internet.servers.crawler_host, internet.servers.crawler_endpoint,
      config.crawl, internet.fork_rng());
  crawler->install(internet.net);
  // The serial walk retries against the world clock; the sweep shards pass
  // their private clocks to ping_shard instead.
  crawler->set_retry_clock(&internet.clock);
  crawler->start(internet.net, internet.servers.bootstrap_endpoint);

  {
    obs::ScopedPhase walk("walk");
    std::size_t crawled = 0;
    while (!crawler->frontier_empty() && crawled < config.max_peers) {
      crawled += crawler->crawl_step(internet.net, config.peers_per_step);
      if (config.step_interval_s > 0)
        internet.clock.advance(config.step_interval_s);
    }
  }
  // bt_ping sweep over everything we learned (Table 2 responder counts),
  // sharded by the destination's root routing subtree: every NAT a probe
  // (or its pong) can touch lives inside that subtree, so shards mutate
  // disjoint simulation state. Unrouted/reserved destinations group under
  // kNoNode. The grouping keys off topology — never the worker count — so
  // the decomposition (and with it the dataset) is thread-count invariant;
  // ping responses land in sets, so merge order cannot matter either.
  obs::ScopedPhase sweep("ping_sweep");
  const std::vector<dht::Contact> contacts =
      crawler->dataset().learned_contacts();
  std::vector<std::vector<dht::Contact>> shards;
  std::unordered_map<sim::NodeId, std::size_t> shard_of;
  for (const dht::Contact& c : contacts) {
    auto [it, inserted] =
        shard_of.try_emplace(internet.net.top_route(c.endpoint.address),
                             shards.size());
    if (inserted) shards.emplace_back();
    shards[it->second].push_back(c);
  }
  std::vector<crawler::DhtCrawler::PingShardOutcome> outcomes(shards.size());
  const sim::SimTime sweep_t0 = internet.clock.now();
  std::vector<sim::SimTime> sweep_end(shards.size(), sweep_t0);

  super::ShardCodec codec;
  codec.encode = [&](std::size_t s) {
    super::wire::Writer w;
    w.f64(sweep_end[s]);
    const auto& outcome = outcomes[s];
    w.u32(static_cast<std::uint32_t>(outcome.responders.size()));
    for (const dht::Contact& c : outcome.responders) put_contact(w, c);
    w.u64(outcome.pings_sent);
    w.u64(outcome.pongs_received);
    return w.take();
  };
  codec.decode = [&](std::size_t s, std::string_view payload) {
    super::wire::Reader r(payload);
    const sim::SimTime end = r.f64();
    crawler::DhtCrawler::PingShardOutcome outcome;
    const std::uint32_t responders = r.u32();
    for (std::uint32_t i = 0; i < responders && r.ok(); ++i)
      outcome.responders.push_back(get_contact(r));
    outcome.pings_sent = r.u64();
    outcome.pongs_received = r.u64();
    if (!r.done()) return false;
    sweep_end[s] = end;
    outcomes[s] = std::move(outcome);
    return true;
  };

  super::ShardSupervisor supervisor(stamped(config.supervise, internet,
                                            "crawl_ping", fault::kSaltPingSweep,
                                            kPingPayloadVersion));
  super::CampaignReport report = supervisor.run(
      shards.size(),
      [&](std::size_t s) {
        // Shards probe concurrently on private timelines (retry backoff
        // costs virtual time) and draw fault/jitter decisions from
        // shard-keyed substreams — all functions of what the shard is,
        // never of which worker runs it. A retry starts from a clean
        // outcome, replaying the same substreams bit-identically.
        outcomes[s] = {};
        sweep_end[s] = sweep_t0;
        sim::Clock clock;
        clock.set(sweep_t0);
        sim::ThreadClockScope clock_scope(clock);
        fault::StreamScope fault_scope(internet.faults.get(),
                                       fault::kSaltPingSweep, s);
        sim::Rng jitter =
            internet.faults->substream(fault::kSaltRetryJitter, s);
        outcomes[s] = crawler->ping_shard(internet.net, shards[s], s, &clock,
                                          &jitter);
        sweep_end[s] = clock.now();
      },
      &codec, config.threads);

  // Quarantined/aborted shards contribute nothing: the dataset degrades to
  // the finished shards' coverage instead of the sweep dying outright.
  for (std::size_t s = 0; s < report.shards.size(); ++s)
    if (!report.shards[s].finished()) {
      outcomes[s] = {};
      sweep_end[s] = sweep_t0;
    }
  crawler->absorb_ping_outcomes(outcomes);
  sim::SimTime sweep_done = sweep_t0;
  for (sim::SimTime t : sweep_end) sweep_done = std::max(sweep_done, t);
  internet.clock.set(sweep_done);
  if (report_out != nullptr) *report_out = std::move(report);
  return crawler;
}

std::vector<netalyzr::SessionResult> run_netalyzr_campaign(
    Internet& internet, const NetalyzrCampaignConfig& config,
    super::CampaignReport* report_out) {
  obs::ScopedPhase phase("campaign.netalyzr");
  // One fork keeps the Internet's RNG sequence aligned with earlier
  // drivers; its first output seeds every shard substream.
  const std::uint64_t campaign_seed = internet.fork_rng().engine()();

  // Shard = one ISP with sessions to run: an ISP's subscribers, CPE NATs
  // and CGN are confined to its own subtree, so shards mutate disjoint
  // simulation state (the shared Netalyzr/STUN servers are internally
  // synchronized or stateless). The decomposition keys off topology —
  // never the worker count — and each shard derives its RNG substream from
  // (campaign_seed, shard index) and runs on its own clock, so any worker
  // count produces bit-identical sessions.
  std::vector<IspInstance*> shard_isps;
  for (IspInstance& isp : internet.isps)
    if (isp.nz_session_target > 0) shard_isps.push_back(&isp);

  const sim::SimTime t0 = internet.clock.now();
  std::vector<std::vector<netalyzr::SessionResult>> shard_results(
      shard_isps.size());
  std::vector<sim::SimTime> shard_end(shard_isps.size(), t0);

  super::ShardCodec codec;
  codec.encode = [&](std::size_t s) {
    super::wire::Writer w;
    w.f64(shard_end[s]);
    w.u32(static_cast<std::uint32_t>(shard_results[s].size()));
    for (const netalyzr::SessionResult& session : shard_results[s])
      put_session(w, session);
    return w.take();
  };
  codec.decode = [&](std::size_t s, std::string_view payload) {
    super::wire::Reader r(payload);
    const sim::SimTime end = r.f64();
    std::vector<netalyzr::SessionResult> sessions;
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i)
      sessions.push_back(get_session(r));
    if (!r.done()) return false;
    shard_end[s] = end;
    shard_results[s] = std::move(sessions);
    return true;
  };

  // Lazy worlds: build the touched lines up front, serially. Each shard's
  // session set is a pure function of its own stateless substream, so the
  // pre-pass re-derives fork(campaign_seed, s) and replays the worker's
  // shuffle without perturbing any worker draw; workers then run
  // construction-free (materialization mutates shared builder state and
  // must not race).
  if (internet.lazy()) {
    for (std::size_t s = 0; s < shard_isps.size(); ++s) {
      IspInstance& isp = *shard_isps[s];
      sim::Rng rng = sim::Rng::fork(campaign_seed, s);
      std::vector<std::size_t> order(isp.subscribers.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.shuffle(order);
      const std::size_t touched =
          std::min(isp.nz_session_target, order.size());
      for (std::size_t k = 0; k < touched; ++k)
        internet.ensure_line(isp, order[k]);
    }
  }

  super::ShardSupervisor supervisor(
      stamped(config.supervise, internet, "netalyzr", fault::kSaltNetalyzr,
              kNetalyzrPayloadVersion));
  super::CampaignReport report = supervisor.run(
      shard_isps.size(),
      [&](std::size_t s) {
        // A retry replays the shard from scratch: same substreams, same
        // rebased clock, empty result vector.
        shard_results[s].clear();
        shard_end[s] = t0;
        IspInstance& isp = *shard_isps[s];
        sim::Rng rng = sim::Rng::fork(campaign_seed, s);
        // Per-ISP vantage points measure concurrently, so each shard
        // advances a private timeline; the override makes the network
        // stamp this worker's packets from it.
        sim::Clock clock;
        clock.set(t0);
        sim::ThreadClockScope clock_scope(clock);
        fault::StreamScope fault_scope(internet.faults.get(),
                                       fault::kSaltNetalyzr, s);

        // Sessions come from distinct subscribers where possible.
        std::vector<std::size_t> order(isp.subscribers.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        rng.shuffle(order);

        std::vector<netalyzr::SessionResult>& results = shard_results[s];
        for (std::size_t k = 0; k < isp.nz_session_target; ++k) {
          Subscriber& sub = isp.subscribers[order[k % order.size()]];
          netalyzr::ClientContext ctx;
          ctx.host = sub.device;
          ctx.device_address = sub.device_address;
          ctx.asn = isp.asn;
          ctx.cellular = isp.cellular;
          ctx.upnp_cpe = sub.cpe_upnp ? sub.cpe : nullptr;
          // v6 lines: NAT64/464XLAT clients use the carrier's DNS64; bare
          // v6-only lines additionally resolve through their host stack.
          if (sub.v6_mode == nat::TranslatorMode::nat64) {
            ctx.dns64 = isp.dns64;
            ctx.v6stack = sub.v6stack;
          }

          netalyzr::NetalyzrClient client(ctx, *sub.demux, rng.fork(),
                                          config.retry);
          netalyzr::SessionResult session = client.run_basic(
              internet.net, *internet.servers.netalyzr, &clock);
          session.line_mode = sub.v6_mode;
          session.line_clat = sub.has_clat;
          if (rng.chance(config.stun_fraction))
            client.run_stun(internet.net, *internet.servers.stun, session);
          if (rng.chance(config.enum_fraction))
            client.run_enumeration(internet.net, clock,
                                   *internet.servers.netalyzr,
                                   config.enum_config, session);
          if (config.transition_battery)
            client.run_transition(internet.net, clock,
                                  *internet.servers.netalyzr,
                                  config.transition_config, session);
          results.push_back(std::move(session));
          clock.advance(config.inter_session_gap_s);
        }
        // Trim the ISP's NAT state to bound memory.
        if (isp.cgn) isp.cgn->collect_garbage(clock.now());
        shard_end[s] = clock.now();
      },
      &codec, config.threads);

  // Quarantined/aborted shards contribute no sessions — degraded coverage,
  // reported through `report_out` and analysis::MeasurementCoverage.
  for (std::size_t s = 0; s < report.shards.size(); ++s)
    if (!report.shards[s].finished()) {
      shard_results[s].clear();
      shard_end[s] = t0;
    }

  // Vantage points ran concurrently: the campaign took as long as its
  // longest shard.
  sim::SimTime end = t0;
  for (sim::SimTime t : shard_end) end = std::max(end, t);
  internet.clock.set(end);
  if (report_out != nullptr) *report_out = std::move(report);

  // Merge in shard (ISP) order — the same order the serial loop visited.
  std::vector<netalyzr::SessionResult> results;
  for (auto& shard : shard_results)
    for (auto& session : shard) results.push_back(std::move(session));
  return results;
}

}  // namespace cgn::scenario
