// Shared wire codecs for campaign result structs.
//
// Checkpoint records (scenario/campaign.cpp) and the observatory's push
// ingestion frames (observatory/ingest.cpp) must serialize the exact same
// structs — SessionResult, dht::Contact, netcore::Endpoint — and must
// round-trip them *exactly*: a resumed campaign or a push-fed observatory
// has to reproduce byte-identical figures. Keeping one codec per struct
// here makes that a structural property instead of two parallel encoders
// drifting apart. Fixed-width little-endian via super::wire; decoders are
// bounds-checked and never throw — a truncated or corrupt payload flips
// the Reader's ok() and the caller validates once at the end.
//
// Bump the payload-version constants next to the *users* of these codecs
// (campaign checkpoint versions, the ingest protocol version) when a
// struct here changes shape.
#pragma once

#include "dht/messages.hpp"
#include "netalyzr/session.hpp"
#include "super/wire.hpp"

namespace cgn::scenario::codec {

void put_endpoint(super::wire::Writer& w, const netcore::Endpoint& ep);
[[nodiscard]] netcore::Endpoint get_endpoint(super::wire::Reader& r);

void put_session(super::wire::Writer& w, const netalyzr::SessionResult& s);
[[nodiscard]] netalyzr::SessionResult get_session(super::wire::Reader& r);

void put_contact(super::wire::Writer& w, const dht::Contact& c);
[[nodiscard]] dht::Contact get_contact(super::wire::Reader& r);

}  // namespace cgn::scenario::codec
