// Dynamic-addressing churn: periodically renumber subscribers' public
// addresses, as residential ISPs do with DHCP/PPPoE leases.
//
// This is the confounder the paper's 5x5 cluster rule exists for: "a home
// network with internal NAT deployment that changes its public IP address"
// makes one household's leaks appear under several public addresses —
// a small fake "pool". Renumbering lets the ablation bench demonstrate
// that low detection thresholds really do produce false positives, and
// that the paper's choice suppresses them.
#pragma once

#include <cstdint>

#include "scenario/internet.hpp"

namespace cgn::scenario {

struct ChurnConfig {
  /// Fraction of non-CGN subscriber lines renumbered per event.
  double renumber_fraction = 0.30;
  /// Number of renumbering events to apply.
  int events = 3;
};

struct ChurnStats {
  std::size_t lines_renumbered = 0;
  std::size_t events_applied = 0;
};

/// Renumbers a sample of public (non-CGN) subscriber lines: each affected
/// CPE gets a fresh public address from its ISP's pool; the old address is
/// deregistered from the core and the new one announced. Existing NAT
/// mappings keep their old external address and die with it — exactly the
/// mess real renumbering causes. Call between swarm rounds or crawl steps.
ChurnStats apply_renumbering_event(Internet& internet,
                                   const ChurnConfig& config = {});

}  // namespace cgn::scenario
