// Environment-driven run configuration shared by the bench binaries and
// the cgn::observatory daemon: the scaled world, the impairment scenario,
// the supervision policy and the probe retransmission policy all come from
// the same CGN_* knobs, so "the daemon streams the same campaign the bench
// ran" is a matter of sharing a shell environment, not of duplicating
// parsing code. Knob semantics are documented in README.md.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::scenario {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::uint64_t>(std::atoll(v)) : fallback;
}

/// The impairment scenario, from the environment. All-zero defaults give
/// the inactive plan (clean runs identical to a no-fault build).
/// CGN_FAULT_LOSS / CGN_FAULT_DUP are per-hop / per-delivery rates;
/// CGN_FAULT_UNRESP the deaf-BT-peer fraction; CGN_FAULT_RESTART_S and the
/// CGN_FAULT_PRESSURE_* knobs drive the CGN device faults;
/// CGN_FAULT_SHARD_CRASH kills campaign shard attempts (see cgn::super).
inline fault::FaultPlan fault_plan_from_env() {
  fault::FaultPlan plan;
  plan.seed = env_u64("CGN_FAULT_SEED", plan.seed);
  plan.link.loss_rate = env_double("CGN_FAULT_LOSS", 0.0);
  plan.link.duplication_rate = env_double("CGN_FAULT_DUP", 0.0);
  plan.peers.unresponsive_fraction = env_double("CGN_FAULT_UNRESP", 0.0);
  plan.nat.restart_period_s = env_double("CGN_FAULT_RESTART_S", 0.0);
  plan.nat.pressure_period_s = env_double("CGN_FAULT_PRESSURE_S", 0.0);
  plan.nat.pressure_duration_s = env_double("CGN_FAULT_PRESSURE_DUR_S", 0.0);
  plan.nat.pressure_reserve_fraction =
      env_double("CGN_FAULT_PRESSURE_RESERVE", 0.0);
  plan.shards.crash_rate = env_double("CGN_FAULT_SHARD_CRASH", 0.0);
  return plan;
}

/// Campaign supervision policy, from the environment. Defaults preserve
/// historical behaviour (single attempt, quarantine on, no deadlines, no
/// checkpointing). CGN_SUPER_ATTEMPTS sets the per-shard budget;
/// CGN_SUPER_SHARD_DEADLINE_S / CGN_SUPER_CAMPAIGN_DEADLINE_S the watchdog
/// budgets; CGN_SUPER_CHECKPOINT_DIR enables checkpoint/resume (one
/// `<kind>.ckpt` file per campaign in that directory).
inline super::SupervisorConfig supervisor_config_from_env(
    const std::string& kind) {
  super::SupervisorConfig cfg;
  cfg.max_attempts = static_cast<int>(env_u64("CGN_SUPER_ATTEMPTS", 1));
  cfg.shard_deadline_s = env_double("CGN_SUPER_SHARD_DEADLINE_S", 0.0);
  cfg.campaign_deadline_s = env_double("CGN_SUPER_CAMPAIGN_DEADLINE_S", 0.0);
  const char* dir = std::getenv("CGN_SUPER_CHECKPOINT_DIR");
  if (dir && *dir) {
    // CheckpointWriter::open cannot create directories; make the drill
    // (point the env at a scratch dir, kill, rerun) just work.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    cfg.checkpoint_path = std::string(dir) + "/" + kind + ".ckpt";
  }
  return cfg;
}

/// Probe retransmission policy, from the environment. The default
/// (CGN_RETRY_ATTEMPTS=1) is the original fire-once behaviour.
inline fault::RetryPolicy retry_policy_from_env() {
  fault::RetryPolicy retry;
  retry.attempts = static_cast<int>(env_u64("CGN_RETRY_ATTEMPTS", 1));
  retry.base_backoff_s = env_double("CGN_RETRY_BACKOFF_S", 1.0);
  retry.backoff_factor = env_double("CGN_RETRY_FACTOR", 2.0);
  retry.jitter_fraction = env_double("CGN_RETRY_JITTER", 0.0);
  return retry;
}

/// The IPv6-transition scenario, from the environment. CGN_V6_TRANSITION=1
/// enables the v6 world (default off: v4-only, figures byte-identical to a
/// pre-v6 build); the CGN_V6_* fractions tune the per-AS mechanism mix,
/// the per-line CLAT share and the Well-Known-Prefix probability. All v6
/// code paths read these knobs through this function — never getenv.
inline V6ScenarioConfig v6_config_from_env() {
  V6ScenarioConfig v6;
  v6.enabled = env_u64("CGN_V6_TRANSITION", 0) != 0;
  v6.cellular_nat64_fraction =
      env_double("CGN_V6_CELL_NAT64", v6.cellular_nat64_fraction);
  v6.cellular_dslite_fraction =
      env_double("CGN_V6_CELL_DSLITE", v6.cellular_dslite_fraction);
  v6.fixed_nat64_fraction =
      env_double("CGN_V6_FIXED_NAT64", v6.fixed_nat64_fraction);
  v6.fixed_dslite_fraction =
      env_double("CGN_V6_FIXED_DSLITE", v6.fixed_dslite_fraction);
  v6.cellular_clat_fraction =
      env_double("CGN_V6_CELL_CLAT", v6.cellular_clat_fraction);
  v6.fixed_clat_fraction =
      env_double("CGN_V6_FIXED_CLAT", v6.fixed_clat_fraction);
  v6.well_known_pref64_fraction =
      env_double("CGN_V6_WKP64", v6.well_known_pref64_fraction);
  return v6;
}

/// The calibrated world, scaled. Scale 1.0 is a 1:8 model of the paper's
/// Internet (6,500 routed ASes, 360 PBL eyeballs, ...).
inline InternetConfig scaled_config() {
  double scale = env_double("CGN_BENCH_SCALE", 0.4);
  InternetConfig cfg;
  cfg.seed = env_u64("CGN_BENCH_SEED", 42);
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(8, static_cast<std::size_t>(
                                        static_cast<double>(n) * scale));
  };
  cfg.routed_ases = scaled(cfg.routed_ases);
  cfg.pbl_eyeballs = scaled(cfg.pbl_eyeballs);
  cfg.apnic_eyeballs = scaled(cfg.apnic_eyeballs);
  cfg.cellular_ases = scaled(cfg.cellular_ases);
  cfg.fault_plan = fault_plan_from_env();
  cfg.v6 = v6_config_from_env();
  // CGN_LAZY_WORLD=1 defers per-line construction to first use (figures
  // unchanged); CGN_SILENT_LINES adds bench-only never-instrumented lines
  // per CGN AS, built by materialize_silent_lines(). Both default off.
  cfg.lazy_build = env_u64("CGN_LAZY_WORLD", 0) != 0;
  cfg.silent_lines_per_cgn_as =
      static_cast<std::size_t>(env_u64("CGN_SILENT_LINES", 0));
  return cfg;
}

}  // namespace cgn::scenario
