// The synthetic-Internet generator: builds the full measurement substrate —
// AS registry and routing table, per-ISP access trees with CPE and CGN
// middleboxes, subscriber devices, BitTorrent peers, and the measurement
// servers (Netalyzr, STUN, DHT bootstrap, tracker, crawler host) hanging off
// the core.
//
// Only *instrumented* ASes (those hosting BitTorrent peers or Netalyzr
// vantage points) get physical subtrees; the rest of the routed Internet
// exists as registry entries and announced prefixes, exactly the role it
// plays for the paper's coverage denominators.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dht/dht_node.hpp"
#include "dht/tracker.hpp"
#include "fault/fault.hpp"
#include "nat/nat_device.hpp"
#include "netalyzr/server.hpp"
#include "netcore/address_pool.hpp"
#include "netcore/as_registry.hpp"
#include "netcore/routing_table.hpp"
#include "scenario/profiles.hpp"
#include "sim/clock.hpp"
#include "sim/demux.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "stun/stun.hpp"
#include "v6/dns64.hpp"
#include "v6/translator.hpp"

namespace cgn::scenario {

struct InternetConfig {
  std::uint64_t seed = 42;

  // --- AS universe (defaults are a 1:8 scale of the paper's world) -------
  std::size_t routed_ases = 6500;
  std::size_t pbl_eyeballs = 360;
  std::size_t apnic_eyeballs = 390;
  double eyeball_list_overlap = 0.80;  ///< share of PBL list also on APNIC's
  std::size_t cellular_ases = 34;

  /// Share of eyeball ASes per region: AFRINIC, APNIC, ARIN, LACNIC, RIPE.
  std::array<double, netcore::kRirCount> region_share{0.10, 0.25, 0.20, 0.15,
                                                      0.30};

  // --- Ground-truth CGN deployment ----------------------------------------
  /// Deployment probability for non-cellular eyeball ASes per region.
  /// (Measured penetration lands lower: not every deployment is detectable.)
  std::array<double, netcore::kRirCount> cgn_rate_by_region{0.15, 0.48, 0.22,
                                                            0.22, 0.44};
  double cellular_cgn_rate = 0.96;
  double cellular_cgn_rate_afrinic = 0.72;
  /// CGN deployment among instrumented non-eyeball ASes.
  double other_cgn_rate = 0.05;

  // --- Instrumentation (who hosts vantage points) -------------------------
  double bt_eyeball_coverage = 0.58;
  double bt_other_fraction = 0.022;   ///< of non-eyeball routed ASes
  double nz_eyeball_coverage = 0.30;
  double nz_other_fraction = 0.006;
  double nz_cellular_coverage = 0.85;

  int bt_peers_cgn_lo = 90, bt_peers_cgn_hi = 170;
  int bt_peers_lo = 6, bt_peers_hi = 40;
  int bt_peers_cellular_hi = 3;  ///< BitTorrent is rare on mobile devices
  int nz_sessions_lo = 12, nz_sessions_hi = 48;
  int nz_cellular_sessions_lo = 5, nz_cellular_sessions_hi = 16;

  // --- Behavioural knobs ---------------------------------------------------
  double multi_device_home_fraction = 0.22;  ///< homes with two BT devices
  double upnp_portmap_fraction = 0.70;       ///< BT clients mapping their port
  /// Peers that propagate unvalidated contacts (paper calibration: ~1.3%).
  double sloppy_peer_fraction = 0.013;
  std::size_t dht_table_capacity = 128;

  // --- Topology shape ------------------------------------------------------
  int server_side_hops = 3;
  int agg_hops_lo = 1, agg_hops_hi = 3;

  // --- IPv6 transition -----------------------------------------------------
  /// NAT64/DNS64, DS-Lite and 464XLAT deployment (DESIGN.md §14). Disabled
  /// by default: the builder then draws no v6 randomness and the world is
  /// byte-identical to a pre-v6 build.
  V6ScenarioConfig v6;

  // --- Fault injection -----------------------------------------------------
  /// Impairment scenario (loss, duplication, deaf peers, CGN restarts,
  /// port-pool pressure). Inactive by default: the injector is then never
  /// attached to the network and the build draws no fault randomness, so
  /// clean runs are byte-identical to a no-fault build.
  fault::FaultPlan fault_plan;

  // --- Lazy materialization (README "Scale") -------------------------------
  /// Defer per-line construction until a campaign first touches the line.
  /// The builder performs every RNG draw at plan time in eager order, so
  /// campaign figures are byte-identical to an eager build at any worker
  /// count; only node construction (and its memory) moves to first use.
  bool lazy_build = false;
  /// Bench-only ballast: never-instrumented archetype-B lines per CGN AS,
  /// built on demand by materialize_silent_lines(). Planned with zero RNG
  /// draws, so a non-zero value perturbs no figure.
  std::size_t silent_lines_per_cgn_as = 0;
};

/// One subscriber line of an instrumented ISP.
struct Subscriber {
  sim::NodeId device = sim::kNoNode;
  netcore::Ipv4Address device_address;
  int home_id = -1;                ///< devices sharing a LAN share this
  nat::NatDevice* cpe = nullptr;   ///< null for archetype-B / cellular lines
  sim::NodeId cpe_node = sim::kNoNode;
  bool cpe_upnp = false;
  bool behind_cgn = false;
  sim::PortDemux* demux = nullptr;
  dht::DhtNode* bt_client = nullptr;  ///< null when not a BitTorrent host

  // --- IPv6 transition (populated only on v6 lines; DESIGN.md §14) --------
  /// The line's mechanism; nat44 == plain v4 line (possibly NAT444).
  nat::TranslatorMode v6_mode = nat::TranslatorMode::nat44;
  bool has_clat = false;               ///< NAT64 line with a CLAT => 464XLAT
  netcore::Ipv6Address device_v6;      ///< unspecified on v4-only lines
  v6::HostV6Stack* v6stack = nullptr;  ///< non-null on bare v6-only lines
};

/// An instrumented ISP (one per covered AS).
struct IspInstance {
  netcore::Asn asn = 0;
  bool cellular = false;
  std::optional<CgnProfile> cgn_profile;  ///< ground truth
  nat::NatDevice* cgn = nullptr;
  sim::NodeId cgn_node = sim::kNoNode;
  std::vector<Subscriber> subscribers;
  std::size_t bt_peer_count = 0;
  std::size_t nz_session_target = 0;
  /// Spare public addresses for renumbering events (scenario/churn.hpp).
  netcore::Ipv4Prefix spare_block;
  std::uint32_t spare_used = 0;

  // --- IPv6 transition (DESIGN.md §14) ------------------------------------
  /// The deployment's mechanism (ground truth; nat44 == plain NAT444).
  /// When != nat44, `cgn` points at the translator's embedded NAT44 core —
  /// timeouts, port allocation and fault hooks live there unchanged.
  nat::TranslatorMode transition = nat::TranslatorMode::nat44;
  v6::Nat64Device* nat64 = nullptr;    ///< when transition == nat64
  v6::DsLiteAftr* aftr = nullptr;      ///< when transition == dslite_aftr
  v6::Dns64Resolver* dns64 = nullptr;  ///< carrier DNS64 (NAT64 ASes only)
};

/// The measurement infrastructure at the network core.
struct Servers {
  sim::NodeId netalyzr_host = sim::kNoNode;
  sim::NodeId stun_host = sim::kNoNode;
  sim::NodeId bootstrap_host = sim::kNoNode;
  sim::NodeId tracker_host = sim::kNoNode;
  sim::NodeId crawler_host = sim::kNoNode;
  netcore::Endpoint crawler_endpoint;
  netcore::Endpoint bootstrap_endpoint;
  std::unique_ptr<netalyzr::NetalyzrServer> netalyzr;
  std::unique_ptr<stun::StunServer> stun;
  std::unique_ptr<dht::DhtNode> bootstrap;
  std::unique_ptr<dht::TrackerServer> tracker;
};

/// Deferred-construction state (defined in internet.cpp): the recorded
/// per-line plans of a lazy_build world plus the silent-line pools.
struct LazyWorld;

class Internet {
 public:
  explicit Internet(const InternetConfig& config);
  ~Internet();

  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;

  sim::Clock clock;
  sim::Network net{clock};
  netcore::RoutingTable routes;
  netcore::AsRegistry registry;
  InternetConfig config;
  Servers servers;
  /// The fault injector realized from config.fault_plan. Always present;
  /// attached to `net` (and consulted by campaign drivers) only when the
  /// plan is active.
  std::unique_ptr<fault::FaultInjector> faults;

  std::vector<IspInstance> isps;
  std::unordered_map<netcore::Asn, std::size_t> isp_index;

  /// Ground truth: does this AS run a CGN? (Known for every registry AS.)
  [[nodiscard]] bool truth_has_cgn(netcore::Asn asn) const {
    auto it = truth_cgn_.find(asn);
    return it != truth_cgn_.end() && it->second;
  }
  [[nodiscard]] std::size_t truth_cgn_count() const {
    std::size_t n = 0;
    for (const auto& [asn, cgn] : truth_cgn_) n += cgn ? 1 : 0;
    return n;
  }

  /// Ground truth: the AS's transition mechanism. nat44 for every AS of a
  /// v4-only world (and for v6-world ASes that stayed NAT444).
  [[nodiscard]] nat::TranslatorMode truth_transition(netcore::Asn asn) const {
    auto it = truth_transition_.find(asn);
    return it == truth_transition_.end() ? nat::TranslatorMode::nat44
                                         : it->second;
  }

  /// All BitTorrent peers across all ISPs. In a lazy world this first
  /// materializes every BT home (in plan order) and rebuilds the pointer
  /// list in subscriber-slot order, which equals the eager push order.
  [[nodiscard]] const std::vector<dht::DhtNode*>& bt_peers();

  /// Deterministic RNG forked from the build seed for campaign drivers.
  [[nodiscard]] sim::Rng fork_rng() { return rng_.fork(); }

  // --- Lazy materialization ------------------------------------------------
  /// True when this world defers line construction (config.lazy_build).
  [[nodiscard]] bool lazy() const noexcept;
  /// Materializes the home owning `isp.subscribers[slot]` (a no-op on eager
  /// worlds and already-built homes) and returns the subscriber.
  Subscriber& ensure_line(IspInstance& isp, std::size_t slot);
  /// Materializes every planned home. Campaign drivers that iterate the
  /// whole subscriber population (e.g. churn) call this first so their RNG
  /// consumption matches an eager world.
  void materialize_all();
  /// Builds this ISP's silent-line ballast (config.silent_lines_per_cgn_as);
  /// returns the number of lines the ISP now carries beyond its plan.
  std::size_t materialize_silent_lines(IspInstance& isp);
  /// Lines this world would hold fully materialized: placeholder subscriber
  /// slots plus planned silent lines. Constant from construction on.
  [[nodiscard]] std::size_t planned_subscriber_count() const;

 private:
  friend class InternetBuilder;
  friend struct LazyWorld;

  sim::Rng rng_;
  std::unique_ptr<LazyWorld> lazy_;
  std::unordered_map<netcore::Asn, bool> truth_cgn_;
  std::unordered_map<netcore::Asn, nat::TranslatorMode> truth_transition_;
  std::vector<dht::DhtNode*> bt_peer_ptrs_;

  // Ownership of everything wired into the network by raw pointer.
  std::vector<std::unique_ptr<nat::NatDevice>> nats_;
  std::vector<std::unique_ptr<dht::DhtNode>> dht_nodes_;
  std::vector<std::unique_ptr<sim::PortDemux>> demuxes_;
  // v6-transition elements (all empty in a v4-only world).
  std::vector<std::unique_ptr<v6::Nat64Device>> nat64s_;
  std::vector<std::unique_ptr<v6::DsLiteAftr>> aftrs_;
  std::vector<std::unique_ptr<v6::Dns64Resolver>> dns64s_;
  std::vector<std::unique_ptr<v6::HostV6Stack>> v6stacks_;
  std::vector<std::unique_ptr<v6::ClatElement>> clats_;
  std::vector<std::unique_ptr<v6::B4Element>> b4s_;
};

/// Builds a full Internet from a config (the constructor delegates here).
std::unique_ptr<Internet> build_internet(const InternetConfig& config);

}  // namespace cgn::scenario
