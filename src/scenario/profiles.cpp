#include "scenario/profiles.hpp"

namespace cgn::scenario {

namespace {
using nat::MappingType;
using nat::PortAllocation;
using netcore::Ipv4Prefix;
using netcore::ReservedRange;

std::vector<CpeModel> make_catalog() {
  // Market calibrated to the paper: ~92% of CPE sessions preserve ports
  // (Fig 8b); <2% symmetric, the rest spread over the cone types with a
  // substantial full-cone share (Fig 13a); UPnP answerable in ~40% of
  // sessions (Table 4); modal UDP timeout 65 s (Fig 12).
  auto p = [](std::string_view s) { return Ipv4Prefix::parse(s); };
  return {
      // name, mapping, allocation, upnp, hairpin, hp_preserve, timeout, lan, weight
      {"AcmeHome AH-100", MappingType::full_cone,
       PortAllocation::preservation, true, true, true, 65.0,
       p("192.168.0.0/24"), 18.0},
      {"AcmeHome AH-200", MappingType::address_restricted,
       PortAllocation::preservation, true, false, false, 65.0,
       p("192.168.1.0/24"), 15.0},
      {"RiverRouter R1", MappingType::port_address_restricted,
       PortAllocation::preservation, false, false, false, 65.0,
       p("192.168.0.0/24"), 14.0},
      {"RiverRouter R2 Pro", MappingType::address_restricted,
       PortAllocation::preservation, true, true, false, 400.0,
       p("192.168.2.0/24"), 9.0},
      {"HomeGate HG-5", MappingType::full_cone,
       PortAllocation::preservation, false, true, true, 65.0,
       p("192.168.1.0/24"), 10.0},
      {"HomeGate HG-7", MappingType::port_address_restricted,
       PortAllocation::preservation, false, false, false, 35.0,
       p("192.168.178.0/24"), 8.0},
      {"NetBox Duo", MappingType::address_restricted,
       PortAllocation::preservation, false, false, false, 300.0,
       p("192.168.100.0/24"), 7.0},
      {"NetBox Uno", MappingType::full_cone,
       PortAllocation::preservation, true, true, true, 600.0,
       p("10.0.0.0/24"), 6.0},
      {"TelcoCPE T-1", MappingType::port_address_restricted,
       PortAllocation::sequential, true, false, false, 65.0,
       p("192.168.0.0/24"), 4.0},
      {"TelcoCPE T-2", MappingType::address_restricted,
       PortAllocation::preservation, false, false, false, 240.0,
       p("10.0.1.0/24"), 3.5},
      {"SecureGate SG", MappingType::symmetric,
       PortAllocation::random, false, false, false, 65.0,
       p("192.168.50.0/24"), 1.5},
      {"CarrierBox CB-2", MappingType::address_restricted,
       PortAllocation::preservation, true, true, true, 65.0,
       p("172.16.0.0/24"), 2.5},
      {"CarrierBox CB-3", MappingType::full_cone,
       PortAllocation::preservation, false, true, true, 300.0,
       p("172.16.1.0/24"), 1.5},
      {"OpenWrtish OW", MappingType::full_cone,
       PortAllocation::preservation, true, true, false, 60.0,
       p("192.168.77.0/24"), 4.0},
  };
}
}  // namespace

const std::vector<CpeModel>& cpe_catalog() {
  static const std::vector<CpeModel> catalog = make_catalog();
  return catalog;
}

const CpeModel& sample_cpe(sim::Rng& rng) {
  const auto& catalog = cpe_catalog();
  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const auto& m : cpe_catalog()) w.push_back(m.weight);
    return w;
  }();
  return catalog[rng.weighted(weights)];
}

CgnProfile sample_cgn_profile(sim::Rng& rng, bool cellular) {
  CgnProfile p;

  // Internal address space (Figure 7(a)): 10X most common, then 100X, the
  // smaller RFC 1918 blocks occasionally; ~20% of CGN ASes combine multiple
  // ranges; a few (mostly cellular) ISPs resort to routable space.
  auto pick_range = [&](void) {
    // Cellular deployments are dominated by 10X with a 100X second (Table 4
    // column 2); non-cellular CGNs spread a little wider (Figure 7(a)).
    static const std::vector<double> w_cell{0.70, 0.22, 0.05, 0.03};
    static const std::vector<double> w_fixed{0.46, 0.28, 0.14, 0.12};
    static const ReservedRange r[] = {ReservedRange::r10, ReservedRange::r100,
                                      ReservedRange::r172,
                                      ReservedRange::r192};
    return r[rng.weighted(cellular ? w_cell : w_fixed)];
  };
  p.internal_ranges.push_back(pick_range());
  if (rng.chance(0.20)) {
    ReservedRange second = pick_range();
    if (second != p.internal_ranges.front())
      p.internal_ranges.push_back(second);
  }
  p.routable_internal = rng.chance(cellular ? 0.12 : 0.015);

  // Placement (Figure 11): non-cellular CGNs mostly 2-6 hops out; cellular
  // deployments range from 1 up to 12 (large centralized aggregation).
  if (cellular) {
    static const std::vector<double> w{0.10, 0.25, 0.25, 0.12, 0.08,
                                       0.06, 0.04, 0.03, 0.03, 0.02,
                                       0.01, 0.01};
    p.hop_distance = static_cast<int>(rng.weighted(w)) + 1;
  } else {
    static const std::vector<double> w{0.28, 0.26, 0.20, 0.16, 0.10};
    p.hop_distance = static_cast<int>(rng.weighted(w)) + 2;  // 2..6
  }

  // Mapping type (Figure 13(b)): non-cellular ~11% symmetric with a large
  // permissive share; cellular bimodal (~40% symmetric, ~20% full cone).
  {
    static const std::vector<double> w_noncell{0.11, 0.24, 0.26, 0.39};
    static const std::vector<double> w_cell{0.40, 0.22, 0.18, 0.20};
    static const MappingType t[] = {MappingType::symmetric,
                                    MappingType::port_address_restricted,
                                    MappingType::address_restricted,
                                    MappingType::full_cone};
    p.mapping = t[rng.weighted(cellular ? w_cell : w_noncell)];
  }

  // Port allocation (Table 6): preservation 41%/28%, sequential 22%/26%,
  // random 36%/45%; a slice of the random CGNs use per-subscriber chunks.
  {
    static const std::vector<double> w_noncell{0.41, 0.22, 0.24, 0.13};
    static const std::vector<double> w_cell{0.28, 0.26, 0.34, 0.12};
    static const PortAllocation a[] = {
        PortAllocation::preservation, PortAllocation::sequential,
        PortAllocation::random, PortAllocation::chunk_random};
    p.allocation = a[rng.weighted(cellular ? w_cell : w_noncell)];
    if (p.allocation == PortAllocation::chunk_random) {
      static const std::vector<double> cw{0.18, 0.18, 0.16, 0.22, 0.14, 0.12};
      static const std::uint32_t sizes[] = {512, 1024, 2048, 4096, 8192,
                                            16384};
      p.chunk_size = sizes[rng.weighted(cw)];
    }
  }

  // Pooling (§6.2): 21% of CGNs use arbitrary pooling.
  p.pooling = rng.chance(0.21) ? nat::Pooling::arbitrary : nat::Pooling::paired;

  // UDP mapping timeouts (Figure 12): 10 s steps; cellular median ~65 s,
  // non-cellular median ~35 s, both ranging 10-200 s (74% expire <= 60 s).
  {
    static const std::vector<double> w_cell{0.02, 0.05, 0.08, 0.10, 0.10,
                                            0.24, 0.09, 0.07, 0.05, 0.04,
                                            0.03, 0.05, 0.04, 0.04};
    static const std::vector<double> w_noncell{0.08, 0.13, 0.21, 0.15, 0.09,
                                               0.08, 0.05, 0.04, 0.03, 0.03,
                                               0.02, 0.03, 0.03, 0.03};
    static const double timeouts[] = {10,  20,  30,  40,  50,  65,  80,
                                      100, 120, 150, 180, 200, 240, 300};
    p.udp_timeout_s = timeouts[rng.weighted(cellular ? w_cell : w_noncell)];
  }

  // Hairpinning: RFC 6888 requires it; a share of implementations forward
  // hairpinned packets with the internal source intact (the §4.1 leak
  // enabler, which the paper verified in the wild).
  p.hairpinning = rng.chance(0.90);
  p.hairpin_preserve_source = p.hairpinning && rng.chance(0.92);

  // Deployment shape.
  // Most deployments are partial (paper §2/§3); about a third of cellular
  // CGNs still hand some devices public space (Table 4: 30.3% "mixed").
  p.cgn_subscriber_fraction =
      cellular ? (rng.chance(0.35) ? 0.5 + 0.4 * rng.uniform01() : 1.0)
               : 0.4 + 0.6 * rng.uniform01();
  p.no_cpe_fraction = cellular ? 1.0 : 0.05 + 0.20 * rng.uniform01();
  p.pool_size = cellular ? static_cast<int>(rng.uniform(8, 48))
                         : static_cast<int>(rng.uniform(8, 32));
  return p;
}

void apply_transition_profile(CgnProfile& p, sim::Rng& v6rng, bool cellular,
                              std::uint32_t asn,
                              const V6ScenarioConfig& cfg) {
  // Mechanism.
  const double r = v6rng.uniform01();
  const double nat64_cut =
      cellular ? cfg.cellular_nat64_fraction : cfg.fixed_nat64_fraction;
  const double dslite_cut =
      nat64_cut +
      (cellular ? cfg.cellular_dslite_fraction : cfg.fixed_dslite_fraction);
  if (r < nat64_cut) {
    p.transition = nat::TranslatorMode::nat64;
  } else if (r < dslite_cut) {
    p.transition = nat::TranslatorMode::dslite_aftr;
  } else {
    p.transition = nat::TranslatorMode::nat44;
    return;
  }

  if (p.transition == nat::TranslatorMode::nat64) {
    if (v6rng.chance(cfg.well_known_pref64_fraction)) {
      p.pref64 = netcore::well_known_pref64();
    } else {
      // Network-specific prefix 2001:<asn>::/len; NSP deployments skew
      // toward the long end of the RFC 6052 lengths (/96 dominant).
      static const std::vector<double> w{0.06, 0.06, 0.10, 0.12, 0.22, 0.44};
      const int len = netcore::kPref64Lengths[v6rng.weighted(w)];
      const std::uint64_t hi =
          (0x2001ull << 48) | (static_cast<std::uint64_t>(asn) << 32);
      p.pref64 = netcore::Ipv6Prefix(netcore::Ipv6Address(hi, 0), len);
    }
    p.clat_fraction =
        cellular ? cfg.cellular_clat_fraction : cfg.fixed_clat_fraction;
  }

  // Mobile transition carriers: shorter mapping lifetimes and a heavier
  // random/chunked allocation mix than the general cellular draw.
  if (cellular) {
    {
      static const std::vector<double> w{0.10, 0.22, 0.30, 0.18, 0.12, 0.08};
      static const double timeouts[] = {10, 20, 30, 40, 50, 65};
      p.udp_timeout_s = timeouts[v6rng.weighted(w)];
    }
    {
      static const std::vector<double> w{0.16, 0.22, 0.44, 0.18};
      static const PortAllocation a[] = {
          PortAllocation::preservation, PortAllocation::sequential,
          PortAllocation::random, PortAllocation::chunk_random};
      p.allocation = a[v6rng.weighted(w)];
      if (p.allocation == PortAllocation::chunk_random) {
        static const std::vector<double> cw{0.30, 0.40, 0.30};
        static const std::uint32_t sizes[] = {1024, 2048, 4096};
        p.chunk_size = sizes[v6rng.weighted(cw)];
      }
    }
  }
}

}  // namespace cgn::scenario
