#include "scenario/internet.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace cgn::scenario {

namespace {

/// Nominally-public /8-style blocks some ISPs deploy internally
/// (Figure 7(b)); none of them fall inside the announced 16.0.0.0/4 world,
/// so they classify as "unrouted".
const char* kUnroutedInternalBlocks[] = {"25.0.0.0/8",  "21.0.0.0/8",
                                         "26.0.0.0/8",  "29.0.0.0/8",
                                         "30.0.0.0/8",  "33.0.0.0/8",
                                         "51.0.0.0/8"};

// --- IPv6 transition (DESIGN.md §14) ---------------------------------------

/// Salt of the per-AS v6 substream (fork(seed ^ salt, asn)): independent of
/// the main builder RNG, so enabling v6 perturbs no v4 draw.
constexpr std::uint64_t kV6BuilderSalt = 0x76365f6e6174ull;  // "v6_nat"

/// The RFC 7335 well-known CLAT-side address every 464XLAT line shows as
/// its local IPv4 — the duplicate-ip_dev signal the fig14 classifier keys
/// on.
constexpr netcore::Ipv4Address kClatDeviceV4{192, 0, 0, 1};
/// Factory-default LAN address of the B4 home router's single device; like
/// the CLAT address, identical across every DS-Lite home.
constexpr netcore::Ipv4Address kB4DeviceV4{192, 168, 1, 2};

/// Per-ISP AFTR tunnel endpoint: 2001:db8:0:<asn>::1.
netcore::Ipv6Address aftr_address_for(std::uint64_t asn) {
  return {0x20010db800000000ull | asn, 1};
}

/// Per-line device/B4 v6 address: 2001:db8:<1|2>:<asn>::<line+1>.
netcore::Ipv6Address line_v6_address(std::uint64_t block, std::uint64_t asn,
                                     int index) {
  return {0x20010db800000000ull | (block << 16) | asn,
          static_cast<std::uint64_t>(index) + 1};
}

}  // namespace

/// Deferred per-line construction (README "Scale"). The builder performs
/// every RNG draw for every subscriber line at *plan* time, in exactly the
/// order eager construction used to, and records the outcomes here;
/// materialization replays a recorded plan without touching any generator.
/// Eager mode (the default) materializes each ISP's homes immediately after
/// planning them, which reproduces the historical construction order —
/// node ids, names, registration order — byte-for-byte. Lazy mode defers a
/// home until its first use; node ids then differ from eager, but no figure
/// depends on them (shard partitions key on route equality, fingerprints on
/// addresses/ports), so campaign output stays byte-identical.
struct LazyWorld {
  /// One BitTorrent client to attach (primary or second device of a home).
  struct BtPlan {
    bool sloppy = false;         ///< propagates unvalidated contacts
    std::uint64_t dht_seed = 0;  ///< the engine draw rng_.fork() would take
    dht::NodeId160 dht_id;
    bool upnp_map = false;  ///< CPE static mapping for port 6881
    bool deaf = false;      ///< fault plan marks the device unresponsive
  };

  /// One home: a subscriber line plus (maybe) a second LAN device.
  struct LinePlan {
    int index = 0;  ///< loop index within the ISP (names, v6 addresses)
    int home_id = 0;
    std::uint32_t slot = 0;  ///< primary's index in isp.subscribers
    bool behind_cgn = false;
    bool has_bt = false;
    bool no_cpe = false;  ///< archetype B (v4 path only)
    bool multi_home = false;
    bool materialized = false;
    netcore::Ipv4Address line_addr;
    const CpeModel* cpe_model = nullptr;  ///< catalog entry; null: no CPE
    std::uint64_t cpe_seed = 0;           ///< CPE NAT's forked engine seed
    nat::TranslatorMode v6_mode = nat::TranslatorMode::nat44;
    bool has_clat = false;
    BtPlan bt;      ///< meaningful when has_bt
    BtPlan second;  ///< meaningful when multi_home
  };

  /// Per-ISP plan: the attachment points and every home.
  struct IspLines {
    std::string as_name;
    std::size_t isp_slot = 0;  ///< index into Internet::isps
    sim::NodeId cpe_chain = sim::kNoNode;
    sim::NodeId direct_chain = sim::kNoNode;
    sim::NodeId public_chain = sim::kNoNode;
    std::vector<LinePlan> lines;
    /// subscribers-vector slot -> lines index (seconds map to their home).
    std::vector<std::uint32_t> slot_to_line;
    // Silent-line ballast (drawn from nothing; see materialize_silent_lines).
    std::vector<netcore::Ipv4Address> silent_bases;
    std::size_t n_subs = 0;
    std::size_t silent_planned = 0;
    std::size_t silent_built = 0;
  };

  bool defer = false;  ///< config.lazy_build
  std::vector<IspLines> isps;
  std::unordered_map<netcore::Asn, std::size_t> by_asn;

  void materialize_home(Internet& I, IspLines& L, LinePlan& lp);

 private:
  void build_v4_line(Internet& I, IspLines& L, const LinePlan& lp,
                     Subscriber& sub);
  void build_v6_line(Internet& I, IspLines& L, const LinePlan& lp,
                     Subscriber& sub);
  Subscriber build_lan_device(Internet& I, IspLines& L, const LinePlan& lp,
                              const Subscriber& first);
  void attach_demux(Internet& I, Subscriber& sub);
  void attach_bt(Internet& I, Subscriber& sub, const BtPlan& bp);
};

void LazyWorld::attach_demux(Internet& I, Subscriber& sub) {
  auto demux = std::make_unique<sim::PortDemux>();
  sub.demux = demux.get();
  demux->attach(I.net, sub.device);
  I.demuxes_.push_back(std::move(demux));
}

void LazyWorld::build_v4_line(Internet& I, IspLines& L, const LinePlan& lp,
                              Subscriber& sub) {
  IspInstance& isp = I.isps[L.isp_slot];
  const sim::NodeId line_scope =
      lp.behind_cgn ? isp.cgn_node : I.net.root();
  if (lp.no_cpe) {
    sim::NodeId attach = lp.behind_cgn ? L.direct_chain : L.public_chain;
    sub.device = I.net.add_node(
        attach, L.as_name + "-dev" + std::to_string(lp.home_id));
    sub.device_address = lp.line_addr;
    I.net.add_local_address(sub.device, lp.line_addr);
    I.net.register_address(lp.line_addr, sub.device, line_scope);
  } else {
    sim::NodeId attach = lp.behind_cgn ? L.cpe_chain : L.public_chain;
    const CpeModel& model = *lp.cpe_model;
    sim::NodeId cpe_node = I.net.add_node(
        attach, L.as_name + "-cpe" + std::to_string(lp.home_id));
    nat::NatConfig cfg;
    cfg.name = model.name;
    cfg.mapping = model.mapping;
    cfg.port_allocation = model.allocation;
    cfg.pooling = nat::Pooling::paired;
    cfg.udp_timeout_s = model.udp_timeout_s;
    cfg.hairpinning = model.hairpinning;
    cfg.hairpin_preserve_source = model.hairpin_preserve_source;
    cfg.port_min = 1024;
    auto nat = std::make_unique<nat::NatDevice>(
        cfg, std::vector<netcore::Ipv4Address>{lp.line_addr},
        sim::Rng(lp.cpe_seed));
    sub.cpe = nat.get();
    sub.cpe_upnp = model.upnp;
    I.nats_.push_back(std::move(nat));
    I.net.set_middlebox(cpe_node, sub.cpe);
    I.net.register_address(lp.line_addr, cpe_node, line_scope);

    sub.device = I.net.add_node(
        cpe_node, L.as_name + "-dev" + std::to_string(lp.home_id));
    sub.device_address = model.lan_prefix.at(2);
    I.net.add_local_address(sub.device, sub.device_address);
    I.net.register_address(sub.device_address, sub.device, cpe_node);
    sub.cpe_node = cpe_node;
  }
  attach_demux(I, sub);
}

void LazyWorld::build_v6_line(Internet& I, IspLines& L, const LinePlan& lp,
                              Subscriber& sub) {
  IspInstance& isp = I.isps[L.isp_slot];
  const std::uint64_t asn = isp.asn;
  const netcore::Ipv4Address underlay = lp.line_addr;
  sub.v6_mode = lp.v6_mode;
  sim::NodeId elem_node;
  if (lp.v6_mode == nat::TranslatorMode::nat64) {
    sub.device_v6 = line_v6_address(2, asn, lp.index);
    sub.has_clat = lp.has_clat;
    if (lp.has_clat) {
      elem_node = I.net.add_node(
          L.cpe_chain, L.as_name + "-clat" + std::to_string(lp.home_id));
      sub.device_address = kClatDeviceV4;
      auto clat = std::make_unique<v6::ClatElement>(
          sub.device_v6, isp.cgn_profile->pref64, underlay, kClatDeviceV4);
      I.net.set_middlebox(elem_node, clat.get());
      I.clats_.push_back(std::move(clat));
    } else {
      elem_node = I.net.add_node(
          L.cpe_chain, L.as_name + "-v6stk" + std::to_string(lp.home_id));
      sub.device_address = netcore::Ipv4Address(
          0xA9FE0000u + static_cast<std::uint32_t>(lp.index) + 257);
      auto stack = std::make_unique<v6::HostV6Stack>(
          sub.device_v6, underlay, sub.device_address);
      sub.v6stack = stack.get();
      I.net.set_middlebox(elem_node, stack.get());
      I.v6stacks_.push_back(std::move(stack));
    }
    isp.nat64->add_host(sub.device_v6, underlay);
  } else {  // DS-Lite softwire
    sub.device_v6 = line_v6_address(1, asn, lp.index);
    elem_node = I.net.add_node(
        L.cpe_chain, L.as_name + "-b4" + std::to_string(lp.home_id));
    sub.device_address = kB4DeviceV4;
    auto b4 = std::make_unique<v6::B4Element>(
        sub.device_v6, isp.aftr->aftr_address(), underlay);
    I.net.set_middlebox(elem_node, b4.get());
    I.b4s_.push_back(std::move(b4));
    isp.aftr->add_softwire(sub.device_v6, underlay);
  }
  I.net.register_address(underlay, elem_node, isp.cgn_node);

  sub.device = I.net.add_node(
      elem_node, L.as_name + "-dev" + std::to_string(lp.home_id));
  I.net.add_local_address(sub.device, sub.device_address);
  I.net.register_address(sub.device_address, sub.device, elem_node);
  attach_demux(I, sub);
}

Subscriber LazyWorld::build_lan_device(Internet& I, IspLines& L,
                                       const LinePlan& lp,
                                       const Subscriber& first) {
  Subscriber sub;
  sub.home_id = first.home_id;
  sub.behind_cgn = first.behind_cgn;
  sub.cpe = first.cpe;
  sub.cpe_upnp = first.cpe_upnp;
  sub.cpe_node = first.cpe_node;
  sub.device = I.net.add_node(
      first.cpe_node,
      L.as_name + "-dev" + std::to_string(lp.index) + "b");
  sub.device_address = netcore::Ipv4Address(first.device_address.value() + 1);
  I.net.add_local_address(sub.device, sub.device_address);
  I.net.register_address(sub.device_address, sub.device, first.cpe_node);
  attach_demux(I, sub);
  return sub;
}

void LazyWorld::attach_bt(Internet& I, Subscriber& sub, const BtPlan& bp) {
  dht::DhtNodeConfig cfg;
  cfg.table_capacity = I.config.dht_table_capacity;
  cfg.pings_per_round = 24;  // active clients validate aggressively
  cfg.validate_before_propagate = !bp.sloppy;
  netcore::Endpoint local{sub.device_address, 6881};
  auto node = std::make_unique<dht::DhtNode>(bp.dht_id, local, sub.device,
                                             cfg, sim::Rng(bp.dht_seed));
  sub.bt_client = node.get();
  sub.demux->bind(6881, [ptr = node.get()](sim::Network& n,
                                           const sim::Packet& p) {
    ptr->handle(n, p);
  });
  if (bp.upnp_map)
    sub.cpe->add_static_mapping(netcore::Protocol::udp, local, 0.0);
  I.bt_peer_ptrs_.push_back(node.get());
  I.dht_nodes_.push_back(std::move(node));
  if (bp.deaf) I.faults->mark_unresponsive(sub.device, 6881);
}

void LazyWorld::materialize_home(Internet& I, IspLines& L, LinePlan& lp) {
  if (lp.materialized) return;
  lp.materialized = true;
  IspInstance& isp = I.isps[L.isp_slot];

  Subscriber sub;
  sub.home_id = lp.home_id;
  sub.behind_cgn = lp.behind_cgn;
  if (lp.behind_cgn && lp.v6_mode != nat::TranslatorMode::nat44)
    build_v6_line(I, L, lp, sub);
  else
    build_v4_line(I, L, lp, sub);
  if (lp.has_bt) attach_bt(I, sub, lp.bt);
  isp.subscribers[lp.slot] = sub;

  if (lp.multi_home) {
    // A second BitTorrent device in the same home LAN; both clients
    // discover each other via local peer discovery.
    Subscriber& primary = isp.subscribers[lp.slot];
    Subscriber second = build_lan_device(I, L, lp, primary);
    attach_bt(I, second, lp.second);
    dht::DhtNode* a = primary.bt_client;
    dht::DhtNode* b = second.bt_client;
    a->learn_contact(dht::Contact{b->id(), b->local_endpoint()},
                     /*pinned=*/true);
    b->learn_contact(dht::Contact{a->id(), a->local_endpoint()},
                     /*pinned=*/true);
    isp.subscribers[lp.slot + 1] = second;
  }
}

/// Performs the actual construction; split from Internet to keep the data
/// holder readable.
class InternetBuilder {
 public:
  explicit InternetBuilder(Internet& internet)
      : I_(internet), rng_(I_.rng_.fork()) {}

  void build() {
    build_universe();
    build_servers();
    for (AsPlan& plan : plans_)
      if (plan.instrumented()) build_isp(plan);
  }

 private:
  struct AsPlan {
    netcore::AsInfo info;
    netcore::Ipv4Prefix prefix;
    bool bt = false;
    bool nz = false;
    bool cgn = false;
    [[nodiscard]] bool instrumented() const { return bt || nz; }
  };

  void build_universe() {
    const InternetConfig& cfg = I_.config;
    const std::size_t overlap = static_cast<std::size_t>(
        cfg.eyeball_list_overlap *
        static_cast<double>(std::min(cfg.pbl_eyeballs, cfg.apnic_eyeballs)));
    const std::size_t eyeball_union =
        cfg.pbl_eyeballs + cfg.apnic_eyeballs - overlap;
    if (eyeball_union + 1 >= cfg.routed_ases)
      throw std::invalid_argument("more eyeballs than routed ASes");

    std::vector<double> region_w(cfg.region_share.begin(),
                                 cfg.region_share.end());

    plans_.reserve(cfg.routed_ases);
    for (std::size_t i = 0; i < cfg.routed_ases; ++i) {
      AsPlan plan;
      plan.info.asn = static_cast<netcore::Asn>(i + 1);
      plan.info.name = "AS" + std::to_string(plan.info.asn);
      plan.info.region = static_cast<netcore::Rir>(rng_.weighted(region_w));
      if (i < eyeball_union) {
        plan.info.pbl_eyeball = i < cfg.pbl_eyeballs;
        plan.info.apnic_eyeball = i < overlap || i >= cfg.pbl_eyeballs;
      }
      plan.prefix = carver_.next(20);
      plans_.push_back(std::move(plan));
    }

    // Cellular networks are a subset of the eyeball population.
    {
      std::vector<std::size_t> eyeball_idx(eyeball_union);
      for (std::size_t i = 0; i < eyeball_union; ++i) eyeball_idx[i] = i;
      rng_.shuffle(eyeball_idx);
      for (std::size_t i = 0; i < cfg.cellular_ases && i < eyeball_idx.size();
           ++i)
        plans_[eyeball_idx[i]].info.cellular = true;
    }

    for (AsPlan& plan : plans_) {
      // Ground-truth CGN deployment.
      double rate;
      if (plan.info.cellular) {
        rate = plan.info.region == netcore::Rir::afrinic
                   ? cfg.cellular_cgn_rate_afrinic
                   : cfg.cellular_cgn_rate;
      } else if (plan.info.eyeball()) {
        rate = cfg.cgn_rate_by_region[static_cast<std::size_t>(
            plan.info.region)];
      } else {
        rate = cfg.other_cgn_rate;
      }
      plan.cgn = rng_.chance(rate);
      I_.truth_cgn_[plan.info.asn] = plan.cgn;

      // Instrumentation.
      if (plan.info.cellular) {
        plan.nz = rng_.chance(cfg.nz_cellular_coverage);
        plan.bt = rng_.chance(0.25);  // BitTorrent is rare on mobile
      } else if (plan.info.eyeball()) {
        plan.bt = rng_.chance(cfg.bt_eyeball_coverage);
        plan.nz = rng_.chance(cfg.nz_eyeball_coverage);
      } else {
        plan.bt = rng_.chance(cfg.bt_other_fraction);
        plan.nz = rng_.chance(cfg.nz_other_fraction);
      }

      I_.registry.add(plan.info);
      I_.routes.announce(plan.prefix, plan.info.asn);
    }
  }

  void build_servers() {
    const InternetConfig& cfg = I_.config;
    netcore::AsInfo infra;
    infra.asn = static_cast<netcore::Asn>(cfg.routed_ases + 1);
    infra.name = "MEASUREMENT-INFRA";
    infra.region = netcore::Rir::arin;
    I_.registry.add(infra);
    netcore::Ipv4Prefix prefix = carver_.next(24);
    I_.routes.announce(prefix, infra.asn);

    sim::NodeId rack = I_.net.add_router_chain(I_.net.root(),
                                               cfg.server_side_hops, "infra");
    Servers& s = I_.servers;

    s.netalyzr_host = I_.net.add_node(rack, "netalyzr-server");
    s.netalyzr = std::make_unique<netalyzr::NetalyzrServer>(s.netalyzr_host,
                                                            prefix.at(10));
    s.netalyzr->install(I_.net);
    // The Big-NAT battery's literal-v4 probe target: a second address the
    // client never resolves through DNS. Installed only in v6 worlds so a
    // default build's address registrations stay identical.
    if (cfg.v6.enabled)
      s.netalyzr->install_literal_address(I_.net, prefix.at(11));

    s.stun_host = I_.net.add_node(rack, "stun-server");
    s.stun = std::make_unique<stun::StunServer>(I_.net, s.stun_host,
                                                prefix.at(20), prefix.at(21),
                                                3478, 3479);
    s.stun->install(I_.net);

    s.bootstrap_host = I_.net.add_node(rack, "dht-bootstrap");
    netcore::Ipv4Address boot_addr = prefix.at(30);
    I_.net.add_local_address(s.bootstrap_host, boot_addr);
    I_.net.register_address(boot_addr, s.bootstrap_host, I_.net.root());
    dht::DhtNodeConfig boot_cfg;
    boot_cfg.table_capacity = 4096;
    boot_cfg.validate_before_propagate = false;  // bootstrap hands out leads
    s.bootstrap = std::make_unique<dht::DhtNode>(
        dht::NodeId160::random(rng_), netcore::Endpoint{boot_addr, 6881},
        s.bootstrap_host, boot_cfg, rng_.fork());
    s.bootstrap_endpoint = {boot_addr, 6881};
    {
      dht::DhtNode* boot = s.bootstrap.get();
      I_.net.set_receiver(s.bootstrap_host,
                          [boot](sim::Network& n, const sim::Packet& p) {
                            boot->handle(n, p);
                          });
    }

    s.tracker_host = I_.net.add_node(rack, "tracker");
    s.tracker = std::make_unique<dht::TrackerServer>(s.tracker_host,
                                                     prefix.at(40),
                                                     rng_.fork(),
                                                     /*reply_sample=*/56);
    s.tracker->install(I_.net);

    s.crawler_host = I_.net.add_node(rack, "crawler");
    netcore::Ipv4Address crawler_addr = prefix.at(50);
    I_.net.add_local_address(s.crawler_host, crawler_addr);
    I_.net.register_address(crawler_addr, s.crawler_host, I_.net.root());
    s.crawler_endpoint = {crawler_addr, 6881};
  }

  void build_isp(AsPlan& plan) {
    const InternetConfig& cfg = I_.config;
    public_cache_.clear();  // the cache is per-ISP: addresses carry the ASN
    IspInstance isp;
    isp.asn = plan.info.asn;
    isp.cellular = plan.info.cellular;

    // Per-AS fault substream: keyed by ASN, independent of the builder's
    // rng_, so (a) an inactive plan draws nothing and the world is
    // byte-identical to a faultless build, and (b) the same ASN gets the
    // same faults whatever else changes in the plan's surroundings.
    const fault::FaultPlan& fplan = I_.config.fault_plan;
    const bool faults_on = fplan.active();
    sim::Rng frng = faults_on
                        ? I_.faults->substream(fault::kSaltBuilder,
                                               plan.info.asn)
                        : sim::Rng(0);

    netcore::PrefixCarver pool_carver(plan.prefix);
    (void)pool_carver.next(24);  // skip the block routers would use
    isp.spare_block = pool_carver.next(24);  // reserved for renumbering

    // Access aggregation under the core.
    int agg = static_cast<int>(rng_.uniform(
        static_cast<std::uint64_t>(cfg.agg_hops_lo),
        static_cast<std::uint64_t>(cfg.agg_hops_hi)));
    sim::NodeId agg_bottom =
        I_.net.add_router_chain(I_.net.root(), agg, plan.info.name);

    // Sizing.
    std::size_t bt_count = 0;
    if (plan.bt) {
      if (plan.info.cellular) {
        bt_count = rng_.uniform(1, static_cast<std::uint64_t>(
                                       cfg.bt_peers_cellular_hi));
      } else if (plan.cgn) {
        bt_count = rng_.uniform(static_cast<std::uint64_t>(cfg.bt_peers_cgn_lo),
                                static_cast<std::uint64_t>(cfg.bt_peers_cgn_hi));
      } else {
        bt_count = rng_.uniform(static_cast<std::uint64_t>(cfg.bt_peers_lo),
                                static_cast<std::uint64_t>(cfg.bt_peers_hi));
      }
    }
    if (plan.nz) {
      isp.nz_session_target =
          plan.info.cellular
              ? rng_.uniform(
                    static_cast<std::uint64_t>(cfg.nz_cellular_sessions_lo),
                    static_cast<std::uint64_t>(cfg.nz_cellular_sessions_hi))
              : rng_.uniform(static_cast<std::uint64_t>(cfg.nz_sessions_lo),
                             static_cast<std::uint64_t>(cfg.nz_sessions_hi));
    }
    isp.bt_peer_count = bt_count;
    std::size_t n_subs = std::max({bt_count, isp.nz_session_target,
                                   std::size_t{12}});

    // CGN construction.
    sim::NodeId cpe_chain_bottom = sim::kNoNode;    // NAT444 attach point
    sim::NodeId direct_chain_bottom = sim::kNoNode; // archetype-B attach point
    std::vector<netcore::Ipv4Address> internal_bases;
    if (plan.cgn) {
      isp.cgn_profile = sample_cgn_profile(rng_, plan.info.cellular);
      // v6-enabled worlds overlay the transition deployment onto the CGN
      // profile from an independent per-AS substream; the same substream
      // later drives the per-line CLAT draws.
      if (cfg.v6.enabled) {
        v6rng_ = sim::Rng::fork(cfg.seed ^ kV6BuilderSalt, plan.info.asn);
        apply_transition_profile(*isp.cgn_profile, v6rng_,
                                 plan.info.cellular, plan.info.asn, cfg.v6);
        isp.transition = isp.cgn_profile->transition;
      }
      I_.truth_transition_[plan.info.asn] = isp.transition;
      const CgnProfile& prof = *isp.cgn_profile;

      isp.cgn_node = I_.net.add_node(agg_bottom, plan.info.name + "-cgn");
      std::vector<netcore::Ipv4Address> pool;
      netcore::Ipv4Prefix pool_prefix = pool_carver.next(24);
      for (int i = 0; i < prof.pool_size; ++i)
        pool.push_back(pool_prefix.at(static_cast<std::uint64_t>(i) + 1));

      nat::NatConfig nat_cfg;
      nat_cfg.name = "CGN-" + plan.info.name;
      nat_cfg.mapping = prof.mapping;
      nat_cfg.port_allocation = prof.allocation;
      nat_cfg.chunk_size = prof.chunk_size;
      nat_cfg.pooling = prof.pooling;
      nat_cfg.udp_timeout_s = prof.udp_timeout_s;
      nat_cfg.hairpinning = prof.hairpinning;
      nat_cfg.hairpin_preserve_source = prof.hairpin_preserve_source;
      nat_cfg.port_min = 1024;
      // NAT64 / DS-Lite edges wrap the same NatDevice core the NAT444 path
      // instantiates (isp.cgn always points at the core, so GC, fault
      // wiring and figure extractors are mechanism-agnostic).
      sim::Middlebox* edge = nullptr;
      if (isp.transition == nat::TranslatorMode::nat64) {
        auto t = std::make_unique<v6::Nat64Device>(nat_cfg, pool, rng_.fork(),
                                                   prof.pref64);
        isp.nat64 = t.get();
        isp.cgn = &t->core();
        edge = t.get();
        I_.nat64s_.push_back(std::move(t));
        auto dns = std::make_unique<v6::Dns64Resolver>(prof.pref64);
        isp.dns64 = dns.get();
        I_.dns64s_.push_back(std::move(dns));
      } else if (isp.transition == nat::TranslatorMode::dslite_aftr) {
        auto t = std::make_unique<v6::DsLiteAftr>(
            nat_cfg, pool, rng_.fork(), aftr_address_for(plan.info.asn));
        isp.aftr = t.get();
        isp.cgn = &t->core();
        edge = t.get();
        I_.aftrs_.push_back(std::move(t));
      } else {
        auto nat = std::make_unique<nat::NatDevice>(nat_cfg, pool,
                                                    rng_.fork());
        isp.cgn = nat.get();
        edge = nat.get();
        I_.nats_.push_back(std::move(nat));
      }
      I_.net.set_middlebox(isp.cgn_node, edge);
      for (const auto& a : pool)
        I_.net.register_address(a, isp.cgn_node, I_.net.root());

      // Scheduled restarts / pressure windows apply to carrier-grade
      // devices (the paper's CGN state flushes); phases are drawn per
      // device so the fleet does not reboot in lockstep.
      if (faults_on && (fplan.nat.restart_period_s > 0 ||
                        fplan.nat.pressure_period_s > 0))
        isp.cgn->set_fault_profile(
            fplan.nat,
            fplan.nat.restart_period_s > 0
                ? frng.uniform01() * fplan.nat.restart_period_s
                : 0.0,
            fplan.nat.pressure_period_s > 0
                ? frng.uniform01() * fplan.nat.pressure_period_s
                : 0.0);

      int d = prof.hop_distance;
      cpe_chain_bottom = I_.net.add_router_chain(
          isp.cgn_node, std::max(d - 2, 0), plan.info.name + "-acc");
      direct_chain_bottom = I_.net.add_router_chain(
          isp.cgn_node, std::max(d - 1, 0), plan.info.name + "-dir");

      // Internal addressing bases (one per configured range, plus the
      // routable block when the ISP is short on internal space).
      for (auto range : prof.internal_ranges)
        internal_bases.push_back(netcore::prefix_of(range).address());
      if (prof.routable_internal) {
        if (rng_.chance(0.3) && plans_.size() > 2) {
          // Space that is publicly routed — by somebody else.
          const AsPlan& victim = plans_[rng_.index(plans_.size() - 2)];
          internal_bases.push_back(victim.prefix.address());
        } else {
          auto block = netcore::Ipv4Prefix::parse(
              kUnroutedInternalBlocks[rng_.index(
                  std::size(kUnroutedInternalBlocks))]);
          internal_bases.push_back(block.address());
        }
      }
    }

    // Public access chain for non-CGN subscribers.
    sim::NodeId public_chain_bottom = I_.net.add_router_chain(
        agg_bottom, static_cast<int>(rng_.uniform(1, 3)),
        plan.info.name + "-pub");

    // Subscribers: plan first (all RNG draws, in the order eager
    // construction used to make them), then materialize. Eager worlds
    // materialize right here, reproducing the historical node-id/name
    // sequence exactly; lazy worlds stop at the plan.
    LazyWorld::IspLines L;
    L.as_name = plan.info.name;
    L.cpe_chain = cpe_chain_bottom;
    L.direct_chain = direct_chain_bottom;
    L.public_chain = public_chain_bottom;
    L.silent_bases = internal_bases;
    L.n_subs = n_subs;
    if (plan.cgn && !internal_bases.empty() &&
        direct_chain_bottom != sim::kNoNode)
      L.silent_planned = cfg.silent_lines_per_cgn_as;

    // Injected-unresponsive BitTorrent peers: the client's inbound UDP is
    // discarded (app crashed / strict host firewall) while its own outbound
    // still refreshes NAT state — the peers the crawler probes and then
    // discards as dead.
    const double deaf_rate =
        faults_on
            ? fplan.peers.rate_for(static_cast<std::uint32_t>(plan.info.asn))
            : 0.0;
    int home_id = 0;
    for (std::size_t i = 0; i < n_subs; ++i) {
      LazyWorld::LinePlan lp;
      lp.index = static_cast<int>(i);
      lp.home_id = home_id++;
      lp.has_bt = i < bt_count;
      lp.behind_cgn =
          plan.cgn && rng_.chance(isp.cgn_profile->cgn_subscriber_fraction);

      // The line-side address handed out by the ISP: either a public
      // address or a CGN-internal one (each subscriber its own /24, which
      // is what CGN-scale address management looks like and what the
      // Figure 5 diversity heuristic keys on).
      if (lp.behind_cgn) {
        netcore::Ipv4Address base =
            internal_bases[i % internal_bases.size()];
        lp.line_addr = netcore::Ipv4Address(
            base.value() + static_cast<std::uint32_t>(i + 1) * 256 + 2);
      } else {
        lp.line_addr = next_public_address(pool_carver);
      }

      if (lp.behind_cgn && isp.transition != nat::TranslatorMode::nat44) {
        // v6 line: the element swap draws only the per-line CLAT share,
        // from the AS's independent v6 substream.
        lp.v6_mode = isp.transition;
        if (isp.transition == nat::TranslatorMode::nat64)
          lp.has_clat = v6rng_.chance(isp.cgn_profile->clat_fraction);
      } else {
        lp.no_cpe =
            plan.info.cellular ||
            (lp.behind_cgn && rng_.chance(isp.cgn_profile->no_cpe_fraction));
        if (!lp.no_cpe) {
          lp.cpe_model = &sample_cpe(rng_);
          // rng_.fork() == Rng(engine_()); record the engine draw so the
          // materializer can reconstruct the identical device RNG.
          lp.cpe_seed = rng_.engine()();
        }
      }
      const bool has_cpe = lp.cpe_model != nullptr;

      // One BT client's draws, in attach_bt_client's order. The DhtNode
      // constructor call evaluated its arguments right-to-left (GCC):
      // the rng_.fork() engine draw lands before the node-id draw.
      auto plan_bt = [&](LazyWorld::BtPlan& bp) {
        bp.sloppy = rng_.chance(cfg.sloppy_peer_fraction);
        bp.dht_seed = rng_.engine()();
        bp.dht_id = dht::NodeId160::random(rng_);
        if (has_cpe && lp.cpe_model->upnp)
          bp.upnp_map = rng_.chance(cfg.upnp_portmap_fraction);
        bp.deaf = deaf_rate > 0 && frng.chance(deaf_rate);
      };
      if (lp.has_bt) plan_bt(lp.bt);
      lp.multi_home = lp.has_bt && !plan.info.cellular && has_cpe &&
                      rng_.chance(cfg.multi_device_home_fraction);
      if (lp.multi_home) plan_bt(lp.second);

      lp.slot = static_cast<std::uint32_t>(isp.subscribers.size());
      const auto line_no = static_cast<std::uint32_t>(L.lines.size());
      // Placeholder slots keep isp.subscribers at its final size (stable
      // references, correct campaign shuffle domain) before any home is
      // built; plan-known fields are pre-filled for callers that only
      // classify lines.
      Subscriber& placeholder = isp.subscribers.emplace_back();
      placeholder.home_id = lp.home_id;
      placeholder.behind_cgn = lp.behind_cgn;
      placeholder.v6_mode = lp.v6_mode;
      L.slot_to_line.push_back(line_no);
      if (lp.multi_home) {
        Subscriber& second = isp.subscribers.emplace_back();
        second.home_id = lp.home_id;
        second.behind_cgn = lp.behind_cgn;
        L.slot_to_line.push_back(line_no);
      }
      L.lines.push_back(std::move(lp));
    }

    const std::size_t isp_slot = I_.isps.size();
    I_.isp_index[isp.asn] = isp_slot;
    I_.isps.push_back(std::move(isp));
    L.isp_slot = isp_slot;

    LazyWorld& lw = *I_.lazy_;
    lw.by_asn[I_.isps.back().asn] = lw.isps.size();
    lw.isps.push_back(std::move(L));
    if (!lw.defer) {
      LazyWorld::IspLines& stored = lw.isps.back();
      for (LazyWorld::LinePlan& line : stored.lines)
        lw.materialize_home(I_, stored, line);
    }
  }

  netcore::Ipv4Address next_public_address(netcore::PrefixCarver& carver) {
    // One /28 carve per 14 addresses, amortized through a small cache.
    if (public_cache_.empty()) {
      netcore::Ipv4Prefix block = carver.next(28);
      for (std::uint64_t i = 1; i + 1 < block.size(); ++i)
        public_cache_.push_back(block.at(i));
    }
    netcore::Ipv4Address a = public_cache_.back();
    public_cache_.pop_back();
    return a;
  }

  Internet& I_;
  sim::Rng rng_;
  /// Per-AS v6 substream; re-seeded at each CGN AS in v6-enabled worlds
  /// (apply_transition_profile draws first, then the per-line CLAT draws).
  sim::Rng v6rng_{0};
  netcore::PrefixCarver carver_{netcore::Ipv4Prefix::parse("16.0.0.0/4")};
  std::vector<AsPlan> plans_;
  std::vector<netcore::Ipv4Address> public_cache_;
};

Internet::Internet(const InternetConfig& cfg) : config(cfg), rng_(cfg.seed) {
  obs::ScopedPhase phase("build_internet");
  lazy_ = std::make_unique<LazyWorld>();
  lazy_->defer = cfg.lazy_build;
  faults = std::make_unique<fault::FaultInjector>(cfg.fault_plan);
  // Attach only an active injector: clean runs keep a null pointer on the
  // delivery path and build output identical to a no-fault binary.
  if (faults->active()) net.set_fault_injector(faults.get());
  InternetBuilder(*this).build();
}

Internet::~Internet() = default;

bool Internet::lazy() const noexcept { return lazy_ && lazy_->defer; }

const std::vector<dht::DhtNode*>& Internet::bt_peers() {
  if (lazy()) {
    // Materialize every BT home in plan order, then rebuild the pointer
    // list by walking subscriber slots — primaries before their second
    // device, lines in order, ISPs in order: exactly the eager push order,
    // however the homes were interleaved with other on-demand builds.
    for (LazyWorld::IspLines& L : lazy_->isps)
      for (LazyWorld::LinePlan& lp : L.lines)
        if (lp.has_bt) lazy_->materialize_home(*this, L, lp);
    bt_peer_ptrs_.clear();
    for (IspInstance& isp : isps)
      for (Subscriber& sub : isp.subscribers)
        if (sub.bt_client) bt_peer_ptrs_.push_back(sub.bt_client);
  }
  return bt_peer_ptrs_;
}

Subscriber& Internet::ensure_line(IspInstance& isp, std::size_t slot) {
  if (lazy()) {
    auto it = lazy_->by_asn.find(isp.asn);
    if (it != lazy_->by_asn.end()) {
      LazyWorld::IspLines& L = lazy_->isps[it->second];
      if (slot < L.slot_to_line.size())
        lazy_->materialize_home(*this, L, L.lines[L.slot_to_line[slot]]);
    }
  }
  return isp.subscribers[slot];
}

void Internet::materialize_all() {
  if (!lazy()) return;
  for (LazyWorld::IspLines& L : lazy_->isps)
    for (LazyWorld::LinePlan& lp : L.lines)
      lazy_->materialize_home(*this, L, lp);
}

std::size_t Internet::materialize_silent_lines(IspInstance& isp) {
  if (!lazy_) return 0;
  auto it = lazy_->by_asn.find(isp.asn);
  if (it == lazy_->by_asn.end()) return 0;
  LazyWorld::IspLines& L = lazy_->isps[it->second];
  // Silent lines share the real lines' addressing formula; their indices
  // start past n_subs, so the blocks never collide with an instrumented
  // line whatever the base rotation.
  for (; L.silent_built < L.silent_planned; ++L.silent_built) {
    const std::size_t j = L.n_subs + L.silent_built;
    netcore::Ipv4Address base = L.silent_bases[j % L.silent_bases.size()];
    netcore::Ipv4Address addr(
        base.value() + static_cast<std::uint32_t>(j + 1) * 256 + 2);
    sim::NodeId dev = net.add_node(
        L.direct_chain, L.as_name + "-sln" + std::to_string(L.silent_built));
    net.add_local_address(dev, addr);
    net.register_address(addr, dev, isp.cgn_node);
    auto demux = std::make_unique<sim::PortDemux>();
    demux->attach(net, dev);
    demuxes_.push_back(std::move(demux));
  }
  return L.silent_built;
}

std::size_t Internet::planned_subscriber_count() const {
  std::size_t n = 0;
  for (const IspInstance& isp : isps) n += isp.subscribers.size();
  if (lazy_)
    for (const LazyWorld::IspLines& L : lazy_->isps) n += L.silent_planned;
  return n;
}

std::unique_ptr<Internet> build_internet(const InternetConfig& config) {
  return std::make_unique<Internet>(config);
}

}  // namespace cgn::scenario
