// Measurement-campaign drivers over a built Internet:
//
//  * run_bittorrent_phase — peers bootstrap into the DHT, announce to the
//    tracker (joining global and AS-local swarms) and run maintenance
//    rounds; hairpinned validation traffic is what seeds internal-address
//    knowledge.
//  * run_crawl_phase — the §4.1 crawler walks the DHT and bt_pings learned
//    peers, producing the CrawlDataset.
//  * run_netalyzr_campaign — per covered AS, runs Netalyzr sessions
//    (address + port tests always; STUN and TTL enumeration on configurable
//    subsets, mirroring the paper's staggered test deployment).
#pragma once

#include <memory>
#include <vector>

#include "crawler/dht_crawler.hpp"
#include "fault/retry.hpp"
#include "netalyzr/client.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::scenario {

struct BitTorrentPhaseConfig {
  int maintenance_rounds = 12;
  double round_interval_s = 5.0;
  /// Global swarms are sized so each holds roughly this many peers.
  std::size_t peers_per_swarm = 60;
  int swarms_per_peer = 2;
  /// Probability that a peer also joins its ISP's regional-content swarm —
  /// the reason peers behind the same CGN end up contacting each other.
  double local_swarm_join = 0.85;
  int announce_rounds = 5;
};

void run_bittorrent_phase(Internet& internet,
                          const BitTorrentPhaseConfig& config = {});

struct CrawlPhaseConfig {
  crawler::CrawlConfig crawl;
  /// Frontier peers processed per step; a maintenance burst for a slice of
  /// the swarm runs between steps, keeping NAT mappings warm.
  std::size_t peers_per_step = 500;
  double step_interval_s = 0.0;
  std::size_t max_peers = 1'000'000;
  /// Workers for the bt_ping sweep: 0 reads CGN_THREADS (default serial).
  /// Results are identical for every worker count (see cgn::par).
  std::size_t threads = 0;
  /// Supervision for the ping-sweep shards (retry budget, quarantine,
  /// deadlines, checkpoint path). Campaign identity fields
  /// (campaign_kind/world_seed/plan_hash/faults/salt) are filled by the
  /// driver — callers set only the policy knobs.
  super::SupervisorConfig supervise;
};

/// Runs a full crawl (including the bt_ping sweep) and returns the crawler.
/// `report_out`, when non-null, receives the ping sweep's per-shard
/// supervision report (which shards were retried/quarantined/resumed).
std::unique_ptr<crawler::DhtCrawler> run_crawl_phase(
    Internet& internet, const CrawlPhaseConfig& config = {},
    super::CampaignReport* report_out = nullptr);

struct NetalyzrCampaignConfig {
  /// Fraction of sessions that additionally run the TTL enumeration test
  /// (the paper deployed it earlier than STUN; both saw subsets).
  double enum_fraction = 0.30;
  double stun_fraction = 0.50;
  netalyzr::TtlEnumConfig enum_config;
  /// Runs the Big-NAT transition battery in every session. Enable only in
  /// v6-transition worlds: the battery draws client RNG, so default-world
  /// campaigns leave it off to stay byte-identical with pre-v6 builds.
  bool transition_battery = false;
  netalyzr::TransitionBatteryConfig transition_config;
  double inter_session_gap_s = 300.0;  ///< idle gap between sessions
  /// Probe retransmission policy handed to every NetalyzrClient. Default:
  /// fire once, as the original client did.
  fault::RetryPolicy retry;
  /// Workers for the per-ISP session shards: 0 reads CGN_THREADS (default
  /// serial). Results are identical for every worker count (see cgn::par).
  std::size_t threads = 0;
  /// Supervision for the per-ISP shards (retry budget, quarantine,
  /// deadlines, checkpoint path). Identity fields are filled by the driver.
  super::SupervisorConfig supervise;
};

/// Runs the Netalyzr campaign. `report_out`, when non-null, receives the
/// per-shard supervision report. A quarantined (or deadline-aborted) shard
/// contributes no sessions: the campaign completes with degraded coverage
/// instead of aborting (see analysis::MeasurementCoverage).
[[nodiscard]] std::vector<netalyzr::SessionResult> run_netalyzr_campaign(
    Internet& internet, const NetalyzrCampaignConfig& config = {},
    super::CampaignReport* report_out = nullptr);

}  // namespace cgn::scenario
