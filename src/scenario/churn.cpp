#include "scenario/churn.hpp"

namespace cgn::scenario {

ChurnStats apply_renumbering_event(Internet& internet,
                                   const ChurnConfig& config) {
  ChurnStats stats;
  // The renumber draw below is made per *materialized* public CPE line;
  // build everything first so a lazy world consumes the stream exactly as
  // an eager one does.
  internet.materialize_all();
  sim::Rng rng = internet.fork_rng();
  for (int event = 0; event < config.events; ++event) {
    for (IspInstance& isp : internet.isps) {
      for (Subscriber& sub : isp.subscribers) {
        // Only public CPE lines renumber this way; CGN-internal lines keep
        // their internal address (the CGN's pool is the ISP's concern).
        if (sub.behind_cgn || !sub.cpe || sub.cpe_node == sim::kNoNode)
          continue;
        if (!rng.chance(config.renumber_fraction)) continue;
        if (isp.spare_used + 2 >= isp.spare_block.size()) continue;
        netcore::Ipv4Address old_addr = sub.cpe->external_pool().front();
        netcore::Ipv4Address new_addr =
            isp.spare_block.at(++isp.spare_used);
        if (!sub.cpe->renumber_external(old_addr, new_addr)) continue;
        internet.net.unregister_address(old_addr, sub.cpe_node,
                                        internet.net.root());
        internet.net.register_address(new_addr, sub.cpe_node,
                                      internet.net.root());
        ++stats.lines_renumbered;
      }
    }
    ++stats.events_applied;
  }
  return stats;
}

}  // namespace cgn::scenario
