// Behavioural profiles of the devices that populate the synthetic Internet:
// a catalog of CPE models and a sampler for CGN configurations. All
// distributions are calibrated to the paper's measured marginals (Figures
// 7-9, 12, 13 and Table 6) — the reproduction *generates* NAT behaviour from
// these and then re-measures it end-to-end.
#pragma once

#include <string>
#include <vector>

#include "nat/nat_types.hpp"
#include "netcore/ipv4.hpp"
#include "netcore/ipv6.hpp"
#include "sim/rng.hpp"

namespace cgn::scenario {

/// IPv6-transition scenario knobs (DESIGN.md §14). Disabled by default: a
/// v4-only world draws no v6 randomness and builds byte-identical to a
/// pre-v6 binary.
struct V6ScenarioConfig {
  bool enabled = false;
  /// Transition-mechanism mix among CGN ASes. Cellular carriers lean
  /// NAT64/464XLAT (the mobile pattern); fixed-line ISPs that migrate
  /// mostly pick DS-Lite. The remainder stays NAT444.
  double cellular_nat64_fraction = 0.55;
  double cellular_dslite_fraction = 0.08;
  double fixed_nat64_fraction = 0.10;
  double fixed_dslite_fraction = 0.28;
  /// Among a NAT64 carrier's lines, the share provisioned with a CLAT
  /// (making the line 464XLAT); the rest run a bare v6-only stack.
  double cellular_clat_fraction = 0.85;
  double fixed_clat_fraction = 0.45;
  /// Probability a NAT64 AS announces the Well-Known Prefix 64:ff9b::/96;
  /// otherwise a network-specific prefix with a varied RFC 6052 length.
  double well_known_pref64_fraction = 0.50;
};

/// One CPE hardware model (Figure 8(b) keys sessions by UPnP model string).
struct CpeModel {
  std::string name;
  nat::MappingType mapping = nat::MappingType::port_address_restricted;
  nat::PortAllocation allocation = nat::PortAllocation::preservation;
  bool upnp = false;
  bool hairpinning = false;
  bool hairpin_preserve_source = false;
  double udp_timeout_s = 65.0;
  netcore::Ipv4Prefix lan_prefix;  ///< block the CPE assigns devices from
  double weight = 1.0;             ///< market share for sampling
};

/// The CPE model catalog (a fixed, deterministic market).
[[nodiscard]] const std::vector<CpeModel>& cpe_catalog();

/// Samples a model by market share.
[[nodiscard]] const CpeModel& sample_cpe(sim::Rng& rng);

/// Ground-truth configuration of one ISP's CGN deployment.
struct CgnProfile {
  /// Reserved ranges used internally; >= 1 entry unless routable_internal
  /// is the sole range.
  std::vector<netcore::ReservedRange> internal_ranges;
  /// Some ISPs (mostly cellular) are so short on internal space they deploy
  /// nominally-public space inside (Figure 7(b)).
  bool routable_internal = false;

  /// Hops from the subscriber device to the CGN (Figure 11: 2-6 typical
  /// non-cellular, 1-12 cellular).
  int hop_distance = 3;

  nat::MappingType mapping = nat::MappingType::port_address_restricted;
  nat::PortAllocation allocation = nat::PortAllocation::random;
  std::uint32_t chunk_size = 4096;  ///< when allocation == chunk_random
  nat::Pooling pooling = nat::Pooling::paired;
  double udp_timeout_s = 35.0;
  bool hairpinning = true;
  bool hairpin_preserve_source = false;

  /// Fraction of subscribers the ISP has (so far) moved behind the CGN —
  /// the paper stresses that most deployments are partial.
  double cgn_subscriber_fraction = 1.0;
  /// Fraction of CGN subscribers connected without their own CPE NAT
  /// (carrier NAT44, subscriber archetype B of Figure 2).
  double no_cpe_fraction = 0.0;

  /// External pool size (public IPv4 addresses of the CGN).
  int pool_size = 16;

  // --- IPv6 transition (DESIGN.md §14) ------------------------------------
  /// Translation mechanism at the carrier edge. nat44 == plain NAT444; set
  /// by apply_transition_profile, only in v6-enabled worlds.
  nat::TranslatorMode transition = nat::TranslatorMode::nat44;
  /// NAT64 deployments: share of lines provisioned with a CLAT (464XLAT).
  double clat_fraction = 0.0;
  /// NAT64 deployments: the carrier's NAT64/DNS64 translation prefix.
  netcore::Ipv6Prefix pref64;
};

/// Samples a CGN profile for a cellular or non-cellular ISP.
[[nodiscard]] CgnProfile sample_cgn_profile(sim::Rng& rng, bool cellular);

/// Draws the IPv6-transition deployment for one CGN AS from `v6rng` — an
/// independent substream keyed on (world seed, asn), so enabling v6 never
/// perturbs the main builder RNG. Picks the mechanism and (for NAT64) the
/// pref64 — unique per AS unless the Well-Known Prefix is drawn — and the
/// CLAT share; cellular transition carriers additionally re-draw the
/// MNO-flavoured mapping-lifetime and port-allocation marginals (the
/// paper's Table 6/7 mobile columns: tighter timeouts, more random and
/// chunked allocation than the fixed fleet).
void apply_transition_profile(CgnProfile& p, sim::Rng& v6rng, bool cellular,
                              std::uint32_t asn, const V6ScenarioConfig& cfg);

}  // namespace cgn::scenario
