// Behavioural profiles of the devices that populate the synthetic Internet:
// a catalog of CPE models and a sampler for CGN configurations. All
// distributions are calibrated to the paper's measured marginals (Figures
// 7-9, 12, 13 and Table 6) — the reproduction *generates* NAT behaviour from
// these and then re-measures it end-to-end.
#pragma once

#include <string>
#include <vector>

#include "nat/nat_types.hpp"
#include "netcore/ipv4.hpp"
#include "sim/rng.hpp"

namespace cgn::scenario {

/// One CPE hardware model (Figure 8(b) keys sessions by UPnP model string).
struct CpeModel {
  std::string name;
  nat::MappingType mapping = nat::MappingType::port_address_restricted;
  nat::PortAllocation allocation = nat::PortAllocation::preservation;
  bool upnp = false;
  bool hairpinning = false;
  bool hairpin_preserve_source = false;
  double udp_timeout_s = 65.0;
  netcore::Ipv4Prefix lan_prefix;  ///< block the CPE assigns devices from
  double weight = 1.0;             ///< market share for sampling
};

/// The CPE model catalog (a fixed, deterministic market).
[[nodiscard]] const std::vector<CpeModel>& cpe_catalog();

/// Samples a model by market share.
[[nodiscard]] const CpeModel& sample_cpe(sim::Rng& rng);

/// Ground-truth configuration of one ISP's CGN deployment.
struct CgnProfile {
  /// Reserved ranges used internally; >= 1 entry unless routable_internal
  /// is the sole range.
  std::vector<netcore::ReservedRange> internal_ranges;
  /// Some ISPs (mostly cellular) are so short on internal space they deploy
  /// nominally-public space inside (Figure 7(b)).
  bool routable_internal = false;

  /// Hops from the subscriber device to the CGN (Figure 11: 2-6 typical
  /// non-cellular, 1-12 cellular).
  int hop_distance = 3;

  nat::MappingType mapping = nat::MappingType::port_address_restricted;
  nat::PortAllocation allocation = nat::PortAllocation::random;
  std::uint32_t chunk_size = 4096;  ///< when allocation == chunk_random
  nat::Pooling pooling = nat::Pooling::paired;
  double udp_timeout_s = 35.0;
  bool hairpinning = true;
  bool hairpin_preserve_source = false;

  /// Fraction of subscribers the ISP has (so far) moved behind the CGN —
  /// the paper stresses that most deployments are partial.
  double cgn_subscriber_fraction = 1.0;
  /// Fraction of CGN subscribers connected without their own CPE NAT
  /// (carrier NAT44, subscriber archetype B of Figure 2).
  double no_cpe_fraction = 0.0;

  /// External pool size (public IPv4 addresses of the CGN).
  int pool_size = 16;
};

/// Samples a CGN profile for a cellular or non-cellular ISP.
[[nodiscard]] CgnProfile sample_cgn_profile(sim::Rng& rng, bool cellular);

}  // namespace cgn::scenario
