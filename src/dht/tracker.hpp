// A BitTorrent tracker: peers announce their swarm membership and receive a
// sample of other members' contact information. Because the tracker sits on
// the public Internet, the endpoints it records and redistributes are the
// peers' NAT-external endpoints — the starting point of the hairpin chain
// that ultimately leaks internal addresses into the DHT (§4.1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dht/messages.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::dht {

class TrackerServer {
 public:
  static constexpr std::uint16_t kPort = 6969;

  TrackerServer(sim::NodeId host, netcore::Ipv4Address address, sim::Rng rng,
                std::size_t reply_sample = 25)
      : host_(host), address_(address), rng_(std::move(rng)),
        reply_sample_(reply_sample) {}

  void install(sim::Network& net);

  [[nodiscard]] netcore::Endpoint endpoint() const noexcept {
    return {address_, kPort};
  }
  [[nodiscard]] std::size_t swarm_count() const noexcept {
    return swarms_.size();
  }
  [[nodiscard]] std::size_t swarm_size(std::uint64_t swarm) const {
    auto it = swarms_.find(swarm);
    return it == swarms_.end() ? 0 : it->second.size();
  }

 private:
  void handle(sim::Network& net, const sim::Packet& pkt);

  sim::NodeId host_;
  netcore::Ipv4Address address_;
  sim::Rng rng_;
  std::size_t reply_sample_;
  std::unordered_map<std::uint64_t, std::vector<Contact>> swarms_;
};

}  // namespace cgn::dht
