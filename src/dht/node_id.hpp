// 160-bit BitTorrent DHT node identifiers and the Kademlia XOR metric.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/rng.hpp"

namespace cgn::dht {

/// A 160-bit DHT node identifier (BEP-5), big-endian byte order.
class NodeId160 {
 public:
  using Bytes = std::array<std::uint8_t, 20>;

  constexpr NodeId160() = default;
  constexpr explicit NodeId160(const Bytes& bytes) : bytes_(bytes) {}

  /// Uniformly random id, as real clients self-assign.
  [[nodiscard]] static NodeId160 random(sim::Rng& rng);

  [[nodiscard]] const Bytes& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::string to_hex() const;

  /// XOR distance to `other` (also 160 bits).
  [[nodiscard]] Bytes distance_to(const NodeId160& other) const noexcept;

  /// True when `this` is strictly closer to `target` than `other` is
  /// (lexicographic comparison of the XOR distances, per Kademlia).
  [[nodiscard]] bool closer_to(const NodeId160& target,
                               const NodeId160& other) const noexcept;

  /// Index of the highest differing bit (0 = MSB); 160 when ids are equal.
  /// This is the classic k-bucket index.
  [[nodiscard]] int bucket_index(const NodeId160& other) const noexcept;

  auto operator<=>(const NodeId160&) const = default;

 private:
  Bytes bytes_{};
};

}  // namespace cgn::dht

template <>
struct std::hash<cgn::dht::NodeId160> {
  std::size_t operator()(const cgn::dht::NodeId160& id) const noexcept {
    std::uint64_t h = 0;
    for (std::uint8_t b : id.bytes()) h = h * 1099511628211ull + b;
    return static_cast<std::size_t>(h);
  }
};
