// BitTorrent DHT wire messages (the BEP-5 subset the paper's methodology
// uses: ping/pong for reachability validation and find_nodes for peer-list
// harvesting).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "dht/node_id.hpp"
#include "netcore/ipv4.hpp"

namespace cgn::dht {

/// Contact information for one peer, exactly what find_nodes responses carry:
/// the peer's id plus the IP:port the responding node has on file. When the
/// responding node sits behind the same NAT as the contact, this endpoint can
/// be an *internal* address — the leak the paper's crawler harvests.
struct Contact {
  NodeId160 id;
  netcore::Endpoint endpoint;

  bool operator==(const Contact&) const = default;
};

struct PingMsg {
  std::uint64_t tx = 0;
  NodeId160 sender;
};

struct PongMsg {
  std::uint64_t tx = 0;
  NodeId160 sender;
};

struct FindNodesMsg {
  std::uint64_t tx = 0;
  NodeId160 sender;
  NodeId160 target;
};

/// Response to FindNodesMsg: up to kFindNodesFanout closest contacts.
struct NodesMsg {
  std::uint64_t tx = 0;
  NodeId160 sender;
  std::vector<Contact> contacts;
};

/// BEP-5: find_node responses carry the K=8 closest nodes.
inline constexpr std::size_t kFindNodesFanout = 8;

/// Tracker announce (UDP-tracker style): "I participate in swarm X". The
/// tracker records the *observed* source endpoint — i.e. the peer's
/// NAT-external address — and returns a sample of swarm members. This is how
/// peers behind the same CGN first learn about each other.
struct AnnounceMsg {
  std::uint64_t tx = 0;
  NodeId160 sender;
  std::uint64_t swarm = 0;
};

struct AnnounceReply {
  std::uint64_t tx = 0;
  std::uint64_t swarm = 0;
  std::vector<Contact> peers;
};

using Message = std::variant<PingMsg, PongMsg, FindNodesMsg, NodesMsg,
                             AnnounceMsg, AnnounceReply>;

}  // namespace cgn::dht
