#include "dht/tracker.hpp"

#include <algorithm>

namespace cgn::dht {

void TrackerServer::install(sim::Network& net) {
  net.add_local_address(host_, address_);
  net.register_address(address_, host_, net.root());
  net.set_receiver(host_, [this](sim::Network& n, const sim::Packet& p) {
    handle(n, p);
  });
}

void TrackerServer::handle(sim::Network& net, const sim::Packet& pkt) {
  const auto* msg = std::any_cast<Message>(&pkt.payload);
  if (!msg) return;
  const auto* announce = std::get_if<AnnounceMsg>(msg);
  if (!announce) return;

  auto& members = swarms_[announce->swarm];
  Contact self{announce->sender, pkt.src};

  // Sample up to reply_sample_ members (excluding the announcer itself).
  AnnounceReply reply{announce->tx, announce->swarm, {}};
  if (!members.empty()) {
    std::size_t want = std::min(reply_sample_, members.size());
    for (std::size_t i = 0; i < want * 3 && reply.peers.size() < want; ++i) {
      const Contact& c = members[rng_.index(members.size())];
      if (c.id == announce->sender) continue;
      if (std::find(reply.peers.begin(), reply.peers.end(), c) !=
          reply.peers.end())
        continue;
      reply.peers.push_back(c);
    }
  }

  // Register (or refresh) the announcer.
  auto it = std::find_if(members.begin(), members.end(), [&](const Contact& c) {
    return c.id == announce->sender;
  });
  if (it == members.end())
    members.push_back(self);
  else
    it->endpoint = self.endpoint;  // NAT rebinding updates the endpoint

  sim::Packet out = sim::Packet::udp(endpoint(), pkt.src);
  out.payload = Message{std::move(reply)};
  net.send(std::move(out), host_);
}

}  // namespace cgn::dht
