// Behavioural model of a BitTorrent DHT participant.
//
// Nodes maintain a contact table, validate learned contacts with ping/pong
// before propagating them (the property the paper's calibration confirmed
// for 98.7% of real peers), answer find_nodes with the XOR-closest contacts,
// and — crucially for the reproduction — store whatever *observed* source
// endpoint a packet arrives with. When a NAT hairpins traffic between two
// peers behind it and preserves the internal source, the observed endpoint
// is an internal address, which the node will happily validate (the ping
// works, internally) and later leak to the crawler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/messages.hpp"
#include "flat/flat.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"

namespace cgn::dht {

struct DhtNodeConfig {
  std::size_t table_capacity = 200;
  /// Unvalidated candidates pinged per maintenance round.
  int pings_per_round = 8;
  /// Random-target find_nodes lookups issued per maintenance round.
  int lookups_per_round = 1;
  /// Peers a lookup is sent to.
  int lookup_fanout = 3;
  /// Seconds after which an unanswered ping is abandoned.
  sim::SimTime ping_timeout_s = 30.0;
  /// BEP-5-conformant nodes only propagate validated contacts. The paper
  /// measured ~1.3% of real peers violating this.
  bool validate_before_propagate = true;
  /// Contact tracker-announced swarm peers immediately (as a client opening
  /// peer connections would) instead of waiting for table maintenance.
  bool ping_announce_peers = true;
  /// Ping-back previously unknown senders immediately to validate them.
  bool ping_new_candidates = true;
};

/// Per-node counters for tests and calibration.
struct DhtNodeStats {
  std::uint64_t pings_received = 0;
  std::uint64_t find_nodes_received = 0;
  std::uint64_t pongs_received = 0;
  std::uint64_t nodes_replies_received = 0;
  std::uint64_t contacts_validated = 0;
};

class DhtNode {
 public:
  /// `local_endpoint` is the node's own socket address (one fixed UDP port,
  /// as real clients use); `host` is its node in the simulated network.
  DhtNode(NodeId160 id, netcore::Endpoint local_endpoint, sim::NodeId host,
          DhtNodeConfig config, sim::Rng rng);

  /// Packet receiver; wire it (via a port demux) to the host node.
  void handle(sim::Network& net, const sim::Packet& pkt);

  /// Contacts the bootstrap server: ping + find_nodes(own id).
  void bootstrap(sim::Network& net, const netcore::Endpoint& server);

  /// One activity round: validate candidates, run random-target lookups.
  /// Drives both DHT graph formation and NAT mapping keep-alive.
  void run_maintenance(sim::Network& net);

  /// Injects a contact learned out-of-band (e.g. LAN multicast local peer
  /// discovery). It still needs ping validation before being propagated.
  /// Pinned contacts are never evicted — modelling local peer discovery's
  /// periodic re-announcement on the LAN.
  void learn_contact(const Contact& contact, bool pinned = false);

  /// Announces membership in `swarm` to a tracker; the reply's peer sample
  /// joins the candidate table (and gets validated by later maintenance).
  void announce(sim::Network& net, const netcore::Endpoint& tracker,
                std::uint64_t swarm);

  [[nodiscard]] const NodeId160& id() const noexcept { return id_; }
  [[nodiscard]] const netcore::Endpoint& local_endpoint() const noexcept {
    return local_;
  }
  [[nodiscard]] sim::NodeId host() const noexcept { return host_; }
  [[nodiscard]] const DhtNodeStats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::size_t table_size() const noexcept {
    return contacts_.size();
  }
  [[nodiscard]] std::vector<Contact> validated_contacts() const;
  [[nodiscard]] std::vector<Contact> all_contacts() const;
  /// True when (id, endpoint) is in the table and validated.
  [[nodiscard]] bool knows_validated(const Contact& c) const;

 private:
  struct Pending {
    Contact contact;
    sim::SimTime sent_at = 0;
  };

  // Routing-table entry state, packed into one byte per contact.
  static constexpr std::uint8_t kValidated = 1;
  static constexpr std::uint8_t kPingInflight = 2;
  static constexpr std::uint8_t kPinned = 4;  ///< kept alive out-of-band
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  void send_message(sim::Network& net, const netcore::Endpoint& dst,
                    Message msg);
  void send_ping(sim::Network& net, const Contact& contact);
  void add_candidate(const Contact& contact, sim::SimTime now);
  void mark_validated(const Contact& contact, sim::SimTime now);
  [[nodiscard]] std::size_t find_index(const Contact& contact) const;
  [[nodiscard]] std::vector<Contact> closest(const NodeId160& target,
                                             std::size_t k,
                                             bool validated_only) const;

  NodeId160 id_;
  netcore::Endpoint local_;
  sim::NodeId host_;
  DhtNodeConfig config_;
  sim::Rng rng_;
  DhtNodeStats stats_;

  // Struct-of-arrays routing table: every hot scan (the identity probe on
  // each received packet, the closest-k filter, eviction) walks exactly the
  // column it needs — dense Contact records for comparisons, one flag byte
  // per entry for state filters — instead of striding over a padded AoS
  // entry. With millions of peers resident this is the difference between
  // the table fitting in cache-friendly columns and thrashing.
  std::vector<Contact> contacts_;
  std::vector<std::uint8_t> flags_;
  std::vector<sim::SimTime> last_seen_;
  flat::FlatMap<std::uint64_t, Pending> pending_;
  std::uint64_t next_tx_ = 1;
};

}  // namespace cgn::dht
