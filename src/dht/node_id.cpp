#include "dht/node_id.hpp"

namespace cgn::dht {

NodeId160 NodeId160::random(sim::Rng& rng) {
  Bytes b;
  for (auto& byte : b)
    byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
  return NodeId160(b);
}

std::string NodeId160::to_hex() const {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes_) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

NodeId160::Bytes NodeId160::distance_to(const NodeId160& other) const noexcept {
  Bytes d;
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = static_cast<std::uint8_t>(bytes_[i] ^ other.bytes_[i]);
  return d;
}

bool NodeId160::closer_to(const NodeId160& target,
                          const NodeId160& other) const noexcept {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    auto da = static_cast<std::uint8_t>(bytes_[i] ^ target.bytes_[i]);
    auto db = static_cast<std::uint8_t>(other.bytes_[i] ^ target.bytes_[i]);
    if (da != db) return da < db;
  }
  return false;
}

int NodeId160::bucket_index(const NodeId160& other) const noexcept {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    auto d = static_cast<std::uint8_t>(bytes_[i] ^ other.bytes_[i]);
    if (d != 0) {
      int lead = 0;
      for (int bit = 7; bit >= 0; --bit) {
        if (d & (1u << bit)) break;
        ++lead;
      }
      return static_cast<int>(i) * 8 + lead;
    }
  }
  return 160;
}

}  // namespace cgn::dht
