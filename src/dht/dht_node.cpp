#include "dht/dht_node.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cgn::dht {

namespace {
// Aggregate DHT message volume across every simulated peer.
obs::Counter& g_messages_sent = obs::counter("dht.messages_sent");
obs::Counter& g_messages_received = obs::counter("dht.messages_received");
obs::Counter& g_contacts_validated = obs::counter("dht.contacts_validated");
}  // namespace

DhtNode::DhtNode(NodeId160 id, netcore::Endpoint local_endpoint,
                 sim::NodeId host, DhtNodeConfig config, sim::Rng rng)
    : id_(id), local_(local_endpoint), host_(host), config_(config),
      rng_(std::move(rng)) {}

void DhtNode::send_message(sim::Network& net, const netcore::Endpoint& dst,
                           Message msg) {
  sim::Packet pkt = sim::Packet::udp(local_, dst);
  pkt.payload = std::move(msg);
  g_messages_sent.inc();
  net.send(std::move(pkt), host_);
}

void DhtNode::send_ping(sim::Network& net, const Contact& contact) {
  std::uint64_t tx = next_tx_++;
  pending_[tx] = Pending{contact, net.clock().now()};
  send_message(net, contact.endpoint, PingMsg{tx, id_});
}

DhtNode::Entry* DhtNode::find_entry(const Contact& contact) {
  auto it = std::find_if(table_.begin(), table_.end(), [&](const Entry& e) {
    return e.contact == contact;
  });
  return it == table_.end() ? nullptr : &*it;
}

void DhtNode::add_candidate(const Contact& contact, sim::SimTime now) {
  if (contact.id == id_) return;  // never store ourselves
  if (Entry* e = find_entry(contact)) {
    e->last_seen = now;
    return;
  }
  if (table_.size() >= config_.table_capacity) {
    // Kademlia-style retention: validated (live) entries are kept; the
    // stalest unvalidated candidate makes room. Only when every entry is
    // validated does the stalest validated one rotate out.
    auto stalest = table_.end();
    for (auto it = table_.begin(); it != table_.end(); ++it) {
      if (it->pinned) continue;
      if (stalest == table_.end() ||
          (!it->validated && stalest->validated) ||
          (it->validated == stalest->validated &&
           it->last_seen < stalest->last_seen))
        stalest = it;
    }
    if (stalest == table_.end()) return;  // everything pinned: drop newcomer
    *stalest = Entry{contact, false, false, false, now};
    return;
  }
  table_.push_back(Entry{contact, false, false, false, now});
}

void DhtNode::mark_validated(const Contact& contact, sim::SimTime now) {
  if (Entry* e = find_entry(contact)) {
    if (!e->validated) {
      ++stats_.contacts_validated;
      g_contacts_validated.inc();
    }
    e->validated = true;
    e->ping_inflight = false;
    e->last_seen = now;
  } else {
    add_candidate(contact, now);
    if (Entry* fresh = find_entry(contact)) {
      fresh->validated = true;
      ++stats_.contacts_validated;
      g_contacts_validated.inc();
    }
  }
}

std::vector<Contact> DhtNode::closest(const NodeId160& target, std::size_t k,
                                      bool validated_only) const {
  std::vector<const Entry*> entries;
  entries.reserve(table_.size());
  for (const Entry& e : table_)
    if (e.validated || !validated_only) entries.push_back(&e);
  std::size_t n = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + n, entries.end(),
                    [&](const Entry* a, const Entry* b) {
                      return a->contact.id.closer_to(target, b->contact.id);
                    });
  std::vector<Contact> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(entries[i]->contact);
  return out;
}

void DhtNode::handle(sim::Network& net, const sim::Packet& pkt) {
  const Message* msg = std::any_cast<Message>(&pkt.payload);
  if (!msg) return;  // not a DHT packet
  g_messages_received.inc();
  const sim::SimTime now = net.clock().now();

  if (const auto* ping = std::get_if<PingMsg>(msg)) {
    ++stats_.pings_received;
    Contact sender{ping->sender, pkt.src};
    add_candidate(sender, now);
    send_message(net, pkt.src, PongMsg{ping->tx, id_});
    // Validate new senders right away (before churn can evict them). For a
    // hairpin-observed internal endpoint this ping-back is the step that
    // turns it into propagatable — leakable — contact information.
    if (config_.ping_new_candidates) {
      Entry* e = find_entry(sender);
      if (e && !e->validated && !e->ping_inflight) {
        e->ping_inflight = true;
        send_ping(net, sender);
      }
    }
    return;
  }
  if (const auto* pong = std::get_if<PongMsg>(msg)) {
    ++stats_.pongs_received;
    auto it = pending_.find(pong->tx);
    if (it == pending_.end()) return;
    Contact expected = it->second.contact;
    pending_.erase(it);
    mark_validated(expected, now);
    // A response arriving from a different endpoint than we targeted (e.g.
    // the internal-path reply of a peer behind the same NAT) teaches us an
    // additional endpoint for that peer.
    if (pkt.src != expected.endpoint)
      add_candidate(Contact{pong->sender, pkt.src}, now);
    return;
  }
  if (const auto* fn = std::get_if<FindNodesMsg>(msg)) {
    ++stats_.find_nodes_received;
    add_candidate(Contact{fn->sender, pkt.src}, now);
    auto contacts = closest(fn->target, kFindNodesFanout,
                            config_.validate_before_propagate);
    send_message(net, pkt.src, NodesMsg{fn->tx, id_, std::move(contacts)});
    return;
  }
  if (const auto* reply = std::get_if<AnnounceReply>(msg)) {
    for (const Contact& c : reply->peers) {
      add_candidate(c, now);
      // A BitTorrent client connects to swarm peers right away; the ping
      // doubles as DHT validation. When the peer is behind the same NAT,
      // this is the packet that hairpins and exposes internal endpoints.
      if (config_.ping_announce_peers) {
        Entry* e = find_entry(c);
        if (e && !e->validated && !e->ping_inflight) {
          e->ping_inflight = true;
          send_ping(net, c);
        }
      }
    }
    return;
  }
  if (const auto* nodes = std::get_if<NodesMsg>(msg)) {
    ++stats_.nodes_replies_received;
    auto it = pending_.find(nodes->tx);
    if (it != pending_.end()) {
      Contact expected = it->second.contact;
      pending_.erase(it);
      mark_validated(expected, now);
    }
    for (const Contact& c : nodes->contacts) add_candidate(c, now);
    return;
  }
}

void DhtNode::bootstrap(sim::Network& net, const netcore::Endpoint& server) {
  std::uint64_t tx = next_tx_++;
  // The bootstrap server has no node id we know a priori; use a zero-id
  // contact for pending-tracking purposes.
  pending_[tx] = Pending{Contact{NodeId160{}, server}, net.clock().now()};
  send_message(net, server, FindNodesMsg{tx, id_, id_});
}

void DhtNode::run_maintenance(sim::Network& net) {
  const sim::SimTime now = net.clock().now();
  // Abandon stale pings so candidates can be retried or evicted.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.sent_at > config_.ping_timeout_s) {
      if (Entry* e = find_entry(it->second.contact)) e->ping_inflight = false;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  // Validate unvalidated candidates. Index-based on purpose: the pong comes
  // back synchronously inside send_ping and its handler may add_candidate
  // (a same-NAT peer answering from its internal endpoint), growing table_
  // and invalidating any reference held across the call.
  int budget = config_.pings_per_round;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (budget <= 0) break;
    if (table_[i].validated || table_[i].ping_inflight) continue;
    table_[i].ping_inflight = true;
    const Contact contact = table_[i].contact;
    send_ping(net, contact);
    --budget;
  }

  // Random-target lookups keep the table populated and the NAT mapping warm.
  std::vector<Contact> validated = validated_contacts();
  if (validated.empty()) return;
  for (int i = 0; i < config_.lookups_per_round; ++i) {
    NodeId160 target = NodeId160::random(rng_);
    for (int f = 0; f < config_.lookup_fanout; ++f) {
      const Contact& peer = validated[rng_.index(validated.size())];
      std::uint64_t tx = next_tx_++;
      pending_[tx] = Pending{peer, now};
      send_message(net, peer.endpoint, FindNodesMsg{tx, id_, target});
    }
  }
}

void DhtNode::learn_contact(const Contact& contact, bool pinned) {
  add_candidate(contact, 0.0);
  if (pinned) {
    if (Entry* e = find_entry(contact)) e->pinned = true;
  }
}

void DhtNode::announce(sim::Network& net, const netcore::Endpoint& tracker,
                       std::uint64_t swarm) {
  send_message(net, tracker, AnnounceMsg{next_tx_++, id_, swarm});
}

std::vector<Contact> DhtNode::validated_contacts() const {
  std::vector<Contact> out;
  for (const Entry& e : table_)
    if (e.validated) out.push_back(e.contact);
  return out;
}

std::vector<Contact> DhtNode::all_contacts() const {
  std::vector<Contact> out;
  out.reserve(table_.size());
  for (const Entry& e : table_) out.push_back(e.contact);
  return out;
}

bool DhtNode::knows_validated(const Contact& c) const {
  auto it = std::find_if(table_.begin(), table_.end(), [&](const Entry& e) {
    return e.contact == c && e.validated;
  });
  return it != table_.end();
}

}  // namespace cgn::dht
