#include "dht/dht_node.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace cgn::dht {

namespace {
// Aggregate DHT message volume across every simulated peer.
obs::Counter& g_messages_sent = obs::counter("dht.messages_sent");
obs::Counter& g_messages_received = obs::counter("dht.messages_received");
obs::Counter& g_contacts_validated = obs::counter("dht.contacts_validated");
}  // namespace

DhtNode::DhtNode(NodeId160 id, netcore::Endpoint local_endpoint,
                 sim::NodeId host, DhtNodeConfig config, sim::Rng rng)
    : id_(id), local_(local_endpoint), host_(host), config_(config),
      rng_(std::move(rng)) {}

void DhtNode::send_message(sim::Network& net, const netcore::Endpoint& dst,
                           Message msg) {
  sim::Packet pkt = sim::Packet::udp(local_, dst);
  pkt.payload = std::move(msg);
  g_messages_sent.inc();
  net.send(std::move(pkt), host_);
}

void DhtNode::send_ping(sim::Network& net, const Contact& contact) {
  std::uint64_t tx = next_tx_++;
  pending_[tx] = Pending{contact, net.clock().now()};
  send_message(net, contact.endpoint, PingMsg{tx, id_});
}

std::size_t DhtNode::find_index(const Contact& contact) const {
  for (std::size_t i = 0; i < contacts_.size(); ++i)
    if (contacts_[i] == contact) return i;
  return kNotFound;
}

void DhtNode::add_candidate(const Contact& contact, sim::SimTime now) {
  if (contact.id == id_) return;  // never store ourselves
  if (std::size_t i = find_index(contact); i != kNotFound) {
    last_seen_[i] = now;
    return;
  }
  if (contacts_.size() >= config_.table_capacity) {
    // Kademlia-style retention: validated (live) entries are kept; the
    // stalest unvalidated candidate makes room. Only when every entry is
    // validated does the stalest validated one rotate out.
    std::size_t stalest = kNotFound;
    for (std::size_t i = 0; i < contacts_.size(); ++i) {
      if (flags_[i] & kPinned) continue;
      const bool validated = flags_[i] & kValidated;
      const bool stalest_validated =
          stalest != kNotFound && (flags_[stalest] & kValidated);
      if (stalest == kNotFound || (!validated && stalest_validated) ||
          (validated == stalest_validated &&
           last_seen_[i] < last_seen_[stalest]))
        stalest = i;
    }
    if (stalest == kNotFound) return;  // everything pinned: drop newcomer
    contacts_[stalest] = contact;
    flags_[stalest] = 0;
    last_seen_[stalest] = now;
    return;
  }
  contacts_.push_back(contact);
  flags_.push_back(0);
  last_seen_.push_back(now);
}

void DhtNode::mark_validated(const Contact& contact, sim::SimTime now) {
  if (std::size_t i = find_index(contact); i != kNotFound) {
    if (!(flags_[i] & kValidated)) {
      ++stats_.contacts_validated;
      g_contacts_validated.inc();
    }
    flags_[i] = static_cast<std::uint8_t>((flags_[i] | kValidated) &
                                          ~kPingInflight);
    last_seen_[i] = now;
  } else {
    add_candidate(contact, now);
    if (std::size_t fresh = find_index(contact); fresh != kNotFound) {
      flags_[fresh] |= kValidated;
      ++stats_.contacts_validated;
      g_contacts_validated.inc();
    }
  }
}

std::vector<Contact> DhtNode::closest(const NodeId160& target, std::size_t k,
                                      bool validated_only) const {
  std::vector<std::uint32_t> idx;
  idx.reserve(contacts_.size());
  for (std::size_t i = 0; i < contacts_.size(); ++i)
    if (!validated_only || (flags_[i] & kValidated))
      idx.push_back(static_cast<std::uint32_t>(i));
  std::size_t n = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + n, idx.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return contacts_[a].id.closer_to(target,
                                                       contacts_[b].id);
                    });
  std::vector<Contact> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(contacts_[idx[i]]);
  return out;
}

void DhtNode::handle(sim::Network& net, const sim::Packet& pkt) {
  const Message* msg = std::any_cast<Message>(&pkt.payload);
  if (!msg) return;  // not a DHT packet
  g_messages_received.inc();
  const sim::SimTime now = net.clock().now();

  if (const auto* ping = std::get_if<PingMsg>(msg)) {
    ++stats_.pings_received;
    Contact sender{ping->sender, pkt.src};
    add_candidate(sender, now);
    send_message(net, pkt.src, PongMsg{ping->tx, id_});
    // Validate new senders right away (before churn can evict them). For a
    // hairpin-observed internal endpoint this ping-back is the step that
    // turns it into propagatable — leakable — contact information.
    if (config_.ping_new_candidates) {
      std::size_t i = find_index(sender);
      if (i != kNotFound && !(flags_[i] & (kValidated | kPingInflight))) {
        flags_[i] |= kPingInflight;
        send_ping(net, sender);
      }
    }
    return;
  }
  if (const auto* pong = std::get_if<PongMsg>(msg)) {
    ++stats_.pongs_received;
    auto it = pending_.find(pong->tx);
    if (it == pending_.end()) return;
    Contact expected = it->second.contact;
    pending_.erase(pong->tx);
    mark_validated(expected, now);
    // A response arriving from a different endpoint than we targeted (e.g.
    // the internal-path reply of a peer behind the same NAT) teaches us an
    // additional endpoint for that peer.
    if (pkt.src != expected.endpoint)
      add_candidate(Contact{pong->sender, pkt.src}, now);
    return;
  }
  if (const auto* fn = std::get_if<FindNodesMsg>(msg)) {
    ++stats_.find_nodes_received;
    add_candidate(Contact{fn->sender, pkt.src}, now);
    auto contacts = closest(fn->target, kFindNodesFanout,
                            config_.validate_before_propagate);
    send_message(net, pkt.src, NodesMsg{fn->tx, id_, std::move(contacts)});
    return;
  }
  if (const auto* reply = std::get_if<AnnounceReply>(msg)) {
    for (const Contact& c : reply->peers) {
      add_candidate(c, now);
      // A BitTorrent client connects to swarm peers right away; the ping
      // doubles as DHT validation. When the peer is behind the same NAT,
      // this is the packet that hairpins and exposes internal endpoints.
      if (config_.ping_announce_peers) {
        std::size_t i = find_index(c);
        if (i != kNotFound && !(flags_[i] & (kValidated | kPingInflight))) {
          flags_[i] |= kPingInflight;
          send_ping(net, c);
        }
      }
    }
    return;
  }
  if (const auto* nodes = std::get_if<NodesMsg>(msg)) {
    ++stats_.nodes_replies_received;
    auto it = pending_.find(nodes->tx);
    if (it != pending_.end()) {
      Contact expected = it->second.contact;
      pending_.erase(nodes->tx);
      mark_validated(expected, now);
    }
    for (const Contact& c : nodes->contacts) add_candidate(c, now);
    return;
  }
}

void DhtNode::bootstrap(sim::Network& net, const netcore::Endpoint& server) {
  std::uint64_t tx = next_tx_++;
  // The bootstrap server has no node id we know a priori; use a zero-id
  // contact for pending-tracking purposes.
  pending_[tx] = Pending{Contact{NodeId160{}, server}, net.clock().now()};
  send_message(net, server, FindNodesMsg{tx, id_, id_});
}

void DhtNode::run_maintenance(sim::Network& net) {
  const sim::SimTime now = net.clock().now();
  // Abandon stale pings so candidates can be retried or evicted. Collect
  // first, erase after: FlatMap's backward-shift erase moves entries under
  // an in-flight iteration. Nothing here sends, so order is unobservable.
  std::vector<std::uint64_t> expired_tx;
  for (const auto& [tx, p] : pending_) {
    if (now - p.sent_at > config_.ping_timeout_s) {
      if (std::size_t i = find_index(p.contact); i != kNotFound)
        flags_[i] &= static_cast<std::uint8_t>(~kPingInflight);
      expired_tx.push_back(tx);
    }
  }
  for (std::uint64_t tx : expired_tx) pending_.erase(tx);

  // Validate unvalidated candidates. Index-based on purpose: the pong comes
  // back synchronously inside send_ping and its handler may add_candidate
  // (a same-NAT peer answering from its internal endpoint), growing the
  // table and invalidating any reference held across the call.
  int budget = config_.pings_per_round;
  for (std::size_t i = 0; i < contacts_.size(); ++i) {
    if (budget <= 0) break;
    if (flags_[i] & (kValidated | kPingInflight)) continue;
    flags_[i] |= kPingInflight;
    const Contact contact = contacts_[i];
    send_ping(net, contact);
    --budget;
  }

  // Random-target lookups keep the table populated and the NAT mapping warm.
  std::vector<Contact> validated = validated_contacts();
  if (validated.empty()) return;
  for (int i = 0; i < config_.lookups_per_round; ++i) {
    NodeId160 target = NodeId160::random(rng_);
    for (int f = 0; f < config_.lookup_fanout; ++f) {
      const Contact& peer = validated[rng_.index(validated.size())];
      std::uint64_t tx = next_tx_++;
      pending_[tx] = Pending{peer, now};
      send_message(net, peer.endpoint, FindNodesMsg{tx, id_, target});
    }
  }
}

void DhtNode::learn_contact(const Contact& contact, bool pinned) {
  add_candidate(contact, 0.0);
  if (pinned) {
    if (std::size_t i = find_index(contact); i != kNotFound)
      flags_[i] |= kPinned;
  }
}

void DhtNode::announce(sim::Network& net, const netcore::Endpoint& tracker,
                       std::uint64_t swarm) {
  send_message(net, tracker, AnnounceMsg{next_tx_++, id_, swarm});
}

std::vector<Contact> DhtNode::validated_contacts() const {
  std::vector<Contact> out;
  for (std::size_t i = 0; i < contacts_.size(); ++i)
    if (flags_[i] & kValidated) out.push_back(contacts_[i]);
  return out;
}

std::vector<Contact> DhtNode::all_contacts() const { return contacts_; }

bool DhtNode::knows_validated(const Contact& c) const {
  std::size_t i = find_index(c);
  return i != kNotFound && (flags_[i] & kValidated);
}

}  // namespace cgn::dht
