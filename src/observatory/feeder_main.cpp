// cgn_feeder — external push-ingestion feeder for a running observatory.
//
// Rebuilds the exact deterministic campaign the daemon's in-process
// StreamDriver would run — same CGN_* environment, same worlds, same
// Rng::fork substreams — and pushes every observation over the framed
// ingest protocol (observatory/ingest.hpp) instead of ingesting it
// in-process. Because the StreamDriver writes through the EventSink
// interface, the bytes a push campaign converges on at /figures/<name>
// are the same bytes the daemon's own stream or the bench binaries
// produce.
//
// A feeder killed mid-stream (kill -9 included) reruns cheaply: shard
// checkpoints (CGN_SUPER_CHECKPOINT_DIR) resume the campaign regeneration,
// and the server's hello reply carries its resume cursor, so the client
// skips every event the observatory already holds — the channel ends up
// byte-identical to an uninterrupted push.
//
// Flags:
//   --connect N                 ingest port (required)
//   --host H                    ingest host (default 127.0.0.1)
//   --campaign NAME             campaign channel name (default "push")
//   --policy park|shed          overload policy (default park)
//   --pace-us N                 wall-clock pause between events
//   --fault-max-write N         chunk sends to at most N bytes
//   --fault-write-delay-us N    pause between chunked sends (slow writer)
//   --fault-disconnect-after N  hard-close the socket after N sent bytes
//
// Exit codes: 0 stream pushed and done-acked, 2 usage error, 3 campaign
// aborted (kill-switch/watchdog), 4 push connection failed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "observatory/ingest.hpp"
#include "observatory/stream_driver.hpp"
#include "scenario/env_config.hpp"
#include "super/supervisor.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --connect PORT [--host H] [--campaign NAME]\n"
      "          [--policy park|shed] [--pace-us N] [--fault-max-write N]\n"
      "          [--fault-write-delay-us N] [--fault-disconnect-after N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgn;

  observatory::PushClientConfig client_cfg;
  int pace_us = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connect") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.host = v;
    } else if (arg == "--campaign") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.campaign = v;
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      if (std::strcmp(v, "park") == 0) {
        client_cfg.policy = observatory::IngestOverloadPolicy::park;
      } else if (std::strcmp(v, "shed") == 0) {
        client_cfg.policy = observatory::IngestOverloadPolicy::shed;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--pace-us") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      pace_us = std::atoi(v);
    } else if (arg == "--fault-max-write") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.faults.max_write_bytes =
          static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--fault-write-delay-us") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.faults.write_delay_us = std::atoi(v);
    } else if (arg == "--fault-disconnect-after") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      client_cfg.faults.disconnect_after_bytes =
          static_cast<std::uint64_t>(std::atoll(v));
    } else {
      return usage(argv[0]);
    }
  }
  if (client_cfg.port == 0) return usage(argv[0]);

  observatory::StreamDriverConfig driver_cfg;
  driver_cfg.world = scenario::scaled_config();
  driver_cfg.crawl.crawl.retry = scenario::retry_policy_from_env();
  driver_cfg.crawl.supervise =
      scenario::supervisor_config_from_env("crawl_ping");
  driver_cfg.netalyzr.retry = scenario::retry_policy_from_env();
  driver_cfg.netalyzr.transition_battery = driver_cfg.world.v6.enabled;
  driver_cfg.netalyzr.supervise =
      scenario::supervisor_config_from_env("netalyzr");
  driver_cfg.pace_us = pace_us;

  client_cfg.world_seed = driver_cfg.world.seed;
  client_cfg.plan_hash = driver_cfg.world.fault_plan.hash();

  observatory::PushClient client(client_cfg);
  try {
    client.connect();
  } catch (const observatory::IngestError& e) {
    std::fprintf(stderr, "feeder: %s\n", e.what());
    return 4;
  }
  std::printf("feeder: connected to %s:%u (campaign %s, resume cursor %llu)\n",
              client_cfg.host.c_str(),
              static_cast<unsigned>(client_cfg.port),
              client_cfg.campaign.c_str(),
              static_cast<unsigned long long>(client.resume_cursor()));
  std::fflush(stdout);

  observatory::StreamDriver driver(driver_cfg);
  try {
    driver.run(client);
  } catch (const super::CampaignAborted& e) {
    std::fprintf(stderr,
                 "feeder: campaign aborted: %s (rerun with the same "
                 "CGN_SUPER_CHECKPOINT_DIR to resume)\n",
                 e.what());
    return 3;
  } catch (const observatory::IngestError& e) {
    std::fprintf(stderr, "feeder: push failed: %s (rerun to resume from the "
                         "server's cursor)\n",
                 e.what());
    return 4;
  }

  std::printf("feeder: done (%llu events sent, %llu replay-skipped)\n",
              static_cast<unsigned long long>(client.events_sent()),
              static_cast<unsigned long long>(client.events_skipped()));
  return 0;
}
