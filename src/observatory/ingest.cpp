#include "observatory/ingest.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "scenario/result_codec.hpp"

namespace cgn::observatory {

namespace {

constexpr const char* kQueueDepthProbe = "observatory.ingest.queue_depth";
constexpr const char* kShedTotalProbe = "observatory.ingest.shed_total";
constexpr const char* kRejectedProbe = "observatory.ingest.rejected_total";
constexpr const char* kMaxLagProbe = "observatory.ingest.max_lag";

enum class ReadStatus : std::uint8_t {
  ok,
  closed,     ///< EOF before the first byte (clean disconnect)
  truncated,  ///< EOF or hard error mid-read
  timed_out,  ///< SO_RCVTIMEO fired (slow loris)
};

/// Reads exactly `n` bytes, riding out EINTR and partial reads.
ReadStatus read_full(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd, out + got, n - got, 0);
    if (k > 0) {
      got += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) return got == 0 ? ReadStatus::closed : ReadStatus::truncated;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::timed_out;
    return got == 0 ? ReadStatus::closed : ReadStatus::truncated;
  }
  return ReadStatus::ok;
}

/// Best-effort full send; a dead peer surfaces on its next read instead.
bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t k =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(k);
  }
  return true;
}

bool send_server_frame(int fd, IngestFrameType type,
                       std::string_view body = {}) {
  return send_all(fd, ingest_frame(type, body));
}

bool send_error_frame(int fd, std::string_view message) {
  super::wire::Writer w;
  w.str(message);
  return send_server_frame(fd, IngestFrameType::error, w.bytes());
}

}  // namespace

// --- wire codec -------------------------------------------------------------

std::string ingest_frame(IngestFrameType type, std::string_view body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(type));
  payload.append(body);
  super::wire::Writer h;
  h.u32(kIngestMagic);
  h.u32(static_cast<std::uint32_t>(payload.size()));
  h.u64(super::wire::fnv1a(payload));
  std::string frame = h.take();
  frame += payload;
  return frame;
}

void put_stream_event(super::wire::Writer& w, const StreamEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.f64(event.time);
  switch (event.kind) {
    case StreamEvent::Kind::bt_queried:
    case StreamEvent::Kind::bt_learned:
    case StreamEvent::Kind::bt_ping_response:
      scenario::codec::put_contact(w, event.contact);
      break;
    case StreamEvent::Kind::bt_leak:
      scenario::codec::put_contact(w, event.contact);
      scenario::codec::put_contact(w, event.internal);
      break;
    case StreamEvent::Kind::nz_session:
      scenario::codec::put_session(w, event.session);
      break;
  }
}

bool get_stream_event(super::wire::Reader& r, StreamEvent& out) {
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > kStreamEventKindMax) return false;
  out.kind = static_cast<StreamEvent::Kind>(kind);
  out.time = r.f64();
  switch (out.kind) {
    case StreamEvent::Kind::bt_queried:
    case StreamEvent::Kind::bt_learned:
    case StreamEvent::Kind::bt_ping_response:
      out.contact = scenario::codec::get_contact(r);
      break;
    case StreamEvent::Kind::bt_leak:
      out.contact = scenario::codec::get_contact(r);
      out.internal = scenario::codec::get_contact(r);
      break;
    case StreamEvent::Kind::nz_session:
      out.session = scenario::codec::get_session(r);
      break;
  }
  return r.ok();
}

void put_campaign_report(super::wire::Writer& w,
                         const super::CampaignReport& report) {
  w.u32(static_cast<std::uint32_t>(report.shards.size()));
  for (const super::ShardOutcome& o : report.shards) {
    w.u8(static_cast<std::uint8_t>(o.status));
    w.u32(static_cast<std::uint32_t>(o.attempts));
    w.f64(o.elapsed_s);
    w.str(o.error);
  }
}

bool get_campaign_report(super::wire::Reader& r, super::CampaignReport& out) {
  out.shards.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    super::ShardOutcome o;
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(
                     super::ShardStatus::deadline_aborted))
      return false;
    o.status = static_cast<super::ShardStatus>(status);
    o.attempts = static_cast<int>(r.u32());
    o.elapsed_s = r.f64();
    o.error = std::string(r.str());
    out.shards.push_back(std::move(o));
  }
  return r.ok() && out.shards.size() == n;
}

// --- server -----------------------------------------------------------------

IngestServer::IngestServer(Observatory& obs, IngestConfig config)
    : obs_(obs), config_(config) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_connections <= 0) config_.max_connections = 1;
}

IngestServer::~IngestServer() { stop(); }

bool IngestServer::start(std::uint16_t port, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (listen_fd_ >= 0) {
    if (error) *error = "already started";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return fail("bind");
  if (::listen(listen_fd_, SOMAXCONN) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    return fail("getsockname");
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::global();
  reg.register_probe(kQueueDepthProbe, [this] {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return static_cast<double>(queue_.size());
  });
  reg.register_probe(kShedTotalProbe, [this] {
    return static_cast<double>(shed_total_.load(std::memory_order_relaxed));
  });
  reg.register_probe(kRejectedProbe, [this] {
    return static_cast<double>(stats().rejected_total());
  });
  reg.register_probe(kMaxLagProbe, [this] {
    return static_cast<double>(
        max_queue_depth_.load(std::memory_order_relaxed));
  });
  accept_thread_ = std::thread([this] { accept_loop(); });
  drain_thread_ = std::thread([this] { drain_loop(); });
  return true;
}

void IngestServer::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable() &&
      !drain_thread_.joinable())
    return;
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  drain_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    threads.swap(conn_threads_);
    finished_ids_.clear();
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  auto& reg = obs::MetricsRegistry::global();
  reg.unregister_probe(kQueueDepthProbe);
  reg.unregister_probe(kShedTotalProbe);
  reg.unregister_probe(kRejectedProbe);
  reg.unregister_probe(kMaxLagProbe);
}

IngestStats IngestServer::stats() const {
  IngestStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames_accepted = frames_accepted_.load(std::memory_order_relaxed);
  s.events_enqueued = events_enqueued_.load(std::memory_order_relaxed);
  s.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  s.events_replayed = events_replayed_.load(std::memory_order_relaxed);
  s.seq_gap = seq_gap_.load(std::memory_order_relaxed);
  s.bad_magic = bad_magic_.load(std::memory_order_relaxed);
  s.bad_length = bad_length_.load(std::memory_order_relaxed);
  s.bad_checksum = bad_checksum_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  s.bad_payload = bad_payload_.load(std::memory_order_relaxed);
  s.unknown_type = unknown_type_.load(std::memory_order_relaxed);
  s.identity_rejected = identity_rejected_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  s.shed_total = shed_total_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.shed_by_kind.size(); ++i)
    s.shed_by_kind[i] = shed_by_kind_[i].load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = queue_.size();
  }
  return s;
}

std::uint64_t IngestServer::cursor(const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(cursors_mu_);
  const auto it = campaigns_.find(campaign);
  return it == campaigns_.end() ? 0 : it->second.next_seq;
}

void IngestServer::set_drain_paused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    drain_paused_ = paused;
  }
  queue_cv_.notify_all();
}

void IngestServer::reap_finished_locked() {
  for (const std::thread::id id : finished_ids_) {
    const auto it =
        std::find_if(conn_threads_.begin(), conn_threads_.end(),
                     [&](const std::thread& t) { return t.get_id() == id; });
    if (it == conn_threads_.end()) continue;
    it->join();
    conn_threads_.erase(it);
  }
  finished_ids_.clear();
}

void IngestServer::accept_loop() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    timeval tv{};
    tv.tv_sec = config_.recv_timeout_ms / 1000;
    tv.tv_usec = (config_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::lock_guard<std::mutex> lock(conns_mu_);
    reap_finished_locked();
    if (conn_fds_.size() >=
        static_cast<std::size_t>(config_.max_connections)) {
      ::close(fd);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void IngestServer::handle_connection(int fd) {
  std::string campaign;
  IngestOverloadPolicy policy = IngestOverloadPolicy::park;
  bool hello_seen = false;
  bool open = true;
  std::uint64_t since_ack = 0;
  std::string header(kIngestHeaderBytes, '\0');
  std::string payload;

  while (open && !stopping_.load(std::memory_order_relaxed)) {
    ReadStatus st = read_full(fd, header.data(), header.size());
    if (st == ReadStatus::closed) break;
    if (st == ReadStatus::timed_out) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (st != ReadStatus::ok) {
      truncated_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    super::wire::Reader hr(header);
    const std::uint32_t magic = hr.u32();
    const std::uint32_t frame_len = hr.u32();
    const std::uint64_t checksum = hr.u64();
    if (magic != kIngestMagic) {
      // The byte stream is desynchronized — nothing downstream can be
      // trusted, so the connection dies rather than resynchronize by guess.
      bad_magic_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (frame_len == 0 || frame_len > config_.max_frame_payload) {
      // A giant declared length must never allocate; reject before resize.
      bad_length_.fetch_add(1, std::memory_order_relaxed);
      send_error_frame(fd, "declared payload length out of range");
      break;
    }
    payload.resize(frame_len);
    st = read_full(fd, payload.data(), frame_len);
    if (st == ReadStatus::timed_out) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (st != ReadStatus::ok) {
      truncated_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (super::wire::fnv1a(payload) != checksum) {
      // Framing is intact (exactly frame_len bytes consumed), so the
      // connection survives a corrupt payload.
      bad_checksum_.fetch_add(1, std::memory_order_relaxed);
      send_error_frame(fd, "payload checksum mismatch");
      continue;
    }

    super::wire::Reader r(payload);
    const auto type = static_cast<IngestFrameType>(r.u8());
    if (!hello_seen && type != IngestFrameType::hello) {
      bad_payload_.fetch_add(1, std::memory_order_relaxed);
      send_error_frame(fd, "first frame must be hello");
      break;
    }
    switch (type) {
      case IngestFrameType::hello: {
        const std::uint32_t proto = r.u32();
        const std::string name(r.str());
        const std::uint8_t pol = r.u8();
        const std::uint64_t world_seed = r.u64();
        const std::uint64_t plan_hash = r.u64();
        if (!r.done() || name.empty() ||
            pol > static_cast<std::uint8_t>(IngestOverloadPolicy::shed)) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "malformed hello");
          open = false;
          break;
        }
        if (proto != kIngestProtocolVersion) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "unsupported protocol version");
          open = false;
          break;
        }
        std::uint64_t next = 0;
        bool identity_ok = true;
        {
          std::lock_guard<std::mutex> lock(cursors_mu_);
          CampaignState& cs = campaigns_[name];
          if (cs.bound &&
              (cs.world_seed != world_seed || cs.plan_hash != plan_hash)) {
            identity_ok = false;
          } else {
            if (!cs.bound) {
              cs.bound = true;
              cs.world_seed = world_seed;
              cs.plan_hash = plan_hash;
            }
            next = cs.next_seq;
          }
        }
        if (!identity_ok) {
          identity_rejected_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "campaign bound to a different world/plan");
          open = false;
          break;
        }
        campaign = name;
        policy = static_cast<IngestOverloadPolicy>(pol);
        hello_seen = true;
        frames_accepted_.fetch_add(1, std::memory_order_relaxed);
        super::wire::Writer w;
        w.u64(next);
        send_server_frame(fd, IngestFrameType::resume, w.bytes());
        break;
      }
      case IngestFrameType::announce: {
        const std::uint64_t total = r.u64();
        if (!r.done()) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "malformed announce");
          break;
        }
        frames_accepted_.fetch_add(1, std::memory_order_relaxed);
        obs_.set_stream_total(campaign, total);
        break;
      }
      case IngestFrameType::event: {
        const std::uint64_t seq = r.u64();
        StreamEvent ev;
        if (!get_stream_event(r, ev) || !r.done()) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "malformed event");
          break;
        }
        bool accepted = false;
        bool gap = false;
        std::uint64_t next = 0;
        {
          std::lock_guard<std::mutex> lock(cursors_mu_);
          CampaignState& cs = campaigns_[campaign];
          if (seq < cs.next_seq) {
            // Idempotent replay below the cursor (reconnected feeder).
          } else if (seq > cs.next_seq) {
            gap = true;
          } else {
            cs.next_seq = seq + 1;
            accepted = true;
          }
          next = cs.next_seq;
        }
        if (gap) {
          seq_gap_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "sequence gap");
          break;
        }
        if (!accepted) {
          events_replayed_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        Item item;
        item.kind = Item::Kind::event;
        item.campaign = campaign;
        item.event = ev;
        if (!enqueue(std::move(item), policy, fd)) {
          open = false;
          break;
        }
        frames_accepted_.fetch_add(1, std::memory_order_relaxed);
        if (++since_ack >= kIngestAckEvery) {
          since_ack = 0;
          super::wire::Writer w;
          w.u64(next);
          send_server_frame(fd, IngestFrameType::ack, w.bytes());
        }
        break;
      }
      case IngestFrameType::report: {
        Item item;
        item.kind = Item::Kind::report;
        item.campaign = campaign;
        item.report_kind = std::string(r.str());
        if (!get_campaign_report(r, item.report) || !r.done() ||
            item.report_kind.empty()) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "malformed report");
          break;
        }
        // Reports bypass the capacity check (bounded overshoot: a handful
        // per connection) — parking a report behind its own campaign's
        // parked events would deadlock a single-connection feeder.
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          queue_.push_back(std::move(item));
          note_queue_depth_locked();
        }
        queue_cv_.notify_one();
        frames_accepted_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case IngestFrameType::done: {
        if (!r.done()) {
          bad_payload_.fetch_add(1, std::memory_order_relaxed);
          send_error_frame(fd, "malformed done");
          break;
        }
        auto gate = std::make_shared<bool>(false);
        Item item;
        item.kind = Item::Kind::done;
        item.campaign = campaign;
        item.done_gate = gate;
        {
          std::unique_lock<std::mutex> lk(queue_mu_);
          queue_.push_back(std::move(item));
          note_queue_depth_locked();
          queue_cv_.notify_all();
          drain_cv_.wait(lk, [&] {
            return stopping_.load(std::memory_order_relaxed) || *gate;
          });
        }
        if (stopping_.load(std::memory_order_relaxed)) {
          open = false;
          break;
        }
        frames_accepted_.fetch_add(1, std::memory_order_relaxed);
        super::wire::Writer w;
        w.u64(cursor(campaign));
        send_server_frame(fd, IngestFrameType::ack, w.bytes());
        send_server_frame(fd, IngestFrameType::done_ack);
        break;
      }
      default: {
        unknown_type_.fetch_add(1, std::memory_order_relaxed);
        send_error_frame(fd, "unknown frame type");
        break;
      }
    }
  }

  ::close(fd);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
  finished_ids_.push_back(std::this_thread::get_id());
}

bool IngestServer::enqueue(Item item, IngestOverloadPolicy policy, int fd) {
  std::unique_lock<std::mutex> lk(queue_mu_);
  if (queue_.size() >= config_.queue_capacity) {
    if (policy == IngestOverloadPolicy::shed) {
      // The event was accepted (its seq advanced the cursor) and is now
      // deliberately dropped — counted per kind so overload degradation is
      // fully accounted, and never retransmitted.
      const auto kind = static_cast<std::size_t>(item.event.kind);
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      if (kind < shed_by_kind_.size())
        shed_by_kind_[kind].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t depth = queue_.size();
    lk.unlock();
    super::wire::Writer w;
    w.u64(depth);
    send_server_frame(fd, IngestFrameType::park, w.bytes());
    lk.lock();
    space_cv_.wait(lk, [&] {
      return stopping_.load(std::memory_order_relaxed) ||
             queue_.size() < config_.queue_capacity;
    });
    if (stopping_.load(std::memory_order_relaxed)) return false;
  }
  queue_.push_back(std::move(item));
  events_enqueued_.fetch_add(1, std::memory_order_relaxed);
  note_queue_depth_locked();
  queue_cv_.notify_one();
  return true;
}

void IngestServer::note_queue_depth_locked() {
  const auto depth = static_cast<std::uint64_t>(queue_.size());
  std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth,
                                                 std::memory_order_relaxed)) {
  }
}

void IngestServer::drain_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               (!queue_.empty() && !drain_paused_);
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    switch (item.kind) {
      case Item::Kind::event:
        obs_.ingest(item.campaign, item.event);
        events_ingested_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Item::Kind::report:
        obs_.note_campaign_report(item.campaign, item.report_kind,
                                  item.report);
        break;
      case Item::Kind::done:
        obs_.note_stream_done(item.campaign);
        {
          std::lock_guard<std::mutex> lk(queue_mu_);
          *item.done_gate = true;
        }
        drain_cv_.notify_all();
        break;
    }
  }
}

// --- client -----------------------------------------------------------------

PushClient::PushClient(PushClientConfig config) : config_(std::move(config)) {}

PushClient::~PushClient() { close(); }

void PushClient::connect() {
  if (fd_ >= 0) throw IngestError("already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw IngestError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw IngestError("bad host: " + config_.host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw IngestError("connect 127.0.0.1:" + std::to_string(config_.port) +
                      ": " + why);
  }
  next_seq_ = 0;
  resume_cursor_ = 0;
  done_acked_ = false;
  rxbuf_.clear();

  super::wire::Writer w;
  w.u32(kIngestProtocolVersion);
  w.str(config_.campaign);
  w.u8(static_cast<std::uint8_t>(config_.policy));
  w.u64(config_.world_seed);
  w.u64(config_.plan_hash);
  send_frame(IngestFrameType::hello, w.bytes());
  const IngestFrameType want = IngestFrameType::resume;
  pump_incoming(&want);
}

void PushClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void PushClient::add_stream_total(std::uint64_t n) {
  announced_ += n;
  super::wire::Writer w;
  w.u64(announced_);
  send_frame(IngestFrameType::announce, w.bytes());
}

void PushClient::ingest(const StreamEvent& event) {
  const std::uint64_t seq = next_seq_++;
  if (seq < resume_cursor_) {
    // The server already has this event from a previous connection; the
    // deterministic replay just counts it off.
    ++events_skipped_;
    return;
  }
  super::wire::Writer w;
  w.u64(seq);
  put_stream_event(w, event);
  send_frame(IngestFrameType::event, w.bytes());
  ++events_sent_;
  pump_incoming(nullptr);
}

void PushClient::note_stream_done() {
  send_frame(IngestFrameType::done, {});
  const IngestFrameType want = IngestFrameType::done_ack;
  pump_incoming(&want);
}

void PushClient::note_campaign_report(const std::string& kind,
                                      const super::CampaignReport& report) {
  super::wire::Writer w;
  w.str(kind);
  put_campaign_report(w, report);
  send_frame(IngestFrameType::report, w.bytes());
}

void PushClient::send_frame(IngestFrameType type, std::string_view body) {
  if (fd_ < 0) throw IngestError("not connected");
  const std::string frame = ingest_frame(type, body);
  raw_send(frame.data(), frame.size());
}

void PushClient::raw_send(const char* data, std::size_t n) {
  const fault::SocketFaultProfile& f = config_.faults;
  while (n > 0) {
    if (f.disconnect_after_bytes != 0 &&
        bytes_sent_ >= f.disconnect_after_bytes) {
      close();
      throw IngestError("fault injection: disconnect after " +
                        std::to_string(f.disconnect_after_bytes) + " bytes");
    }
    std::size_t chunk = n;
    if (f.max_write_bytes != 0) chunk = std::min(chunk, f.max_write_bytes);
    if (f.disconnect_after_bytes != 0)
      chunk = std::min(chunk, static_cast<std::size_t>(
                                  f.disconnect_after_bytes - bytes_sent_));
    const ssize_t k = ::send(fd_, data, chunk, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      close();
      throw IngestError("send: " + why);
    }
    bytes_sent_ += static_cast<std::uint64_t>(k);
    data += k;
    n -= static_cast<std::size_t>(k);
    if (f.write_delay_us > 0 && n > 0)
      ::usleep(static_cast<useconds_t>(f.write_delay_us));
  }
}

void PushClient::apply_server_frame(IngestFrameType type,
                                    std::string_view body) {
  super::wire::Reader r(body);
  switch (type) {
    case IngestFrameType::resume:
      resume_cursor_ = r.u64();
      break;
    case IngestFrameType::ack:
      acked_ = r.u64();
      break;
    case IngestFrameType::park:
      ++parks_;
      break;
    case IngestFrameType::done_ack:
      done_acked_ = true;
      break;
    case IngestFrameType::error: {
      const std::string message(r.str());
      close();
      throw IngestError("server: " +
                        (message.empty() ? "unspecified error" : message));
    }
    default:
      close();
      throw IngestError("unexpected server frame type " +
                        std::to_string(static_cast<int>(type)));
  }
}

void PushClient::pump_incoming(const IngestFrameType* until) {
  for (;;) {
    // Parse every complete frame already buffered.
    while (rxbuf_.size() >= kIngestHeaderBytes) {
      super::wire::Reader hr(
          std::string_view(rxbuf_).substr(0, kIngestHeaderBytes));
      const std::uint32_t magic = hr.u32();
      const std::uint32_t frame_len = hr.u32();
      const std::uint64_t checksum = hr.u64();
      if (magic != kIngestMagic || frame_len == 0) {
        close();
        throw IngestError("desynchronized server stream");
      }
      if (rxbuf_.size() < kIngestHeaderBytes + frame_len) break;
      const std::string payload =
          rxbuf_.substr(kIngestHeaderBytes, frame_len);
      rxbuf_.erase(0, kIngestHeaderBytes + frame_len);
      if (super::wire::fnv1a(payload) != checksum) {
        close();
        throw IngestError("corrupt server frame");
      }
      const auto type = static_cast<IngestFrameType>(
          static_cast<std::uint8_t>(payload[0]));
      apply_server_frame(type, std::string_view(payload).substr(1));
      if (until != nullptr && type == *until) return;
    }
    if (fd_ < 0) {
      if (until == nullptr) return;
      throw IngestError("connection closed before reply");
    }

    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int timeout_ms = until == nullptr ? 0 : config_.reply_timeout_ms;
    const int rv = ::poll(&pfd, 1, timeout_ms);
    if (rv < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      close();
      throw IngestError("poll: " + why);
    }
    if (rv == 0) {
      if (until == nullptr) return;  // nothing pending; stay non-blocking
      close();
      throw IngestError("timed out waiting for server reply");
    }
    char buf[4096];
    const ssize_t k = ::recv(fd_, buf, sizeof(buf), 0);
    if (k > 0) {
      rxbuf_.append(buf, static_cast<std::size_t>(k));
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (until == nullptr) return;
      continue;
    }
    close();
    throw IngestError("server closed the connection");
  }
}

}  // namespace cgn::observatory
