#include "observatory/observatory.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "observatory/ingest.hpp"
#include "sim/network.hpp"

namespace cgn::observatory {

namespace {

constexpr const char* kIngestLagProbe = "observatory.ingest_lag";
constexpr const char* kHttpRequestsProbe = "observatory.http_requests";

/// Human name of a hop-trace kind slot (sim::Network uses the first four).
std::string_view trace_kind_name(std::size_t slot) {
  switch (static_cast<sim::Network::TraceKind>(slot)) {
    case sim::Network::TraceKind::hop:
      return "hop";
    case sim::Network::TraceKind::middlebox:
      return "middlebox";
    case sim::Network::TraceKind::delivered:
      return "delivered";
    case sim::Network::TraceKind::dropped:
      return "dropped";
  }
  return "other";
}

void render_campaign_json(std::ostream& os,
                          const super::CampaignReport& report) {
  os << "{\"planned\":" << report.planned()
     << ",\"finished\":" << report.finished() << ",\"completed\":"
     << report.count(super::ShardStatus::completed) << ",\"recovered\":"
     << report.count(super::ShardStatus::recovered) << ",\"resumed\":"
     << report.count(super::ShardStatus::resumed) << ",\"quarantined\":"
     << report.count(super::ShardStatus::quarantined)
     << ",\"deadline_aborted\":"
     << report.count(super::ShardStatus::deadline_aborted) << ",\"not_run\":"
     << report.count(super::ShardStatus::not_run)
     << ",\"attempts\":" << report.total_attempts()
     << ",\"coverage\":" << report.coverage()
     << ",\"degraded\":" << (report.degraded() ? "true" : "false") << '}';
}

void render_window_json(std::ostream& os, const WindowTally& w) {
  os << "{\"index\":" << w.index << ",\"events\":" << w.events
     << ",\"bt_contacts\":" << w.bt_contacts << ",\"leaks\":" << w.leaks
     << ",\"sessions\":" << w.sessions << '}';
}

}  // namespace

Observatory::Observatory(const netcore::RoutingTable& routes,
                         const netcore::AsRegistry& registry,
                         ObservatoryConfig config)
    : routes_(routes),
      registry_(registry),
      config_(config),
      started_(std::chrono::steady_clock::now()),
      main_(routes),
      events_counter_(obs::counter("observatory.events")),
      leaks_counter_(obs::counter("observatory.leaks")),
      sessions_counter_(obs::counter("observatory.sessions")),
      windows_counter_(obs::counter("observatory.windows_closed")) {
  if (config_.window_s <= 0.0) config_.window_s = 3600.0;
  auto& reg = obs::MetricsRegistry::global();
  reg.register_probe(kIngestLagProbe, [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return main_.announced > main_.ingested
               ? static_cast<double>(main_.announced - main_.ingested)
               : 0.0;
  });
  reg.register_probe(kHttpRequestsProbe, [this] {
    return static_cast<double>(server_.requests_served());
  });
}

Observatory::~Observatory() {
  stop_ingest();
  stop_serving();
  auto& reg = obs::MetricsRegistry::global();
  reg.unregister_probe(kIngestLagProbe);
  reg.unregister_probe(kHttpRequestsProbe);
}

void Observatory::roll_window_locked(double t) {
  const auto index =
      static_cast<std::int64_t>(t / config_.window_s);  // windows are ≥ 0
  if (window_open_ && index == current_window_.index) return;
  if (window_open_) {
    closed_windows_.push_back(current_window_);
    if (closed_windows_.size() > config_.max_window_history)
      closed_windows_.erase(closed_windows_.begin());
    ++windows_closed_;
    windows_counter_.inc();
  }
  current_window_ = WindowTally{};
  current_window_.index = index;
  window_open_ = true;
}

void Observatory::ingest_into_locked(Channel& ch, const StreamEvent& event) {
  roll_window_locked(event.time);
  virtual_time_ = std::max(virtual_time_, event.time);
  ++ch.ingested;
  ++current_window_.events;
  events_counter_.inc();
  switch (event.kind) {
    case StreamEvent::Kind::bt_queried:
      ch.bt.note_queried(event.contact);
      ++current_window_.bt_contacts;
      break;
    case StreamEvent::Kind::bt_learned:
      ch.bt.note_learned(event.contact);
      ++current_window_.bt_contacts;
      break;
    case StreamEvent::Kind::bt_ping_response:
      ch.bt.note_ping_response(event.contact);
      ++current_window_.bt_contacts;
      break;
    case StreamEvent::Kind::bt_leak:
      ch.bt.note_leak(event.contact, event.internal);
      ++current_window_.leaks;
      leaks_counter_.inc();
      break;
    case StreamEvent::Kind::nz_session:
      ch.nz.ingest(event.session);
      if (event.session.transition)
        ch.transition_sessions.push_back(event.session);
      ++current_window_.sessions;
      sessions_counter_.inc();
      break;
  }
}

void Observatory::ingest(const StreamEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ingest_into_locked(main_, event);
}

void Observatory::add_stream_total(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  main_.announced += n;
}

void Observatory::note_stream_done() {
  std::lock_guard<std::mutex> lock(mu_);
  main_.done = true;
}

void Observatory::note_campaign_report(const std::string& kind,
                                       const super::CampaignReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  main_.reports[kind] = report;
}

Observatory::Channel& Observatory::push_channel_locked(
    const std::string& campaign) {
  auto it = push_.find(campaign);
  if (it == push_.end())
    it = push_.emplace(campaign, std::make_unique<Channel>(routes_)).first;
  return *it->second;
}

const Observatory::Channel* Observatory::find_push_locked(
    const std::string& campaign) const {
  const auto it = push_.find(campaign);
  return it == push_.end() ? nullptr : it->second.get();
}

void Observatory::ingest(const std::string& campaign,
                         const StreamEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ingest_into_locked(push_channel_locked(campaign), event);
}

void Observatory::set_stream_total(const std::string& campaign,
                                   std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  Channel& ch = push_channel_locked(campaign);
  ch.announced = std::max(ch.announced, total);
}

void Observatory::note_stream_done(const std::string& campaign) {
  std::lock_guard<std::mutex> lock(mu_);
  push_channel_locked(campaign).done = true;
}

void Observatory::note_campaign_report(const std::string& campaign,
                                       const std::string& kind,
                                       const super::CampaignReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  push_channel_locked(campaign).reports[kind] = report;
}

void Observatory::drop_campaign(const std::string& campaign) {
  std::lock_guard<std::mutex> lock(mu_);
  push_.erase(campaign);
}

void Observatory::capture_trace(const obs::TraceRing& ring) {
  std::lock_guard<std::mutex> lock(mu_);
  ring.events_into(trace_events_);
  if (ring.total_pushed() < trace_total_) trace_tally_seen_.fill(0);
  trace_total_ = ring.total_pushed();
  for (std::size_t k = 0; k < obs::TraceRing::kKindTallySlots; ++k) {
    const std::uint64_t now = ring.kind_tally(static_cast<std::uint8_t>(k));
    trace_tally_[k] = now;
    if (now > trace_tally_seen_[k]) {
      obs::counter("observatory.trace." +
                   std::string(trace_kind_name(k)))
          .inc(now - trace_tally_seen_[k]);
      trace_tally_seen_[k] = now;
    }
  }
}

std::uint64_t Observatory::events_ingested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_.ingested;
}

std::uint64_t Observatory::stream_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_.announced;
}

bool Observatory::stream_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_.done;
}

std::uint64_t Observatory::events_ingested(const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Channel* ch = find_push_locked(campaign);
  return ch ? ch->ingested : 0;
}

bool Observatory::stream_done(const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Channel* ch = find_push_locked(campaign);
  return ch != nullptr && ch->done;
}

analysis::BtDetectionResult Observatory::bt_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_.bt.snapshot();
}

analysis::NetalyzrDetectionResult Observatory::nz_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return main_.nz.snapshot();
}

analysis::CoverageResult Observatory::coverage_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  analysis::CoverageResult cov = analysis::combine_coverage(
      main_.bt.snapshot(), main_.nz.snapshot(), registry_);
  const auto bt_it = main_.reports.find("crawl_ping");
  const auto nz_it = main_.reports.find("netalyzr");
  analysis::note_supervision(
      cov, bt_it == main_.reports.end() ? nullptr : &bt_it->second,
      nz_it == main_.reports.end() ? nullptr : &nz_it->second);
  return cov;
}

analysis::TransitionDetectionResult Observatory::transition_snapshot() const {
  std::vector<netalyzr::SessionResult> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions = main_.transition_sessions;
  }
  // The detector's aggregates are order-independent (counts + sorted
  // quantiles), so a stream prefix scores exactly like the same sessions
  // batch-analyzed by bench_fig14_transition.
  return analysis::TransitionDetector().analyze(sessions);
}

std::map<std::string, analysis::Figures> Observatory::figure_sets_locked(
    const Channel& ch) const {
  std::map<std::string, analysis::Figures> sets;
  sets["fig04_clusters"] = analysis::fig04_figures(ch.bt.snapshot());
  sets["fig05_netalyzr_candidates"] =
      analysis::fig05_figures(ch.nz.snapshot());
  {
    analysis::CoverageResult cov = analysis::combine_coverage(
        ch.bt.snapshot(), ch.nz.snapshot(), registry_);
    const auto bt_it = ch.reports.find("crawl_ping");
    const auto nz_it = ch.reports.find("netalyzr");
    analysis::note_supervision(
        cov, bt_it == ch.reports.end() ? nullptr : &bt_it->second,
        nz_it == ch.reports.end() ? nullptr : &nz_it->second);
    sets["tab05_coverage"] = analysis::tab05_figures(cov);
  }
  // Served only once transition-battery sessions appear, so v4-only
  // campaigns keep their historical /figures byte-shape.
  const analysis::TransitionDetectionResult tr =
      analysis::TransitionDetector().analyze(ch.transition_sessions);
  if (tr.observed_sessions > 0)
    sets["fig14_transition"] = analysis::fig14_figures(tr);
  return sets;
}

std::map<std::string, analysis::Figures> Observatory::figure_sets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return figure_sets_locked(main_);
}

std::map<std::string, analysis::Figures> Observatory::figure_sets(
    const std::string& campaign) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Channel* ch = find_push_locked(campaign);
  return ch ? figure_sets_locked(*ch)
            : std::map<std::string, analysis::Figures>{};
}

void Observatory::render_figures_locked(std::ostream& os,
                                        const Channel& ch) const {
  const auto sets = figure_sets_locked(ch);
  os << "{\"stream_done\":" << (ch.done ? "true" : "false")
     << ",\"events_ingested\":" << ch.ingested << ",\"figure_sets\":{";
  bool first = true;
  for (const auto& [name, figures] : sets) {
    if (!first) os << ',';
    first = false;
    obs::json_escape(os, name);
    os << ":{\"figures\":";
    analysis::render_figures_json(os, figures);
    os << '}';
  }
  os << "}}";
}

void Observatory::render_figures_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  render_figures_locked(os, main_);
}

void Observatory::render_health_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  render_health_locked(os);
}

void Observatory::render_health_locked(std::ostream& os) const {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  const auto old_precision = os.precision(12);
  os << "{\"status\":\"" << (main_.done ? "complete" : "streaming")
     << "\",\"uptime_s\":" << uptime << ",\"window_s\":" << config_.window_s
     << ",\"virtual_time_s\":" << virtual_time_;
  os << ",\"ingest\":{\"announced\":" << main_.announced
     << ",\"ingested\":" << main_.ingested << ",\"lag\":"
     << (main_.announced > main_.ingested ? main_.announced - main_.ingested
                                          : 0)
     << ",\"done\":" << (main_.done ? "true" : "false")
     << ",\"bt_events\":" << main_.bt.events_ingested()
     << ",\"leaks\":" << main_.bt.leaks_ingested()
     << ",\"sessions\":" << main_.nz.sessions_ingested() << '}';
  os << ",\"windows\":{\"closed\":" << windows_closed_ << ",\"current\":";
  if (window_open_)
    render_window_json(os, current_window_);
  else
    os << "null";
  os << ",\"history\":[";
  for (std::size_t i = 0; i < closed_windows_.size(); ++i) {
    if (i) os << ',';
    render_window_json(os, closed_windows_[i]);
  }
  os << "]}";
  os << ",\"campaigns\":{";
  bool first = true;
  for (const auto& [kind, report] : main_.reports) {
    if (!first) os << ',';
    first = false;
    obs::json_escape(os, kind);
    os << ':';
    render_campaign_json(os, report);
  }
  os << '}';
  // The push block appears only when an ingest listener is attached, so a
  // driver-fed daemon's /health keeps its historical byte shape.
  if (ingest_) {
    const IngestStats st = ingest_->stats();
    os << ",\"push\":{\"queue_depth\":" << st.queue_depth
       << ",\"queue_capacity\":" << ingest_->config().queue_capacity
       << ",\"max_queue_depth\":" << st.max_queue_depth
       << ",\"parks\":" << st.parks << ",\"shed_total\":" << st.shed_total
       << ",\"rejected_total\":" << st.rejected_total()
       << ",\"events_replayed\":" << st.events_replayed
       << ",\"connections\":" << st.connections << ",\"campaigns\":{";
    bool first_push = true;
    for (const auto& [name, ch] : push_) {
      if (!first_push) os << ',';
      first_push = false;
      obs::json_escape(os, name);
      os << ":{\"announced\":" << ch->announced
         << ",\"ingested\":" << ch->ingested << ",\"lag\":"
         << (ch->announced > ch->ingested ? ch->announced - ch->ingested : 0)
         << ",\"done\":" << (ch->done ? "true" : "false") << '}';
    }
    os << "}}";
  }
  os << ",\"http_requests\":" << server_.requests_served() << '}';
  os.precision(old_precision);
}

void Observatory::render_trace_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  render_trace_locked(os);
}

void Observatory::render_trace_locked(std::ostream& os) const {
  const auto old_precision = os.precision(12);
  os << "{\"total_pushed\":" << trace_total_
     << ",\"captured\":" << trace_events_.size() << ",\"kinds\":{";
  std::uint64_t other = 0;
  for (std::size_t k = 0; k < obs::TraceRing::kKindTallySlots; ++k) {
    if (trace_kind_name(k) == "other") {
      other += trace_tally_[k];
      continue;
    }
    obs::json_escape(os, std::string(trace_kind_name(k)));
    os << ':' << trace_tally_[k] << ',';
  }
  os << "\"other\":" << other << "},\"events\":[";
  for (std::size_t i = 0; i < trace_events_.size(); ++i) {
    const obs::TraceEvent& e = trace_events_[i];
    if (i) os << ',';
    os << "{\"time\":" << e.time << ",\"node\":" << e.node
       << ",\"ttl\":" << e.ttl << ",\"kind\":\"" << trace_kind_name(e.kind)
       << "\",\"code\":" << static_cast<int>(e.code);
    if (static_cast<sim::Network::TraceKind>(e.kind) ==
        sim::Network::TraceKind::dropped) {
      os << ",\"drop_reason\":\""
         << sim::to_string(static_cast<sim::DropReason>(e.code)) << '"';
    }
    os << '}';
  }
  os << "]}";
  os.precision(old_precision);
}

bool Observatory::serve(std::uint16_t port, std::string* error) {
  return server_.start(
      port, [this](const std::string& path) { return handle(path); }, error);
}

void Observatory::stop_serving() { server_.stop(); }

bool Observatory::serve_ingest(std::uint16_t port, const IngestConfig& config,
                               std::string* error) {
  if (ingest_) {
    if (error) *error = "ingest already serving";
    return false;
  }
  auto server = std::make_unique<IngestServer>(*this, config);
  if (!server->start(port, error)) return false;
  ingest_ = std::move(server);
  return true;
}

bool Observatory::serve_ingest(std::uint16_t port, std::string* error) {
  return serve_ingest(port, IngestConfig{}, error);
}

void Observatory::stop_ingest() {
  if (!ingest_) return;
  ingest_->stop();
  ingest_.reset();
}

bool Observatory::ingest_serving() const noexcept {
  return ingest_ != nullptr && ingest_->running();
}

std::uint16_t Observatory::ingest_port() const noexcept {
  return ingest_ ? ingest_->port() : 0;
}

HttpResponse Observatory::handle(const std::string& path) const {
  std::ostringstream body;
  if (path == "/metrics") {
    obs::MetricsRegistry::global().export_prometheus(body);
    return {200, "text/plain; version=0.0.4; charset=utf-8", body.str()};
  }
  if (path == "/figures") {
    render_figures_json(body);
    body << '\n';
    return {200, "application/json", body.str()};
  }
  if (path.rfind("/figures/", 0) == 0) {
    const std::string campaign = path.substr(sizeof("/figures/") - 1);
    std::lock_guard<std::mutex> lock(mu_);
    const Channel* ch = find_push_locked(campaign);
    if (ch == nullptr)
      return {404, "text/plain; charset=utf-8", "no such campaign\n"};
    render_figures_locked(body, *ch);
    body << '\n';
    return {200, "application/json", body.str()};
  }
  if (path == "/health") {
    render_health_json(body);
    body << '\n';
    return {200, "application/json", body.str()};
  }
  if (path == "/trace") {
    render_trace_json(body);
    body << '\n';
    return {200, "application/json", body.str()};
  }
  if (path == "/") {
    body << "cgn observatory\n"
            "  GET /metrics          Prometheus text exposition\n"
            "  GET /figures          bench figure sets (JSON)\n"
            "  GET /figures/<name>   a push campaign's figure sets (JSON)\n"
            "  GET /health           ingest/window/campaign status (JSON)\n"
            "  GET /trace            latest hop-trace window (JSON)\n";
    return {200, "text/plain; charset=utf-8", body.str()};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

}  // namespace cgn::observatory
