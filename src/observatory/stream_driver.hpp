// StreamDriver — replays the measurement campaigns as an ordered event
// stream into an Observatory.
//
// The driver owns the synthetic worlds and runs the exact campaign code the
// bench binaries run: the BitTorrent phase + DHT crawl on one world and the
// Netalyzr campaign on a second, so each campaign consumes the same
// Rng::fork substream it consumes under bench_fig04 / bench_fig05
// respectively. Determinism and resumability are inherited wholesale from
// the campaign drivers: every shard draws from a static (seed, salt, shard)
// substream on a private clock, CGN_THREADS reshards without changing
// results, and a CGN_SUPER_CHECKPOINT_DIR lets a killed campaign resume
// shard-exactly (see cgn::super). The batch results are then flattened into
// StreamEvents — order-independent for the streaming detectors — and
// stamped with linearly spaced virtual times so the observatory's windowed
// tallies have a time axis to bin on (Netalyzr times continue after the
// crawl's, mirroring the paper's staggered deployments).
//
// A campaign kill-switch (SupervisorConfig::abort_after_shards) or watchdog
// abort escapes run() as super::CampaignAborted; the Observatory keeps
// whatever was ingested and a rerun with the same checkpoint dir resumes.
#pragma once

#include <cstdint>
#include <memory>

#include "crawler/dht_crawler.hpp"
#include "observatory/observatory.hpp"
#include "scenario/campaign.hpp"
#include "scenario/internet.hpp"
#include "super/supervisor.hpp"

namespace cgn::observatory {

/// Netalyzr campaign defaults for streaming parity with bench_fig05: the
/// fig05 bench classifies address/port-test sessions only, so the optional
/// STUN / TTL-enumeration subsets default off here too.
[[nodiscard]] inline scenario::NetalyzrCampaignConfig
stream_netalyzr_defaults() {
  scenario::NetalyzrCampaignConfig cfg;
  cfg.enum_fraction = 0.0;
  cfg.stun_fraction = 0.0;
  return cfg;
}

struct StreamDriverConfig {
  scenario::InternetConfig world;
  scenario::BitTorrentPhaseConfig bt_phase;
  scenario::CrawlPhaseConfig crawl;
  scenario::NetalyzrCampaignConfig netalyzr = stream_netalyzr_defaults();
  bool run_bt = true;
  bool run_netalyzr = true;
  /// Wall-clock pause between ingested events, for soak runs where a
  /// scraper should see the figures converge. 0 = flat out.
  int pace_us = 0;
};

class StreamDriver {
 public:
  explicit StreamDriver(StreamDriverConfig config);

  StreamDriver(const StreamDriver&) = delete;
  StreamDriver& operator=(const StreamDriver&) = delete;

  /// Routing/registry views for constructing the Observatory (identical
  /// across both worlds: same InternetConfig, same build substream).
  [[nodiscard]] const netcore::RoutingTable& routes() const {
    return bt_world_->routes;
  }
  [[nodiscard]] const netcore::AsRegistry& registry() const {
    return bt_world_->registry;
  }

  /// Runs the configured campaigns and streams every observation into
  /// `sink` — an in-process Observatory or a PushClient framing the same
  /// events onto a socket. Throws super::CampaignAborted when a campaign
  /// kill-switch or watchdog fires (already-ingested events stay in the
  /// sink).
  void run(EventSink& sink);

  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return emitted_;
  }
  [[nodiscard]] const super::CampaignReport& bt_report() const noexcept {
    return bt_report_;
  }
  [[nodiscard]] const super::CampaignReport& nz_report() const noexcept {
    return nz_report_;
  }

 private:
  void emit(EventSink& sink, std::vector<StreamEvent> events, double t_begin,
            double t_end);

  StreamDriverConfig config_;
  std::unique_ptr<scenario::Internet> bt_world_;
  /// Built lazily when both campaigns run (the Netalyzr campaign must be
  /// its world's first fork consumer to match bench_fig05); when only one
  /// campaign runs, bt_world_ serves it.
  std::unique_ptr<scenario::Internet> nz_world_;
  std::unique_ptr<crawler::DhtCrawler> crawler_;
  super::CampaignReport bt_report_;
  super::CampaignReport nz_report_;
  std::uint64_t emitted_ = 0;
};

}  // namespace cgn::observatory
