// cgn_observatoryd — the live observatory daemon.
//
// Builds the CGN_BENCH_SCALE/CGN_BENCH_SEED world, streams the BitTorrent
// crawl and Netalyzr campaigns through the incremental detectors, and
// serves /metrics, /figures, /health and /trace over HTTP while doing so.
// All campaign knobs come from the same CGN_* environment the bench
// binaries read (scenario/env_config.hpp), so the figures it converges on
// are byte-identical to BENCH_fig04_clusters.json / BENCH_fig05_*.json.
//
// Flags:
//   --port N                listen port (0 = ephemeral; default
//                           CGN_OBSERVATORY_PORT or 9464)
//   --window S              tally window in simulated seconds (default
//                           CGN_OBSERVATORY_WINDOW_S or 3600)
//   --pace-us N             wall-clock pause between ingested events
//   --abort-after-shards N  Netalyzr campaign kill-switch (checkpoint
//                           drill; exits 3 on the resulting abort)
//   --exit-after-stream     exit once the stream completes instead of
//                           serving forever
//   --ingest-port N         also listen for push-ingestion connections
//                           (cgn_feeder / PushClient; 0 = ephemeral;
//                           default CGN_OBSERVATORY_INGEST_PORT, unset =
//                           no ingest listener)
//   --ingest-queue N        bounded ingest queue capacity (default 4096)
//   --no-stream             skip the in-process StreamDriver: the daemon
//                           builds the world (the detectors need its
//                           routes) and serves push campaigns only
//
// Exit codes: 0 stream complete, 2 usage/bind error, 3 campaign aborted
// (kill-switch or watchdog; rerun with the same CGN_SUPER_CHECKPOINT_DIR
// to resume).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "observatory/ingest.hpp"
#include "observatory/observatory.hpp"
#include "observatory/stream_driver.hpp"
#include "scenario/env_config.hpp"
#include "super/supervisor.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--window S] [--pace-us N]\n"
               "          [--abort-after-shards N] [--exit-after-stream]\n"
               "          [--ingest-port N] [--ingest-queue N] [--no-stream]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgn;

  auto port = static_cast<std::uint16_t>(
      scenario::env_u64("CGN_OBSERVATORY_PORT", 9464));
  observatory::ObservatoryConfig obs_cfg;
  obs_cfg.window_s = scenario::env_double("CGN_OBSERVATORY_WINDOW_S", 3600.0);
  std::size_t abort_after_shards = 0;
  bool exit_after_stream = false;
  bool no_stream = false;
  int pace_us = 0;
  bool ingest_enabled = false;
  auto ingest_port = static_cast<std::uint16_t>(
      scenario::env_u64("CGN_OBSERVATORY_INGEST_PORT", 0));
  if (std::getenv("CGN_OBSERVATORY_INGEST_PORT") != nullptr)
    ingest_enabled = true;
  observatory::IngestConfig ingest_cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--window") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      obs_cfg.window_s = std::atof(v);
    } else if (arg == "--pace-us") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      pace_us = std::atoi(v);
    } else if (arg == "--abort-after-shards") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      abort_after_shards = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--exit-after-stream") {
      exit_after_stream = true;
    } else if (arg == "--ingest-port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      ingest_port = static_cast<std::uint16_t>(std::atoi(v));
      ingest_enabled = true;
    } else if (arg == "--ingest-queue") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      ingest_cfg.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--no-stream") {
      no_stream = true;
    } else {
      return usage(argv[0]);
    }
  }

  observatory::StreamDriverConfig driver_cfg;
  driver_cfg.world = scenario::scaled_config();
  driver_cfg.crawl.crawl.retry = scenario::retry_policy_from_env();
  driver_cfg.crawl.supervise =
      scenario::supervisor_config_from_env("crawl_ping");
  driver_cfg.netalyzr.retry = scenario::retry_policy_from_env();
  // In a v6-transition world (CGN_V6_TRANSITION=1) sessions run the
  // Big-NAT battery, which makes /figures grow the fig14_transition set.
  driver_cfg.netalyzr.transition_battery = driver_cfg.world.v6.enabled;
  driver_cfg.netalyzr.supervise =
      scenario::supervisor_config_from_env("netalyzr");
  driver_cfg.netalyzr.supervise.abort_after_shards = abort_after_shards;
  driver_cfg.pace_us = pace_us;

  observatory::StreamDriver driver(driver_cfg);
  observatory::Observatory obs(driver.routes(), driver.registry(), obs_cfg);

  std::string error;
  if (!obs.serve(port, &error)) {
    std::fprintf(stderr, "observatory: cannot serve: %s\n", error.c_str());
    return 2;
  }
  // The scripts parse this line to find an ephemeral port; keep its shape.
  std::printf("observatory: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(obs.port()));
  std::fflush(stdout);

  if (ingest_enabled) {
    if (!obs.serve_ingest(ingest_port, ingest_cfg, &error)) {
      std::fprintf(stderr, "observatory: cannot serve ingest: %s\n",
                   error.c_str());
      return 2;
    }
    // Parsed by scripts too — same shape as the HTTP announce line.
    std::printf("observatory: ingest on 127.0.0.1:%u\n",
                static_cast<unsigned>(obs.ingest_port()));
    std::fflush(stdout);
  }

  if (!no_stream) {
    try {
      driver.run(obs);
    } catch (const super::CampaignAborted& e) {
      std::fprintf(stderr,
                   "observatory: campaign aborted: %s (rerun with the same "
                   "CGN_SUPER_CHECKPOINT_DIR to resume)\n",
                   e.what());
      return 3;
    }

    std::printf("observatory: stream complete (%llu events)\n",
                static_cast<unsigned long long>(driver.events_emitted()));
    std::fflush(stdout);

    if (exit_after_stream) return 0;
  }
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}
