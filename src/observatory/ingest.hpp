// cgn::observatory push ingestion — external processes feed StreamEvents
// into a running observatory over a socket.
//
// The daemon's in-process StreamDriver covers one process; the paper's
// deployment is the opposite shape: long-lived collectors (Netalyzr
// front-ends, crawler boxes) pushing observations into a central analysis
// service over unreliable links, for months. This module is that boundary,
// hardened the way the checkpoint layer is hardened:
//
//  * Framed wire codec. Every frame is a 16-byte header — u32 magic
//    ("CGNI"), u32 payload length, u64 FNV-1a checksum of the payload
//    (super::wire::fnv1a, the checkpoint checksum) — followed by the
//    payload, whose first byte is the FrameType. All integers are
//    little-endian via super::wire. Events round-trip through the same
//    scenario::codec serializers the campaign checkpoints use, so a
//    push-fed observatory reproduces batch figures byte-identically.
//  * Strict validation. Bad magic, oversized declared lengths, mid-frame
//    EOF and stalls desynchronize the stream and close the connection;
//    checksum/payload/sequence errors are counted, answered with an error
//    frame, and the connection continues. Every rejected frame lands in
//    exactly one IngestStats counter.
//  * Bounded queue + explicit backpressure. Accepted events enter a queue
//    of at most queue_capacity items. When it is full, a `park` policy
//    connection is notified (park frame) and blocks until the drain thread
//    makes room; a `shed` policy connection has the event dropped with a
//    per-kind counter — deterministic overload degradation, never
//    unbounded growth.
//  * Resume cursors. Events carry a per-campaign sequence number; the
//    server acknowledges progress (ack frames) and replies to a hello with
//    the next expected sequence. A crashed-and-restarted feeder replays
//    its deterministic campaign from the start; the client skips
//    everything below the server's cursor, so the channel's figures are
//    byte-identical to an uninterrupted push. Shed events advance the
//    cursor too (they were *accepted* and deliberately dropped), so a
//    shedding server never invites an endless retransmit loop.
//  * Multi-campaign multiplexing. Each hello names a campaign; concurrent
//    connections feed independent Observatory channels with per-campaign
//    figure sets at /figures/<campaign>.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/socket_fault.hpp"
#include "observatory/observatory.hpp"
#include "super/wire.hpp"

namespace cgn::observatory {

// --- wire protocol ----------------------------------------------------------

/// "CGNI" little-endian — first 4 bytes of every frame.
inline constexpr std::uint32_t kIngestMagic = 0x494E4743;
inline constexpr std::uint32_t kIngestProtocolVersion = 1;
/// u32 magic + u32 payload length + u64 fnv1a(payload).
inline constexpr std::size_t kIngestHeaderBytes = 16;
/// The server acks every N-th accepted event (and on done).
inline constexpr std::uint64_t kIngestAckEvery = 256;

enum class IngestFrameType : std::uint8_t {
  // client -> server
  hello = 1,     ///< u32 protocol, str campaign, u8 policy, u64 world_seed,
                 ///< u64 plan_hash
  announce = 2,  ///< u64 cumulative announced-event total (max-merged)
  event = 3,     ///< u64 seq + encoded StreamEvent
  report = 4,    ///< str kind + encoded CampaignReport
  done = 5,      ///< stream complete; server replies done_ack after drain
  // server -> client
  resume = 16,    ///< u64 next expected seq (reply to hello)
  ack = 17,       ///< u64 cursor (next expected seq)
  park = 18,      ///< u64 queue depth; sent once before blocking the sender
  error = 19,     ///< str message
  done_ack = 20,  ///< every accepted event of this campaign is in the figures
};

/// What the server does with an accepted event when the queue is full.
enum class IngestOverloadPolicy : std::uint8_t {
  park = 0,  ///< block the connection until the drain thread makes room
  shed = 1,  ///< drop the event, count it per kind, advance the cursor
};

/// Frames a payload: header (magic, length, checksum) + payload bytes.
[[nodiscard]] std::string ingest_frame(IngestFrameType type,
                                       std::string_view body = {});

/// StreamEvent codec — delegates struct fields to scenario::codec so the
/// bytes match the campaign checkpoints exactly.
void put_stream_event(super::wire::Writer& w, const StreamEvent& event);
/// False on unknown kind or short payload (reader may also flip !ok()).
[[nodiscard]] bool get_stream_event(super::wire::Reader& r, StreamEvent& out);

void put_campaign_report(super::wire::Writer& w,
                         const super::CampaignReport& report);
[[nodiscard]] bool get_campaign_report(super::wire::Reader& r,
                                       super::CampaignReport& out);

// --- server -----------------------------------------------------------------

struct IngestConfig {
  /// Bounded ingest queue: events admitted but not yet drained into the
  /// detectors. Full queue => park or shed, per the connection's policy.
  std::size_t queue_capacity = 4096;
  /// Frames declaring more payload than this are rejected (bad_length) and
  /// the connection closed — a giant length must never allocate.
  std::size_t max_frame_payload = 1u << 20;
  /// SO_RCVTIMEO per connection: a slow-loris feeder mid-frame is cut off
  /// and counted (timeouts), not allowed to pin a thread forever.
  int recv_timeout_ms = 30000;
  /// Concurrent push connections; excess accepts are closed immediately.
  int max_connections = 16;
};

/// Point-in-time counter snapshot. Every frame the server ever saw is
/// accounted: accepted, replayed (idempotent duplicate), or in exactly one
/// reject bucket.
struct IngestStats {
  std::uint64_t connections = 0;      ///< accepted connections, lifetime
  std::uint64_t frames_accepted = 0;  ///< frames parsed and applied
  std::uint64_t events_enqueued = 0;
  std::uint64_t events_ingested = 0;  ///< drained into the detectors
  std::uint64_t events_replayed = 0;  ///< seq below cursor: skipped, acked
  std::uint64_t seq_gap = 0;          ///< seq ahead of cursor: rejected
  std::uint64_t bad_magic = 0;
  std::uint64_t bad_length = 0;
  std::uint64_t bad_checksum = 0;
  std::uint64_t truncated = 0;  ///< EOF or stall mid-frame
  std::uint64_t bad_payload = 0;
  std::uint64_t unknown_type = 0;
  std::uint64_t identity_rejected = 0;  ///< hello for a bound campaign with
                                        ///< a different world/plan identity
  std::uint64_t timeouts = 0;           ///< recv timeouts (slow loris)
  std::uint64_t parks = 0;
  std::uint64_t shed_total = 0;
  std::array<std::uint64_t, 5> shed_by_kind{};  ///< StreamEvent::Kind index
  std::uint64_t queue_depth = 0;
  std::uint64_t max_queue_depth = 0;  ///< high-water mark == max ingest lag

  [[nodiscard]] std::uint64_t rejected_total() const noexcept {
    return seq_gap + bad_magic + bad_length + bad_checksum + truncated +
           bad_payload + unknown_type + identity_rejected;
  }
};

/// The push-ingestion listener: accept thread + one thread per connection
/// feeding a bounded queue, one drain thread applying items to the
/// Observatory. Owned by the Observatory (serve_ingest()).
class IngestServer {
 public:
  IngestServer(Observatory& obs, IngestConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the threads.
  bool start(std::uint16_t port, std::string* error = nullptr);
  /// Stops accepting, closes every connection, joins all threads.
  void stop();

  [[nodiscard]] bool running() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

  [[nodiscard]] IngestStats stats() const;
  /// Next expected sequence number of `campaign` (0 if never seen).
  [[nodiscard]] std::uint64_t cursor(const std::string& campaign) const;

  /// Test hook: freeze the drain thread so the queue backs up
  /// deterministically (backpressure / shedding drills).
  void set_drain_paused(bool paused);

 private:
  struct Item {
    enum class Kind : std::uint8_t { event, report, done } kind = Kind::event;
    std::string campaign;
    StreamEvent event;
    std::string report_kind;
    super::CampaignReport report;
    /// done items: flipped (under queue_mu_) once the drain applied it.
    std::shared_ptr<bool> done_gate;
  };

  struct CampaignState {
    std::uint64_t next_seq = 0;
    std::uint64_t world_seed = 0;
    std::uint64_t plan_hash = 0;
    bool bound = false;  ///< identity fields set by the first hello
  };

  void accept_loop();
  void handle_connection(int fd);
  void drain_loop();
  /// Joins connection threads that already exited (called under conns_mu_)
  /// so a long-lived server's thread roster stays bounded by live
  /// connections, not lifetime connections.
  void reap_finished_locked();
  /// True once enqueued (or shed, which still counts as handled); false
  /// only when the server is stopping.
  bool enqueue(Item item, IngestOverloadPolicy policy, int fd);
  void note_queue_depth_locked();

  Observatory& obs_;
  IngestConfig config_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::thread drain_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread::id> finished_ids_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  ///< drain waits: items or stop
  std::condition_variable space_cv_;  ///< parked producers wait: room or stop
  std::condition_variable drain_cv_;  ///< done-gate waiters
  std::deque<Item> queue_;
  bool drain_paused_ = false;

  mutable std::mutex cursors_mu_;
  std::map<std::string, CampaignState> campaigns_;

  // Exact cross-thread counters (several connection threads write them, so
  // the single-writer obs cells don't fit; /metrics reads them via probes).
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> frames_accepted_{0};
  std::atomic<std::uint64_t> events_enqueued_{0};
  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> events_replayed_{0};
  std::atomic<std::uint64_t> seq_gap_{0};
  std::atomic<std::uint64_t> bad_magic_{0};
  std::atomic<std::uint64_t> bad_length_{0};
  std::atomic<std::uint64_t> bad_checksum_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> bad_payload_{0};
  std::atomic<std::uint64_t> unknown_type_{0};
  std::atomic<std::uint64_t> identity_rejected_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::array<std::atomic<std::uint64_t>, 5> shed_by_kind_{};
  std::atomic<std::uint64_t> max_queue_depth_{0};
};

// --- client -----------------------------------------------------------------

/// A push connection failed: refused, reset, mid-frame fault injection, a
/// server error frame, or a protocol violation.
class IngestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PushClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string campaign = "push";
  IngestOverloadPolicy policy = IngestOverloadPolicy::park;
  /// Campaign identity (hello): the server refuses to mix worlds into one
  /// campaign channel.
  std::uint64_t world_seed = 0;
  std::uint64_t plan_hash = 0;
  /// Blocking-read budget for resume/done_ack replies. Generous: done_ack
  /// waits for the server to drain a full queue.
  int reply_timeout_ms = 600000;
  /// Deterministic socket-fault injection on the send path (tests/soak).
  fault::SocketFaultProfile faults;
};

/// EventSink that frames every observation onto the socket. The same
/// StreamDriver that feeds an in-process Observatory feeds this instead —
/// that symmetry is the byte-identity argument for push-fed figures.
class PushClient : public EventSink {
 public:
  explicit PushClient(PushClientConfig config);
  ~PushClient() override;

  PushClient(const PushClient&) = delete;
  PushClient& operator=(const PushClient&) = delete;

  /// Connects, sends hello, blocks for the server's resume cursor.
  /// Throws IngestError on refusal or protocol violation.
  void connect();
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// The server's next expected sequence at connect() time. ingest() calls
  /// numbered below it are skipped client-side (idempotent replay).
  [[nodiscard]] std::uint64_t resume_cursor() const noexcept {
    return resume_cursor_;
  }
  [[nodiscard]] std::uint64_t events_sent() const noexcept {
    return events_sent_;
  }
  [[nodiscard]] std::uint64_t events_skipped() const noexcept {
    return events_skipped_;
  }
  [[nodiscard]] std::uint64_t parks_seen() const noexcept { return parks_; }
  [[nodiscard]] std::uint64_t acked_cursor() const noexcept { return acked_; }

  // EventSink: every method throws IngestError when the socket dies.
  void add_stream_total(std::uint64_t n) override;
  void ingest(const StreamEvent& event) override;
  void note_stream_done() override;
  void note_campaign_report(const std::string& kind,
                            const super::CampaignReport& report) override;
  // capture_trace: inherited no-op — hop traces never cross the wire.

 private:
  void send_frame(IngestFrameType type, std::string_view body);
  void raw_send(const char* data, std::size_t n);
  /// Applies one server frame (ack/park/error/done_ack). error throws.
  void apply_server_frame(IngestFrameType type, std::string_view body);
  /// Drains frames the server already sent (non-blocking), or blocks until
  /// `until` arrives when `until != nullptr`.
  void pump_incoming(const IngestFrameType* until);

  PushClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t resume_cursor_ = 0;
  std::uint64_t announced_ = 0;
  std::uint64_t events_sent_ = 0;
  std::uint64_t events_skipped_ = 0;
  std::uint64_t parks_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool done_acked_ = false;
  std::string rxbuf_;
};

}  // namespace cgn::observatory
