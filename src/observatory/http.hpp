// Minimal blocking HTTP/1.0 server for the observatory's pull endpoints.
//
// Deliberately tiny: one accept thread, one request per connection
// (Connection: close), GET only, loopback only. That is exactly what a
// Prometheus scraper or a curl in a CI script needs, and it keeps the
// serving path off every simulation hot path — the sim never blocks on a
// socket; scrapers pay for their own snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace cgn::observatory {

/// A rendered HTTP response body plus its media type.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Route handler: receives the request path (no host, no query split —
/// handlers that care can parse), returns the response. Called on the
/// accept thread; must synchronize with the rest of the process itself.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Parsing limits for one request. A public endpoint-shaped daemon must
/// bound what a client can make it buffer: oversized request heads get
/// 431, a slow-loris that stalls mid-request gets 408 when the receive
/// timeout fires, requests carrying a body get 413 — all explicit 4xx
/// replies instead of a silent close.
struct HttpServerConfig {
  int recv_timeout_ms = 5000;  ///< SO_RCVTIMEO; a stalled client gets 408
  int send_timeout_ms = 5000;  ///< SO_SNDTIMEO; a stalled reader is dropped
  std::size_t max_request_bytes = 8192;  ///< request-head cap (431 beyond)
};

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()) and
  /// starts the accept thread. Returns false with `*error` set when the
  /// socket can't be bound. Calling start() twice without stop() fails.
  bool start(std::uint16_t port, HttpHandler handler,
             std::string* error = nullptr, HttpServerConfig config = {});

  /// Stops accepting, joins the accept thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return listen_fd_ >= 0; }

  /// The bound port (the kernel's pick when start() was given 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered since start(), any status. Readable from any thread.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  HttpServerConfig config_;
  std::thread thread_;
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace cgn::observatory
