// cgn::observatory — the streaming analysis engine behind the live
// endpoint.
//
// An Observatory ingests the campaign as an ordered event stream
// (BitTorrent crawl observations and Netalyzr sessions, see StreamDriver)
// and keeps the paper's detectors *incrementally* up to date: the §4.1
// leakage clustering runs on analysis::StreamingBtAnalyzer, the §4.2
// session classification on analysis::StreamingNetalyzrClassifier, and the
// §5 coverage roll-up is derived from both on demand. Because the streaming
// engines are the same code the batch detectors delegate to — and their
// results are order-independent — the figures served mid-stream converge
// on exactly the bytes the bench binaries write to BENCH_<name>.json.
//
// Streams arrive through two doors. The in-process StreamDriver feeds the
// *default channel* (the historical single-campaign shape of /figures and
// /health). External processes push frames through an IngestServer
// (serve_ingest(); see ingest.hpp), each hello naming a campaign that gets
// its own channel — an independent detector stack with per-campaign figure
// sets at /figures/<campaign>. Both doors run the same detector code over
// the same event structs, so a push-fed channel's figures are byte-
// identical to the batch ground truth.
//
// The HTTP side (serve()) exposes:
//   GET /metrics          — Prometheus text exposition of the registry
//   GET /figures          — default-channel figure sets (bench JSON schema)
//   GET /figures/<name>   — a push campaign's figure sets (same schema)
//   GET /health           — uptime, ingest lag, windows, campaigns, push
//   GET /trace            — the latest captured hop-trace window
//
// Threading: producers call ingest()/note_*() (the StreamDriver thread
// and/or the IngestServer's drain thread); the HttpServer's accept thread
// calls the render methods. Every touch of streaming state goes through
// one mutex — scrape cost lands on the scraper, never on the simulation
// hot path.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "analysis/coverage.hpp"
#include "analysis/figures.hpp"
#include "analysis/stream.hpp"
#include "dht/messages.hpp"
#include "netalyzr/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "observatory/http.hpp"
#include "super/supervisor.hpp"

namespace cgn::observatory {

class IngestServer;
struct IngestConfig;

/// One campaign observation, as replayed by the StreamDriver.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    bt_queried,        ///< crawler queried this contact
    bt_learned,        ///< contact learned from a nodes reply
    bt_ping_response,  ///< contact answered the bt_ping sweep
    bt_leak,           ///< `contact` leaked internal peer `internal`
    nz_session,        ///< one finished Netalyzr session
  };

  Kind kind = Kind::bt_queried;
  /// Simulated campaign time of the observation — drives windowing.
  double time = 0.0;
  dht::Contact contact;             ///< bt_* events (the leaker for bt_leak)
  dht::Contact internal;            ///< bt_leak only: the leaked peer
  netalyzr::SessionResult session;  ///< nz_session only
};

/// Highest StreamEvent::Kind value — wire decoders validate against it.
inline constexpr std::uint8_t kStreamEventKindMax =
    static_cast<std::uint8_t>(StreamEvent::Kind::nz_session);

/// Abstract destination for a campaign event stream. The StreamDriver
/// writes through this interface, so the exact same campaign replay can
/// feed an in-process Observatory or a PushClient framing events onto a
/// socket (ingest.hpp) — which is what makes push-fed figures a replay of
/// the in-process ones rather than a parallel implementation.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Announces `n` more events on their way — ingest lag is
  /// (announced − ingested). Call before emitting a batch.
  virtual void add_stream_total(std::uint64_t n) = 0;
  virtual void ingest(const StreamEvent& event) = 0;
  /// Marks the stream complete.
  virtual void note_stream_done() = 0;
  /// Attaches a campaign's supervision report under `kind` (e.g.
  /// "crawl_ping", "netalyzr").
  virtual void note_campaign_report(const std::string& kind,
                                    const super::CampaignReport& report) = 0;
  /// Hop-trace capture is in-process only; remote sinks drop it.
  virtual void capture_trace(const obs::TraceRing& ring) { (void)ring; }
};

/// Per-window ingest tallies (window = floor(event.time / window_s)).
struct WindowTally {
  std::int64_t index = 0;
  std::uint64_t events = 0;
  std::uint64_t bt_contacts = 0;  ///< queried + learned + ping responses
  std::uint64_t leaks = 0;
  std::uint64_t sessions = 0;
};

struct ObservatoryConfig {
  /// Window length in simulated seconds (env knob CGN_OBSERVATORY_WINDOW_S).
  double window_s = 3600.0;
  /// Closed windows kept for /health (oldest evicted beyond this).
  std::size_t max_window_history = 48;
};

class Observatory : public EventSink {
 public:
  Observatory(const netcore::RoutingTable& routes,
              const netcore::AsRegistry& registry,
              ObservatoryConfig config = {});
  ~Observatory() override;

  Observatory(const Observatory&) = delete;
  Observatory& operator=(const Observatory&) = delete;

  // --- producer side: default channel (EventSink) --------------------------

  void ingest(const StreamEvent& event) override;
  void add_stream_total(std::uint64_t n) override;
  void note_stream_done() override;
  void note_campaign_report(const std::string& kind,
                            const super::CampaignReport& report) override;

  /// Copies the ring's retained events + kind tallies for /trace and bumps
  /// the observatory.trace.* counters by the tally deltas since the last
  /// capture of the same ring lineage.
  void capture_trace(const obs::TraceRing& ring) override;

  // --- producer side: named push-campaign channels -------------------------
  // Called by the IngestServer's drain thread; channels are created on
  // first touch and live until drop_campaign().

  void ingest(const std::string& campaign, const StreamEvent& event);
  /// Cumulative announced total, max-merged — a reconnected feeder re-
  /// announcing the same campaign never double-counts.
  void set_stream_total(const std::string& campaign, std::uint64_t total);
  void note_stream_done(const std::string& campaign);
  void note_campaign_report(const std::string& campaign,
                            const std::string& kind,
                            const super::CampaignReport& report);
  /// Forgets a finished push campaign (detectors, sessions, reports) so a
  /// long-running daemon's memory is bounded by its *live* campaigns.
  void drop_campaign(const std::string& campaign);

  // --- consumer side (any thread) ----------------------------------------

  [[nodiscard]] std::uint64_t events_ingested() const;
  [[nodiscard]] std::uint64_t stream_total() const;
  [[nodiscard]] bool stream_done() const;
  [[nodiscard]] std::uint64_t events_ingested(const std::string& campaign) const;
  [[nodiscard]] bool stream_done(const std::string& campaign) const;

  /// Current detector states (full batch-equivalent result structs).
  [[nodiscard]] analysis::BtDetectionResult bt_snapshot() const;
  [[nodiscard]] analysis::NetalyzrDetectionResult nz_snapshot() const;
  [[nodiscard]] analysis::CoverageResult coverage_snapshot() const;
  /// Transition-mechanism scoring over every battery-carrying session
  /// ingested so far (empty result in v4-only campaigns).
  [[nodiscard]] analysis::TransitionDetectionResult transition_snapshot()
      const;

  /// The bench figure sets computed from the current stream state, keyed
  /// by bench name ("fig04_clusters", "fig05_netalyzr_candidates",
  /// "tab05_coverage", plus "fig14_transition" once battery sessions
  /// appear on the stream).
  [[nodiscard]] std::map<std::string, analysis::Figures> figure_sets() const;
  /// Same, for a named push campaign (empty map when it doesn't exist).
  [[nodiscard]] std::map<std::string, analysis::Figures> figure_sets(
      const std::string& campaign) const;

  /// JSON bodies of the endpoints (also useful headless, without serve()).
  void render_figures_json(std::ostream& os) const;
  void render_health_json(std::ostream& os) const;
  void render_trace_json(std::ostream& os) const;

  // --- endpoints ----------------------------------------------------------

  /// Starts the HTTP endpoint on 127.0.0.1:`port` (0 = ephemeral).
  bool serve(std::uint16_t port, std::string* error = nullptr);
  void stop_serving();
  [[nodiscard]] bool serving() const noexcept { return server_.running(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] std::uint64_t http_requests() const noexcept {
    return server_.requests_served();
  }

  /// Starts the push-ingestion listener on 127.0.0.1:`port` (0 =
  /// ephemeral). At most one per observatory.
  bool serve_ingest(std::uint16_t port, const IngestConfig& config,
                    std::string* error = nullptr);
  bool serve_ingest(std::uint16_t port, std::string* error = nullptr);
  void stop_ingest();
  [[nodiscard]] bool ingest_serving() const noexcept;
  [[nodiscard]] std::uint16_t ingest_port() const noexcept;
  [[nodiscard]] IngestServer* ingest_server() noexcept {
    return ingest_.get();
  }

  /// The route dispatch behind serve(), exposed for in-process tests.
  [[nodiscard]] HttpResponse handle(const std::string& path) const;

 private:
  /// One independent detector stack over one event stream. The default
  /// channel (main_) serves the in-process StreamDriver and the historical
  /// endpoint shapes; push campaigns each get their own.
  struct Channel {
    explicit Channel(const netcore::RoutingTable& routes)
        : bt(routes), nz(routes) {}
    analysis::StreamingBtAnalyzer bt;
    analysis::StreamingNetalyzrClassifier nz;
    /// Battery-carrying sessions retained verbatim: the transition
    /// verdicts need AS-level aggregates (the DS-Lite signature), so fig14
    /// re-runs the batch detector over them on demand.
    std::vector<netalyzr::SessionResult> transition_sessions;
    std::uint64_t ingested = 0;
    std::uint64_t announced = 0;
    bool done = false;
    std::map<std::string, super::CampaignReport> reports;
  };

  void roll_window_locked(double t);
  void ingest_into_locked(Channel& ch, const StreamEvent& event);
  Channel& push_channel_locked(const std::string& campaign);
  [[nodiscard]] const Channel* find_push_locked(
      const std::string& campaign) const;
  [[nodiscard]] std::map<std::string, analysis::Figures> figure_sets_locked(
      const Channel& ch) const;
  void render_figures_locked(std::ostream& os, const Channel& ch) const;
  void render_health_locked(std::ostream& os) const;
  void render_trace_locked(std::ostream& os) const;

  const netcore::RoutingTable& routes_;
  const netcore::AsRegistry& registry_;
  ObservatoryConfig config_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  Channel main_;
  std::map<std::string, std::unique_ptr<Channel>> push_;
  double virtual_time_ = 0.0;
  bool window_open_ = false;
  WindowTally current_window_;
  std::vector<WindowTally> closed_windows_;
  std::uint64_t windows_closed_ = 0;
  std::vector<obs::TraceEvent> trace_events_;
  std::array<std::uint64_t, obs::TraceRing::kKindTallySlots> trace_tally_{};
  std::uint64_t trace_total_ = 0;
  std::array<std::uint64_t, obs::TraceRing::kKindTallySlots>
      trace_tally_seen_{};

  obs::Counter& events_counter_;
  obs::Counter& leaks_counter_;
  obs::Counter& sessions_counter_;
  obs::Counter& windows_counter_;

  HttpServer server_;
  std::unique_ptr<IngestServer> ingest_;
};

}  // namespace cgn::observatory
