// cgn::observatory — the streaming analysis engine behind the live
// endpoint.
//
// An Observatory ingests the campaign as an ordered event stream
// (BitTorrent crawl observations and Netalyzr sessions, see StreamDriver)
// and keeps the paper's detectors *incrementally* up to date: the §4.1
// leakage clustering runs on analysis::StreamingBtAnalyzer, the §4.2
// session classification on analysis::StreamingNetalyzrClassifier, and the
// §5 coverage roll-up is derived from both on demand. Because the streaming
// engines are the same code the batch detectors delegate to — and their
// results are order-independent — the figures served mid-stream converge
// on exactly the bytes the bench binaries write to BENCH_<name>.json.
//
// The HTTP side (serve()) exposes:
//   GET /metrics — Prometheus text exposition of the whole global registry
//   GET /figures — figure sets in the bench JSON "figures" schema
//   GET /health  — uptime, ingest lag, window tallies, campaign coverage
//   GET /trace   — the latest captured hop-trace window + kind tallies
//
// Threading: one producer thread calls ingest()/note_*(); the HttpServer's
// accept thread calls the render methods. Every touch of streaming state
// goes through one mutex — scrape cost lands on the scraper, never on the
// simulation hot path.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "analysis/coverage.hpp"
#include "analysis/figures.hpp"
#include "analysis/stream.hpp"
#include "dht/messages.hpp"
#include "netalyzr/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "observatory/http.hpp"
#include "super/supervisor.hpp"

namespace cgn::observatory {

/// One campaign observation, as replayed by the StreamDriver.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    bt_queried,        ///< crawler queried this contact
    bt_learned,        ///< contact learned from a nodes reply
    bt_ping_response,  ///< contact answered the bt_ping sweep
    bt_leak,           ///< `contact` leaked internal peer `internal`
    nz_session,        ///< one finished Netalyzr session
  };

  Kind kind = Kind::bt_queried;
  /// Simulated campaign time of the observation — drives windowing.
  double time = 0.0;
  dht::Contact contact;             ///< bt_* events (the leaker for bt_leak)
  dht::Contact internal;            ///< bt_leak only: the leaked peer
  netalyzr::SessionResult session;  ///< nz_session only
};

/// Per-window ingest tallies (window = floor(event.time / window_s)).
struct WindowTally {
  std::int64_t index = 0;
  std::uint64_t events = 0;
  std::uint64_t bt_contacts = 0;  ///< queried + learned + ping responses
  std::uint64_t leaks = 0;
  std::uint64_t sessions = 0;
};

struct ObservatoryConfig {
  /// Window length in simulated seconds (env knob CGN_OBSERVATORY_WINDOW_S).
  double window_s = 3600.0;
  /// Closed windows kept for /health (oldest evicted beyond this).
  std::size_t max_window_history = 48;
};

class Observatory {
 public:
  Observatory(const netcore::RoutingTable& routes,
              const netcore::AsRegistry& registry,
              ObservatoryConfig config = {});
  ~Observatory();

  Observatory(const Observatory&) = delete;
  Observatory& operator=(const Observatory&) = delete;

  // --- producer side ------------------------------------------------------

  void ingest(const StreamEvent& event);

  /// Announces `n` more events on their way — /health's ingest lag is
  /// (announced − ingested). Call before emitting a batch.
  void add_stream_total(std::uint64_t n);

  /// Marks the stream complete (lag forced to announced-but-never-sent 0
  /// is the caller's job; this just flips /health status to "complete").
  void note_stream_done();

  /// Attaches a campaign's supervision report under `kind` (e.g.
  /// "crawl_ping", "netalyzr"); /health renders shard status and coverage
  /// from it, and the §5 roll-up folds it into MeasurementCoverage.
  void note_campaign_report(const std::string& kind,
                            const super::CampaignReport& report);

  /// Copies the ring's retained events + kind tallies for /trace and bumps
  /// the observatory.trace.* counters by the tally deltas since the last
  /// capture of the same ring lineage.
  void capture_trace(const obs::TraceRing& ring);

  // --- consumer side (any thread) ----------------------------------------

  [[nodiscard]] std::uint64_t events_ingested() const;
  [[nodiscard]] std::uint64_t stream_total() const;
  [[nodiscard]] bool stream_done() const;

  /// Current detector states (full batch-equivalent result structs).
  [[nodiscard]] analysis::BtDetectionResult bt_snapshot() const;
  [[nodiscard]] analysis::NetalyzrDetectionResult nz_snapshot() const;
  [[nodiscard]] analysis::CoverageResult coverage_snapshot() const;
  /// Transition-mechanism scoring over every battery-carrying session
  /// ingested so far (empty result in v4-only campaigns).
  [[nodiscard]] analysis::TransitionDetectionResult transition_snapshot()
      const;

  /// The bench figure sets computed from the current stream state, keyed
  /// by bench name ("fig04_clusters", "fig05_netalyzr_candidates",
  /// "tab05_coverage", plus "fig14_transition" once battery sessions
  /// appear on the stream).
  [[nodiscard]] std::map<std::string, analysis::Figures> figure_sets() const;

  /// JSON bodies of the endpoints (also useful headless, without serve()).
  void render_figures_json(std::ostream& os) const;
  void render_health_json(std::ostream& os) const;
  void render_trace_json(std::ostream& os) const;

  // --- endpoint -----------------------------------------------------------

  /// Starts the HTTP endpoint on 127.0.0.1:`port` (0 = ephemeral).
  bool serve(std::uint16_t port, std::string* error = nullptr);
  void stop_serving();
  [[nodiscard]] bool serving() const noexcept { return server_.running(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] std::uint64_t http_requests() const noexcept {
    return server_.requests_served();
  }

  /// The route dispatch behind serve(), exposed for in-process tests.
  [[nodiscard]] HttpResponse handle(const std::string& path) const;

 private:
  void roll_window_locked(double t);
  void render_health_locked(std::ostream& os) const;
  void render_trace_locked(std::ostream& os) const;
  void render_figures_locked(std::ostream& os) const;

  const netcore::AsRegistry& registry_;
  ObservatoryConfig config_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  analysis::StreamingBtAnalyzer bt_;
  analysis::StreamingNetalyzrClassifier nz_;
  /// Battery-carrying sessions retained verbatim: the transition verdicts
  /// need AS-level aggregates (the DS-Lite signature), so fig14 re-runs
  /// the batch detector over them on demand. Empty in v4-only campaigns.
  std::vector<netalyzr::SessionResult> transition_sessions_;
  std::uint64_t ingested_ = 0;
  std::uint64_t stream_total_ = 0;
  bool stream_done_ = false;
  double virtual_time_ = 0.0;
  bool window_open_ = false;
  WindowTally current_window_;
  std::vector<WindowTally> closed_windows_;
  std::uint64_t windows_closed_ = 0;
  std::map<std::string, super::CampaignReport> reports_;
  std::vector<obs::TraceEvent> trace_events_;
  std::array<std::uint64_t, obs::TraceRing::kKindTallySlots> trace_tally_{};
  std::uint64_t trace_total_ = 0;
  std::array<std::uint64_t, obs::TraceRing::kKindTallySlots>
      trace_tally_seen_{};

  obs::Counter& events_counter_;
  obs::Counter& leaks_counter_;
  obs::Counter& sessions_counter_;
  obs::Counter& windows_counter_;

  HttpServer server_;
};

}  // namespace cgn::observatory
