#include "observatory/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace cgn::observatory {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

std::string_view status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE the
    // whole daemon.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool HttpServer::start(std::uint16_t port, HttpHandler handler,
                       std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (listen_fd_ >= 0) {
    if (error) *error = "already running";
    return false;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return fail("bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return fail("listen");
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  handler_ = std::move(handler);
  requests_.store(0, std::memory_order_relaxed);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept() with an error; the loop then
  // exits and the close happens exactly once, here.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken beyond repair)
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // A stalled client must not wedge the accept thread forever.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse resp;
  const std::size_t line_end = request.find('\r');
  const std::string line =
      request.substr(0, line_end == std::string::npos ? request.find('\n')
                                                      : line_end);
  std::istringstream parse(line);
  std::string method, path, version;
  parse >> method >> path >> version;
  if (method.empty() || path.empty()) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (method != "GET") {
    resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    // Handlers see the path without the query string.
    const std::size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
    try {
      resp = handler_(path);
    } catch (const std::exception& e) {
      resp = {500, "text/plain; charset=utf-8",
              std::string("internal error: ") + e.what() + "\n"};
    }
  }

  std::ostringstream head;
  head << "HTTP/1.0 " << resp.status << ' ' << status_text(resp.status)
       << "\r\nContent-Type: " << resp.content_type
       << "\r\nContent-Length: " << resp.body.size()
       << "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.str() + resp.body);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cgn::observatory
