#include "observatory/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace cgn::observatory {

namespace {

std::string_view status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Internal Server Error";
  }
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE the
    // whole daemon.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // a signal is not a short write
    if (n <= 0) return false;  // peer gone or SO_SNDTIMEO fired
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Case-insensitive Content-Length scan over the request head. Returns 0
/// when absent or unparsable — only a positive declared body is rejected.
std::size_t declared_body_bytes(const std::string& head) {
  std::string lower(head.size(), '\0');
  for (std::size_t i = 0; i < head.size(); ++i)
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(head[i])));
  const std::size_t at = lower.find("content-length:");
  if (at == std::string::npos) return 0;
  std::size_t i = at + sizeof("content-length:") - 1;
  while (i < lower.size() && (lower[i] == ' ' || lower[i] == '\t')) ++i;
  std::size_t value = 0;
  bool any = false;
  while (i < lower.size() && lower[i] >= '0' && lower[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(lower[i] - '0');
    any = true;
    ++i;
  }
  return any ? value : 0;
}

}  // namespace

bool HttpServer::start(std::uint16_t port, HttpHandler handler,
                       std::string* error, HttpServerConfig config) {
  auto fail = [error](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (listen_fd_ >= 0) {
    if (error) *error = "already running";
    return false;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return fail("bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return fail("listen");
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  handler_ = std::move(handler);
  config_ = config;
  if (config_.max_request_bytes == 0) config_.max_request_bytes = 8192;
  requests_.store(0, std::memory_order_relaxed);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept() with an error; the loop then
  // exits and the close happens exactly once, here.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken beyond repair)
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // A stalled peer must not wedge the accept thread forever, in either
  // direction.
  timeval tv{};
  tv.tv_sec = config_.recv_timeout_ms / 1000;
  tv.tv_usec = (config_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  timeval stv{};
  stv.tv_sec = config_.send_timeout_ms / 1000;
  stv.tv_usec = (config_.send_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &stv, sizeof stv);

  std::string request;
  char buf[1024];
  bool complete = false;
  bool oversized = false;
  bool timed_out = false;
  while (!complete) {
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      complete = true;  // full request head
      break;
    }
    // Tolerate bare single-line requests ("GET /x\n" from a hand-rolled
    // probe): one complete line and nothing after it is a whole request.
    const std::size_t nl = request.find('\n');
    if (nl != std::string::npos && nl == request.size() - 1) {
      complete = true;
      break;
    }
    if (request.size() >= config_.max_request_bytes) {
      oversized = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;  // slow loris: stalled mid-request
      break;
    }
    break;  // EOF (or hard error): parse whatever arrived
  }

  HttpResponse resp;
  if (oversized) {
    resp = {431, "text/plain; charset=utf-8", "request head too large\n"};
  } else if (timed_out && !complete) {
    resp = {408, "text/plain; charset=utf-8", "request timed out\n"};
  } else if (request.find('\0') != std::string::npos) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (declared_body_bytes(request) > 0) {
    resp = {413, "text/plain; charset=utf-8", "request bodies not accepted\n"};
  } else {
    const std::size_t line_end = request.find('\r');
    const std::string line =
        request.substr(0, line_end == std::string::npos ? request.find('\n')
                                                        : line_end);
    std::istringstream parse(line);
    std::string method, path, version;
    parse >> method >> path >> version;
    if (method.empty() || path.empty()) {
      resp = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (method != "GET") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      // Handlers see the path without the query string.
      const std::size_t q = path.find('?');
      if (q != std::string::npos) path.resize(q);
      try {
        resp = handler_(path);
      } catch (const std::exception& e) {
        resp = {500, "text/plain; charset=utf-8",
                std::string("internal error: ") + e.what() + "\n"};
      }
    }
  }

  std::ostringstream head;
  head << "HTTP/1.0 " << resp.status << ' ' << status_text(resp.status)
       << "\r\nContent-Type: " << resp.content_type
       << "\r\nContent-Length: " << resp.body.size()
       << "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.str() + resp.body);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cgn::observatory
