#include "observatory/stream_driver.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/trace.hpp"

namespace cgn::observatory {

StreamDriver::StreamDriver(StreamDriverConfig config)
    : config_(std::move(config)),
      bt_world_(scenario::build_internet(config_.world)) {}

void StreamDriver::emit(EventSink& sink, std::vector<StreamEvent> events,
                        double t_begin, double t_end) {
  if (events.empty()) return;
  sink.add_stream_total(events.size());
  const double span = t_end > t_begin ? t_end - t_begin : 0.0;
  const auto n = static_cast<double>(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].time = t_begin + span * (static_cast<double>(i + 1) / n);
    sink.ingest(events[i]);
    if (config_.pace_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(config_.pace_us));
  }
  emitted_ += events.size();
}

void StreamDriver::run(EventSink& sink) {
  double virtual_end = 0.0;

  if (config_.run_bt) {
    scenario::Internet& world = *bt_world_;
    // The BT phase is single-threaded, so a hop-trace ring may observe it;
    // the crawl's ping sweep shards across workers, so detach before it.
    obs::TraceRing ring(512);
    world.net.set_hop_trace(&ring);
    scenario::run_bittorrent_phase(world, config_.bt_phase);
    world.net.set_hop_trace(nullptr);
    sink.capture_trace(ring);

    crawler_ = scenario::run_crawl_phase(world, config_.crawl, &bt_report_);
    sink.note_campaign_report("crawl_ping", bt_report_);

    const crawler::CrawlDataset& data = crawler_->dataset();
    std::vector<StreamEvent> events;
    events.reserve(data.queried_peers() + data.learned_peers() +
                   data.responding_peers() + data.leaks().size());
    auto contact_event = [&events](StreamEvent::Kind kind,
                                   const dht::Contact& c) {
      StreamEvent e;
      e.kind = kind;
      e.contact = c;
      events.push_back(std::move(e));
    };
    for (const dht::Contact& c : data.queried_contacts())
      contact_event(StreamEvent::Kind::bt_queried, c);
    for (const dht::Contact& c : data.learned_contacts())
      contact_event(StreamEvent::Kind::bt_learned, c);
    for (const dht::Contact& c : data.responding_contacts())
      contact_event(StreamEvent::Kind::bt_ping_response, c);
    for (const crawler::LeakEdge& edge : data.leaks()) {
      StreamEvent e;
      e.kind = StreamEvent::Kind::bt_leak;
      e.contact = edge.leaker;
      e.internal = edge.internal;
      events.push_back(std::move(e));
    }
    virtual_end = world.clock.now();
    emit(sink, std::move(events), 0.0, virtual_end);
  }

  if (config_.run_netalyzr) {
    // The Netalyzr campaign must be the first fork consumer of its world to
    // reproduce bench_fig05's substream — build a fresh one when the crawl
    // already consumed forks from bt_world_.
    scenario::Internet* world = bt_world_.get();
    if (config_.run_bt) {
      nz_world_ = scenario::build_internet(config_.world);
      world = nz_world_.get();
    }
    const std::vector<netalyzr::SessionResult> sessions =
        scenario::run_netalyzr_campaign(*world, config_.netalyzr,
                                        &nz_report_);
    sink.note_campaign_report("netalyzr", nz_report_);

    std::vector<StreamEvent> events;
    events.reserve(sessions.size());
    for (const netalyzr::SessionResult& s : sessions) {
      StreamEvent e;
      e.kind = StreamEvent::Kind::nz_session;
      e.session = s;
      events.push_back(std::move(e));
    }
    // Netalyzr virtual times continue after the crawl's on the shared
    // stream axis.
    emit(sink, std::move(events), virtual_end,
         virtual_end + world->clock.now());
  }

  sink.note_stream_done();
}

}  // namespace cgn::observatory
