// The operator survey of paper §2 (Figure 1 and the scarcity/market
// statistics). The paper collected 75 responses; we generate a synthetic
// respondent population whose marginals match the published percentages and
// tabulate it with the same code a real survey would use.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"

namespace cgn::survey {

enum class CgnStatus : std::uint8_t { deployed, considering, no_plans };
enum class Ipv6Status : std::uint8_t {
  most_or_all_subscribers,
  some_subscribers,
  plans_to_deploy_soon,
  no_plans,
};
enum class ScarcityStatus : std::uint8_t { facing, looming, not_facing };

[[nodiscard]] std::string_view to_string(CgnStatus s) noexcept;
[[nodiscard]] std::string_view to_string(Ipv6Status s) noexcept;
[[nodiscard]] std::string_view to_string(ScarcityStatus s) noexcept;

struct SurveyResponse {
  int respondent_id = 0;
  bool cellular = false;
  CgnStatus cgn = CgnStatus::no_plans;
  Ipv6Status ipv6 = Ipv6Status::no_plans;
  ScarcityStatus scarcity = ScarcityStatus::not_facing;
  bool faces_internal_scarcity = false;
  bool bought_addresses = false;
  bool considered_buying = false;
  // Concerns about the transfer market:
  bool concern_price = false;
  bool concern_polluted_blocks = false;
  bool concern_ownership = false;
};

/// Generates `n` synthetic responses whose marginals follow §2
/// (38%/12%/50% CGN; 32%/35%/11%/22% IPv6; >40% facing scarcity; ...).
[[nodiscard]] std::vector<SurveyResponse> generate_responses(std::size_t n,
                                                             sim::Rng& rng);

/// Tabulated shares over a response set.
struct SurveyTabulation {
  std::size_t n = 0;
  double cgn_deployed = 0, cgn_considering = 0, cgn_no_plans = 0;
  double ipv6_most = 0, ipv6_some = 0, ipv6_soon = 0, ipv6_no_plans = 0;
  double scarcity_facing = 0, scarcity_looming = 0, scarcity_not = 0;
  double internal_scarcity = 0;
  double bought = 0, considered_buying = 0;
  double concern_price = 0, concern_polluted = 0, concern_ownership = 0;
};

[[nodiscard]] SurveyTabulation tabulate(
    const std::vector<SurveyResponse>& responses);

}  // namespace cgn::survey
