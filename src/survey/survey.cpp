#include "survey/survey.hpp"

namespace cgn::survey {

std::string_view to_string(CgnStatus s) noexcept {
  switch (s) {
    case CgnStatus::deployed: return "yes, already deployed";
    case CgnStatus::considering: return "considering deployment";
    case CgnStatus::no_plans: return "no plans to deploy";
  }
  return "?";
}

std::string_view to_string(Ipv6Status s) noexcept {
  switch (s) {
    case Ipv6Status::most_or_all_subscribers: return "yes, most/all subscribers";
    case Ipv6Status::some_subscribers: return "yes, some subscribers";
    case Ipv6Status::plans_to_deploy_soon: return "plans to deploy soon";
    case Ipv6Status::no_plans: return "no plans to deploy";
  }
  return "?";
}

std::string_view to_string(ScarcityStatus s) noexcept {
  switch (s) {
    case ScarcityStatus::facing: return "facing scarcity";
    case ScarcityStatus::looming: return "scarcity looming";
    case ScarcityStatus::not_facing: return "not facing scarcity";
  }
  return "?";
}

std::vector<SurveyResponse> generate_responses(std::size_t n, sim::Rng& rng) {
  std::vector<SurveyResponse> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SurveyResponse r;
    r.respondent_id = static_cast<int>(i + 1);
    r.cellular = rng.chance(0.25);

    // Figure 1(a): 38% deployed / 12% considering / 50% no plans.
    double u = rng.uniform01();
    r.cgn = u < 0.38   ? CgnStatus::deployed
            : u < 0.50 ? CgnStatus::considering
                       : CgnStatus::no_plans;

    // Figure 1(b): 32% most/all, 35% some, 11% soon, 22% no plans.
    u = rng.uniform01();
    r.ipv6 = u < 0.32   ? Ipv6Status::most_or_all_subscribers
             : u < 0.67 ? Ipv6Status::some_subscribers
             : u < 0.78 ? Ipv6Status::plans_to_deploy_soon
                        : Ipv6Status::no_plans;

    // §2: >40% face scarcity, another ~10% see it looming.
    u = rng.uniform01();
    r.scarcity = u < 0.42   ? ScarcityStatus::facing
                 : u < 0.52 ? ScarcityStatus::looming
                            : ScarcityStatus::not_facing;

    // Three of 75 ISPs reported internal address scarcity (~4%); these run
    // CGN by definition.
    r.faces_internal_scarcity =
        r.cgn == CgnStatus::deployed && rng.chance(0.10);

    // Markets: 3/75 bought, another 15/75 considered.
    r.bought_addresses = rng.chance(0.04);
    r.considered_buying = !r.bought_addresses && rng.chance(0.20);

    // Concerns (among all respondents): price 60%, polluted blocks 44%,
    // ownership uncertainty 42%.
    r.concern_price = rng.chance(0.60);
    r.concern_polluted_blocks = rng.chance(0.44);
    r.concern_ownership = rng.chance(0.42);

    out.push_back(r);
  }
  return out;
}

SurveyTabulation tabulate(const std::vector<SurveyResponse>& responses) {
  SurveyTabulation t;
  t.n = responses.size();
  if (t.n == 0) return t;
  const double inv = 1.0 / static_cast<double>(t.n);
  for (const auto& r : responses) {
    switch (r.cgn) {
      case CgnStatus::deployed: t.cgn_deployed += inv; break;
      case CgnStatus::considering: t.cgn_considering += inv; break;
      case CgnStatus::no_plans: t.cgn_no_plans += inv; break;
    }
    switch (r.ipv6) {
      case Ipv6Status::most_or_all_subscribers: t.ipv6_most += inv; break;
      case Ipv6Status::some_subscribers: t.ipv6_some += inv; break;
      case Ipv6Status::plans_to_deploy_soon: t.ipv6_soon += inv; break;
      case Ipv6Status::no_plans: t.ipv6_no_plans += inv; break;
    }
    switch (r.scarcity) {
      case ScarcityStatus::facing: t.scarcity_facing += inv; break;
      case ScarcityStatus::looming: t.scarcity_looming += inv; break;
      case ScarcityStatus::not_facing: t.scarcity_not += inv; break;
    }
    if (r.faces_internal_scarcity) t.internal_scarcity += inv;
    if (r.bought_addresses) t.bought += inv;
    if (r.considered_buying) t.considered_buying += inv;
    if (r.concern_price) t.concern_price += inv;
    if (r.concern_polluted_blocks) t.concern_polluted += inv;
    if (r.concern_ownership) t.concern_ownership += inv;
  }
  return t;
}

}  // namespace cgn::survey
