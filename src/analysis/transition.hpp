// Transition-mechanism classification over the Big-NAT battery (fig14):
// per-session verdicts across {NAT444, NAT64, 464XLAT, DS-Lite}, scored
// against the builder's ground-truth line stamps.
//
// The discriminators mirror what a real client can observe:
//  * pref64 discovered via the RFC 7050 anchors  -> a DNS64/NAT64 is
//    on-path; a working never-resolved v4 literal then proves a CLAT
//    (464XLAT), a dead one a bare v6-only line (NAT64).
//  * no pref64 -> DS-Lite is inferred per AS from the B4 factory-default
//    signature: one identical RFC 1918 ip_dev dominating the AS's
//    private-ip_dev sessions, the homes behind it never answering UPnP
//    (a B4 is not a NAT and exposes no IGD), and the server seeing a
//    different (translated) public address. Everything else is NAT444 —
//    the null class covering plain v4 lines, translated or not.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "netalyzr/session.hpp"
#include "netcore/ipv4.hpp"

namespace cgn::analysis {

/// The four mechanisms fig14 distinguishes.
enum class TransitionVerdict : std::uint8_t { nat444, nat64, xlat464, dslite };
inline constexpr int kTransitionVerdicts = 4;

[[nodiscard]] std::string_view to_string(TransitionVerdict v) noexcept;

/// Ground-truth class of one session, from its builder stamps.
[[nodiscard]] TransitionVerdict truth_verdict(
    const netalyzr::SessionResult& s) noexcept;

struct TransitionDetectorConfig {
  /// Share of an AS's pref64-less private-ip_dev sessions that must
  /// report the *same* ip_dev before the DS-Lite signature applies. Low
  /// enough to survive partial deployments (cgn_subscriber_fraction down
  /// to ~0.4), high enough that no single CPE model's default LAN can
  /// fake it in a NAT444 AS.
  double dup_ip_dev_threshold = 0.5;
  /// A B4 fleet needs witnesses: at least this many sessions must report
  /// the identical ip_dev before it counts as a fleet signature (one
  /// session is just one home, whatever its address).
  std::size_t min_dup_sessions = 2;
  /// Minimum battery sessions before an AS is scored at all.
  std::size_t min_sessions = 3;
};

struct MechanismScore {
  std::size_t truth_sessions = 0;       ///< sessions whose line runs this
  std::size_t classified_sessions = 0;  ///< sessions classified as this
  std::size_t correct_sessions = 0;     ///< intersection of the two
  /// Translator timeouts the battery measured on this mechanism's lines
  /// (attributed by ground truth), in session order.
  std::vector<double> timeouts_s;

  [[nodiscard]] double accuracy() const noexcept {
    return truth_sessions == 0 ? 1.0
                               : static_cast<double>(correct_sessions) /
                                     static_cast<double>(truth_sessions);
  }
};

struct TransitionDetectionResult {
  std::array<MechanismScore, kTransitionVerdicts> mechanisms{};
  std::size_t observed_sessions = 0;  ///< sessions carrying a battery record
  std::size_t scored_ases = 0;        ///< ASes meeting min_sessions

  [[nodiscard]] const MechanismScore& of(TransitionVerdict v) const noexcept {
    return mechanisms[static_cast<std::size_t>(v)];
  }
};

class TransitionDetector {
 public:
  explicit TransitionDetector(TransitionDetectorConfig config = {})
      : config_(config) {}

  [[nodiscard]] TransitionDetectionResult analyze(
      const std::vector<netalyzr::SessionResult>& sessions) const;

  [[nodiscard]] const TransitionDetectorConfig& config() const noexcept {
    return config_;
  }

 private:
  TransitionDetectorConfig config_;
};

}  // namespace cgn::analysis
